// Command djinn-bench regenerates the paper's evaluation: every table
// and figure, as text tables, from the calibrated performance models
// (see DESIGN.md's per-experiment index).
//
// Usage:
//
//	djinn-bench                 # everything
//	djinn-bench -exp fig7       # one experiment
//	djinn-bench -list           # list experiment ids
//
// The quant experiment additionally honours -quant-json: a path the
// machine-readable sweep (the same cells the table renders) is written
// to, e.g. `djinn-bench -exp quant -quant-json BENCH_quant.json`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"djinn"
	"djinn/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig4...fig16, table1...table6) or all")
	list := flag.Bool("list", false, "list experiment ids")
	quantJSON := flag.String("quant-json", "", "with -exp quant: also write the sweep as JSON to this path")
	flag.Parse()

	p := djinn.NewPlatform()
	runners := map[string]func() string{
		"table1":       experiments.RenderTable1,
		"table2":       p.RenderTable2,
		"table3":       experiments.RenderTable3,
		"table4":       experiments.RenderTable4,
		"table5":       experiments.RenderTable5,
		"table6":       experiments.RenderTable6,
		"fig4":         p.RenderFig4,
		"fig5":         p.RenderFig5,
		"fig6":         p.RenderFig6,
		"fig7":         p.RenderFig7,
		"fig8":         p.RenderFig8,
		"fig9":         p.RenderFig8, // Figures 8 and 9 share one experiment
		"fig10":        p.RenderFig10,
		"fig11":        func() string { return p.RenderFig11(true) },
		"fig12":        func() string { return p.RenderFig11(false) },
		"fig13":        p.RenderFig13,
		"fig15":        p.RenderFig15,
		"fig16":        p.RenderFig16,
		"ablation":     p.RenderAblations,
		"openloop":     p.RenderOpenLoop,
		"lifecycle":    experiments.RenderLifecycle,
		"router":       p.RenderRouter,
		"sched":        experiments.RenderSched,
		"overhead":     p.RenderOverhead,
		"energy":       p.RenderEnergy,
		"validate":     p.RenderValidation,
		"cluster":      p.RenderCluster,
		"gpugen":       p.RenderFutureGPUs,
		"engine":       experiments.RenderEngine,
		"modelstore":   experiments.RenderModelStore,
		"controlplane": experiments.RenderControlPlane,
		"obsfleet":     experiments.RenderObsFleet,
		"gateway":      experiments.RenderGateway,
		"quant":        experiments.RenderQuant,
	}
	if *quantJSON != "" {
		runners["quant"] = func() string {
			cells := experiments.QuantSweep(experiments.QuantConfig{})
			buf, err := json.MarshalIndent(cells, "", "  ")
			if err == nil {
				err = os.WriteFile(*quantJSON, append(buf, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *quantJSON, err)
				os.Exit(1)
			}
			return experiments.RenderQuantCells(cells)
		}
	}
	order := []string{
		"table1", "table2", "table3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig10",
		"fig11", "fig12", "fig13", "table4", "table5", "fig15", "table6", "fig16",
		"ablation", "openloop", "lifecycle", "router", "sched", "overhead", "energy", "validate", "cluster", "gpugen",
		"engine", "modelstore", "controlplane", "obsfleet", "gateway", "quant",
	}
	if *list {
		ids := make([]string, 0, len(runners))
		for id := range runners {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println(strings.Join(ids, "\n"))
		return
	}
	if *exp == "all" {
		for _, id := range order {
			fmt.Println(runners[id]())
			fmt.Println()
		}
		return
	}
	run, ok := runners[strings.ToLower(*exp)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	fmt.Println(run())
}
