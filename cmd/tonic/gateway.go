package main

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"image/png"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"djinn/internal/gateway"
	"djinn/internal/tensor"
	"djinn/internal/workload"
)

// runGateway implements the http and pipeline verbs: JSON requests
// against the gateway tier. Inputs are synthesised deterministically
// when not supplied, like the socket verbs.
func runGateway(verb string, args []string, seed uint64) {
	fs := flag.NewFlagSet(verb, flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:7423", "gateway base URL")
	app := fs.String("app", "pos", "app for the http verb (pos|chk|ner|asr|imc|face|dig)")
	spec := fs.String("spec", "asr-pos-ner", "preset pipeline for the pipeline verb")
	text := fs.String("text", "", "sentence input (default: synthetic)")
	seconds := fs.Float64("seconds", 1.0, "synthetic utterance length for audio apps")
	key := fs.String("key", "", "API key sent as X-API-Key (rate-limit tenant)")
	noCache := fs.Bool("no-cache", false, "bypass the response cache (http verb)")
	fs.Parse(args)

	rng := tensor.NewRNG(seed)
	body := map[string]any{}
	var path string
	switch verb {
	case "http":
		path = "/v1/infer"
		body["app"] = *app
		if *noCache {
			body["no_cache"] = true
		}
		fillPayload(body, *app, *text, *seconds, rng)
	case "pipeline":
		path = "/v1/pipeline"
		body["pipeline"] = *spec
		// Presets start from audio unless the caller supplied text.
		if *text != "" {
			body["text"] = *text
		} else {
			fillPayload(body, "asr", "", *seconds, rng)
		}
	}

	raw, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, strings.TrimRight(*url, "/")+path, bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if *key != "" {
		req.Header.Set("X-API-Key", *key)
	}
	t0 := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatalf("gateway at %s: %v (start djinn-service with -http)", *url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	took := time.Since(t0).Round(time.Millisecond)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: %s", resp.Status, strings.TrimSpace(string(out)))
	}

	switch verb {
	case "http":
		var r struct {
			App     string          `json:"app"`
			Cached  bool            `json:"cached"`
			TraceID string          `json:"trace_id"`
			Result  json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(out, &r); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s via gateway in %v (cached=%v, trace %s)\n", r.App, took, r.Cached, r.TraceID)
		printJSON(r.Result)
	case "pipeline":
		var r struct {
			Pipeline string `json:"pipeline"`
			TraceID  string `json:"trace_id"`
			Dur      int64  `json:"dur_ns"`
			Stages   []struct {
				Name   string          `json:"name"`
				App    string          `json:"app"`
				Output json.RawMessage `json:"output"`
			} `json:"stages"`
		}
		if err := json.Unmarshal(out, &r); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pipeline %s in %v (server %v, trace %s)\n",
			r.Pipeline, took, time.Duration(r.Dur).Round(time.Millisecond), r.TraceID)
		for _, st := range r.Stages {
			fmt.Printf("  stage %-8s [%s]: ", st.Name, st.App)
			printJSON(st.Output)
		}
	}
}

// fillPayload adds the right JSON payload field for an app, using
// supplied text or synthesising audio/image/digit inputs.
func fillPayload(body map[string]any, app, text string, seconds float64, rng *tensor.RNG) {
	switch app {
	case "pos", "chk", "ner":
		if text == "" {
			text = workload.Sentence(rng, workload.SentenceWords)
			fmt.Printf("input: %s\n", text)
		}
		body["text"] = text
	case "asr":
		signal := workload.Utterance(rng, seconds)
		body["audio"] = base64.StdEncoding.EncodeToString(gateway.EncodePCM16(signal))
	case "imc", "face":
		var buf bytes.Buffer
		if err := png.Encode(&buf, workload.Image(rng, 480, 360)); err != nil {
			log.Fatal(err)
		}
		body["image"] = base64.StdEncoding.EncodeToString(buf.Bytes())
	case "dig":
		imgs, _ := workload.Digits(rng, 4)
		body["digits"] = imgs
	default:
		log.Fatalf("unknown app %q", app)
	}
}

// printJSON renders one result object compactly on one line.
func printJSON(raw json.RawMessage) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		fmt.Println(string(raw))
		return
	}
	fmt.Println(buf.String())
}
