// Command tonic runs Tonic Suite applications end-to-end against a
// DjiNN server (start one with djinn-service).
//
// Usage:
//
//	tonic [-addr host:7420] pos  [sentence...]
//	tonic [-addr ...]       chk  [sentence...]
//	tonic [-addr ...]       ner  [sentence...]
//	tonic [-addr ...]       dig  [-n 10]
//	tonic [-addr ...]       imc
//	tonic [-addr ...]       face
//	tonic [-addr ...]       asr  [-seconds 1.0]
//	tonic [-addr ...]       bench -app POS [-workers 4] [-dur 5s] [-deadline 20ms] [-trace 100]
//	tonic [-addr ...]       stats
//	tonic [-addr ...]       sched
//	tonic [-addr ...]       latency
//	tonic [-addr ...]       models [-register path] [-load id] [-evict id]
//	tonic [-addr ...]       trace <id>
//	tonic [-addr ...]       trace -slowest 5
//	tonic [-addr ...]       control <verb> [args...]   (control-plane front end: placement, members, autoscale, scale, rebalance)
//
// Image and audio inputs are synthesised deterministically when not
// supplied (the models carry synthetic weights, so predictions
// demonstrate the pipeline rather than trained accuracy).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"djinn"
	"djinn/internal/tensor"
	"djinn/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7420", "DjiNN server address")
	seed := flag.Uint64("seed", 42, "seed for synthetic inputs")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tonic [-addr host:port] <pos|chk|ner|dig|imc|face|asr|stats|sched|latency|models|trace|bench|control> [args]")
		os.Exit(2)
	}
	client, err := djinn.Dial(*addr)
	if err != nil {
		log.Fatalf("connecting to DjiNN at %s: %v (start cmd/djinn-service first)", *addr, err)
	}
	defer client.Close()

	rng := tensor.NewRNG(*seed)
	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "pos", "chk", "ner":
		sentence := strings.Join(args, " ")
		if sentence == "" {
			sentence = workload.Sentence(rng, workload.SentenceWords)
			fmt.Printf("input: %s\n", sentence)
		}
		var tagged []djinn.TaggedWord
		var err error
		switch cmd {
		case "pos":
			tagged, err = djinn.NewPOS(client).Tag(sentence)
		case "chk":
			tagged, err = djinn.NewCHK(client).Chunk(sentence)
		case "ner":
			tagged, err = djinn.NewNER(client).Recognize(sentence)
		}
		if err != nil {
			log.Fatal(err)
		}
		for _, tw := range tagged {
			fmt.Printf("%s ", tw)
		}
		fmt.Println()
	case "dig":
		fs := flag.NewFlagSet("dig", flag.ExitOnError)
		n := fs.Int("n", 10, "number of digits")
		fs.Parse(args)
		imgs, labels := workload.Digits(rng, *n)
		preds, err := djinn.NewDIG(client).Recognize(imgs)
		if err != nil {
			log.Fatal(err)
		}
		for i, p := range preds {
			fmt.Printf("digit %2d: generated %d → predicted %s\n", i, labels[i], p)
		}
	case "imc":
		app := djinn.NewIMC(client)
		if len(args) > 0 {
			// Classify a user-supplied PNG file.
			f, err := os.Open(args[0])
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			pred, err := app.ClassifyPNG(f)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("image classification (%s): %s\n", args[0], pred)
			break
		}
		img := workload.Image(rng, 480, 360)
		top, err := app.ClassifyTopK(img, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("image classification (synthetic image), top 5:")
		for i, p := range top {
			fmt.Printf("  %d. %s\n", i+1, p)
		}
	case "face":
		img := workload.Image(rng, 360, 360)
		pred, err := djinn.NewFACE(client).Identify(img)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("face identification: %s\n", pred)
	case "asr":
		fs := flag.NewFlagSet("asr", flag.ExitOnError)
		secs := fs.Float64("seconds", 1.0, "utterance length")
		fs.Parse(args)
		signal := workload.Utterance(rng, *secs)
		t0 := time.Now()
		tr, err := djinn.NewASR(client).Transcribe(signal)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("decoded %d frames in %v\n", tr.Frames, time.Since(t0).Round(time.Millisecond))
		fmt.Printf("phones: %s\n", strings.Join(tr.Phones, " "))
		fmt.Printf("text:   %s\n", tr.Text)
	case "control":
		// Raw control-verb passthrough: against a control-plane front
		// end this reaches the controller (placement, members,
		// autoscale, scale <app> <n>, rebalance).
		if len(args) == 0 {
			log.Fatal("usage: tonic control <verb> [args...]")
		}
		out, err := client.Control(strings.Join(args, " "))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	case "stats":
		apps, err := client.Apps()
		if err != nil {
			log.Fatal(err)
		}
		for _, app := range apps {
			stats, err := client.ServerStats(app)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %s\n", app, stats)
		}
	case "sched":
		apps, err := client.Apps()
		if err != nil {
			log.Fatal(err)
		}
		for _, app := range apps {
			info, err := client.ServerSched(app)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %s\n", app, info)
		}
	case "latency":
		apps, err := client.Apps()
		if err != nil {
			log.Fatal(err)
		}
		for _, app := range apps {
			breakdown, err := client.ServerLatency(app)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s:\n%s", app, indent(breakdown))
		}
	case "bench":
		fs := flag.NewFlagSet("bench", flag.ExitOnError)
		appName := fs.String("app", "POS", "application to drive")
		workers := fs.Int("workers", 4, "closed-loop workers")
		dur := fs.Duration("dur", 5*time.Second, "duration")
		deadline := fs.Duration("deadline", 0, "per-query deadline (0 = none)")
		traceEvery := fs.Int("trace", 0, "mint a trace ID on every Nth query per worker (0 = untraced)")
		fs.Parse(args)
		app, err := djinn.ParseApp(*appName)
		if err != nil {
			log.Fatal(err)
		}
		res := workload.DriveClosedLoopOptions(client, djinn.ServiceName(app), func(rng *tensor.RNG) []float32 {
			return workload.QueryPayload(app, rng)
		}, workload.DriveOptions{Workers: *workers, Duration: *dur, Deadline: *deadline, TraceEvery: *traceEvery})
		fmt.Printf("%s: %.1f QPS over %v (%s)\n", app, res.QPS, *dur, res.Latency)
		if res.Errors+res.Shed+res.Expired > 0 {
			fmt.Printf("errors: %d, shed: %d, expired: %d\n", res.Errors, res.Shed, res.Expired)
		}
		if len(res.TraceIDs) > 0 {
			fmt.Printf("sampled trace IDs (inspect with `tonic trace <id>`):\n")
			for _, id := range res.TraceIDs {
				fmt.Printf("  %s\n", id)
			}
		}
	case "models":
		fs := flag.NewFlagSet("models", flag.ExitOnError)
		register := fs.String("register", "", "register a .djw weight file by server-side path")
		load := fs.String("load", "", "fault a model in ahead of traffic (name or name@vN)")
		evict := fs.String("evict", "", "unload a model (name or name@vN)")
		fs.Parse(args)
		for _, act := range []struct{ arg, verb string }{
			{*register, "register"}, {*load, "load"}, {*evict, "evict"},
		} {
			if act.arg == "" {
				continue
			}
			msg, err := client.Control("model " + act.verb + " " + act.arg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(msg)
		}
		list, err := client.Models()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(list)
		stats, err := client.ModelStats()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(stats)
	case "trace":
		fs := flag.NewFlagSet("trace", flag.ExitOnError)
		slowest := fs.Int("slowest", 0, "list the server's N slowest retained traces instead of one ID")
		fs.Parse(args)
		if *slowest > 0 {
			out, err := client.ServerSlowestTraces(*slowest)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(out)
			break
		}
		if fs.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: tonic trace <id> | tonic trace -slowest N")
			os.Exit(2)
		}
		out, err := client.ServerTrace(fs.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", cmd)
		os.Exit(2)
	}
}

// indent prefixes every line of s with two spaces.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}
