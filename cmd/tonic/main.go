// Command tonic runs Tonic Suite applications end-to-end against a
// DjiNN server (start one with djinn-service).
//
// Usage:
//
//	tonic [-addr host:7420] pos  [sentence...]
//	tonic [-addr ...]       chk  [sentence...]
//	tonic [-addr ...]       ner  [sentence...]
//	tonic [-addr ...]       dig  [-n 10]
//	tonic [-addr ...]       imc
//	tonic [-addr ...]       face
//	tonic [-addr ...]       asr  [-seconds 1.0]
//	tonic [-addr ...]       bench -app POS [-workers 4] [-dur 5s] [-deadline 20ms] [-trace 100]
//	tonic [-addr ...]       stats
//	tonic [-addr ...]       sched
//	tonic [-addr ...]       precision [app]
//	tonic [-addr ...]       latency
//	tonic [-addr ...]       models [-register path] [-load id] [-evict id]
//	tonic [-addr ...]       trace <id>
//	tonic [-addr ...]       trace -slowest 5
//	tonic [-addr ...]       control <verb> [args...]   (control-plane front end: placement, members, autoscale, scale, rebalance)
//	tonic [-addr ...]       events [-n 20] [-kind markdown] [-follow]
//	tonic                   top [-admin 127.0.0.1:7421] [-interval 1s] [-once]
//	tonic                   http [-url http://127.0.0.1:7423] [-app pos] [-text ...] [-seconds 1.0] [-key apikey] [-no-cache]
//	tonic                   pipeline [-url ...] [-spec asr-pos-ner] [-text ...] [-seconds 1.0]
//
// http and pipeline talk JSON to the gateway tier (start djinn-service
// with -http :port): http runs one app through /v1/infer (showing
// whether the response came from the content-addressed cache),
// pipeline runs a staged DAG through /v1/pipeline as one traced
// request.
//
// events tails the server's structured event journal (mark-downs,
// placement flips, autoscales, canary moves, model lifecycle, alert
// transitions); -follow polls for new entries by sequence number. top
// is a live fleet dashboard over the admin plane's /dash endpoint —
// per-app QPS/p99/attainment with sparklines, per-replica rates, alert
// states, and the journal tail; it talks to -admin, not -addr.
//
// Image and audio inputs are synthesised deterministically when not
// supplied (the models carry synthetic weights, so predictions
// demonstrate the pipeline rather than trained accuracy).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"djinn"
	"djinn/internal/tensor"
	"djinn/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7420", "DjiNN server address")
	seed := flag.Uint64("seed", 42, "seed for synthetic inputs")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tonic [-addr host:port] <pos|chk|ner|dig|imc|face|asr|stats|sched|precision|latency|models|trace|bench|control|events|top> [args]")
		os.Exit(2)
	}
	if flag.Arg(0) == "top" {
		// The dashboard reads the admin HTTP plane, not the serving
		// protocol — no client connection needed.
		runTop(flag.Args()[1:])
		return
	}
	if flag.Arg(0) == "http" || flag.Arg(0) == "pipeline" {
		// These speak JSON to the gateway tier (-http on
		// djinn-service), not the DJRT socket.
		runGateway(flag.Arg(0), flag.Args()[1:], *seed)
		return
	}
	client, err := djinn.Dial(*addr)
	if err != nil {
		log.Fatalf("connecting to DjiNN at %s: %v (start cmd/djinn-service first)", *addr, err)
	}
	defer client.Close()

	rng := tensor.NewRNG(*seed)
	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "pos", "chk", "ner":
		sentence := strings.Join(args, " ")
		if sentence == "" {
			sentence = workload.Sentence(rng, workload.SentenceWords)
			fmt.Printf("input: %s\n", sentence)
		}
		var tagged []djinn.TaggedWord
		var err error
		switch cmd {
		case "pos":
			tagged, err = djinn.NewPOS(client).Tag(sentence)
		case "chk":
			tagged, err = djinn.NewCHK(client).Chunk(sentence)
		case "ner":
			tagged, err = djinn.NewNER(client).Recognize(sentence)
		}
		if err != nil {
			log.Fatal(err)
		}
		for _, tw := range tagged {
			fmt.Printf("%s ", tw)
		}
		fmt.Println()
	case "dig":
		fs := flag.NewFlagSet("dig", flag.ExitOnError)
		n := fs.Int("n", 10, "number of digits")
		fs.Parse(args)
		imgs, labels := workload.Digits(rng, *n)
		preds, err := djinn.NewDIG(client).Recognize(imgs)
		if err != nil {
			log.Fatal(err)
		}
		for i, p := range preds {
			fmt.Printf("digit %2d: generated %d → predicted %s\n", i, labels[i], p)
		}
	case "imc":
		app := djinn.NewIMC(client)
		if len(args) > 0 {
			// Classify a user-supplied PNG file.
			f, err := os.Open(args[0])
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			pred, err := app.ClassifyPNG(f)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("image classification (%s): %s\n", args[0], pred)
			break
		}
		img := workload.Image(rng, 480, 360)
		top, err := app.ClassifyTopK(img, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("image classification (synthetic image), top 5:")
		for i, p := range top {
			fmt.Printf("  %d. %s\n", i+1, p)
		}
	case "face":
		img := workload.Image(rng, 360, 360)
		pred, err := djinn.NewFACE(client).Identify(img)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("face identification: %s\n", pred)
	case "asr":
		fs := flag.NewFlagSet("asr", flag.ExitOnError)
		secs := fs.Float64("seconds", 1.0, "utterance length")
		fs.Parse(args)
		signal := workload.Utterance(rng, *secs)
		t0 := time.Now()
		tr, err := djinn.NewASR(client).Transcribe(signal)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("decoded %d frames in %v\n", tr.Frames, time.Since(t0).Round(time.Millisecond))
		fmt.Printf("phones: %s\n", strings.Join(tr.Phones, " "))
		fmt.Printf("text:   %s\n", tr.Text)
	case "control":
		// Raw control-verb passthrough: against a control-plane front
		// end this reaches the controller (placement, members,
		// autoscale, scale <app> <n>, rebalance).
		if len(args) == 0 {
			log.Fatal("usage: tonic control <verb> [args...]")
		}
		out, err := client.Control(strings.Join(args, " "))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	case "stats":
		apps, err := client.Apps()
		if err != nil {
			log.Fatal(err)
		}
		for _, app := range apps {
			stats, err := client.ServerStats(app)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %s\n", app, stats)
		}
	case "sched":
		apps, err := client.Apps()
		if err != nil {
			log.Fatal(err)
		}
		for _, app := range apps {
			info, err := client.ServerSched(app)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %s\n", app, info)
		}
	case "precision":
		// The kernel precision each app's plan pool was compiled at
		// (djinn-service -precision).
		if len(args) == 1 {
			out, err := client.ServerPrecision(args[0])
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(out)
			break
		}
		out, err := client.Control("precision")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	case "latency":
		apps, err := client.Apps()
		if err != nil {
			log.Fatal(err)
		}
		for _, app := range apps {
			breakdown, err := client.ServerLatency(app)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s:\n%s", app, indent(breakdown))
		}
	case "bench":
		fs := flag.NewFlagSet("bench", flag.ExitOnError)
		appName := fs.String("app", "POS", "application to drive")
		workers := fs.Int("workers", 4, "closed-loop workers")
		dur := fs.Duration("dur", 5*time.Second, "duration")
		deadline := fs.Duration("deadline", 0, "per-query deadline (0 = none)")
		traceEvery := fs.Int("trace", 0, "mint a trace ID on every Nth query per worker (0 = untraced)")
		fs.Parse(args)
		app, err := djinn.ParseApp(*appName)
		if err != nil {
			log.Fatal(err)
		}
		res := workload.DriveClosedLoopOptions(client, djinn.ServiceName(app), func(rng *tensor.RNG) []float32 {
			return workload.QueryPayload(app, rng)
		}, workload.DriveOptions{Workers: *workers, Duration: *dur, Deadline: *deadline, TraceEvery: *traceEvery})
		fmt.Printf("%s: %.1f QPS over %v (%s)\n", app, res.QPS, *dur, res.Latency)
		if res.Errors+res.Shed+res.Expired > 0 {
			fmt.Printf("errors: %d, shed: %d, expired: %d\n", res.Errors, res.Shed, res.Expired)
		}
		if len(res.TraceIDs) > 0 {
			fmt.Printf("sampled trace IDs (inspect with `tonic trace <id>`):\n")
			for _, id := range res.TraceIDs {
				fmt.Printf("  %s\n", id)
			}
		}
	case "models":
		fs := flag.NewFlagSet("models", flag.ExitOnError)
		register := fs.String("register", "", "register a .djw weight file by server-side path")
		load := fs.String("load", "", "fault a model in ahead of traffic (name or name@vN)")
		evict := fs.String("evict", "", "unload a model (name or name@vN)")
		fs.Parse(args)
		for _, act := range []struct{ arg, verb string }{
			{*register, "register"}, {*load, "load"}, {*evict, "evict"},
		} {
			if act.arg == "" {
				continue
			}
			msg, err := client.Control("model " + act.verb + " " + act.arg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(msg)
		}
		list, err := client.Models()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(list)
		stats, err := client.ModelStats()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(stats)
	case "events":
		fs := flag.NewFlagSet("events", flag.ExitOnError)
		n := fs.Int("n", 20, "number of recent events")
		kind := fs.String("kind", "", "only events of this kind (markdown, recover, placement, autoscale, canary, model, member, alert)")
		follow := fs.Bool("follow", false, "poll for new events after printing the tail")
		every := fs.Duration("every", time.Second, "poll interval with -follow")
		fs.Parse(args)
		verb := fmt.Sprintf("events %d", *n)
		if *kind != "" {
			verb = fmt.Sprintf("events kind %s %d", *kind, *n)
		}
		out, err := client.Control(verb)
		if err != nil {
			log.Fatal(err)
		}
		seq := printEvents(out, 0)
		if !*follow {
			break
		}
		// Follow mode: the journal assigns strictly increasing sequence
		// numbers, so "events since <seq>" never misses or repeats an
		// entry even while the ring overwrites. Kind filtering is
		// client-side here to keep the cursor exact.
		for range time.Tick(*every) {
			out, err := client.Control(fmt.Sprintf("events since %d", seq))
			if err != nil {
				log.Fatal(err)
			}
			if *kind != "" {
				var kept []string
				for _, line := range strings.Split(out, "\n") {
					if strings.Contains(line, "] "+*kind+":") {
						kept = append(kept, line)
					} else if s, ok := parseEventSeq(line); ok && s > seq {
						seq = s
					}
				}
				out = strings.Join(kept, "\n")
			}
			seq = printEvents(out, seq)
		}
	case "trace":
		fs := flag.NewFlagSet("trace", flag.ExitOnError)
		slowest := fs.Int("slowest", 0, "list the server's N slowest retained traces instead of one ID")
		fs.Parse(args)
		if *slowest > 0 {
			out, err := client.ServerSlowestTraces(*slowest)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(out)
			break
		}
		if fs.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: tonic trace <id> | tonic trace -slowest N")
			os.Exit(2)
		}
		out, err := client.ServerTrace(fs.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", cmd)
		os.Exit(2)
	}
}

// indent prefixes every line of s with two spaces.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// printEvents prints journal lines (skipping the "(no events)"
// placeholder) and returns the highest sequence number seen, so follow
// mode can resume from it.
func printEvents(out string, seq uint64) uint64 {
	for _, line := range strings.Split(out, "\n") {
		if line == "" || line == "(no events)" {
			continue
		}
		fmt.Println(line)
		if s, ok := parseEventSeq(line); ok && s > seq {
			seq = s
		}
	}
	return seq
}

// parseEventSeq extracts N from a journal line's leading "#N ".
func parseEventSeq(line string) (uint64, bool) {
	if !strings.HasPrefix(line, "#") {
		return 0, false
	}
	head, _, ok := strings.Cut(line[1:], " ")
	if !ok {
		return 0, false
	}
	s, err := strconv.ParseUint(head, 10, 64)
	return s, err == nil
}

// dashView mirrors the admin plane's /dash JSON (admin.DashResponse);
// durations arrive as nanosecond integers.
type dashView struct {
	Interval time.Duration `json:"interval_ns"`
	Window   time.Duration `json:"window_ns"`
	Apps     []struct {
		App         string        `json:"app"`
		SLO         time.Duration `json:"slo_ns"`
		QPS         float64       `json:"qps"`
		P50         time.Duration `json:"p50_ns"`
		P99         time.Duration `json:"p99_ns"`
		Attainment  float64       `json:"attainment"`
		ShedRate    float64       `json:"shed_rate"`
		QPSSpark    []float64     `json:"qps_spark"`
		AttainSpark []float64     `json:"attain_spark"`
	} `json:"apps"`
	Replicas []struct {
		Replica       string        `json:"replica"`
		App           string        `json:"app"`
		QPS           float64       `json:"qps"`
		P99           time.Duration `json:"p99_ns"`
		QPSSpark      []float64     `json:"qps_spark"`
		ResidentBytes int64         `json:"resident_bytes"`
	} `json:"replicas"`
	Alerts []struct {
		Rule struct {
			App       string  `json:"App"`
			Objective float64 `json:"Objective"`
		} `json:"rule"`
		State    string  `json:"state"`
		FastBurn float64 `json:"fast_burn"`
		SlowBurn float64 `json:"slow_burn"`
		Fires    int64   `json:"fires"`
	} `json:"alerts"`
	Events []struct {
		Seq    uint64    `json:"seq"`
		Time   time.Time `json:"time"`
		Kind   string    `json:"kind"`
		Source string    `json:"source"`
		Msg    string    `json:"msg"`
	} `json:"events"`
}

// runTop renders a live fleet dashboard from the admin /dash endpoint.
func runTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	admin := fs.String("admin", "127.0.0.1:7421", "admin HTTP plane address (djinn-service -admin)")
	interval := fs.Duration("interval", time.Second, "refresh interval")
	once := fs.Bool("once", false, "print one frame and exit (no screen clearing)")
	fs.Parse(args)

	url := fmt.Sprintf("http://%s/dash?spark=30&events=8", *admin)
	for {
		var d dashView
		if err := getJSON(url, &d); err != nil {
			log.Fatalf("fetching %s: %v (start djinn-service with -admin)", url, err)
		}
		frame := renderDash(&d)
		if *once {
			fmt.Print(frame)
			return
		}
		// Clear and home between frames so the dashboard repaints in
		// place.
		fmt.Print("\x1b[2J\x1b[H" + frame)
		time.Sleep(*interval)
	}
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return json.Unmarshal(body, v)
}

func renderDash(d *dashView) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "tonic top — %s  (window %v, tick %v)\n\n",
		time.Now().Format("15:04:05"), d.Window, d.Interval)

	fmt.Fprintf(&sb, "%-12s %9s %9s %9s %7s %6s  %s\n", "APP", "QPS", "P50", "P99", "ATTAIN", "SHED", "QPS TREND")
	for _, a := range d.Apps {
		slo := ""
		if a.SLO > 0 && a.P99 > a.SLO {
			slo = " !slo"
		}
		fmt.Fprintf(&sb, "%-12s %9.1f %9s %9s %7.3f %6.3f  %s%s\n",
			a.App, a.QPS, fmtDur(a.P50), fmtDur(a.P99), a.Attainment, a.ShedRate, spark(a.QPSSpark), slo)
	}
	if len(d.Apps) == 0 {
		sb.WriteString("(no app traffic sampled yet)\n")
	}

	sb.WriteString("\nALERTS\n")
	if len(d.Alerts) == 0 {
		sb.WriteString("(no alert rules)\n")
	}
	for _, al := range d.Alerts {
		marker := " "
		if al.State == "firing" {
			marker = "!"
		}
		fmt.Fprintf(&sb, "%s %-12s %-8s objective %.1f%%  burn fast %.2fx slow %.2fx  fires %d\n",
			marker, al.Rule.App, al.State, al.Rule.Objective*100, al.FastBurn, al.SlowBurn, al.Fires)
	}

	if len(d.Replicas) > 0 {
		sb.WriteString("\nREPLICA\n")
		for _, r := range d.Replicas {
			res := ""
			if r.ResidentBytes > 0 {
				res = fmt.Sprintf("  resident %.1f MB", float64(r.ResidentBytes)/(1<<20))
			}
			fmt.Fprintf(&sb, "%-12s %-10s %9.1f qps %9s p99  %s%s\n",
				r.Replica, r.App, r.QPS, fmtDur(r.P99), spark(r.QPSSpark), res)
		}
	}

	if len(d.Events) > 0 {
		sb.WriteString("\nEVENTS\n")
		for _, e := range d.Events {
			fmt.Fprintf(&sb, "#%d %s [%s] %s: %s\n", e.Seq, e.Time.Format("15:04:05.000"), e.Source, e.Kind, e.Msg)
		}
	}
	return sb.String()
}

// sparkLevels are the eight block glyphs a sparkline quantises into.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// spark renders a series as a fixed-height sparkline scaled to its own
// maximum.
func spark(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		lvl := 0
		if max > 0 && v > 0 {
			lvl = int(v / max * float64(len(sparkLevels)-1))
		}
		out[i] = sparkLevels[lvl]
	}
	return string(out)
}

// fmtDur renders a latency compactly (µs under 1ms, ms otherwise).
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	default:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	}
}
