// Command djinn-service runs the DjiNN DNN-as-a-service server: it
// loads the requested Tonic Suite models into memory (shared read-only
// across workers, as in the paper) and serves the framed TCP protocol.
//
// Usage:
//
//	djinn-service [-addr :7420] [-apps DIG,POS,NER | -apps all] [-precision float32|float32-packed|int8] [-replicas 1] [-stats 10s] [-admin :7421]
//	djinn-service -export-models dir/ [-apps all] [-model-version 1] [-quantize]
//	djinn-service -verify-models dir/
//	djinn-service -models dir/ [-model-budget 268435456]
//
// -precision selects the kernel backend every registered app's plan
// pool compiles against: float32 is the reference path, float32-packed
// the panel kernels (bit-identical outputs), int8 the quantized path
// (inspect with `tonic precision`).
//
// -export-models writes the selected apps' weights as versioned .djw
// files (one-time export; the files round-trip bit-identically);
// -quantize additionally embeds int8 quantized weight sections so int8
// serving pays no quantization at load.
// -models serves from such a directory instead of building models at
// boot: weights are mmapped on first query and evicted under
// -model-budget, so a node can serve far more registered models than
// fit in its budget (manage at runtime with `tonic models`).
//
// -admin starts the observability plane on a separate HTTP listener:
// Prometheus metrics on /metrics, the Go profiler under /debug/pprof/,
// a JSON slow-query log on /slowlog, and per-request span timelines on
// /trace?id= (send queries with a trace ID to populate them).
//
// With -replicas N > 1 it runs N independent replica servers in one
// process on consecutive ports (addr's port, port+1, ...), sharing one
// read-only copy of each model's weights — the cheap way to stand up a
// local fleet for router experiments (point a router at every port).
//
// Loading all seven models allocates ~850 MB of weights (Table 1);
// start with the smaller models when experimenting.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"djinn"
	"djinn/internal/alerts"
	"djinn/internal/controlplane"
	"djinn/internal/events"
	"djinn/internal/gateway"
	"djinn/internal/models"
	"djinn/internal/nn"
	"djinn/internal/router"
	"djinn/internal/service"
	"djinn/internal/timeseries"
	"djinn/internal/tonic"
	"djinn/internal/workload"
)

func main() {
	addr := flag.String("addr", ":7420", "listen address (first replica; replica i adds i to the port)")
	apps := flag.String("apps", "DIG,POS,CHK,NER", `comma-separated apps (IMC,DIG,FACE,ASR,POS,CHK,NER) or "all"`)
	custom := flag.String("custom", "", "custom model: name=def.netdef[:weights.djnm]")
	replicas := flag.Int("replicas", 1, "number of replica servers to run in this process")
	stats := flag.Duration("stats", 30*time.Second, "stats reporting interval (0 disables)")
	adminAddr := flag.String("admin", "", "admin HTTP listen address serving /metrics, /slowlog, /trace?id=, /debug/pprof/ (empty disables)")
	httpAddr := flag.String("http", "", "HTTP/JSON gateway listen address serving /v1/infer, /v1/pipeline, /v1/apps, /v1/cache, /healthz (empty disables)")
	httpRate := flag.Float64("http-rate", 0, "gateway per-tenant rate limit in requests/second, keyed by X-API-Key (0 disables)")
	httpCacheMB := flag.Int64("http-cache-mb", 64, "gateway response-cache byte budget in MB (negative disables the cache)")
	controlPlane := flag.Bool("controlplane", false, "run the replicas as one managed fleet: a placement-aware front end serves -addr, a controller places apps, autoscales, and routes around dead replicas (use with -replicas N)")
	cpCount := flag.Int("controlplane-count", 2, "replicas the control plane keeps each app on (clamped to -replicas)")
	cpInterval := flag.Duration("controlplane-interval", 500*time.Millisecond, "control-loop tick interval (health scan, autoscale, reconcile)")
	precision := flag.String("precision", "float32", "kernel precision for registered apps: float32 (reference), float32-packed (panel kernels, bit-identical), int8 (quantized, ~99% top-1 agreement)")
	exportDir := flag.String("export-models", "", "export the selected apps' weights as versioned .djw files into this directory and exit")
	quantize := flag.Bool("quantize", false, "with -export-models: embed int8 quantized weight sections (version-2 .djw), so int8 serving pays no quantization at load")
	verifyDir := flag.String("verify-models", "", "verify every .djw file in this directory (checksums + manifest) and exit")
	modelsDir := flag.String("models", "", "serve models from this directory's .djw files instead of building them (fault-in on first query)")
	modelBudget := flag.Int64("model-budget", 0, "resident model budget in bytes for -models (0 = unbounded)")
	modelVersion := flag.Int("model-version", 1, "model version -export-models stamps into the files")
	flag.Parse()

	if *replicas < 1 {
		fmt.Fprintln(os.Stderr, "-replicas must be >= 1")
		os.Exit(2)
	}
	addrs, err := replicaAddrs(*addr, *replicas)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	prec, err := djinn.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var selected []djinn.App
	if strings.EqualFold(*apps, "all") {
		selected = djinn.Apps
	} else {
		for _, name := range strings.Split(*apps, ",") {
			app, err := djinn.ParseApp(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, app)
		}
	}

	if *exportDir != "" {
		export := djinn.ExportModels
		if *quantize {
			export = djinn.ExportModelsQuantized
		}
		paths, err := export(*exportDir, selected, *modelVersion)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range paths {
			meta, err := djinn.VerifyModelFile(p)
			if err != nil {
				log.Fatalf("exported file failed verification: %v", err)
			}
			log.Printf("exported %s: %s (%d bytes, %d params)", meta.ID(), p, meta.FileSize, len(meta.Params))
		}
		return
	}
	if *verifyDir != "" {
		if err := verifyModels(*verifyDir); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *controlPlane {
		if *modelsDir != "" || *custom != "" {
			fmt.Fprintln(os.Stderr, "-controlplane manages Tonic apps; it does not combine with -models or -custom")
			os.Exit(2)
		}
		runControlPlane(selected, *addr, *adminAddr, *replicas, *cpCount, *cpInterval, *stats, prec,
			gatewayOpts{addr: *httpAddr, rate: *httpRate, cacheMB: *httpCacheMB})
		return
	}

	// Build every replica before serving: model weights are cached, so
	// N replicas share one read-only copy per app (the paper's
	// weight-sharing, across replica boundaries too). With -models the
	// weights stay on disk instead: each replica attaches a model
	// registry over the same .djw files and faults models in on first
	// query — the mappings are MAP_SHARED, so the replicas still share
	// one page-cache copy per model.
	// The shared event journal attaches before model registration so
	// the loads themselves are the journal's first entries.
	journal := events.New(0)
	servers := make([]*djinn.Server, *replicas)
	for i := range servers {
		srv := djinn.NewServer()
		srv.SetJournal(journal, fmt.Sprintf("replica-%d", i))
		if *custom != "" {
			if err := registerCustom(srv, *custom, prec); err != nil {
				log.Fatal(err)
			}
		}
		if *modelsDir != "" {
			reg := djinn.NewModelRegistry(djinn.ModelRegistryConfig{BudgetBytes: *modelBudget})
			srv.AttachModelStore(reg, djinn.AppConfig{Precision: prec})
			n, err := registerModels(reg, *modelsDir)
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				log.Printf("registered %d model file(s) from %s (budget %d bytes)", n, *modelsDir, *modelBudget)
			}
		} else {
			for _, app := range selected {
				if i == 0 {
					log.Printf("loading %s model...", app)
				}
				if err := djinn.RegisterAppPrecision(srv, app, prec); err != nil {
					log.Fatal(err)
				}
			}
		}
		servers[i] = srv
	}

	// The rest of the observability plane runs regardless of -admin: a
	// collector samples per-app stats into time series and a burn-rate
	// alert engine watches each app's SLO attainment; the journal and
	// engine answer the "events"/"alerts" control verbs on every
	// replica. -admin additionally exposes it all over HTTP.
	targets := make([]timeseries.Target, len(servers))
	for i := range servers {
		targets[i] = timeseries.Target{Replica: fmt.Sprintf("replica-%d", i), Server: servers[i]}
	}
	collector := timeseries.NewCollector(timeseries.Config{
		Interval: time.Second,
		Slots:    600, // ten minutes of per-second samples
		Targets:  targets,
	})
	collector.Run()
	var rules []alerts.Rule
	for _, name := range servers[0].Apps() {
		rules = append(rules, alerts.Rule{
			App: name, Objective: 0.95,
			FastWindow: 30 * time.Second, SlowWindow: 150 * time.Second,
			Pending: 10 * time.Second, MinDemand: 30,
			KeepFiring: 15 * time.Second,
		})
	}
	engine := alerts.New(collector, journal, rules...)
	engine.Run(5 * time.Second)
	for _, srv := range servers {
		srv.SetAlertsControl(engine.Control)
	}

	// -http fronts the replica fleet with the HTTP/JSON gateway: a
	// health-checked router spreads queries over the in-process
	// replicas, and the gateway layers JSON translation, the
	// content-addressed response cache, and per-tenant admission on
	// top of it.
	var gw *gateway.Gateway
	var gwStores []*djinn.TraceStore
	if *httpAddr != "" {
		grt := router.New(router.Config{Policy: router.LeastOutstanding})
		grt.SetJournal(journal)
		for i, srv := range servers {
			if err := grt.AddBackend(fmt.Sprintf("replica-%d", i), srv); err != nil {
				log.Fatal(err)
			}
		}
		sel := selected
		if *modelsDir != "" || *custom != "" {
			sel = nil // serve whatever the registry holds; keep all kinds
		}
		gw = serveGateway(gatewayOpts{addr: *httpAddr, rate: *httpRate, cacheMB: *httpCacheMB}, grt, sel, journal)
		gwStores = []*djinn.TraceStore{gw.Traces(), grt.TraceStore()}
	}

	if *adminAddr != "" {
		// Each replica gets a store labelled with its name so the slow
		// log and /trace can tell the fleet's tiers apart.
		reps := make([]djinn.AdminReplica, len(servers))
		stores := make([]*djinn.TraceStore, len(servers))
		for i, srv := range servers {
			name := fmt.Sprintf("replica-%d", i)
			st := djinn.NewTraceStore(name, 0)
			srv.SetTraceStore(st)
			reps[i] = djinn.AdminReplica{Name: name, Server: srv}
			stores[i] = st
		}
		handler := djinn.NewAdminHandler(djinn.AdminOptions{
			Replicas:  reps,
			Stores:    append(stores, gwStores...),
			Journal:   journal,
			Collector: collector,
			Alerts:    engine,
			Gateway:   gw,
		})
		go func() {
			log.Printf("admin plane on http://%s (/metrics /slowlog /trace?id= /events /dash /debug/pprof/)", *adminAddr)
			if err := http.ListenAndServe(*adminAddr, handler); err != nil {
				log.Fatalf("admin listener: %v", err)
			}
		}()
	}

	if *stats > 0 {
		go func() {
			for range time.Tick(*stats) {
				for i, srv := range servers {
					reportStats(srv, i, selected)
				}
			}
		}()
	}

	// SIGINT/SIGTERM drain every replica gracefully: in-flight batches
	// run to completion, queued stragglers fail with the shutdown
	// error, and each ListenAndServe returns nil once its drain ends.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("draining %d replica(s): rejecting new queries, flushing in-flight batches...", len(servers))
		start := time.Now()
		var wg sync.WaitGroup
		for _, srv := range servers {
			wg.Add(1)
			go func(s *djinn.Server) { defer wg.Done(); s.Close() }(srv)
		}
		wg.Wait()
		log.Printf("drained in %v", time.Since(start).Round(time.Millisecond))
	}()

	// A replica that fails to serve (port in use, accept error) is
	// fatal for the whole process the moment it happens: silently
	// running a smaller fleet than -replicas asked for would skew every
	// router experiment pointed at it. Graceful drain returns nil, so
	// shutdown never trips this.
	var wg sync.WaitGroup
	for i, srv := range servers {
		wg.Add(1)
		go func(i int, srv *djinn.Server) {
			defer wg.Done()
			log.Printf("DjiNN replica %d serving %v on %s", i, srv.Apps(), addrs[i])
			if err := srv.ListenAndServe(addrs[i]); err != nil {
				log.Fatalf("replica %d: %v", i, err)
			}
		}(i, srv)
	}
	wg.Wait()
}

// runControlPlane stands the fleet up behind one placement-aware front
// end: replicas bare servers (no apps at boot — activation is the
// controller's job), a health-checked router across them, a controller
// keeping each app on count replicas (autoscaling up to the fleet size
// from shed and p99 signals), and a framed-protocol proxy on addr whose
// control verbs (placement, members, autoscale, scale, rebalance) the
// controller answers.
// gatewayOpts carries the -http flags into a fleet mode.
type gatewayOpts struct {
	addr    string
	rate    float64
	cacheMB int64
}

// serveGateway boots the HTTP/JSON gateway over a backend (router or
// proxy tier) and returns it for admin wiring; nil when disabled.
func serveGateway(opts gatewayOpts, backend service.ContextBackend, selected []djinn.App, journal *events.Journal) *gateway.Gateway {
	if opts.addr == "" {
		return nil
	}
	cfgApps := gateway.DefaultApps()
	if len(selected) > 0 {
		sel := make(map[string]bool, len(selected))
		for _, a := range selected {
			sel[djinn.ServiceName(a)] = true
		}
		for name := range cfgApps {
			if !sel[name] {
				delete(cfgApps, name)
			}
		}
	}
	gw, err := gateway.New(gateway.Config{
		Backend: backend,
		Apps:    cfgApps,
		Cache:   gateway.CacheConfig{Budget: opts.cacheMB << 20},
		Limit:   gateway.LimitConfig{Rate: opts.rate},
		Journal: journal,
	})
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		log.Printf("gateway on http://%s (/v1/infer /v1/pipeline /v1/apps /v1/cache /healthz)", opts.addr)
		if err := http.ListenAndServe(opts.addr, gw); err != nil {
			log.Fatalf("gateway listener: %v", err)
		}
	}()
	return gw
}

func runControlPlane(selected []djinn.App, addr, adminAddr string, replicas, count int, interval, stats time.Duration, prec djinn.Precision, gwOpts gatewayOpts) {
	if count < 1 {
		count = 1
	}
	if count > replicas {
		count = replicas
	}
	apps := make([]string, len(selected))
	nets := map[string]*nn.Net{}
	for i, a := range selected {
		apps[i] = tonic.ServiceName(a)
		log.Printf("loading %s model...", a)
		nets[apps[i]] = models.BuildCached(a)
	}

	journal := events.New(0)
	rt := router.New(router.Config{
		Policy: router.LeastOutstanding,
		Health: router.HealthConfig{
			FailureThreshold: 3,
			ProbeInterval:    time.Second,
			MaxProbeInterval: 10 * time.Second,
		},
	})
	rt.SetJournal(journal)
	ctl := controlplane.NewController(controlplane.Config{
		Router: rt,
		Mapper: controlplane.NewMapper(controlplane.MapperConfig{
			Policy:       controlplane.LeastLoaded{},
			DefaultCount: count,
			CanaryWeight: 50,
		}),
		Autoscaler: controlplane.NewAutoscaler(controlplane.AutoscaleConfig{Min: count, Max: replicas}),
		Apps:       apps,
		DrainDelay: 2 * interval,
		Logf:       log.Printf,
		Journal:    journal,
	})

	servers := make([]*djinn.Server, replicas)
	reps := make([]djinn.AdminReplica, replicas)
	stores := []*djinn.TraceStore{rt.TraceStore()}
	for i := range servers {
		name := fmt.Sprintf("replica-%d", i)
		srv := djinn.NewServer()
		srv.SetJournal(journal, name)
		st := djinn.NewTraceStore(name, 0)
		srv.SetTraceStore(st)
		servers[i] = srv
		reps[i] = djinn.AdminReplica{Name: name, Server: srv}
		stores = append(stores, st)
		if err := rt.AddBackend(name, srv); err != nil {
			log.Fatal(err)
		}
		m := controlplane.NewServerMember(name, srv, nets, djinn.AppConfig{
			BatchWindow: 2 * time.Millisecond, Workers: 4, Precision: prec,
		})
		// Each app keeps its Table 3 batch shape when the controller
		// activates it, matching what -replicas mode registers at boot.
		for _, a := range selected {
			spec := workload.Get(a)
			m.SetAppConfig(tonic.ServiceName(a), djinn.AppConfig{
				BatchInstances: spec.BatchSize * spec.Instances,
				BatchWindow:    2 * time.Millisecond,
				Workers:        4,
				Precision:      prec,
			})
		}
		ctl.Join(m)
	}
	res := ctl.Reconcile()
	log.Printf("control plane: placed %d app(s) on %d-of-%d replicas (%d moves); tick %v", len(apps), count, replicas, res.Moves, interval)
	ctl.Run(interval)

	// Fleet observability: the collector samples every replica, the
	// burn-rate engine journals alert transitions, and the front end
	// answers the "events"/"alerts" verbs itself so tonic never needs a
	// direct replica connection.
	targets := make([]timeseries.Target, len(servers))
	for i := range servers {
		targets[i] = timeseries.Target{Replica: fmt.Sprintf("replica-%d", i), Server: servers[i]}
	}
	collector := timeseries.NewCollector(timeseries.Config{
		Interval: time.Second,
		Slots:    600,
		Targets:  targets,
	})
	collector.Run()
	rules := make([]alerts.Rule, len(apps))
	for i, name := range apps {
		rules[i] = alerts.Rule{
			App: name, Objective: 0.95,
			FastWindow: 30 * time.Second, SlowWindow: 150 * time.Second,
			Pending: 10 * time.Second, MinDemand: 30,
			KeepFiring: 15 * time.Second,
		}
	}
	engine := alerts.New(collector, journal, rules...)
	engine.Run(5 * time.Second)

	control := func(cmd string) (string, error) {
		fields := strings.Fields(cmd)
		if len(fields) > 0 {
			switch fields[0] {
			case "events":
				return journal.Control(fields[1:])
			case "alerts":
				return engine.Control(fields[1:])
			}
		}
		return ctl.Control(cmd)
	}
	proxy := service.NewProxy(rt, control)
	proxy.SetLogger(log.Printf)

	// The gateway shares the control plane's router, so placement and
	// canary splits apply to HTTP traffic exactly as to DJRT queries.
	gw := serveGateway(gwOpts, rt, selected, journal)
	if gw != nil {
		stores = append(stores, gw.Traces())
	}

	if adminAddr != "" {
		handler := djinn.NewAdminHandler(djinn.AdminOptions{
			Replicas:     reps,
			Router:       rt,
			ControlPlane: ctl,
			Stores:       stores,
			Journal:      journal,
			Collector:    collector,
			Alerts:       engine,
			Gateway:      gw,
		})
		go func() {
			log.Printf("admin plane on http://%s (/metrics /slowlog /trace?id= /events /dash /debug/pprof/)", adminAddr)
			if err := http.ListenAndServe(adminAddr, handler); err != nil {
				log.Fatalf("admin listener: %v", err)
			}
		}()
	}

	if stats > 0 {
		go func() {
			for range time.Tick(stats) {
				m := ctl.Snapshot()
				log.Printf("control plane: %d live / %d dead members, %d rebalances, %d moves",
					m.Members-m.Dead, m.Dead, m.Rebalances, m.Moves)
				for i, srv := range servers {
					reportStats(srv, i, selected)
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("draining the fleet: front end first, then controller, then %d replica(s)...", len(servers))
		start := time.Now()
		proxy.Close()
		ctl.Stop()
		rt.Close()
		var wg sync.WaitGroup
		for _, srv := range servers {
			wg.Add(1)
			go func(s *djinn.Server) { defer wg.Done(); s.Close() }(srv)
		}
		wg.Wait()
		log.Printf("drained in %v", time.Since(start).Round(time.Millisecond))
	}()

	log.Printf("DjiNN control-plane front end serving %v on %s (%d replicas in-process)", apps, addr, replicas)
	if err := proxy.ListenAndServe(addr); err != nil {
		log.Fatal(err)
	}
}

// replicaAddrs expands a base listen address into n consecutive-port
// addresses.
func replicaAddrs(addr string, n int) ([]string, error) {
	if n == 1 {
		return []string{addr}, nil
	}
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("-replicas needs host:port in -addr: %w", err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("-replicas needs a numeric port in -addr (got %q): replica i listens on port+i", portStr)
	}
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = net.JoinHostPort(host, strconv.Itoa(port+i))
	}
	return addrs, nil
}

// reportStats logs one replica's per-app counters and latency stages.
func reportStats(srv *djinn.Server, replica int, selected []djinn.App) {
	for _, app := range selected {
		name := djinn.ServiceName(app)
		s, ok := srv.StatsFor(name)
		if !ok || s.Queries+s.Shed()+s.Expired == 0 {
			continue
		}
		log.Printf("replica %d %s: %d queries, %d batches, avg batch %.1f instances, shed %d (admission %d, expired-in-queue %d), expired %d",
			replica, app, s.Queries, s.Batches, s.AvgBatch(), s.Shed(), s.ShedAdmission, s.ShedExpired, s.Expired)
		if lat, ok := srv.LatencyFor(name); ok && lat.Forward.Count > 0 {
			log.Printf("replica %d %s: queue p50=%v p99=%v | assembly p50=%v | forward p50=%v p99=%v | respond p50=%v",
				replica, app, lat.QueueWait.P50, lat.QueueWait.P99, lat.BatchAssembly.P50,
				lat.Forward.P50, lat.Forward.P99, lat.Respond.P50)
		}
	}
}

// registerModels registers every .djw file in dir with the registry
// (metadata only; weights stay on disk until a query faults them in).
func registerModels(reg *djinn.ModelRegistry, dir string) (int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.djw"))
	if err != nil {
		return 0, err
	}
	if len(paths) == 0 {
		return 0, fmt.Errorf("no .djw files in %s (export with -export-models)", dir)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := reg.Register(p); err != nil {
			return 0, err
		}
	}
	return len(paths), nil
}

// verifyModels checksums every .djw file in dir end to end.
func verifyModels(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "*.djw"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no .djw files in %s", dir)
	}
	sort.Strings(paths)
	for _, p := range paths {
		meta, err := djinn.VerifyModelFile(p)
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		log.Printf("ok %s: %s (%d bytes, %d params)", meta.ID(), p, meta.FileSize, len(meta.Params))
	}
	return nil
}

// registerCustom parses "name=def.netdef[:weights.djnm]" and loads the
// model.
func registerCustom(srv *djinn.Server, spec string, prec djinn.Precision) error {
	name, paths, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return fmt.Errorf("-custom wants name=def.netdef[:weights.djnm], got %q", spec)
	}
	defPath, weightPath, _ := strings.Cut(paths, ":")
	defFile, err := os.Open(defPath)
	if err != nil {
		return err
	}
	defer defFile.Close()
	var weights io.Reader
	if weightPath != "" {
		wf, err := os.Open(weightPath)
		if err != nil {
			return err
		}
		defer wf.Close()
		weights = wf
	}
	log.Printf("loading custom model %q from %s...", name, defPath)
	return djinn.RegisterFromDef(srv, name, defFile, weights, djinn.AppConfig{Precision: prec})
}
