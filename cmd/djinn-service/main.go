// Command djinn-service runs the DjiNN DNN-as-a-service server: it
// loads the requested Tonic Suite models into memory (shared read-only
// across workers, as in the paper) and serves the framed TCP protocol.
//
// Usage:
//
//	djinn-service [-addr :7420] [-apps DIG,POS,NER | -apps all] [-stats 10s]
//
// Loading all seven models allocates ~850 MB of weights (Table 1);
// start with the smaller models when experimenting.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"djinn"
)

func main() {
	addr := flag.String("addr", ":7420", "listen address")
	apps := flag.String("apps", "DIG,POS,CHK,NER", `comma-separated apps (IMC,DIG,FACE,ASR,POS,CHK,NER) or "all"`)
	custom := flag.String("custom", "", "custom model: name=def.netdef[:weights.djnm]")
	stats := flag.Duration("stats", 30*time.Second, "stats reporting interval (0 disables)")
	flag.Parse()

	srv := djinn.NewServer()
	if *custom != "" {
		if err := registerCustom(srv, *custom); err != nil {
			log.Fatal(err)
		}
	}
	var selected []djinn.App
	if strings.EqualFold(*apps, "all") {
		selected = djinn.Apps
	} else {
		for _, name := range strings.Split(*apps, ",") {
			app, err := djinn.ParseApp(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, app)
		}
	}
	for _, app := range selected {
		log.Printf("loading %s model...", app)
		if err := djinn.RegisterApp(srv, app); err != nil {
			log.Fatal(err)
		}
	}
	if *stats > 0 {
		go func() {
			for range time.Tick(*stats) {
				for _, app := range selected {
					name := djinn.ServiceName(app)
					s, ok := srv.StatsFor(name)
					if !ok || s.Queries+s.Shed+s.Expired == 0 {
						continue
					}
					log.Printf("%s: %d queries, %d batches, avg batch %.1f instances, shed %d, expired %d",
						app, s.Queries, s.Batches, s.AvgBatch(), s.Shed, s.Expired)
					if lat, ok := srv.LatencyFor(name); ok && lat.Forward.Count > 0 {
						log.Printf("%s: queue p50=%v p99=%v | assembly p50=%v | forward p50=%v p99=%v | respond p50=%v",
							app, lat.QueueWait.P50, lat.QueueWait.P99, lat.BatchAssembly.P50,
							lat.Forward.P50, lat.Forward.P99, lat.Respond.P50)
					}
				}
			}
		}()
	}
	// SIGINT/SIGTERM drain the server gracefully: in-flight batches run
	// to completion, queued stragglers fail with the shutdown error, and
	// ListenAndServe returns nil once the drain finishes.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("draining: rejecting new queries, flushing in-flight batches...")
		start := time.Now()
		srv.Close()
		log.Printf("drained in %v", time.Since(start).Round(time.Millisecond))
	}()
	log.Printf("DjiNN serving %v on %s", srv.Apps(), *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatal(err)
	}
}

// registerCustom parses "name=def.netdef[:weights.djnm]" and loads the
// model.
func registerCustom(srv *djinn.Server, spec string) error {
	name, paths, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return fmt.Errorf("-custom wants name=def.netdef[:weights.djnm], got %q", spec)
	}
	defPath, weightPath, _ := strings.Cut(paths, ":")
	defFile, err := os.Open(defPath)
	if err != nil {
		return err
	}
	defer defFile.Close()
	var weights io.Reader
	if weightPath != "" {
		wf, err := os.Open(weightPath)
		if err != nil {
			return err
		}
		defer wf.Close()
		weights = wf
	}
	log.Printf("loading custom model %q from %s...", name, defPath)
	return djinn.RegisterFromDef(srv, name, defFile, weights, djinn.AppConfig{})
}
