// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (the rows/series themselves are printed by
// cmd/djinn-bench; these benchmarks time regenerating each experiment
// and report its headline metric), plus micro-benchmarks of the real
// service path.
package djinn

import (
	"fmt"
	"testing"
	"time"

	"djinn/internal/experiments"
	"djinn/internal/models"
	"djinn/internal/nn"
	"djinn/internal/tensor"
	"djinn/internal/workload"
)

func benchPlatform() Platform { return NewPlatform() }

// BenchmarkTable1Networks rebuilds the seven Table 1 networks.
func BenchmarkTable1Networks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, app := range []App{DIG, POS, CHK, NER} { // the small models; big ones dominate via allocation
			models.Build(app, uint64(i)+1)
		}
	}
}

// BenchmarkTable3Specs regenerates the Table 3 service specifications.
func BenchmarkTable3Specs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(workload.All()); got != 7 {
			b.Fatalf("%d specs", got)
		}
	}
}

// BenchmarkFig4CycleBreakdown regenerates Figure 4.
func BenchmarkFig4CycleBreakdown(b *testing.B) {
	p := benchPlatform()
	var frac float64
	for i := 0; i < b.N; i++ {
		rows := p.Fig4()
		frac = rows[3].DNNFrac // ASR
	}
	b.ReportMetric(frac*100, "ASR-DNN-%")
}

// BenchmarkFig5BaselineSpeedup regenerates Figure 5.
func BenchmarkFig5BaselineSpeedup(b *testing.B) {
	p := benchPlatform()
	var asr float64
	for i := 0; i < b.N; i++ {
		for _, r := range p.Fig5() {
			if r.App == ASR {
				asr = r.Speedup
			}
		}
	}
	b.ReportMetric(asr, "ASR-speedup-x")
}

// BenchmarkFig6Profile regenerates Figure 6's profiler counters.
func BenchmarkFig6Profile(b *testing.B) {
	p := benchPlatform()
	var occ float64
	for i := 0; i < b.N; i++ {
		rows := p.Fig6()
		occ = rows[4].Profile.Occupancy // POS
	}
	b.ReportMetric(occ*100, "POS-occupancy-%")
}

// BenchmarkFig7Batching regenerates the Figure 7 batch sweep for POS.
func BenchmarkFig7Batching(b *testing.B) {
	p := benchPlatform()
	var gain float64
	for i := 0; i < b.N; i++ {
		pts := p.Fig7(POS)
		best := 0.0
		for _, pt := range pts {
			if pt.QPS > best {
				best = pt.QPS
			}
		}
		gain = best / pts[0].QPS
	}
	b.ReportMetric(gain, "POS-batch-gain-x")
}

// BenchmarkFig8MPS regenerates the Figure 8/9 MPS study for POS (the
// discrete-event simulations dominate).
func BenchmarkFig8MPS(b *testing.B) {
	p := benchPlatform()
	var qps float64
	for i := 0; i < b.N; i++ {
		pts := p.Fig8(POS)
		qps = pts[len(pts)-1].MPSQPS
	}
	b.ReportMetric(qps, "POS-16inst-QPS")
}

// BenchmarkFig10Optimised regenerates Figure 10.
func BenchmarkFig10Optimised(b *testing.B) {
	p := benchPlatform()
	var face float64
	for i := 0; i < b.N; i++ {
		for _, r := range p.Fig10() {
			if r.App == FACE {
				face = r.Speedup
			}
		}
	}
	b.ReportMetric(face, "FACE-speedup-x")
}

// BenchmarkFig11Scaling regenerates Figure 11 (PCIe-limited scaling)
// for POS — the NLP plateau case.
func BenchmarkFig11Scaling(b *testing.B) {
	p := benchPlatform()
	var scale float64
	for i := 0; i < b.N; i++ {
		pts := p.Fig11(POS, true)
		scale = pts[len(pts)-1].QPS / pts[0].QPS
	}
	b.ReportMetric(scale, "POS-8GPU-scaling-x")
}

// BenchmarkFig12Unconstrained regenerates Figure 12 for ASR — the
// near-1000× case.
func BenchmarkFig12Unconstrained(b *testing.B) {
	p := benchPlatform()
	var speedup float64
	for i := 0; i < b.N; i++ {
		pts := p.Fig11(ASR, false)
		speedup = pts[len(pts)-1].Speedup
	}
	b.ReportMetric(speedup, "ASR-8GPU-speedup-x")
}

// BenchmarkFig13Bandwidth regenerates Figure 13.
func BenchmarkFig13Bandwidth(b *testing.B) {
	p := benchPlatform()
	var bw float64
	for i := 0; i < b.N; i++ {
		pts := p.Fig13(POS)
		bw = pts[len(pts)-1].BytesPS
	}
	b.ReportMetric(bw/1e9, "POS-8GPU-GB/s")
}

// BenchmarkTable4TCOModel prices a reference inventory.
func BenchmarkTable4TCOModel(b *testing.B) {
	p := benchPlatform()
	mix := p.Mix("MIXED")
	_ = mix
	for i := 0; i < b.N; i++ {
		experiments.RenderTable4()
	}
}

// BenchmarkFig15TCO regenerates the Figure 15 sweep for all mixes.
func BenchmarkFig15TCO(b *testing.B) {
	p := benchPlatform()
	var imp float64
	for i := 0; i < b.N; i++ {
		pts := p.Fig15("MIXED")
		imp = 1 / pts[len(pts)-1].Disagg
	}
	b.ReportMetric(imp, "MIXED-disagg-x")
}

// BenchmarkFig16Interconnects regenerates the Figure 16 study.
func BenchmarkFig16Interconnects(b *testing.B) {
	p := benchPlatform()
	var perf float64
	for i := 0; i < b.N; i++ {
		pts := p.Fig16("NLP")
		perf = pts[len(pts)-1].PerfScale
	}
	b.ReportMetric(perf, "NLP-QPI-perf-x")
}

// --- Real-system micro-benchmarks -----------------------------------

// BenchmarkServiceInferDIG measures the real in-process service path
// (batching queue + worker + forward pass) for one DIG query (100
// images).
func BenchmarkServiceInferDIG(b *testing.B) {
	srv := NewServer()
	srv.SetLogger(func(string, ...any) {})
	if err := RegisterApp(srv, DIG); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	payload := workload.QueryPayload(DIG, tensor.NewRNG(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Infer(ServiceName(DIG), payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceInferPOS measures one POS query (a 28-word sentence).
func BenchmarkServiceInferPOS(b *testing.B) {
	srv := NewServer()
	srv.SetLogger(func(string, ...any) {})
	if err := RegisterApp(srv, POS); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	payload := workload.QueryPayload(POS, tensor.NewRNG(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Infer(ServiceName(POS), payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceThroughputPOS saturates the in-process service with
// 8 concurrent clients and reports real queries per second.
func BenchmarkServiceThroughputPOS(b *testing.B) {
	srv := NewServer()
	srv.SetLogger(func(string, ...any) {})
	if err := RegisterApp(srv, POS); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	b.ResetTimer()
	var qps float64
	for i := 0; i < b.N; i++ {
		res := workload.DriveClosedLoop(srv, POS, ServiceName(POS), 8, 300*time.Millisecond)
		qps = res.QPS
	}
	b.ReportMetric(qps, "QPS")
}

// BenchmarkEndToEndNER measures the full Tonic pipeline: tokenise,
// embed, window, infer, Viterbi.
func BenchmarkEndToEndNER(b *testing.B) {
	srv := NewServer()
	srv.SetLogger(func(string, ...any) {})
	if err := RegisterApp(srv, NER); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ner := NewNER(srv)
	sentence := workload.Sentence(tensor.NewRNG(3), workload.SentenceWords)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ner.Recognize(sentence); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Precision-layer benchmarks ---------------------------------------

// BenchmarkGemmPacked runs the cache-blocked panel-packing float32
// kernel on the AlexNet conv1 GEMM shape (m=96, n=55·55, k=3·11·11),
// packing B each iteration the way the conv path does. Its ablation
// partner is internal/tensor's BenchmarkGemmAlexNetConv1 (the blocked
// reference kernel on the same shape).
func BenchmarkGemmPacked(b *testing.B) {
	const m, n, k = 96, 55 * 55, 3 * 11 * 11
	a := make([]float32, m*k)
	bb := make([]float32, k*n)
	bp := make([]float32, tensor.PackedBLen(k, n))
	c := make([]float32, m*n)
	rng := tensor.NewRNG(11)
	rng.FillUniform(a, -1, 1)
	rng.FillUniform(bb, -1, 1)
	b.SetBytes(int64(2 * m * n * k * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.PackB(k, n, bb, bp)
		tensor.GemmPacked(m, n, k, a, bp, c, tensor.EpNone, nil)
	}
}

// BenchmarkForwardAlexNetInt8 measures the int8 quantized plan on
// AlexNet at the serving batch sizes; compare against
// BenchmarkForwardAlexNet in internal/models (the float32 plan).
// Steady-state allocs/op should be 0.
func BenchmarkForwardAlexNetInt8(b *testing.B) {
	net := models.BuildCached(models.IMC)
	for _, batch := range []int{8, 32} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			plan := net.CompileOpts(batch, nn.CompileOpts{Precision: nn.Int8})
			in := tensor.New(append([]int{batch}, net.InShape()...)...)
			tensor.NewRNG(1).FillNorm(in.Data(), 0, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan.Forward(in)
			}
		})
	}
}

// --- Extension-study benchmarks --------------------------------------

// BenchmarkExtOpenLoop regenerates the open-loop latency/load curve for
// POS.
func BenchmarkExtOpenLoop(b *testing.B) {
	p := benchPlatform()
	var lat float64
	for i := 0; i < b.N; i++ {
		pts := p.OpenLoop(POS)
		lat = pts[2].MeanLat
	}
	b.ReportMetric(lat*1e3, "POS-midload-ms")
}

// BenchmarkExtEnergy regenerates the energy-per-query study.
func BenchmarkExtEnergy(b *testing.B) {
	p := benchPlatform()
	var imp float64
	for i := 0; i < b.N; i++ {
		rows := p.Energy()
		imp = rows[3].Improvement // ASR
	}
	b.ReportMetric(imp, "ASR-energy-x")
}

// BenchmarkExtValidate regenerates the DES-vs-analytic provisioning
// validation.
func BenchmarkExtValidate(b *testing.B) {
	p := benchPlatform()
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows := p.ValidateDisaggServer()
		ratio = rows[0].Ratio
	}
	b.ReportMetric(ratio, "IMC-DES/analytic")
}

// BenchmarkExtCluster regenerates the end-to-end latency composition
// for DIG.
func BenchmarkExtCluster(b *testing.B) {
	p := benchPlatform()
	var lat float64
	for i := 0; i < b.N; i++ {
		rows := p.Cluster(DIG)
		lat = rows[1].Result.MeanLat
	}
	b.ReportMetric(lat*1e3, "DIG-disagg-ms")
}

// BenchmarkExtFutureGPUs regenerates the GPU-generation study.
func BenchmarkExtFutureGPUs(b *testing.B) {
	p := benchPlatform()
	var face float64
	for i := 0; i < b.N; i++ {
		for _, r := range p.FutureGPUs() {
			if r.App == FACE && r.VsK40 > face {
				face = r.VsK40
			}
		}
	}
	b.ReportMetric(face, "FACE-best-vs-K40")
}
