// Quickstart: start an in-process DjiNN service, register a model, and
// run a Tonic application against it — the smallest end-to-end use of
// the public API. (For a networked deployment, run cmd/djinn-service
// and replace the in-process server with djinn.Dial.)
package main

import (
	"fmt"
	"log"

	"djinn"
	"djinn/internal/tensor"
	"djinn/internal/workload"
)

func main() {
	// 1. A DjiNN server with the digit-recognition model loaded. The
	// model's weights live in memory once, shared by all workers.
	srv := djinn.NewServer()
	if err := djinn.RegisterApp(srv, djinn.DIG); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// 2. The Tonic digit-recognition app over the in-process backend.
	dig := djinn.NewDIG(srv)

	// 3. One query: a batch of ten 28×28 digit images.
	rng := tensor.NewRNG(7)
	images, labels := workload.Digits(rng, 10)
	preds, err := dig.Recognize(images)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range preds {
		fmt.Printf("digit %d (drawn as %d) → %s\n", i, labels[i], p)
	}

	// 4. Service-side counters show the cross-request batching DjiNN
	// performs (Section 5.1 of the paper).
	if s, ok := srv.StatsFor(djinn.ServiceName(djinn.DIG)); ok {
		fmt.Printf("\nservice stats: %d queries, %d instances, %d forward passes (avg batch %.0f)\n",
			s.Queries, s.Instances, s.Batches, s.AvgBatch())
	}
}
