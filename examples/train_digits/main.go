// Train digits: the NN engine is not inference-only — this example
// trains the Table 1 MNIST network from scratch with SGD on the
// synthetic digit glyphs and then serves the trained model through
// DjiNN, demonstrating the full train → save → load → serve loop.
package main

import (
	"bytes"
	"fmt"
	"log"

	"djinn"
	"djinn/internal/models"
	"djinn/internal/nn"
	"djinn/internal/tensor"
	"djinn/internal/workload"
)

func main() {
	// Build a fresh MNIST network (Table 1: 7 layers, ~60K params).
	net := models.Build(djinn.DIG, 12345)
	fmt.Printf("training %s: %d parameters\n", net.Name(), net.ParamCount())

	const batch = 32
	runner := net.NewRunner(batch)
	opt := nn.NewSGD(0.03, 0.9, 1e-4)
	rng := tensor.NewRNG(99)

	makeBatch := func() (*tensor.Tensor, []int) {
		imgs, labels := workload.Digits(rng, batch)
		in := tensor.New(batch, 1, 28, 28)
		for i, img := range imgs {
			copy(in.Data()[i*784:(i+1)*784], img)
		}
		return in, labels
	}

	for step := 1; step <= 300; step++ {
		in, labels := makeBatch()
		loss := nn.TrainBatch(runner, opt, in, labels)
		if step%50 == 0 {
			in, labels := makeBatch()
			probs := runner.Forward(in)
			fmt.Printf("step %3d  loss %.3f  accuracy %.0f%%\n",
				step, loss, 100*nn.Accuracy(probs, labels))
		}
	}

	// Serialise the trained weights and load them into a second network
	// (the DjiNN deployment flow: models are trained offline and loaded
	// by the service at start-up).
	var buf bytes.Buffer
	if err := net.SaveWeights(&buf); err != nil {
		log.Fatal(err)
	}
	served := models.Build(djinn.DIG, 1)
	if err := served.LoadWeights(&buf); err != nil {
		log.Fatal(err)
	}

	srv := djinn.NewServer()
	if err := srv.Register(djinn.ServiceName(djinn.DIG), served, djinn.AppConfig{}); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	dig := djinn.NewDIG(srv)
	imgs, labels := workload.Digits(rng, 10)
	preds, err := dig.Recognize(imgs)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i, p := range preds {
		if p.Class == labels[i] {
			correct++
		}
	}
	fmt.Printf("\nserved trained model: %d/10 digits recognised correctly\n", correct)
	for i, p := range preds {
		fmt.Printf("  drawn %d → %s\n", labels[i], p)
	}
}
