// WSC TCO study: reproduce the paper's Section 6 analysis — the three
// warehouse-scale-computer designs (CPU-only, Integrated GPU,
// Disaggregated GPU), the Table 4 cost model, and the future
// interconnect what-ifs — using the calibrated performance models.
package main

import (
	"fmt"

	"djinn"
)

func main() {
	p := djinn.NewPlatform()

	fmt.Println(p.RenderFig15())
	fmt.Println()
	fmt.Println(p.RenderFig16())

	// Headline numbers (compare with the paper's abstract: "GPU-enabled
	// WSCs improve TCO over CPU-only designs by 4-20×, depending on the
	// composition of the workload").
	fmt.Println("\nHeadline TCO improvements at 99% DNN workload:")
	for _, mix := range []string{"MIXED", "IMAGE", "NLP"} {
		pts := p.Fig15(mix)
		last := pts[len(pts)-1]
		fmt.Printf("  %-6s disaggregated %.1fx, integrated %.1fx\n",
			mix, 1/last.Disagg, 1/last.Integrated)
	}
}
