// ASR pipeline: the full speech-to-text path of the paper's Section
// 3.2.2 — MFCC-style feature extraction (pre-emphasis, Hamming window,
// FFT, mel filterbank, deltas, ±8-frame splicing into 2146-d vectors),
// DNN senone posteriors from the DjiNN service, and Viterbi phone
// decoding into text.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"djinn"
	"djinn/internal/tensor"
	"djinn/internal/workload"
)

func main() {
	srv := djinn.NewServer()
	fmt.Println("loading the 31M-parameter Kaldi-style acoustic model...")
	if err := djinn.RegisterApp(srv, djinn.ASR); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	asr := djinn.NewASR(srv)
	rng := tensor.NewRNG(11)
	// One second of synthetic speech-like audio (voiced segments with
	// moving formants; production recordings are substituted per
	// DESIGN.md).
	signal := workload.Utterance(rng, 1.0)
	fmt.Printf("transcribing %.1f s of 16 kHz audio (%d samples)...\n",
		float64(len(signal))/16000, len(signal))

	t0 := time.Now()
	tr, err := asr.Transcribe(signal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoded %d frames in %v\n", tr.Frames, time.Since(t0).Round(time.Millisecond))
	fmt.Printf("phones: %s\n", strings.Join(tr.Phones, " "))
	fmt.Printf("text:   %s\n", tr.Text)
}
