// NLP pipeline: the three SENNA-based Tonic applications — POS tagging,
// chunking (which internally issues a POS request first, exactly as in
// the paper), and named-entity recognition with gazetteer features —
// sharing one DjiNN service.
package main

import (
	"fmt"
	"log"

	"djinn"
)

func main() {
	srv := djinn.NewServer()
	for _, app := range []djinn.App{djinn.POS, djinn.CHK, djinn.NER} {
		if err := djinn.RegisterApp(srv, app); err != nil {
			log.Fatal(err)
		}
	}
	defer srv.Close()

	sentence := "Obama visited Google in Paris and praised the new DjiNN service"
	fmt.Printf("input: %q\n\n", sentence)

	pos := djinn.NewPOS(srv)
	tagged, err := pos.Tag(sentence)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("POS: ")
	for _, tw := range tagged {
		fmt.Printf("%s ", tw)
	}
	fmt.Println()

	chk := djinn.NewCHK(srv)
	chunks, err := chk.Chunk(sentence)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("CHK: ")
	for _, tw := range chunks {
		fmt.Printf("%s ", tw)
	}
	fmt.Println()

	ner := djinn.NewNER(srv)
	entities, err := ner.Recognize(sentence)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("NER: ")
	for _, tw := range entities {
		fmt.Printf("%s ", tw)
	}
	fmt.Println()

	// The chunker issued its own query AND an internal POS query:
	posStats, _ := srv.StatsFor(djinn.ServiceName(djinn.POS))
	chkStats, _ := srv.StatsFor(djinn.ServiceName(djinn.CHK))
	fmt.Printf("\nPOS service answered %d queries (1 direct + 1 internal from CHK); CHK answered %d\n",
		posStats.Queries, chkStats.Queries)
}
