// Custom model: demonstrate DjiNN's extensibility claim by adding an
// eighth application from a network-definition file — no code changes
// to the service. A SENNA-style sentiment classifier is defined in
// sentiment.netdef, registered under a new service name, and queried
// with the same windowed word features the NLP apps use.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"djinn"
	"djinn/internal/lang"
	"djinn/internal/tensor"
)

func main() {
	defPath := filepath.Join(findDir(), "sentiment.netdef")
	def, err := os.Open(defPath)
	if err != nil {
		log.Fatal(err)
	}
	defer def.Close()

	srv := djinn.NewServer()
	defer srv.Close()
	// No trained weights supplied: the service synthesises
	// deterministic ones (pass a weights reader for a real model).
	if err := djinn.RegisterFromDef(srv, "sentiment", def, nil, djinn.AppConfig{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered custom apps: %v\n", srv.Apps())

	labels := []string{"negative", "neutral", "positive"}
	for _, sentence := range []string{
		"the new service is remarkably fast and pleasant",
		"the old system fails constantly and loses data",
	} {
		words := lang.Tokenize(sentence)
		// One 300-float window vector per word, mean-pooled into a
		// single sentence query.
		win := lang.Windows(words, nil)
		per := len(win) / len(words)
		query := make([]float32, per)
		for i, v := range win {
			query[i%per] += v / float32(len(words))
		}
		out, err := srv.Infer("sentiment", query)
		if err != nil {
			log.Fatal(err)
		}
		best := tensor.Argmax(out)
		fmt.Printf("%-55q → %s (%.0f%%)\n", sentence, labels[best], out[best]*100)
	}
}

// findDir locates the example's directory whether run via `go run
// ./examples/custom_model` (cwd = repo root) or from the directory
// itself.
func findDir() string {
	if _, err := os.Stat("sentiment.netdef"); err == nil {
		return "."
	}
	return filepath.Join("examples", "custom_model")
}
