package modelstore

import (
	"bytes"
	"os"
	"testing"

	"djinn/internal/nn"
	"djinn/internal/tensor"
)

// fuzzSeedFile renders a small valid weight file in memory.
func fuzzSeedFile() []byte {
	rng := tensor.NewRNG(3)
	n := nn.NewNet("seed", nn.KindDNN, 4)
	n.Add(nn.NewFC("fc", rng, 4, 3)).Add(nn.NewSoftmax("prob"))
	var buf bytes.Buffer
	if _, err := Write(&buf, "seed", 1, n); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// fuzzSeedQuantFile renders a small valid version-2 file (quantized
// weight sections) in memory.
func fuzzSeedQuantFile() []byte {
	rng := tensor.NewRNG(4)
	n := nn.NewNet("seedq", nn.KindDNN, 4)
	n.Add(nn.NewFC("fc", rng, 4, 3)).Add(nn.NewSoftmax("prob"))
	var buf bytes.Buffer
	if _, err := WriteOpts(&buf, "seedq", 1, n, WriteOptions{Quantize: true}); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzParseMeta drives the header parser — the single definition of
// "valid weight file" shared by the strict reader and the mmap loader
// — with arbitrary bytes. It must never panic, and any header it
// accepts must satisfy the format's structural invariants.
func FuzzParseMeta(f *testing.F) {
	seed := fuzzSeedFile()
	f.Add(seed)
	f.Add(seed[:10])                 // truncated preamble
	f.Add(seed[:preambleLen+8])      // truncated header
	f.Add(seed[:len(seed)-4])        // truncated data (oversized section)
	f.Add(append([]byte{}, seed...)) // mutation base
	bad := append([]byte{}, seed...)
	bad[len(bad)-1] ^= 0xff // corrupt section byte (CRC is manifest-checked)
	f.Add(bad)
	badHdr := append([]byte{}, seed...)
	badHdr[preambleLen+2] ^= 0xff // corrupt header byte (header CRC)
	f.Add(badHdr)
	// Version-2 seeds: a valid quantized file plus targeted corruptions
	// of the quant manifest region and sections.
	qseed := fuzzSeedQuantFile()
	f.Add(qseed)
	f.Add(qseed[:len(qseed)-8]) // truncated quantized section
	qv1 := append([]byte{}, qseed...)
	qv1[4] = 1 // version says 1, header still carries a quant manifest
	f.Add(qv1)
	qbad := append([]byte{}, qseed...)
	qbad[len(qbad)-2] ^= 0x7f // corrupt quantized byte (CRC-checked by readers)
	f.Add(qbad)
	f.Fuzz(func(t *testing.T, data []byte) {
		meta, headerLen, err := parseMeta(data, int64(len(data)))
		if err != nil {
			return
		}
		if headerLen < preambleLen || headerLen > len(data) {
			t.Fatalf("accepted header length %d for %d bytes", headerLen, len(data))
		}
		if meta.Name == "" || meta.Version < 1 || len(meta.Params) == 0 {
			t.Fatalf("accepted implausible meta %+v", meta)
		}
		if meta.FileSize != int64(len(data)) {
			t.Fatalf("accepted file size %d for %d bytes", meta.FileSize, len(data))
		}
		seen := map[string]bool{}
		next := align64(int64(headerLen))
		for _, s := range meta.Params {
			if seen[s.Name] {
				t.Fatalf("accepted duplicate parameter %q", s.Name)
			}
			seen[s.Name] = true
			if s.Offset != next || s.Offset%SectionAlign != 0 {
				t.Fatalf("accepted misplaced section %q at %d (want %d)", s.Name, s.Offset, next)
			}
			if s.Size != int64(4*s.Elems()) {
				t.Fatalf("accepted section %q size %d for shape %v", s.Name, s.Size, s.Shape)
			}
			if s.Offset+s.Size > int64(len(data)) {
				t.Fatalf("accepted oversized section %q", s.Name)
			}
			next = align64(s.Offset + s.Size)
		}
		if meta.Format == FormatVersion && len(meta.Quant) != 0 {
			t.Fatalf("accepted version-1 file with %d quant sections", len(meta.Quant))
		}
		if meta.Format == FormatVersionQuant && len(meta.Quant) == 0 {
			t.Fatalf("accepted version-2 file without quant sections")
		}
		prevIdx := -1
		for _, q := range meta.Quant {
			if q.ParamIdx <= prevIdx || q.ParamIdx >= len(meta.Params) {
				t.Fatalf("accepted quant index %d (prev %d, %d params)", q.ParamIdx, prevIdx, len(meta.Params))
			}
			prevIdx = q.ParamIdx
			if !(q.Scale > 0) {
				t.Fatalf("accepted quant scale %v", q.Scale)
			}
			if q.Offset != next || q.Offset%SectionAlign != 0 {
				t.Fatalf("accepted misplaced quant section at %d (want %d)", q.Offset, next)
			}
			if q.Size != int64(meta.Params[q.ParamIdx].Elems()) {
				t.Fatalf("accepted quant section size %d for %d elems", q.Size, meta.Params[q.ParamIdx].Elems())
			}
			if q.Offset+q.Size > int64(len(data)) {
				t.Fatalf("accepted oversized quant section")
			}
			next = align64(q.Offset + q.Size)
		}
	})
}

// FuzzReadFile exercises the full strict reader (header, section CRCs,
// definition reconstruction, manifest binding) against arbitrary file
// contents: it must reject gracefully, never panic.
func FuzzReadFile(f *testing.F) {
	seed := fuzzSeedFile()
	f.Add(seed)
	f.Add(seed[:len(seed)-1])
	dup := append([]byte{}, seed...)
	if i := bytes.Index(dup, []byte("fc.weight")); i >= 0 {
		copy(dup[i:], "fc.weighT") // breaks header CRC and manifest name
	}
	f.Add(dup)
	qseed := fuzzSeedQuantFile()
	f.Add(qseed)
	f.Add(qseed[:len(qseed)-1])
	qbad := append([]byte{}, qseed...)
	qbad[len(qbad)-3] ^= 0x11 // quant section CRC must catch this
	f.Add(qbad)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := dir + "/fuzz.djw"
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		netw, meta, err := ReadFile(path)
		if err != nil {
			return
		}
		if netw == nil || meta == nil || len(netw.Params()) != len(meta.Params) {
			t.Fatalf("accepted file with inconsistent net/manifest")
		}
	})
}

// FuzzParseID checks the ID grammar never panics and round-trips what
// it accepts.
func FuzzParseID(f *testing.F) {
	for _, s := range []string{"imc", "imc@v1", "imc@v042", "a@v", "@", "x@v1@v2", "name@v1048577"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		id, err := ParseID(s)
		if err != nil {
			return
		}
		if err := CheckName(id.Name); err != nil {
			t.Fatalf("ParseID(%q) accepted invalid name: %v", s, err)
		}
		if id.Versioned() {
			round, err := ParseID(id.String())
			if err != nil || round != id {
				t.Fatalf("ParseID(%q) does not round-trip: %v %v", id.String(), round, err)
			}
		}
	})
}
