package modelstore

import (
	"fmt"
	"os"
	"unsafe"

	"djinn/internal/nn"
	"djinn/internal/tensor"
)

// Model is a loaded weight file: the reconstructed network plus the
// file mapping that backs its parameter tensors. While a Model is
// open, its net's weights are views over the mapped pages — the
// kernel pages weights in on first touch and shares them, via the
// page cache, with every other process mapping the same file.
//
// Close unmaps the file; after Close every tensor bound to the
// mapping is invalid and any access faults. The Registry guarantees
// no query is in flight (refcount pinned) before it closes a model.
type Model struct {
	meta    *Meta
	net     *nn.Net
	mapping []byte
	mapped  bool // mapping is a real mmap (vs heap fallback)
	closed  bool
}

// Open loads a weight file for serving: it validates the header
// (structure, bounds, header CRC — section CRCs are Verify's job, not
// the hot path's), maps the file read-only, reconstructs the network
// from the embedded definition, and rebinds every parameter tensor to
// its mapped section with zero copies. Layer forwards read weights
// through their Param pointers on every call, so the rebind retargets
// all compute at the mapped pages.
//
// On non-unix builds, or on big-endian hosts where a float32 view
// over little-endian file bytes would be wrong, Open degrades to a
// validated copy (same API, no page sharing).
func Open(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	meta, err := readMetaFrom(f, fi.Size())
	if err != nil {
		return nil, err
	}
	netw, err := buildNet(meta)
	if err != nil {
		return nil, err
	}
	if err := checkManifest(netw, meta); err != nil {
		return nil, err
	}
	mapping, err := mapFile(f, fi.Size())
	if err != nil {
		return nil, fmt.Errorf("modelstore: mapping %s: %w", path, err)
	}
	m := &Model{meta: meta, net: netw, mapping: mapping, mapped: mmapSupported}
	if m.mapped && hostLittleEndian {
		params := netw.Params()
		for i, p := range params {
			s := meta.Params[i]
			p.W = tensor.FromSlice(float32View(mapping[s.Offset:s.Offset+s.Size]), s.Shape...)
		}
		// Quantized sections bind as zero-copy int8 views too: an Int8
		// plan's weight packing reads them straight off the mapped
		// pages, so quantization cost was fully paid at export.
		bindQuantSections(netw, meta, func(q QuantSection) []int8 {
			return int8View(mapping[q.Offset : q.Offset+q.Size])
		})
	} else {
		// Portable fallback: decode a private copy, then drop the
		// mapping (heap fallback has nothing to drop).
		err := bindSections(netw, meta, func(s ParamSection, dst []float32) {
			decodeSection(m.mapping[s.Offset:s.Offset+s.Size], dst)
		})
		if err == nil {
			err = bindQuantSections(netw, meta, func(q QuantSection) []int8 {
				dst := make([]int8, q.Size)
				decodeQuantSection(m.mapping[q.Offset:q.Offset+q.Size], dst)
				return dst
			})
		}
		if m.mapped {
			unmapFile(m.mapping)
		}
		m.mapping, m.mapped = nil, false
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Meta returns the model's parsed header.
func (m *Model) Meta() *Meta { return m.meta }

// ID returns the model's identity.
func (m *Model) ID() ID { return m.meta.ID() }

// Net returns the reconstructed network. It is shared and read-only;
// concurrent forwards need one compiled Plan or Runner per goroutine.
func (m *Model) Net() *nn.Net { return m.net }

// Bytes returns the model's residency cost: the mapped file size (or
// the decoded weight bytes on the fallback path). This is what the
// Registry charges against its budget.
func (m *Model) Bytes() int64 { return m.meta.FileSize }

// Mapped reports whether the weights are mmap-backed (as opposed to a
// private decoded copy).
func (m *Model) Mapped() bool { return m.mapped }

// Close releases the mapping. The caller must guarantee no forward
// pass over this model is running or can start; the Registry does so
// with in-flight refcounts.
func (m *Model) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	if !m.mapped || m.mapping == nil {
		return nil
	}
	b := m.mapping
	m.mapping = nil
	return unmapFile(b)
}

// float32View reinterprets little-endian file bytes as a []float32
// without copying. Sections are SectionAlign-aligned within a
// page-aligned mapping, so the pointer is always float32-aligned.
func float32View(b []byte) []float32 {
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// int8View reinterprets quantized section bytes as []int8 without
// copying (no endianness applies to single bytes).
func int8View(b []byte) []int8 {
	return unsafe.Slice((*int8)(unsafe.Pointer(&b[0])), len(b))
}
