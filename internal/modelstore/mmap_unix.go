//go:build unix

package modelstore

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this build can map weight files.
const mmapSupported = true

// mapFile maps size bytes of f read-only and shared. MAP_SHARED of a
// read-only mapping is the page-cache sharing the paper's
// one-model-per-host deployment wants: every replica process that
// maps the same weight file reads the same physical pages, so N
// replicas cost one copy of the weights in RAM, and an unloaded
// model's pages can be reclaimed by the kernel without a write-back.
func mapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// unmapFile releases a mapping created by mapFile.
func unmapFile(b []byte) error {
	return syscall.Munmap(b)
}
