package modelstore

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"djinn/internal/nn"
	"djinn/internal/tensor"
)

// testNet builds a small two-FC network with deterministic weights.
func testNet(seed uint64) *nn.Net {
	rng := tensor.NewRNG(seed)
	n := nn.NewNet("tiny", nn.KindDNN, 8)
	n.Add(nn.NewFC("fc1", rng, 8, 16)).
		Add(nn.NewReLU("relu")).
		Add(nn.NewFC("fc2", rng, 16, 4)).
		Add(nn.NewSoftmax("prob"))
	return n
}

// writeTestFile exports testNet(seed) and returns the path.
func writeTestFile(t *testing.T, name string, version int, seed uint64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name+".djw")
	if err := WriteFile(path, name, version, testNet(seed)); err != nil {
		t.Fatal(err)
	}
	return path
}

func forward1(netw *nn.Net, in []float32) []float32 {
	plan := netw.Compile(1)
	copy(plan.In(1).Data(), in)
	return append([]float32(nil), plan.Run(1).Data()...)
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := writeTestFile(t, "tiny", 3, 7)
	netw, meta, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Name != "tiny" || meta.Version != 3 {
		t.Fatalf("meta identity %s, want tiny@v3", meta.ID())
	}
	if len(meta.Params) != 4 {
		t.Fatalf("manifest has %d sections, want 4 (fc1/fc2 weight+bias)", len(meta.Params))
	}
	want := testNet(7)
	if meta.WeightBytes() != want.WeightBytes() {
		t.Fatalf("weight bytes %d, want %d", meta.WeightBytes(), want.WeightBytes())
	}
	in := make([]float32, 8)
	tensor.NewRNG(42).FillUniform(in, -1, 1)
	got, ref := forward1(netw, in), forward1(want, in)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("output %d: %g != %g (not bit-identical)", i, got[i], ref[i])
		}
	}
	// Every section offset must be aligned.
	for _, s := range meta.Params {
		if s.Offset%SectionAlign != 0 {
			t.Fatalf("section %q at unaligned offset %d", s.Name, s.Offset)
		}
	}
}

func TestOpenZeroCopy(t *testing.T) {
	path := writeTestFile(t, "tiny", 1, 7)
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if mmapSupported && !m.Mapped() {
		t.Fatal("expected an mmap-backed model on this platform")
	}
	if m.Bytes() <= m.Meta().WeightBytes() {
		t.Fatalf("residency cost %d should exceed raw weight bytes %d (header)", m.Bytes(), m.Meta().WeightBytes())
	}
	in := make([]float32, 8)
	tensor.NewRNG(42).FillUniform(in, -1, 1)
	got, ref := forward1(m.Net(), in), forward1(testNet(7), in)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("output %d: %g != %g (not bit-identical)", i, got[i], ref[i])
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestVerifyFile(t *testing.T) {
	path := writeTestFile(t, "tiny", 1, 7)
	meta, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID().String() != "tiny@v1" {
		t.Fatalf("verified identity %s, want tiny@v1", meta.ID())
	}
}

// patchHeader applies mutate to the file's header bytes and recomputes
// the header CRC, so structural corruption reaches the field checks
// instead of stopping at the checksum.
func patchHeader(t *testing.T, path string, mutate func(data []byte)) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	headerLen := le32(data[8:])
	mutate(data[:headerLen])
	binary.LittleEndian.PutUint32(data[12:], crc32.Checksum(data[preambleLen:headerLen], castagnoli))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestReaderRejectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
		wantErr string
	}{
		{"truncated preamble", func(t *testing.T, path string) {
			truncate(t, path, 10)
		}, "preamble"},
		{"truncated header", func(t *testing.T, path string) {
			truncate(t, path, 40)
		}, "truncated header"},
		{"truncated data (oversized section)", func(t *testing.T, path string) {
			fi, _ := os.Stat(path)
			truncate(t, path, fi.Size()-4)
		}, "oversized section"},
		{"bad header checksum", func(t *testing.T, path string) {
			flipByte(t, path, preambleLen+3)
		}, "header checksum mismatch"},
		{"bad section checksum", func(t *testing.T, path string) {
			fi, _ := os.Stat(path)
			flipByte(t, path, fi.Size()-1)
		}, "section checksum mismatch"},
		{"bad magic", func(t *testing.T, path string) {
			flipByte(t, path, 0)
		}, "bad magic"},
		{"unsupported version", func(t *testing.T, path string) {
			flipByte(t, path, 4)
		}, "unsupported format version"},
		{"duplicate parameter", func(t *testing.T, path string) {
			patchHeader(t, path, func(b []byte) {
				// Rename fc2.weight to fc1.weight (same length), a
				// duplicate of the first manifest entry.
				i := bytes.Index(b, []byte("fc2.weight"))
				if i < 0 {
					t.Fatal("fc2.weight not found in header")
				}
				copy(b[i:], "fc1.weight")
			})
		}, "duplicate parameter"},
		{"section overlap", func(t *testing.T, path string) {
			patchHeader(t, path, func(b []byte) {
				// Point the second section at the first's offset.
				i := bytes.Index(b, []byte("fc1.bias"))
				if i < 0 {
					t.Fatal("fc1.bias not found in header")
				}
				off := i + len("fc1.bias") + 1 + 4 // ndims u8 + one dim u32
				binary.LittleEndian.PutUint64(b[off:], uint64(align64(int64(le32(b[8:])))))
			})
		}, "aligned and contiguous"},
		{"definition mismatch", func(t *testing.T, path string) {
			patchHeader(t, path, func(b []byte) {
				// Grow fc1's netdef width so the definition no longer
				// matches the manifest shapes.
				i := bytes.Index(b, []byte("layer fc1 fc { out: 16 }"))
				if i < 0 {
					t.Fatal("fc1 def line not found in header")
				}
				copy(b[i:], []byte("layer fc1 fc { out: 61 }"))
			})
		}, "definition"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTestFile(t, "tiny", 1, 7)
			tc.corrupt(t, path)
			if _, _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ReadFile error %v, want substring %q", err, tc.wantErr)
			}
			// The mmap loader must reject everything the strict reader
			// rejects except section payload corruption (CRC checks of
			// tensor data are not on the hot load path).
			if tc.wantErr != "section checksum mismatch" {
				if m, err := Open(path); err == nil {
					m.Close()
					t.Fatalf("Open accepted a file ReadFile rejects (%s)", tc.name)
				}
			}
			// VerifyFile rejects all of them.
			if _, err := VerifyFile(path); err == nil {
				t.Fatalf("VerifyFile accepted corrupt file (%s)", tc.name)
			}
		})
	}
}

func truncate(t *testing.T, path string, size int64) {
	t.Helper()
	if err := os.Truncate(path, size); err != nil {
		t.Fatal(err)
	}
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestParseID(t *testing.T) {
	cases := []struct {
		in   string
		want ID
		ok   bool
	}{
		{"imc", ID{Name: "imc"}, true},
		{"imc@v1", ID{Name: "imc", Version: 1}, true},
		{"imc@v42", ID{Name: "imc", Version: 42}, true},
		{"imc@1", ID{}, false},
		{"imc@v0", ID{}, false},
		{"imc@vx", ID{}, false},
		{"@v1", ID{}, false},
		{"a b@v1", ID{}, false},
		{"", ID{}, false},
		{strings.Repeat("x", MaxNameLen+1), ID{}, false},
	}
	for _, tc := range cases {
		got, err := ParseID(tc.in)
		if (err == nil) != tc.ok {
			t.Fatalf("ParseID(%q) err=%v, want ok=%v", tc.in, err, tc.ok)
		}
		if err == nil && got != tc.want {
			t.Fatalf("ParseID(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	id := ID{Name: "face", Version: 7}
	round, err := ParseID(id.String())
	if err != nil || round != id {
		t.Fatalf("ParseID(%q) = %v, %v", id.String(), round, err)
	}
}
