package modelstore

import (
	"testing"

	"djinn/internal/models"
	"djinn/internal/tensor"
)

// TestGoldenTonicRoundTrip is the acceptance gate for the store: for
// every Tonic Suite network, export → mmap-load → Compile → forward
// must be bit-identical to the in-memory build. Weights travel
// through the file as raw float32 bits and compute reads them from
// mapped pages, so any divergence at all means the format, the
// loader, or the rebinding is wrong.
//
// All seven nets together are ~850 MB of weights; the test writes and
// maps them one at a time but the BuildCached reference nets stay
// resident, so this is the heaviest test in the repo.
func TestGoldenTonicRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("seven-network export is heavyweight; skipped with -short")
	}
	dir := t.TempDir()
	for _, a := range models.Apps {
		a := a
		t.Run(a.String(), func(t *testing.T) {
			ref := models.BuildCached(a)
			name := ExportName(a)
			path := ExportPath(dir, name, 1)
			if err := WriteFile(path, name, 1, ref); err != nil {
				t.Fatal(err)
			}
			m, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			if m.Meta().WeightBytes() != ref.WeightBytes() {
				t.Fatalf("exported %d weight bytes, built net has %d", m.Meta().WeightBytes(), ref.WeightBytes())
			}

			in := make([]float32, numElems(ref.InShape()))
			tensor.NewRNG(99).FillUniform(in, 0, 1)
			refPlan := ref.Compile(1)
			copy(refPlan.In(1).Data(), in)
			want := refPlan.Run(1).Data()
			gotPlan := m.Net().Compile(1)
			copy(gotPlan.In(1).Data(), in)
			got := gotPlan.Run(1).Data()
			if len(got) != len(want) {
				t.Fatalf("output length %d, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s output %d: %g != %g (mmap-loaded net diverges from in-memory build)", a, i, got[i], want[i])
				}
			}
		})
	}
}

func numElems(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}
