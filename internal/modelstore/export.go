package modelstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"djinn/internal/models"
)

// ExportName returns the serving name an application's weight file is
// exported under: the paper's abbreviation, lowercased ("imc", "dig",
// …), matching tonic.ServiceName (asserted by a tonic test; this
// package cannot import tonic without a cycle through service).
func ExportName(a models.App) string {
	return strings.ToLower(a.String())
}

// ExportPath returns the conventional file name for a model version
// in dir: "<name>@v<N>.djw".
func ExportPath(dir, name string, version int) string {
	return filepath.Join(dir, fmt.Sprintf("%s@v%d.djw", name, version))
}

// ExportTonic writes the given Tonic applications' networks to dir as
// version `version` weight files and returns the paths written. It
// builds through models.BuildCached, so the files are bit-identical
// to the nets a seed-built server serves: models.Build becomes a
// one-time export step instead of a per-process startup cost.
func ExportTonic(dir string, apps []models.App, version int) ([]string, error) {
	return ExportTonicOpts(dir, apps, version, WriteOptions{})
}

// ExportTonicOpts is ExportTonic with explicit write options — pass
// WriteOptions{Quantize: true} to emit version-2 files whose conv/FC
// weights carry int8 quantized sections, so a server opening them runs
// Int8 plans without paying quantization at load time.
func ExportTonicOpts(dir string, apps []models.App, version int, o WriteOptions) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(apps))
	for _, a := range apps {
		name := ExportName(a)
		path := ExportPath(dir, name, version)
		if err := WriteFileOpts(path, name, version, models.BuildCached(a), o); err != nil {
			return nil, fmt.Errorf("modelstore: exporting %s: %w", name, err)
		}
		paths = append(paths, path)
	}
	return paths, nil
}
