//go:build !unix

package modelstore

import (
	"io"
	"os"
)

// mmapSupported reports whether this build can map weight files. On
// platforms without syscall.Mmap the loader falls back to reading the
// file into anonymous memory: same API, no page-cache sharing.
const mmapSupported = false

func mapFile(f *os.File, size int64) ([]byte, error) {
	b := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), b); err != nil {
		return nil, err
	}
	return b, nil
}

func unmapFile(b []byte) error { return nil }
