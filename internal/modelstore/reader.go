package modelstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"strings"

	"djinn/internal/nn"
)

// ReadMeta opens path and parses its header without touching tensor
// data (section checksums are not verified — use VerifyFile for a
// full-integrity pass). This is what Registry.Register uses: one
// header read tells it the model's identity and exactly how many
// bytes residency will cost, without faulting in a single weight.
func ReadMeta(path string) (*Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return readMetaFrom(f, fi.Size())
}

func readMetaFrom(r io.ReaderAt, fileSize int64) (*Meta, error) {
	var pre [preambleLen]byte
	if fileSize < preambleLen {
		return nil, fmt.Errorf("modelstore: file too small for preamble (%d bytes)", fileSize)
	}
	if _, err := r.ReadAt(pre[:], 0); err != nil {
		return nil, err
	}
	headerLen := int64(le32(pre[8:]))
	if headerLen < preambleLen+11 || headerLen > maxHeaderLen || headerLen > fileSize {
		// Out of range; delegate the error message to parseMeta's
		// bounds checks (it cannot succeed on a bare preamble).
		_, _, err := parseMeta(pre[:], fileSize)
		return nil, err
	}
	head := make([]byte, headerLen)
	if _, err := r.ReadAt(head, 0); err != nil {
		return nil, err
	}
	meta, _, err := parseMeta(head, fileSize)
	return meta, err
}

// ReadFile is the strict validating reader: it loads the whole file
// into memory, verifies the header and every section checksum,
// reconstructs the network from the embedded definition, and copies
// the weights in. The returned net owns its memory (nothing is mapped)
// and is bit-identical to the net that was exported. Use Open for the
// zero-copy serving path; ReadFile is for tools and tests that want
// maximum validation.
func ReadFile(path string) (*nn.Net, *Meta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	meta, _, err := parseMeta(data, int64(len(data)))
	if err != nil {
		return nil, nil, err
	}
	for _, s := range meta.Params {
		if got := crc32.Checksum(data[s.Offset:s.Offset+s.Size], castagnoli); got != s.CRC {
			return nil, nil, fmt.Errorf("modelstore: parameter %q: section checksum mismatch (%#x != %#x)", s.Name, got, s.CRC)
		}
	}
	for _, q := range meta.Quant {
		if got := crc32.Checksum(data[q.Offset:q.Offset+q.Size], castagnoli); got != q.CRC {
			return nil, nil, fmt.Errorf("modelstore: parameter %q: quantized section checksum mismatch (%#x != %#x)", meta.Params[q.ParamIdx].Name, got, q.CRC)
		}
	}
	netw, err := buildNet(meta)
	if err != nil {
		return nil, nil, err
	}
	if err := bindSections(netw, meta, func(s ParamSection, dst []float32) {
		decodeSection(data[s.Offset:s.Offset+s.Size], dst)
	}); err != nil {
		return nil, nil, err
	}
	if err := bindQuantSections(netw, meta, func(q QuantSection) []int8 {
		dst := make([]int8, q.Size)
		decodeQuantSection(data[q.Offset:q.Offset+q.Size], dst)
		return dst
	}); err != nil {
		return nil, nil, err
	}
	return netw, meta, nil
}

// VerifyFile checks a weight file end to end — header structure,
// header CRC, every section CRC, and that the embedded definition
// builds a network whose parameters match the manifest — while
// streaming, so verifying a 475 MB DeepFace file does not hold
// 475 MB. It returns the parsed header on success.
func VerifyFile(path string) (*Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	meta, err := readMetaFrom(f, fi.Size())
	if err != nil {
		return nil, err
	}
	netw, err := buildNet(meta)
	if err != nil {
		return nil, err
	}
	if err := checkManifest(netw, meta); err != nil {
		return nil, err
	}
	buf := make([]byte, 1<<16)
	streamCRC := func(name string, offset, size int64, want uint32, what string) error {
		crc := uint32(0)
		for off := int64(0); off < size; {
			n := int64(len(buf))
			if size-off < n {
				n = size - off
			}
			if _, err := io.ReadFull(io.NewSectionReader(f, offset+off, n), buf[:n]); err != nil {
				return fmt.Errorf("modelstore: parameter %q: %w", name, err)
			}
			crc = crc32.Update(crc, castagnoli, buf[:n])
			off += n
		}
		if crc != want {
			return fmt.Errorf("modelstore: parameter %q: %s checksum mismatch (%#x != %#x)", name, what, crc, want)
		}
		return nil
	}
	for _, s := range meta.Params {
		if err := streamCRC(s.Name, s.Offset, s.Size, s.CRC, "section"); err != nil {
			return nil, err
		}
	}
	for _, q := range meta.Quant {
		if err := streamCRC(meta.Params[q.ParamIdx].Name, q.Offset, q.Size, q.CRC, "quantized section"); err != nil {
			return nil, err
		}
	}
	return meta, nil
}

// buildNet reconstructs the architecture from the embedded definition
// without synthesising weights (they are about to be bound or copied).
func buildNet(meta *Meta) (*nn.Net, error) {
	netw, err := nn.ParseNetDefNoInit(strings.NewReader(meta.Def))
	if err != nil {
		return nil, fmt.Errorf("modelstore: %s embedded definition: %w", meta.ID(), err)
	}
	return netw, nil
}

// checkManifest verifies that the definition-built net's parameters
// and the manifest agree exactly: same names, same order, same shapes.
// A file that passes has no orphan sections and no unbacked
// parameters.
func checkManifest(netw *nn.Net, meta *Meta) error {
	params := netw.Params()
	if len(params) != len(meta.Params) {
		return fmt.Errorf("modelstore: %s definition has %d parameters, manifest %d", meta.ID(), len(params), len(meta.Params))
	}
	for i, p := range params {
		s := meta.Params[i]
		if p.Name != s.Name {
			return fmt.Errorf("modelstore: %s parameter %d: definition says %q, manifest %q", meta.ID(), i, p.Name, s.Name)
		}
		shape := p.W.Shape()
		if len(shape) != len(s.Shape) {
			return fmt.Errorf("modelstore: %s parameter %q: definition shape %v, manifest %v", meta.ID(), p.Name, shape, s.Shape)
		}
		for j := range shape {
			if shape[j] != s.Shape[j] {
				return fmt.Errorf("modelstore: %s parameter %q: definition shape %v, manifest %v", meta.ID(), p.Name, shape, s.Shape)
			}
		}
	}
	// Quantized sections may only shadow GEMM weight matrices — the
	// parameters an Int8 plan actually consumes. parseMeta has already
	// pinned index monotonicity, sizes and placement.
	if len(meta.Quant) > 0 {
		gemm := netw.GemmWeightNames()
		for _, q := range meta.Quant {
			if name := meta.Params[q.ParamIdx].Name; !gemm[name] {
				return fmt.Errorf("modelstore: %s: quantized section for %q, which is not a conv/fc weight", meta.ID(), name)
			}
		}
	}
	return nil
}

// bindSections fills every parameter of netw from the manifest via
// fill, after checking the manifest matches the net.
func bindSections(netw *nn.Net, meta *Meta, fill func(s ParamSection, dst []float32)) error {
	if err := checkManifest(netw, meta); err != nil {
		return err
	}
	params := netw.Params()
	for i, p := range params {
		fill(meta.Params[i], p.W.Data())
	}
	return nil
}

// bindQuantSections attaches every quantized section to its parameter's
// Q slot via load, which returns the int8 values (a decoded copy, or a
// zero-copy view over a mapping). Assumes checkManifest has passed.
func bindQuantSections(netw *nn.Net, meta *Meta, load func(q QuantSection) []int8) error {
	if len(meta.Quant) == 0 {
		return nil
	}
	params := netw.Params()
	for _, q := range meta.Quant {
		params[q.ParamIdx].Q = &nn.QuantizedParam{Scale: q.Scale, Data: load(q)}
	}
	return nil
}

// decodeSection decodes little-endian float32 section bytes into dst.
func decodeSection(b []byte, dst []float32) {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
}

// decodeQuantSection decodes raw int8 section bytes into dst.
func decodeQuantSection(b []byte, dst []int8) {
	for i := range dst {
		dst[i] = int8(b[i])
	}
}
