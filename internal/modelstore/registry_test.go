package modelstore

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"djinn/internal/tensor"
	"djinn/internal/testutil"
)

// writeFleet exports n versions of small models into one directory and
// registers them, returning the registry and the IDs in registration
// order. Each model is a distinct network (different seed) under the
// name "m<i>".
func writeFleet(t *testing.T, reg *Registry, n int) []ID {
	t.Helper()
	dir := t.TempDir()
	ids := make([]ID, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("m%03d", i)
		path := filepath.Join(dir, name+".djw")
		if err := WriteFile(path, name, 1, testNet(uint64(i+1))); err != nil {
			t.Fatal(err)
		}
		meta, err := reg.Register(path)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = meta.ID()
	}
	return ids
}

func TestRegistryBudgetLRU(t *testing.T) {
	testutil.NoLeaks(t)
	// testNet files are ~1.1 KB; budget of 3 files' worth.
	reg := NewRegistry(Config{BudgetBytes: 4 * 1024})
	defer reg.Close()
	var evicted []ID
	reg.SetOnEvict(func(id ID) { evicted = append(evicted, id) })
	ids := writeFleet(t, reg, 5)

	use := func(id ID) {
		t.Helper()
		m, err := reg.Acquire(id)
		if err != nil {
			t.Fatal(err)
		}
		if m.ID() != id {
			t.Fatalf("acquired %s, want %s", m.ID(), id)
		}
		reg.Release(id)
	}
	use(ids[0])
	use(ids[1])
	use(ids[2])
	st := reg.Stats()
	if st.Resident != 3 || st.Evictions != 0 {
		t.Fatalf("after 3 loads: %+v", st)
	}
	if st.ResidentBytes > st.BudgetBytes {
		t.Fatalf("resident %d over budget %d", st.ResidentBytes, st.BudgetBytes)
	}
	// Touch 0 so 1 becomes LRU, then load a fourth: 1 must go.
	use(ids[0])
	use(ids[3])
	if len(evicted) != 1 || evicted[0] != ids[1] {
		t.Fatalf("evicted %v, want [%s]", evicted, ids[1])
	}
	st = reg.Stats()
	if st.Resident != 3 || st.ResidentBytes > st.BudgetBytes {
		t.Fatalf("after eviction: %+v", st)
	}
	if st.PeakBytes > st.BudgetBytes {
		t.Fatalf("peak %d exceeded budget %d", st.PeakBytes, st.BudgetBytes)
	}
	if st.Loads != 4 || st.Faults != 4 {
		t.Fatalf("loads/faults %d/%d, want 4/4", st.Loads, st.Faults)
	}
	// A model evicted and re-acquired reloads transparently.
	use(ids[1])
	if st := reg.Stats(); st.Loads != 5 || st.Evictions != 2 {
		t.Fatalf("after reload: %+v", st)
	}
}

func TestRegistryPinsBlockEviction(t *testing.T) {
	testutil.NoLeaks(t)
	reg := NewRegistry(Config{BudgetBytes: 2 * 1024}) // fits ~1 model
	defer reg.Close()
	ids := writeFleet(t, reg, 2)

	if _, err := reg.Acquire(ids[0]); err != nil {
		t.Fatal(err)
	}
	// Explicit evict of a pinned model fails.
	if err := reg.Evict(ids[0]); !errors.Is(err, ErrPinned) {
		t.Fatalf("Evict(pinned) = %v, want ErrPinned", err)
	}
	// Loading a second model with the only evictable model pinned
	// overshoots the budget transiently instead of failing.
	m1, err := reg.Acquire(ids[1])
	if err != nil {
		t.Fatal(err)
	}
	st := reg.Stats()
	if st.Resident != 2 {
		t.Fatalf("want transient overshoot with both resident, got %+v", st)
	}
	if st.ResidentBytes <= st.BudgetBytes {
		t.Fatalf("expected ResidentBytes %d > budget %d while all pinned", st.ResidentBytes, st.BudgetBytes)
	}
	reg.Release(ids[1])
	_ = m1
	reg.Release(ids[0])
	// Now the budget can be restored by the next load.
	if err := reg.Evict(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := reg.Evict(ids[0]); !errors.Is(err, ErrNotResident) {
		t.Fatalf("double Evict = %v, want ErrNotResident", err)
	}
	if err := reg.Evict(ID{Name: "ghost", Version: 1}); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("Evict(unknown) = %v, want ErrNotRegistered", err)
	}
}

func TestRegistryResolve(t *testing.T) {
	testutil.NoLeaks(t)
	reg := NewRegistry(Config{})
	defer reg.Close()
	dir := t.TempDir()
	for _, v := range []int{1, 3, 2} {
		path := ExportPath(dir, "imc", v)
		if err := WriteFile(path, "imc", v, testNet(uint64(v))); err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Register(path); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.Register(ExportPath(dir, "imc", 2)); err == nil {
		t.Fatal("re-registering imc@v2 should fail")
	}
	if id, ok := reg.Resolve("imc"); !ok || id.Version != 3 {
		t.Fatalf("Resolve(imc) = %v %v, want imc@v3", id, ok)
	}
	if id, ok := reg.Resolve("imc@v2"); !ok || id.Version != 2 {
		t.Fatalf("Resolve(imc@v2) = %v %v", id, ok)
	}
	if _, ok := reg.Resolve("imc@v9"); ok {
		t.Fatal("Resolve(imc@v9) should miss")
	}
	if _, ok := reg.Resolve("dig"); ok {
		t.Fatal("Resolve(dig) should miss")
	}
	if _, ok := reg.Resolve("bad name"); ok {
		t.Fatal("Resolve of invalid name should miss")
	}
	infos := reg.List()
	if len(infos) != 3 || infos[0].ID.Version != 1 || infos[2].ID.Version != 3 {
		t.Fatalf("List = %+v", infos)
	}
}

func TestRegistryConcurrentAcquireSingleLoad(t *testing.T) {
	testutil.NoLeaks(t)
	reg := NewRegistry(Config{Warm: true})
	defer reg.Close()
	ids := writeFleet(t, reg, 1)
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := reg.Acquire(ids[0])
			if err != nil {
				errs <- err
				return
			}
			// Run a real forward so -race sees concurrent readers of
			// the shared mapped weights.
			plan := m.Net().Compile(1)
			tensor.NewRNG(9).FillUniform(plan.In(1).Data(), -1, 1)
			plan.Run(1)
			reg.Release(ids[0])
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := reg.Stats()
	if st.Loads != 1 {
		t.Fatalf("%d loads for one model under concurrent acquire, want 1 (single flight)", st.Loads)
	}
	if st.Faults != 1 {
		t.Fatalf("faults = %d, want 1", st.Faults)
	}
}

func TestRegistryCloseRefusesPinned(t *testing.T) {
	reg := NewRegistry(Config{})
	ids := writeFleet(t, reg, 1)
	if _, err := reg.Acquire(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := reg.Close(); !errors.Is(err, ErrPinned) {
		t.Fatalf("Close with pin = %v, want ErrPinned", err)
	}
	reg.Release(ids[0])
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	if st := reg.Stats(); st.Resident != 0 || st.ResidentBytes != 0 {
		t.Fatalf("after Close: %+v", st)
	}
}
