package modelstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"djinn/internal/tensor"
)

// Registry errors surfaced to control-plane callers.
var (
	// ErrNotRegistered is returned for an ID the registry has never
	// been told about.
	ErrNotRegistered = errors.New("modelstore: model not registered")
	// ErrNotResident is returned by Evict for a registered model that
	// is not loaded.
	ErrNotResident = errors.New("modelstore: model not resident")
	// ErrPinned is returned by Evict when in-flight queries still pin
	// the model.
	ErrPinned = errors.New("modelstore: model pinned by in-flight queries")
)

// Config parameterises a Registry.
type Config struct {
	// BudgetBytes caps the total Bytes() of resident models; 0 means
	// unlimited. The budget is enforced by LRU eviction of unpinned
	// models before each load. When every resident model is pinned the
	// load proceeds anyway (a transient overshoot) rather than failing
	// queries: the paper's service sheds load at admission, not by
	// refusing to page in the model a query already admitted against.
	BudgetBytes int64
	// Warm, when set, runs one compiled single-instance forward after
	// each load, so the first real query does not pay plan compilation
	// or first-touch page faults.
	Warm bool
	// Logf receives lifecycle events; nil discards them.
	Logf func(format string, args ...any)
}

// Info is one model's row in Registry.List.
type Info struct {
	ID       ID
	Path     string
	Resident bool
	Pins     int
	Bytes    int64 // residency cost (file size)
	Params   int64 // parameter count
}

// Stats is a snapshot of the registry's gauges and counters, exported
// as djinn_model_* on the admin plane.
type Stats struct {
	Registered    int   // models known
	Resident      int   // models currently loaded
	ResidentBytes int64 // bytes currently mapped
	PeakBytes     int64 // high-water ResidentBytes
	BudgetBytes   int64 // configured cap (0 = unlimited)
	Loads         int64 // successful loads (demand + explicit)
	Faults        int64 // loads triggered by a query arriving for a non-resident model
	Evictions     int64 // models unloaded (LRU + explicit)
	LoadErrors    int64 // failed load attempts
}

// Registry owns model residency for a serving process: it knows every
// registered model version, loads them on demand (or explicitly),
// pins them while queries are in flight, and evicts least-recently
// used models to stay under a byte budget.
//
// Locking: mu guards all registry state and is never held across I/O.
// lifecycle serialises the slow paths (load, evict) so at most one
// model is being mapped or unmapped at a time — concurrent queries
// for the same cold model trigger one load, not N ("single flight").
// The OnEvict hook runs holding lifecycle but not mu, after the
// victim is unpublished (no new pins possible) and before its mapping
// is closed (late readers of registry state never see a dangling
// model).
type Registry struct {
	cfg     Config
	onEvict func(ID)

	lifecycle sync.Mutex // serialises load/evict slow paths

	mu            sync.Mutex
	entries       map[ID]*entry
	clock         int64 // logical LRU clock; bumped on each use
	residentBytes int64
	peakBytes     int64
	loads         int64
	faults        int64
	evictions     int64
	loadErrors    int64
}

type entry struct {
	id      ID
	path    string
	bytes   int64 // expected residency cost, from the header
	params  int64
	model   *Model // non-nil while resident
	pins    int    // in-flight acquisitions
	lastUse int64  // clock value at last acquire/load
}

// NewRegistry returns an empty registry.
func NewRegistry(cfg Config) *Registry {
	return &Registry{cfg: cfg, entries: map[ID]*entry{}}
}

// SetOnEvict installs a hook called for each model the registry
// unloads, after the model is unpublished (no new pins can be taken)
// and before its mapping is closed. The service tier uses it to drain
// and unregister the model's application so no worker can touch the
// pages being unmapped. The hook must not call back into the
// Registry.
func (r *Registry) SetOnEvict(fn func(ID)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onEvict = fn
}

func (r *Registry) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// Register adds the weight file at path to the registry without
// loading it: one header read yields the model's identity and
// residency cost. Registering the same ID twice is an error.
func (r *Registry) Register(path string) (*Meta, error) {
	meta, err := ReadMeta(path)
	if err != nil {
		return nil, err
	}
	id := meta.ID()
	var params int64
	for _, s := range meta.Params {
		params += int64(s.Elems())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[id]; ok {
		return nil, fmt.Errorf("modelstore: %s already registered", id)
	}
	r.entries[id] = &entry{id: id, path: path, bytes: meta.FileSize, params: params}
	return meta, nil
}

// Resolve maps a request's model name to a registered ID: "name@vN"
// resolves exactly; a bare "name" resolves to its highest registered
// version (so clients that do not care about versions always get the
// newest model, and canary routing picks versions explicitly).
func (r *Registry) Resolve(name string) (ID, bool) {
	want, err := ParseID(name)
	if err != nil {
		return ID{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if want.Versioned() {
		_, ok := r.entries[want]
		return want, ok
	}
	best := ID{}
	for id := range r.entries {
		if id.Name == want.Name && id.Version > best.Version {
			best = id
		}
	}
	return best, best.Version > 0
}

// Acquire returns the model, loading it if necessary, with one pin
// held. The caller must Release the ID when its query completes; a
// pinned model is never evicted, so the mapping stays valid for the
// query's whole lifetime.
func (r *Registry) Acquire(id ID) (*Model, error) {
	r.mu.Lock()
	e, ok := r.entries[id]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotRegistered, id)
	}
	if e.model != nil {
		m := e.model
		e.pins++
		r.touchLocked(e)
		r.mu.Unlock()
		return m, nil
	}
	r.mu.Unlock()
	return r.loadSlow(e, true)
}

// Release drops one Acquire pin.
func (r *Registry) Release(id ID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok || e.pins <= 0 {
		panic(fmt.Sprintf("modelstore: Release(%s) without Acquire", id))
	}
	e.pins--
}

// Load makes the model resident without holding a pin: the explicit
// pre-warm path behind the `model load` control verb.
func (r *Registry) Load(id ID) error {
	r.mu.Lock()
	e, ok := r.entries[id]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotRegistered, id)
	}
	if e.model != nil {
		r.touchLocked(e)
		r.mu.Unlock()
		return nil
	}
	r.mu.Unlock()
	if _, err := r.loadSlow(e, false); err != nil {
		return err
	}
	r.Release(id)
	return nil
}

// touchLocked bumps the entry's LRU recency. Caller holds mu.
func (r *Registry) touchLocked(e *entry) {
	r.clock++
	e.lastUse = r.clock
}

// loadSlow is the cold path: serialise behind lifecycle, re-check,
// make room under the budget, map the file, optionally warm it, and
// publish. Returns with one pin held. demand marks loads triggered by
// a query (a "model fault") as opposed to explicit pre-loads.
func (r *Registry) loadSlow(e *entry, demand bool) (*Model, error) {
	r.lifecycle.Lock()
	defer r.lifecycle.Unlock()

	// Another Acquire may have loaded it while we waited.
	r.mu.Lock()
	if e.model != nil {
		m := e.model
		e.pins++
		r.touchLocked(e)
		r.mu.Unlock()
		return m, nil
	}
	r.mu.Unlock()

	r.makeRoom(e.bytes)
	m, err := Open(e.path)
	if err != nil {
		r.mu.Lock()
		r.loadErrors++
		r.mu.Unlock()
		return nil, err
	}
	if got := m.ID(); got != e.id {
		// The file changed identity since registration; refuse to
		// serve it under the registered name.
		m.Close()
		r.mu.Lock()
		r.loadErrors++
		r.mu.Unlock()
		return nil, fmt.Errorf("modelstore: %s now contains %s (file replaced?)", e.path, got)
	}
	if r.cfg.Warm {
		warm(m)
	}
	r.mu.Lock()
	e.model = m
	e.pins++
	r.touchLocked(e)
	r.residentBytes += m.Bytes()
	if r.residentBytes > r.peakBytes {
		r.peakBytes = r.residentBytes
	}
	r.loads++
	if demand {
		r.faults++
	}
	over := r.cfg.BudgetBytes > 0 && r.residentBytes > r.cfg.BudgetBytes
	r.mu.Unlock()
	r.logf("modelstore: loaded %s (%d bytes, mapped=%v)", e.id, m.Bytes(), m.Mapped())
	if over {
		r.logf("modelstore: budget overshoot: all resident models pinned while loading %s", e.id)
	}
	return m, nil
}

// makeRoom evicts least-recently-used unpinned models until need
// bytes fit under the budget. Caller holds lifecycle (not mu). If
// every resident model is pinned the loop stops: the load overshoots
// transiently rather than failing the query.
func (r *Registry) makeRoom(need int64) {
	if r.cfg.BudgetBytes <= 0 {
		return
	}
	for {
		r.mu.Lock()
		if r.residentBytes+need <= r.cfg.BudgetBytes {
			r.mu.Unlock()
			return
		}
		var victim *entry
		for _, e := range r.entries {
			if e.model == nil || e.pins > 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			r.mu.Unlock()
			return
		}
		m := victim.model
		victim.model = nil // unpublish: no new pins can be taken
		r.residentBytes -= m.Bytes()
		r.evictions++
		r.mu.Unlock()
		r.evictUnpublished(victim.id, m)
	}
}

// evictUnpublished finishes an eviction once the victim is
// unpublished: notify the service tier (which drains the model's
// application), then unmap. Caller holds lifecycle.
func (r *Registry) evictUnpublished(id ID, m *Model) {
	if r.onEvict != nil {
		r.onEvict(id)
	}
	m.Close()
	r.logf("modelstore: evicted %s (%d bytes)", id, m.Bytes())
}

// Evict explicitly unloads a model. It fails with ErrPinned if
// queries are in flight and ErrNotResident if the model is not
// loaded.
func (r *Registry) Evict(id ID) error {
	r.lifecycle.Lock()
	defer r.lifecycle.Unlock()
	r.mu.Lock()
	e, ok := r.entries[id]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotRegistered, id)
	}
	if e.model == nil {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotResident, id)
	}
	if e.pins > 0 {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s (%d in flight)", ErrPinned, id, e.pins)
	}
	m := e.model
	e.model = nil
	r.residentBytes -= m.Bytes()
	r.evictions++
	r.mu.Unlock()
	r.evictUnpublished(id, m)
	return nil
}

// List returns every registered model, sorted by ID.
func (r *Registry) List() []Info {
	r.mu.Lock()
	out := make([]Info, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, Info{
			ID:       e.id,
			Path:     e.path,
			Resident: e.model != nil,
			Pins:     e.pins,
			Bytes:    e.bytes,
			Params:   e.params,
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID.Name != out[j].ID.Name {
			return out[i].ID.Name < out[j].ID.Name
		}
		return out[i].ID.Version < out[j].ID.Version
	})
	return out
}

// Stats returns a snapshot of the registry's counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{
		Registered:    len(r.entries),
		ResidentBytes: r.residentBytes,
		PeakBytes:     r.peakBytes,
		BudgetBytes:   r.cfg.BudgetBytes,
		Loads:         r.loads,
		Faults:        r.faults,
		Evictions:     r.evictions,
		LoadErrors:    r.loadErrors,
	}
	for _, e := range r.entries {
		if e.model != nil {
			st.Resident++
		}
	}
	return st
}

// Close unloads every resident model. It must be called after the
// serving tier has drained (no pins); it returns ErrPinned if any
// model is still in use. The OnEvict hook is not invoked: Close is
// shutdown, and the server tears its applications down itself.
func (r *Registry) Close() error {
	r.lifecycle.Lock()
	defer r.lifecycle.Unlock()
	r.mu.Lock()
	var victims []*Model
	for _, e := range r.entries {
		if e.model == nil {
			continue
		}
		if e.pins > 0 {
			r.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrPinned, e.id)
		}
		victims = append(victims, e.model)
		r.residentBytes -= e.model.Bytes()
		e.model = nil
	}
	r.mu.Unlock()
	for _, m := range victims {
		m.Close()
	}
	return nil
}

// warm runs one single-instance forward through a compiled plan so
// plan compilation and the first weight-page faults happen at load
// time, not on the first query.
func warm(m *Model) {
	plan := m.net.Compile(1)
	in := plan.In(1)
	// A recognisable, cheap input; the output is discarded.
	tensor.NewRNG(1).FillUniform(in.Data(), 0, 1)
	plan.Run(1)
}
