package modelstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"unsafe"

	"djinn/internal/nn"
	"djinn/internal/tensor"
)

// WriteOptions tunes weight-file serialisation.
type WriteOptions struct {
	// Quantize adds the int8 image of every conv/FC weight matrix as a
	// version-2 quantized section (symmetric per-tensor scale via
	// tensor.QuantizeSymmetric — the same routine Int8 plans run, so
	// stored and on-the-fly quantization are bit-identical). Nets with
	// no GEMM-backed layers still serialise as version 1.
	Quantize bool
}

// Write serialises net as a weight file for the given serving name and
// model version and returns the byte count written. The parameter
// order on disk is the network's layer order; section data is the
// net's current weights.
func Write(w io.Writer, name string, version int, net *nn.Net) (int64, error) {
	return WriteOpts(w, name, version, net, WriteOptions{})
}

// quantSectionData is one pending quantized section during layout.
type quantSectionData struct {
	paramIdx int
	scale    float32
	data     []int8
}

// WriteOpts serialises net with explicit options.
func WriteOpts(w io.Writer, name string, version int, net *nn.Net, o WriteOptions) (int64, error) {
	if err := CheckName(name); err != nil {
		return 0, err
	}
	if version < 1 || version > MaxModelVersion {
		return 0, fmt.Errorf("modelstore: model version %d outside [1, %d]", version, MaxModelVersion)
	}
	var defBuf bytes.Buffer
	if err := net.WriteDef(&defBuf); err != nil {
		return 0, fmt.Errorf("modelstore: exporting %s definition: %w", name, err)
	}
	if defBuf.Len() > MaxDefLen {
		return 0, fmt.Errorf("modelstore: %s definition is %d bytes (max %d)", name, defBuf.Len(), MaxDefLen)
	}
	params := net.Params()
	if len(params) == 0 || len(params) > MaxParams {
		return 0, fmt.Errorf("modelstore: %s has %d parameters (want 1..%d)", name, len(params), MaxParams)
	}

	// Quantize the GEMM weights up front so layout knows the section
	// count. A net with nothing to quantize stays a version-1 file.
	var qsecs []quantSectionData
	format := uint32(FormatVersion)
	if o.Quantize {
		gemm := net.GemmWeightNames()
		for i, p := range params {
			if !gemm[p.Name] {
				continue
			}
			q := make([]int8, p.W.Len())
			scale := tensor.QuantizeSymmetric(p.W.Data(), q)
			qsecs = append(qsecs, quantSectionData{paramIdx: i, scale: scale, data: q})
		}
		if len(qsecs) > 0 {
			format = FormatVersionQuant
		}
	}

	// Lay out the header to learn its length, then the sections.
	headerLen := int64(preambleLen + 2 + len(name) + 4 + 4 + defBuf.Len() + 4)
	for _, p := range params {
		if err := CheckName(p.Name); err != nil {
			return 0, fmt.Errorf("modelstore: parameter name: %w", err)
		}
		if nd := p.W.Dims(); nd > MaxDims {
			return 0, fmt.Errorf("modelstore: parameter %q has %d dimensions (max %d)", p.Name, nd, MaxDims)
		}
		headerLen += int64(2 + len(p.Name) + 1 + 4*p.W.Dims() + 8 + 8 + 4)
	}
	if format == FormatVersionQuant {
		headerLen += int64(4 + len(qsecs)*(4+4+1+8+8+4))
	}
	if headerLen > maxHeaderLen {
		return 0, fmt.Errorf("modelstore: %s header is %d bytes (max %d)", name, headerLen, maxHeaderLen)
	}

	var head bytes.Buffer
	head.Grow(int(headerLen))
	putU16 := func(v int) { head.Write([]byte{byte(v), byte(v >> 8)}) }
	putU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		head.Write(b[:])
	}
	putU64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		head.Write(b[:])
	}
	putU32(Magic)
	putU32(format)
	putU32(uint32(headerLen))
	putU32(0) // headerCRC, patched below
	putU16(len(name))
	head.WriteString(name)
	putU32(uint32(version))
	putU32(uint32(defBuf.Len()))
	head.Write(defBuf.Bytes())
	putU32(uint32(len(params)))

	off := align64(headerLen)
	for _, p := range params {
		data := p.W.Data()
		putU16(len(p.Name))
		head.WriteString(p.Name)
		head.WriteByte(byte(p.W.Dims()))
		for _, d := range p.W.Shape() {
			putU32(uint32(d))
		}
		size := int64(4 * len(data))
		putU64(uint64(off))
		putU64(uint64(size))
		putU32(sectionCRC(data))
		off = align64(off + size)
	}
	if format == FormatVersionQuant {
		putU32(uint32(len(qsecs)))
		for _, q := range qsecs {
			putU32(uint32(q.paramIdx))
			putU32(math.Float32bits(q.scale))
			head.WriteByte(0) // zero point: always 0 under the symmetric scheme
			size := int64(len(q.data))
			putU64(uint64(off))
			putU64(uint64(size))
			putU32(crc32.Checksum(int8Bytes(q.data), castagnoli))
			off = align64(off + size)
		}
	}
	hb := head.Bytes()
	if int64(len(hb)) != headerLen {
		return 0, fmt.Errorf("modelstore: internal error: header layout %d != %d", len(hb), headerLen)
	}
	binary.LittleEndian.PutUint32(hb[12:], crc32.Checksum(hb[preambleLen:], castagnoli))

	bw := bufio.NewWriterSize(w, 1<<16)
	n := int64(0)
	k, err := bw.Write(hb)
	n += int64(k)
	if err != nil {
		return n, err
	}
	written := headerLen
	var pad [SectionAlign]byte
	for _, p := range params {
		if gap := align64(written) - written; gap > 0 {
			k, err := bw.Write(pad[:gap])
			n += int64(k)
			if err != nil {
				return n, err
			}
			written += gap
		}
		k, err := writeSection(bw, p.W.Data())
		n += k
		if err != nil {
			return n, err
		}
		written += k
	}
	for _, q := range qsecs {
		if gap := align64(written) - written; gap > 0 {
			k, err := bw.Write(pad[:gap])
			n += int64(k)
			if err != nil {
				return n, err
			}
			written += gap
		}
		k, err := bw.Write(int8Bytes(q.data))
		n += int64(k)
		if err != nil {
			return n, err
		}
		written += int64(k)
	}
	return n, bw.Flush()
}

// WriteFile writes net to path atomically (temp file + rename), so a
// crash mid-export never leaves a half-written model where the
// Registry might find it.
func WriteFile(path, name string, version int, net *nn.Net) error {
	return WriteFileOpts(path, name, version, net, WriteOptions{})
}

// WriteFileOpts writes net to path atomically with explicit options.
func WriteFileOpts(path, name string, version int, net *nn.Net, o WriteOptions) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".djw-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := WriteOpts(tmp, name, version, net, o); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// writeSection streams data as little-endian float32 in chunks, as in
// the tensor stream writer.
func writeSection(w io.Writer, data []float32) (int64, error) {
	const chunk = 4096
	buf := make([]byte, 4*chunk)
	var n int64
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		part := data[off:end]
		for i, v := range part {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
		}
		k, err := w.Write(buf[:len(part)*4])
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// int8Bytes reinterprets quantized values as their on-disk bytes (int8
// two's complement is the byte value; no endianness applies).
func int8Bytes(q []int8) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(&q[0])), len(q))
}

// sectionCRC computes the CRC-32C of data's on-disk encoding.
func sectionCRC(data []float32) uint32 {
	const chunk = 4096
	buf := make([]byte, 4*chunk)
	crc := uint32(0)
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		part := data[off:end]
		for i, v := range part {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
		}
		crc = crc32.Update(crc, castagnoli, buf[:len(part)*4])
	}
	return crc
}
