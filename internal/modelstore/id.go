package modelstore

import (
	"fmt"
	"strconv"
	"strings"
)

// ID identifies one version of one model, rendered "name@vN". Version
// 0 means "unspecified" and only appears in lookups (ParseID of a bare
// name); stored models always have Version >= 1.
type ID struct {
	Name    string
	Version int
}

// String renders the canonical "name@vN" form.
func (id ID) String() string {
	return fmt.Sprintf("%s@v%d", id.Name, id.Version)
}

// Versioned reports whether the ID names a specific version.
func (id ID) Versioned() bool { return id.Version > 0 }

// ParseID parses "name" (version unspecified) or "name@vN". The name
// must satisfy CheckName.
func ParseID(s string) (ID, error) {
	name, ver, ok := strings.Cut(s, "@")
	if err := CheckName(name); err != nil {
		return ID{}, err
	}
	if !ok {
		return ID{Name: name}, nil
	}
	digits, hasV := strings.CutPrefix(ver, "v")
	n, err := strconv.Atoi(digits)
	if !hasV || err != nil || n < 1 || n > MaxModelVersion {
		return ID{}, fmt.Errorf("modelstore: bad model version %q in %q (want name@vN)", ver, s)
	}
	return ID{Name: name, Version: n}, nil
}

// CheckName validates a model name: 1..MaxNameLen bytes of printable
// ASCII with no spaces and no '@' (reserved as the version separator).
// The same names flow through the service protocol as application
// names, so keeping them flat keeps the wire format unambiguous.
func CheckName(name string) error {
	if name == "" || len(name) > MaxNameLen {
		return fmt.Errorf("modelstore: model name must be 1..%d bytes, have %d", MaxNameLen, len(name))
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c <= ' ' || c > '~' || c == '@' {
			return fmt.Errorf("modelstore: model name %q contains invalid byte %q", name, c)
		}
	}
	return nil
}
