// Package modelstore gives DjiNN models a life outside the process:
// a versioned on-disk weight format, a strict validating reader, a
// zero-copy mmap loader, and a Registry that loads, warms, and evicts
// model versions at runtime under a memory budget. It is the piece
// that turns the fixed seven-app demo into a multi-tenant serving
// platform: models become files, files become mapped pages, and the
// kernel's page cache shares one copy of each model's weights across
// every replica process on the host.
//
// # File format
//
// A weight file (conventionally *.djw) is little-endian throughout:
//
//	preamble (16 bytes)
//	  magic      uint32  'DJWF'
//	  version    uint32  format version (currently 1)
//	  headerLen  uint32  bytes from file start through end of manifest
//	  headerCRC  uint32  CRC-32C of bytes [16, headerLen)
//	header
//	  nameLen    uint16  serving name (e.g. "imc"), 1..128 bytes
//	  name       nameLen bytes
//	  modelVer   uint32  model version (the @vN in "imc@v1"), >= 1
//	  defLen     uint32  network definition (nn netdef text)
//	  def        defLen bytes
//	  nparams    uint32  manifest entry count, >= 1
//	manifest, one entry per parameter tensor, in layer order
//	  nameLen    uint16  parameter name (e.g. "conv1.weight")
//	  name       nameLen bytes
//	  ndims      uint8   1..8
//	  dims       ndims × uint32
//	  offset     uint64  file offset of the section, 64-byte aligned
//	  size       uint64  section bytes, = 4 × product(dims)
//	  crc        uint32  CRC-32C of the section bytes
//	quant manifest (format version 2 only)
//	  nquant     uint32  quantized section count, 1..nparams
//	  then per entry:
//	  paramIdx   uint32  float manifest index, strictly increasing
//	  scaleBits  uint32  float32 bits of the symmetric scale (finite, > 0)
//	  zeroPoint  uint8   must be 0 (symmetric quantization; reserved)
//	  offset     uint64  file offset of the section, 64-byte aligned
//	  size       uint64  section bytes, = product(dims) (one int8 each)
//	  crc        uint32  CRC-32C of the section bytes
//	data sections
//	  raw float32 little-endian values at the manifest offsets,
//	  contiguous in manifest order modulo alignment padding; version 2
//	  files follow them with the raw int8 quantized sections, same
//	  contiguity rule; the last section ends exactly at end of file
//
// Sections are 64-byte aligned so that a page-aligned mapping of the
// file yields naturally aligned float32 views, and so tensor rows
// start on cache-line boundaries. The embedded netdef makes every
// file self-contained: the reader reconstructs the architecture from
// the definition and binds the sections to it by parameter name, so
// the Registry can serve a model it has no Go constructor for.
//
// Version 2 adds the optional quantized-weights manifest: the int8
// image of each conv/FC weight matrix under tensor.QuantizeSymmetric,
// stored next to the float32 truth. Int8 execution plans bind these
// sections directly (zero-copy under mmap), moving quantization cost
// from every process start to a single export. A version-1 file is
// exactly a version-2 file with no quant manifest; readers accept both.
package modelstore

import (
	"fmt"
	"hash/crc32"
	"math"
	"unsafe"
)

// Format constants. Limits exist so a corrupt or hostile header fails
// fast instead of driving huge allocations (mirrors internal/tensor's
// stream reader).
const (
	// Magic opens every weight file ("DJWF" little-endian).
	Magic = 0x46574a44
	// FormatVersion is the baseline on-disk version: float32 sections
	// only. The writer emits it whenever no quantized sections are
	// requested, keeping new files readable by old readers.
	FormatVersion = 1
	// FormatVersionQuant adds the optional quantized-weights manifest.
	FormatVersionQuant = 2
	// SectionAlign is the alignment of every tensor data section.
	SectionAlign = 64
	// MaxNameLen bounds model and parameter names; matches the service
	// protocol's application-name bound.
	MaxNameLen = 128
	// MaxModelVersion bounds the @vN model version.
	MaxModelVersion = 1 << 20
	// MaxDefLen bounds the embedded network definition.
	MaxDefLen = 1 << 20
	// MaxParams bounds the manifest entry count.
	MaxParams = 1 << 14
	// MaxDims bounds tensor rank, as in the tensor stream format.
	MaxDims = 8

	preambleLen  = 16
	maxHeaderLen = 1 << 24
	maxDim       = 1 << 28
	maxElems     = 1 << 30
)

// castagnoli is the CRC-32C table; the same polynomial hardware CRC
// instructions implement, and what Go's hash/crc32 accelerates.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLittleEndian reports whether float32 values can be viewed
// directly over mapped file bytes. On big-endian hosts the loader
// falls back to a decoding copy.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// ParamSection describes one parameter tensor's section in a weight
// file.
type ParamSection struct {
	Name   string
	Shape  []int
	Offset int64 // file offset, SectionAlign-aligned
	Size   int64 // bytes, = 4 × element count
	CRC    uint32
}

// Elems returns the section's element count.
func (s ParamSection) Elems() int {
	n := 1
	for _, d := range s.Shape {
		n *= d
	}
	return n
}

// QuantSection describes one quantized weight section in a version-2
// file: the int8 image of the float manifest entry at ParamIdx.
type QuantSection struct {
	ParamIdx int     // index into Meta.Params
	Scale    float32 // symmetric dequantization scale, finite and > 0
	Offset   int64   // file offset, SectionAlign-aligned
	Size     int64   // bytes, = element count (one int8 per element)
	CRC      uint32
}

// Meta is a weight file's parsed header: identity, architecture
// definition, and the section manifest.
type Meta struct {
	Name    string
	Version int
	Def     string
	Params  []ParamSection
	// Format is the file's on-disk format version (1 or 2).
	Format int
	// Quant lists the quantized weight sections; empty for version-1
	// files.
	Quant []QuantSection
	// FileSize is the total file size the header commits to (end of
	// the last section).
	FileSize int64
}

// ID returns the model's identity.
func (m *Meta) ID() ID { return ID{Name: m.Name, Version: m.Version} }

// WeightBytes returns the total float32 tensor section bytes
// (excluding header, alignment padding and quantized sections).
func (m *Meta) WeightBytes() int64 {
	var n int64
	for _, p := range m.Params {
		n += p.Size
	}
	return n
}

// QuantBytes returns the total quantized section bytes (zero for
// version-1 files).
func (m *Meta) QuantBytes() int64 {
	var n int64
	for _, q := range m.Quant {
		n += q.Size
	}
	return n
}

// align64 rounds off up to the next SectionAlign boundary.
func align64(off int64) int64 {
	return (off + SectionAlign - 1) &^ (SectionAlign - 1)
}

// parseMeta validates and decodes a header from b, the first bytes of
// a file of fileSize total bytes (b may be the whole file; it must
// include the complete header). It returns the parsed metadata and
// the header length. Every structural invariant of the format is
// checked here — magic, version, header CRC, name/def/manifest
// bounds, duplicate parameter names, section alignment, contiguity,
// and that sections fit the file exactly — so both the strict reader
// and the mmap loader share one definition of "valid".
func parseMeta(b []byte, fileSize int64) (*Meta, int, error) {
	if len(b) < preambleLen {
		return nil, 0, fmt.Errorf("modelstore: file too small for preamble (%d bytes)", len(b))
	}
	if got := le32(b[0:]); got != Magic {
		return nil, 0, fmt.Errorf("modelstore: bad magic %#x (want %#x)", got, uint32(Magic))
	}
	format := int(le32(b[4:]))
	if format != FormatVersion && format != FormatVersionQuant {
		return nil, 0, fmt.Errorf("modelstore: unsupported format version %d (want %d or %d)", format, FormatVersion, FormatVersionQuant)
	}
	headerLen := int64(le32(b[8:]))
	wantCRC := le32(b[12:])
	if headerLen < preambleLen+11 || headerLen > maxHeaderLen {
		return nil, 0, fmt.Errorf("modelstore: implausible header length %d", headerLen)
	}
	if headerLen > fileSize {
		return nil, 0, fmt.Errorf("modelstore: header length %d exceeds file size %d (truncated header)", headerLen, fileSize)
	}
	if headerLen > int64(len(b)) {
		return nil, 0, fmt.Errorf("modelstore: header length %d exceeds available bytes %d (truncated header)", headerLen, len(b))
	}
	if got := crc32.Checksum(b[preambleLen:headerLen], castagnoli); got != wantCRC {
		return nil, 0, fmt.Errorf("modelstore: header checksum mismatch (%#x != %#x)", got, wantCRC)
	}

	cur := cursor{b: b[:headerLen], off: preambleLen}
	name, err := cur.str("model name")
	if err != nil {
		return nil, 0, err
	}
	if err := CheckName(name); err != nil {
		return nil, 0, err
	}
	ver, err := cur.u32("model version")
	if err != nil {
		return nil, 0, err
	}
	if ver < 1 || ver > MaxModelVersion {
		return nil, 0, fmt.Errorf("modelstore: implausible model version %d", ver)
	}
	defLen, err := cur.u32("definition length")
	if err != nil {
		return nil, 0, err
	}
	if defLen == 0 || defLen > MaxDefLen {
		return nil, 0, fmt.Errorf("modelstore: implausible definition length %d", defLen)
	}
	def, err := cur.bytes(int(defLen), "definition")
	if err != nil {
		return nil, 0, err
	}
	nparams, err := cur.u32("parameter count")
	if err != nil {
		return nil, 0, err
	}
	if nparams == 0 || nparams > MaxParams {
		return nil, 0, fmt.Errorf("modelstore: implausible parameter count %d", nparams)
	}

	meta := &Meta{
		Name:    name,
		Version: int(ver),
		Def:     string(def),
		Format:  format,
		Params:  make([]ParamSection, 0, nparams),
	}
	seen := make(map[string]bool, nparams)
	next := align64(headerLen)
	for i := 0; i < int(nparams); i++ {
		pname, err := cur.str("parameter name")
		if err != nil {
			return nil, 0, err
		}
		if seen[pname] {
			return nil, 0, fmt.Errorf("modelstore: duplicate parameter %q in manifest", pname)
		}
		seen[pname] = true
		nd, err := cur.u8("dimension count")
		if err != nil {
			return nil, 0, err
		}
		if nd == 0 || nd > MaxDims {
			return nil, 0, fmt.Errorf("modelstore: parameter %q: implausible dimension count %d", pname, nd)
		}
		shape := make([]int, nd)
		elems := int64(1)
		for j := range shape {
			d, err := cur.u32("dimension")
			if err != nil {
				return nil, 0, err
			}
			if d == 0 || d > maxDim {
				return nil, 0, fmt.Errorf("modelstore: parameter %q: implausible dimension %d", pname, d)
			}
			shape[j] = int(d)
			elems *= int64(d)
			if elems > maxElems {
				return nil, 0, fmt.Errorf("modelstore: parameter %q too large (%v)", pname, shape)
			}
		}
		offset, err := cur.u64("section offset")
		if err != nil {
			return nil, 0, err
		}
		size, err := cur.u64("section size")
		if err != nil {
			return nil, 0, err
		}
		crc, err := cur.u32("section checksum")
		if err != nil {
			return nil, 0, err
		}
		if int64(offset) != next {
			return nil, 0, fmt.Errorf("modelstore: parameter %q: section offset %d, want %d (sections must be aligned and contiguous)", pname, offset, next)
		}
		if int64(size) != 4*elems {
			return nil, 0, fmt.Errorf("modelstore: parameter %q: section size %d does not match shape %v (%d bytes)", pname, size, shape, 4*elems)
		}
		if int64(offset)+int64(size) > fileSize {
			return nil, 0, fmt.Errorf("modelstore: parameter %q: section [%d, %d) exceeds file size %d (oversized section)", pname, offset, int64(offset)+int64(size), fileSize)
		}
		next = align64(int64(offset) + int64(size))
		meta.Params = append(meta.Params, ParamSection{
			Name:   pname,
			Shape:  shape,
			Offset: int64(offset),
			Size:   int64(size),
			CRC:    crc,
		})
	}
	if format >= FormatVersionQuant {
		// The quantized sections sit after the float sections under the
		// same alignment and contiguity rules, so `next` simply keeps
		// advancing.
		nquant, err := cur.u32("quantized section count")
		if err != nil {
			return nil, 0, err
		}
		if nquant == 0 || nquant > nparams {
			return nil, 0, fmt.Errorf("modelstore: implausible quantized section count %d (have %d parameters)", nquant, nparams)
		}
		meta.Quant = make([]QuantSection, 0, nquant)
		prevIdx := -1
		for i := 0; i < int(nquant); i++ {
			idx, err := cur.u32("quantized parameter index")
			if err != nil {
				return nil, 0, err
			}
			if int(idx) >= len(meta.Params) {
				return nil, 0, fmt.Errorf("modelstore: quantized section %d references parameter %d of %d", i, idx, len(meta.Params))
			}
			if int(idx) <= prevIdx {
				return nil, 0, fmt.Errorf("modelstore: quantized section %d: parameter index %d not strictly increasing", i, idx)
			}
			prevIdx = int(idx)
			scaleBits, err := cur.u32("quantization scale")
			if err != nil {
				return nil, 0, err
			}
			scale := math.Float32frombits(scaleBits)
			if !(scale > 0) || math.IsInf(float64(scale), 0) {
				return nil, 0, fmt.Errorf("modelstore: quantized section %d: implausible scale %v", i, scale)
			}
			zp, err := cur.u8("zero point")
			if err != nil {
				return nil, 0, err
			}
			if zp != 0 {
				return nil, 0, fmt.Errorf("modelstore: quantized section %d: nonzero zero point %d (symmetric scheme)", i, zp)
			}
			offset, err := cur.u64("quantized section offset")
			if err != nil {
				return nil, 0, err
			}
			size, err := cur.u64("quantized section size")
			if err != nil {
				return nil, 0, err
			}
			crc, err := cur.u32("quantized section checksum")
			if err != nil {
				return nil, 0, err
			}
			ref := meta.Params[idx]
			if int64(offset) != next {
				return nil, 0, fmt.Errorf("modelstore: quantized section for %q: offset %d, want %d (sections must be aligned and contiguous)", ref.Name, offset, next)
			}
			if int64(size) != int64(ref.Elems()) {
				return nil, 0, fmt.Errorf("modelstore: quantized section for %q: size %d does not match shape %v (%d bytes)", ref.Name, size, ref.Shape, ref.Elems())
			}
			if int64(offset)+int64(size) > fileSize {
				return nil, 0, fmt.Errorf("modelstore: quantized section for %q: section [%d, %d) exceeds file size %d", ref.Name, offset, int64(offset)+int64(size), fileSize)
			}
			next = align64(int64(offset) + int64(size))
			meta.Quant = append(meta.Quant, QuantSection{
				ParamIdx: int(idx),
				Scale:    scale,
				Offset:   int64(offset),
				Size:     int64(size),
				CRC:      crc,
			})
		}
	}
	if cur.off != int(headerLen) {
		return nil, 0, fmt.Errorf("modelstore: %d bytes of trailing junk in header", int(headerLen)-cur.off)
	}
	last := meta.Params[len(meta.Params)-1]
	meta.FileSize = last.Offset + last.Size
	if len(meta.Quant) > 0 {
		lq := meta.Quant[len(meta.Quant)-1]
		meta.FileSize = lq.Offset + lq.Size
	}
	if meta.FileSize != fileSize {
		return nil, 0, fmt.Errorf("modelstore: file size %d, header commits to %d", fileSize, meta.FileSize)
	}
	return meta, int(headerLen), nil
}

// cursor is a bounds-checked little-endian reader over a header.
type cursor struct {
	b   []byte
	off int
}

func (c *cursor) bytes(n int, what string) ([]byte, error) {
	if n < 0 || c.off+n > len(c.b) {
		return nil, fmt.Errorf("modelstore: truncated header reading %s", what)
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v, nil
}

func (c *cursor) u8(what string) (uint8, error) {
	b, err := c.bytes(1, what)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (c *cursor) u16(what string) (uint16, error) {
	b, err := c.bytes(2, what)
	if err != nil {
		return 0, err
	}
	return uint16(b[0]) | uint16(b[1])<<8, nil
}

func (c *cursor) u32(what string) (uint32, error) {
	b, err := c.bytes(4, what)
	if err != nil {
		return 0, err
	}
	return le32(b), nil
}

func (c *cursor) u64(what string) (uint64, error) {
	b, err := c.bytes(8, what)
	if err != nil {
		return 0, err
	}
	return uint64(le32(b)) | uint64(le32(b[4:]))<<32, nil
}

func (c *cursor) str(what string) (string, error) {
	n, err := c.u16(what + " length")
	if err != nil {
		return "", err
	}
	if n == 0 || n > MaxNameLen {
		return "", fmt.Errorf("modelstore: implausible %s length %d", what, n)
	}
	b, err := c.bytes(int(n), what)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
