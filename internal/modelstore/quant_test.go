package modelstore

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"unsafe"

	"djinn/internal/nn"
	"djinn/internal/tensor"
)

// writeQuantFile exports testNet(seed) as a version-2 file with
// quantized weight sections and returns the path.
func writeQuantFile(t *testing.T, name string, version int, seed uint64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name+".djw")
	if err := WriteFileOpts(path, name, version, testNet(seed), WriteOptions{Quantize: true}); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestQuantWriteReadRoundTrip(t *testing.T) {
	path := writeQuantFile(t, "tiny", 2, 9)
	netw, meta, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Format != FormatVersionQuant {
		t.Fatalf("format %d, want %d", meta.Format, FormatVersionQuant)
	}
	if len(meta.Quant) != 2 {
		t.Fatalf("quant manifest has %d sections, want 2 (fc1/fc2 weights)", len(meta.Quant))
	}
	// Every quantized section must be the bit-identical image of the
	// float weights under the plan compiler's own quantizer.
	ref := testNet(9)
	refParams := ref.Params()
	for _, q := range meta.Quant {
		p := netw.Params()[q.ParamIdx]
		if p.Q == nil {
			t.Fatalf("parameter %q has no bound quantized form", p.Name)
		}
		want := make([]int8, refParams[q.ParamIdx].W.Len())
		scale := tensor.QuantizeSymmetric(refParams[q.ParamIdx].W.Data(), want)
		if p.Q.Scale != scale {
			t.Fatalf("parameter %q scale %v, want %v", p.Name, p.Q.Scale, scale)
		}
		for i := range want {
			if p.Q.Data[i] != want[i] {
				t.Fatalf("parameter %q quantized[%d]=%d, want %d", p.Name, i, p.Q.Data[i], want[i])
			}
		}
	}
	// Biases and non-GEMM parameters stay unquantized.
	for i, p := range netw.Params() {
		if strings.HasSuffix(p.Name, ".bias") && p.Q != nil {
			t.Fatalf("bias parameter %d (%q) has a quantized form", i, p.Name)
		}
	}
	if meta.QuantBytes() == 0 || meta.QuantBytes() >= meta.WeightBytes() {
		t.Fatalf("quant bytes %d vs weight bytes %d: int8 sections should be ~4x smaller", meta.QuantBytes(), meta.WeightBytes())
	}
}

// TestQuantFileVerifies: VerifyFile accepts a clean version-2 file and
// rejects a single corrupted byte in a quantized section.
func TestQuantFileVerifies(t *testing.T) {
	path := writeQuantFile(t, "tiny", 1, 10)
	meta, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the first quantized section.
	data[meta.Quant[0].Offset+1] ^= 0x40
	bad := filepath.Join(t.TempDir(), "bad.djw")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyFile(bad); err == nil || !strings.Contains(err.Error(), "quantized section checksum") {
		t.Fatalf("VerifyFile accepted corrupt quantized section (err=%v)", err)
	}
	if _, _, err := ReadFile(bad); err == nil {
		t.Fatal("ReadFile accepted corrupt quantized section")
	}
}

// TestQuantOpenBindsMappedViews: the mmap loader binds quantized
// sections zero-copy, and an Int8 plan over the opened model is
// bit-identical to one over a freshly built net (stored quantization ==
// on-the-fly quantization).
func TestQuantOpenBindsMappedViews(t *testing.T) {
	const seed = 11
	path := writeQuantFile(t, "tiny", 1, seed)
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	quantized := 0
	for _, p := range m.Net().Params() {
		if p.Q == nil {
			continue
		}
		quantized++
		if m.Mapped() {
			// The view must alias the mapping, not a copy.
			d := unsafe.Pointer(&p.Q.Data[0])
			lo := unsafe.Pointer(&m.mapping[0])
			hi := unsafe.Pointer(&m.mapping[len(m.mapping)-1])
			if uintptr(d) < uintptr(lo) || uintptr(d) > uintptr(hi) {
				t.Fatalf("parameter %q quantized data is not a view over the mapping", p.Name)
			}
		}
	}
	if quantized != 2 {
		t.Fatalf("%d quantized parameters bound, want 2", quantized)
	}

	in := make([]float32, 8)
	tensor.NewRNG(77).FillUniform(in, -1, 1)
	plan := m.Net().CompileOpts(1, nn.CompileOpts{Precision: nn.Int8})
	copy(plan.In(1).Data(), in)
	got := append([]float32(nil), plan.Run(1).Data()...)

	ref := testNet(seed).CompileOpts(1, nn.CompileOpts{Precision: nn.Int8})
	copy(ref.In(1).Data(), in)
	want := ref.Run(1).Data()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("out[%d]=%v, fresh-net int8 plan %v (must be bit-identical)", i, got[i], want[i])
		}
	}
}

// TestQuantPlainFilesStayVersion1: without the Quantize option (or with
// nothing to quantize) the writer emits the baseline format.
func TestQuantPlainFilesStayVersion1(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Write(&buf, "tiny", 1, testNet(12)); err != nil {
		t.Fatal(err)
	}
	meta, _, err := parseMeta(buf.Bytes(), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Format != FormatVersion || len(meta.Quant) != 0 {
		t.Fatalf("plain write produced format %d with %d quant sections", meta.Format, len(meta.Quant))
	}

	// A net with no conv/fc layers has nothing to quantize: still v1.
	// (Locally-connected layers have weights, but the int8 backend does
	// not cover them.)
	n := nn.NewNet("acts", nn.KindCNN, 2, 6, 6)
	n.Add(nn.NewLocal("local", tensor.NewRNG(13), 2, 6, 6, 3, 3, 1)).Add(nn.NewSoftmax("prob"))
	buf.Reset()
	if _, err := WriteOpts(&buf, "acts", 1, n, WriteOptions{Quantize: true}); err != nil {
		t.Fatal(err)
	}
	meta, _, err = parseMeta(buf.Bytes(), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Format != FormatVersion {
		t.Fatalf("quantize of conv/fc-free net produced format %d", meta.Format)
	}
}

// TestQuantRejectsNonGemmTarget: a quant manifest entry pointing at a
// bias is structurally valid but semantically wrong; the net-aware
// readers must reject it.
func TestQuantRejectsNonGemmTarget(t *testing.T) {
	path := writeQuantFile(t, "tiny", 1, 14)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	meta, _, err := parseMeta(data, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	netw, err := buildNet(meta)
	if err != nil {
		t.Fatal(err)
	}
	bad := *meta
	bad.Quant = append([]QuantSection(nil), meta.Quant...)
	bad.Quant[0].ParamIdx = 1 // fc1.bias
	if err := checkManifest(netw, &bad); err == nil || !strings.Contains(err.Error(), "not a conv/fc weight") {
		t.Fatalf("checkManifest accepted quantized bias (err=%v)", err)
	}
}
