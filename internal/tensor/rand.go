package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64*), used to synthesise model weights and workload inputs
// reproducibly without pulling in math/rand state ordering concerns.
type RNG struct {
	state  uint64
	noInit bool
}

// NewRNG returns a generator seeded with seed (0 is remapped so the
// generator never sticks at zero).
func NewRNG(seed uint64) *RNG {
	return &RNG{state: remapSeed(seed)}
}

// NewNoInitRNG returns a generator whose bulk fill methods (FillUniform,
// FillNorm, XavierFill) leave their destination untouched. Loaders that
// construct a network only to immediately rebind or overwrite every
// parameter (the model store's mmap path) use it to skip synthesising
// weights that would be discarded — freshly allocated zero pages that
// are never written stay out of resident memory. Scalar draws (Uint64,
// Float32, …) still work normally.
func NewNoInitRNG(seed uint64) *RNG {
	return &RNG{state: remapSeed(seed), noInit: true}
}

func remapSeed(seed uint64) uint64 {
	if seed == 0 {
		return 0x9e3779b97f4a7c15
	}
	return seed
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal sample (Box–Muller).
func (r *RNG) Norm() float32 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return float32(math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2))
}

// ExpFloat64 returns an exponential sample with mean 1.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// FillUniform fills x with uniform samples in [lo, hi).
func (r *RNG) FillUniform(x []float32, lo, hi float32) {
	if r.noInit {
		return
	}
	span := hi - lo
	for i := range x {
		x[i] = lo + span*r.Float32()
	}
}

// FillNorm fills x with normal samples of the given mean and stddev.
func (r *RNG) FillNorm(x []float32, mean, std float32) {
	if r.noInit {
		return
	}
	for i := range x {
		x[i] = mean + std*r.Norm()
	}
}

// XavierFill initialises weights with the scaled-uniform scheme of
// Glorot & Bengio given fan-in and fan-out, the default Caffe weight
// filler for the networks in Tonic Suite.
func (r *RNG) XavierFill(x []float32, fanIn, fanOut int) {
	limit := float32(math.Sqrt(6 / float64(fanIn+fanOut)))
	r.FillUniform(x, -limit, limit)
}
