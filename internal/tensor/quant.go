package tensor

import "fmt"

// Symmetric int8 quantization and the packed int8 GEMM backend.
//
// The scheme is per-tensor symmetric: q = clamp(round(x/scale), -127,
// 127) with a zero point of 0, so the dequantized value is q*scale and a
// GEMM over two quantized operands dequantizes with the single combined
// scale scaleA*scaleB applied to the integer accumulator. Weights are
// quantized once (at plan compile or `.djw` export); activations are
// quantized per call from their live max-abs. Integer accumulation is
// exact and associative, so — unlike the float kernels — any work split
// yields bit-identical results by construction.
//
// The kernel does not multiply int8 values directly: scalar integer
// multiplies own a single amd64 port, so a one-product-per-multiply
// kernel cannot beat the float path. Instead both operands are stored
// offset by +127 into [0, 254] ("ua = qa+127") and two A rows are packed
// into the two 32-bit lanes of one uint64. One 64-bit multiply
// (ua_lo + ua_hi·2³²)·ub then yields both rows' products in separate
// lanes — two MACs per multiply — and the offset is removed after the
// k loop with the standard zero-point identity
//
//	Σ qa·qb = Σ (qa+127)(qb+127) − 127·Σqa − 127·Σqb − k·127²
//
// using per-row and per-column sums of the signed values computed once
// at pack time. Lane isolation requires k·254² < 2³², hence maxQuantK.

// QuantMax is the symmetric quantization clamp: values map into
// [-QuantMax, QuantMax]. -128 is left unused so the offset encoding
// ua = q+127 fits [0, 254] and the range stays symmetric.
const QuantMax = 127

// quantOffset biases signed quantized values into the unsigned domain
// used by the packed operands.
const quantOffset = QuantMax

// MaxQuantK bounds the shared k dimension of the int8 kernel: the
// per-lane sum of k products of offset values ≤ 254·254 must stay below
// 2³² so the two lanes of the uint64 accumulator cannot interfere.
// Callers building int8 execution plans should reject larger reductions
// up front (every Tonic-suite layer is far below the bound).
const MaxQuantK = (1<<32 - 1) / ((2 * QuantMax) * (2 * QuantMax))

const maxQuantK = MaxQuantK

// quantMRQ is the row-tile height of the int8 microkernel: two lane
// pairs, i.e. four A rows per tile.
const quantMRQ = 4

// QuantScale returns the symmetric scale for a tensor with the given
// max-abs value: maxAbs/127, so the extreme values land exactly on
// ±127. A degenerate (all-zero, empty or non-finite-free) tensor gets
// scale 1, which quantizes everything to 0 and dequantizes exactly.
func QuantScale(maxAbs float32) float32 {
	if !(maxAbs > 0) {
		return 1
	}
	return maxAbs / QuantMax
}

// quantizeOne rounds v (already divided by the scale) to the nearest
// integer, half away from zero, clamped to [-127, 127]. NaN maps to 0.
func quantizeOne(v float32) int8 {
	if v != v {
		return 0
	}
	if v >= 0 {
		v += 0.5
		if v >= QuantMax {
			return QuantMax
		}
		return int8(int32(v))
	}
	v -= 0.5
	if v <= -QuantMax {
		return -QuantMax
	}
	return int8(int32(v))
}

// QuantizeWith quantizes src into dst with an externally chosen scale
// (values beyond ±scale·127 saturate). len(dst) must be ≥ len(src).
func QuantizeWith(src []float32, dst []int8, scale float32) {
	if len(dst) < len(src) {
		panic("tensor: quantize dst too short")
	}
	inv := 1 / scale
	for i, v := range src {
		dst[i] = quantizeOne(v * inv)
	}
}

// QuantizeSymmetric quantizes src into dst with the scale derived from
// src's own max-abs and returns that scale. This is the single
// quantization routine shared by `Compile`-time weight quantization and
// `.djw` export, so stored and on-the-fly quantized weights are
// bit-identical.
func QuantizeSymmetric(src []float32, dst []int8) float32 {
	scale := QuantScale(MaxAbs(src))
	QuantizeWith(src, dst, scale)
	return scale
}

// Dequantize expands quantized values back to float32: dst[i] =
// scale*src[i].
func Dequantize(src []int8, dst []float32, scale float32) {
	if len(dst) < len(src) {
		panic("tensor: dequantize dst too short")
	}
	for i, q := range src {
		dst[i] = scale * float32(q)
	}
}

// PackedAInt8Len returns the uint64 count needed to pack an m×k A
// matrix: rows are paired into the two 32-bit lanes of one word, so
// ⌈m/2⌉ pair-rows of k words each. An odd trailing row gets a zero high
// lane, which contributes nothing to the (unread) padding outputs.
func PackedAInt8Len(m, k int) int {
	return (m + 1) / 2 * k
}

// PackAInt8 packs pre-quantized row-major m×k values into offset lane
// pairs: pa[pr*k+kk] = (q[2pr,kk]+127) | (q[2pr+1,kk]+127)<<32. rowSum
// receives the per-row sums of the signed values (len ≥ m), consumed by
// the kernel's zero-point correction.
func PackAInt8(m, k int, q []int8, pa []uint64, rowSum []int32) {
	if len(q) < m*k || len(pa) < PackedAInt8Len(m, k) || len(rowSum) < m {
		panic(fmt.Sprintf("tensor: packa int8 buffer too small for m=%d k=%d (len q=%d pa=%d rowSum=%d)", m, k, len(q), len(pa), len(rowSum)))
	}
	for pr := 0; pr < (m+1)/2; pr++ {
		r0 := 2 * pr
		lo := q[r0*k : r0*k+k]
		dst := pa[pr*k : pr*k+k]
		var s0, s1 int32
		if r0+1 < m {
			hi := q[(r0+1)*k : (r0+1)*k+k]
			for kk := 0; kk < k; kk++ {
				q0, q1 := int32(lo[kk]), int32(hi[kk])
				s0 += q0
				s1 += q1
				dst[kk] = uint64(uint32(q0+quantOffset)) | uint64(uint32(q1+quantOffset))<<32
			}
			rowSum[r0+1] = s1
		} else {
			for kk := 0; kk < k; kk++ {
				q0 := int32(lo[kk])
				s0 += q0
				dst[kk] = uint64(uint32(q0 + quantOffset))
			}
		}
		rowSum[r0] = s0
	}
}

// QuantizePackAInt8 quantizes a row-major m×k float32 matrix with the
// given scale and packs it into offset lane pairs in a single pass —
// the per-call activation path: the fully-connected input batch is
// quantized directly into the plan's packed scratch.
func QuantizePackAInt8(m, k int, a []float32, scale float32, pa []uint64, rowSum []int32) {
	if len(a) < m*k || len(pa) < PackedAInt8Len(m, k) || len(rowSum) < m {
		panic(fmt.Sprintf("tensor: quantize-pack A buffer too small for m=%d k=%d (len a=%d pa=%d rowSum=%d)", m, k, len(a), len(pa), len(rowSum)))
	}
	inv := 1 / scale
	for pr := 0; pr < (m+1)/2; pr++ {
		r0 := 2 * pr
		lo := a[r0*k : r0*k+k]
		dst := pa[pr*k : pr*k+k]
		var s0, s1 int32
		if r0+1 < m {
			hi := a[(r0+1)*k : (r0+1)*k+k]
			for kk := 0; kk < k; kk++ {
				q0 := int32(quantizeOne(lo[kk] * inv))
				q1 := int32(quantizeOne(hi[kk] * inv))
				s0 += q0
				s1 += q1
				dst[kk] = uint64(uint32(q0+quantOffset)) | uint64(uint32(q1+quantOffset))<<32
			}
			rowSum[r0+1] = s1
		} else {
			for kk := 0; kk < k; kk++ {
				q0 := int32(quantizeOne(lo[kk] * inv))
				s0 += q0
				dst[kk] = uint64(uint32(q0 + quantOffset))
			}
		}
		rowSum[r0] = s0
	}
}

// PackedBInt8Len returns the byte count needed to pack a k×n int8 B
// matrix into K×NR panels (same panel geometry as the float32 kernel).
func PackedBInt8Len(k, n int) int {
	return PackedBLen(k, n)
}

// PackBTInt8 packs pre-quantized B from its transpose: qt is row-major
// n×k (the fully-connected weight layout [out, in]) and bp receives the
// K×NR panel layout with values offset into [0, 254]. colSum receives
// the per-column sums of the signed values (len ≥ n). Padding lanes
// store 0, which contributes nothing to any real output.
func PackBTInt8(k, n int, qt []int8, bp []uint8, colSum []int32) {
	if len(qt) < k*n || len(bp) < PackedBInt8Len(k, n) || len(colSum) < n {
		panic(fmt.Sprintf("tensor: packbt int8 buffer too small for k=%d n=%d (len qt=%d bp=%d colSum=%d)", k, n, len(qt), len(bp), len(colSum)))
	}
	np := (n + packNR - 1) / packNR
	for p := 0; p < np; p++ {
		j0 := p * packNR
		jv := min(packNR, n-j0)
		dst := bp[p*k*packNR:]
		for jj := 0; jj < jv; jj++ {
			col := qt[(j0+jj)*k : (j0+jj)*k+k]
			var s int32
			for kk := 0; kk < k; kk++ {
				q := int32(col[kk])
				s += q
				dst[kk*packNR+jj] = uint8(q + quantOffset)
			}
			colSum[j0+jj] = s
		}
		for jj := jv; jj < packNR; jj++ {
			for kk := 0; kk < k; kk++ {
				dst[kk*packNR+jj] = 0
			}
		}
	}
}

// QuantizePackBInt8 quantizes a row-major k×n float32 matrix with the
// given scale and packs it into offset K×NR panels in a single pass —
// the per-call im2col path: the convolution column matrix is quantized
// directly into the plan's packed scratch without an intermediate int8
// copy. colSum receives per-column signed sums (len ≥ n).
func QuantizePackBInt8(k, n int, b []float32, scale float32, bp []uint8, colSum []int32) {
	if len(b) < k*n || len(bp) < PackedBInt8Len(k, n) || len(colSum) < n {
		panic(fmt.Sprintf("tensor: quantize-pack B buffer too small for k=%d n=%d (len b=%d bp=%d colSum=%d)", k, n, len(b), len(bp), len(colSum)))
	}
	inv := 1 / scale
	np := (n + packNR - 1) / packNR
	for jj := 0; jj < n; jj++ {
		colSum[jj] = 0
	}
	for p := 0; p < np; p++ {
		j0 := p * packNR
		jv := min(packNR, n-j0)
		dst := bp[p*k*packNR:]
		for kk := 0; kk < k; kk++ {
			src := b[kk*n+j0:]
			t := kk * packNR
			for jj := 0; jj < jv; jj++ {
				q := int32(quantizeOne(src[jj] * inv))
				colSum[j0+jj] += q
				dst[t+jj] = uint8(q + quantOffset)
			}
			for jj := jv; jj < packNR; jj++ {
				dst[t+jj] = 0
			}
		}
	}
}

func checkPackedInt8(m, n, k int, pa []uint64, rowSum []int32, bp []uint8, colSum []int32, c []float32, ep Epilogue, bias []float32) {
	if len(pa) < PackedAInt8Len(m, k) || len(bp) < PackedBInt8Len(k, n) || len(c) < m*n {
		panic(fmt.Sprintf("tensor: int8 gemm buffer too small for m=%d n=%d k=%d (len pa=%d bp=%d c=%d)", m, n, k, len(pa), len(bp), len(c)))
	}
	if len(rowSum) < m || len(colSum) < n {
		panic(fmt.Sprintf("tensor: int8 gemm sum buffer too small for m=%d n=%d (len rowSum=%d colSum=%d)", m, n, len(rowSum), len(colSum)))
	}
	if k > maxQuantK {
		panic(fmt.Sprintf("tensor: int8 gemm k=%d would overflow lane accumulation (max %d)", k, maxQuantK))
	}
	switch ep {
	case EpBiasCol, EpBiasColReLU:
		if len(bias) < n {
			panic("tensor: int8 gemm column bias too short")
		}
	case EpBiasRow, EpBiasRowReLU:
		if len(bias) < m {
			panic("tensor: int8 gemm row bias too short")
		}
	}
}

// GemmPackedInt8 computes C = epilogue(scale · (A·B)) over quantized
// operands: pa/rowSum from PackAInt8 or QuantizePackAInt8 (m×k),
// bp/colSum from PackBTInt8 or QuantizePackBInt8 (k×n), and scale the
// combined dequantization factor scaleA·scaleB. Dequantize, zero-point
// correction, bias and ReLU are all fused into the store. C is
// overwritten; nothing is allocated.
func GemmPackedInt8(m, n, k int, pa []uint64, rowSum []int32, bp []uint8, colSum []int32, c []float32, scale float32, ep Epilogue, bias []float32) {
	checkPackedInt8(m, n, k, pa, rowSum, bp, colSum, c, ep, bias)
	np := (n + packNR - 1) / packNR
	gemmPackedInt8Range(m, n, k, 0, np, pa, rowSum, bp, colSum, c, scale, ep, bias)
}

// GemmPackedInt8Parallel splits GemmPackedInt8 across workers:
// contiguous pair-row blocks when m > 2 (pair alignment keeps each
// worker's lanes self-contained), panel blocks otherwise. Integer
// accumulation is associative, so any split is exactly identical to the
// serial result.
func GemmPackedInt8Parallel(workers, m, n, k int, pa []uint64, rowSum []int32, bp []uint8, colSum []int32, c []float32, scale float32, ep Epilogue, bias []float32) {
	checkPackedInt8(m, n, k, pa, rowSum, bp, colSum, c, ep, bias)
	np := (n + packNR - 1) / packNR
	if workers <= 1 {
		gemmPackedInt8Range(m, n, k, 0, np, pa, rowSum, bp, colSum, c, scale, ep, bias)
		return
	}
	if m <= 2 {
		ParallelRows(workers, np, func(plo, phi int) {
			gemmPackedInt8Range(m, n, k, plo, phi, pa, rowSum, bp, colSum, c, scale, ep, bias)
		})
		return
	}
	rowBias := ep == EpBiasRow || ep == EpBiasRowReLU
	pairs := (m + 1) / 2
	ParallelRows(workers, pairs, func(plo, phi int) {
		lo := 2 * plo
		hi := min(2*phi, m)
		bi := bias
		if rowBias {
			bi = bias[lo:hi]
		}
		gemmPackedInt8Range(hi-lo, n, k, 0, np, pa[plo*k:], rowSum[lo:hi], bp, colSum, c[lo*n:], scale, ep, bi)
	})
}

// gemmPackedInt8Range runs the int8 kernel over panel range [p0, p1).
// Row tiles are the outer loop: one tile's packed A rows (16·k bytes)
// stay hot while the one-byte-per-element B panels stream past, which
// is 4× less cache traffic than streaming the 8-byte A pairs per panel.
func gemmPackedInt8Range(m, n, k, p0, p1 int, pa []uint64, rowSum []int32, bp []uint8, colSum []int32, c []float32, scale float32, ep Epilogue, bias []float32) {
	for i0 := 0; i0 < m; i0 += quantMRQ {
		mr := min(quantMRQ, m-i0)
		for p := p0; p < p1; p++ {
			j0 := p * packNR
			jv := min(packNR, n-j0)
			panel := bp[p*k*packNR : p*k*packNR+k*packNR]
			ct := c[i0*n+j0:]
			if mr == quantMRQ && jv == packNR {
				pr := i0 >> 1
				micro4x4i8(k,
					pa[pr*k:pr*k+k], pa[(pr+1)*k:(pr+1)*k+k],
					panel, ct, n, rowSum, colSum, scale, ep, bias, i0, j0)
			} else {
				microEdgeI8(k, mr, jv, pa[(i0>>1)*k:], panel, ct, n, rowSum, colSum, scale, ep, bias, i0, j0)
			}
		}
	}
}

// laneDot removes the offset encoding from one 32-bit lane sum and
// dequantizes it: the exact signed dot product is
// lane − 127·(rowSum+colSum) − k·127².
func laneDot(lane uint32, rowSum, colSum int32, k int, scale float32) float32 {
	dot := int64(lane) - quantOffset*(int64(rowSum)+int64(colSum)) - int64(k)*QuantMax*QuantMax
	return float32(dot) * scale
}

// micro4x4i8 is the int8 microkernel: two lane-pair rows × four columns.
// Each 64-bit multiply produces two rows' products at once, so the loop
// retires 16 MACs with 8 multiplies; 8 accumulators plus 6 operands fit
// the amd64 integer register file with no spills.
func micro4x4i8(k int, pr0, pr1 []uint64, panel []uint8, c []float32, ldc int, rowSum, colSum []int32, scale float32, ep Epilogue, bias []float32, i0, j0 int) {
	var q00, q01, q02, q03 uint64
	var q10, q11, q12, q13 uint64
	pr0 = pr0[:k]
	pr1 = pr1[:k]
	panel = panel[:4*k]
	for kk := 0; kk < k; kk++ {
		a0 := pr0[kk]
		a1 := pr1[kk]
		t := 4 * kk
		b0 := uint64(panel[t])
		b1 := uint64(panel[t+1])
		b2 := uint64(panel[t+2])
		b3 := uint64(panel[t+3])
		q00 += a0 * b0
		q01 += a0 * b1
		q02 += a0 * b2
		q03 += a0 * b3
		q10 += a1 * b0
		q11 += a1 * b1
		q12 += a1 * b2
		q13 += a1 * b3
	}
	c0 := c[0*ldc : 0*ldc+4]
	c1 := c[1*ldc : 1*ldc+4]
	c2 := c[2*ldc : 2*ldc+4]
	c3 := c[3*ldc : 3*ldc+4]
	rs0, rs1, rs2, rs3 := rowSum[i0], rowSum[i0+1], rowSum[i0+2], rowSum[i0+3]
	cs0, cs1, cs2, cs3 := colSum[j0], colSum[j0+1], colSum[j0+2], colSum[j0+3]
	c0[0] = applyEp(laneDot(uint32(q00), rs0, cs0, k, scale), ep, bias, i0, j0)
	c0[1] = applyEp(laneDot(uint32(q01), rs0, cs1, k, scale), ep, bias, i0, j0+1)
	c0[2] = applyEp(laneDot(uint32(q02), rs0, cs2, k, scale), ep, bias, i0, j0+2)
	c0[3] = applyEp(laneDot(uint32(q03), rs0, cs3, k, scale), ep, bias, i0, j0+3)
	c1[0] = applyEp(laneDot(uint32(q00>>32), rs1, cs0, k, scale), ep, bias, i0+1, j0)
	c1[1] = applyEp(laneDot(uint32(q01>>32), rs1, cs1, k, scale), ep, bias, i0+1, j0+1)
	c1[2] = applyEp(laneDot(uint32(q02>>32), rs1, cs2, k, scale), ep, bias, i0+1, j0+2)
	c1[3] = applyEp(laneDot(uint32(q03>>32), rs1, cs3, k, scale), ep, bias, i0+1, j0+3)
	c2[0] = applyEp(laneDot(uint32(q10), rs2, cs0, k, scale), ep, bias, i0+2, j0)
	c2[1] = applyEp(laneDot(uint32(q11), rs2, cs1, k, scale), ep, bias, i0+2, j0+1)
	c2[2] = applyEp(laneDot(uint32(q12), rs2, cs2, k, scale), ep, bias, i0+2, j0+2)
	c2[3] = applyEp(laneDot(uint32(q13), rs2, cs3, k, scale), ep, bias, i0+2, j0+3)
	c3[0] = applyEp(laneDot(uint32(q10>>32), rs3, cs0, k, scale), ep, bias, i0+3, j0)
	c3[1] = applyEp(laneDot(uint32(q11>>32), rs3, cs1, k, scale), ep, bias, i0+3, j0+1)
	c3[2] = applyEp(laneDot(uint32(q12>>32), rs3, cs2, k, scale), ep, bias, i0+3, j0+2)
	c3[3] = applyEp(laneDot(uint32(q13>>32), rs3, cs3, k, scale), ep, bias, i0+3, j0+3)
}

// microEdgeI8 handles partial tiles at the m and n fringes, one output
// element at a time. pa points at the tile's first pair-row; row r's
// offset values live in lane (r&1) of pair-row r>>1.
func microEdgeI8(k, mr, jv int, pa []uint64, panel []uint8, c []float32, ldc int, rowSum, colSum []int32, scale float32, ep Epilogue, bias []float32, i0, j0 int) {
	for r := 0; r < mr; r++ {
		prow := pa[(r>>1)*k : (r>>1)*k+k]
		shift := uint(r&1) * 32
		crow := c[r*ldc:]
		for jj := 0; jj < jv; jj++ {
			var acc uint64
			for kk := 0; kk < k; kk++ {
				ua := (prow[kk] >> shift) & 0xFFFFFFFF
				acc += ua * uint64(panel[kk*packNR+jj])
			}
			crow[jj] = applyEp(laneDot(uint32(acc), rowSum[i0+r], colSum[j0+jj], k, scale), ep, bias, i0+r, j0+jj)
		}
	}
}
