package tensor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The binary tensor format is a little-endian stream:
//
//	magic  uint32  'TNSR'
//	ndims  uint32
//	dims   ndims × uint32
//	data   product(dims) × float32
//
// It is the unit of model serialisation in internal/nn.
const tensorMagic = 0x544e5352 // "TNSR"

// WriteTo serialises the tensor to w in the binary format above.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	put32 := func(v uint32) error {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		k, err := bw.Write(buf[:])
		n += int64(k)
		return err
	}
	if err := put32(tensorMagic); err != nil {
		return n, err
	}
	if err := put32(uint32(len(t.shape))); err != nil {
		return n, err
	}
	for _, d := range t.shape {
		if err := put32(uint32(d)); err != nil {
			return n, err
		}
	}
	buf := make([]byte, 4*4096)
	for off := 0; off < len(t.data); off += 4096 {
		end := off + 4096
		if end > len(t.data) {
			end = len(t.data)
		}
		chunk := t.data[off:end]
		for i, v := range chunk {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
		}
		k, err := bw.Write(buf[:len(chunk)*4])
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadFrom deserialises a tensor written by WriteTo and returns it.
// It reads exactly the tensor's bytes from r (no read-ahead), so tensors
// can be streamed back-to-back from the same reader.
func ReadFrom(r io.Reader) (*Tensor, error) {
	get32 := func() (uint32, error) {
		var buf [4]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:]), nil
	}
	magic, err := get32()
	if err != nil {
		return nil, err
	}
	if magic != tensorMagic {
		return nil, fmt.Errorf("tensor: bad magic %#x", magic)
	}
	nd, err := get32()
	if err != nil {
		return nil, err
	}
	if nd == 0 || nd > 8 {
		return nil, fmt.Errorf("tensor: implausible dimension count %d", nd)
	}
	shape := make([]int, nd)
	elems := 1
	for i := range shape {
		d, err := get32()
		if err != nil {
			return nil, err
		}
		if d == 0 || d > 1<<28 {
			return nil, fmt.Errorf("tensor: implausible dimension %d", d)
		}
		shape[i] = int(d)
		elems *= int(d)
		if elems > 1<<30 {
			return nil, fmt.Errorf("tensor: tensor too large (%v)", shape)
		}
	}
	t := New(shape...)
	buf := make([]byte, 4*4096)
	for off := 0; off < elems; off += 4096 {
		end := off + 4096
		if end > elems {
			end = elems
		}
		chunk := buf[:(end-off)*4]
		if _, err := io.ReadFull(r, chunk); err != nil {
			return nil, err
		}
		for i := off; i < end; i++ {
			t.data[i] = math.Float32frombits(binary.LittleEndian.Uint32(chunk[(i-off)*4:]))
		}
	}
	return t, nil
}
