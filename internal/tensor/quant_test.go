package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuantScaleEdgeCases(t *testing.T) {
	if QuantScale(0) != 1 {
		t.Fatalf("QuantScale(0)=%v, want 1 (degenerate all-zero tensor)", QuantScale(0))
	}
	if QuantScale(float32(math.NaN())) != 1 {
		t.Fatalf("QuantScale(NaN)=%v, want 1", QuantScale(float32(math.NaN())))
	}
	if got := QuantScale(127); got != 1 {
		t.Fatalf("QuantScale(127)=%v, want 1", got)
	}
	if got := QuantScale(254); got != 2 {
		t.Fatalf("QuantScale(254)=%v, want 2", got)
	}
}

func TestQuantizeSymmetricSaturatesAtExtremes(t *testing.T) {
	// The max-abs elements must land exactly on ±127.
	src := []float32{3.5, -3.5, 0, 1.75}
	dst := make([]int8, len(src))
	scale := QuantizeSymmetric(src, dst)
	if scale != 3.5/QuantMax {
		t.Fatalf("scale=%v, want %v", scale, 3.5/float32(QuantMax))
	}
	if dst[0] != QuantMax || dst[1] != -QuantMax {
		t.Fatalf("extremes %d,%d, want ±127", dst[0], dst[1])
	}
	if dst[2] != 0 {
		t.Fatalf("zero quantized to %d", dst[2])
	}
	// Values beyond the scale's range clamp instead of wrapping.
	over := []float32{1000, -1000}
	qo := make([]int8, 2)
	QuantizeWith(over, qo, scale)
	if qo[0] != QuantMax || qo[1] != -QuantMax {
		t.Fatalf("saturation broken: %d,%d", qo[0], qo[1])
	}
}

func TestQuantizeDegenerateInputs(t *testing.T) {
	// Empty layer: no elements, scale 1.
	if scale := QuantizeSymmetric(nil, nil); scale != 1 {
		t.Fatalf("empty scale=%v", scale)
	}
	// All-zero layer round-trips exactly.
	src := make([]float32, 9)
	dst := make([]int8, 9)
	scale := QuantizeSymmetric(src, dst)
	back := make([]float32, 9)
	Dequantize(dst, back, scale)
	for i, v := range back {
		if v != 0 {
			t.Fatalf("all-zero round trip: back[%d]=%v", i, v)
		}
	}
	// NaN elements map to 0 rather than poisoning the int domain.
	qn := make([]int8, 1)
	QuantizeWith([]float32{float32(math.NaN())}, qn, 1)
	if qn[0] != 0 {
		t.Fatalf("NaN quantized to %d", qn[0])
	}
}

func TestQuantizeRoundTripProperty(t *testing.T) {
	// |x - dequant(quant(x))| ≤ scale/2 (+ float slack) for every element
	// within range: nearest-integer rounding in the quantized domain.
	rng := NewRNG(40)
	f := func(nRaw uint8, spanRaw uint8) bool {
		n := int(nRaw%200) + 1
		span := float32(spanRaw%50) + 0.5
		src := make([]float32, n)
		rng.FillUniform(src, -span, span)
		dst := make([]int8, n)
		scale := QuantizeSymmetric(src, dst)
		back := make([]float32, n)
		Dequantize(dst, back, scale)
		limit := float64(scale)*0.5 + 1e-6
		for i := range src {
			if math.Abs(float64(src[i]-back[i])) > limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeRoundsToNearest(t *testing.T) {
	src := []float32{0.4, 0.6, 1.5, -0.4, -0.6, -1.5, 127}
	dst := make([]int8, len(src))
	QuantizeWith(src, dst, 1)
	want := []int8{0, 1, 2, 0, -1, -2, 127}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("quant(%v)=%d, want %d", src[i], dst[i], want[i])
		}
	}
}

// int8 reference GEMM: plain triple loop over the signed quantized
// values with int32 accumulation, dequantized through the same epilogue
// helper, used to pin the packed lane kernel exactly.
func gemmInt8Naive(m, n, k int, a, b []int8, c []float32, scale float32, ep Epilogue, bias []float32) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc int32
			for kk := 0; kk < k; kk++ {
				acc += int32(a[i*k+kk]) * int32(b[kk*n+j])
			}
			c[i*n+j] = applyEp(float32(int64(acc))*scale, ep, bias, i, j)
		}
	}
}

// packInt8Operands quantizes float operands and builds the packed
// kernel inputs plus the signed matrices the naive reference uses.
func packInt8Operands(m, n, k int, af, bf []float32) (a, b []int8, pa []uint64, rowSum []int32, bp []uint8, colSum []int32, scale float32) {
	a = make([]int8, m*k)
	b = make([]int8, k*n)
	scaleA := QuantizeSymmetric(af, a)
	scaleB := QuantScale(MaxAbs(bf))
	QuantizeWith(bf, b, scaleB)
	pa = make([]uint64, PackedAInt8Len(m, k))
	rowSum = make([]int32, m)
	PackAInt8(m, k, a, pa, rowSum)
	bp = make([]uint8, PackedBInt8Len(k, n))
	colSum = make([]int32, n)
	QuantizePackBInt8(k, n, bf, scaleB, bp, colSum)
	return a, b, pa, rowSum, bp, colSum, scaleA * scaleB
}

func TestGemmPackedInt8MatchesNaive(t *testing.T) {
	rng := NewRNG(41)
	for _, s := range packedShapes {
		m, n, k := s[0], s[1], s[2]
		af := make([]float32, m*k)
		bf := make([]float32, k*n)
		rng.FillUniform(af, -1, 1)
		rng.FillUniform(bf, -1, 1)
		a, b, pa, rowSum, bp, colSum, scale := packInt8Operands(m, n, k, af, bf)
		_ = a
		bias := make([]float32, m+n)
		rng.FillUniform(bias, -1, 1)
		for _, ep := range []Epilogue{EpNone, EpBiasCol, EpBiasColReLU, EpBiasRow, EpBiasRowReLU} {
			got := make([]float32, m*n)
			want := make([]float32, m*n)
			GemmPackedInt8(m, n, k, pa, rowSum, bp, colSum, got, scale, ep, bias)
			gemmInt8Naive(m, n, k, a, b, want, scale, ep, bias)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("ep=%d m=%d n=%d k=%d: c[%d]=%v, naive %v (integer accumulation must be exact)",
						ep, m, n, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestQuantizePackAMatchesPackA(t *testing.T) {
	// The fused activation quantize-pack must equal quantize → pack.
	rng := NewRNG(42)
	for _, mk := range [][2]int{{1, 7}, {2, 5}, {5, 37}, {8, 64}, {33, 129}} {
		m, k := mk[0], mk[1]
		af := make([]float32, m*k)
		rng.FillUniform(af, -2, 2)
		scale := QuantScale(MaxAbs(af))

		fusedPA := make([]uint64, PackedAInt8Len(m, k))
		fusedSum := make([]int32, m)
		QuantizePackAInt8(m, k, af, scale, fusedPA, fusedSum)

		q := make([]int8, m*k)
		QuantizeWith(af, q, scale)
		pa := make([]uint64, PackedAInt8Len(m, k))
		rowSum := make([]int32, m)
		PackAInt8(m, k, q, pa, rowSum)
		for i := range pa {
			if fusedPA[i] != pa[i] {
				t.Fatalf("m=%d k=%d: pa[%d]=%x, want %x", m, k, i, fusedPA[i], pa[i])
			}
		}
		for i := range rowSum {
			if fusedSum[i] != rowSum[i] {
				t.Fatalf("m=%d k=%d: rowSum[%d]=%d, want %d", m, k, i, fusedSum[i], rowSum[i])
			}
		}
	}
}

func TestQuantizePackBMatchesQuantizeThenPack(t *testing.T) {
	// The fused im2col quantize-pack must equal quantize → transpose pack.
	rng := NewRNG(43)
	k, n := 37, 53
	bf := make([]float32, k*n)
	rng.FillUniform(bf, -2, 2)
	scale := QuantScale(MaxAbs(bf))

	fused := make([]uint8, PackedBInt8Len(k, n))
	fusedSum := make([]int32, n)
	QuantizePackBInt8(k, n, bf, scale, fused, fusedSum)

	q := make([]int8, k*n)
	QuantizeWith(bf, q, scale)
	qt := make([]int8, n*k)
	for kk := 0; kk < k; kk++ {
		for j := 0; j < n; j++ {
			qt[j*k+kk] = q[kk*n+j]
		}
	}
	packed := make([]uint8, PackedBInt8Len(k, n))
	colSum := make([]int32, n)
	PackBTInt8(k, n, qt, packed, colSum)
	for i := range fused {
		if fused[i] != packed[i] {
			t.Fatalf("packed[%d]=%d, want %d", i, fused[i], packed[i])
		}
	}
	for i := range colSum {
		if fusedSum[i] != colSum[i] {
			t.Fatalf("colSum[%d]=%d, want %d", i, fusedSum[i], colSum[i])
		}
	}
}

func TestGemmPackedInt8ParallelBitIdentical(t *testing.T) {
	rng := NewRNG(44)
	for _, s := range packedShapes {
		m, n, k := s[0], s[1], s[2]
		af := make([]float32, m*k)
		bf := make([]float32, k*n)
		rng.FillUniform(af, -1, 1)
		rng.FillUniform(bf, -1, 1)
		_, _, pa, rowSum, bp, colSum, scale := packInt8Operands(m, n, k, af, bf)
		rowBias := make([]float32, m)
		rng.FillUniform(rowBias, -1, 1)
		want := make([]float32, m*n)
		GemmPackedInt8(m, n, k, pa, rowSum, bp, colSum, want, scale, EpBiasRowReLU, rowBias)
		for _, workers := range []int{1, 2, 3, 7, 16} {
			got := make([]float32, m*n)
			GemmPackedInt8Parallel(workers, m, n, k, pa, rowSum, bp, colSum, got, scale, EpBiasRowReLU, rowBias)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("workers=%d m=%d n=%d k=%d: c[%d]=%v, serial %v", workers, m, n, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestGemmPackedInt8RejectsOverflowK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k beyond the lane accumulation bound")
		}
	}()
	k := maxQuantK + 1
	GemmPackedInt8(1, 1, k,
		make([]uint64, PackedAInt8Len(1, k)), make([]int32, 1),
		make([]uint8, PackedBInt8Len(k, 1)), make([]int32, 1),
		make([]float32, 1), 1, EpNone, nil)
}

// BenchmarkGemmPackedInt8AlexNetConv1 is the int8 partner of
// BenchmarkGemmPacked: same AlexNet conv1 shape, weights pre-packed
// (compile-time), the im2col matrix quantize+packed per call.
func BenchmarkGemmPackedInt8AlexNetConv1(b *testing.B) {
	rng := NewRNG(45)
	af := make([]float32, alexConv1M*alexConv1K)
	bf := make([]float32, alexConv1K*alexConv1N)
	rng.FillUniform(af, -1, 1)
	rng.FillUniform(bf, -1, 1)
	q := make([]int8, len(af))
	scaleA := QuantizeSymmetric(af, q)
	pa := make([]uint64, PackedAInt8Len(alexConv1M, alexConv1K))
	rowSum := make([]int32, alexConv1M)
	PackAInt8(alexConv1M, alexConv1K, q, pa, rowSum)
	scaleB := QuantScale(MaxAbs(bf))
	bp := make([]uint8, PackedBInt8Len(alexConv1K, alexConv1N))
	colSum := make([]int32, alexConv1N)
	c := make([]float32, alexConv1M*alexConv1N)
	b.SetBytes(int64(2 * alexConv1M * alexConv1N * alexConv1K))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QuantizePackBInt8(alexConv1K, alexConv1N, bf, scaleB, bp, colSum)
		GemmPackedInt8(alexConv1M, alexConv1N, alexConv1K, pa, rowSum, bp, colSum, c, scaleA*scaleB, EpNone, nil)
	}
}

// BenchmarkGemmPackedInt8FC4096 is the FC shape (batch 32 over AlexNet
// fc7 4096×4096): weights packed once, activations quantized per call.
func BenchmarkGemmPackedInt8FC4096(b *testing.B) {
	rng := NewRNG(46)
	const batch, in, out = 32, 4096, 4096
	xf := make([]float32, batch*in)
	wf := make([]float32, out*in)
	rng.FillUniform(xf, -1, 1)
	rng.FillUniform(wf, -1, 1)
	qw := make([]int8, len(wf))
	scaleW := QuantizeSymmetric(wf, qw)
	bp := make([]uint8, PackedBInt8Len(in, out))
	colSum := make([]int32, out)
	PackBTInt8(in, out, qw, bp, colSum)
	pa := make([]uint64, PackedAInt8Len(batch, in))
	rowSum := make([]int32, batch)
	c := make([]float32, batch*out)
	bias := make([]float32, out)
	b.SetBytes(int64(2 * batch * in * out))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scaleX := QuantScale(MaxAbs(xf))
		QuantizePackAInt8(batch, in, xf, scaleX, pa, rowSum)
		GemmPackedInt8(batch, out, in, pa, rowSum, bp, colSum, c, scaleX*scaleW, EpBiasColReLU, bias)
	}
}
