package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

// packedShapes deliberately cover tiles, fringes (m, n not multiples of
// the 4×4 microtile), single rows/columns, and k extents beyond one
// packKC block.
var packedShapes = [][3]int{
	{1, 1, 1}, {4, 4, 4}, {3, 5, 7}, {5, 9, 3}, {17, 23, 31},
	{64, 64, 64}, {33, 65, 300}, {2, 257, 129}, {1, 301, 70}, {96, 121, 363},
}

func TestPackedBLen(t *testing.T) {
	if got := PackedBLen(3, 5); got != 2*3*packNR {
		t.Fatalf("PackedBLen(3,5)=%d", got)
	}
	if got := PackedBLen(7, 4); got != 7*packNR {
		t.Fatalf("PackedBLen(7,4)=%d", got)
	}
	if got := PackedBLen(5, 0); got != 0 {
		t.Fatalf("PackedBLen(5,0)=%d", got)
	}
}

func TestPackBTMatchesPackB(t *testing.T) {
	rng := NewRNG(30)
	for _, s := range packedShapes {
		n, k := s[1], s[2]
		b := make([]float32, k*n)
		rng.FillUniform(b, -1, 1)
		bt := make([]float32, n*k)
		for kk := 0; kk < k; kk++ {
			for j := 0; j < n; j++ {
				bt[j*k+kk] = b[kk*n+j]
			}
		}
		p1 := make([]float32, PackedBLen(k, n))
		p2 := make([]float32, PackedBLen(k, n))
		PackB(k, n, b, p1)
		PackBT(k, n, bt, p2)
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("n=%d k=%d: packed[%d] %v != %v", n, k, i, p1[i], p2[i])
			}
		}
	}
}

// TestGemmPackedBitIdenticalToGemm pins the central numerical contract
// of the packed backend: for finite inputs it produces exactly the bytes
// Gemm(m,n,k,1,a,b,0,c) does, because every output element accumulates
// its products one at a time in the same ascending-k order and partials
// round-trip through C at the same k-block granularity semantics.
func TestGemmPackedBitIdenticalToGemm(t *testing.T) {
	rng := NewRNG(31)
	for _, s := range packedShapes {
		m, n, k := s[0], s[1], s[2]
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		rng.FillUniform(a, -1, 1)
		rng.FillUniform(b, -1, 1)
		// Sprinkle exact zeros so the reference kernel's av==0 skip is
		// exercised against the packed kernel's unconditional add.
		for i := 0; i < len(a); i += 7 {
			a[i] = 0
		}
		bp := make([]float32, PackedBLen(k, n))
		PackB(k, n, b, bp)
		got := make([]float32, m*n)
		rng.FillUniform(got, -9, 9) // must be overwritten
		GemmPacked(m, n, k, a, bp, got, EpNone, nil)
		want := make([]float32, m*n)
		Gemm(m, n, k, 1, a, b, 0, want)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("m=%d n=%d k=%d: c[%d]=%v, Gemm %v (must be bit-identical)", m, n, k, i, got[i], want[i])
			}
		}
	}
}

func TestGemmPackedMatchesNaive(t *testing.T) {
	rng := NewRNG(32)
	f := func(mRaw, nRaw, kRaw uint8) bool {
		m, n, k := int(mRaw%40)+1, int(nRaw%40)+1, int(kRaw%40)+1
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		rng.FillUniform(a, -2, 2)
		rng.FillUniform(b, -2, 2)
		bp := make([]float32, PackedBLen(k, n))
		PackB(k, n, b, bp)
		c1 := make([]float32, m*n)
		c2 := make([]float32, m*n)
		GemmPacked(m, n, k, a, bp, c1, EpNone, nil)
		GemmNaive(m, n, k, 1, a, b, 0, c2)
		for i := range c1 {
			if math.Abs(float64(c1[i]-c2[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestGemmPackedEpiloguesBitIdentical checks each fused epilogue against
// the unfused reference sequence (Gemm then AddBias*/ReLU), which the
// plan's float32 reference path uses.
func TestGemmPackedEpiloguesBitIdentical(t *testing.T) {
	rng := NewRNG(33)
	for _, s := range packedShapes {
		m, n, k := s[0], s[1], s[2]
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		colBias := make([]float32, n)
		rowBias := make([]float32, m)
		rng.FillUniform(a, -1, 1)
		rng.FillUniform(b, -1, 1)
		rng.FillUniform(colBias, -1, 1)
		rng.FillUniform(rowBias, -1, 1)
		bp := make([]float32, PackedBLen(k, n))
		PackB(k, n, b, bp)
		base := make([]float32, m*n)
		Gemm(m, n, k, 1, a, b, 0, base)

		cases := []struct {
			ep   Epilogue
			bias []float32
			ref  func(c []float32)
		}{
			{EpBiasCol, colBias, func(c []float32) { AddBias(m, n, c, colBias) }},
			{EpBiasColReLU, colBias, func(c []float32) { AddBiasReLU(m, n, c, colBias) }},
			{EpBiasRow, rowBias, func(c []float32) { AddBiasRows(m, n, c, rowBias) }},
			{EpBiasRowReLU, rowBias, func(c []float32) { AddBiasRowsReLU(m, n, c, rowBias) }},
		}
		for _, tc := range cases {
			got := make([]float32, m*n)
			GemmPacked(m, n, k, a, bp, got, tc.ep, tc.bias)
			want := append([]float32(nil), base...)
			tc.ref(want)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("ep=%d m=%d n=%d k=%d: c[%d]=%v, unfused %v", tc.ep, m, n, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestGemmPackedParallelBitIdentical(t *testing.T) {
	rng := NewRNG(34)
	for _, s := range packedShapes {
		m, n, k := s[0], s[1], s[2]
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		rowBias := make([]float32, m)
		rng.FillUniform(a, -1, 1)
		rng.FillUniform(b, -1, 1)
		rng.FillUniform(rowBias, -1, 1)
		bp := make([]float32, PackedBLen(k, n))
		PackB(k, n, b, bp)
		want := make([]float32, m*n)
		GemmPacked(m, n, k, a, bp, want, EpBiasRowReLU, rowBias)
		for _, workers := range []int{1, 2, 3, 7, 16} {
			got := make([]float32, m*n)
			GemmPackedParallel(workers, m, n, k, a, bp, got, EpBiasRowReLU, rowBias)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("workers=%d m=%d n=%d k=%d: c[%d]=%v, serial %v (must be bit-identical)",
						workers, m, n, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestGemmPackedPanicsOnShortBuffers(t *testing.T) {
	cases := []func(){
		func() { // short A
			GemmPacked(4, 4, 4, make([]float32, 15), make([]float32, PackedBLen(4, 4)), make([]float32, 16), EpNone, nil)
		},
		func() { // short packed B
			GemmPacked(4, 4, 4, make([]float32, 16), make([]float32, 15), make([]float32, 16), EpNone, nil)
		},
		func() { // short C
			GemmPacked(4, 4, 4, make([]float32, 16), make([]float32, PackedBLen(4, 4)), make([]float32, 15), EpNone, nil)
		},
		func() { // short column bias
			GemmPacked(4, 4, 4, make([]float32, 16), make([]float32, PackedBLen(4, 4)), make([]float32, 16), EpBiasCol, make([]float32, 3))
		},
		func() { // short row bias
			GemmPacked(4, 4, 4, make([]float32, 16), make([]float32, PackedBLen(4, 4)), make([]float32, 16), EpBiasRow, make([]float32, 3))
		},
		func() { // short PackB input
			PackB(4, 4, make([]float32, 15), make([]float32, PackedBLen(4, 4)))
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// alexConv1 is the AlexNet conv1 GEMM shape (per sample, no groups):
// OutC=96 rows, 55×55 output positions, 3·11·11 kernel taps.
const (
	alexConv1M = 96
	alexConv1N = 55 * 55
	alexConv1K = 3 * 11 * 11
)

// BenchmarkGemmAlexNetConv1 is the blocked reference kernel on the
// AlexNet conv1 shape — the ablation partner of BenchmarkGemmPacked.
func BenchmarkGemmAlexNetConv1(b *testing.B) {
	rng := NewRNG(35)
	a := make([]float32, alexConv1M*alexConv1K)
	bb := make([]float32, alexConv1K*alexConv1N)
	c := make([]float32, alexConv1M*alexConv1N)
	rng.FillUniform(a, -1, 1)
	rng.FillUniform(bb, -1, 1)
	b.SetBytes(int64(2 * alexConv1M * alexConv1N * alexConv1K * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(alexConv1M, alexConv1N, alexConv1K, 1, a, bb, 0, c)
	}
}

// BenchmarkGemmPacked measures the panel-packed kernel on the AlexNet
// conv1 shape, including the per-call PackB (the conv path repacks the
// im2col matrix every call).
func BenchmarkGemmPacked(b *testing.B) {
	rng := NewRNG(36)
	a := make([]float32, alexConv1M*alexConv1K)
	bb := make([]float32, alexConv1K*alexConv1N)
	bp := make([]float32, PackedBLen(alexConv1K, alexConv1N))
	c := make([]float32, alexConv1M*alexConv1N)
	rng.FillUniform(a, -1, 1)
	rng.FillUniform(bb, -1, 1)
	b.SetBytes(int64(2 * alexConv1M * alexConv1N * alexConv1K * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackB(alexConv1K, alexConv1N, bb, bp)
		GemmPacked(alexConv1M, alexConv1N, alexConv1K, a, bp, c, EpNone, nil)
	}
}

// BenchmarkGemmPacked256 is the square-shape partner of
// BenchmarkGemm256 (B pre-packed: the FC path packs weights once at
// compile).
func BenchmarkGemmPacked256(b *testing.B) {
	rng := NewRNG(37)
	n := 256
	a := make([]float32, n*n)
	bb := make([]float32, n*n)
	bp := make([]float32, PackedBLen(n, n))
	c := make([]float32, n*n)
	rng.FillUniform(a, -1, 1)
	rng.FillUniform(bb, -1, 1)
	PackB(n, n, bb, bp)
	b.SetBytes(int64(2 * n * n * n * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmPacked(n, n, n, a, bp, c, EpNone, nil)
	}
}
