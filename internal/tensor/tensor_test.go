package tensor

import (
	"bytes"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if x.Dims() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape %v", x.Shape())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New not zero-filled")
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4, 5)
	x.Set(7.5, 2, 1, 3)
	if got := x.At(2, 1, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Row-major offset check: (2*4+1)*5+3 = 48.
	if x.Data()[48] != 7.5 {
		t.Fatalf("row-major layout broken: data[48]=%v", x.Data()[48])
	}
}

func TestFromSliceSharesStorage(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[3] = 9
	if x.At(1, 1) != 9 {
		t.Fatal("FromSlice should not copy")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Set(5, 2, 3)
	if x.At(1, 5) != 5 {
		t.Fatal("Reshape should share storage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := New(2, 2)
	x.Fill(1)
	y := x.Clone()
	y.Fill(2)
	if x.At(0, 0) != 1 {
		t.Fatal("Clone should copy storage")
	}
}

func TestPanicsOnBadShapes(t *testing.T) {
	cases := []func(){
		func() { New() },
		func() { New(2, 0) },
		func() { New(-1) },
		func() { FromSlice([]float32{1, 2}, 3) },
		func() { New(2, 2).Reshape(5) },
		func() { New(2, 2).At(2, 0) },
		func() { New(2, 2).At(0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestGemmMatchesNaive(t *testing.T) {
	rng := NewRNG(1)
	shapes := [][3]int{{1, 1, 1}, {3, 5, 7}, {16, 16, 16}, {65, 63, 70}, {128, 300, 41}, {200, 1, 200}, {1, 257, 65}}
	for _, s := range shapes {
		m, n, k := s[0], s[1], s[2]
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		c0 := make([]float32, m*n)
		rng.FillUniform(a, -1, 1)
		rng.FillUniform(b, -1, 1)
		rng.FillUniform(c0, -1, 1)
		c1 := append([]float32(nil), c0...)
		c2 := append([]float32(nil), c0...)
		Gemm(m, n, k, 0.5, a, b, 0.25, c1)
		GemmNaive(m, n, k, 0.5, a, b, 0.25, c2)
		for i := range c1 {
			if diff := math.Abs(float64(c1[i] - c2[i])); diff > 1e-3 {
				t.Fatalf("m=%d n=%d k=%d: c[%d]=%v want %v", m, n, k, i, c1[i], c2[i])
			}
		}
	}
}

func TestGemmProperty(t *testing.T) {
	// Property: blocked GEMM agrees with the reference implementation on
	// random shapes and data.
	rng := NewRNG(2)
	f := func(mRaw, nRaw, kRaw uint8) bool {
		m, n, k := int(mRaw%40)+1, int(nRaw%40)+1, int(kRaw%40)+1
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		rng.FillUniform(a, -2, 2)
		rng.FillUniform(b, -2, 2)
		c1 := make([]float32, m*n)
		c2 := make([]float32, m*n)
		Gemm(m, n, k, 1, a, b, 0, c1)
		GemmNaive(m, n, k, 1, a, b, 0, c2)
		for i := range c1 {
			if math.Abs(float64(c1[i]-c2[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGemmBetaZeroIgnoresNaN(t *testing.T) {
	// beta=0 must overwrite, not multiply, so NaN garbage in C is fine.
	a := []float32{1, 2, 3, 4}
	b := []float32{1, 0, 0, 1}
	c := []float32{float32(math.NaN()), float32(math.NaN()), float32(math.NaN()), float32(math.NaN())}
	Gemm(2, 2, 2, 1, a, b, 0, c)
	want := []float32{1, 2, 3, 4}
	for i := range c {
		if c[i] != want[i] {
			t.Fatalf("c[%d]=%v want %v", i, c[i], want[i])
		}
	}
}

func TestGemvMatchesGemm(t *testing.T) {
	rng := NewRNG(3)
	m, n := 37, 53
	a := make([]float32, m*n)
	x := make([]float32, n)
	rng.FillUniform(a, -1, 1)
	rng.FillUniform(x, -1, 1)
	y1 := make([]float32, m)
	y2 := make([]float32, m)
	Gemv(m, n, 1, a, x, 0, y1)
	Gemm(m, 1, n, 1, a, x, 0, y2)
	for i := range y1 {
		if math.Abs(float64(y1[i]-y2[i])) > 1e-4 {
			t.Fatalf("y[%d]=%v want %v", i, y1[i], y2[i])
		}
	}
}

func TestIm2colIdentityKernel(t *testing.T) {
	// A 1x1 kernel with stride 1 and no padding is the identity.
	g := ConvGeom{Channels: 2, Height: 3, Width: 3, KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1}
	img := make([]float32, 18)
	for i := range img {
		img[i] = float32(i)
	}
	col := make([]float32, ColSize(g))
	Im2col(g, img, col)
	for i := range img {
		if col[i] != img[i] {
			t.Fatalf("col[%d]=%v want %v", i, col[i], img[i])
		}
	}
}

func TestIm2colKnownValues(t *testing.T) {
	// 1 channel, 3x3 image, 2x2 kernel, stride 1, no pad → 2x2 output.
	g := ConvGeom{Channels: 1, Height: 3, Width: 3, KernelH: 2, KernelW: 2, StrideH: 1, StrideW: 1}
	img := []float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	col := make([]float32, ColSize(g))
	Im2col(g, img, col)
	// Rows are kernel taps (kh,kw), columns are output positions.
	want := []float32{
		1, 2, 4, 5, // tap (0,0)
		2, 3, 5, 6, // tap (0,1)
		4, 5, 7, 8, // tap (1,0)
		5, 6, 8, 9, // tap (1,1)
	}
	for i := range want {
		if col[i] != want[i] {
			t.Fatalf("col[%d]=%v want %v", i, col[i], want[i])
		}
	}
}

func TestIm2colPadding(t *testing.T) {
	g := ConvGeom{Channels: 1, Height: 2, Width: 2, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	if g.OutH() != 2 || g.OutW() != 2 {
		t.Fatalf("out %dx%d, want 2x2", g.OutH(), g.OutW())
	}
	img := []float32{1, 2, 3, 4}
	col := make([]float32, ColSize(g))
	Im2col(g, img, col)
	// Center tap (1,1) should reproduce the image.
	centerOff := (1*3 + 1) * 4
	want := []float32{1, 2, 3, 4}
	for i := range want {
		if col[centerOff+i] != want[i] {
			t.Fatalf("center tap[%d]=%v want %v", i, col[centerOff+i], want[i])
		}
	}
	// Corner tap (0,0) sees padding except bottom-right output.
	if col[0] != 0 || col[1] != 0 || col[2] != 0 || col[3] != 1 {
		t.Fatalf("corner tap wrong: %v", col[:4])
	}
}

func TestCol2imAdjointProperty(t *testing.T) {
	// <Im2col(x), y> == <x, Col2im(y)> — the defining adjoint property,
	// which the conv backward pass depends on.
	rng := NewRNG(4)
	f := func(hRaw, wRaw, kRaw, sRaw, pRaw uint8) bool {
		h := int(hRaw%6) + 3
		w := int(wRaw%6) + 3
		k := int(kRaw%3) + 1
		s := int(sRaw%2) + 1
		p := int(pRaw % 2)
		g := ConvGeom{Channels: 2, Height: h, Width: w, KernelH: k, KernelW: k, StrideH: s, StrideW: s, PadH: p, PadW: p}
		if g.OutH() <= 0 || g.OutW() <= 0 {
			return true
		}
		x := make([]float32, 2*h*w)
		rng.FillUniform(x, -1, 1)
		cx := make([]float32, ColSize(g))
		Im2col(g, x, cx)
		y := make([]float32, ColSize(g))
		rng.FillUniform(y, -1, 1)
		back := make([]float32, 2*h*w)
		Col2im(g, y, back)
		lhs := float64(Dot(cx, y))
		rhs := float64(Dot(x, back))
		return math.Abs(lhs-rhs) <= 1e-2*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := NewRNG(5)
	f := func(mRaw, nRaw uint8) bool {
		m, n := int(mRaw%10)+1, int(nRaw%20)+1
		x := make([]float32, m*n)
		rng.FillUniform(x, -30, 30)
		Softmax(m, n, x)
		for i := 0; i < m; i++ {
			var s float64
			for j := 0; j < n; j++ {
				v := x[i*n+j]
				if v < 0 || v > 1 || math.IsNaN(float64(v)) {
					return false
				}
				s += float64(v)
			}
			if math.Abs(s-1) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStableForLargeInputs(t *testing.T) {
	x := []float32{1000, 1001, 1002}
	Softmax(1, 3, x)
	if math.IsNaN(float64(x[0])) || math.IsNaN(float64(x[2])) {
		t.Fatal("softmax overflowed")
	}
	if x[2] <= x[1] || x[1] <= x[0] {
		t.Fatal("softmax not monotone")
	}
}

func TestLogSoftmaxAgreesWithSoftmax(t *testing.T) {
	rng := NewRNG(6)
	x := make([]float32, 24)
	rng.FillUniform(x, -5, 5)
	y := append([]float32(nil), x...)
	Softmax(3, 8, x)
	LogSoftmax(3, 8, y)
	for i := range x {
		if math.Abs(math.Log(float64(x[i]))-float64(y[i])) > 1e-3 {
			t.Fatalf("log softmax mismatch at %d: %v vs %v", i, math.Log(float64(x[i])), y[i])
		}
	}
}

func TestActivations(t *testing.T) {
	x := []float32{-2, -0.5, 0, 0.5, 2}
	r := append([]float32(nil), x...)
	ReLU(r)
	if r[0] != 0 || r[1] != 0 || r[3] != 0.5 || r[4] != 2 {
		t.Fatalf("relu wrong: %v", r)
	}
	h := append([]float32(nil), x...)
	HardTanh(h)
	want := []float32{-1, -0.5, 0, 0.5, 1}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("hardtanh wrong: %v", h)
		}
	}
	s := append([]float32(nil), x...)
	Sigmoid(s)
	if s[2] != 0.5 {
		t.Fatalf("sigmoid(0) = %v", s[2])
	}
	if s[0] >= s[1] || s[3] >= s[4] {
		t.Fatal("sigmoid not monotone")
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float32{3, 1, 4, 1, 5, 9, 2, 6}) != 5 {
		t.Fatal("argmax wrong")
	}
	if Argmax([]float32{-1}) != 0 {
		t.Fatal("argmax single wrong")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG not deterministic")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGUniformRange(t *testing.T) {
	r := NewRNG(7)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / float64(n); mean < 0.48 || mean > 0.52 {
		t.Fatalf("suspicious mean %v", mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(8)
	var sum, sumSq float64
	n := 20000
	for i := 0; i < n; i++ {
		v := float64(r.Norm())
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 || math.Abs(variance-1) > 0.1 {
		t.Fatalf("norm moments off: mean=%v var=%v", mean, variance)
	}
}

func TestXavierFillBounds(t *testing.T) {
	r := NewRNG(9)
	x := make([]float32, 1000)
	r.XavierFill(x, 100, 50)
	limit := float32(math.Sqrt(6.0 / 150.0))
	for _, v := range x {
		if v < -limit || v >= limit {
			t.Fatalf("xavier out of bounds: %v (limit %v)", v, limit)
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := NewRNG(10)
	x := New(3, 7, 5)
	rng.FillNorm(x.Data(), 0, 2)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !x.SameShape(y) {
		t.Fatalf("shape %v != %v", x.Shape(), y.Shape())
	}
	for i := range x.Data() {
		if x.Data()[i] != y.Data()[i] {
			t.Fatalf("data[%d] %v != %v", i, x.Data()[i], y.Data()[i])
		}
	}
}

func TestSerializationPropertyRoundTrip(t *testing.T) {
	rng := NewRNG(11)
	f := func(aRaw, bRaw uint8) bool {
		a, b := int(aRaw%9)+1, int(bRaw%9)+1
		x := New(a, b)
		rng.FillUniform(x.Data(), -100, 100)
		var buf bytes.Buffer
		if _, err := x.WriteTo(&buf); err != nil {
			return false
		}
		y, err := ReadFrom(&buf)
		if err != nil || !x.SameShape(y) {
			return false
		}
		for i := range x.Data() {
			if x.Data()[i] != y.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("expected error on bad magic")
	}
	var buf bytes.Buffer
	x := New(2, 2)
	x.WriteTo(&buf)
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error on truncated stream")
	}
}

func TestAxpyDotScale(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{10, 20, 30}
	Axpy(2, x, y)
	if y[0] != 12 || y[1] != 24 || y[2] != 36 {
		t.Fatalf("axpy wrong: %v", y)
	}
	if Dot(x, x) != 14 {
		t.Fatalf("dot wrong: %v", Dot(x, x))
	}
	Scale(0.5, y)
	if y[0] != 6 {
		t.Fatalf("scale wrong: %v", y)
	}
}

func TestAddBias(t *testing.T) {
	x := []float32{0, 0, 0, 0, 0, 0}
	AddBias(2, 3, x, []float32{1, 2, 3})
	want := []float32{1, 2, 3, 1, 2, 3}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("AddBias wrong: %v", x)
		}
	}
	y := []float32{0, 0, 0, 0, 0, 0}
	AddBiasRows(2, 3, y, []float32{1, 2})
	want = []float32{1, 1, 1, 2, 2, 2}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("AddBiasRows wrong: %v", y)
		}
	}
}

func TestSumAndMaxAbs(t *testing.T) {
	if Sum([]float32{1, -2, 3}) != 2 {
		t.Fatal("sum wrong")
	}
	if MaxAbs([]float32{1, -5, 3}) != 5 {
		t.Fatal("maxabs wrong")
	}
	if MaxAbs(nil) != 0 {
		t.Fatal("maxabs empty wrong")
	}
}

func BenchmarkGemm256(b *testing.B) {
	rng := NewRNG(20)
	n := 256
	a := make([]float32, n*n)
	bb := make([]float32, n*n)
	c := make([]float32, n*n)
	rng.FillUniform(a, -1, 1)
	rng.FillUniform(bb, -1, 1)
	b.SetBytes(int64(2 * n * n * n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(n, n, n, 1, a, bb, 0, c)
	}
}

func BenchmarkIm2colAlexNetConv1(b *testing.B) {
	g := ConvGeom{Channels: 3, Height: 227, Width: 227, KernelH: 11, KernelW: 11, StrideH: 4, StrideW: 4}
	img := make([]float32, 3*227*227)
	col := make([]float32, ColSize(g))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2col(g, img, col)
	}
}

// BenchmarkGemmNaive256 is the ablation partner of BenchmarkGemm256:
// the speedup of cache blocking over the naive triple loop.
func BenchmarkGemmNaive256(b *testing.B) {
	rng := NewRNG(21)
	n := 256
	a := make([]float32, n*n)
	bb := make([]float32, n*n)
	c := make([]float32, n*n)
	rng.FillUniform(a, -1, 1)
	rng.FillUniform(bb, -1, 1)
	b.SetBytes(int64(2 * n * n * n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmNaive(n, n, n, 1, a, bb, 0, c)
	}
}

// BenchmarkGemv4096 measures the memory-bound FC-at-batch-1 shape that
// motivates the paper's batching optimisation.
func BenchmarkGemv4096(b *testing.B) {
	rng := NewRNG(22)
	m, n := 4096, 4096
	a := make([]float32, m*n)
	x := make([]float32, n)
	y := make([]float32, m)
	rng.FillUniform(a, -1, 1)
	rng.FillUniform(x, -1, 1)
	b.SetBytes(int64(m * n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemv(m, n, 1, a, x, 0, y)
	}
}

func TestGemmParallelBitIdenticalToSerial(t *testing.T) {
	// Row-block parallelism must be bit-identical (==, not within
	// tolerance) to the serial blocked kernel: each goroutine owns a
	// disjoint C row block and runs the same kernel over it, so the
	// per-row FP operation order is unchanged. Shapes are deliberately
	// not multiples of the kernel's 64/256/64 blocking, and worker
	// counts exceed the row count to exercise the clamp.
	rng := NewRNG(11)
	shapes := [][3]int{{1, 1, 1}, {5, 3, 9}, {17, 31, 13}, {65, 63, 70}, {3, 257, 65}, {130, 19, 67}}
	for _, s := range shapes {
		m, n, k := s[0], s[1], s[2]
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		c0 := make([]float32, m*n)
		rng.FillUniform(a, -1, 1)
		rng.FillUniform(b, -1, 1)
		rng.FillUniform(c0, -1, 1)
		want := append([]float32(nil), c0...)
		Gemm(m, n, k, 0.5, a, b, 0.25, want)
		for _, workers := range []int{1, 2, 3, 7, 16, 64} {
			got := append([]float32(nil), c0...)
			GemmParallel(workers, m, n, k, 0.5, a, b, 0.25, got)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("workers=%d m=%d n=%d k=%d: c[%d]=%v, serial %v (must be bit-identical)",
						workers, m, n, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestGemmParallelProperty(t *testing.T) {
	// Property: parallel GEMM agrees with the reference implementation
	// on random odd shapes and worker counts.
	rng := NewRNG(12)
	f := func(mRaw, nRaw, kRaw, wRaw uint8) bool {
		m, n, k := int(mRaw%40)+1, int(nRaw%40)+1, int(kRaw%40)+1
		workers := int(wRaw%12) + 1
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		rng.FillUniform(a, -2, 2)
		rng.FillUniform(b, -2, 2)
		c1 := make([]float32, m*n)
		c2 := make([]float32, m*n)
		GemmParallel(workers, m, n, k, 1, a, b, 0, c1)
		GemmNaive(m, n, k, 1, a, b, 0, c2)
		for i := range c1 {
			if math.Abs(float64(c1[i]-c2[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGemmParallelPanicsOnShortBuffers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GemmParallel should panic on a short C buffer")
		}
	}()
	GemmParallel(2, 4, 4, 4, 1, make([]float32, 16), make([]float32, 16), 0, make([]float32, 15))
}

func TestParallelRowsCoversDisjointBlocks(t *testing.T) {
	// Every row is visited exactly once regardless of worker count.
	for _, rows := range []int{0, 1, 2, 7, 64, 100} {
		for _, workers := range []int{1, 2, 3, 16, 200} {
			var mu sync.Mutex
			seen := make([]int, rows)
			ParallelRows(workers, rows, func(lo, hi int) {
				mu.Lock()
				defer mu.Unlock()
				for i := lo; i < hi; i++ {
					seen[i]++
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("rows=%d workers=%d: row %d visited %d times", rows, workers, i, c)
				}
			}
		}
	}
}

func TestAddBiasReLUMatchesUnfused(t *testing.T) {
	rng := NewRNG(13)
	m, n := 7, 33
	x0 := make([]float32, m*n)
	colBias := make([]float32, n)
	rowBias := make([]float32, m)
	rng.FillUniform(x0, -2, 2)
	rng.FillUniform(colBias, -1, 1)
	rng.FillUniform(rowBias, -1, 1)

	fused := append([]float32(nil), x0...)
	AddBiasReLU(m, n, fused, colBias)
	want := append([]float32(nil), x0...)
	AddBias(m, n, want, colBias)
	ReLU(want)
	for i := range fused {
		if fused[i] != want[i] {
			t.Fatalf("AddBiasReLU[%d]=%v, unfused %v (must be bit-identical)", i, fused[i], want[i])
		}
	}

	fused = append([]float32(nil), x0...)
	AddBiasRowsReLU(m, n, fused, rowBias)
	want = append([]float32(nil), x0...)
	AddBiasRows(m, n, want, rowBias)
	ReLU(want)
	for i := range fused {
		if fused[i] != want[i] {
			t.Fatalf("AddBiasRowsReLU[%d]=%v, unfused %v (must be bit-identical)", i, fused[i], want[i])
		}
	}
}
