package tensor

import "fmt"

// Panel-packed GEMM backend.
//
// The reference Gemm walks B row-major inside a cache-blocked loop nest,
// which re-loads and re-stores each C row once per k step. The packed
// backend instead reorganises B once into column panels of packNR
// contiguous values per k step ("K×NR panels"), packs the active A tile
// into an L1-resident buffer, and keeps a packMR×packNR tile of C in
// registers across packKC k steps. C traffic drops from O(k) to
// O(k/packKC) loads+stores per element and every inner-loop operand is a
// sequential read. The 2×4 register tile is deliberate: 8 accumulators
// plus 6 operands fit the amd64 XMM file with no spills, which beats a
// larger tile that round-trips accumulators through the stack.
//
// Numerics: products are accumulated one at a time in ascending-k order
// per output element, exactly like the reference kernel, and partial
// sums round-trip through C between k blocks just as Gemm's cache
// blocking does. For finite inputs the result of
// GemmPacked(..., EpNone, nil) is therefore bit-identical to
// Gemm(m, n, k, 1, a, b, 0, c), and the fused epilogues are
// bit-identical to Gemm followed by AddBias/AddBiasReLU/AddBiasRows/
// AddBiasRowsReLU. Parallel variants assign every output element to
// exactly one worker which computes it in the same ascending-k order, so
// results are bit-identical for any worker count.
const (
	// packNR is the panel width: each packed panel stores packNR
	// consecutive B columns, interleaved per k step.
	packNR = 4
	// packMR is the register tile height of the float32 microkernel.
	packMR = 2
	// packKC is the k-block length. One A tile (packMR×packKC floats)
	// and one B panel block (packKC×packNR floats) are ≤4 KiB, so both
	// sit in L1 while the microkernel runs.
	packKC = 256
)

// Epilogue selects the fused store applied to each output element as it
// leaves the microkernel's registers, replacing a separate pass over C.
type Epilogue uint8

const (
	// EpNone stores the raw accumulator: C = A·B.
	EpNone Epilogue = iota
	// EpBiasCol stores C[i,j] = acc + bias[j] (fully-connected bias).
	EpBiasCol
	// EpBiasColReLU stores C[i,j] = max(0, acc + bias[j]).
	EpBiasColReLU
	// EpBiasRow stores C[i,j] = acc + bias[i] (convolution bias: one
	// row per output channel).
	EpBiasRow
	// EpBiasRowReLU stores C[i,j] = max(0, acc + bias[i]).
	EpBiasRowReLU
)

// applyEp applies the fused epilogue to one accumulator. i and j are the
// row/column indices used to look up the bias term.
func applyEp(v float32, ep Epilogue, bias []float32, i, j int) float32 {
	switch ep {
	case EpBiasCol:
		v += bias[j]
	case EpBiasColReLU:
		v += bias[j]
		if v < 0 {
			v = 0
		}
	case EpBiasRow:
		v += bias[i]
	case EpBiasRowReLU:
		v += bias[i]
		if v < 0 {
			v = 0
		}
	}
	return v
}

// PackedBLen returns the buffer length required to pack a k×n B matrix
// into K×NR panels. The column dimension is rounded up to a whole number
// of panels; the padding lanes are zero-filled and never stored to C.
func PackedBLen(k, n int) int {
	np := (n + packNR - 1) / packNR
	return np * k * packNR
}

// PackB packs a row-major k×n matrix b into K×NR column panels: panel p
// holds columns [p*packNR, p*packNR+packNR), stored as packNR contiguous
// values per k step so the microkernel reads one sequential stream.
// Padding columns beyond n are zero-filled. bp must have at least
// PackedBLen(k, n) elements.
func PackB(k, n int, b, bp []float32) {
	if len(b) < k*n || len(bp) < PackedBLen(k, n) {
		panic(fmt.Sprintf("tensor: packb buffer too small for k=%d n=%d (len b=%d bp=%d)", k, n, len(b), len(bp)))
	}
	np := (n + packNR - 1) / packNR
	for p := 0; p < np; p++ {
		j0 := p * packNR
		jv := min(packNR, n-j0)
		dst := bp[p*k*packNR:]
		for kk := 0; kk < k; kk++ {
			src := b[kk*n+j0:]
			t := kk * packNR
			for jj := 0; jj < jv; jj++ {
				dst[t+jj] = src[jj]
			}
			for jj := jv; jj < packNR; jj++ {
				dst[t+jj] = 0
			}
		}
	}
}

// PackBT packs B from its transpose: bt is row-major n×k where row j of
// bt is column j of the logical k×n B. This is the fully-connected
// weight case (W stored [out, in], B = Wᵀ). The packed layout is
// identical to PackB's.
func PackBT(k, n int, bt, bp []float32) {
	if len(bt) < k*n || len(bp) < PackedBLen(k, n) {
		panic(fmt.Sprintf("tensor: packbt buffer too small for k=%d n=%d (len bt=%d bp=%d)", k, n, len(bt), len(bp)))
	}
	np := (n + packNR - 1) / packNR
	for p := 0; p < np; p++ {
		j0 := p * packNR
		jv := min(packNR, n-j0)
		dst := bp[p*k*packNR:]
		for jj := 0; jj < jv; jj++ {
			col := bt[(j0+jj)*k : (j0+jj)*k+k]
			for kk := 0; kk < k; kk++ {
				dst[kk*packNR+jj] = col[kk]
			}
		}
		for jj := jv; jj < packNR; jj++ {
			for kk := 0; kk < k; kk++ {
				dst[kk*packNR+jj] = 0
			}
		}
	}
}

func checkPacked(m, n, k int, a, bp, c []float32, ep Epilogue, bias []float32) {
	if len(a) < m*k || len(bp) < PackedBLen(k, n) || len(c) < m*n {
		panic(fmt.Sprintf("tensor: packed gemm buffer too small for m=%d n=%d k=%d (len a=%d bp=%d c=%d)", m, n, k, len(a), len(bp), len(c)))
	}
	switch ep {
	case EpBiasCol, EpBiasColReLU:
		if len(bias) < n {
			panic("tensor: packed gemm column bias too short")
		}
	case EpBiasRow, EpBiasRowReLU:
		if len(bias) < m {
			panic("tensor: packed gemm row bias too short")
		}
	}
}

// GemmPacked computes C = epilogue(A·B) where A is m×k row-major and bp
// is B packed with PackB/PackBT. C is overwritten (beta = 0 semantics);
// nothing is allocated. See the package comment above for the
// bit-identity guarantees.
func GemmPacked(m, n, k int, a, bp, c []float32, ep Epilogue, bias []float32) {
	checkPacked(m, n, k, a, bp, c, ep, bias)
	zeroC(m*n, c)
	np := (n + packNR - 1) / packNR
	gemmPackedRange(m, n, k, 0, np, a, bp, c, ep, bias)
}

// GemmPackedParallel is GemmPacked with the work split across workers:
// contiguous row blocks when m > 1, contiguous panel blocks when m == 1
// (the batch-1 fully-connected case, where the row split would leave all
// but one worker idle). Each output element is produced by exactly one
// worker in the serial kernel's ascending-k order, so the result is
// bit-identical to the serial call for any worker count.
func GemmPackedParallel(workers, m, n, k int, a, bp, c []float32, ep Epilogue, bias []float32) {
	checkPacked(m, n, k, a, bp, c, ep, bias)
	zeroC(m*n, c)
	np := (n + packNR - 1) / packNR
	if workers <= 1 {
		gemmPackedRange(m, n, k, 0, np, a, bp, c, ep, bias)
		return
	}
	if m == 1 {
		ParallelRows(workers, np, func(plo, phi int) {
			gemmPackedRange(m, n, k, plo, phi, a, bp, c, ep, bias)
		})
		return
	}
	rowBias := ep == EpBiasRow || ep == EpBiasRowReLU
	ParallelRows(workers, m, func(lo, hi int) {
		bi := bias
		if rowBias {
			bi = bias[lo:hi]
		}
		gemmPackedRange(hi-lo, n, k, 0, np, a[lo*k:], bp, c[lo*n:], ep, bi)
	})
}

func zeroC(n int, c []float32) {
	for i := 0; i < n; i++ {
		c[i] = 0
	}
}

// gemmPackedRange runs the packed kernel over panel range [p0, p1) of an
// m×k · k×n product. C must hold zeros (or the previous k blocks'
// partial sums) on entry. Bias row indices are local to a (row-parallel
// callers slice a, c and a row bias together); bias column indices are
// global (panel-parallel callers pass the full column bias).
func gemmPackedRange(m, n, k, p0, p1 int, a, bp, c []float32, ep Epilogue, bias []float32) {
	var pa [packMR * packKC]float32
	for kc := 0; kc < k; kc += packKC {
		kEnd := min(kc+packKC, k)
		kcLen := kEnd - kc
		// The epilogue fires only when the final k block drains the
		// accumulators; earlier blocks store raw partial sums.
		e := EpNone
		if kEnd == k {
			e = ep
		}
		for i0 := 0; i0 < m; i0 += packMR {
			mr := min(packMR, m-i0)
			// Pack the active A tile k-major so the microkernel reads
			// one contiguous stream; it stays L1-resident across every
			// panel below.
			for r := 0; r < mr; r++ {
				arow := a[(i0+r)*k+kc : (i0+r)*k+kEnd]
				for kk, v := range arow {
					pa[kk*packMR+r] = v
				}
			}
			for p := p0; p < p1; p++ {
				j0 := p * packNR
				jv := min(packNR, n-j0)
				panel := bp[p*k*packNR+kc*packNR:]
				ct := c[i0*n+j0:]
				if mr == packMR && jv == packNR {
					micro2x4(kcLen, pa[:], panel, ct, n, e, bias, i0, j0)
				} else {
					microEdge(kcLen, mr, jv, pa[:], panel, ct, n, e, bias, i0, j0)
				}
			}
		}
	}
}

// micro2x4 is the register-tile microkernel: a full packMR×packNR tile
// accumulated over kcLen k steps. Accumulators are seeded from C (zeros
// or previous k blocks' partials) and every product is added in
// ascending-k order, matching the reference kernel's rounding exactly.
func micro2x4(kcLen int, pa, panel []float32, c []float32, ldc int, ep Epilogue, bias []float32, i0, j0 int) {
	c0 := c[0*ldc : 0*ldc+4]
	c1 := c[1*ldc : 1*ldc+4]
	c00, c01, c02, c03 := c0[0], c0[1], c0[2], c0[3]
	c10, c11, c12, c13 := c1[0], c1[1], c1[2], c1[3]
	pa = pa[:2*kcLen]
	panel = panel[:4*kcLen]
	for kk := 0; kk < kcLen; kk++ {
		t2 := 2 * kk
		t4 := 4 * kk
		a0, a1 := pa[t2], pa[t2+1]
		b0, b1, b2, b3 := panel[t4], panel[t4+1], panel[t4+2], panel[t4+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
	}
	if ep == EpNone {
		c0[0], c0[1], c0[2], c0[3] = c00, c01, c02, c03
		c1[0], c1[1], c1[2], c1[3] = c10, c11, c12, c13
		return
	}
	c0[0] = applyEp(c00, ep, bias, i0, j0)
	c0[1] = applyEp(c01, ep, bias, i0, j0+1)
	c0[2] = applyEp(c02, ep, bias, i0, j0+2)
	c0[3] = applyEp(c03, ep, bias, i0, j0+3)
	c1[0] = applyEp(c10, ep, bias, i0+1, j0)
	c1[1] = applyEp(c11, ep, bias, i0+1, j0+1)
	c1[2] = applyEp(c12, ep, bias, i0+1, j0+2)
	c1[3] = applyEp(c13, ep, bias, i0+1, j0+3)
}

// microEdge handles partial tiles at the m and n fringes (mr < packMR
// and/or jv < packNR). Same seeding and ascending-k accumulation order
// as micro2x4, one element at a time.
func microEdge(kcLen, mr, jv int, pa, panel []float32, c []float32, ldc int, ep Epilogue, bias []float32, i0, j0 int) {
	for r := 0; r < mr; r++ {
		crow := c[r*ldc:]
		for jj := 0; jj < jv; jj++ {
			acc := crow[jj]
			for kk := 0; kk < kcLen; kk++ {
				acc += pa[kk*packMR+r] * panel[kk*packNR+jj]
			}
			crow[jj] = applyEp(acc, ep, bias, i0+r, j0+jj)
		}
	}
}
