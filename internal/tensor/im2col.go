package tensor

// ConvGeom describes the geometry of a 2-D convolution or pooling
// operation over a single image plane.
type ConvGeom struct {
	Channels      int // input channels
	Height, Width int // input spatial size
	KernelH       int
	KernelW       int
	StrideH       int
	StrideW       int
	PadH          int
	PadW          int
}

// OutH returns the output height for the geometry.
func (g ConvGeom) OutH() int { return (g.Height+2*g.PadH-g.KernelH)/g.StrideH + 1 }

// OutW returns the output width for the geometry.
func (g ConvGeom) OutW() int { return (g.Width+2*g.PadW-g.KernelW)/g.StrideW + 1 }

// Im2col expands one image (channels×height×width, row-major) into a
// column matrix of shape (Channels*KernelH*KernelW) × (OutH*OutW), so a
// convolution becomes a single GEMM with the filter matrix. Out-of-image
// taps (padding) contribute zeros. col must have room for the full
// matrix.
func Im2col(g ConvGeom, img, col []float32) {
	outH, outW := g.OutH(), g.OutW()
	colIdx := 0
	for c := 0; c < g.Channels; c++ {
		chBase := c * g.Height * g.Width
		for kh := 0; kh < g.KernelH; kh++ {
			for kw := 0; kw < g.KernelW; kw++ {
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.Height {
						for ow := 0; ow < outW; ow++ {
							col[colIdx] = 0
							colIdx++
						}
						continue
					}
					rowBase := chBase + ih*g.Width
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw < 0 || iw >= g.Width {
							col[colIdx] = 0
						} else {
							col[colIdx] = img[rowBase+iw]
						}
						colIdx++
					}
				}
			}
		}
	}
}

// Col2im is the adjoint of Im2col: it scatters (accumulates) a column
// matrix back into an image buffer. img must be zeroed by the caller if
// accumulation from a clean slate is desired. Used by the convolution
// backward pass.
func Col2im(g ConvGeom, col, img []float32) {
	outH, outW := g.OutH(), g.OutW()
	colIdx := 0
	for c := 0; c < g.Channels; c++ {
		chBase := c * g.Height * g.Width
		for kh := 0; kh < g.KernelH; kh++ {
			for kw := 0; kw < g.KernelW; kw++ {
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.Height {
						colIdx += outW
						continue
					}
					rowBase := chBase + ih*g.Width
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw >= 0 && iw < g.Width {
							img[rowBase+iw] += col[colIdx]
						}
						colIdx++
					}
				}
			}
		}
	}
}

// ColSize returns the number of elements Im2col writes for geometry g.
func ColSize(g ConvGeom) int {
	return g.Channels * g.KernelH * g.KernelW * g.OutH() * g.OutW()
}
