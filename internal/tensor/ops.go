package tensor

import "math"

// ReLU applies max(0, x) in place.
func ReLU(x []float32) {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
}

// ReLUGrad writes dx = dy where x > 0, else 0.
func ReLUGrad(x, dy, dx []float32) {
	for i := range x {
		if x[i] > 0 {
			dx[i] = dy[i]
		} else {
			dx[i] = 0
		}
	}
}

// Tanh applies tanh element-wise in place.
func Tanh(x []float32) {
	for i, v := range x {
		x[i] = float32(math.Tanh(float64(v)))
	}
}

// HardTanh clamps values to [-1, 1] in place (SENNA's non-linearity).
func HardTanh(x []float32) {
	for i, v := range x {
		if v > 1 {
			x[i] = 1
		} else if v < -1 {
			x[i] = -1
		}
	}
}

// Sigmoid applies the logistic function element-wise in place.
func Sigmoid(x []float32) {
	for i, v := range x {
		x[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
}

// Softmax converts each row of an m×n row-major matrix into a
// probability distribution, using the max-subtraction trick for
// numerical stability.
func Softmax(m, n int, x []float32) {
	for i := 0; i < m; i++ {
		row := x[i*n : (i+1)*n]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			row[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range row {
			row[j] *= inv
		}
	}
}

// LogSoftmax writes log-probabilities for each row of an m×n matrix.
func LogSoftmax(m, n int, x []float32) {
	for i := 0; i < m; i++ {
		row := x[i*n : (i+1)*n]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		lse := float32(math.Log(sum)) + maxv
		for j := range row {
			row[j] -= lse
		}
	}
}

// Argmax returns the index of the largest element of x.
func Argmax(x []float32) int {
	best, bi := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Sum returns the sum of all elements.
func Sum(x []float32) float32 {
	var s float32
	for _, v := range x {
		s += v
	}
	return s
}

// MaxAbs returns the largest absolute value in x, or 0 for empty input.
func MaxAbs(x []float32) float32 {
	var m float32
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// AddBias adds bias[j] to every element of column j in an m×n row-major
// matrix. For NCHW activations the caller arranges the matrix so each
// output channel is one row instead; see AddBiasRows.
func AddBias(m, n int, x, bias []float32) {
	for i := 0; i < m; i++ {
		row := x[i*n : (i+1)*n]
		for j := range row {
			row[j] += bias[j]
		}
	}
}

// AddBiasRows adds bias[i] to every element of row i of an m×n matrix
// (the convolution case: one row per output channel).
func AddBiasRows(m, n int, x, bias []float32) {
	for i := 0; i < m; i++ {
		row := x[i*n : (i+1)*n]
		b := bias[i]
		for j := range row {
			row[j] += b
		}
	}
}

// AddBiasReLU is the fused epilogue max(0, x+bias) with column bias: one
// pass over the output instead of a bias pass plus a separate ReLU
// layer's copy-and-clamp. Element values are bit-identical to AddBias
// followed by ReLU (same add, then the same compare-against-zero).
func AddBiasReLU(m, n int, x, bias []float32) {
	for i := 0; i < m; i++ {
		row := x[i*n : (i+1)*n]
		for j := range row {
			v := row[j] + bias[j]
			if v < 0 {
				v = 0
			}
			row[j] = v
		}
	}
}

// AddBiasRowsReLU is the fused epilogue max(0, x+bias) with row bias
// (the convolution case). See AddBiasReLU.
func AddBiasRowsReLU(m, n int, x, bias []float32) {
	for i := 0; i < m; i++ {
		row := x[i*n : (i+1)*n]
		b := bias[i]
		for j := range row {
			v := row[j] + b
			if v < 0 {
				v = 0
			}
			row[j] = v
		}
	}
}
