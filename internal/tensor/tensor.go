// Package tensor provides dense float32 tensors and the linear-algebra
// kernels (GEMM, GEMV, im2col) that back the neural-network engine.
//
// Tensors use row-major layout. Convolutional data uses NCHW order
// (batch, channel, height, width), matching the Caffe conventions the
// paper's DjiNN service builds on.
package tensor

import (
	"fmt"
	"strings"
)

// Tensor is a dense float32 array with a shape. The zero value is not
// usable; construct tensors with New or FromSlice.
type Tensor struct {
	shape []int
	data  []float32
}

// New allocates a zero-filled tensor with the given shape. Every
// dimension must be positive.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. Mutating it mutates the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Reshape returns a view of the tensor with a new shape sharing the same
// storage. The element count must be unchanged.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elements) to %v (%d elements)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's elements into t. Shapes must have equal element
// counts (shapes themselves may differ, e.g. a flattened view).
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(src.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: copy size mismatch %v vs %v", src.shape, t.shape))
	}
	copy(t.data, src.data)
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// String renders a short description (shape and a few leading values),
// mainly for debugging and error messages.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	n := len(t.data)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if n < len(t.data) {
		b.WriteString(", …")
	}
	b.WriteString("]")
	return b.String()
}
