package tensor

import (
	"fmt"
	"sync"
)

// gemm block sizes, sized so that a block of B and the corresponding rows
// of A stay resident in L1/L2 while the inner kernel runs.
const (
	blockM = 64
	blockN = 256
	blockK = 64
)

// Gemm computes C = alpha*A*B + beta*C for row-major matrices,
// where A is m×k, B is k×n and C is m×n. It panics if the buffer sizes
// do not match the dimensions. The implementation is cache-blocked with
// an unrolled inner kernel; it is the workhorse behind fully-connected
// and (via im2col) convolutional layers.
func Gemm(m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("tensor: gemm buffer too small for m=%d n=%d k=%d (len a=%d b=%d c=%d)", m, n, k, len(a), len(b), len(c)))
	}
	if beta != 1 {
		if beta == 0 {
			for i := 0; i < m*n; i++ {
				c[i] = 0
			}
		} else {
			for i := 0; i < m*n; i++ {
				c[i] *= beta
			}
		}
	}
	if alpha == 0 {
		return
	}
	for kk := 0; kk < k; kk += blockK {
		kMax := min(kk+blockK, k)
		for jj := 0; jj < n; jj += blockN {
			jMax := min(jj+blockN, n)
			for ii := 0; ii < m; ii += blockM {
				iMax := min(ii+blockM, m)
				gemmBlock(ii, iMax, jj, jMax, kk, kMax, n, k, alpha, a, b, c)
			}
		}
	}
}

// gemmBlock handles one cache block. The inner loop is written over j so
// the compiler can keep the accumulation in registers and the B row
// access is sequential.
func gemmBlock(i0, i1, j0, j1, k0, k1, n, k int, alpha float32, a, b, c []float32) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : i*k+k1]
		crow := c[i*n : i*n+j1]
		for kk := k0; kk < k1; kk++ {
			av := alpha * arow[kk]
			if av == 0 {
				continue
			}
			brow := b[kk*n : kk*n+j1]
			j := j0
			for ; j+4 <= j1; j += 4 {
				crow[j] += av * brow[j]
				crow[j+1] += av * brow[j+1]
				crow[j+2] += av * brow[j+2]
				crow[j+3] += av * brow[j+3]
			}
			for ; j < j1; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
}

// GemmParallel computes the same C = alpha*A*B + beta*C as Gemm, with
// the M dimension split into contiguous row blocks, one goroutine per
// block. Each goroutine runs the serial blocked kernel over its own rows
// of A and C — workers never share an output row — so the per-row
// floating-point operation order is exactly the serial kernel's and the
// result is bit-identical to Gemm for any worker count. workers <= 1
// falls back to the serial kernel; workers > m is clamped.
func GemmParallel(workers, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("tensor: gemm buffer too small for m=%d n=%d k=%d (len a=%d b=%d c=%d)", m, n, k, len(a), len(b), len(c)))
	}
	if workers <= 1 || m <= 1 {
		// Serial fast path: skip the closure so the steady-state forward
		// path stays allocation-free.
		Gemm(m, n, k, alpha, a, b, beta, c)
		return
	}
	ParallelRows(workers, m, func(lo, hi int) {
		Gemm(hi-lo, n, k, alpha, a[lo*k:hi*k], b, beta, c[lo*n:hi*n])
	})
}

// ParallelRows splits [0, rows) into contiguous blocks, one per worker,
// and calls fn(lo, hi) concurrently on each. fn must only touch state
// owned by its row range. workers <= 1 (or a single block) runs
// fn(0, rows) on the calling goroutine with no synchronisation cost.
func ParallelRows(workers, rows int, fn func(lo, hi int)) {
	if rows <= 0 {
		return
	}
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		fn(0, rows)
		return
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// GemmNaive is the straightforward triple loop, kept as the reference
// implementation for property tests of Gemm.
func GemmNaive(m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float32
			for kk := 0; kk < k; kk++ {
				sum += a[i*k+kk] * b[kk*n+j]
			}
			c[i*n+j] = alpha*sum + beta*c[i*n+j]
		}
	}
}

// Gemv computes y = alpha*A*x + beta*y where A is m×n row-major.
func Gemv(m, n int, alpha float32, a, x []float32, beta float32, y []float32) {
	if len(a) < m*n || len(x) < n || len(y) < m {
		panic(fmt.Sprintf("tensor: gemv buffer too small for m=%d n=%d", m, n))
	}
	for i := 0; i < m; i++ {
		row := a[i*n : i*n+n]
		var sum float32
		j := 0
		for ; j+4 <= n; j += 4 {
			sum += row[j]*x[j] + row[j+1]*x[j+1] + row[j+2]*x[j+2] + row[j+3]*x[j+3]
		}
		for ; j < n; j++ {
			sum += row[j] * x[j]
		}
		y[i] = alpha*sum + beta*y[i]
	}
}

// Dot returns the inner product of a and b (which must be equal length).
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("tensor: dot length mismatch")
	}
	var sum float32
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// Axpy computes y += alpha*x.
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("tensor: axpy length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
