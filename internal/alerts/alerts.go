// Package alerts is the SLO burn-rate alert engine: multi-window
// fast/slow burn rules evaluated over the collector's attainment
// series, with a pending → firing → resolved state machine whose every
// transition is appended to the fleet event journal.
//
// Burn rate is the classic SRE formulation: with an objective of 95%
// the error budget is 5%, and burn = observed error rate / budget. A
// burn of 1 spends the budget exactly at the sustainable pace; a burn
// of 10 exhausts it ten times too fast. A rule fires only when BOTH
// its short window (reacts quickly, noisy alone) and its long window
// (smooths blips, slow alone) burn above their thresholds — the
// standard trick that keeps time-to-detect short without paging on
// every transient.
package alerts

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"djinn/internal/events"
)

// Source supplies windowed SLO error rates — the fraction of demand
// that violated the objective (shed, errored, expired, or served
// over-SLO) across the trailing window. *timeseries.Collector
// satisfies it.
type Source interface {
	ErrorRate(app string, window time.Duration) (rate, demand float64, ok bool)
}

// Rule is one multi-window burn-rate alert.
type Rule struct {
	App string
	// Objective is the SLO attainment target in (0,1), e.g. 0.95. The
	// error budget is 1−Objective.
	Objective float64
	// FastWindow/FastBurn: the short detection window and its burn
	// threshold. FastWindow also rate-limits time-to-detect.
	FastWindow time.Duration
	FastBurn   float64
	// SlowWindow/SlowBurn: the long confirmation window and its burn
	// threshold (lower — sustained moderate burn also pages).
	SlowWindow time.Duration
	SlowBurn   float64
	// Pending is how long both windows must burn before the alert
	// escalates from pending to firing (0 fires immediately).
	Pending time.Duration
	// MinDemand suppresses the rule when the fast window saw fewer than
	// this many requests — an idle app's division noise never pages.
	MinDemand float64
	// KeepFiring is the resolve hold: once firing, the burn must stay
	// clear for this long continuously before the alert resolves. A
	// momentary dip (tick aliasing, a probe cycle absorbing the
	// errors) doesn't flap the page. Zero resolves immediately.
	KeepFiring time.Duration
}

func (r Rule) withDefaults() Rule {
	if r.Objective <= 0 || r.Objective >= 1 {
		r.Objective = 0.95
	}
	if r.FastWindow <= 0 {
		r.FastWindow = time.Minute
	}
	if r.SlowWindow <= 0 {
		r.SlowWindow = 5 * r.FastWindow
	}
	if r.FastBurn <= 0 {
		r.FastBurn = 4
	}
	if r.SlowBurn <= 0 {
		r.SlowBurn = 2
	}
	if r.MinDemand <= 0 {
		r.MinDemand = 1
	}
	return r
}

// State is one alert's position in its lifecycle.
type State int

const (
	// Inactive: burn below thresholds, nothing outstanding.
	Inactive State = iota
	// Pending: both windows burning, waiting out Rule.Pending.
	Pending
	// Firing: sustained burn — page.
	Firing
	// Resolved: recently stopped firing; sticky until the next burn so
	// dashboards show the recovery.
	Resolved
)

// String renders the state name.
func (s State) String() string {
	switch s {
	case Inactive:
		return "inactive"
	case Pending:
		return "pending"
	case Firing:
		return "firing"
	case Resolved:
		return "resolved"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Status is a point-in-time view of one rule's alert.
type Status struct {
	Rule     Rule          `json:"rule"`
	State    State         `json:"-"`
	StateStr string        `json:"state"`
	Since    time.Time     `json:"since"`
	FastBurn float64       `json:"fast_burn"`
	SlowBurn float64       `json:"slow_burn"`
	Fires    int64         `json:"fires"`
	LastFire time.Duration `json:"last_fire_ns,omitempty"` // duration of the last fire (0 while firing)
}

// alertState is the mutable half of one rule.
type alertState struct {
	rule       Rule
	state      State
	since      time.Time // when the current state was entered
	firedAt    time.Time
	clearSince time.Time // firing only: when the burn last went clear
	fastBurn   float64
	slowBurn   float64
	fires      int64
	lastFire   time.Duration
}

// Engine evaluates burn-rate rules against a Source on every Eval and
// journals each state transition. Drive it with Run (own ticker) or
// call Eval directly with a test clock.
type Engine struct {
	src     Source
	journal *events.Journal

	mu     sync.Mutex
	states []*alertState

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New creates an engine over src (transitions journal to j; nil is
// fine).
func New(src Source, j *events.Journal, rules ...Rule) *Engine {
	e := &Engine{src: src, journal: j, stop: make(chan struct{}), done: make(chan struct{})}
	for _, r := range rules {
		e.states = append(e.states, &alertState{rule: r.withDefaults()})
	}
	sort.SliceStable(e.states, func(i, j int) bool { return e.states[i].rule.App < e.states[j].rule.App })
	return e
}

// Run evaluates every interval until Stop.
func (e *Engine) Run(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		defer close(e.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-e.stop:
				return
			case t := <-tick.C:
				e.Eval(t)
			}
		}
	}()
}

// Stop halts the Run loop.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() { close(e.stop) })
	select {
	case <-e.done:
	case <-time.After(time.Second):
	}
}

// Eval runs one evaluation pass stamped at now.
func (e *Engine) Eval(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.states {
		e.evalLocked(st, now)
	}
}

func (e *Engine) evalLocked(st *alertState, now time.Time) {
	r := st.rule
	budget := 1 - r.Objective
	fastRate, fastDemand, fastOK := e.src.ErrorRate(r.App, r.FastWindow)
	slowRate, _, slowOK := e.src.ErrorRate(r.App, r.SlowWindow)
	st.fastBurn, st.slowBurn = fastRate/budget, slowRate/budget
	burning := fastOK && slowOK &&
		fastDemand >= r.MinDemand &&
		st.fastBurn >= r.FastBurn && st.slowBurn >= r.SlowBurn

	switch st.state {
	case Inactive, Resolved:
		if burning {
			st.state, st.since = Pending, now
			e.journalf(events.KindAlert, "%s slo-burn pending: fast burn %.1fx over %v, slow burn %.1fx over %v (objective %.1f%%)",
				r.App, st.fastBurn, r.FastWindow, st.slowBurn, r.SlowWindow, r.Objective*100)
			if r.Pending <= 0 {
				e.fireLocked(st, now)
			}
		}
	case Pending:
		switch {
		case !burning:
			st.state, st.since = Inactive, now
			e.journalf(events.KindAlert, "%s slo-burn cancelled before firing (burn subsided)", r.App)
		case now.Sub(st.since) >= r.Pending:
			e.fireLocked(st, now)
		}
	case Firing:
		if burning {
			st.clearSince = time.Time{}
			break
		}
		if st.clearSince.IsZero() {
			st.clearSince = now
		}
		if now.Sub(st.clearSince) >= r.KeepFiring {
			st.state, st.since = Resolved, now
			st.lastFire = now.Sub(st.firedAt)
			e.journalf(events.KindAlert, "%s slo-burn RESOLVED after %v (fast burn %.1fx, slow burn %.1fx)",
				r.App, st.lastFire.Round(time.Millisecond), st.fastBurn, st.slowBurn)
		}
	}
}

func (e *Engine) fireLocked(st *alertState, now time.Time) {
	st.state, st.since, st.firedAt = Firing, now, now
	st.clearSince = time.Time{}
	st.fires++
	st.lastFire = 0
	e.journalf(events.KindAlert, "%s slo-burn FIRING: fast burn %.1fx ≥ %.1fx over %v and slow burn %.1fx ≥ %.1fx over %v",
		st.rule.App, st.fastBurn, st.rule.FastBurn, st.rule.FastWindow, st.slowBurn, st.rule.SlowBurn, st.rule.SlowWindow)
}

func (e *Engine) journalf(kind events.Kind, format string, args ...any) {
	e.journal.Appendf(kind, "alerts", format, args...)
}

// Status snapshots every rule, sorted by app.
func (e *Engine) Status() []Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Status, len(e.states))
	for i, st := range e.states {
		out[i] = Status{
			Rule:     st.rule,
			State:    st.state,
			StateStr: st.state.String(),
			Since:    st.since,
			FastBurn: st.fastBurn,
			SlowBurn: st.slowBurn,
			Fires:    st.fires,
			LastFire: st.lastFire,
		}
	}
	return out
}

// Firing reports whether any rule for app (all apps when app == "") is
// currently firing.
func (e *Engine) Firing(app string) bool {
	for _, st := range e.Status() {
		if (app == "" || st.Rule.App == app) && st.State == Firing {
			return true
		}
	}
	return false
}

// Control implements the "alerts" control verb:
//
//	alerts          — one line per rule with state and burns
//	alerts <app>    — only that app's rules
func (e *Engine) Control(args []string) (string, error) {
	if len(args) > 1 {
		return "", fmt.Errorf("usage: alerts [app]")
	}
	app := ""
	if len(args) == 1 {
		app = args[0]
	}
	var lines []string
	for _, st := range e.Status() {
		if app != "" && st.Rule.App != app {
			continue
		}
		line := fmt.Sprintf("%-10s %-8s objective=%.1f%% fast=%.2fx/%v(≥%.1fx) slow=%.2fx/%v(≥%.1fx) fires=%d",
			st.Rule.App, st.State, st.Rule.Objective*100,
			st.FastBurn, st.Rule.FastWindow, st.Rule.FastBurn,
			st.SlowBurn, st.Rule.SlowWindow, st.Rule.SlowBurn, st.Fires)
		if st.State != Inactive && !st.Since.IsZero() {
			line += fmt.Sprintf(" since=%s", st.Since.Format("15:04:05.000"))
		}
		lines = append(lines, line)
	}
	if len(lines) == 0 {
		if app != "" {
			return "", fmt.Errorf("no alert rules for %q", app)
		}
		return "(no alert rules)", nil
	}
	return strings.Join(lines, "\n"), nil
}
