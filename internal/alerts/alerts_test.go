package alerts

import (
	"strings"
	"sync"
	"testing"
	"time"

	"djinn/internal/events"
)

// fakeSource returns scripted windowed error rates.
type fakeSource struct {
	mu     sync.Mutex
	rate   map[string]float64 // same rate for both windows unless slow set
	slow   map[string]float64
	demand float64
	ok     bool
}

func newFakeSource() *fakeSource {
	return &fakeSource{rate: map[string]float64{}, slow: map[string]float64{}, demand: 100, ok: true}
}

func (f *fakeSource) set(app string, rate float64) {
	f.mu.Lock()
	f.rate[app] = rate
	delete(f.slow, app)
	f.mu.Unlock()
}

func (f *fakeSource) ErrorRate(app string, window time.Duration) (float64, float64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.ok {
		return 0, 0, false
	}
	r := f.rate[app]
	if s, ok := f.slow[app]; ok && window >= time.Minute {
		r = s
	}
	return r, f.demand, true
}

func rule() Rule {
	return Rule{
		App:        "imc",
		Objective:  0.95, // budget 5%
		FastWindow: 10 * time.Second,
		SlowWindow: 30 * time.Second,
		FastBurn:   4, // fast error rate ≥ 20%
		SlowBurn:   2, // slow error rate ≥ 10%
		Pending:    5 * time.Second,
	}
}

func at(sec int) time.Time {
	return time.Date(2026, 8, 8, 9, 0, 0, 0, time.UTC).Add(time.Duration(sec) * time.Second)
}

func TestPendingFiringResolvedLifecycle(t *testing.T) {
	src := newFakeSource()
	j := events.New(64)
	e := New(src, j, rule())

	// Healthy: stays inactive.
	src.set("imc", 0.01)
	e.Eval(at(0))
	if st := e.Status()[0]; st.State != Inactive {
		t.Fatalf("healthy state = %v", st.State)
	}

	// Burn starts: 50% error rate → fast burn 10x, slow 10x → pending.
	src.set("imc", 0.5)
	e.Eval(at(1))
	if st := e.Status()[0]; st.State != Pending {
		t.Fatalf("burning state = %v, want pending", st.State)
	}
	// Still inside the pending hold-down.
	e.Eval(at(4))
	if st := e.Status()[0]; st.State != Pending {
		t.Fatalf("state at +3s = %v, want pending", st.State)
	}
	// Pending elapsed → firing.
	e.Eval(at(7))
	st := e.Status()[0]
	if st.State != Firing || st.Fires != 1 {
		t.Fatalf("state at +6s = %v fires=%d, want firing/1", st.State, st.Fires)
	}
	if !e.Firing("imc") || !e.Firing("") {
		t.Error("Firing() should report true")
	}

	// Recovery → resolved, with the fire duration recorded.
	src.set("imc", 0.0)
	e.Eval(at(20))
	st = e.Status()[0]
	if st.State != Resolved {
		t.Fatalf("state after recovery = %v, want resolved", st.State)
	}
	if st.LastFire != 13*time.Second {
		t.Errorf("LastFire = %v, want 13s", st.LastFire)
	}
	if e.Firing("imc") {
		t.Error("Firing() after resolve")
	}

	// Journal holds the full timeline in order.
	var kinds []string
	for _, ev := range j.Recent(0) {
		if ev.Kind == events.KindAlert {
			kinds = append(kinds, ev.Msg)
		}
	}
	if len(kinds) != 3 ||
		!strings.Contains(kinds[0], "pending") ||
		!strings.Contains(kinds[1], "FIRING") ||
		!strings.Contains(kinds[2], "RESOLVED") {
		t.Errorf("journal timeline = %q, want pending→FIRING→RESOLVED", kinds)
	}
	// A fresh burn after resolve re-enters pending.
	src.set("imc", 0.5)
	e.Eval(at(30))
	if st := e.Status()[0]; st.State != Pending {
		t.Errorf("re-burn state = %v, want pending", st.State)
	}
}

func TestPendingCancelledOnTransientBurn(t *testing.T) {
	src := newFakeSource()
	j := events.New(16)
	e := New(src, j, rule())
	src.set("imc", 0.5)
	e.Eval(at(0))
	src.set("imc", 0.0) // blip over before Pending elapsed
	e.Eval(at(2))
	if st := e.Status()[0]; st.State != Inactive {
		t.Fatalf("state = %v, want inactive (cancelled)", st.State)
	}
	msgs := j.Filter(events.KindAlert, 0)
	if len(msgs) != 2 || !strings.Contains(msgs[1].Msg, "cancelled") {
		t.Errorf("journal = %+v, want pending then cancelled", msgs)
	}
}

func TestBothWindowsMustBurn(t *testing.T) {
	src := newFakeSource()
	e := New(src, nil, Rule{
		App: "imc", Objective: 0.95,
		FastWindow: 10 * time.Second, SlowWindow: time.Minute,
		FastBurn: 4, SlowBurn: 2, Pending: 0,
	})
	// Fast window burns but the slow window is still clean: no alert.
	src.mu.Lock()
	src.rate["imc"] = 0.5
	src.slow["imc"] = 0.0
	src.mu.Unlock()
	e.Eval(at(0))
	if st := e.Status()[0]; st.State != Inactive {
		t.Fatalf("fast-only burn state = %v, want inactive", st.State)
	}
	// Slow window catches up: fires immediately (Pending 0).
	src.set("imc", 0.5)
	e.Eval(at(1))
	if st := e.Status()[0]; st.State != Firing {
		t.Fatalf("both-windows state = %v, want firing", st.State)
	}
}

func TestMinDemandSuppressesIdleNoise(t *testing.T) {
	src := newFakeSource()
	src.demand = 0.5 // half a request in the window
	e := New(src, nil, func() Rule { r := rule(); r.MinDemand = 10; return r }())
	src.set("imc", 1.0)
	e.Eval(at(0))
	if st := e.Status()[0]; st.State != Inactive {
		t.Errorf("idle-app state = %v, want inactive", st.State)
	}
}

func TestNoDataNeverBurns(t *testing.T) {
	src := newFakeSource()
	src.ok = false
	e := New(src, nil, rule())
	e.Eval(at(0))
	if st := e.Status()[0]; st.State != Inactive {
		t.Errorf("no-data state = %v, want inactive", st.State)
	}
}

func TestRuleDefaults(t *testing.T) {
	r := Rule{App: "x"}.withDefaults()
	if r.Objective != 0.95 || r.FastWindow != time.Minute || r.SlowWindow != 5*time.Minute ||
		r.FastBurn != 4 || r.SlowBurn != 2 || r.MinDemand != 1 {
		t.Errorf("defaults = %+v", r)
	}
}

func TestControlVerb(t *testing.T) {
	src := newFakeSource()
	e := New(src, nil, rule(), func() Rule { r := rule(); r.App = "asr"; return r }())
	src.set("imc", 0.5)
	e.Eval(at(0))
	out, err := e.Control(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "imc") || !strings.Contains(out, "asr") || !strings.Contains(out, "pending") {
		t.Errorf("alerts output:\n%s", out)
	}
	out, err = e.Control([]string{"imc"})
	if err != nil || strings.Contains(out, "asr") {
		t.Errorf("alerts imc leaked other apps: %q err=%v", out, err)
	}
	if _, err := e.Control([]string{"nosuch"}); err == nil {
		t.Error("alerts nosuch should error")
	}
	if _, err := e.Control([]string{"a", "b"}); err == nil {
		t.Error("alerts a b should error")
	}
	empty := New(src, nil)
	if out, err := empty.Control(nil); err != nil || out != "(no alert rules)" {
		t.Errorf("empty engine Control = %q, %v", out, err)
	}
}

func TestRunStop(t *testing.T) {
	src := newFakeSource()
	src.set("imc", 0.5)
	e := New(src, events.New(16), func() Rule { r := rule(); r.Pending = 0; return r }())
	e.Run(2 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for !e.Firing("imc") && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	e.Stop()
	if !e.Firing("imc") {
		t.Fatal("Run loop never fired the alert")
	}
}

// TestKeepFiringHoldsThroughTransientClear: with a resolve hold, a
// momentary clear tick while firing must NOT resolve the alert — only
// a clear that persists for KeepFiring does, and a burn resuming
// mid-hold resets the clock.
func TestKeepFiringHoldsThroughTransientClear(t *testing.T) {
	src := newFakeSource()
	r := rule()
	r.Pending = 0
	r.KeepFiring = 10 * time.Second
	e := New(src, nil, r)

	src.set("imc", 0.5)
	e.Eval(at(0))
	if st := e.Status()[0]; st.State != Firing {
		t.Fatalf("state = %v, want firing", st.State)
	}

	// A 4 s clear blip: still firing (hold is 10 s).
	src.set("imc", 0.0)
	e.Eval(at(1))
	e.Eval(at(5))
	if st := e.Status()[0]; st.State != Firing {
		t.Fatalf("state during blip = %v, want firing", st.State)
	}

	// Burn resumes before the hold elapses: the clear clock resets.
	src.set("imc", 0.5)
	e.Eval(at(6))
	src.set("imc", 0.0)
	e.Eval(at(8))
	e.Eval(at(17)) // 9 s clear since at(8) — still short of 10 s
	if st := e.Status()[0]; st.State != Firing {
		t.Fatalf("state after reset+9s clear = %v, want firing", st.State)
	}

	// The hold finally elapses → resolved, duration spans to the
	// resolving eval.
	e.Eval(at(19))
	st := e.Status()[0]
	if st.State != Resolved {
		t.Fatalf("state after full hold = %v, want resolved", st.State)
	}
	if st.LastFire != 19*time.Second {
		t.Errorf("LastFire = %v, want 19s", st.LastFire)
	}
}
