package wsc

import (
	"fmt"
	"math"

	"djinn/internal/interconnect"
	"djinn/internal/netsim"
)

// AppPerf carries the measured per-application numbers the provisioning
// model needs; internal/experiments supplies them from the CPU and GPU
// models.
type AppPerf struct {
	Name string
	// CPUQPSPerCore is DNN-service throughput of one Xeon core.
	CPUQPSPerCore float64
	// GPUQPS is the bandwidth-unconstrained throughput of one K40
	// running the service with the Table 3 batch and 4 MPS processes.
	GPUQPS float64
	// WireBytes is the per-query request+response payload.
	WireBytes float64
}

// Mix is a Table 5 workload: a named set of applications, provisioned
// with equal server shares.
type Mix struct {
	Name string
	Apps []AppPerf
}

// Table 2's beefy server: dual Xeon E5-2620 v2, 6 cores each.
const CoresPerBeefyServer = 12

// GPUsPerIntegratedServer is the paper's Integrated design assumption:
// "12 GPUs per server based on the latest available number of PCIe x16
// slots on commodity high performance motherboards".
const GPUsPerIntegratedServer = 12

// GPUsPerDisaggServer is the disaggregated pool's single GPU-server
// SKU: a wimpy host carrying 8 GPUs (the paper's measured server
// topology) fed by 16 teamed NICs.
const GPUsPerDisaggServer = 8

// Interconnect is a Table 6 design point: the CPU→GPU link inside a
// server plus the network provisioned to saturate it.
type Interconnect struct {
	Name string
	// LinkBW is the CPU→GPU interconnect bandwidth available to one
	// GPU complex, per Table 6: a PCIe v3/v4 x16 link, or 12
	// point-to-point QPI links for the QPI design.
	LinkBW float64
	// NetBW is the per-GPU-server network bandwidth after the paper's
	// 20% protocol overhead (teamed NICs sized to saturate one
	// socket's links).
	NetBW        float64
	NICsPerSrv   float64
	NICUnitCost  float64
	ServerFactor float64 // beefy/wimpy server cost multiplier
}

// Table6 returns the paper's three interconnect/network design points,
// built from the interconnect and netsim substrates: each network is a
// NIC team sized to saturate its link after the 20% protocol overhead
// (10GbE → 16 NICs for PCIe v3, matching the paper; the same
// arithmetic yields 8 teamed links for the faster designs — the paper
// quotes 9 for 40GbE, an apparent margin allowance), and NIC prices
// scale from Table 4's $750 all-in 10GbE figure by line rate with
// per-bandwidth cost decay.
func Table6() []Interconnect {
	cf := Table4()
	mk := func(name string, link interconnect.Link, gen netsim.EthernetGen, factor float64) Interconnect {
		team := netsim.TeamToSaturate(gen, link.BytesPerSec)
		return Interconnect{
			Name:         name,
			LinkBW:       link.BytesPerSec,
			NetBW:        team.GoodputBytesPerSec(),
			NICsPerSrv:   float64(team.Count),
			NICUnitCost:  netsim.ScaledNICPrice(cf.NICCost, gen),
			ServerFactor: factor,
		}
	}
	return []Interconnect{
		mk("PCIe v3 / 10GbE", interconnect.PCIe(3, 16), netsim.TenGbE, 1.0),
		mk("PCIe v4 / 40GbE", interconnect.PCIe(4, 16), netsim.FortyGbE, 1.05),
		mk("QPI / 400GbE", interconnect.QPI(12), netsim.FourHundredGbE, 1.15),
	}
}

// Design identifies one of Figure 14's WSC organisations.
type Design int

// The three WSC designs.
const (
	CPUOnly Design = iota
	IntegratedGPU
	DisaggregatedGPU
)

// String returns the design's name.
func (d Design) String() string {
	switch d {
	case CPUOnly:
		return "CPU Only"
	case IntegratedGPU:
		return "Integrated GPU"
	case DisaggregatedGPU:
		return "Disaggregated GPU"
	}
	return fmt.Sprintf("Design(%d)", int(d))
}

// Scenario is one provisioning problem: a WSC sized at refServers
// CPU-only servers, a fraction dnnFrac of which serve the DNN mix (split
// equally across its applications) and the rest non-DNN webservices.
type Scenario struct {
	Mix        Mix
	DNNFrac    float64
	RefServers float64
	Link       Interconnect
	// PerfScale multiplies every app's DNN throughput target, for the
	// Figure 16 experiments that grow the WSC to match the throughput
	// unlocked by better interconnects.
	PerfScale float64
}

// targets returns each app's DNN-service QPS target: its server share
// in the CPU-only reference design times per-server CPU throughput.
func (s Scenario) targets() []float64 {
	scale := s.PerfScale
	if scale == 0 {
		scale = 1
	}
	perApp := s.DNNFrac * s.RefServers / float64(len(s.Mix.Apps))
	out := make([]float64, len(s.Mix.Apps))
	for i, a := range s.Mix.Apps {
		out[i] = perApp * CoresPerBeefyServer * a.CPUQPSPerCore * scale
	}
	return out
}

// nonDNNServers is the CPU capacity all designs must retain.
func (s Scenario) nonDNNServers() float64 { return (1 - s.DNNFrac) * s.RefServers }

// Provision sizes the given design for the scenario and returns its
// hardware inventory.
func Provision(d Design, s Scenario) Inventory {
	link := s.Link
	if link.LinkBW == 0 {
		link = Table6()[0]
	}
	cf := Table4()
	switch d {
	case CPUOnly:
		// The reference design, scaled if a PerfScale target is set:
		// scaling up CPU-only throughput requires scaling server count
		// in proportion (Section 6.4). The CPU-only network stays
		// 10GbE: faster links do not help CPU-bound services.
		scale := s.PerfScale
		if scale == 0 {
			scale = 1
		}
		servers := s.nonDNNServers() + s.DNNFrac*s.RefServers*scale
		return Inventory{BeefyServers: servers, NetworkCapex: servers * cf.NICCost}
	case IntegratedGPU:
		// One homogeneous DNN-server SKU: a beefy host with 12 GPUs.
		// Each application gets a whole number of servers; every server
		// carries its full 12 GPUs whether or not the service can feed
		// them (NLP saturates only the subset its PCIe share can feed —
		// the over-provisioning the Disaggregated design avoids).
		// Non-DNN webservices keep plain beefy CPU servers.
		targets := s.targets()
		gpuServers := 0.0
		for i, a := range s.Mix.Apps {
			perServer := math.Min(
				GPUsPerIntegratedServer*a.GPUQPS,
				link.LinkBW/a.WireBytes)
			gpuServers += math.Ceil(targets[i] / perServer)
		}
		servers := gpuServers + s.nonDNNServers()
		return Inventory{
			BeefyServers: servers,
			GPUs:         gpuServers * GPUsPerIntegratedServer,
			// Front-end NICs stay 10GbE: the improved link lives
			// inside the server (PCIe v4 / QPI), priced through
			// ServerCostFactor.
			NetworkCapex:     servers * cf.NICCost,
			ServerCostFactor: link.ServerFactor,
		}
	case DisaggregatedGPU:
		// Beefy CPU servers for non-DNN work plus a pool of wimpy GPU
		// servers. Each application's pool picks its chassis GPU count
		// (1-8) to minimise lifetime cost — the provisioning freedom
		// the paper credits for the Disaggregated win: GPU compute
		// matches the GPU work available "without adding GPUs to each
		// server", so bandwidth-capped services buy small chassis
		// instead of stranding GPUs.
		inv := Inventory{
			BeefyServers:     s.nonDNNServers(),
			NetworkCapex:     s.nonDNNServers() * cf.NICCost,
			ServerCostFactor: link.ServerFactor,
		}
		targets := s.targets()
		lifetimePerWatt := cf.CapexPerWatt +
			cf.ServerLifetimeMonths*(cf.OpexPerWattMonth+cf.PUE*0.730*cf.ElectricityPerKWh)
		for i, a := range s.Mix.Apps {
			target := targets[i]
			bestCost := math.Inf(1)
			var bestSrv, bestGPUs float64
			for _, nGPU := range []float64{1, 2, 4, GPUsPerDisaggServer} {
				perServer := math.Min(nGPU*a.GPUQPS,
					math.Min(link.NetBW, link.LinkBW)/a.WireBytes)
				servers := math.Ceil(target / perServer)
				watts := servers * (cf.WimpyServerWatts + nGPU*cf.GPUWatts)
				cost := servers*(cf.WimpyServerCost*link.ServerFactor+
					nGPU*cf.GPUCost+link.NICsPerSrv*link.NICUnitCost) +
					watts*lifetimePerWatt
				if cost < bestCost {
					bestCost, bestSrv, bestGPUs = cost, servers, servers*nGPU
				}
			}
			inv.WimpyServers += bestSrv
			inv.GPUs += bestGPUs
			inv.NetworkCapex += bestSrv * link.NICsPerSrv * link.NICUnitCost
		}
		return inv
	}
	panic("wsc: unknown design")
}

// DesignTCO provisions the design and prices it.
func DesignTCO(d Design, s Scenario) Breakdown {
	return TCO(Provision(d, s), Table4())
}

// ProvisionDisaggFixed provisions the Disaggregated design with every
// pool forced to the same GPUs-per-chassis count — the ablation
// comparison point for the flexible per-app sizing (see
// internal/experiments' pool-granularity study).
func ProvisionDisaggFixed(s Scenario, gpusPerChassis float64) Inventory {
	link := s.Link
	if link.LinkBW == 0 {
		link = Table6()[0]
	}
	cf := Table4()
	inv := Inventory{
		BeefyServers:     s.nonDNNServers(),
		NetworkCapex:     s.nonDNNServers() * cf.NICCost,
		ServerCostFactor: link.ServerFactor,
	}
	targets := s.targets()
	for i, a := range s.Mix.Apps {
		perServer := math.Min(gpusPerChassis*a.GPUQPS,
			math.Min(link.NetBW, link.LinkBW)/a.WireBytes)
		servers := math.Ceil(targets[i] / perServer)
		inv.WimpyServers += servers
		inv.GPUs += servers * gpusPerChassis
		inv.NetworkCapex += servers * link.NICsPerSrv * link.NICUnitCost
	}
	return inv
}
