package wsc

import (
	"math"
	"testing"
	"testing/quick"
)

// synthMix builds a mix with controllable per-app numbers.
func synthMix(gpuQPS, cpuQPS, wireBytes float64) Mix {
	return Mix{Name: "synth", Apps: []AppPerf{{
		Name: "a", CPUQPSPerCore: cpuQPS, GPUQPS: gpuQPS, WireBytes: wireBytes,
	}}}
}

func TestTable4MatchesPaper(t *testing.T) {
	cf := Table4()
	if cf.GPUCapableServerCost != 6864 || cf.GPUCost != 3314 ||
		cf.WimpyServerCost != 1716 || cf.NICCost != 750 {
		t.Fatal("hardware prices diverge from Table 4")
	}
	if cf.CapexPerWatt != 10 || cf.OpexPerWattMonth != 0.04 ||
		cf.PUE != 1.1 || cf.ElectricityPerKWh != 0.067 {
		t.Fatal("facility factors diverge from Table 4")
	}
	if cf.InterestRate != 0.08 || cf.ServerLifetimeMonths != 36 ||
		cf.MaintenanceFracMonth != 0.05 {
		t.Fatal("financing factors diverge from Table 4")
	}
}

func TestMonthlyPaymentAnnuity(t *testing.T) {
	// Zero interest: straight-line amortisation.
	if got := monthlyPayment(3600, 0, 36); got != 100 {
		t.Fatalf("zero-interest payment %v, want 100", got)
	}
	// 8% over 36 months: payment ≈ principal × 0.03134.
	got := monthlyPayment(10000, 0.08, 36)
	if math.Abs(got-313.4) > 1 {
		t.Fatalf("8%% payment %v, want ≈313.4", got)
	}
	if monthlyPayment(0, 0.08, 36) != 0 {
		t.Fatal("zero principal should cost nothing")
	}
}

func TestTCOComponentsPositiveAndAdditive(t *testing.T) {
	inv := Inventory{BeefyServers: 100, GPUs: 50, WimpyServers: 10, NetworkCapex: 75000}
	b := TCO(inv, Table4())
	for name, v := range map[string]float64{
		"servers": b.Servers, "gpus": b.GPUs, "network": b.Network,
		"facility": b.Facility, "power": b.Power, "ops": b.OpsMaint,
	} {
		if v <= 0 {
			t.Fatalf("component %s = %v, want > 0", name, v)
		}
	}
	sum := b.Servers + b.GPUs + b.Network + b.Facility + b.Power + b.OpsMaint
	if math.Abs(sum-b.Total()) > 1e-9 {
		t.Fatal("Total() is not the sum of components")
	}
}

func TestTCOScalesLinearly(t *testing.T) {
	inv := Inventory{BeefyServers: 10, GPUs: 5, WimpyServers: 2, NetworkCapex: 7500}
	inv2 := Inventory{BeefyServers: 20, GPUs: 10, WimpyServers: 4, NetworkCapex: 15000}
	t1 := TCO(inv, Table4()).Total()
	t2 := TCO(inv2, Table4()).Total()
	if math.Abs(t2-2*t1) > 1e-6*t1 {
		t.Fatalf("TCO not homogeneous: %v vs 2×%v", t2, t1)
	}
}

func TestWattsAccounting(t *testing.T) {
	cf := Table4()
	inv := Inventory{BeefyServers: 2, GPUs: 3, WimpyServers: 4}
	want := 2*300 + 3*240 + 4*75.0
	if got := inv.Watts(cf); got != want {
		t.Fatalf("watts %v, want %v", got, want)
	}
}

func TestCPUOnlyProvisioning(t *testing.T) {
	s := Scenario{Mix: synthMix(1000, 10, 1e5), DNNFrac: 0.4, RefServers: 500}
	inv := Provision(CPUOnly, s)
	if inv.BeefyServers != 500 {
		t.Fatalf("CPU-only servers %v, want 500", inv.BeefyServers)
	}
	if inv.GPUs != 0 || inv.WimpyServers != 0 {
		t.Fatal("CPU-only design must not have GPUs")
	}
}

func TestIntegratedCarries12GPUsPerDNNServer(t *testing.T) {
	s := Scenario{Mix: synthMix(1000, 10, 1e5), DNNFrac: 0.5, RefServers: 500}
	inv := Provision(IntegratedGPU, s)
	dnnServers := inv.BeefyServers - s.nonDNNServers()
	if dnnServers <= 0 {
		t.Fatal("integrated design has no DNN servers")
	}
	if math.Abs(inv.GPUs-dnnServers*GPUsPerIntegratedServer) > 1e-9 {
		t.Fatalf("integrated GPUs %v, want %v servers × 12", inv.GPUs, dnnServers)
	}
}

func TestDisaggUsesWimpyServers(t *testing.T) {
	s := Scenario{Mix: synthMix(1000, 10, 1e5), DNNFrac: 0.5, RefServers: 500}
	inv := Provision(DisaggregatedGPU, s)
	if inv.WimpyServers <= 0 {
		t.Fatal("disaggregated design needs wimpy GPU hosts")
	}
	if inv.GPUs <= 0 || inv.GPUs > inv.WimpyServers*GPUsPerDisaggServer+1e-9 {
		t.Fatalf("disaggregated GPUs %v must fit the %v wimpy chassis (≤8 each)", inv.GPUs, inv.WimpyServers)
	}
	if inv.BeefyServers != s.nonDNNServers() {
		t.Fatal("disaggregated beefy servers should cover exactly the non-DNN work")
	}
}

func TestBandwidthCapStrandsIntegratedGPUs(t *testing.T) {
	// A bandwidth-hungry service (NLP-like): per-server throughput is
	// link-capped well below 12 GPUs' worth, so integrated provisioning
	// must buy more servers than a GPU-bound service would.
	link := Table6()[0]
	gpuQPS := 200000.0
	hungry := Mix{Name: "h", Apps: []AppPerf{{Name: "nlp", CPUQPSPerCore: 1000, GPUQPS: gpuQPS, WireBytes: 44000}}}
	light := Mix{Name: "l", Apps: []AppPerf{{Name: "img", CPUQPSPerCore: 1000, GPUQPS: gpuQPS, WireBytes: 100}}}
	sH := Scenario{Mix: hungry, DNNFrac: 1, RefServers: 500, Link: link}
	sL := Scenario{Mix: light, DNNFrac: 1, RefServers: 500, Link: link}
	invH := Provision(IntegratedGPU, sH)
	invL := Provision(IntegratedGPU, sL)
	if invH.GPUs <= invL.GPUs {
		t.Fatalf("bandwidth-capped service should strand GPUs: %v vs %v", invH.GPUs, invL.GPUs)
	}
	// And that is exactly where the disaggregated win comes from.
	disH := Provision(DisaggregatedGPU, sH)
	if disH.GPUs >= invH.GPUs {
		t.Fatalf("disaggregated should employ fewer GPUs (%v) than integrated (%v) for bandwidth-capped services", disH.GPUs, invH.GPUs)
	}
}

func TestProvisioningMeetsTargetsProperty(t *testing.T) {
	// Property: for any design and scenario, the provisioned hardware
	// can actually sustain the throughput targets.
	link := Table6()[0]
	f := func(fRaw, gRaw, bRaw uint8) bool {
		frac := float64(fRaw%100)/100 + 0.005
		gpuQPS := float64(gRaw%200)*500 + 500
		bytes := float64(bRaw%100)*1000 + 100
		mix := synthMix(gpuQPS, 10, bytes)
		s := Scenario{Mix: mix, DNNFrac: frac, RefServers: 500, Link: link}
		target := s.targets()[0]
		for _, d := range []Design{IntegratedGPU, DisaggregatedGPU} {
			inv := Provision(d, s)
			var capacity float64
			switch d {
			case IntegratedGPU:
				perServer := math.Min(GPUsPerIntegratedServer*gpuQPS, link.LinkBW/bytes)
				capacity = (inv.BeefyServers - s.nonDNNServers()) * perServer
			case DisaggregatedGPU:
				nGPU := inv.GPUs / inv.WimpyServers
				perServer := math.Min(nGPU*gpuQPS, math.Min(link.NetBW, link.LinkBW)/bytes)
				capacity = inv.WimpyServers * perServer
			}
			if capacity < target*(1-1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTable6Ordering(t *testing.T) {
	links := Table6()
	if len(links) != 3 {
		t.Fatalf("%d design points, want 3", len(links))
	}
	for i := 1; i < len(links); i++ {
		if links[i].LinkBW <= links[i-1].LinkBW {
			t.Fatal("link bandwidth should increase across Table 6")
		}
		if links[i].NetBW <= links[i-1].NetBW {
			t.Fatal("network bandwidth should increase across Table 6")
		}
		if links[i].ServerFactor < links[i-1].ServerFactor {
			t.Fatal("faster interconnects should not be cheaper")
		}
	}
	// The paper's pairings: each network team is sized to saturate its
	// interconnect (within ~20%).
	for _, l := range links {
		ratio := l.NetBW / l.LinkBW
		if ratio < 0.8 || ratio > 1.25 {
			t.Fatalf("%s: network %.3g vs link %.3g not matched", l.Name, l.NetBW, l.LinkBW)
		}
	}
}

func TestPerfScaleGrowsCPUOnlyProportionally(t *testing.T) {
	// Section 6.4: "scaling up throughput requires scaling up the number
	// of servers in the CPU Only design roughly in proportion".
	mix := synthMix(1000, 10, 1e5)
	base := Scenario{Mix: mix, DNNFrac: 1, RefServers: 500}
	scaled := base
	scaled.PerfScale = 3
	b := Provision(CPUOnly, base)
	s3 := Provision(CPUOnly, scaled)
	if math.Abs(s3.BeefyServers-3*b.BeefyServers) > 1e-9 {
		t.Fatalf("scaled CPU-only servers %v, want %v", s3.BeefyServers, 3*b.BeefyServers)
	}
}

func TestDesignString(t *testing.T) {
	if CPUOnly.String() != "CPU Only" || IntegratedGPU.String() != "Integrated GPU" ||
		DisaggregatedGPU.String() != "Disaggregated GPU" {
		t.Fatal("design names wrong")
	}
}
