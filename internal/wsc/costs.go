// Package wsc implements Section 6's warehouse-scale-computer study:
// the three WSC designs of Figure 14 (CPU-only, Integrated GPU,
// Disaggregated GPU), the total-cost-of-ownership model of Table 4, the
// workload mixes of Table 5, and the future interconnect design points
// of Table 6 (PCIe v4 + 40GbE, QPI + 400GbE).
//
// Accounting note: the TCO study provisions capacity for the DNN
// service itself, matching the paper's methodology ("provision enough
// compute for the CPU Only design ... and obtain a series of
// performance targets for each service"). Query pre/post-processing
// requires identical CPU capacity in all three designs, so it cancels
// out of the normalised TCO and is excluded, as it must be for the
// paper's headline 20x MIXED improvement to be reachable at all given
// Figure 4's pre/post shares.
package wsc

import "math"

// CostFactors is Table 4.
type CostFactors struct {
	GPUCapableServerCost  float64 // 300W GPU-capable (beefy) server
	GPUCapableServerWatts float64
	GPUCost               float64 // high-end 240W GPU
	GPUWatts              float64
	WimpyServerCost       float64 // 75W wimpy server
	WimpyServerWatts      float64
	NICCost               float64 // per 10GbE NIC, switch share amortised in
	CapexPerWatt          float64 // WSC facility capital expenditure
	OpexPerWattMonth      float64 // operational expenditure
	PUE                   float64
	ElectricityPerKWh     float64
	InterestRate          float64 // annual, on capital expenditures
	ServerLifetimeMonths  float64
	AmortizationMonths    float64
	MaintenanceFracMonth  float64 // of monthly hardware amortisation
}

// Table4 returns the paper's cost factors verbatim.
func Table4() CostFactors {
	return CostFactors{
		GPUCapableServerCost:  6864,
		GPUCapableServerWatts: 300,
		GPUCost:               3314,
		GPUWatts:              240,
		WimpyServerCost:       1716,
		WimpyServerWatts:      75,
		NICCost:               750,
		CapexPerWatt:          10,
		OpexPerWattMonth:      0.04,
		PUE:                   1.1,
		ElectricityPerKWh:     0.067,
		InterestRate:          0.08,
		ServerLifetimeMonths:  36,
		AmortizationMonths:    36,
		MaintenanceFracMonth:  0.05,
	}
}

// Inventory is the hardware bill of one WSC design. Counts are
// fractional: the study provisions against continuous throughput
// targets, and rounding to integers would add noise at small scales
// without changing any conclusion.
type Inventory struct {
	BeefyServers float64 // GPU-capable 300W hosts (with or without GPUs)
	GPUs         float64
	WimpyServers float64
	// NetworkCapex is NIC + switch-share spend in dollars (different
	// server roles may carry different NIC generations, so the bill is
	// kept in dollars rather than unit counts).
	NetworkCapex float64
	// ServerCostFactor scales server cost for future interconnect
	// design points (PCIe v4 / QPI links add board cost; 0 = 1.0).
	ServerCostFactor float64
}

// Watts returns the total IT power draw of the inventory.
func (inv Inventory) Watts(cf CostFactors) float64 {
	return inv.BeefyServers*cf.GPUCapableServerWatts +
		inv.GPUs*cf.GPUWatts +
		inv.WimpyServers*cf.WimpyServerWatts
}

// Breakdown is a monthly TCO split into the components Figure 16
// reports.
type Breakdown struct {
	Servers  float64 // beefy + wimpy hardware amortisation + interest
	GPUs     float64
	Network  float64 // NICs and their switch share
	Facility float64 // capex per provisioned watt
	Power    float64 // electricity including PUE
	OpsMaint float64 // operational expenditure and maintenance
}

// Total returns the full monthly TCO.
func (b Breakdown) Total() float64 {
	return b.Servers + b.GPUs + b.Network + b.Facility + b.Power + b.OpsMaint
}

// monthlyPayment amortises principal over n months at annual rate r
// (standard annuity: the paper finances capex at 8% over the 3-year
// server lifetime).
func monthlyPayment(principal, annualRate, months float64) float64 {
	if principal == 0 {
		return 0
	}
	r := annualRate / 12
	if r == 0 {
		return principal / months
	}
	return principal * r / (1 - math.Pow(1+r, -months))
}

// TCO computes the monthly total cost of ownership of an inventory
// under the Table 4 cost factors.
func TCO(inv Inventory, cf CostFactors) Breakdown {
	serverFactor := inv.ServerCostFactor
	if serverFactor == 0 {
		serverFactor = 1
	}
	serverCapex := inv.BeefyServers*cf.GPUCapableServerCost*serverFactor +
		inv.WimpyServers*cf.WimpyServerCost*serverFactor
	gpuCapex := inv.GPUs * cf.GPUCost
	netCapex := inv.NetworkCapex
	watts := inv.Watts(cf)
	facilityCapex := watts * cf.CapexPerWatt

	var b Breakdown
	b.Servers = monthlyPayment(serverCapex, cf.InterestRate, cf.AmortizationMonths)
	b.GPUs = monthlyPayment(gpuCapex, cf.InterestRate, cf.AmortizationMonths)
	b.Network = monthlyPayment(netCapex, cf.InterestRate, cf.AmortizationMonths)
	b.Facility = monthlyPayment(facilityCapex, cf.InterestRate, cf.AmortizationMonths)
	// 730 hours per month; electricity billed on PUE-inflated draw.
	b.Power = watts * cf.PUE * 730 / 1000 * cf.ElectricityPerKWh
	hardware := b.Servers + b.GPUs + b.Network
	b.OpsMaint = watts*cf.OpexPerWattMonth + hardware*cf.MaintenanceFracMonth
	return b
}
