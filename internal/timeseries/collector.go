package timeseries

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"djinn/internal/metrics"
	"djinn/internal/modelstore"
	"djinn/internal/sched"
	"djinn/internal/service"
)

// Replica is the sampling surface the collector needs from each fleet
// member. *service.Server satisfies it; tests substitute fakes.
type Replica interface {
	Apps() []string
	StatsFor(app string) (service.Stats, bool)
	SchedFor(app string) (sched.Info, bool)
	RequestHistogram(app string) (metrics.HistogramSnapshot, bool)
	ModelStats() (modelstore.Stats, bool)
}

// Target names one replica for collection.
type Target struct {
	Replica string
	Server  Replica
}

// Config parameterises a Collector.
type Config struct {
	// Interval is the sampling period (default 1s). Rates are computed
	// against this nominal interval, so series stay fixed-interval even
	// when the sampling goroutine is scheduled late.
	Interval time.Duration
	// Slots bounds each series ring (default 360 — six minutes of
	// 1s-interval history).
	Slots int
	// Targets are the replicas to sample.
	Targets []Target
	// SLO optionally pins an app's latency objective. When absent the
	// collector reads the replica scheduler's configured SLO.
	SLO map[string]time.Duration
}

// repKey identifies one (replica, app) sampling stream.
type repKey struct{ replica, app string }

// cumState is the previous cumulative snapshot a delta is taken from.
type cumState struct {
	stats service.Stats
	info  sched.Info
	hist  metrics.HistogramSnapshot
}

// ReplicaAppSeries holds one replica's per-app series.
type ReplicaAppSeries struct {
	QPS *Series // served queries per second
	P99 *Series // per-tick p99 seconds from the replica's own histogram delta
}

// AppSeries holds the fleet-wide rollup series for one app.
type AppSeries struct {
	SLO        time.Duration
	QPS        *Series // served queries per second, fleet-wide
	ShedAdm    *Series // admission sheds per second
	ShedExp    *Series // queue-expiry sheds per second
	Errors     *Series // errors per second
	BatchAvg   *Series // mean executed batch size over the tick
	Good       *Series // per-tick in-SLO request count (for burn windows)
	Total      *Series // per-tick total demand (served+shed+errors+expired)
	Attainment *Series // per-tick good/total in [0,1]
	Hist       *HistSeries
}

// Collector periodically samples every target's per-app stats,
// maintains per-replica series, and merges the per-tick histogram
// deltas into fleet rollups. Start it with Run, or drive it manually
// with Sample (tests, experiments with fake clocks).
type Collector struct {
	cfg      Config
	interval time.Duration
	slots    int

	mu       sync.Mutex
	prev     map[repKey]cumState
	perRep   map[repKey]*ReplicaAppSeries
	fleet    map[string]*AppSeries
	resident map[string]*Series // replica → resident model bytes gauge
	ticks    int64

	selfNanos atomic.Int64 // cumulative time spent inside Sample

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewCollector creates a collector (call Run to start the sampling
// loop, or Sample to drive it manually).
func NewCollector(cfg Config) *Collector {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 360
	}
	return &Collector{
		cfg:      cfg,
		interval: cfg.Interval,
		slots:    cfg.Slots,
		prev:     make(map[repKey]cumState),
		perRep:   make(map[repKey]*ReplicaAppSeries),
		fleet:    make(map[string]*AppSeries),
		resident: make(map[string]*Series),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Interval returns the sampling period.
func (c *Collector) Interval() time.Duration { return c.interval }

// Run samples on the configured interval until Stop.
func (c *Collector) Run() {
	go func() {
		defer close(c.done)
		tick := time.NewTicker(c.interval)
		defer tick.Stop()
		for {
			select {
			case <-c.stop:
				return
			case t := <-tick.C:
				c.Sample(t)
			}
		}
	}()
}

// Stop halts the sampling loop started by Run.
func (c *Collector) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	select {
	case <-c.done:
	case <-time.After(time.Second):
	}
}

// fleetAgg accumulates one tick's deltas across replicas for one app.
type fleetAgg struct {
	served, shedAdm, shedExp, errors, expired int64
	instances, batches                        int64
	slo                                       time.Duration
	hists                                     []metrics.HistogramSnapshot
}

// Sample takes one collection pass stamped at now. The first sight of
// a (replica, app) stream only primes its cumulative baseline; deltas
// flow from the second sample on.
func (c *Collector) Sample(now time.Time) {
	t0 := time.Now()
	defer func() { c.selfNanos.Add(int64(time.Since(t0))) }()

	c.mu.Lock()
	defer c.mu.Unlock()
	c.ticks++
	dt := c.interval.Seconds()
	agg := make(map[string]*fleetAgg)

	for _, tgt := range c.cfg.Targets {
		if tgt.Server == nil {
			continue
		}
		var residentBytes int64
		if ms, ok := tgt.Server.ModelStats(); ok {
			residentBytes = ms.ResidentBytes
		}
		c.gauge(c.resident, tgt.Replica).Push(now, float64(residentBytes))

		for _, app := range tgt.Server.Apps() {
			stats, ok := tgt.Server.StatsFor(app)
			if !ok {
				continue
			}
			info, _ := tgt.Server.SchedFor(app)
			hist, _ := tgt.Server.RequestHistogram(app)
			key := repKey{tgt.Replica, app}
			prev, seen := c.prev[key]
			c.prev[key] = cumState{stats: stats, info: info, hist: hist}
			if !seen || stats.Queries < prev.stats.Queries {
				// First sample or counter reset: prime the baseline only.
				continue
			}

			dq := stats.Queries - prev.stats.Queries
			dhist := hist.Sub(prev.hist)
			rs := c.replicaSeries(key)
			rs.QPS.Push(now, float64(dq)/dt)
			rs.P99.Push(now, dhist.Quantile(0.99).Seconds())

			a := agg[app]
			if a == nil {
				a = &fleetAgg{}
				agg[app] = a
			}
			a.served += dq
			a.shedAdm += stats.ShedAdmission - prev.stats.ShedAdmission
			a.shedExp += stats.ShedExpired - prev.stats.ShedExpired
			a.errors += stats.Errors - prev.stats.Errors
			a.expired += stats.Expired - prev.stats.Expired
			a.instances += stats.Instances - prev.stats.Instances
			a.batches += stats.Batches - prev.stats.Batches
			a.hists = append(a.hists, dhist)
			if slo := c.cfg.SLO[app]; slo > 0 {
				a.slo = slo
			} else if info.SLO > 0 {
				a.slo = info.SLO
			}
		}
	}

	for app, a := range agg {
		fs := c.fleetSeries(app)
		if a.slo > 0 {
			fs.SLO = a.slo
		}
		fs.QPS.Push(now, float64(a.served)/dt)
		fs.ShedAdm.Push(now, float64(a.shedAdm)/dt)
		fs.ShedExp.Push(now, float64(a.shedExp)/dt)
		fs.Errors.Push(now, float64(a.errors)/dt)
		batchAvg := 0.0
		if a.batches > 0 {
			batchAvg = float64(a.instances) / float64(a.batches)
		}
		fs.BatchAvg.Push(now, batchAvg)

		merged, _ := metrics.MergeHistograms(a.hists...)
		fs.Hist.Push(merged)

		total := float64(a.served + a.shedAdm + a.shedExp + a.errors + a.expired)
		good := float64(a.served)
		if fs.SLO > 0 {
			good = merged.CountAtOrBelow(fs.SLO)
			if good > float64(a.served) {
				good = float64(a.served)
			}
		}
		fs.Good.Push(now, good)
		fs.Total.Push(now, total)
		att := 1.0
		if total > 0 {
			att = good / total
		}
		fs.Attainment.Push(now, att)
	}
}

func (c *Collector) gauge(m map[string]*Series, key string) *Series {
	s := m[key]
	if s == nil {
		s = NewSeries(c.slots)
		m[key] = s
	}
	return s
}

func (c *Collector) replicaSeries(key repKey) *ReplicaAppSeries {
	rs := c.perRep[key]
	if rs == nil {
		rs = &ReplicaAppSeries{QPS: NewSeries(c.slots), P99: NewSeries(c.slots)}
		c.perRep[key] = rs
	}
	return rs
}

func (c *Collector) fleetSeries(app string) *AppSeries {
	fs := c.fleet[app]
	if fs == nil {
		fs = &AppSeries{
			QPS:        NewSeries(c.slots),
			ShedAdm:    NewSeries(c.slots),
			ShedExp:    NewSeries(c.slots),
			Errors:     NewSeries(c.slots),
			BatchAvg:   NewSeries(c.slots),
			Good:       NewSeries(c.slots),
			Total:      NewSeries(c.slots),
			Attainment: NewSeries(c.slots),
			Hist:       NewHistSeries(c.slots),
		}
		c.fleet[app] = fs
	}
	return fs
}

// Apps lists the apps with fleet rollups, sorted.
func (c *Collector) Apps() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.fleet))
	for app := range c.fleet {
		out = append(out, app)
	}
	sort.Strings(out)
	return out
}

// App returns one app's fleet rollup series (nil when unknown).
func (c *Collector) App(app string) *AppSeries {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fleet[app]
}

// ReplicaApp returns one replica's series for an app (nil when
// unknown).
func (c *Collector) ReplicaApp(replica, app string) *ReplicaAppSeries {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.perRep[repKey{replica, app}]
}

// ErrorRate reports the fraction of demand that violated the app's SLO
// (shed, errored, expired, or served over-SLO) across the trailing
// window, plus the demand that backed it. ok is false when the app has
// no samples yet; zero demand reports a zero rate.
func (c *Collector) ErrorRate(app string, window time.Duration) (rate, demand float64, ok bool) {
	fs := c.App(app)
	if fs == nil {
		return 0, 0, false
	}
	k := Ticks(window, c.interval)
	if fs.Total.Len() == 0 {
		return 0, 0, false
	}
	total := fs.Total.Sum(k)
	good := fs.Good.Sum(k)
	if total <= 0 {
		return 0, 0, true
	}
	r := 1 - good/total
	if r < 0 {
		r = 0
	}
	return r, total, true
}

// FleetHistogram merges the app's per-tick fleet histograms across the
// trailing window.
func (c *Collector) FleetHistogram(app string, window time.Duration) (metrics.HistogramSnapshot, bool) {
	fs := c.App(app)
	if fs == nil {
		return metrics.HistogramSnapshot{}, false
	}
	return fs.Hist.Merged(Ticks(window, c.interval))
}

// FleetQuantile is the true fleet p-quantile over the trailing window,
// computed from the merged histogram.
func (c *Collector) FleetQuantile(app string, p float64, window time.Duration) time.Duration {
	merged, ok := c.FleetHistogram(app, window)
	if !ok {
		return 0
	}
	return merged.Quantile(p)
}

// Ticks returns how many samples the collector has taken.
func (c *Collector) Ticks() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ticks
}

// SelfTime reports the cumulative wall-clock time spent inside Sample
// — the collector's own cost, surfaced so the obsfleet experiment can
// report measured overhead rather than assert it.
func (c *Collector) SelfTime() time.Duration {
	return time.Duration(c.selfNanos.Load())
}

// Dash assembles the JSON-ready dashboard snapshot backing /dash and
// `tonic top`: per-app fleet rollups over the window plus per-replica
// sparkline columns of the last sparkN ticks.
func (c *Collector) Dash(window time.Duration, sparkN int) Dash {
	if sparkN <= 0 {
		sparkN = 30
	}
	k := Ticks(window, c.interval)
	d := Dash{Interval: c.interval, Window: window}

	for _, app := range c.Apps() {
		fs := c.App(app)
		merged, _ := fs.Hist.Merged(k)
		total := fs.Total.Sum(k)
		good := fs.Good.Sum(k)
		att := 1.0
		if total > 0 {
			att = good / total
		}
		qps := 0.0
		if last, ok := fs.QPS.Last(); ok {
			qps = last.Value
		}
		d.Apps = append(d.Apps, AppDash{
			App:         app,
			SLO:         fs.SLO,
			QPS:         qps,
			P50:         merged.Quantile(0.50),
			P99:         merged.Quantile(0.99),
			Attainment:  att,
			ShedRate:    (fs.ShedAdm.Sum(k) + fs.ShedExp.Sum(k)) / float64(k),
			QPSSpark:    fs.QPS.Values(sparkN),
			AttainSpark: fs.Attainment.Values(sparkN),
		})
	}

	c.mu.Lock()
	keys := make([]repKey, 0, len(c.perRep))
	for key := range c.perRep {
		keys = append(keys, key)
	}
	resident := make(map[string]int64, len(c.resident))
	for rep, s := range c.resident {
		if last, ok := s.Last(); ok {
			resident[rep] = int64(last.Value)
		}
	}
	c.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].replica != keys[j].replica {
			return keys[i].replica < keys[j].replica
		}
		return keys[i].app < keys[j].app
	})
	for _, key := range keys {
		rs := c.ReplicaApp(key.replica, key.app)
		if rs == nil {
			continue
		}
		qps := 0.0
		if last, ok := rs.QPS.Last(); ok {
			qps = last.Value
		}
		p99 := 0.0
		if last, ok := rs.P99.Last(); ok {
			p99 = last.Value
		}
		d.Replicas = append(d.Replicas, ReplicaDash{
			Replica:       key.replica,
			App:           key.app,
			QPS:           qps,
			P99:           time.Duration(p99 * float64(time.Second)),
			QPSSpark:      rs.QPS.Values(sparkN),
			ResidentBytes: resident[key.replica],
		})
	}
	return d
}

// Dash is the /dash payload skeleton: the collector fills Apps and
// Replicas; the admin plane layers recent events and alert states on
// top before serialising.
type Dash struct {
	Interval time.Duration `json:"interval_ns"`
	Window   time.Duration `json:"window_ns"`
	Apps     []AppDash     `json:"apps"`
	Replicas []ReplicaDash `json:"replicas"`
}

// AppDash is one app's fleet rollup row.
type AppDash struct {
	App         string        `json:"app"`
	SLO         time.Duration `json:"slo_ns,omitempty"`
	QPS         float64       `json:"qps"`
	P50         time.Duration `json:"p50_ns"`
	P99         time.Duration `json:"p99_ns"`
	Attainment  float64       `json:"attainment"`
	ShedRate    float64       `json:"shed_rate"`
	QPSSpark    []float64     `json:"qps_spark"`
	AttainSpark []float64     `json:"attain_spark"`
}

// ReplicaDash is one replica's per-app column.
type ReplicaDash struct {
	Replica       string        `json:"replica"`
	App           string        `json:"app"`
	QPS           float64       `json:"qps"`
	P99           time.Duration `json:"p99_ns"`
	QPSSpark      []float64     `json:"qps_spark"`
	ResidentBytes int64         `json:"resident_bytes"`
}
