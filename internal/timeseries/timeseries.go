// Package timeseries gives the fleet a memory: fixed-interval
// ring-buffer series over counter rates plus mergeable histogram
// snapshots, and a collector that samples every replica's per-app
// stats and rolls them up fleet-wide. The rollup path merges the
// per-replica histogram deltas before taking quantiles, so the fleet
// p99 is a true quantile over every sample — not an average of
// per-replica p99s, which hides the replica that owns the tail.
package timeseries

import (
	"math"
	"sync"
	"time"

	"djinn/internal/metrics"
)

// Point is one fixed-interval sample.
type Point struct {
	Time  time.Time `json:"time"`
	Value float64   `json:"value"`
}

// Series is a bounded ring of periodic float64 samples (rates, gauges,
// per-tick counts). Safe for concurrent use.
type Series struct {
	mu   sync.Mutex
	ring []Point
	next int // slot the next Push writes
	n    int // filled slots
}

// NewSeries creates a series retaining the last `slots` samples.
func NewSeries(slots int) *Series {
	if slots <= 0 {
		slots = 1
	}
	return &Series{ring: make([]Point, slots)}
}

// Push appends one sample, overwriting the oldest once full.
func (s *Series) Push(t time.Time, v float64) {
	s.mu.Lock()
	s.ring[s.next] = Point{Time: t, Value: v}
	s.next = (s.next + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
	s.mu.Unlock()
}

// Len returns how many samples the ring holds.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Last returns the newest sample, if any.
func (s *Series) Last() (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Point{}, false
	}
	return s.ring[(s.next-1+len(s.ring))%len(s.ring)], true
}

// Tail returns the newest k samples, oldest first (all when k <= 0 or
// k exceeds the retained count).
func (s *Series) Tail(k int) []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k <= 0 || k > s.n {
		k = s.n
	}
	out := make([]Point, k)
	for i := 0; i < k; i++ {
		out[i] = s.ring[(s.next-k+i+len(s.ring))%len(s.ring)]
	}
	return out
}

// Values returns the newest k sample values, oldest first.
func (s *Series) Values(k int) []float64 {
	pts := s.Tail(k)
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.Value
	}
	return out
}

// Sum adds the newest k sample values (all when k <= 0).
func (s *Series) Sum(k int) float64 {
	var sum float64
	for _, p := range s.Tail(k) {
		sum += p.Value
	}
	return sum
}

// Mean averages the newest k sample values, 0 when empty.
func (s *Series) Mean(k int) float64 {
	pts := s.Tail(k)
	if len(pts) == 0 {
		return 0
	}
	var sum float64
	for _, p := range pts {
		sum += p.Value
	}
	return sum / float64(len(pts))
}

// HistSeries is a bounded ring of per-interval histogram deltas. Each
// slot is the merged fleet histogram for one collector tick; merging a
// tail of slots yields the fleet latency distribution over any recent
// window, from which true fleet quantiles fall out.
type HistSeries struct {
	mu   sync.Mutex
	ring []metrics.HistogramSnapshot
	next int
	n    int
}

// NewHistSeries creates a histogram series retaining `slots` intervals.
func NewHistSeries(slots int) *HistSeries {
	if slots <= 0 {
		slots = 1
	}
	return &HistSeries{ring: make([]metrics.HistogramSnapshot, slots)}
}

// Push appends one per-interval delta snapshot.
func (h *HistSeries) Push(s metrics.HistogramSnapshot) {
	h.mu.Lock()
	h.ring[h.next] = s
	h.next = (h.next + 1) % len(h.ring)
	if h.n < len(h.ring) {
		h.n++
	}
	h.mu.Unlock()
}

// Len returns how many intervals the ring holds.
func (h *HistSeries) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Merged merges the newest k interval snapshots (all when k <= 0) into
// one histogram; ok is false when nothing non-empty was retained.
func (h *HistSeries) Merged(k int) (metrics.HistogramSnapshot, bool) {
	h.mu.Lock()
	if k <= 0 || k > h.n {
		k = h.n
	}
	snaps := make([]metrics.HistogramSnapshot, k)
	for i := 0; i < k; i++ {
		snaps[i] = h.ring[(h.next-k+i+len(h.ring))%len(h.ring)]
	}
	h.mu.Unlock()
	return metrics.MergeHistograms(snaps...)
}

// Ticks converts a wall-clock window into a tick count at the given
// sampling interval, rounding up and clamping to at least one tick.
func Ticks(window, interval time.Duration) int {
	if interval <= 0 {
		return 1
	}
	k := int(math.Ceil(float64(window) / float64(interval)))
	if k < 1 {
		k = 1
	}
	return k
}
