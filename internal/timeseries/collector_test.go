package timeseries

import (
	"sync"
	"testing"
	"time"

	"djinn/internal/metrics"
	"djinn/internal/modelstore"
	"djinn/internal/sched"
	"djinn/internal/service"
)

// fakeReplica implements Replica without booting a real server, so the
// collector's rollup math is tested against exact known inputs.
type fakeReplica struct {
	mu       sync.Mutex
	apps     map[string]*fakeApp
	resident int64
}

type fakeApp struct {
	stats service.Stats
	info  sched.Info
	hist  *metrics.Histogram
}

func newFakeReplica(apps ...string) *fakeReplica {
	r := &fakeReplica{apps: map[string]*fakeApp{}}
	for _, a := range apps {
		r.apps[a] = &fakeApp{hist: metrics.NewHistogram(nil)}
	}
	return r
}

func (r *fakeReplica) serve(app string, d time.Duration, n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a := r.apps[app]
	for i := 0; i < n; i++ {
		a.hist.Record(d)
	}
	a.stats.Queries += int64(n)
	a.stats.Instances += int64(n)
	a.stats.Batches += int64(n)
}

func (r *fakeReplica) shed(app string, adm, exp int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.apps[app].stats.ShedAdmission += adm
	r.apps[app].stats.ShedExpired += exp
}

func (r *fakeReplica) Apps() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.apps))
	for a := range r.apps {
		out = append(out, a)
	}
	return out
}

func (r *fakeReplica) StatsFor(app string) (service.Stats, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.apps[app]
	if !ok {
		return service.Stats{}, false
	}
	return a.stats, true
}

func (r *fakeReplica) SchedFor(app string) (sched.Info, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.apps[app]
	if !ok || a.info.SLO == 0 {
		return sched.Info{}, false
	}
	return a.info, true
}

func (r *fakeReplica) RequestHistogram(app string) (metrics.HistogramSnapshot, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.apps[app]
	if !ok {
		return metrics.HistogramSnapshot{}, false
	}
	return a.hist.Snapshot(), true
}

func (r *fakeReplica) ModelStats() (modelstore.Stats, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return modelstore.Stats{ResidentBytes: r.resident}, r.resident > 0
}

func TestCollectorFleetP99MatchesSingleNodeOracle(t *testing.T) {
	// Three replicas with very different tails, plus an oracle histogram
	// that saw every sample. The collector's merged fleet quantile must
	// equal the oracle's, while the average of per-replica p99s must
	// not (it hides the tail replica).
	reps := []*fakeReplica{newFakeReplica("imc"), newFakeReplica("imc"), newFakeReplica("imc")}
	oracle := metrics.NewHistogram(nil)
	c := NewCollector(Config{
		Interval: 100 * time.Millisecond,
		Slots:    64,
		Targets: []Target{
			{Replica: "r0", Server: reps[0]},
			{Replica: "r1", Server: reps[1]},
			{Replica: "r2", Server: reps[2]},
		},
	})
	c.Sample(ts(0)) // prime baselines

	record := func(rep int, d time.Duration, n int) {
		reps[rep].serve("imc", d, n)
		for i := 0; i < n; i++ {
			oracle.Record(d)
		}
	}
	record(0, 2*time.Millisecond, 300)
	record(1, 3*time.Millisecond, 300)
	record(2, 4*time.Millisecond, 290)
	record(2, 80*time.Millisecond, 10) // r2 owns the tail
	c.Sample(ts(1))

	window := 200 * time.Millisecond
	want := oracle.Snapshot()
	for _, p := range []float64{0.5, 0.99} {
		if got, exp := c.FleetQuantile("imc", p, window), want.Quantile(p); got != exp {
			t.Errorf("FleetQuantile(%v) = %v, oracle = %v", p, got, exp)
		}
	}

	var avg time.Duration
	for i := range reps {
		rs := c.ReplicaApp([]string{"r0", "r1", "r2"}[i], "imc")
		if rs == nil {
			t.Fatalf("missing replica series %d", i)
		}
		if last, ok := rs.P99.Last(); ok {
			avg += time.Duration(last.Value * float64(time.Second))
		}
	}
	avg /= time.Duration(len(reps))
	if avg >= c.FleetQuantile("imc", 0.99, window) {
		t.Errorf("avg of per-replica p99s %v ≥ merged fleet p99 %v — rollup lost the tail", avg, c.FleetQuantile("imc", 0.99, window))
	}
}

func TestCollectorRatesAndAttainment(t *testing.T) {
	rep := newFakeReplica("asr")
	c := NewCollector(Config{
		Interval: time.Second,
		Slots:    16,
		Targets:  []Target{{Replica: "r0", Server: rep}},
		SLO:      map[string]time.Duration{"asr": 10 * time.Millisecond},
	})
	c.Sample(ts(0))
	// Tick 1: 80 fast (in SLO), 20 slow (over), plus 50 admission sheds
	// and 10 queue expiries. Demand = 160, good = 80.
	rep.serve("asr", time.Millisecond, 80)
	rep.serve("asr", 100*time.Millisecond, 20)
	rep.shed("asr", 50, 10)
	c.Sample(ts(1))

	fs := c.App("asr")
	if fs == nil {
		t.Fatal("no fleet series for asr")
	}
	if last, _ := fs.QPS.Last(); last.Value != 100 {
		t.Errorf("QPS = %v, want 100", last.Value)
	}
	if last, _ := fs.ShedAdm.Last(); last.Value != 50 {
		t.Errorf("ShedAdm rate = %v, want 50", last.Value)
	}
	if last, _ := fs.ShedExp.Last(); last.Value != 10 {
		t.Errorf("ShedExp rate = %v, want 10", last.Value)
	}
	rate, demand, ok := c.ErrorRate("asr", time.Second)
	if !ok {
		t.Fatal("ErrorRate not ok")
	}
	if demand != 160 {
		t.Errorf("demand = %v, want 160", demand)
	}
	if rate < 0.45 || rate > 0.55 {
		t.Errorf("error rate = %v, want ≈ 0.5 (80 good of 160)", rate)
	}
	if last, _ := fs.Attainment.Last(); last.Value < 0.45 || last.Value > 0.55 {
		t.Errorf("attainment = %v, want ≈ 0.5", last.Value)
	}

	// Tick 2: healthy again — windowed rate over both ticks sits between.
	rep.serve("asr", time.Millisecond, 100)
	c.Sample(ts(2))
	rate2, _, _ := c.ErrorRate("asr", 2*time.Second)
	if rate2 >= rate || rate2 <= 0 {
		t.Errorf("2-tick windowed rate = %v, want between 0 and %v", rate2, rate)
	}
	if oneTick, _, _ := c.ErrorRate("asr", time.Second); oneTick > 0.05 {
		t.Errorf("healthy tick rate = %v, want ≈ 0", oneTick)
	}
}

func TestCollectorNoSLOTreatsServedAsGood(t *testing.T) {
	rep := newFakeReplica("pos")
	c := NewCollector(Config{Interval: time.Second, Slots: 8, Targets: []Target{{Replica: "r0", Server: rep}}})
	c.Sample(ts(0))
	rep.serve("pos", time.Hour, 50) // absurdly slow, but no SLO declared
	c.Sample(ts(1))
	rate, _, ok := c.ErrorRate("pos", time.Second)
	if !ok || rate != 0 {
		t.Errorf("no-SLO ErrorRate = %v ok=%v, want 0", rate, ok)
	}
}

func TestCollectorUnknownAppAndNoSamples(t *testing.T) {
	c := NewCollector(Config{Interval: time.Second, Slots: 8})
	if _, _, ok := c.ErrorRate("nope", time.Second); ok {
		t.Error("unknown app ErrorRate ok")
	}
	if q := c.FleetQuantile("nope", 0.99, time.Second); q != 0 {
		t.Errorf("unknown app quantile = %v", q)
	}
}

func TestCollectorDash(t *testing.T) {
	rep := newFakeReplica("imc")
	rep.resident = 1 << 20
	c := NewCollector(Config{
		Interval: time.Second,
		Slots:    8,
		Targets:  []Target{{Replica: "r0", Server: rep}},
		SLO:      map[string]time.Duration{"imc": 50 * time.Millisecond},
	})
	c.Sample(ts(0))
	rep.serve("imc", 5*time.Millisecond, 120)
	c.Sample(ts(1))

	d := c.Dash(4*time.Second, 8)
	if len(d.Apps) != 1 || d.Apps[0].App != "imc" {
		t.Fatalf("Dash apps = %+v", d.Apps)
	}
	a := d.Apps[0]
	if a.QPS != 120 || a.Attainment != 1 || a.SLO != 50*time.Millisecond {
		t.Errorf("AppDash = %+v, want qps 120 attainment 1", a)
	}
	if a.P99 <= 0 || a.P99 > 50*time.Millisecond {
		t.Errorf("AppDash P99 = %v, want in (0, 50ms]", a.P99)
	}
	if len(d.Replicas) != 1 || d.Replicas[0].Replica != "r0" || d.Replicas[0].ResidentBytes != 1<<20 {
		t.Fatalf("Dash replicas = %+v", d.Replicas)
	}
	if len(d.Replicas[0].QPSSpark) == 0 {
		t.Error("replica sparkline empty")
	}
}

func TestCollectorRunStop(t *testing.T) {
	rep := newFakeReplica("imc")
	c := NewCollector(Config{Interval: 5 * time.Millisecond, Slots: 64, Targets: []Target{{Replica: "r0", Server: rep}}})
	c.Run()
	rep.serve("imc", time.Millisecond, 10)
	deadline := time.Now().Add(2 * time.Second)
	for c.Ticks() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	if c.Ticks() < 3 {
		t.Fatalf("collector took %d ticks in 2s", c.Ticks())
	}
	if c.SelfTime() <= 0 {
		t.Error("SelfTime not accounted")
	}
}
