package timeseries

import (
	"testing"
	"time"

	"djinn/internal/metrics"
)

func ts(sec int) time.Time {
	return time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC).Add(time.Duration(sec) * time.Second)
}

func TestSeriesPushTailOrder(t *testing.T) {
	s := NewSeries(8)
	for i := 0; i < 5; i++ {
		s.Push(ts(i), float64(i))
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	got := s.Values(3)
	if len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Errorf("Values(3) = %v, want [2 3 4]", got)
	}
	if last, ok := s.Last(); !ok || last.Value != 4 || !last.Time.Equal(ts(4)) {
		t.Errorf("Last = %+v, want value 4 at t4", last)
	}
	if sum := s.Sum(0); sum != 0+1+2+3+4 {
		t.Errorf("Sum(0) = %v, want 10", sum)
	}
	if m := s.Mean(2); m != 3.5 {
		t.Errorf("Mean(2) = %v, want 3.5", m)
	}
}

func TestSeriesWraparound(t *testing.T) {
	s := NewSeries(4)
	for i := 0; i < 11; i++ {
		s.Push(ts(i), float64(i))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	got := s.Values(0)
	want := []float64{7, 8, 9, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after wrap Values = %v, want %v", got, want)
		}
	}
	// A window larger than the retained history clamps to what's held.
	if got := s.Values(100); len(got) != 4 {
		t.Errorf("Values(100) len = %d, want 4", len(got))
	}
	if sum := s.Sum(2); sum != 19 {
		t.Errorf("Sum(2) = %v, want 19", sum)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries(4)
	if _, ok := s.Last(); ok {
		t.Error("empty Last ok")
	}
	if s.Sum(3) != 0 || s.Mean(3) != 0 || len(s.Values(3)) != 0 {
		t.Error("empty series leaked values")
	}
}

func histWith(bounds []time.Duration, samples ...time.Duration) metrics.HistogramSnapshot {
	h := metrics.NewHistogram(bounds)
	for _, d := range samples {
		h.Record(d)
	}
	return h.Snapshot()
}

func TestHistSeriesMergeAtWindowBoundary(t *testing.T) {
	bounds := []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond}
	hs := NewHistSeries(4)
	// Six ticks; ring holds the last four. Tick i records (i+1) samples
	// of 5ms, except tick 5 which has the only slow tail sample.
	for i := 0; i < 5; i++ {
		samples := make([]time.Duration, i+1)
		for j := range samples {
			samples[j] = 5 * time.Millisecond
		}
		hs.Push(histWith(bounds, samples...))
	}
	hs.Push(histWith(bounds, 50*time.Millisecond))

	// Window of 2 ticks: tick 4 (5 samples) + tick 5 (1 slow sample).
	m, ok := hs.Merged(2)
	if !ok {
		t.Fatal("Merged(2) not ok")
	}
	if m.Count != 6 {
		t.Errorf("Merged(2) Count = %d, want 6", m.Count)
	}
	if q := m.Quantile(0.99); q <= 10*time.Millisecond {
		t.Errorf("window p99 = %v, want > 10ms (tail tick included)", q)
	}
	// Full retained window (4 ticks): ticks 2..5 → 3+4+5+1 = 13.
	m, ok = hs.Merged(0)
	if !ok {
		t.Fatal("Merged(0) not ok")
	}
	if m.Count != 13 {
		t.Errorf("Merged(all) Count = %d, want 13 (wrapped ticks excluded)", m.Count)
	}
	// Window of 1: only the tail tick.
	m, _ = hs.Merged(1)
	if m.Count != 1 {
		t.Errorf("Merged(1) Count = %d, want 1", m.Count)
	}
}

func TestHistSeriesEmptySlotsSkipped(t *testing.T) {
	hs := NewHistSeries(4)
	hs.Push(metrics.HistogramSnapshot{}) // an idle tick
	if _, ok := hs.Merged(0); ok {
		t.Error("all-empty Merged reported ok")
	}
	hs.Push(histWith([]time.Duration{time.Millisecond}, 500*time.Microsecond))
	m, ok := hs.Merged(0)
	if !ok || m.Count != 1 {
		t.Errorf("Merged over idle+busy ticks = %+v ok=%v, want Count 1", m, ok)
	}
}

func TestTicks(t *testing.T) {
	for _, tc := range []struct {
		window, interval time.Duration
		want             int
	}{
		{time.Second, 100 * time.Millisecond, 10},
		{150 * time.Millisecond, 100 * time.Millisecond, 2},
		{50 * time.Millisecond, 100 * time.Millisecond, 1},
		{0, 100 * time.Millisecond, 1},
		{time.Second, 0, 1},
	} {
		if got := Ticks(tc.window, tc.interval); got != tc.want {
			t.Errorf("Ticks(%v, %v) = %d, want %d", tc.window, tc.interval, got, tc.want)
		}
	}
}
