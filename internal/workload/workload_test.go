package workload

import (
	"math"
	"testing"

	"djinn/internal/dsp"
	"djinn/internal/models"
	"djinn/internal/tensor"
)

// TestTable3WireSizes checks the per-query input payloads against the
// paper's Table 3 (KB column).
func TestTable3WireSizes(t *testing.T) {
	want := map[models.App]float64{
		models.IMC: 604, models.DIG: 307, models.FACE: 271,
		models.ASR: 4594, models.POS: 38, models.CHK: 75, models.NER: 43,
	}
	for app, kb := range want {
		got := Get(app).WireInBytes / 1024
		if math.Abs(got-kb) > 0.5 {
			t.Errorf("%s: %.1f KB, Table 3 says %.0f", app, got, kb)
		}
	}
}

// TestTable3BatchSizes checks the selected batch sizes of Table 3.
func TestTable3BatchSizes(t *testing.T) {
	want := map[models.App]int{
		models.IMC: 16, models.DIG: 16, models.FACE: 2,
		models.ASR: 2, models.POS: 64, models.CHK: 64, models.NER: 64,
	}
	for app, b := range want {
		if got := Get(app).BatchSize; got != b {
			t.Errorf("%s: batch %d, Table 3 says %d", app, got, b)
		}
	}
}

// TestInstancesPerQuery checks Table 3's input descriptions.
func TestInstancesPerQuery(t *testing.T) {
	want := map[models.App]int{
		models.IMC: 1, models.DIG: 100, models.FACE: 1,
		models.ASR: 548, models.POS: 28, models.CHK: 28, models.NER: 28,
	}
	for app, n := range want {
		if got := Get(app).Instances; got != n {
			t.Errorf("%s: %d instances, want %d", app, got, n)
		}
	}
}

func TestKernelsScaleWithQueryBatch(t *testing.T) {
	spec := Get(models.POS)
	f1 := 0.0
	for _, k := range spec.Kernels(1) {
		f1 += k.FLOPs
	}
	f4 := 0.0
	for _, k := range spec.Kernels(4) {
		f4 += k.FLOPs
	}
	if math.Abs(f4/f1-4) > 0.01 {
		t.Fatalf("kernels should scale with query batch: %v vs %v", f1, f4)
	}
	if qf := spec.QueryFLOPs(); math.Abs(qf-f1) > 1e-6*f1 {
		t.Fatalf("QueryFLOPs %v != batch-1 kernel sum %v", qf, f1)
	}
}

func TestAllCoversEveryApp(t *testing.T) {
	specs := All()
	if len(specs) != len(models.Apps) {
		t.Fatalf("%d specs, want %d", len(specs), len(models.Apps))
	}
	for i, s := range specs {
		if s.App != models.Apps[i] {
			t.Fatal("specs out of Table 1 order")
		}
		if s.PreOps < 0 || s.PostOps < 0 || s.WireOutBytes <= 0 {
			t.Fatalf("%s: malformed spec %+v", s.App, s)
		}
	}
}

func TestImageGeneratorDeterministic(t *testing.T) {
	a := Image(tensor.NewRNG(1), 64, 64)
	b := Image(tensor.NewRNG(1), 64, 64)
	c := Image(tensor.NewRNG(2), 64, 64)
	same, diff := true, true
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			ra, _, _, _ := a.At(x, y).RGBA()
			rb, _, _, _ := b.At(x, y).RGBA()
			rc, _, _, _ := c.At(x, y).RGBA()
			if ra != rb {
				same = false
			}
			if ra != rc {
				diff = false
			}
		}
	}
	if !same {
		t.Fatal("same seed produced different images")
	}
	if diff {
		t.Fatal("different seeds produced identical images")
	}
}

func TestDigitsAreDistinctAcrossClasses(t *testing.T) {
	rng := tensor.NewRNG(3)
	glyphs := make([][]float32, 10)
	for d := 0; d < 10; d++ {
		glyphs[d] = Digit(rng, d)
		var ink float32
		for _, v := range glyphs[d] {
			if v < 0 || v > 1 {
				t.Fatalf("digit %d pixel out of range: %v", d, v)
			}
			ink += v
		}
		if ink < 10 {
			t.Fatalf("digit %d is nearly blank", d)
		}
	}
	// Classes must differ pairwise by a meaningful pixel distance.
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			var dist float64
			for i := range glyphs[a] {
				d := float64(glyphs[a][i] - glyphs[b][i])
				dist += d * d
			}
			if dist < 1 {
				t.Fatalf("digits %d and %d are nearly identical", a, b)
			}
		}
	}
}

func TestDigitsLabelsInRange(t *testing.T) {
	imgs, labels := Digits(tensor.NewRNG(4), 50)
	if len(imgs) != 50 || len(labels) != 50 {
		t.Fatal("wrong count")
	}
	for _, l := range labels {
		if l < 0 || l > 9 {
			t.Fatalf("label %d", l)
		}
	}
}

func TestUtteranceLengthAndAmplitude(t *testing.T) {
	sig := Utterance(tensor.NewRNG(5), 1.0)
	if len(sig) != dsp.SampleRate {
		t.Fatalf("%d samples, want %d", len(sig), dsp.SampleRate)
	}
	var peak float64
	for _, v := range sig {
		if math.Abs(v) > peak {
			peak = math.Abs(v)
		}
	}
	if peak < 0.1 || peak > 1.5 {
		t.Fatalf("peak amplitude %v implausible", peak)
	}
}

func TestASRQueryAudioYields548Frames(t *testing.T) {
	sig := ASRQueryAudio(tensor.NewRNG(6))
	frames := 1 + (len(sig)-dsp.FrameLength)/dsp.FrameShift
	if frames != ASRFrames {
		t.Fatalf("%d frames, want %d (Table 3)", frames, ASRFrames)
	}
}

func TestSentenceWordCount(t *testing.T) {
	s := Sentence(tensor.NewRNG(7), SentenceWords)
	words := 1
	for _, r := range s {
		if r == ' ' {
			words++
		}
	}
	if words != SentenceWords {
		t.Fatalf("%d words, want %d", words, SentenceWords)
	}
}
