package workload

import (
	"image"
	"image/color"
	"math"
	"strings"

	"djinn/internal/dsp"
	"djinn/internal/tensor"
)

// Synthetic input generators. The paper drives Tonic with production
// datasets (ImageNet, PubFig83+LFW photos, speech recordings, news
// text); this reproduction substitutes deterministic generators that
// produce inputs of exactly the Table 3 sizes and exercise the same
// preprocessing code paths (DESIGN.md §2).

// Image returns a deterministic synthetic RGB image: smooth gradients
// with rectangles and a disc, enough structure for resize/mean-subtract
// preprocessing to be non-trivial.
func Image(rng *tensor.RNG, w, h int) image.Image {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	phase := rng.Float64() * 2 * math.Pi
	cx := float64(w) * (0.3 + 0.4*rng.Float64())
	cy := float64(h) * (0.3 + 0.4*rng.Float64())
	radius := float64(minInt(w, h)) * (0.1 + 0.2*rng.Float64())
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r := 0.5 + 0.5*math.Sin(2*math.Pi*float64(x)/float64(w)+phase)
			g := 0.5 + 0.5*math.Cos(2*math.Pi*float64(y)/float64(h)+phase)
			b := 0.5
			dx, dy := float64(x)-cx, float64(y)-cy
			if dx*dx+dy*dy < radius*radius {
				r, g, b = 0.9, 0.2, 0.1
			}
			img.Set(x, y, color.RGBA{
				R: uint8(r * 255), G: uint8(g * 255), B: uint8(b * 255), A: 255,
			})
		}
	}
	return img
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Digit renders a crude 28×28 greyscale digit-like glyph for class d
// (0-9): strokes positioned per class, so different classes are
// visually distinct.
func Digit(rng *tensor.RNG, d int) []float32 {
	out := make([]float32, 28*28)
	set := func(x, y int, v float32) {
		if x >= 0 && x < 28 && y >= 0 && y < 28 {
			i := y*28 + x
			if v > out[i] {
				out[i] = v
			}
		}
	}
	stroke := func(x0, y0, x1, y1 int) {
		steps := 40
		for s := 0; s <= steps; s++ {
			t := float64(s) / float64(steps)
			x := int(float64(x0) + t*float64(x1-x0))
			y := int(float64(y0) + t*float64(y1-y0))
			for dx := -1; dx <= 1; dx++ {
				for dy := -1; dy <= 1; dy++ {
					set(x+dx, y+dy, 0.9)
				}
			}
		}
	}
	switch d {
	case 0:
		stroke(10, 6, 18, 6)
		stroke(18, 6, 18, 22)
		stroke(18, 22, 10, 22)
		stroke(10, 22, 10, 6)
	case 1:
		stroke(14, 5, 14, 23)
	case 2:
		stroke(9, 7, 19, 7)
		stroke(19, 7, 19, 14)
		stroke(19, 14, 9, 14)
		stroke(9, 14, 9, 22)
		stroke(9, 22, 19, 22)
	case 3:
		stroke(9, 6, 19, 6)
		stroke(19, 6, 19, 22)
		stroke(9, 22, 19, 22)
		stroke(11, 14, 19, 14)
	case 4:
		stroke(9, 5, 9, 14)
		stroke(9, 14, 19, 14)
		stroke(17, 5, 17, 23)
	case 5:
		stroke(19, 6, 9, 6)
		stroke(9, 6, 9, 14)
		stroke(9, 14, 19, 14)
		stroke(19, 14, 19, 22)
		stroke(19, 22, 9, 22)
	case 6:
		stroke(17, 5, 10, 12)
		stroke(10, 12, 10, 22)
		stroke(10, 22, 18, 22)
		stroke(18, 22, 18, 14)
		stroke(18, 14, 10, 14)
	case 7:
		stroke(9, 6, 19, 6)
		stroke(19, 6, 12, 23)
	case 8:
		stroke(10, 6, 18, 6)
		stroke(18, 6, 18, 22)
		stroke(18, 22, 10, 22)
		stroke(10, 22, 10, 6)
		stroke(10, 14, 18, 14)
	case 9:
		stroke(18, 22, 18, 6)
		stroke(18, 6, 10, 6)
		stroke(10, 6, 10, 14)
		stroke(10, 14, 18, 14)
	}
	// Pixel noise.
	for i := range out {
		out[i] += 0.05 * rng.Float32()
		if out[i] > 1 {
			out[i] = 1
		}
	}
	return out
}

// Digits returns n digit images with their labels.
func Digits(rng *tensor.RNG, n int) (imgs [][]float32, labels []int) {
	for i := 0; i < n; i++ {
		d := rng.Intn(10)
		labels = append(labels, d)
		imgs = append(imgs, Digit(rng, d))
	}
	return imgs, labels
}

// Utterance synthesises seconds of 16 kHz speech-like audio: voiced
// segments with moving formants separated by short silences.
func Utterance(rng *tensor.RNG, seconds float64) []float64 {
	n := int(seconds * dsp.SampleRate)
	out := make([]float64, n)
	t := 0
	for t < n {
		segment := dsp.SampleRate/8 + rng.Intn(dsp.SampleRate/4) // 125-375 ms
		voiced := rng.Float32() < 0.8
		f0 := 90 + 120*rng.Float64()
		f1 := 300 + 1200*rng.Float64()
		f2 := 1500 + 1500*rng.Float64()
		for i := 0; i < segment && t < n; i++ {
			if voiced {
				ti := float64(t) / dsp.SampleRate
				out[t] = 0.5*math.Sin(2*math.Pi*f0*ti) +
					0.25*math.Sin(2*math.Pi*f1*ti) +
					0.12*math.Sin(2*math.Pi*f2*ti) +
					0.02*(rng.Float64()*2-1)
			} else {
				out[t] = 0.01 * (rng.Float64()*2 - 1)
			}
			t++
		}
	}
	return out
}

// ASRQueryAudio returns an utterance sized so preprocessing yields the
// paper's 548 feature vectors (Table 3): 548 frames at a 10 ms shift
// with a 25 ms window.
func ASRQueryAudio(rng *tensor.RNG) []float64 {
	samples := dsp.FrameLength + (ASRFrames-1)*dsp.FrameShift
	return Utterance(rng, float64(samples)/dsp.SampleRate)
}

var sentenceVocab = strings.Fields(`
the a an big small quick lazy bright dark old new
fox dog cat company president city market system network service query
runs jumps builds serves processes answers improves accelerates measures scales designs
quickly slowly carefully barely remarkably
in on over under through across with without
Google Microsoft Apple Paris London Obama Einstein Michigan America
and or but`)

// Sentence generates an n-word sentence from a small vocabulary,
// mixing common words and gazetteer entities (so NER has something to
// find). The paper's NLP queries are 28-word sentences.
func Sentence(rng *tensor.RNG, n int) string {
	words := make([]string, n)
	for i := range words {
		words[i] = sentenceVocab[rng.Intn(len(sentenceVocab))]
	}
	return strings.Join(words, " ")
}
