package workload

import (
	"sync"
	"time"

	"djinn/internal/metrics"
	"djinn/internal/models"
	"djinn/internal/service"
	"djinn/internal/tensor"
)

// QueryPayload synthesises one ready-to-send DjiNN query payload for an
// application: Instances input vectors of the network's input
// dimension, the load the paper's stress tests put on the DNN service
// (preprocessing happens client-side and is not part of service load).
func QueryPayload(app models.App, rng *tensor.RNG) []float32 {
	spec := Get(app)
	dims := 1
	for _, d := range models.BuildCached(app).InShape() {
		dims *= d
	}
	out := make([]float32, spec.Instances*dims)
	rng.FillNorm(out, 0, 0.5)
	return out
}

// DriveResult summarises a load-driver run against a live service.
type DriveResult struct {
	Queries int64
	QPS     float64
	Latency metrics.Summary
	Errors  int64
}

// DriveClosedLoop saturates the backend with the given number of
// concurrent workers, each issuing queries back-to-back for the
// duration — the paper's stress-test methodology, on the real service.
func DriveClosedLoop(b service.Backend, app models.App, name string, workers int, duration time.Duration) DriveResult {
	lat := metrics.NewLatencyRecorder()
	var wg sync.WaitGroup
	var errs int64
	var errMu sync.Mutex
	stop := time.Now().Add(duration)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := tensor.NewRNG(seed)
			payload := QueryPayload(app, rng)
			for time.Now().Before(stop) {
				t0 := time.Now()
				if _, err := b.Infer(name, payload); err != nil {
					errMu.Lock()
					errs++
					errMu.Unlock()
					return
				}
				lat.Record(time.Since(t0))
			}
		}(uint64(w) + 1)
	}
	wg.Wait()
	sum := lat.Summarize()
	return DriveResult{
		Queries: int64(sum.Count),
		QPS:     float64(sum.Count) / duration.Seconds(),
		Latency: sum,
		Errors:  errs,
	}
}

// DrivePoisson issues queries with exponentially distributed
// inter-arrival times at the given rate (open-loop), bounding the
// number of outstanding requests by maxInflight connections.
func DrivePoisson(b service.Backend, app models.App, name string, rate float64, maxInflight int, duration time.Duration) DriveResult {
	if rate <= 0 || maxInflight <= 0 {
		panic("workload: DrivePoisson needs positive rate and inflight bound")
	}
	lat := metrics.NewLatencyRecorder()
	rng := tensor.NewRNG(99)
	payload := QueryPayload(app, rng)
	sem := make(chan struct{}, maxInflight)
	var wg sync.WaitGroup
	var errs int64
	var errMu sync.Mutex
	deadline := time.Now().Add(duration)
	arrival := time.Now()
	for {
		arrival = arrival.Add(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
		if arrival.After(deadline) {
			break
		}
		if d := time.Until(arrival); d > 0 {
			time.Sleep(d)
		}
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			if _, err := b.Infer(name, payload); err != nil {
				errMu.Lock()
				errs++
				errMu.Unlock()
				return
			}
			lat.Record(time.Since(t0))
		}()
	}
	wg.Wait()
	sum := lat.Summarize()
	return DriveResult{
		Queries: int64(sum.Count),
		QPS:     float64(sum.Count) / duration.Seconds(),
		Latency: sum,
		Errors:  errs,
	}
}
