package workload

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"djinn/internal/metrics"
	"djinn/internal/models"
	"djinn/internal/service"
	"djinn/internal/tensor"
	"djinn/internal/trace"
)

// QueryPayload synthesises one ready-to-send DjiNN query payload for an
// application: Instances input vectors of the network's input
// dimension, the load the paper's stress tests put on the DNN service
// (preprocessing happens client-side and is not part of service load).
func QueryPayload(app models.App, rng *tensor.RNG) []float32 {
	spec := Get(app)
	dims := 1
	for _, d := range models.BuildCached(app).InShape() {
		dims *= d
	}
	out := make([]float32, spec.Instances*dims)
	rng.FillNorm(out, 0, 0.5)
	return out
}

// DriveResult summarises a load-driver run against a live service.
type DriveResult struct {
	Queries int64 // completed successfully
	QPS     float64
	Latency metrics.Summary
	Errors  int64 // genuine failures (malformed payloads, worker faults)
	Shed    int64 // rejected by backpressure (ErrOverloaded)
	Expired int64 // missed their per-query deadline (ErrDeadlineExceeded)
	// SLOMisses counts successfully answered queries whose latency
	// exceeded DriveOptions.SLO (0 when no SLO was declared). A shed or
	// expired query is not an SLO miss — it is accounted above.
	SLOMisses int64
	// TraceIDs are the trace IDs the drive minted when sampling was on
	// (DriveOptions.TraceEvery > 0), capped at a handful — look them up
	// afterwards with the service's trace control verb or /slowlog.
	TraceIDs []string
}

// Issued is the total number of queries the drive sent, whatever their
// outcome.
func (r DriveResult) Issued() int64 {
	return r.Queries + r.Errors + r.Shed + r.Expired
}

// SLOAttainment is the fraction of served queries that met the SLO
// (1 when no SLO was declared or nothing was served).
func (r DriveResult) SLOAttainment() float64 {
	if r.Queries == 0 {
		return 1
	}
	return float64(r.Queries-r.SLOMisses) / float64(r.Queries)
}

// maxSampledTraces bounds DriveResult.TraceIDs; the drive keeps minting
// (every sampled query still leaves spans server-side) but only the
// first few IDs are reported back.
const maxSampledTraces = 16

// driveCounters classifies per-query outcomes during a run.
type driveCounters struct {
	errs      atomic.Int64
	shed      atomic.Int64
	expired   atomic.Int64
	sloMisses atomic.Int64
	slo       time.Duration // measurement target; 0 = not tracked

	mu       sync.Mutex
	traceIDs []string
}

// sampled records one minted trace ID, keeping only the first few.
func (c *driveCounters) sampled(id string) {
	c.mu.Lock()
	if len(c.traceIDs) < maxSampledTraces {
		c.traceIDs = append(c.traceIDs, id)
	}
	c.mu.Unlock()
}

// outcome classifies one issued query.
type outcome int

const (
	outcomeOK      outcome = iota
	outcomeExpired         // missed its deadline — expected under load
	outcomeShed            // backpressure rejection — expected under load
	outcomeError           // genuine failure (fault, dead backend, ...)
)

// issue sends one query, using the context-aware API when a per-query
// deadline or trace ID rides it, and classifies the outcome. Successful
// latencies are recorded into every supplied recorder (the mixed driver
// tees each query into a per-app and an aggregate stream).
func (c *driveCounters) issue(b service.Backend, name string, payload []float32, deadline time.Duration, traceID string, lats ...*metrics.LatencyRecorder) outcome {
	t0 := time.Now()
	var err error
	if cb, ok := b.(service.ContextBackend); ok && (deadline > 0 || traceID != "") {
		ctx := context.Background()
		if traceID != "" {
			ctx = trace.WithID(ctx, traceID)
		}
		if deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, deadline)
			defer cancel()
		}
		_, err = cb.InferCtx(ctx, name, payload)
	} else {
		_, err = b.Infer(name, payload)
	}
	switch {
	case err == nil:
		elapsed := time.Since(t0)
		for _, lat := range lats {
			lat.Record(elapsed)
		}
		if c.slo > 0 && elapsed > c.slo {
			c.sloMisses.Add(1)
		}
		return outcomeOK
	case errors.Is(err, service.ErrDeadlineExceeded):
		c.expired.Add(1)
		return outcomeExpired
	case errors.Is(err, service.ErrOverloaded):
		c.shed.Add(1)
		return outcomeShed
	default:
		c.errs.Add(1)
		return outcomeError
	}
}

func (c *driveCounters) result(lat *metrics.LatencyRecorder, duration time.Duration) DriveResult {
	sum := lat.Summarize()
	c.mu.Lock()
	ids := append([]string(nil), c.traceIDs...)
	c.mu.Unlock()
	return DriveResult{
		Queries:   int64(sum.Count),
		QPS:       float64(sum.Count) / duration.Seconds(),
		Latency:   sum,
		Errors:    c.errs.Load(),
		Shed:      c.shed.Load(),
		Expired:   c.expired.Load(),
		SLOMisses: c.sloMisses.Load(),
		TraceIDs:  ids,
	}
}

// DriveClosedLoop saturates the backend with the given number of
// concurrent workers, each issuing queries back-to-back for the
// duration — the paper's stress-test methodology, on the real service.
func DriveClosedLoop(b service.Backend, app models.App, name string, workers int, duration time.Duration) DriveResult {
	return DriveClosedLoopDeadline(b, app, name, workers, duration, 0)
}

// DriveClosedLoopDeadline is DriveClosedLoop with a per-query deadline
// (0 = none): each query carries a context that expires after deadline,
// and misses are counted in DriveResult.Expired rather than aborting
// the worker.
func DriveClosedLoopDeadline(b service.Backend, app models.App, name string, workers int, duration, deadline time.Duration) DriveResult {
	return DriveClosedLoopPayload(b, name, func(rng *tensor.RNG) []float32 {
		return QueryPayload(app, rng)
	}, workers, duration, deadline)
}

// DriveClosedLoopPayload is the closed-loop core with a caller-supplied
// payload generator (called once per worker with that worker's RNG),
// letting experiments drive apps outside the Tonic Suite — e.g. a
// synthetic model sized so the service's batch window, not the forward
// pass, bounds each replica.
func DriveClosedLoopPayload(b service.Backend, name string, payload func(*tensor.RNG) []float32, workers int, duration, deadline time.Duration) DriveResult {
	return DriveClosedLoopOptions(b, name, payload, DriveOptions{
		Workers: workers, Duration: duration, Deadline: deadline,
	})
}

// DriveOptions bundles the optional knobs of a closed-loop drive.
type DriveOptions struct {
	Workers  int           // concurrent closed-loop clients
	Duration time.Duration // how long to drive
	Deadline time.Duration // per-query deadline (0 = none)
	// SLO is a measurement-side target p99: served queries slower than
	// this count in DriveResult.SLOMisses (0 = not tracked). Unlike
	// Deadline it does not abort queries — it grades them.
	SLO time.Duration
	// TraceEvery mints a fresh trace ID onto every Nth query per worker
	// (0 = all untraced). Each sampled query's lifecycle lands in the
	// backend's trace store; the first few IDs come back in
	// DriveResult.TraceIDs so they can be looked up afterwards.
	TraceEvery int
}

// DriveClosedLoopOptions is the full closed-loop driver: every other
// closed-loop entry point funnels here.
func DriveClosedLoopOptions(b service.Backend, name string, payload func(*tensor.RNG) []float32, opts DriveOptions) DriveResult {
	lat := metrics.NewLatencyRecorder()
	counters := driveCounters{slo: opts.SLO}
	var wg sync.WaitGroup
	stop := time.Now().Add(opts.Duration)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := tensor.NewRNG(seed)
			query := payload(rng)
			// Back off exponentially on consecutive hard errors so a
			// dead backend (connection refused fails in microseconds)
			// doesn't turn the closed loop into a busy spin.
			backoff := time.Duration(0)
			for n := 0; time.Now().Before(stop); n++ {
				var id string
				if opts.TraceEvery > 0 && n%opts.TraceEvery == 0 {
					id = trace.NewID()
					counters.sampled(id)
				}
				if counters.issue(b, name, query, opts.Deadline, id, lat) == outcomeError {
					if backoff == 0 {
						backoff = time.Millisecond
					} else if backoff < 100*time.Millisecond {
						backoff *= 2
					}
					time.Sleep(backoff)
				} else {
					backoff = 0
				}
			}
		}(uint64(w) + 1)
	}
	wg.Wait()
	return counters.result(lat, opts.Duration)
}

// DrivePoisson issues queries with exponentially distributed
// inter-arrival times at the given rate (open-loop), bounding the
// number of outstanding requests by maxInflight connections.
func DrivePoisson(b service.Backend, app models.App, name string, rate float64, maxInflight int, duration time.Duration) DriveResult {
	return DrivePoissonDeadline(b, app, name, rate, maxInflight, duration, 0)
}

// DrivePoissonDeadline is DrivePoisson with a per-query deadline
// (0 = none).
func DrivePoissonDeadline(b service.Backend, app models.App, name string, rate float64, maxInflight int, duration, deadline time.Duration) DriveResult {
	return DrivePoissonOptions(b, name, func(rng *tensor.RNG) []float32 {
		return QueryPayload(app, rng)
	}, rate, maxInflight, DriveOptions{Duration: duration, Deadline: deadline})
}

// DrivePoissonOptions is the full open-loop driver: exponentially
// distributed inter-arrival times at the given rate, outstanding
// requests bounded by maxInflight, payload from a caller-supplied
// generator (called once, with the driver's RNG). Every other Poisson
// entry point funnels here. Workers in opts is ignored — arrival rate,
// not client count, sets the offered load.
func DrivePoissonOptions(b service.Backend, name string, payload func(*tensor.RNG) []float32, rate float64, maxInflight int, opts DriveOptions) DriveResult {
	if rate <= 0 || maxInflight <= 0 {
		panic("workload: DrivePoisson needs positive rate and inflight bound")
	}
	lat := metrics.NewLatencyRecorder()
	counters := driveCounters{slo: opts.SLO}
	rng := tensor.NewRNG(99)
	query := payload(rng)
	sem := make(chan struct{}, maxInflight)
	var wg sync.WaitGroup
	stop := time.Now().Add(opts.Duration)
	arrival := time.Now()
	for n := 0; ; n++ {
		arrival = arrival.Add(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
		if arrival.After(stop) {
			break
		}
		if d := time.Until(arrival); d > 0 {
			time.Sleep(d)
		}
		var id string
		if opts.TraceEvery > 0 && n%opts.TraceEvery == 0 {
			id = trace.NewID()
			counters.sampled(id)
		}
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			counters.issue(b, name, query, opts.Deadline, id, lat)
		}()
	}
	wg.Wait()
	return counters.result(lat, opts.Duration)
}
