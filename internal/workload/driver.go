package workload

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"djinn/internal/metrics"
	"djinn/internal/models"
	"djinn/internal/service"
	"djinn/internal/tensor"
)

// QueryPayload synthesises one ready-to-send DjiNN query payload for an
// application: Instances input vectors of the network's input
// dimension, the load the paper's stress tests put on the DNN service
// (preprocessing happens client-side and is not part of service load).
func QueryPayload(app models.App, rng *tensor.RNG) []float32 {
	spec := Get(app)
	dims := 1
	for _, d := range models.BuildCached(app).InShape() {
		dims *= d
	}
	out := make([]float32, spec.Instances*dims)
	rng.FillNorm(out, 0, 0.5)
	return out
}

// DriveResult summarises a load-driver run against a live service.
type DriveResult struct {
	Queries int64 // completed successfully
	QPS     float64
	Latency metrics.Summary
	Errors  int64 // genuine failures (malformed payloads, worker faults)
	Shed    int64 // rejected by backpressure (ErrOverloaded)
	Expired int64 // missed their per-query deadline (ErrDeadlineExceeded)
}

// driveCounters classifies per-query outcomes during a run.
type driveCounters struct {
	errs    atomic.Int64
	shed    atomic.Int64
	expired atomic.Int64
}

// outcome classifies one issued query.
type outcome int

const (
	outcomeOK      outcome = iota
	outcomeExpired         // missed its deadline — expected under load
	outcomeShed            // backpressure rejection — expected under load
	outcomeError           // genuine failure (fault, dead backend, ...)
)

// issue sends one query, using the context-aware API when a per-query
// deadline is set, and classifies the outcome.
func (c *driveCounters) issue(b service.Backend, name string, payload []float32, deadline time.Duration, lat *metrics.LatencyRecorder) outcome {
	t0 := time.Now()
	var err error
	if deadline > 0 {
		if cb, ok := b.(service.ContextBackend); ok {
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			_, err = cb.InferCtx(ctx, name, payload)
			cancel()
		} else {
			_, err = b.Infer(name, payload)
		}
	} else {
		_, err = b.Infer(name, payload)
	}
	switch {
	case err == nil:
		lat.Record(time.Since(t0))
		return outcomeOK
	case errors.Is(err, service.ErrDeadlineExceeded):
		c.expired.Add(1)
		return outcomeExpired
	case errors.Is(err, service.ErrOverloaded):
		c.shed.Add(1)
		return outcomeShed
	default:
		c.errs.Add(1)
		return outcomeError
	}
}

func (c *driveCounters) result(lat *metrics.LatencyRecorder, duration time.Duration) DriveResult {
	sum := lat.Summarize()
	return DriveResult{
		Queries: int64(sum.Count),
		QPS:     float64(sum.Count) / duration.Seconds(),
		Latency: sum,
		Errors:  c.errs.Load(),
		Shed:    c.shed.Load(),
		Expired: c.expired.Load(),
	}
}

// DriveClosedLoop saturates the backend with the given number of
// concurrent workers, each issuing queries back-to-back for the
// duration — the paper's stress-test methodology, on the real service.
func DriveClosedLoop(b service.Backend, app models.App, name string, workers int, duration time.Duration) DriveResult {
	return DriveClosedLoopDeadline(b, app, name, workers, duration, 0)
}

// DriveClosedLoopDeadline is DriveClosedLoop with a per-query deadline
// (0 = none): each query carries a context that expires after deadline,
// and misses are counted in DriveResult.Expired rather than aborting
// the worker.
func DriveClosedLoopDeadline(b service.Backend, app models.App, name string, workers int, duration, deadline time.Duration) DriveResult {
	return DriveClosedLoopPayload(b, name, func(rng *tensor.RNG) []float32 {
		return QueryPayload(app, rng)
	}, workers, duration, deadline)
}

// DriveClosedLoopPayload is the closed-loop core with a caller-supplied
// payload generator (called once per worker with that worker's RNG),
// letting experiments drive apps outside the Tonic Suite — e.g. a
// synthetic model sized so the service's batch window, not the forward
// pass, bounds each replica.
func DriveClosedLoopPayload(b service.Backend, name string, payload func(*tensor.RNG) []float32, workers int, duration, deadline time.Duration) DriveResult {
	lat := metrics.NewLatencyRecorder()
	var counters driveCounters
	var wg sync.WaitGroup
	stop := time.Now().Add(duration)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := tensor.NewRNG(seed)
			query := payload(rng)
			// Back off exponentially on consecutive hard errors so a
			// dead backend (connection refused fails in microseconds)
			// doesn't turn the closed loop into a busy spin.
			backoff := time.Duration(0)
			for time.Now().Before(stop) {
				if counters.issue(b, name, query, deadline, lat) == outcomeError {
					if backoff == 0 {
						backoff = time.Millisecond
					} else if backoff < 100*time.Millisecond {
						backoff *= 2
					}
					time.Sleep(backoff)
				} else {
					backoff = 0
				}
			}
		}(uint64(w) + 1)
	}
	wg.Wait()
	return counters.result(lat, duration)
}

// DrivePoisson issues queries with exponentially distributed
// inter-arrival times at the given rate (open-loop), bounding the
// number of outstanding requests by maxInflight connections.
func DrivePoisson(b service.Backend, app models.App, name string, rate float64, maxInflight int, duration time.Duration) DriveResult {
	return DrivePoissonDeadline(b, app, name, rate, maxInflight, duration, 0)
}

// DrivePoissonDeadline is DrivePoisson with a per-query deadline
// (0 = none).
func DrivePoissonDeadline(b service.Backend, app models.App, name string, rate float64, maxInflight int, duration, deadline time.Duration) DriveResult {
	if rate <= 0 || maxInflight <= 0 {
		panic("workload: DrivePoisson needs positive rate and inflight bound")
	}
	lat := metrics.NewLatencyRecorder()
	var counters driveCounters
	rng := tensor.NewRNG(99)
	payload := QueryPayload(app, rng)
	sem := make(chan struct{}, maxInflight)
	var wg sync.WaitGroup
	stop := time.Now().Add(duration)
	arrival := time.Now()
	for {
		arrival = arrival.Add(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
		if arrival.After(stop) {
			break
		}
		if d := time.Until(arrival); d > 0 {
			time.Sleep(d)
		}
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			counters.issue(b, name, payload, deadline, lat)
		}()
	}
	wg.Wait()
	return counters.result(lat, duration)
}
