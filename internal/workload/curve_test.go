package workload

import (
	"math"
	"testing"
	"time"

	"djinn/internal/models"
	"djinn/internal/service"
	"djinn/internal/tensor"
	"djinn/internal/testutil"
)

func TestDiurnalShape(t *testing.T) {
	c := Diurnal(0.2, 1.0, time.Minute)
	if got := c(0); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("trough at t=0: %v, want 0.2", got)
	}
	if got := c(30 * time.Second); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("peak at period/2: %v, want 1.0", got)
	}
	if got := c(time.Minute); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("trough at full period: %v, want 0.2", got)
	}
	for d := time.Duration(0); d <= time.Minute; d += time.Second {
		if v := c(d); v < 0.2-1e-9 || v > 1.0+1e-9 {
			t.Fatalf("curve escaped [trough, peak] at %v: %v", d, v)
		}
	}
	// Monotone climb through the morning half.
	if c(10*time.Second) >= c(20*time.Second) {
		t.Fatal("morning half not climbing")
	}
}

func TestSpikeCurve(t *testing.T) {
	c := Spike(1, 5, 100*time.Millisecond, 50*time.Millisecond)
	if got := c(0); got != 1 {
		t.Fatalf("before spike: %v", got)
	}
	if got := c(120 * time.Millisecond); got != 5 {
		t.Fatalf("inside spike: %v", got)
	}
	if got := c(150 * time.Millisecond); got != 1 {
		t.Fatalf("after spike: %v", got)
	}
}

func TestMixDeterministicSplit(t *testing.T) {
	mix := Mix{
		{Name: "imc", Weight: 3, Payload: func(*tensor.RNG) []float32 { return nil }},
		{Name: "asr", Weight: 1, Payload: func(*tensor.RNG) []float32 { return nil }},
	}
	total, err := mix.validate()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for n := 0; n < 100; n++ {
		counts[mix[mix.pick(n, total)].Name]++
	}
	if counts["imc"] != 75 || counts["asr"] != 25 {
		t.Fatalf("100 arrivals split %v, want exact 75/25", counts)
	}
}

func TestMixValidate(t *testing.T) {
	bad := []Mix{
		{},
		{{Name: "", Weight: 1, Payload: func(*tensor.RNG) []float32 { return nil }}},
		{{Name: "a", Weight: 0, Payload: func(*tensor.RNG) []float32 { return nil }}},
		{{Name: "a", Weight: 1}},
		{
			{Name: "a", Weight: 1, Payload: func(*tensor.RNG) []float32 { return nil }},
			{Name: "a", Weight: 1, Payload: func(*tensor.RNG) []float32 { return nil }},
		},
	}
	for i, m := range bad {
		if _, err := m.validate(); err == nil {
			t.Errorf("mix %d validated", i)
		}
	}
}

func TestTonicMixDeterministicOrder(t *testing.T) {
	a := TonicMix(map[models.App]int{models.DIG: 2, models.IMC: 1})
	b := TonicMix(map[models.App]int{models.IMC: 1, models.DIG: 2})
	if len(a) != 2 || len(b) != 2 || a[0].Name != b[0].Name || a[1].Name != b[1].Name {
		t.Fatalf("map-order-dependent mix: %v vs %v", a, b)
	}
}

// TestDriveMixed drives two apps through one server with a diurnal
// curve and checks the aggregate is an exact sum of the per-app slices.
func TestDriveMixed(t *testing.T) {
	testutil.NoLeaks(t)
	s := service.NewServer()
	s.SetLogger(func(string, ...any) {})
	spec := Get(models.DIG)
	cfg := service.AppConfig{
		BatchInstances: spec.BatchSize * spec.Instances,
		BatchWindow:    time.Millisecond,
	}
	for _, name := range []string{"dig-a", "dig-b"} {
		if err := s.Register(name, models.BuildCached(models.DIG), cfg); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(s.Close)

	payload := func(rng *tensor.RNG) []float32 { return QueryPayload(models.DIG, rng) }
	res := DriveMixed(s, Mix{
		{Name: "dig-a", Weight: 3, Payload: payload},
		{Name: "dig-b", Weight: 1, Payload: payload},
	}, 200, Diurnal(0.5, 1.5, 200*time.Millisecond), 8, DriveOptions{
		Duration: 400 * time.Millisecond,
		SLO:      time.Second,
	})

	if res.Total.Errors != 0 {
		t.Fatalf("%d errors: %+v", res.Total.Errors, res.Total)
	}
	if res.Total.Queries < 8 {
		t.Fatalf("only %d queries completed", res.Total.Queries)
	}
	a, b := res.PerApp["dig-a"], res.PerApp["dig-b"]
	if a.Issued() == 0 || b.Issued() == 0 {
		t.Fatalf("an app got no traffic: a=%+v b=%+v", a, b)
	}
	if a.Issued() < b.Issued() {
		t.Fatalf("weight-3 app issued %d < weight-1 app's %d", a.Issued(), b.Issued())
	}
	if got, want := res.Total.Issued(), a.Issued()+b.Issued(); got != want {
		t.Fatalf("aggregate issued %d != per-app sum %d", got, want)
	}
	if got, want := res.Total.Queries, a.Queries+b.Queries; got != want {
		t.Fatalf("aggregate queries %d != per-app sum %d", got, want)
	}
	if got, want := res.Total.SLOMisses, a.SLOMisses+b.SLOMisses; got != want {
		t.Fatalf("aggregate SLO misses %d != per-app sum %d", got, want)
	}
}
