package workload

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"djinn/internal/metrics"
	"djinn/internal/models"
	"djinn/internal/service"
	"djinn/internal/tensor"
	"djinn/internal/trace"
)

// RateCurve modulates offered load over a drive: it maps time since the
// start of the run to a multiplier on the base arrival rate. The paper's
// warehouse-scale sizing argument rests on exactly this shape — DNN
// service demand is not flat, it swings with the day, and a fleet
// provisioned for the peak idles at the trough. Curves let experiments
// reproduce that swing against the in-process fleet.
type RateCurve func(elapsed time.Duration) float64

// FlatCurve is the identity curve: constant offered load.
func FlatCurve() RateCurve {
	return func(time.Duration) float64 { return 1 }
}

// Diurnal compresses a day/night demand cycle into period: the
// multiplier starts at trough (midnight), climbs a cosine to peak at
// period/2 (midday), and falls back — so a drive of exactly one period
// sees one full cycle. trough and peak are multipliers on the base
// rate, e.g. Diurnal(0.2, 1.0, time.Minute) swings between 20% and
// 100% of it.
func Diurnal(trough, peak float64, period time.Duration) RateCurve {
	if trough < 0 || peak < trough || period <= 0 {
		panic("workload: Diurnal needs 0 <= trough <= peak and a positive period")
	}
	mid := (peak + trough) / 2
	amp := (peak - trough) / 2
	return func(elapsed time.Duration) float64 {
		phase := 2 * math.Pi * float64(elapsed) / float64(period)
		return mid - amp*math.Cos(phase)
	}
}

// Spike is a flat curve with a rectangular burst: base everywhere,
// burst during [at, at+width). Experiments use it to slam one app of a
// mix and watch the autoscaler respond.
func Spike(base, burst float64, at, width time.Duration) RateCurve {
	return func(elapsed time.Duration) float64 {
		if elapsed >= at && elapsed < at+width {
			return burst
		}
		return base
	}
}

// minRateFloor keeps the arrival process well-defined when a curve
// dips to (or through) zero: the instantaneous rate never falls below
// this fraction of the base rate.
const minRateFloor = 1e-3

// MixEntry is one app's share of a traffic mix.
type MixEntry struct {
	Name    string // registered service name to query
	Weight  int    // relative share of arrivals (> 0)
	Payload func(*tensor.RNG) []float32
}

// Mix is a weighted per-app traffic mix: arrivals are dealt to entries
// in proportion to their weights by a deterministic weighted counter,
// so a drive of N queries splits exactly N·w/Σw per app (±1), not just
// in expectation.
type Mix []MixEntry

// TonicMix builds a mix over Tonic Suite apps with their standard
// payloads, each registered under its app name.
func TonicMix(weights map[models.App]int) Mix {
	apps := make([]models.App, 0, len(weights))
	for app := range weights {
		apps = append(apps, app)
	}
	sort.Slice(apps, func(i, j int) bool { return apps[i] < apps[j] })
	mix := make(Mix, 0, len(apps))
	for _, app := range apps {
		app := app
		mix = append(mix, MixEntry{
			Name:   app.String(),
			Weight: weights[app],
			Payload: func(rng *tensor.RNG) []float32 {
				return QueryPayload(app, rng)
			},
		})
	}
	return mix
}

// validate checks the mix is usable and returns the total weight.
func (m Mix) validate() (int, error) {
	if len(m) == 0 {
		return 0, fmt.Errorf("workload: empty mix")
	}
	total := 0
	seen := map[string]bool{}
	for _, e := range m {
		if e.Name == "" || e.Weight <= 0 || e.Payload == nil {
			return 0, fmt.Errorf("workload: mix entry %q needs a name, positive weight, and payload", e.Name)
		}
		if seen[e.Name] {
			return 0, fmt.Errorf("workload: duplicate mix entry %q", e.Name)
		}
		seen[e.Name] = true
		total += e.Weight
	}
	return total, nil
}

// pick deals arrival n to a mix entry: the counter walks cumulative
// weight buckets mod the total, so every window of Σw consecutive
// arrivals contains exactly w queries for each entry.
func (m Mix) pick(n, total int) int {
	slot := n % total
	for i, e := range m {
		if slot < e.Weight {
			return i
		}
		slot -= e.Weight
	}
	return len(m) - 1 // unreachable with a validated mix
}

// MixedResult is a DriveMixed run: the aggregate stream plus each
// app's own slice of it.
type MixedResult struct {
	Total  DriveResult
	PerApp map[string]DriveResult
}

// DriveMixed is the open-loop driver for multi-app traffic: Poisson
// arrivals at rate·curve(elapsed) queries/sec, each arrival dealt to a
// mix entry by deterministic weighted counter, outstanding requests
// bounded by maxInflight. opts.Workers is ignored (arrival rate sets
// the load); opts.TraceEvery samples across the aggregate stream.
func DriveMixed(b service.Backend, mix Mix, rate float64, curve RateCurve, maxInflight int, opts DriveOptions) MixedResult {
	totalWeight, err := mix.validate()
	if err != nil {
		panic(err.Error())
	}
	if rate <= 0 || maxInflight <= 0 {
		panic("workload: DriveMixed needs positive rate and inflight bound")
	}
	if curve == nil {
		curve = FlatCurve()
	}

	aggLat := metrics.NewLatencyRecorder()
	agg := driveCounters{slo: opts.SLO}
	perLat := make([]*metrics.LatencyRecorder, len(mix))
	perCtr := make([]*driveCounters, len(mix))
	payloads := make([][]float32, len(mix))
	rng := tensor.NewRNG(99)
	for i, e := range mix {
		perLat[i] = metrics.NewLatencyRecorder()
		perCtr[i] = &driveCounters{slo: opts.SLO}
		payloads[i] = e.Payload(rng)
	}

	sem := make(chan struct{}, maxInflight)
	var wg sync.WaitGroup
	start := time.Now()
	stop := start.Add(opts.Duration)
	arrival := start
	for n := 0; ; n++ {
		mult := curve(arrival.Sub(start))
		if mult < minRateFloor {
			mult = minRateFloor
		}
		arrival = arrival.Add(time.Duration(rng.ExpFloat64() / (rate * mult) * float64(time.Second)))
		if arrival.After(stop) {
			break
		}
		if d := time.Until(arrival); d > 0 {
			time.Sleep(d)
		}
		i := mix.pick(n, totalWeight)
		var id string
		if opts.TraceEvery > 0 && n%opts.TraceEvery == 0 {
			id = trace.NewID()
			agg.sampled(id)
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			defer func() { <-sem }()
			// Classify once into the per-app counters, then mirror the
			// outcome into the aggregate so Total is an exact sum.
			switch perCtr[i].issue(b, mix[i].Name, payloads[i], opts.Deadline, id, perLat[i], aggLat) {
			case outcomeShed:
				agg.shed.Add(1)
			case outcomeExpired:
				agg.expired.Add(1)
			case outcomeError:
				agg.errs.Add(1)
			case outcomeOK:
				// aggLat already has the sample; SLO misses mirror below.
			}
		}(i, id)
	}
	wg.Wait()

	res := MixedResult{PerApp: make(map[string]DriveResult, len(mix))}
	var misses int64
	for i, e := range mix {
		r := perCtr[i].result(perLat[i], opts.Duration)
		misses += r.SLOMisses
		res.PerApp[e.Name] = r
	}
	agg.sloMisses.Store(misses)
	res.Total = agg.result(aggLat, opts.Duration)
	return res
}
