package workload

import (
	"testing"
	"time"

	"djinn/internal/models"
	"djinn/internal/service"
	"djinn/internal/tensor"
	"djinn/internal/testutil"
)

func digServer(t *testing.T) *service.Server {
	t.Helper()
	// Drivers spawn a goroutine per worker/in-flight query; this fails
	// the test if any survive the run and the server's drain.
	testutil.NoLeaks(t)
	s := service.NewServer()
	s.SetLogger(func(string, ...any) {})
	spec := Get(models.DIG)
	if err := s.Register("dig", models.BuildCached(models.DIG), service.AppConfig{
		BatchInstances: spec.BatchSize * spec.Instances,
		BatchWindow:    time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestQueryPayloadSizes(t *testing.T) {
	rng := tensor.NewRNG(1)
	for _, app := range models.Apps {
		spec := Get(app)
		dims := 1
		for _, d := range models.BuildCached(app).InShape() {
			dims *= d
		}
		p := QueryPayload(app, rng)
		if len(p) != spec.Instances*dims {
			t.Errorf("%s payload %d floats, want %d", app, len(p), spec.Instances*dims)
		}
	}
}

func TestDriveClosedLoop(t *testing.T) {
	s := digServer(t)
	res := DriveClosedLoop(s, models.DIG, "dig", 4, 300*time.Millisecond)
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.Queries < 4 {
		t.Fatalf("only %d queries completed", res.Queries)
	}
	if res.QPS <= 0 || res.Latency.Mean <= 0 {
		t.Fatalf("bad result %+v", res)
	}
}

func TestDriveClosedLoopDeadline(t *testing.T) {
	s := digServer(t)
	// A nanosecond budget expires before dispatch: every query is
	// rejected pre-forward and lands in Expired, not Errors.
	res := DriveClosedLoopDeadline(s, models.DIG, "dig", 2, 50*time.Millisecond, time.Nanosecond)
	if res.Expired == 0 {
		t.Fatal("no deadline misses recorded")
	}
	if res.Errors != 0 {
		t.Fatalf("deadline misses misclassified as %d errors", res.Errors)
	}
	if res.Queries != 0 {
		t.Fatalf("%d queries completed under an impossible deadline", res.Queries)
	}
	// A generous budget completes normally. The budget must absorb a
	// full DIG batch forward under the race detector's ~20× slowdown.
	res = DriveClosedLoopDeadline(s, models.DIG, "dig", 2, 50*time.Millisecond, 2*time.Minute)
	if res.Queries == 0 || res.Errors != 0 {
		t.Fatalf("generous deadline run failed: %+v", res)
	}
}

func TestDrivePoisson(t *testing.T) {
	s := digServer(t)
	res := DrivePoisson(s, models.DIG, "dig", 50, 8, 300*time.Millisecond)
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.Queries < 3 {
		t.Fatalf("only %d queries completed", res.Queries)
	}
	if res.Latency.P95 < res.Latency.P50 {
		t.Fatal("percentiles inverted")
	}
}

func TestDriveClosedLoopTraceSampling(t *testing.T) {
	s := digServer(t)
	res := DriveClosedLoopOptions(s, "dig", func(rng *tensor.RNG) []float32 {
		return QueryPayload(models.DIG, rng)
	}, DriveOptions{Workers: 2, Duration: 300 * time.Millisecond, TraceEvery: 10})
	if res.Errors != 0 || res.Queries < 2 {
		t.Fatalf("bad drive: %+v", res)
	}
	if len(res.TraceIDs) == 0 {
		t.Fatal("TraceEvery set but no IDs sampled")
	}
	if len(res.TraceIDs) > maxSampledTraces {
		t.Fatalf("%d sampled IDs exceed the cap", len(res.TraceIDs))
	}
	// Each sampled query must have left its lifecycle in the server's
	// store under the minted ID.
	tr, ok := s.TraceStore().Get(res.TraceIDs[0])
	if !ok {
		t.Fatalf("no server trace for sampled ID %s", res.TraceIDs[0])
	}
	var sawForward bool
	for _, sp := range tr.Spans {
		sawForward = sawForward || sp.Name == "forward"
	}
	if !sawForward {
		t.Fatalf("sampled trace has no forward span: %+v", tr.Spans)
	}
}

func TestDriveUntracedLeavesStoreEmpty(t *testing.T) {
	s := digServer(t)
	res := DriveClosedLoop(s, models.DIG, "dig", 2, 200*time.Millisecond)
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if len(res.TraceIDs) != 0 {
		t.Fatalf("untraced drive reported IDs: %v", res.TraceIDs)
	}
	if n := s.TraceStore().Len(); n != 0 {
		t.Fatalf("untraced drive left %d traces", n)
	}
}
