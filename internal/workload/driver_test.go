package workload

import (
	"testing"
	"time"

	"djinn/internal/models"
	"djinn/internal/service"
	"djinn/internal/tensor"
)

func digServer(t *testing.T) *service.Server {
	t.Helper()
	s := service.NewServer()
	s.SetLogger(func(string, ...any) {})
	spec := Get(models.DIG)
	if err := s.Register("dig", models.BuildCached(models.DIG), service.AppConfig{
		BatchInstances: spec.BatchSize * spec.Instances,
		BatchWindow:    time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestQueryPayloadSizes(t *testing.T) {
	rng := tensor.NewRNG(1)
	for _, app := range models.Apps {
		spec := Get(app)
		dims := 1
		for _, d := range models.BuildCached(app).InShape() {
			dims *= d
		}
		p := QueryPayload(app, rng)
		if len(p) != spec.Instances*dims {
			t.Errorf("%s payload %d floats, want %d", app, len(p), spec.Instances*dims)
		}
	}
}

func TestDriveClosedLoop(t *testing.T) {
	s := digServer(t)
	res := DriveClosedLoop(s, models.DIG, "dig", 4, 300*time.Millisecond)
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.Queries < 4 {
		t.Fatalf("only %d queries completed", res.Queries)
	}
	if res.QPS <= 0 || res.Latency.Mean <= 0 {
		t.Fatalf("bad result %+v", res)
	}
}

func TestDrivePoisson(t *testing.T) {
	s := digServer(t)
	res := DrivePoisson(s, models.DIG, "dig", 50, 8, 300*time.Millisecond)
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.Queries < 3 {
		t.Fatalf("only %d queries completed", res.Queries)
	}
	if res.Latency.P95 < res.Latency.P50 {
		t.Fatal("percentiles inverted")
	}
}
