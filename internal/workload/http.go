package workload

import (
	"bytes"
	"io"
	"net/http"
	"sync"
	"time"

	"djinn/internal/metrics"
	"djinn/internal/tensor"
)

// HTTPOptions shapes DriveHTTP, the open-loop driver for the gateway
// tier. The gateway speaks JSON over HTTP rather than the binary
// DJRT socket, so the driver classifies outcomes by status code with
// the same semantics the socket drivers use for wire statuses.
type HTTPOptions struct {
	// URL is the full endpoint, e.g. http://127.0.0.1:7423/v1/infer.
	URL string
	// Body synthesises one request body; called once per distinct
	// body when Bodies > 1, else once for the whole run.
	Body func(rng *tensor.RNG) []byte
	// Bodies is how many distinct bodies to rotate through (models a
	// population of repeating queries for cache studies); 0 means 1.
	Bodies int
	// Rate is the offered load in requests/second (Poisson arrivals).
	Rate float64
	// MaxInflight bounds outstanding requests.
	MaxInflight int
	// Duration is the drive length.
	Duration time.Duration
	// Headers are added to every request (e.g. X-API-Key).
	Headers map[string]string
	// Seed varies the body population between runs; 0 means a fixed
	// default.
	Seed uint64
}

// DriveHTTP offers Poisson load to an HTTP endpoint and classifies
// outcomes: 200 → served, 429/503 → shed (admission or backpressure),
// 504 → expired, anything else → error. The response body is drained
// and discarded; latency covers the full request/response exchange.
func DriveHTTP(opts HTTPOptions) DriveResult {
	if opts.Rate <= 0 || opts.MaxInflight <= 0 {
		panic("workload: DriveHTTP needs positive rate and inflight bound")
	}
	if opts.Bodies <= 0 {
		opts.Bodies = 1
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 7
	}
	rng := tensor.NewRNG(seed)
	bodies := make([][]byte, opts.Bodies)
	for i := range bodies {
		bodies[i] = opts.Body(rng)
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        opts.MaxInflight,
		MaxIdleConnsPerHost: opts.MaxInflight,
	}}
	defer client.CloseIdleConnections()

	lat := metrics.NewLatencyRecorder()
	counters := driveCounters{}
	sem := make(chan struct{}, opts.MaxInflight)
	var wg sync.WaitGroup
	start := time.Now()
	stop := start.Add(opts.Duration)
	arrival := start
	for n := 0; ; n++ {
		arrival = arrival.Add(time.Duration(rng.ExpFloat64() / opts.Rate * float64(time.Second)))
		if arrival.After(stop) {
			break
		}
		if d := time.Until(arrival); d > 0 {
			time.Sleep(d)
		}
		body := bodies[n%len(bodies)]
		sem <- struct{}{}
		// When the endpoint can't keep up, arrivals queue behind the
		// inflight bound and fall behind schedule; issuing the whole
		// backlog would stretch the run far past Duration while QPS
		// still divided by the nominal window. Stop offering at the
		// wall-clock deadline instead — the drive then measures what
		// the endpoint sustained over Duration, not the offered rate.
		if time.Now().After(stop) {
			<-sem
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			switch issueHTTP(client, opts.URL, body, opts.Headers) {
			case outcomeOK:
				lat.Record(time.Since(t0))
			case outcomeShed:
				counters.shed.Add(1)
			case outcomeExpired:
				counters.expired.Add(1)
			default:
				counters.errs.Add(1)
			}
		}()
	}
	wg.Wait()
	return counters.result(lat, time.Since(start))
}

// issueHTTP sends one JSON POST and classifies the status code.
func issueHTTP(client *http.Client, url string, body []byte, headers map[string]string) outcome {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return outcomeError
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		return outcomeError
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		return outcomeOK
	case resp.StatusCode == http.StatusTooManyRequests,
		resp.StatusCode == http.StatusServiceUnavailable:
		return outcomeShed
	case resp.StatusCode == http.StatusGatewayTimeout:
		return outcomeExpired
	}
	return outcomeError
}
