// Package workload defines the per-application service workload of
// Table 3 — what one query carries on the wire, how many DNN input
// instances it contains, the batch size Section 5.1 selects — plus the
// pre/post-processing cost model behind Figure 4 and synthetic input
// generators standing in for the paper's production inputs.
package workload

import (
	"djinn/internal/models"
	"djinn/internal/nn"
)

// Spec is the Table 3 row for one application plus the non-DNN
// processing costs used by Figure 4 and the TCO study.
type Spec struct {
	App models.App
	// InputDesc and OutputDesc are Table 3's human-readable columns.
	InputDesc  string
	OutputDesc string
	// Instances is how many DNN input samples one service query
	// carries: 1 image for IMC/FACE, 100 images for DIG, 548 feature
	// vectors for ASR, 28 words for the NLP tasks.
	Instances int
	// WireInBytes is the query payload sent to the DjiNN service
	// (Table 3's "Input data size"); WireOutBytes the response payload.
	WireInBytes  float64
	WireOutBytes float64
	// BatchSize is the query batch size selected in Section 5.1
	// (Table 3's last column): the number of queries aggregated into
	// one GPU forward pass.
	BatchSize int
	// PreOps and PostOps are the non-DNN operation counts per query
	// executed on a CPU core (feature extraction before the DNN and
	// sequence search after it). They are calibrated so a Xeon core
	// reproduces Figure 4's cycle breakdown: image tasks are ~98% DNN,
	// ASR roughly half, NLP about two thirds.
	PreOps  float64
	PostOps float64
}

// SentenceWords is the NLP query size (a 28-word sentence, Table 3).
const SentenceWords = 28

// ASRFrames is the speech query size (548 feature vectors, Table 3).
const ASRFrames = 548

// DIGImages is the digit query size (100 images, Table 3).
const DIGImages = 100

// Get returns the Table 3 spec for an application.
func Get(app models.App) Spec {
	switch app {
	case models.IMC:
		return Spec{
			App: app, InputDesc: "1 image", OutputDesc: "1 classification",
			Instances: 1, WireInBytes: 604 * 1024, WireOutBytes: 4 * 1024,
			BatchSize: 16,
			// JPEG decode + resize to 227x227 + mean subtraction.
			PreOps: 5.2e6, PostOps: 0.1e6,
		}
	case models.DIG:
		return Spec{
			App: app, InputDesc: "100 images", OutputDesc: "100 classifications",
			Instances: DIGImages, WireInBytes: 307 * 1024, WireOutBytes: 0.4 * 1024,
			BatchSize: 16,
			// Greyscale normalisation of 100 28x28 images.
			PreOps: 0.4e6, PostOps: 0.1e6,
		}
	case models.FACE:
		return Spec{
			App: app, InputDesc: "1 image", OutputDesc: "1 classification",
			Instances: 1, WireInBytes: 271 * 1024, WireOutBytes: 0.3 * 1024,
			BatchSize: 2,
			// Face detection + 2-D alignment to the 152x152 crop.
			PreOps: 6.5e6, PostOps: 0.1e6,
		}
	case models.ASR:
		return Spec{
			App: app, InputDesc: "548 speech feature vectors", OutputDesc: "548 probability vectors",
			Instances: ASRFrames, WireInBytes: 4594 * 1024, WireOutBytes: 214 * 1024,
			BatchSize: 2,
			// Pre: MFCC/filterbank extraction + splicing for 5.5 s of
			// audio. Post: Viterbi beam search over the decoding graph
			// — the dominant non-DNN cost, which is why ASR is the one
			// application where the DNN is only about half the cycles
			// (Figure 4).
			PreOps: 0.65e9, PostOps: 3.4e9,
		}
	case models.POS:
		return Spec{
			App: app, InputDesc: "28 word sentence", OutputDesc: "28 probability vectors",
			Instances: SentenceWords, WireInBytes: 38 * 1024, WireOutBytes: 5 * 1024,
			BatchSize: 64,
			// Pre: tokenisation, hashing, embedding window assembly.
			// Post: sentence-level Viterbi over the tag lattice.
			PreOps: 0.40e6, PostOps: 0.31e6,
		}
	case models.CHK:
		return Spec{
			App: app, InputDesc: "28 word sentence", OutputDesc: "28 probability vectors",
			Instances: SentenceWords, WireInBytes: 75 * 1024, WireOutBytes: 2.5 * 1024,
			BatchSize: 64,
			// CHK first issues an internal POS request (its wire size
			// includes POS posterior features), then runs its own pass.
			PreOps: 0.45e6, PostOps: 0.27e6,
		}
	case models.NER:
		return Spec{
			App: app, InputDesc: "28 word sentence", OutputDesc: "28 probability vectors",
			Instances: SentenceWords, WireInBytes: 43 * 1024, WireOutBytes: 1 * 1024,
			BatchSize: 64,
			// NER adds gazetteer lookups to the standard pipeline.
			PreOps: 0.40e6, PostOps: 0.26e6,
		}
	}
	panic("workload: unknown app")
}

// All returns the specs for every application in Table 1 order.
func All() []Spec {
	out := make([]Spec, 0, len(models.Apps))
	for _, a := range models.Apps {
		out = append(out, Get(a))
	}
	return out
}

// Kernels returns the application's forward-pass kernel descriptors for
// a batch of the given number of *queries*, scaling by the instances
// each query carries — a batch of 2 ASR queries is a 1096-frame network
// batch, a batch of 64 POS queries is a 1792-word batch.
func (s Spec) Kernels(queryBatch int) []nn.Kernel {
	return models.BuildCached(s.App).Kernels(queryBatch * s.Instances)
}

// QueryFLOPs returns the DNN forward FLOPs one query requires.
func (s Spec) QueryFLOPs() float64 {
	return models.BuildCached(s.App).FLOPs(s.Instances)
}

// WireBytes returns total bytes moved per query (request + response).
func (s Spec) WireBytes() float64 { return s.WireInBytes + s.WireOutBytes }
