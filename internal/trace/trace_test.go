package trace

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"djinn/internal/testutil"
)

func TestNewIDShapeAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if len(id) != 16 || !ValidID(id) {
			t.Fatalf("bad id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q after %d mints", id, i)
		}
		seen[id] = true
	}
}

func TestContextPropagation(t *testing.T) {
	if got := IDFrom(context.Background()); got != "" {
		t.Fatalf("background context carries id %q", got)
	}
	if got := IDFrom(nil); got != "" { //nolint:staticcheck // nil ctx tolerated by design
		t.Fatalf("nil context carries id %q", got)
	}
	ctx := WithID(context.Background(), "abc123")
	if got := IDFrom(ctx); got != "abc123" {
		t.Fatalf("id did not survive the context: %q", got)
	}
}

func TestStoreAddGetAndDuration(t *testing.T) {
	s := NewStore("replica-0", 8)
	base := time.Now()
	s.Add("q1", Span{Name: "queue_wait", Start: base, Dur: time.Millisecond})
	s.Add("q1", Span{Name: "forward", Start: base.Add(time.Millisecond), Dur: 3 * time.Millisecond})
	tr, ok := s.Get("q1")
	if !ok || len(tr.Spans) != 2 || tr.Tier != "replica-0" {
		t.Fatalf("get: %+v ok=%v", tr, ok)
	}
	if d := tr.Duration(); d != 4*time.Millisecond {
		t.Fatalf("duration %v, want 4ms", d)
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("unknown id found")
	}
}

func TestStoreRejectsInvalidIDs(t *testing.T) {
	s := NewStore("x", 4)
	s.Add("", Span{Name: "a", Start: time.Now()})
	s.Add(strings.Repeat("z", MaxIDLen+1), Span{Name: "a", Start: time.Now()})
	s.Add("ok", nil...)
	if s.Len() != 0 {
		t.Fatalf("store accepted invalid adds: len=%d", s.Len())
	}
}

func TestStoreEvictsOldest(t *testing.T) {
	s := NewStore("x", 3)
	base := time.Now()
	for i := 0; i < 5; i++ {
		s.Add(fmt.Sprintf("q%d", i), Span{Name: "s", Start: base, Dur: time.Duration(i) * time.Millisecond})
	}
	if s.Len() != 3 {
		t.Fatalf("len %d, want bound 3", s.Len())
	}
	for _, gone := range []string{"q0", "q1"} {
		if _, ok := s.Get(gone); ok {
			t.Fatalf("evicted trace %s still present", gone)
		}
	}
	for _, kept := range []string{"q2", "q3", "q4"} {
		if _, ok := s.Get(kept); !ok {
			t.Fatalf("recent trace %s missing", kept)
		}
	}
}

func TestSlowestOrdersByDuration(t *testing.T) {
	s := NewStore("x", 8)
	base := time.Now()
	for i, d := range []time.Duration{3, 9, 1, 7} {
		s.Add(fmt.Sprintf("q%d", i), Span{Name: "s", Start: base, Dur: d * time.Millisecond})
	}
	top := s.Slowest(2)
	if len(top) != 2 || top[0].ID != "q1" || top[1].ID != "q3" {
		t.Fatalf("slowest wrong: %+v", top)
	}
	if all := s.Slowest(0); len(all) != 4 {
		t.Fatalf("Slowest(0) returned %d, want all 4", len(all))
	}
}

func TestMergeOrdersAcrossTiers(t *testing.T) {
	base := time.Now()
	rt := NewStore("router", 8)
	srv := NewStore("replica-1", 8)
	rt.Add("q", Span{Name: "route_attempt", Start: base, Dur: 10 * time.Millisecond, Note: "backend=replica-1 attempt=1 ok"})
	srv.Add("q", Span{Name: "queue_wait", Start: base.Add(time.Millisecond), Dur: 2 * time.Millisecond})
	srv.Add("q", Span{Name: "forward", Start: base.Add(3 * time.Millisecond), Dur: 5 * time.Millisecond})
	merged, ok := Merge("q", rt, nil, srv)
	if !ok || len(merged.Spans) != 3 {
		t.Fatalf("merge: %+v ok=%v", merged, ok)
	}
	if merged.Spans[0].Name != "router/route_attempt" || merged.Spans[1].Name != "replica-1/queue_wait" {
		t.Fatalf("merged order/tiers wrong: %+v", merged.Spans)
	}
	if merged.Tier != "router+replica-1" {
		t.Fatalf("merged tier %q", merged.Tier)
	}
	if _, ok := Merge("absent", rt, srv); ok {
		t.Fatal("merge of unknown id succeeded")
	}
}

func TestFormatRendersSpans(t *testing.T) {
	base := time.Now()
	tr := Trace{ID: "deadbeef", Tier: "replica-0", Spans: []Span{
		{Name: "queue_wait", Start: base, Dur: time.Millisecond},
		{Name: "batch_assembly", Start: base.Add(time.Millisecond), Dur: 2 * time.Millisecond, Note: "batch=7 size=3"},
	}}
	got := tr.Format()
	for _, want := range []string{"trace deadbeef", "replica-0", "queue_wait", "batch_assembly", "batch=7 size=3", "total=3ms"} {
		if !strings.Contains(got, want) {
			t.Fatalf("formatted trace missing %q:\n%s", want, got)
		}
	}
	empty := Trace{ID: "e", Tier: "t"}
	if s := empty.Format(); !strings.Contains(s, "spans=0") {
		t.Fatalf("empty trace format: %q", s)
	}
}

// TestStoreConcurrent hammers Add/Get/Slowest from many goroutines;
// run under -race via the Makefile race gate.
func TestStoreConcurrent(t *testing.T) {
	testutil.NoLeaks(t)
	s := NewStore("x", 64)
	var wg sync.WaitGroup
	base := time.Now()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("w%d-%d", w, i%32)
				s.Add(id, Span{Name: "s", Start: base, Dur: time.Duration(i) * time.Microsecond})
				s.Get(id)
				if i%50 == 0 {
					s.Slowest(4)
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() == 0 || s.Len() > 64 {
		t.Fatalf("store len %d out of bounds", s.Len())
	}
}
