// Package trace provides end-to-end request tracing for the DjiNN
// serving stack: per-request IDs minted at the client (or router),
// propagated through an optional wire-protocol header field, and
// annotated at every hop — route attempts with their retry cause,
// queue enter/exit, batch id and size, forward pass, respond. Each
// process keeps its spans in a bounded in-memory Store, so a
// tail-latency query can be explained after the fact ("2 retries after
// a markdown, then 11ms of batch assembly behind a batch of 32")
// without any external collector. The paper argues end-to-end latency
// must be decomposed into service-side stages to operate DNN-as-a-
// service at scale; this package makes that decomposition visible per
// request instead of only in aggregate.
package trace

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// MaxIDLen bounds a trace ID on the wire and in the store. IDs this
// package mints are 16 hex characters; the bound leaves headroom for
// externally minted IDs (e.g. a gateway's request ID).
const MaxIDLen = 64

// idState is the package-level xorshift state for NewID, seeded once
// from the wall clock so concurrent processes mint disjoint streams.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], uint64(time.Now().UnixNano()))
	idState.Store(binary.LittleEndian.Uint64(seed[:]) | 1)
}

// NewID mints a 16-hex-character request ID. IDs are unique enough for
// correlating spans across tiers within a store's retention window;
// they are not cryptographic.
func NewID() string {
	for {
		old := idState.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if idState.CompareAndSwap(old, x) {
			return fmt.Sprintf("%016x", x)
		}
	}
}

// ValidID reports whether an ID may ride the wire header: non-empty
// and within MaxIDLen bytes.
func ValidID(id string) bool { return len(id) > 0 && len(id) <= MaxIDLen }

type ctxKey struct{}

// WithID returns a context carrying a trace ID. Clients and routers
// attach it before InferCtx; the service client lowers it onto the
// wire, and the server re-attaches it on its side of the connection.
func WithID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// IDFrom extracts the trace ID from a context ("" when untraced).
func IDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

// Span is one annotated segment of a request's life inside one tier.
type Span struct {
	Name  string        `json:"name"`           // e.g. "queue_wait", "route_attempt"
	Note  string        `json:"note,omitempty"` // e.g. "batch=12 size=3 instances=6"
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur"`
}

// Trace is one request's spans as seen by one tier (a router or one
// server replica). Merge combines tiers.
type Trace struct {
	ID    string `json:"id"`
	Tier  string `json:"tier"`
	Spans []Span `json:"spans"`
}

// Duration is the wall-clock extent the trace covers: from the
// earliest span start to the latest span end.
func (t Trace) Duration() time.Duration {
	if len(t.Spans) == 0 {
		return 0
	}
	first := t.Spans[0].Start
	var last time.Time
	for _, s := range t.Spans {
		if s.Start.Before(first) {
			first = s.Start
		}
		if end := s.Start.Add(s.Dur); end.After(last) {
			last = end
		}
	}
	return last.Sub(first)
}

// Store is a bounded in-memory span collector: a ring of traces keyed
// by ID. When full, adding a new ID evicts the oldest trace. Safe for
// concurrent use; Add is the hot path and takes one short lock.
type Store struct {
	tier string

	mu   sync.Mutex
	ring []*Trace // insertion order; len(ring) <= cap
	next int      // ring slot the next new trace overwrites once full
	byID map[string]*Trace
}

// DefaultStoreSize is the trace retention bound a server or router
// uses unless configured otherwise.
const DefaultStoreSize = 1024

// NewStore creates a store retaining at most capacity traces,
// labelling its spans with tier ("router", "replica-0", ...).
// capacity <= 0 means DefaultStoreSize.
func NewStore(tier string, capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultStoreSize
	}
	return &Store{
		tier: tier,
		ring: make([]*Trace, 0, capacity),
		byID: make(map[string]*Trace, capacity),
	}
}

// Tier returns the label this store stamps on its traces.
func (s *Store) Tier() string { return s.tier }

// Add appends spans to the trace with the given ID, creating it (and
// evicting the oldest trace if the store is full) on first sight. IDs
// longer than MaxIDLen and empty IDs are dropped, mirroring the wire
// bound, so a hostile header cannot grow the store's keys.
func (s *Store) Add(id string, spans ...Span) {
	if !ValidID(id) || len(spans) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tr, ok := s.byID[id]
	if !ok {
		tr = &Trace{ID: id, Tier: s.tier}
		if len(s.ring) < cap(s.ring) {
			s.ring = append(s.ring, tr)
		} else {
			evicted := s.ring[s.next]
			delete(s.byID, evicted.ID)
			s.ring[s.next] = tr
			s.next = (s.next + 1) % cap(s.ring)
		}
		s.byID[id] = tr
	}
	tr.Spans = append(tr.Spans, spans...)
}

// Get returns a copy of one trace.
func (s *Store) Get(id string) (Trace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tr, ok := s.byID[id]
	if !ok {
		return Trace{}, false
	}
	return copyTrace(tr), true
}

// Len reports how many traces the store currently retains.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ring)
}

// Slowest returns up to n retained traces ordered by descending
// Duration — the store's slow-query view.
func (s *Store) Slowest(n int) []Trace {
	s.mu.Lock()
	all := make([]Trace, 0, len(s.ring))
	for _, tr := range s.ring {
		all = append(all, copyTrace(tr))
	}
	s.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].Duration() > all[j].Duration() })
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

func copyTrace(tr *Trace) Trace {
	return Trace{ID: tr.ID, Tier: tr.Tier, Spans: append([]Span(nil), tr.Spans...)}
}

// Merge combines the tiers' views of one request into a single trace
// whose spans carry their tier in the Note-independent Tier field via
// Format. Spans are ordered by start time; the result's Tier names the
// tiers that contributed.
func Merge(id string, stores ...*Store) (Trace, bool) {
	merged := Trace{ID: id}
	var tiers []string
	for _, st := range stores {
		if st == nil {
			continue
		}
		tr, ok := st.Get(id)
		if !ok {
			continue
		}
		for i := range tr.Spans {
			// Prefix the span name with its tier so a merged view reads
			// like a cross-tier timeline.
			tr.Spans[i].Name = tr.Tier + "/" + tr.Spans[i].Name
		}
		merged.Spans = append(merged.Spans, tr.Spans...)
		tiers = append(tiers, tr.Tier)
	}
	if len(merged.Spans) == 0 {
		return Trace{}, false
	}
	sort.SliceStable(merged.Spans, func(i, j int) bool {
		return merged.Spans[i].Start.Before(merged.Spans[j].Start)
	})
	merged.Tier = strings.Join(tiers, "+")
	return merged, true
}

// Format renders a trace as an aligned per-span timeline, offsets
// relative to the earliest span:
//
//	trace 4f3a21... (replica-0)  total=13.4ms
//	  +0s       1.1ms   queue_wait
//	  +1.1ms    11ms    batch_assembly   batch=87 size=3 instances=32
func (t Trace) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %s (%s)  spans=%d total=%v", t.ID, t.Tier, len(t.Spans), t.Duration().Round(time.Microsecond))
	if len(t.Spans) == 0 {
		return sb.String()
	}
	first := t.Spans[0].Start
	for _, s := range t.Spans {
		if s.Start.Before(first) {
			first = s.Start
		}
	}
	for _, s := range t.Spans {
		fmt.Fprintf(&sb, "\n  +%-10v %-10v %-24s %s",
			s.Start.Sub(first).Round(time.Microsecond),
			s.Dur.Round(time.Microsecond), s.Name, s.Note)
	}
	return sb.String()
}
