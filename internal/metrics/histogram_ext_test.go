package metrics

import (
	"testing"
	"time"
)

func TestHistogramExemplars(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.RecordEx(500*time.Microsecond, "trace-a")
	h.RecordEx(5*time.Millisecond, "")
	h.RecordEx(7*time.Millisecond, "trace-b")
	h.RecordEx(8*time.Millisecond, "trace-c") // last traced sample wins
	h.RecordEx(time.Minute, "trace-inf")

	s := h.Snapshot()
	if s.Exemplars == nil {
		t.Fatal("snapshot has no exemplars")
	}
	if got := s.Exemplars[0].TraceID; got != "trace-a" {
		t.Errorf("bucket 0 exemplar = %q, want trace-a", got)
	}
	if got := s.Exemplars[1]; got.TraceID != "trace-c" || got.Value != 8*time.Millisecond {
		t.Errorf("bucket 1 exemplar = %+v, want trace-c@8ms", got)
	}
	if got := s.Exemplars[2].TraceID; got != "trace-inf" {
		t.Errorf("overflow bucket exemplar = %q, want trace-inf", got)
	}
}

func TestHistogramSnapshotNoExemplarsStaysNil(t *testing.T) {
	h := NewHistogram(nil)
	h.Record(time.Millisecond)
	if s := h.Snapshot(); s.Exemplars != nil {
		t.Errorf("untraced histogram snapshot grew Exemplars: %+v", s.Exemplars)
	}
}

func TestHistogramQuantileInterpolates(t *testing.T) {
	h := NewHistogram([]time.Duration{10 * time.Millisecond, 20 * time.Millisecond})
	for i := 0; i < 100; i++ {
		h.Record(15 * time.Millisecond) // all in (10ms, 20ms]
	}
	s := h.Snapshot()
	// Median rank falls halfway through the second bucket: 10ms + 0.5*10ms.
	if got, want := s.Quantile(0.5), 15*time.Millisecond; got != want {
		t.Errorf("Quantile(0.5) = %v, want %v", got, want)
	}
	if got := s.Quantile(1.0); got != 20*time.Millisecond {
		t.Errorf("Quantile(1.0) = %v, want 20ms", got)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	h := NewHistogram([]time.Duration{time.Millisecond})
	h.Record(time.Hour) // overflow only
	if got := h.Snapshot().Quantile(0.99); got != time.Millisecond {
		t.Errorf("overflow-only Quantile = %v, want clamp to last bound 1ms", got)
	}
}

func TestHistogramCountAtOrBelow(t *testing.T) {
	h := NewHistogram([]time.Duration{10 * time.Millisecond, 20 * time.Millisecond})
	for i := 0; i < 10; i++ {
		h.Record(5 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(15 * time.Millisecond)
	}
	s := h.Snapshot()
	if got := s.CountAtOrBelow(10 * time.Millisecond); got != 10 {
		t.Errorf("CountAtOrBelow(10ms) = %v, want 10", got)
	}
	// 15ms is halfway through the (10,20] bucket → 10 + 0.5*10 = 15.
	if got := s.CountAtOrBelow(15 * time.Millisecond); got != 15 {
		t.Errorf("CountAtOrBelow(15ms) = %v, want 15", got)
	}
	if got := s.CountAtOrBelow(time.Hour); got != 20 {
		t.Errorf("CountAtOrBelow(1h) = %v, want 20", got)
	}
}

func TestHistogramSnapshotSub(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Record(500 * time.Microsecond)
	prev := h.Snapshot()
	h.Record(5 * time.Millisecond)
	h.Record(5 * time.Millisecond)
	d := h.Snapshot().Sub(prev)
	if d.Count != 2 {
		t.Fatalf("delta Count = %d, want 2", d.Count)
	}
	if d.Counts[0] != 0 || d.Counts[1] != 2 {
		t.Errorf("delta Counts = %v, want [0 2 0]", d.Counts)
	}

	// A reset (prev ahead of cur in some bucket) returns cur unchanged.
	fresh := NewHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond})
	fresh.Record(time.Millisecond)
	cur := fresh.Snapshot()
	got := cur.Sub(h.Snapshot()) // h has bucket counts cur lacks
	if got.Count != cur.Count || got.Counts[0] != cur.Counts[0] {
		t.Errorf("reset Sub = %+v, want cur unchanged %+v", got, cur)
	}

	// Mismatched bounds return cur unchanged.
	other := NewHistogram([]time.Duration{2 * time.Millisecond, 10 * time.Millisecond}).Snapshot()
	if got := cur.Sub(other); got.Counts[0] != cur.Counts[0] {
		t.Error("bounds-mismatched Sub did not return cur unchanged")
	}
}

func TestMergeHistogramsFleetQuantile(t *testing.T) {
	bounds := []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond}
	// Three "replicas" with skewed tails, plus a single-node oracle that
	// saw every sample: the merged quantile must match the oracle
	// exactly (identical buckets ⇒ identical interpolation).
	replicas := make([]*Histogram, 3)
	oracle := NewHistogram(bounds)
	for i := range replicas {
		replicas[i] = NewHistogram(bounds)
	}
	samples := []struct {
		replica int
		d       time.Duration
		n       int
	}{
		{0, 500 * time.Microsecond, 400},
		{1, 600 * time.Microsecond, 380},
		{2, 700 * time.Microsecond, 300},
		{2, 50 * time.Millisecond, 20}, // one replica owns the tail
	}
	for _, s := range samples {
		for i := 0; i < s.n; i++ {
			replicas[s.replica].Record(s.d)
			oracle.Record(s.d)
		}
	}
	snaps := make([]HistogramSnapshot, len(replicas))
	for i := range replicas {
		snaps[i] = replicas[i].Snapshot()
	}
	merged, ok := MergeHistograms(snaps...)
	if !ok {
		t.Fatal("merge failed")
	}
	want := oracle.Snapshot()
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		if got, exp := merged.Quantile(p), want.Quantile(p); got != exp {
			t.Errorf("merged Quantile(%v) = %v, oracle = %v", p, got, exp)
		}
	}
	if merged.Count != want.Count || merged.Sum != want.Sum {
		t.Errorf("merged Count/Sum = %d/%v, oracle = %d/%v", merged.Count, merged.Sum, want.Count, want.Sum)
	}

	// Contrast: the average of per-replica p99s underestimates the true
	// fleet p99 when one replica owns the tail. Guard the property that
	// motivates merged rollups.
	var avg time.Duration
	for _, s := range snaps {
		avg += s.Quantile(0.99)
	}
	avg /= time.Duration(len(snaps))
	if avg >= merged.Quantile(0.99) {
		t.Errorf("avg-of-p99s %v unexpectedly ≥ merged p99 %v (tail hidden)", avg, merged.Quantile(0.99))
	}
}

func TestMergeHistogramsSkipsMismatched(t *testing.T) {
	a := NewHistogram([]time.Duration{time.Millisecond})
	a.Record(time.Millisecond)
	b := NewHistogram([]time.Duration{2 * time.Millisecond})
	b.Record(time.Millisecond)
	merged, ok := MergeHistograms(a.Snapshot(), b.Snapshot())
	if !ok {
		t.Fatal("merge of first snapshot should succeed")
	}
	if merged.Count != 1 {
		t.Errorf("mismatched-bounds snapshot was merged: Count=%d", merged.Count)
	}
	if _, ok := MergeHistograms(); ok {
		t.Error("empty merge reported ok")
	}
}

func TestStageBreakdownRecordEx(t *testing.T) {
	b := NewStageBreakdown()
	b.RecordEx(StageForward, 3*time.Millisecond, "tr-9")
	s := b.HistogramFor(StageForward)
	found := false
	for _, ex := range s.Exemplars {
		if ex.TraceID == "tr-9" {
			found = true
		}
	}
	if !found {
		t.Errorf("stage histogram missing exemplar tr-9: %+v", s.Exemplars)
	}
}
