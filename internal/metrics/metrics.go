// Package metrics provides the measurement plumbing for driving the
// real DjiNN service: thread-safe latency recorders with percentile
// queries and throughput windows, used by the load drivers and the
// service CLI.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// LatencyRecorder accumulates latency samples; safe for concurrent use.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// NewLatencyRecorder creates an empty recorder.
func NewLatencyRecorder() *LatencyRecorder { return &LatencyRecorder{} }

// Record adds one sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.sorted = false
	r.mu.Unlock()
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Mean returns the average latency, or 0 with no samples.
func (r *LatencyRecorder) Mean() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range r.samples {
		sum += s
	}
	return sum / time.Duration(len(r.samples))
}

// Percentile returns the p-quantile (0 < p ≤ 1) by nearest-rank, or 0
// with no samples.
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("metrics: percentile %v out of (0,1]", p))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.samples)
	if n == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	return r.samples[idx]
}

// Summary is a snapshot of a recorder.
type Summary struct {
	Count         int
	Mean          time.Duration
	P50, P95, P99 time.Duration
}

// Summarize returns count, mean and key percentiles.
func (r *LatencyRecorder) Summarize() Summary {
	return Summary{
		Count: r.Count(),
		Mean:  r.Mean(),
		P50:   r.Percentile(0.50),
		P95:   r.Percentile(0.95),
		P99:   r.Percentile(0.99),
	}
}

// String renders the summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v", s.Count, s.Mean, s.P50, s.P95, s.P99)
}

// Throughput measures completed operations over wall-clock time.
type Throughput struct {
	mu    sync.Mutex
	count int64
	start time.Time
}

// NewThroughput starts a throughput window now.
func NewThroughput() *Throughput { return &Throughput{start: time.Now()} }

// Add records n completed operations.
func (t *Throughput) Add(n int64) {
	t.mu.Lock()
	t.count += n
	t.mu.Unlock()
}

// Rate returns operations per second since the window started.
func (t *Throughput) Rate() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	el := time.Since(t.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.count) / el
}

// Count returns the total operations recorded.
func (t *Throughput) Count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}
