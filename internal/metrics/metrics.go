// Package metrics provides the measurement plumbing for driving the
// real DjiNN service: thread-safe latency recorders with percentile
// queries and throughput windows, used by the load drivers and the
// service CLI, plus the per-stage request-lifecycle breakdown the
// server exports through its "latency" control verb.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultReservoirSize bounds a LatencyRecorder's in-memory sample set.
// Beyond it the recorder switches to uniform reservoir sampling, so a
// week-long benchmark run holds percentile estimates in constant
// memory instead of growing a slice without bound.
const DefaultReservoirSize = 16384

// LatencyRecorder accumulates latency samples; safe for concurrent use.
// Count and Mean are exact over every recorded sample; percentiles are
// computed over a bounded uniform reservoir (DefaultReservoirSize
// unless NewLatencyRecorderSize chose otherwise), and the sorted view
// is cached between Record calls rather than re-sorted per query.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
	cap     int
	count   int64         // total samples ever recorded
	sum     time.Duration // exact running sum for Mean
	sorted  bool
	rng     uint64 // xorshift state for reservoir replacement
}

// NewLatencyRecorder creates an empty recorder with the default
// reservoir bound.
func NewLatencyRecorder() *LatencyRecorder {
	return NewLatencyRecorderSize(DefaultReservoirSize)
}

// NewLatencyRecorderSize creates an empty recorder keeping at most size
// samples for percentile estimation (size <= 0 means the default).
func NewLatencyRecorderSize(size int) *LatencyRecorder {
	if size <= 0 {
		size = DefaultReservoirSize
	}
	return &LatencyRecorder{cap: size, rng: 0x9e3779b97f4a7c15}
}

func (r *LatencyRecorder) rand() uint64 {
	// xorshift64: cheap, deterministic, good enough for reservoir slots.
	x := r.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rng = x
	return x
}

// Record adds one sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	r.count++
	r.sum += d
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, d)
		r.sorted = false
	} else if j := r.rand() % uint64(r.count); j < uint64(r.cap) {
		// Algorithm R: keep each of the count samples in the reservoir
		// with probability cap/count.
		r.samples[j] = d
		r.sorted = false
	}
	r.mu.Unlock()
}

// Count returns the number of samples recorded (not the reservoir size).
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.count)
}

// Mean returns the average latency over all recorded samples, or 0 with
// no samples.
func (r *LatencyRecorder) Mean() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.meanLocked()
}

func (r *LatencyRecorder) meanLocked() time.Duration {
	if r.count == 0 {
		return 0
	}
	return r.sum / time.Duration(r.count)
}

// Percentile returns the p-quantile (0 < p ≤ 1) by nearest-rank over
// the reservoir, or 0 with no samples.
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("metrics: percentile %v out of (0,1]", p))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.percentileLocked(p)
}

func (r *LatencyRecorder) percentileLocked(p float64) time.Duration {
	n := len(r.samples)
	if n == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	return r.samples[idx]
}

// Summary is a snapshot of a recorder.
type Summary struct {
	Count         int
	Mean          time.Duration
	P50, P95, P99 time.Duration
}

// Summarize returns count, mean and key percentiles under one lock.
func (r *LatencyRecorder) Summarize() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Summary{
		Count: int(r.count),
		Mean:  r.meanLocked(),
		P50:   r.percentileLocked(0.50),
		P95:   r.percentileLocked(0.95),
		P99:   r.percentileLocked(0.99),
	}
}

// String renders the summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v", s.Count, s.Mean, s.P50, s.P95, s.P99)
}

// Stage identifies one segment of a request's life inside the service:
// waiting in the app queue, waiting for its batch to fill, the forward
// pass, and result scatter/response delivery. These are the server-side
// overheads that dominate end-to-end latency in shared DNN services.
type Stage int

// The lifecycle stages, in request order. StageRoute is recorded by
// the multi-backend router (replica selection + retries around the
// whole exchange) rather than by the server, so a single server's
// breakdown reports it empty.
const (
	StageQueueWait Stage = iota
	StageBatchAssembly
	StageForward
	StageRespond
	StageRoute
	numStages
)

// String names the stage as reported by the "latency" control verb.
func (s Stage) String() string {
	switch s {
	case StageQueueWait:
		return "queue_wait"
	case StageBatchAssembly:
		return "batch_assembly"
	case StageForward:
		return "forward"
	case StageRespond:
		return "respond"
	case StageRoute:
		return "route"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// StageBreakdown holds one bounded recorder per lifecycle stage; safe
// for concurrent use.
type StageBreakdown struct {
	recs [numStages]*LatencyRecorder
}

// NewStageBreakdown creates an empty breakdown.
func NewStageBreakdown() *StageBreakdown {
	b := &StageBreakdown{}
	for i := range b.recs {
		b.recs[i] = NewLatencyRecorder()
	}
	return b
}

// Record adds one sample to a stage.
func (b *StageBreakdown) Record(s Stage, d time.Duration) {
	if s < 0 || s >= numStages {
		return
	}
	b.recs[s].Record(d)
}

// StageSummary is a snapshot of every lifecycle stage.
type StageSummary struct {
	QueueWait     Summary
	BatchAssembly Summary
	Forward       Summary
	Respond       Summary
	Route         Summary
}

// Summarize snapshots every stage.
func (b *StageBreakdown) Summarize() StageSummary {
	return StageSummary{
		QueueWait:     b.recs[StageQueueWait].Summarize(),
		BatchAssembly: b.recs[StageBatchAssembly].Summarize(),
		Forward:       b.recs[StageForward].Summarize(),
		Respond:       b.recs[StageRespond].Summarize(),
		Route:         b.recs[StageRoute].Summarize(),
	}
}

// String renders one line per stage, omitting the router-side route
// stage when nothing recorded it (the single-server case).
func (s StageSummary) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %s\n", StageQueueWait, s.QueueWait)
	fmt.Fprintf(&sb, "%-14s %s\n", StageBatchAssembly, s.BatchAssembly)
	fmt.Fprintf(&sb, "%-14s %s\n", StageForward, s.Forward)
	fmt.Fprintf(&sb, "%-14s %s", StageRespond, s.Respond)
	if s.Route.Count > 0 {
		fmt.Fprintf(&sb, "\n%-14s %s", StageRoute, s.Route)
	}
	return sb.String()
}

// BackendCounters accumulates one backend replica's routing outcomes.
// All fields are atomic; the router increments them on its hot path
// without locks.
type BackendCounters struct {
	sent      atomic.Int64 // attempts routed to this backend
	ok        atomic.Int64 // successful answers
	failures  atomic.Int64 // retryable failures (shed, draining, transport)
	slow      atomic.Int64 // answers past the slow-response threshold
	markDowns atomic.Int64 // healthy → down transitions
	probes    atomic.Int64 // recovery probes sent while down
}

// Sent records one attempt routed to the backend.
func (c *BackendCounters) Sent() { c.sent.Add(1) }

// OK records one successful answer.
func (c *BackendCounters) OK() { c.ok.Add(1) }

// Failure records one retryable failure.
func (c *BackendCounters) Failure() { c.failures.Add(1) }

// Slow records one answer past the slow-response threshold.
func (c *BackendCounters) Slow() { c.slow.Add(1) }

// MarkDown records one healthy → down transition.
func (c *BackendCounters) MarkDown() { c.markDowns.Add(1) }

// Probe records one recovery probe issued while the backend was down.
func (c *BackendCounters) Probe() { c.probes.Add(1) }

// BackendStats is a point-in-time snapshot of BackendCounters.
type BackendStats struct {
	Sent      int64
	OK        int64
	Failures  int64
	Slow      int64
	MarkDowns int64
	Probes    int64
}

// Snapshot reads the counters. Like the server's Stats snapshot, the
// reads are ordered against the increment order (sent before ok /
// failures) so Sent ≥ OK+Failures can never be violated by a torn read.
func (c *BackendCounters) Snapshot() BackendStats {
	var s BackendStats
	s.OK = c.ok.Load()
	s.Failures = c.failures.Load()
	s.Slow = c.slow.Load()
	s.MarkDowns = c.markDowns.Load()
	s.Probes = c.probes.Load()
	s.Sent = c.sent.Load()
	return s
}

// String renders the snapshot as key=value pairs.
func (s BackendStats) String() string {
	return fmt.Sprintf("sent=%d ok=%d failures=%d slow=%d markdowns=%d probes=%d",
		s.Sent, s.OK, s.Failures, s.Slow, s.MarkDowns, s.Probes)
}

// Throughput measures completed operations over wall-clock time.
type Throughput struct {
	mu    sync.Mutex
	count int64
	start time.Time
}

// NewThroughput starts a throughput window now.
func NewThroughput() *Throughput { return &Throughput{start: time.Now()} }

// Add records n completed operations.
func (t *Throughput) Add(n int64) {
	t.mu.Lock()
	t.count += n
	t.mu.Unlock()
}

// Rate returns operations per second since the window started.
func (t *Throughput) Rate() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	el := time.Since(t.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.count) / el
}

// Count returns the total operations recorded.
func (t *Throughput) Count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}
