// Package metrics provides the measurement plumbing for driving the
// real DjiNN service: thread-safe latency recorders with percentile
// queries and throughput windows, used by the load drivers and the
// service CLI, plus the per-stage request-lifecycle breakdown the
// server exports through its "latency" control verb.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultReservoirSize bounds a LatencyRecorder's in-memory sample set.
// Beyond it the recorder switches to uniform reservoir sampling, so a
// week-long benchmark run holds percentile estimates in constant
// memory instead of growing a slice without bound.
const DefaultReservoirSize = 16384

// LatencyRecorder accumulates latency samples; safe for concurrent use.
// Count and Mean are exact over every recorded sample; percentiles are
// computed over a bounded uniform reservoir (DefaultReservoirSize
// unless NewLatencyRecorderSize chose otherwise), and the sorted view
// is cached between Record calls rather than re-sorted per query.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
	cap     int
	count   int64         // total samples ever recorded
	sum     time.Duration // exact running sum for Mean
	sorted  bool
	rng     uint64 // xorshift state for reservoir replacement
}

// NewLatencyRecorder creates an empty recorder with the default
// reservoir bound.
func NewLatencyRecorder() *LatencyRecorder {
	return NewLatencyRecorderSize(DefaultReservoirSize)
}

// NewLatencyRecorderSize creates an empty recorder keeping at most size
// samples for percentile estimation (size <= 0 means the default).
func NewLatencyRecorderSize(size int) *LatencyRecorder {
	if size <= 0 {
		size = DefaultReservoirSize
	}
	return &LatencyRecorder{cap: size, rng: 0x9e3779b97f4a7c15}
}

func (r *LatencyRecorder) rand() uint64 {
	// xorshift64: cheap, deterministic, good enough for reservoir slots.
	x := r.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rng = x
	return x
}

// Record adds one sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	r.count++
	r.sum += d
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, d)
		r.sorted = false
	} else if j := r.rand() % uint64(r.count); j < uint64(r.cap) {
		// Algorithm R: keep each of the count samples in the reservoir
		// with probability cap/count.
		r.samples[j] = d
		r.sorted = false
	}
	r.mu.Unlock()
}

// Count returns the number of samples recorded (not the reservoir size).
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.count)
}

// Mean returns the average latency over all recorded samples, or 0 with
// no samples.
func (r *LatencyRecorder) Mean() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.meanLocked()
}

func (r *LatencyRecorder) meanLocked() time.Duration {
	if r.count == 0 {
		return 0
	}
	return r.sum / time.Duration(r.count)
}

// Percentile returns the p-quantile (0 < p ≤ 1) by nearest-rank over
// the reservoir, or 0 with no samples.
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("metrics: percentile %v out of (0,1]", p))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.percentileLocked(p)
}

func (r *LatencyRecorder) percentileLocked(p float64) time.Duration {
	n := len(r.samples)
	if n == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	return r.samples[idx]
}

// Summary is a snapshot of a recorder.
type Summary struct {
	Count         int
	Mean          time.Duration
	P50, P95, P99 time.Duration
}

// Summarize returns count, mean and key percentiles under one lock.
func (r *LatencyRecorder) Summarize() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Summary{
		Count: int(r.count),
		Mean:  r.meanLocked(),
		P50:   r.percentileLocked(0.50),
		P95:   r.percentileLocked(0.95),
		P99:   r.percentileLocked(0.99),
	}
}

// String renders the summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v", s.Count, s.Mean, s.P50, s.P95, s.P99)
}

// Stage identifies one segment of a request's life inside the service:
// waiting in the app queue, waiting for its batch to fill, the forward
// pass, and result scatter/response delivery. These are the server-side
// overheads that dominate end-to-end latency in shared DNN services.
type Stage int

// The lifecycle stages, in request order. StageRoute is recorded by
// the multi-backend router (replica selection + retries around the
// whole exchange) rather than by the server, so a single server's
// breakdown reports it empty.
const (
	StageQueueWait Stage = iota
	StageBatchAssembly
	StageForward
	StageRespond
	StageRoute
	numStages
)

// String names the stage as reported by the "latency" control verb.
func (s Stage) String() string {
	switch s {
	case StageQueueWait:
		return "queue_wait"
	case StageBatchAssembly:
		return "batch_assembly"
	case StageForward:
		return "forward"
	case StageRespond:
		return "respond"
	case StageRoute:
		return "route"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Stages lists every lifecycle stage in request order, for callers
// (the admin exporter) that iterate the full breakdown.
var Stages = []Stage{StageQueueWait, StageBatchAssembly, StageForward, StageRespond, StageRoute}

// DefaultLatencyBuckets are the fixed histogram bucket upper bounds
// used for the scrapeable export: roughly logarithmic from 50µs to 5s,
// covering a sub-millisecond forward pass through a retry storm. They
// complement the reservoirs: the reservoir answers "what is p99 right
// now" exactly, the fixed buckets aggregate across scrapes and
// processes (Prometheus histogram_quantile) without coordination.
var DefaultLatencyBuckets = []time.Duration{
	50 * time.Microsecond, 100 * time.Microsecond, 250 * time.Microsecond,
	500 * time.Microsecond, time.Millisecond, 2500 * time.Microsecond,
	5 * time.Millisecond, 10 * time.Millisecond, 25 * time.Millisecond,
	50 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond,
	500 * time.Millisecond, time.Second, 2500 * time.Millisecond, 5 * time.Second,
}

// Exemplar ties one concrete traced request to a histogram bucket, so
// an operator looking at a latency spike in /metrics can jump straight
// to the matching /slowlog entry instead of hunting for a trace that
// landed in the same bucket.
type Exemplar struct {
	TraceID string
	Value   time.Duration
}

// Histogram is a fixed-bucket latency histogram. Record is lock-free
// (one atomic add per bucket/sum/count), so it can sit on the serving
// hot path next to the reservoir recorders.
type Histogram struct {
	bounds    []time.Duration
	counts    []atomic.Int64             // len(bounds)+1; last is the +Inf bucket
	exemplars []atomic.Pointer[Exemplar] // len(bounds)+1; latest traced sample per bucket
	sum       atomic.Int64               // nanoseconds
	count     atomic.Int64
}

// NewHistogram creates a histogram over the given ascending bucket
// upper bounds (nil means DefaultLatencyBuckets).
func NewHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{
		bounds:    append([]time.Duration(nil), bounds...),
		counts:    make([]atomic.Int64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.RecordEx(d, "")
}

// RecordEx adds one sample and, when the request carried a trace ID,
// remembers it as the bucket's exemplar (last traced sample wins — a
// single pointer swap, no coordination with other recorders).
func (h *Histogram) RecordEx(d time.Duration, traceID string) {
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i].Add(1)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: d})
	}
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Counts is
// per-bucket (not cumulative) and one longer than Bounds; the final
// entry is the overflow (+Inf) bucket. Exemplars, when present, is
// parallel to Counts; a zero-value entry means the bucket has seen no
// traced sample.
type HistogramSnapshot struct {
	Bounds    []time.Duration
	Counts    []int64
	Exemplars []Exemplar
	Sum       time.Duration
	Count     int64
}

// Snapshot copies the histogram. The per-bucket loads are not a single
// atomic cut, but Count is loaded first, before any bucket: every
// sample Count covers incremented its bucket before incrementing
// count (Record's order), so that increment is visible to the later
// bucket loads. The sum of Counts can therefore run ahead of Count by
// in-flight Records, never behind it. (Loading Count last gives the
// opposite — a Record landing in an already-scanned bucket tears the
// snapshot with bucket sum < Count.)
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]time.Duration(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	for i := range h.exemplars {
		if ex := h.exemplars[i].Load(); ex != nil {
			if s.Exemplars == nil {
				s.Exemplars = make([]Exemplar, len(h.counts))
			}
			s.Exemplars[i] = *ex
		}
	}
	s.Sum = time.Duration(h.sum.Load())
	return s
}

// bucketTotal is the number of samples accounted for by the buckets
// themselves; it can run ahead of Count by in-flight Records (see
// Snapshot) so quantile math uses it rather than Count.
func (s HistogramSnapshot) bucketTotal() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Quantile estimates the p-quantile (0 < p ≤ 1) by walking the bucket
// cumulative counts and interpolating linearly inside the straddling
// bucket. Samples in the +Inf overflow bucket report the last finite
// bound (the histogram cannot see past it). Returns 0 for an empty
// snapshot.
func (s HistogramSnapshot) Quantile(p float64) time.Duration {
	total := s.bucketTotal()
	if total == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: clamp to the largest finite bound.
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + time.Duration(frac*float64(hi-lo))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// CountAtOrBelow estimates how many recorded samples were ≤ d,
// interpolating linearly inside the bucket d falls in. This is the
// attainment side of the SLO math: good = CountAtOrBelow(SLO).
func (s HistogramSnapshot) CountAtOrBelow(d time.Duration) float64 {
	var cum float64
	for i, c := range s.Counts {
		if i >= len(s.Bounds) {
			// Overflow samples are all > the last finite bound.
			return cum
		}
		hi := s.Bounds[i]
		if d >= hi {
			cum += float64(c)
			continue
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if d > lo && hi > lo {
			cum += float64(c) * float64(d-lo) / float64(hi-lo)
		}
		return cum
	}
	return cum
}

// Sub returns the per-bucket difference s − prev, the per-interval
// delta a periodic collector needs from two cumulative snapshots. A
// bounds mismatch or a counter reset (any bucket going backwards)
// returns s unchanged, the standard counter-reset semantics.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	if len(prev.Counts) != len(s.Counts) || len(prev.Bounds) != len(s.Bounds) {
		return s
	}
	for i := range s.Bounds {
		if s.Bounds[i] != prev.Bounds[i] {
			return s
		}
	}
	d := HistogramSnapshot{
		Bounds:    s.Bounds,
		Counts:    make([]int64, len(s.Counts)),
		Exemplars: s.Exemplars,
		Sum:       s.Sum - prev.Sum,
		Count:     s.Count - prev.Count,
	}
	for i := range s.Counts {
		if s.Counts[i] < prev.Counts[i] {
			return s
		}
		d.Counts[i] = s.Counts[i] - prev.Counts[i]
	}
	if d.Count < 0 {
		return s
	}
	return d
}

// MergeHistograms sums snapshots with identical bounds into one fleet
// histogram — the "true fleet p99" path: quantiles over the merged
// buckets, not an average of per-replica quantiles. Snapshots with
// mismatched bounds are skipped; ok reports whether anything merged.
func MergeHistograms(snaps ...HistogramSnapshot) (merged HistogramSnapshot, ok bool) {
	for _, s := range snaps {
		if len(s.Counts) == 0 {
			continue
		}
		if merged.Counts == nil {
			merged = HistogramSnapshot{
				Bounds: append([]time.Duration(nil), s.Bounds...),
				Counts: append([]int64(nil), s.Counts...),
				Sum:    s.Sum,
				Count:  s.Count,
			}
			if s.Exemplars != nil {
				merged.Exemplars = append([]Exemplar(nil), s.Exemplars...)
			}
			ok = true
			continue
		}
		if len(s.Counts) != len(merged.Counts) || len(s.Bounds) != len(merged.Bounds) {
			continue
		}
		compatible := true
		for i := range s.Bounds {
			if s.Bounds[i] != merged.Bounds[i] {
				compatible = false
				break
			}
		}
		if !compatible {
			continue
		}
		for i := range s.Counts {
			merged.Counts[i] += s.Counts[i]
		}
		for i := range s.Exemplars {
			if s.Exemplars[i].TraceID != "" {
				if merged.Exemplars == nil {
					merged.Exemplars = make([]Exemplar, len(merged.Counts))
				}
				merged.Exemplars[i] = s.Exemplars[i]
			}
		}
		merged.Sum += s.Sum
		merged.Count += s.Count
	}
	return merged, ok
}

// StageBreakdown holds one bounded reservoir recorder plus one
// fixed-bucket histogram per lifecycle stage; safe for concurrent use.
type StageBreakdown struct {
	recs  [numStages]*LatencyRecorder
	hists [numStages]*Histogram
}

// NewStageBreakdown creates an empty breakdown.
func NewStageBreakdown() *StageBreakdown {
	b := &StageBreakdown{}
	for i := range b.recs {
		b.recs[i] = NewLatencyRecorder()
		b.hists[i] = NewHistogram(nil)
	}
	return b
}

// Record adds one sample to a stage's reservoir and histogram.
func (b *StageBreakdown) Record(s Stage, d time.Duration) {
	b.RecordEx(s, d, "")
}

// RecordEx records a sample and attaches the request's trace ID (when
// present) to the stage histogram bucket as an exemplar.
func (b *StageBreakdown) RecordEx(s Stage, d time.Duration, traceID string) {
	if s < 0 || s >= numStages {
		return
	}
	b.recs[s].Record(d)
	b.hists[s].RecordEx(d, traceID)
}

// HistogramFor snapshots one stage's fixed-bucket histogram (the
// scrapeable export path).
func (b *StageBreakdown) HistogramFor(s Stage) HistogramSnapshot {
	if s < 0 || s >= numStages {
		return HistogramSnapshot{}
	}
	return b.hists[s].Snapshot()
}

// StageSummary is a snapshot of every lifecycle stage.
type StageSummary struct {
	QueueWait     Summary
	BatchAssembly Summary
	Forward       Summary
	Respond       Summary
	Route         Summary
}

// Summarize snapshots every stage.
func (b *StageBreakdown) Summarize() StageSummary {
	return StageSummary{
		QueueWait:     b.recs[StageQueueWait].Summarize(),
		BatchAssembly: b.recs[StageBatchAssembly].Summarize(),
		Forward:       b.recs[StageForward].Summarize(),
		Respond:       b.recs[StageRespond].Summarize(),
		Route:         b.recs[StageRoute].Summarize(),
	}
}

// String renders one line per stage, omitting the router-side route
// stage when nothing recorded it (the single-server case).
func (s StageSummary) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %s\n", StageQueueWait, s.QueueWait)
	fmt.Fprintf(&sb, "%-14s %s\n", StageBatchAssembly, s.BatchAssembly)
	fmt.Fprintf(&sb, "%-14s %s\n", StageForward, s.Forward)
	fmt.Fprintf(&sb, "%-14s %s", StageRespond, s.Respond)
	if s.Route.Count > 0 {
		fmt.Fprintf(&sb, "\n%-14s %s", StageRoute, s.Route)
	}
	return sb.String()
}

// BackendCounters accumulates one backend replica's routing outcomes.
// All fields are atomic; the router increments them on its hot path
// without locks.
type BackendCounters struct {
	sent         atomic.Int64 // attempts routed to this backend
	ok           atomic.Int64 // successful answers
	failures     atomic.Int64 // retryable failures (draining, transport)
	backpressure atomic.Int64 // overload answers (admission/queue shed)
	slow         atomic.Int64 // answers past the slow-response threshold
	markDowns    atomic.Int64 // healthy → down transitions
	probes       atomic.Int64 // recovery probes sent while down
}

// Sent records one attempt routed to the backend.
func (c *BackendCounters) Sent() { c.sent.Add(1) }

// OK records one successful answer.
func (c *BackendCounters) OK() { c.ok.Add(1) }

// Failure records one retryable failure.
func (c *BackendCounters) Failure() { c.failures.Add(1) }

// Backpressure records one overload answer: the backend is alive but
// shed the query at admission or because its queue was full.
func (c *BackendCounters) Backpressure() { c.backpressure.Add(1) }

// Slow records one answer past the slow-response threshold.
func (c *BackendCounters) Slow() { c.slow.Add(1) }

// MarkDown records one healthy → down transition.
func (c *BackendCounters) MarkDown() { c.markDowns.Add(1) }

// Probe records one recovery probe issued while the backend was down.
func (c *BackendCounters) Probe() { c.probes.Add(1) }

// BackendStats is a point-in-time snapshot of BackendCounters.
type BackendStats struct {
	Sent         int64
	OK           int64
	Failures     int64
	Backpressure int64
	Slow         int64
	MarkDowns    int64
	Probes       int64
}

// Snapshot reads the counters. Like the server's Stats snapshot, the
// reads are ordered against the increment order (sent before ok /
// failures) so Sent ≥ OK+Failures can never be violated by a torn read.
func (c *BackendCounters) Snapshot() BackendStats {
	var s BackendStats
	s.OK = c.ok.Load()
	s.Failures = c.failures.Load()
	s.Backpressure = c.backpressure.Load()
	s.Slow = c.slow.Load()
	s.MarkDowns = c.markDowns.Load()
	s.Probes = c.probes.Load()
	s.Sent = c.sent.Load()
	return s
}

// String renders the snapshot as key=value pairs.
func (s BackendStats) String() string {
	return fmt.Sprintf("sent=%d ok=%d failures=%d backpressure=%d slow=%d markdowns=%d probes=%d",
		s.Sent, s.OK, s.Failures, s.Backpressure, s.Slow, s.MarkDowns, s.Probes)
}

// throughputSlots is how many one-second buckets Throughput keeps for
// its recent-window rate (so RecentRate supports windows up to 60s).
const throughputSlots = 60

// Throughput measures completed operations over wall-clock time. Rate
// is the lifetime average; RecentRate is a sliding window over the
// last seconds, so a long-running service's scrape shows current load
// rather than the average since boot.
type Throughput struct {
	mu    sync.Mutex
	count int64
	start time.Time
	now   func() time.Time // injectable clock for tests

	slots   [throughputSlots]int64 // ops completed in one-second buckets
	slotSec [throughputSlots]int64 // unix second each bucket holds
}

// NewThroughput starts a throughput window now.
func NewThroughput() *Throughput {
	return &Throughput{start: time.Now(), now: time.Now}
}

// Add records n completed operations.
func (t *Throughput) Add(n int64) {
	t.mu.Lock()
	t.count += n
	sec := t.now().Unix()
	i := sec % throughputSlots
	if t.slotSec[i] != sec {
		t.slots[i], t.slotSec[i] = 0, sec
	}
	t.slots[i] += n
	t.mu.Unlock()
}

// Rate returns operations per second since the window started (or
// since the last Reset).
func (t *Throughput) Rate() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	el := t.now().Sub(t.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.count) / el
}

// RecentRate returns operations per second over the trailing window
// (clamped to [1s, 60s] and to the time elapsed since start/Reset), so
// a service that was busy an hour ago but idle now reports ~0 instead
// of its lifetime average.
func (t *Throughput) RecentRate(window time.Duration) float64 {
	if window < time.Second {
		window = time.Second
	}
	if window > throughputSlots*time.Second {
		window = throughputSlots * time.Second
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	elapsed := now.Sub(t.start)
	if elapsed <= 0 {
		return 0
	}
	if window > elapsed {
		window = elapsed
	}
	cutoff := now.Add(-window).Unix()
	var n int64
	for i := range t.slots {
		if t.slotSec[i] >= cutoff {
			n += t.slots[i]
		}
	}
	secs := window.Seconds()
	if secs < 1 {
		secs = 1
	}
	return float64(n) / secs
}

// Reset zeroes the counters and restarts both the lifetime and the
// recent windows now.
func (t *Throughput) Reset() {
	t.mu.Lock()
	t.count = 0
	t.start = t.now()
	t.slots = [throughputSlots]int64{}
	t.slotSec = [throughputSlots]int64{}
	t.mu.Unlock()
}

// Count returns the total operations recorded since start/Reset.
func (t *Throughput) Count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}
