package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestLatencyMeanAndPercentiles(t *testing.T) {
	r := NewLatencyRecorder()
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	if r.Count() != 100 {
		t.Fatalf("count %d", r.Count())
	}
	if m := r.Mean(); m != 50500*time.Microsecond {
		t.Fatalf("mean %v", m)
	}
	if p := r.Percentile(0.50); p != 50*time.Millisecond {
		t.Fatalf("p50 %v", p)
	}
	if p := r.Percentile(0.95); p != 95*time.Millisecond {
		t.Fatalf("p95 %v", p)
	}
	if p := r.Percentile(1.0); p != 100*time.Millisecond {
		t.Fatalf("p100 %v", p)
	}
	if p := r.Percentile(0.001); p != 1*time.Millisecond {
		t.Fatalf("p0.1 %v", p)
	}
}

func TestEmptyRecorder(t *testing.T) {
	r := NewLatencyRecorder()
	if r.Mean() != 0 || r.Percentile(0.5) != 0 || r.Count() != 0 {
		t.Fatal("empty recorder should report zeros")
	}
}

func TestPercentilePanicsOutOfRange(t *testing.T) {
	r := NewLatencyRecorder()
	for _, p := range []float64{0, -1, 1.01} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v) should panic", p)
				}
			}()
			r.Percentile(p)
		}()
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewLatencyRecorder()
		for _, v := range raw {
			r.Record(time.Duration(v) * time.Microsecond)
		}
		last := time.Duration(0)
		for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			q := r.Percentile(p)
			if q < last {
				return false
			}
			last = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewLatencyRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(time.Millisecond)
				r.Percentile(0.5)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 800 {
		t.Fatalf("count %d, want 800", r.Count())
	}
}

func TestSummary(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(time.Millisecond)
	r.Record(3 * time.Millisecond)
	s := r.Summarize()
	if s.Count != 2 || s.Mean != 2*time.Millisecond {
		t.Fatalf("summary %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestReservoirBoundsMemory(t *testing.T) {
	const size = 64
	r := NewLatencyRecorderSize(size)
	for i := 0; i < 10*size; i++ {
		r.Record(time.Duration(i+1) * time.Microsecond)
	}
	if r.Count() != 10*size {
		t.Fatalf("count %d, want %d", r.Count(), 10*size)
	}
	if got := len(r.samples); got != size {
		t.Fatalf("reservoir holds %d samples, want bound %d", got, size)
	}
	// Mean stays exact over all samples even though the reservoir is
	// bounded: sum of 1..640 µs / 640 = 320.5 µs.
	if m := r.Mean(); m != 320500*time.Nanosecond {
		t.Fatalf("mean %v, want 320.5µs", m)
	}
	// Percentiles come from the reservoir; they must stay inside the
	// recorded range and keep their ordering.
	p50, p99 := r.Percentile(0.5), r.Percentile(0.99)
	if p50 <= 0 || p99 > 640*time.Microsecond || p99 < p50 {
		t.Fatalf("implausible reservoir percentiles p50=%v p99=%v", p50, p99)
	}
}

func TestPercentileSortIsCached(t *testing.T) {
	r := NewLatencyRecorder()
	for i := 100; i >= 1; i-- {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	if r.Percentile(0.5) != 50*time.Millisecond {
		t.Fatal("wrong p50")
	}
	if !r.sorted {
		t.Fatal("sort not cached after Percentile")
	}
	// Further percentile queries must not dirty the cache; a new Record
	// must.
	r.Percentile(0.99)
	if !r.sorted {
		t.Fatal("cache invalidated by read")
	}
	r.Record(time.Millisecond)
	if r.sorted {
		t.Fatal("cache not invalidated by Record")
	}
}

func TestStageBreakdown(t *testing.T) {
	b := NewStageBreakdown()
	b.Record(StageQueueWait, 4*time.Millisecond)
	b.Record(StageQueueWait, 6*time.Millisecond)
	b.Record(StageForward, 2*time.Millisecond)
	b.Record(Stage(99), time.Second) // out of range: ignored
	s := b.Summarize()
	if s.QueueWait.Count != 2 || s.QueueWait.Mean != 5*time.Millisecond {
		t.Fatalf("queue wait %+v", s.QueueWait)
	}
	if s.Forward.Count != 1 || s.BatchAssembly.Count != 0 || s.Respond.Count != 0 {
		t.Fatalf("stage counts wrong: %+v", s)
	}
	str := s.String()
	for _, want := range []string{"queue_wait", "batch_assembly", "forward", "respond"} {
		if !containsLine(str, want) {
			t.Fatalf("rendered summary missing %q:\n%s", want, str)
		}
	}
}

func containsLine(s, sub string) bool {
	for _, line := range splitLines(s) {
		if len(line) >= len(sub) && line[:len(sub)] == sub {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput()
	tp.Add(10)
	tp.Add(5)
	if tp.Count() != 15 {
		t.Fatalf("count %d", tp.Count())
	}
	time.Sleep(10 * time.Millisecond)
	if r := tp.Rate(); r <= 0 || r > 15/0.01 {
		t.Fatalf("rate %v implausible", r)
	}
}

func TestThroughputReset(t *testing.T) {
	tp := NewThroughput()
	tp.Add(100)
	tp.Reset()
	if tp.Count() != 0 {
		t.Fatalf("count %d after reset", tp.Count())
	}
	if r := tp.RecentRate(time.Second); r != 0 {
		t.Fatalf("recent rate %v after reset", r)
	}
	tp.Add(7)
	if tp.Count() != 7 {
		t.Fatalf("count %d after post-reset add", tp.Count())
	}
}

// fakeClock drives a Throughput through simulated time.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }

func TestThroughputRecentRateSlidesPastOldLoad(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1_000_000, 0)}
	tp := NewThroughput()
	tp.now = clock.now
	tp.start = clock.t

	// A burst of 300 ops over 3 seconds...
	for i := 0; i < 3; i++ {
		tp.Add(100)
		clock.t = clock.t.Add(time.Second)
	}
	if r := tp.RecentRate(3 * time.Second); r < 90 || r > 110 {
		t.Fatalf("recent rate during burst %v, want ~100", r)
	}
	// ...then two minutes of silence: the lifetime average still shows
	// the old load, the sliding window shows none.
	clock.t = clock.t.Add(2 * time.Minute)
	if r := tp.Rate(); r <= 0 {
		t.Fatalf("lifetime rate %v, want > 0", r)
	}
	if r := tp.RecentRate(10 * time.Second); r != 0 {
		t.Fatalf("recent rate after idle period %v, want 0", r)
	}
	// Fresh load dominates the window again.
	tp.Add(50)
	if r := tp.RecentRate(time.Second); r < 40 {
		t.Fatalf("recent rate after fresh load %v, want ~50", r)
	}
}

func TestThroughputRecentRateClampsWindowToElapsed(t *testing.T) {
	clock := &fakeClock{t: time.Unix(2_000_000, 0)}
	tp := NewThroughput()
	tp.now = clock.now
	tp.start = clock.t
	tp.Add(100)
	clock.t = clock.t.Add(2 * time.Second)
	// Only 2s have elapsed; a 60s window must not dilute the rate.
	if r := tp.RecentRate(time.Minute); r < 45 || r > 110 {
		t.Fatalf("clamped recent rate %v, want ~50", r)
	}
}

func TestHistogramBucketsAndSnapshot(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Record(500 * time.Microsecond) // bucket 0 (≤1ms)
	h.Record(time.Millisecond)       // bucket 0 (boundary is inclusive)
	h.Record(2 * time.Millisecond)   // bucket 1 (≤10ms)
	h.Record(time.Second)            // overflow bucket
	s := h.Snapshot()
	if len(s.Counts) != 3 {
		t.Fatalf("bucket count %d, want 3", len(s.Counts))
	}
	if s.Counts[0] != 2 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Fatalf("bucket counts %v", s.Counts)
	}
	if s.Count != 4 {
		t.Fatalf("count %d", s.Count)
	}
	if want := 1003500 * time.Microsecond; s.Sum != want {
		t.Fatalf("sum %v, want %v", s.Sum, want)
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	h := NewHistogram(nil)
	h.Record(time.Millisecond)
	s := h.Snapshot()
	if len(s.Bounds) != len(DefaultLatencyBuckets) || len(s.Counts) != len(s.Bounds)+1 {
		t.Fatalf("default bucket shape: %d bounds, %d counts", len(s.Bounds), len(s.Counts))
	}
}

// TestHistogramConcurrentRecordVsSnapshot interleaves the lock-free
// Record path with Snapshot readers (the admin scraper's view) and
// checks the final snapshot is exact once writers stop. Runs under
// -race via the Makefile race gate.
func TestHistogramConcurrentRecordVsSnapshot(t *testing.T) {
	h := NewHistogram(nil)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var inBuckets int64
			for _, c := range s.Counts {
				inBuckets += c
			}
			// Count is loaded first, before the buckets: every Record
			// Count covers bumped its bucket before bumping count, so
			// the bucket sum may run ahead of Count by in-flight
			// Records, never behind.
			if inBuckets < s.Count {
				t.Errorf("torn snapshot: bucket sum %d < count %d", inBuckets, s.Count)
				return
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(w*per+i) * time.Microsecond)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count %d, want %d", s.Count, workers*per)
	}
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != workers*per {
		t.Fatalf("bucket sum %d, want %d", total, workers*per)
	}
}

func TestStageBreakdownHistogramPath(t *testing.T) {
	b := NewStageBreakdown()
	b.Record(StageForward, 2*time.Millisecond)
	b.Record(StageForward, 30*time.Millisecond)
	b.Record(Stage(99), time.Second) // out of range: ignored
	s := b.HistogramFor(StageForward)
	if s.Count != 2 {
		t.Fatalf("forward histogram count %d", s.Count)
	}
	if empty := b.HistogramFor(StageQueueWait); empty.Count != 0 {
		t.Fatalf("queue histogram count %d, want 0", empty.Count)
	}
	if oob := b.HistogramFor(Stage(99)); oob.Count != 0 || len(oob.Bounds) != 0 {
		t.Fatalf("out-of-range stage returned %+v", oob)
	}
	if len(Stages) != int(numStages) {
		t.Fatalf("Stages lists %d stages, breakdown has %d", len(Stages), numStages)
	}
}

func TestStageSummaryStringRendering(t *testing.T) {
	b := NewStageBreakdown()
	b.Record(StageQueueWait, time.Millisecond)
	b.Record(StageForward, 5*time.Millisecond)
	s := b.Summarize()
	str := s.String()
	// Route is omitted when nothing recorded it (single-server case).
	if containsLine(str, "route") {
		t.Fatalf("route stage rendered with no samples:\n%s", str)
	}
	for _, want := range []string{"queue_wait", "batch_assembly", "forward", "respond"} {
		if !containsLine(str, want) {
			t.Fatalf("summary missing %q:\n%s", want, str)
		}
	}
	b.Record(StageRoute, 2*time.Millisecond)
	str = b.Summarize().String()
	if !containsLine(str, "route") {
		t.Fatalf("route stage missing after recording:\n%s", str)
	}
	if !strings.Contains(str, "n=1 mean=5ms") {
		t.Fatalf("forward summary not rendered:\n%s", str)
	}
}

func TestBackendStatsStringRendering(t *testing.T) {
	var c BackendCounters
	c.Sent()
	c.Sent()
	c.OK()
	c.Failure()
	c.Backpressure()
	c.Slow()
	c.MarkDown()
	c.Probe()
	got := c.Snapshot().String()
	want := "sent=2 ok=1 failures=1 backpressure=1 slow=1 markdowns=1 probes=1"
	if got != want {
		t.Fatalf("backend stats rendering:\n got %q\nwant %q", got, want)
	}
}
