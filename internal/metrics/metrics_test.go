package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestLatencyMeanAndPercentiles(t *testing.T) {
	r := NewLatencyRecorder()
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	if r.Count() != 100 {
		t.Fatalf("count %d", r.Count())
	}
	if m := r.Mean(); m != 50500*time.Microsecond {
		t.Fatalf("mean %v", m)
	}
	if p := r.Percentile(0.50); p != 50*time.Millisecond {
		t.Fatalf("p50 %v", p)
	}
	if p := r.Percentile(0.95); p != 95*time.Millisecond {
		t.Fatalf("p95 %v", p)
	}
	if p := r.Percentile(1.0); p != 100*time.Millisecond {
		t.Fatalf("p100 %v", p)
	}
	if p := r.Percentile(0.001); p != 1*time.Millisecond {
		t.Fatalf("p0.1 %v", p)
	}
}

func TestEmptyRecorder(t *testing.T) {
	r := NewLatencyRecorder()
	if r.Mean() != 0 || r.Percentile(0.5) != 0 || r.Count() != 0 {
		t.Fatal("empty recorder should report zeros")
	}
}

func TestPercentilePanicsOutOfRange(t *testing.T) {
	r := NewLatencyRecorder()
	for _, p := range []float64{0, -1, 1.01} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v) should panic", p)
				}
			}()
			r.Percentile(p)
		}()
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewLatencyRecorder()
		for _, v := range raw {
			r.Record(time.Duration(v) * time.Microsecond)
		}
		last := time.Duration(0)
		for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			q := r.Percentile(p)
			if q < last {
				return false
			}
			last = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewLatencyRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(time.Millisecond)
				r.Percentile(0.5)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 800 {
		t.Fatalf("count %d, want 800", r.Count())
	}
}

func TestSummary(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(time.Millisecond)
	r.Record(3 * time.Millisecond)
	s := r.Summarize()
	if s.Count != 2 || s.Mean != 2*time.Millisecond {
		t.Fatalf("summary %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestReservoirBoundsMemory(t *testing.T) {
	const size = 64
	r := NewLatencyRecorderSize(size)
	for i := 0; i < 10*size; i++ {
		r.Record(time.Duration(i+1) * time.Microsecond)
	}
	if r.Count() != 10*size {
		t.Fatalf("count %d, want %d", r.Count(), 10*size)
	}
	if got := len(r.samples); got != size {
		t.Fatalf("reservoir holds %d samples, want bound %d", got, size)
	}
	// Mean stays exact over all samples even though the reservoir is
	// bounded: sum of 1..640 µs / 640 = 320.5 µs.
	if m := r.Mean(); m != 320500*time.Nanosecond {
		t.Fatalf("mean %v, want 320.5µs", m)
	}
	// Percentiles come from the reservoir; they must stay inside the
	// recorded range and keep their ordering.
	p50, p99 := r.Percentile(0.5), r.Percentile(0.99)
	if p50 <= 0 || p99 > 640*time.Microsecond || p99 < p50 {
		t.Fatalf("implausible reservoir percentiles p50=%v p99=%v", p50, p99)
	}
}

func TestPercentileSortIsCached(t *testing.T) {
	r := NewLatencyRecorder()
	for i := 100; i >= 1; i-- {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	if r.Percentile(0.5) != 50*time.Millisecond {
		t.Fatal("wrong p50")
	}
	if !r.sorted {
		t.Fatal("sort not cached after Percentile")
	}
	// Further percentile queries must not dirty the cache; a new Record
	// must.
	r.Percentile(0.99)
	if !r.sorted {
		t.Fatal("cache invalidated by read")
	}
	r.Record(time.Millisecond)
	if r.sorted {
		t.Fatal("cache not invalidated by Record")
	}
}

func TestStageBreakdown(t *testing.T) {
	b := NewStageBreakdown()
	b.Record(StageQueueWait, 4*time.Millisecond)
	b.Record(StageQueueWait, 6*time.Millisecond)
	b.Record(StageForward, 2*time.Millisecond)
	b.Record(Stage(99), time.Second) // out of range: ignored
	s := b.Summarize()
	if s.QueueWait.Count != 2 || s.QueueWait.Mean != 5*time.Millisecond {
		t.Fatalf("queue wait %+v", s.QueueWait)
	}
	if s.Forward.Count != 1 || s.BatchAssembly.Count != 0 || s.Respond.Count != 0 {
		t.Fatalf("stage counts wrong: %+v", s)
	}
	str := s.String()
	for _, want := range []string{"queue_wait", "batch_assembly", "forward", "respond"} {
		if !containsLine(str, want) {
			t.Fatalf("rendered summary missing %q:\n%s", want, str)
		}
	}
}

func containsLine(s, sub string) bool {
	for _, line := range splitLines(s) {
		if len(line) >= len(sub) && line[:len(sub)] == sub {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput()
	tp.Add(10)
	tp.Add(5)
	if tp.Count() != 15 {
		t.Fatalf("count %d", tp.Count())
	}
	time.Sleep(10 * time.Millisecond)
	if r := tp.Rate(); r <= 0 || r > 15/0.01 {
		t.Fatalf("rate %v implausible", r)
	}
}
