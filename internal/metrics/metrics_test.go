package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestLatencyMeanAndPercentiles(t *testing.T) {
	r := NewLatencyRecorder()
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	if r.Count() != 100 {
		t.Fatalf("count %d", r.Count())
	}
	if m := r.Mean(); m != 50500*time.Microsecond {
		t.Fatalf("mean %v", m)
	}
	if p := r.Percentile(0.50); p != 50*time.Millisecond {
		t.Fatalf("p50 %v", p)
	}
	if p := r.Percentile(0.95); p != 95*time.Millisecond {
		t.Fatalf("p95 %v", p)
	}
	if p := r.Percentile(1.0); p != 100*time.Millisecond {
		t.Fatalf("p100 %v", p)
	}
	if p := r.Percentile(0.001); p != 1*time.Millisecond {
		t.Fatalf("p0.1 %v", p)
	}
}

func TestEmptyRecorder(t *testing.T) {
	r := NewLatencyRecorder()
	if r.Mean() != 0 || r.Percentile(0.5) != 0 || r.Count() != 0 {
		t.Fatal("empty recorder should report zeros")
	}
}

func TestPercentilePanicsOutOfRange(t *testing.T) {
	r := NewLatencyRecorder()
	for _, p := range []float64{0, -1, 1.01} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v) should panic", p)
				}
			}()
			r.Percentile(p)
		}()
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewLatencyRecorder()
		for _, v := range raw {
			r.Record(time.Duration(v) * time.Microsecond)
		}
		last := time.Duration(0)
		for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			q := r.Percentile(p)
			if q < last {
				return false
			}
			last = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewLatencyRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(time.Millisecond)
				r.Percentile(0.5)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 800 {
		t.Fatalf("count %d, want 800", r.Count())
	}
}

func TestSummary(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(time.Millisecond)
	r.Record(3 * time.Millisecond)
	s := r.Summarize()
	if s.Count != 2 || s.Mean != 2*time.Millisecond {
		t.Fatalf("summary %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput()
	tp.Add(10)
	tp.Add(5)
	if tp.Count() != 15 {
		t.Fatalf("count %d", tp.Count())
	}
	time.Sleep(10 * time.Millisecond)
	if r := tp.Rate(); r <= 0 || r > 15/0.01 {
		t.Fatalf("rate %v implausible", r)
	}
}
