// Package pipeline runs a declared DAG of Tonic applications as one
// server-side request. The paper's client drives each app one-shot:
// a composite workload like ASR→POS→NER pays a client round-trip per
// stage and ships intermediate outputs through the front-end twice.
// Here the gateway accepts the whole DAG, dispatches every stage
// through the router/placement tier, and flows stage outputs
// server-side — independent branches (POS and NER both hanging off
// the ASR transcript) run concurrently, and one trace ID threads
// through every stage so the merged timeline shows all hops.
package pipeline

import (
	"context"
	"fmt"
	"image"
	"sort"
	"sync"
	"time"

	"djinn/internal/metrics"
	"djinn/internal/service"
	"djinn/internal/tonic"
	"djinn/internal/trace"
)

// MaxStages bounds a declared DAG so a hostile spec cannot fan one
// HTTP request into unbounded backend work.
const MaxStages = 16

// StageSpec declares one node of the DAG: which Tonic app runs and
// which earlier stages it consumes.
type StageSpec struct {
	// Name identifies the stage inside the spec; defaults to App.
	Name string `json:"name,omitempty"`
	// App is the Tonic service name: asr, pos, chk, ner, imc, face, dig.
	App string `json:"app"`
	// After lists stage names whose outputs this stage consumes. A
	// text stage takes its sentence from the nearest listed upstream
	// that produced text (e.g. an ASR transcript); with no upstream
	// text the request's own text field is used.
	After []string `json:"after,omitempty"`
}

// Spec is a whole pipeline declaration.
type Spec struct {
	Name   string      `json:"name,omitempty"`
	Stages []StageSpec `json:"stages"`
}

// Preset returns a named built-in pipeline. "asr-pos-ner" is the
// canonical speech-understanding composite: transcribe once, then
// part-of-speech and named-entity tag the transcript in parallel.
func Preset(name string) (Spec, bool) {
	switch name {
	case "asr-pos-ner":
		return Spec{
			Name: "asr-pos-ner",
			Stages: []StageSpec{
				{Name: "asr", App: "asr"},
				{Name: "pos", App: "pos", After: []string{"asr"}},
				{Name: "ner", App: "ner", After: []string{"asr"}},
			},
		}, true
	case "asr-chk":
		return Spec{
			Name: "asr-chk",
			Stages: []StageSpec{
				{Name: "asr", App: "asr"},
				{Name: "chk", App: "chk", After: []string{"asr"}},
			},
		}, true
	}
	return Spec{}, false
}

// knownApps is the set of dispatchable Tonic service names.
var knownApps = map[string]bool{
	"asr": true, "pos": true, "chk": true, "ner": true,
	"imc": true, "face": true, "dig": true,
}

// Normalize fills defaulted stage names and validates the spec:
// stage count bound, known apps, unique names, existing dependencies,
// and acyclicity. It returns the normalized copy.
func (s Spec) Normalize() (Spec, error) {
	if len(s.Stages) == 0 {
		return s, fmt.Errorf("pipeline: no stages")
	}
	if len(s.Stages) > MaxStages {
		return s, fmt.Errorf("pipeline: %d stages exceeds limit %d", len(s.Stages), MaxStages)
	}
	out := Spec{Name: s.Name, Stages: make([]StageSpec, len(s.Stages))}
	copy(out.Stages, s.Stages)
	byName := make(map[string]int, len(out.Stages))
	for i := range out.Stages {
		st := &out.Stages[i]
		if !knownApps[st.App] {
			return s, fmt.Errorf("pipeline: stage %d: unknown app %q", i, st.App)
		}
		if st.Name == "" {
			st.Name = st.App
		}
		if _, dup := byName[st.Name]; dup {
			return s, fmt.Errorf("pipeline: duplicate stage name %q", st.Name)
		}
		byName[st.Name] = i
	}
	for i := range out.Stages {
		for _, dep := range out.Stages[i].After {
			j, ok := byName[dep]
			if !ok {
				return s, fmt.Errorf("pipeline: stage %q depends on unknown stage %q", out.Stages[i].Name, dep)
			}
			if j == i {
				return s, fmt.Errorf("pipeline: stage %q depends on itself", out.Stages[i].Name)
			}
		}
	}
	// Kahn's algorithm: every stage must be reachable in dependency
	// order or the spec has a cycle.
	indeg := make([]int, len(out.Stages))
	for i := range out.Stages {
		indeg[i] = len(out.Stages[i].After)
	}
	resolved := 0
	for changed := true; changed; {
		changed = false
		for i := range out.Stages {
			if indeg[i] != 0 {
				continue
			}
			indeg[i] = -1 // visited
			resolved++
			changed = true
			for k := range out.Stages {
				for _, dep := range out.Stages[k].After {
					if byName[dep] == i && indeg[k] > 0 {
						indeg[k]--
					}
				}
			}
		}
	}
	if resolved != len(out.Stages) {
		return s, fmt.Errorf("pipeline: dependency cycle")
	}
	return out, nil
}

// Tagged is one word with its predicted tag, JSON-shaped for the
// gateway's responses.
type Tagged struct {
	Word string `json:"word"`
	Tag  string `json:"tag"`
}

func tagged(ws []tonic.TaggedWord) []Tagged {
	out := make([]Tagged, len(ws))
	for i, w := range ws {
		out[i] = Tagged{Word: w.Word, Tag: w.Tag}
	}
	return out
}

// Value is a stage's output in a shape every Tonic app can project
// into. Text flows transitively: taggers copy their input sentence
// into Text so downstream text stages can chain off any of them.
type Value struct {
	Text   string   `json:"text,omitempty"`
	Words  []Tagged `json:"words,omitempty"`
	Phones []string `json:"phones,omitempty"`
	Frames int      `json:"frames,omitempty"`
	Class  int      `json:"class,omitempty"`
	Label  string   `json:"label,omitempty"`
	Prob   float32  `json:"prob,omitempty"`
	Digits []int    `json:"digits,omitempty"`
}

// Input carries the request-level payloads stages draw from.
type Input struct {
	Text   string
	Audio  []float64 // 16 kHz mono samples in [-1, 1]
	Image  image.Image
	Digits [][]float32 // 28×28 rows for DIG
}

// StageResult is one executed stage.
type StageResult struct {
	Name   string        `json:"name"`
	App    string        `json:"app"`
	Dur    time.Duration `json:"dur_ns"`
	Output Value         `json:"output"`
}

// Result is one executed pipeline. Output is the last declared
// stage's value.
type Result struct {
	Pipeline string        `json:"pipeline,omitempty"`
	TraceID  string        `json:"trace_id,omitempty"`
	Dur      time.Duration `json:"dur_ns"`
	Stages   []StageResult `json:"stages"`
	Output   Value         `json:"output"`
}

// Bind adapts a context-aware backend to the plain tonic Backend
// interface, threading ctx (deadline + trace ID) through every Infer
// a Tonic app issues.
func Bind(ctx context.Context, b service.ContextBackend) service.Backend {
	return boundBackend{ctx: ctx, b: b}
}

type boundBackend struct {
	ctx context.Context
	b   service.ContextBackend
}

func (bb boundBackend) Infer(app string, in []float32) ([]float32, error) {
	return bb.b.InferCtx(bb.ctx, app, in)
}

// Runner executes pipeline specs against one backend (typically the
// router fleet). Safe for concurrent use.
type Runner struct {
	backend service.ContextBackend
	traces  *trace.Store

	mu        sync.Mutex
	runs      int64
	errors    int64
	stageRuns map[string]int64 // by app
	stageErrs map[string]int64 // by app
	e2e       *metrics.Histogram
}

// NewRunner builds a runner dispatching through b; traces may be nil.
func NewRunner(b service.ContextBackend, traces *trace.Store) *Runner {
	return &Runner{
		backend:   b,
		traces:    traces,
		stageRuns: make(map[string]int64),
		stageErrs: make(map[string]int64),
		e2e:       metrics.NewHistogram(nil),
	}
}

type stageState struct {
	spec StageSpec
	deps []*stageState
	done chan struct{}
	out  Value
	dur  time.Duration
	err  error
}

// Run executes spec (already normalized or normalizable) over in.
// Stages run as soon as their dependencies finish; the first stage
// error cancels the rest and becomes the pipeline error.
func (r *Runner) Run(ctx context.Context, spec Spec, in Input) (*Result, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	states := make([]*stageState, len(spec.Stages))
	byName := make(map[string]*stageState, len(spec.Stages))
	for i, st := range spec.Stages {
		states[i] = &stageState{spec: st, done: make(chan struct{})}
		byName[st.Name] = states[i]
	}
	for _, s := range states {
		for _, dep := range s.spec.After {
			s.deps = append(s.deps, byName[dep])
		}
	}

	id := trace.IDFrom(ctx)
	var wg sync.WaitGroup
	for _, s := range states {
		wg.Add(1)
		go func(s *stageState) {
			defer wg.Done()
			defer close(s.done)
			for _, dep := range s.deps {
				<-dep.done
				if dep.err != nil {
					s.err = fmt.Errorf("stage %s: upstream %s: %w", s.spec.Name, dep.spec.Name, dep.err)
					return
				}
			}
			t0 := time.Now()
			s.out, s.err = r.runStage(ctx, s, in)
			s.dur = time.Since(t0)
			if id != "" && r.traces != nil {
				note := "app=" + s.spec.App
				if s.err != nil {
					note += " err=" + s.err.Error()
				}
				r.traces.Add(id, trace.Span{
					Name: "stage:" + s.spec.Name, Note: note,
					Start: t0, Dur: s.dur,
				})
			}
			r.mu.Lock()
			r.stageRuns[s.spec.App]++
			if s.err != nil {
				r.stageErrs[s.spec.App]++
			}
			r.mu.Unlock()
			if s.err != nil {
				cancel() // abort sibling branches promptly
			}
		}(s)
	}
	wg.Wait()

	dur := time.Since(start)
	res := &Result{Pipeline: spec.Name, TraceID: id, Dur: dur, Stages: make([]StageResult, len(states))}
	var firstErr error
	for i, s := range states {
		res.Stages[i] = StageResult{Name: s.spec.Name, App: s.spec.App, Dur: s.dur, Output: s.out}
		if s.err != nil && firstErr == nil {
			firstErr = s.err
		}
	}
	res.Output = res.Stages[len(res.Stages)-1].Output

	r.mu.Lock()
	r.runs++
	if firstErr != nil {
		r.errors++
	}
	r.mu.Unlock()
	r.e2e.Record(dur)
	if id != "" && r.traces != nil {
		r.traces.Add(id, trace.Span{
			Name: "pipeline", Note: fmt.Sprintf("spec=%s stages=%d", spec.Name, len(states)),
			Start: start, Dur: dur,
		})
	}
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

// runStage dispatches one stage's Tonic app with its resolved input:
// the request payloads, with text rebound to the nearest upstream
// transcript when one exists.
func (r *Runner) runStage(ctx context.Context, s *stageState, in Input) (Value, error) {
	if t := s.textInput(in); t != "" {
		in.Text = t
	}
	return RunApp(ctx, r.backend, s.spec.App, in)
}

// RunApp dispatches one Tonic app over in through a context-aware
// backend: the single-stage primitive the gateway's /v1/infer and
// every pipeline stage share.
func RunApp(ctx context.Context, backend service.ContextBackend, app string, in Input) (Value, error) {
	b := Bind(ctx, backend)
	switch app {
	case "asr":
		if len(in.Audio) == 0 {
			return Value{}, fmt.Errorf("app %s needs audio input", app)
		}
		t, err := tonic.NewASR(b).Transcribe(in.Audio)
		if err != nil {
			return Value{}, err
		}
		return Value{Text: t.Text, Phones: t.Phones, Frames: t.Frames}, nil
	case "pos", "chk", "ner":
		if in.Text == "" {
			return Value{}, fmt.Errorf("app %s needs text input (request text or upstream transcript)", app)
		}
		var (
			ws  []tonic.TaggedWord
			err error
		)
		switch app {
		case "pos":
			ws, err = tonic.NewPOS(b).Tag(in.Text)
		case "chk":
			ws, err = tonic.NewCHK(b).Chunk(in.Text)
		case "ner":
			ws, err = tonic.NewNER(b).Recognize(in.Text)
		}
		if err != nil {
			return Value{}, err
		}
		return Value{Text: in.Text, Words: tagged(ws)}, nil
	case "imc", "face":
		if in.Image == nil {
			return Value{}, fmt.Errorf("app %s needs image input", app)
		}
		var (
			p   tonic.Prediction
			err error
		)
		if app == "imc" {
			p, err = tonic.NewIMC(b).Classify(in.Image)
		} else {
			p, err = tonic.NewFACE(b).Identify(in.Image)
		}
		if err != nil {
			return Value{}, err
		}
		return Value{Class: p.Class, Label: p.Label, Prob: p.Prob}, nil
	case "dig":
		if len(in.Digits) == 0 {
			return Value{}, fmt.Errorf("app %s needs digits input", app)
		}
		preds, err := tonic.NewDIG(b).Recognize(in.Digits)
		if err != nil {
			return Value{}, err
		}
		ds := make([]int, len(preds))
		for i, p := range preds {
			ds[i] = p.Class
		}
		return Value{Digits: ds}, nil
	}
	return Value{}, fmt.Errorf("unknown app %q", app)
}

// textInput resolves a text stage's sentence: the nearest declared
// upstream that produced text wins, else the request text.
func (s *stageState) textInput(in Input) string {
	for _, dep := range s.deps {
		if dep.out.Text != "" {
			return dep.out.Text
		}
	}
	return in.Text
}

// Stats is a point-in-time runner counters snapshot.
type Stats struct {
	Runs      int64            `json:"runs"`
	Errors    int64            `json:"errors"`
	StageRuns map[string]int64 `json:"stage_runs"`
	StageErrs map[string]int64 `json:"stage_errors,omitempty"`
	E2E       metrics.HistogramSnapshot
}

// Stats snapshots the counters.
func (r *Runner) Stats() Stats {
	r.mu.Lock()
	st := Stats{
		Runs:      r.runs,
		Errors:    r.errors,
		StageRuns: make(map[string]int64, len(r.stageRuns)),
		StageErrs: make(map[string]int64, len(r.stageErrs)),
	}
	for k, v := range r.stageRuns {
		st.StageRuns[k] = v
	}
	for k, v := range r.stageErrs {
		st.StageErrs[k] = v
	}
	r.mu.Unlock()
	st.E2E = r.e2e.Snapshot()
	return st
}

// StageApps lists the apps the runner has dispatched, sorted, for
// stable metrics rendering.
func (st Stats) StageApps() []string {
	apps := make([]string, 0, len(st.StageRuns))
	for a := range st.StageRuns {
		apps = append(apps, a)
	}
	sort.Strings(apps)
	return apps
}
