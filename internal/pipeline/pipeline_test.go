package pipeline

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"djinn/internal/models"
	"djinn/internal/service"
	"djinn/internal/tonic"
	"djinn/internal/trace"
)

func TestNormalize(t *testing.T) {
	tests := []struct {
		name    string
		spec    Spec
		wantErr string
	}{
		{
			name: "valid chain",
			spec: Spec{Stages: []StageSpec{
				{Name: "a", App: "pos"},
				{Name: "b", App: "ner", After: []string{"a"}},
			}},
		},
		{
			name:    "empty",
			spec:    Spec{},
			wantErr: "stage",
		},
		{
			name: "duplicate names",
			spec: Spec{Stages: []StageSpec{
				{Name: "a", App: "pos"},
				{Name: "a", App: "ner"},
			}},
			wantErr: "duplicate",
		},
		{
			name:    "unknown app",
			spec:    Spec{Stages: []StageSpec{{Name: "a", App: "nope"}}},
			wantErr: "unknown app",
		},
		{
			name: "missing dependency",
			spec: Spec{Stages: []StageSpec{
				{Name: "a", App: "pos", After: []string{"ghost"}},
			}},
			wantErr: "ghost",
		},
		{
			name: "cycle",
			spec: Spec{Stages: []StageSpec{
				{Name: "a", App: "pos", After: []string{"b"}},
				{Name: "b", App: "ner", After: []string{"a"}},
			}},
			wantErr: "cycle",
		},
		{
			name: "self cycle",
			spec: Spec{Stages: []StageSpec{
				{Name: "a", App: "pos", After: []string{"a"}},
			}},
			wantErr: "depends on itself",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.spec.Normalize()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestNormalizeDefaultsNames(t *testing.T) {
	spec := Spec{Stages: []StageSpec{{App: "pos"}, {App: "ner"}}}
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, st := range norm.Stages {
		if st.Name == "" {
			t.Fatal("normalised stage with empty name")
		}
		if names[st.Name] {
			t.Fatalf("defaulted names collide: %q", st.Name)
		}
		names[st.Name] = true
	}
}

func TestNormalizeTooManyStages(t *testing.T) {
	spec := Spec{}
	for i := 0; i <= MaxStages; i++ {
		spec.Stages = append(spec.Stages, StageSpec{App: "pos"})
	}
	if _, err := spec.Normalize(); err == nil {
		t.Fatalf("accepted %d stages, max is %d", len(spec.Stages), MaxStages)
	}
}

func TestPresets(t *testing.T) {
	for _, name := range []string{"asr-pos-ner", "asr-chk"} {
		spec, ok := Preset(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		if _, err := spec.Normalize(); err != nil {
			t.Fatalf("preset %q does not normalise: %v", name, err)
		}
		if spec.Stages[0].App != "asr" {
			t.Errorf("preset %q should start from asr", name)
		}
	}
	if _, ok := Preset("no-such"); ok {
		t.Error("unknown preset reported as found")
	}
}

// newTaggerBackend boots one in-process replica with the SENNA
// taggers registered.
func newTaggerBackend(t *testing.T) *service.Server {
	t.Helper()
	srv := service.NewServer()
	srv.SetLogger(func(string, ...any) {})
	t.Cleanup(srv.Close)
	for _, a := range []models.App{models.POS, models.NER} {
		if err := tonic.Register(srv, a); err != nil {
			t.Fatal(err)
		}
	}
	return srv
}

func TestRunExecutesDAGAndFlowsText(t *testing.T) {
	srv := newTaggerBackend(t)
	store := trace.NewStore("test", 0)
	r := NewRunner(srv, store)
	ctx := trace.WithID(context.Background(), trace.NewID())
	spec := Spec{Name: "tag-then-rec", Stages: []StageSpec{
		{Name: "tag", App: "pos"},
		{Name: "rec", App: "ner", After: []string{"tag"}},
	}}
	res, err := r.Run(ctx, spec, Input{Text: "barack obama visited paris today"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 2 {
		t.Fatalf("want 2 stage results, got %d", len(res.Stages))
	}
	if len(res.Stages[0].Output.Words) == 0 {
		t.Error("pos stage produced no tagged words")
	}
	// The tagger copies its input sentence into Text so downstream
	// stages see the same transcript.
	if res.Stages[0].Output.Text != "barack obama visited paris today" {
		t.Errorf("stage text = %q, want input sentence", res.Stages[0].Output.Text)
	}
	if len(res.Stages[1].Output.Words) == 0 {
		t.Error("ner stage produced no recognised words")
	}
	for _, st := range res.Stages {
		if st.Dur <= 0 {
			t.Errorf("stage %s reported dur %v, want > 0", st.Name, st.Dur)
		}
	}
	if res.Output.Text != res.Stages[1].Output.Text {
		t.Error("Result.Output should be the last declared stage's value")
	}
	tr, ok := store.Get(res.TraceID)
	if !ok {
		t.Fatal("no trace recorded")
	}
	var stages, pipelines int
	for _, sp := range tr.Spans {
		if strings.HasPrefix(sp.Name, "stage:") {
			stages++
		}
		if sp.Name == "pipeline" {
			pipelines++
		}
	}
	if stages != 2 || pipelines != 1 {
		t.Errorf("trace has %d stage spans / %d pipeline spans, want 2 / 1", stages, pipelines)
	}
}

func TestRunParallelBranches(t *testing.T) {
	srv := newTaggerBackend(t)
	r := NewRunner(srv, nil)
	spec := Spec{Stages: []StageSpec{
		{Name: "tag", App: "pos"},
		{Name: "rec", App: "ner"}, // no deps: runs concurrently with tag
	}}
	res, err := r.Run(context.Background(), spec, Input{Text: "alice met bob in london"})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Stages {
		if len(st.Output.Words) == 0 {
			t.Errorf("stage %s produced no output", st.Name)
		}
	}
	st := r.Stats()
	if st.Runs != 1 || st.Errors != 0 {
		t.Errorf("stats = %+v, want 1 run / 0 errors", st)
	}
}

// failingBackend fails every inference; downstream stages must see
// the upstream error instead of running.
type failingBackend struct {
	calls atomic.Int64
}

func (b *failingBackend) Infer(string, []float32) ([]float32, error) {
	b.calls.Add(1)
	return nil, errors.New("engine down")
}

func (b *failingBackend) InferCtx(context.Context, string, []float32) ([]float32, error) {
	return b.Infer("", nil)
}

func TestRunPropagatesUpstreamErrors(t *testing.T) {
	b := &failingBackend{}
	r := NewRunner(b, nil)
	spec := Spec{Stages: []StageSpec{
		{Name: "tag", App: "pos"},
		{Name: "rec", App: "ner", After: []string{"tag"}},
	}}
	_, err := r.Run(context.Background(), spec, Input{Text: "some words here"})
	if err == nil {
		t.Fatal("want error from failing backend")
	}
	if !strings.Contains(err.Error(), "engine down") {
		t.Errorf("error %v should carry the stage failure", err)
	}
	st := r.Stats()
	if st.Errors != 1 {
		t.Errorf("stats = %+v, want 1 errored run", st)
	}
	if st.StageErrs["ner"] != 0 {
		t.Error("downstream stage should be skipped, not counted as its own error")
	}
}

func TestRunAppUnknown(t *testing.T) {
	srv := newTaggerBackend(t)
	if _, err := RunApp(context.Background(), srv, "nope", Input{Text: "x"}); err == nil {
		t.Fatal("unknown app must error")
	}
}

func TestRunAppMissingPayload(t *testing.T) {
	srv := newTaggerBackend(t)
	if _, err := RunApp(context.Background(), srv, "pos", Input{}); err == nil {
		t.Fatal("pos with no text must error")
	}
}
