package gateway

import (
	"strings"
	"testing"

	"djinn/internal/service"
)

// FuzzParseInferRequest throws arbitrary bodies at the strict JSON
// parser: it must never panic, and accepted requests must satisfy the
// parser's documented invariants.
func FuzzParseInferRequest(f *testing.F) {
	seeds := []string{
		`{"app":"pos","text":"the quick brown fox"}`,
		`{"app":"asr","audio":"AAAA"}`,
		`{"app":"asr","audio":"!!not-base64!!"}`,
		`{"app":"imc","image":"iVBORw0KGgo="}`,
		`{"app":"dig","digits":[[0.1,0.2]]}`,
		`{"app":"pos","app":"ner","text":"dup"}`,        // duplicate field
		`{"app":"pos","text":"x","text":"y"}`,           // duplicate payload
		`{"app":"pos","text":"x","bogus":true}`,         // unknown field
		`{"app":"pos","text":"x"}{"trailing":1}`,        // trailing content
		`{"app":"pos","text":"x","deadline_ms":-1}`,     // negative deadline
		`{"app":"pos","text":"x","audio":"AAAA"}`,       // two payloads
		`{"app":"` + strings.Repeat("a", 300) + `"}`,    // oversized app name
		`{"nested":{"a":{"b":{"c":{"d":1}}}},"app":""}`, // depth
		`{"app":"POS ","text":"x"}`,                     // needs normalisation
		`[1,2,3]`, `null`, `""`, `{`, ``, `{"app":7}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := parseInferRequest(data)
		if err != nil {
			return
		}
		if req.App == "" {
			t.Fatalf("accepted request with empty app: %q", data)
		}
		if len(req.App) > service.MaxAppNameLen {
			t.Fatalf("accepted over-long app name (%d bytes): %q", len(req.App), data)
		}
		if req.App != strings.ToLower(strings.TrimSpace(req.App)) {
			t.Fatalf("accepted non-normalised app name %q", req.App)
		}
		if req.DeadlineMS < 0 {
			t.Fatalf("accepted negative deadline: %q", data)
		}
		payloads := 0
		if req.Text != "" {
			payloads++
		}
		if req.Audio != "" {
			payloads++
		}
		if req.Image != "" {
			payloads++
		}
		if len(req.Digits) > 0 {
			payloads++
		}
		if payloads > 1 {
			t.Fatalf("accepted request with %d payload fields: %q", payloads, data)
		}
	})
}

// FuzzParsePipelineRequest exercises the pipeline body parser and the
// spec normaliser behind it.
func FuzzParsePipelineRequest(f *testing.F) {
	seeds := []string{
		`{"pipeline":"asr-pos-ner","audio":"AAAA"}`,
		`{"stages":[{"name":"a","app":"pos"}],"text":"x"}`,
		`{"stages":[{"name":"a","app":"pos","after":["b"]},{"name":"b","app":"ner","after":["a"]}],"text":"x"}`,
		`{"pipeline":"asr-pos-ner","stages":[{"app":"pos"}],"text":"x"}`, // both given
		`{"text":"x"}`, // neither given
		`{"stages":[],"text":"x"}`,
		`{"pipeline":"asr-pos-ner","pipeline":"asr-chk","text":"x"}`,
		`{"stages":[{"name":"a","app":"pos"},{"name":"a","app":"ner"}],"text":"x"}`, // dup names
		`{`, ``, `null`, `[1]`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := parsePipelineRequest(data)
		if err != nil {
			return
		}
		if req.Pipeline == "" && len(req.Stages) == 0 {
			t.Fatalf("accepted request naming no pipeline and no stages: %q", data)
		}
		if req.Pipeline != "" && len(req.Stages) > 0 {
			t.Fatalf("accepted request naming both a preset and inline stages: %q", data)
		}
	})
}

// FuzzDecodePCM16 checks the audio codec never panics and enforces
// the even-length invariant.
func FuzzDecodePCM16(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x80})
	f.Add([]byte{0xff, 0x7f, 0x01})
	f.Fuzz(func(t *testing.T, raw []byte) {
		signal, err := DecodePCM16(raw)
		if len(raw)%2 != 0 {
			if err == nil {
				t.Fatalf("odd-length input (%d bytes) accepted", len(raw))
			}
			return
		}
		if err != nil {
			t.Fatalf("even-length input rejected: %v", err)
		}
		if len(signal) != len(raw)/2 {
			t.Fatalf("decoded %d samples from %d bytes", len(signal), len(raw))
		}
		for i, s := range signal {
			if s < -1.001 || s > 1.001 {
				t.Fatalf("sample %d out of range: %f", i, s)
			}
		}
	})
}
