// Content-addressed response cache for the gateway tier.
//
// The key is a hash of app@version plus the canonical input (the
// post-normalisation payload the engine would see), so two requests
// that differ only in JSON formatting or base64 padding hit the same
// entry, and a model version bump invalidates the whole app's entries
// without a scan. Entries hold the serialized result bytes; the cache
// never stores request payloads. Capacity is a byte budget enforced by
// LRU eviction, staleness by a TTL, and concurrent misses for one key
// are collapsed into a single backend fill (singleflight) so a burst
// of identical queries costs one forward pass.
package gateway

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"time"
)

// CacheConfig sizes the response cache.
type CacheConfig struct {
	// Budget is the total byte budget for cached response bodies.
	// Zero means DefaultCacheBudget; negative disables the cache.
	Budget int64
	// TTL bounds entry staleness. Zero means DefaultCacheTTL;
	// negative means entries never expire.
	TTL time.Duration
	// Now is the clock; nil means time.Now. Tests inject a fake.
	Now func() time.Time
}

const (
	// DefaultCacheBudget is the response-cache byte budget when the
	// config leaves it zero: 64 MB, a few hundred thousand NLP
	// responses.
	DefaultCacheBudget = 64 << 20
	// DefaultCacheTTL bounds how stale a cached response may be.
	DefaultCacheTTL = 10 * time.Minute
)

// CacheKey hashes app@version plus the canonical input bytes into the
// cache's content address.
func CacheKey(appVersion string, canonical []byte) string {
	h := sha256.New()
	h.Write([]byte(appVersion))
	h.Write([]byte{0})
	h.Write(canonical)
	return hex.EncodeToString(h.Sum(nil))
}

type cacheEntry struct {
	key     string
	val     []byte
	expires time.Time // zero = never
}

type cacheFill struct {
	done chan struct{}
	val  []byte
	err  error
}

// Cache is the byte-budgeted LRU + TTL response cache with
// singleflight fills. The zero value is not usable; use NewCache.
type Cache struct {
	budget int64
	ttl    time.Duration
	now    func() time.Time

	mu      sync.Mutex
	lru     *list.List // front = most recent; values are *cacheEntry
	entries map[string]*list.Element
	fills   map[string]*cacheFill
	bytes   int64

	hits      int64
	misses    int64
	fillOK    int64
	fillErr   int64
	dedup     int64 // waiters that piggybacked on an in-flight fill
	evictions int64
	expired   int64
}

// NewCache builds a cache from the config; returns nil (a disabled
// cache — every method nil-safe) when the budget is negative.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.Budget < 0 {
		return nil
	}
	if cfg.Budget == 0 {
		cfg.Budget = DefaultCacheBudget
	}
	if cfg.TTL == 0 {
		cfg.TTL = DefaultCacheTTL
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Cache{
		budget:  cfg.Budget,
		ttl:     cfg.TTL,
		now:     cfg.Now,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
		fills:   make(map[string]*cacheFill),
	}
}

// Get returns the cached bytes for key, or ok=false on miss/expiry.
// The returned slice is shared; callers must not mutate it.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.removeLocked(el)
		c.expired++
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return e.val, true
}

// Do returns the cached bytes for key, filling via fn on a miss.
// Concurrent callers for the same key share one fn call; the losers
// block until the winner's fill completes. A failed fill is not
// cached — the next caller retries. fn runs without the cache lock
// held, so fills for different keys proceed in parallel.
func (c *Cache) Do(key string, fn func() ([]byte, error)) (val []byte, cached bool, err error) {
	if c == nil {
		v, err := fn()
		return v, false, err
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		if e.expires.IsZero() || !c.now().After(e.expires) {
			c.lru.MoveToFront(el)
			c.hits++
			c.mu.Unlock()
			return e.val, true, nil
		}
		c.removeLocked(el)
		c.expired++
	}
	c.misses++
	if f, ok := c.fills[key]; ok {
		c.dedup++
		c.mu.Unlock()
		<-f.done
		// A deduplicated waiter reports cached=true only in stats
		// terms of "did not pay a forward pass"; callers that care
		// about span naming treat dedup as a fill they waited on.
		return f.val, f.err == nil, f.err
	}
	f := &cacheFill{done: make(chan struct{})}
	c.fills[key] = f
	c.mu.Unlock()

	f.val, f.err = fn()

	c.mu.Lock()
	delete(c.fills, key)
	if f.err == nil {
		c.insertLocked(key, f.val)
		c.fillOK++
	} else {
		c.fillErr++
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// Put inserts val under key unconditionally (outside the singleflight
// path); used by tests and warm-fill tooling.
func (c *Cache) Put(key string, val []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.removeLocked(el)
	}
	c.insertLocked(key, val)
}

func (c *Cache) insertLocked(key string, val []byte) {
	if int64(len(val)) > c.budget {
		return // larger than the whole budget: not cacheable
	}
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	e := &cacheEntry{key: key, val: val, expires: expires}
	c.entries[key] = c.lru.PushFront(e)
	c.bytes += int64(len(val))
	for c.bytes > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
	}
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= int64(len(e.val))
}

// Invalidate drops every cached entry (e.g. after a model promote).
func (c *Cache) Invalidate() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.entries = make(map[string]*list.Element)
	c.bytes = 0
}

// CacheStats is a point-in-time cache counters snapshot.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Budget    int64 `json:"budget"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Fills     int64 `json:"fills"`
	FillErrs  int64 `json:"fill_errors"`
	Dedup     int64 `json:"dedup"`
	Evictions int64 `json:"evictions"`
	Expired   int64 `json:"expired"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		Budget:    c.budget,
		Hits:      c.hits,
		Misses:    c.misses,
		Fills:     c.fillOK,
		FillErrs:  c.fillErr,
		Dedup:     c.dedup,
		Evictions: c.evictions,
		Expired:   c.expired,
	}
}
