package gateway

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"djinn/internal/models"
	"djinn/internal/service"
	"djinn/internal/tonic"
)

// errBackend returns a fixed error from every inference, for testing
// the error → status mapping without a real engine.
type errBackend struct{ err error }

func (b errBackend) Infer(string, []float32) ([]float32, error) { return nil, b.err }
func (b errBackend) InferCtx(context.Context, string, []float32) ([]float32, error) {
	return nil, b.err
}

// newNLPGateway boots a gateway over one in-process replica serving
// the SENNA taggers (tiny models, fast to register).
func newNLPGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	srv := service.NewServer()
	srv.SetLogger(func(string, ...any) {})
	t.Cleanup(srv.Close)
	for _, a := range []models.App{models.POS, models.NER} {
		if err := tonic.Register(srv, a); err != nil {
			t.Fatal(err)
		}
	}
	cfg.Backend = srv
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return gw
}

func postJSON(gw *Gateway, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	gw.ServeHTTP(w, req)
	return w
}

func TestGatewayStatusMapping(t *testing.T) {
	gw := newNLPGateway(t, Config{BodyLimit: 256})
	tests := []struct {
		name string
		path string
		body string
		want int
	}{
		{"ok", "/v1/infer", `{"app":"pos","text":"the quick brown fox"}`, 200},
		{"malformed json", "/v1/infer", `{"app":`, 400},
		{"duplicate field", "/v1/infer", `{"app":"pos","app":"ner","text":"x"}`, 400},
		{"unknown field", "/v1/infer", `{"app":"pos","text":"x","bogus":1}`, 400},
		{"trailing content", "/v1/infer", `{"app":"pos","text":"x"}{"more":1}`, 400},
		{"missing payload", "/v1/infer", `{"app":"pos"}`, 400},
		{"wrong payload kind", "/v1/infer", `{"app":"pos","audio":"AAAA"}`, 400},
		{"bad base64", "/v1/infer", `{"app":"asr","audio":"!!not-base64!!"}`, 400},
		{"negative deadline", "/v1/infer", `{"app":"pos","text":"x","deadline_ms":-5}`, 400},
		{"unknown app", "/v1/infer", `{"app":"nope","text":"x"}`, 404},
		{"oversized body", "/v1/infer", `{"app":"pos","text":"` + strings.Repeat("a", 300) + `"}`, 413},
		{"unknown preset", "/v1/pipeline", `{"pipeline":"no-such","text":"x"}`, 404},
		{"pipeline cycle", "/v1/pipeline", `{"stages":[{"name":"a","app":"pos","after":["b"]},{"name":"b","app":"ner","after":["a"]}],"text":"x"}`, 400},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			w := postJSON(gw, tc.path, tc.body, nil)
			if w.Code != tc.want {
				t.Errorf("status = %d, want %d (body %s)", w.Code, tc.want, w.Body.String())
			}
		})
	}
	if w := httptest.NewRecorder(); true {
		req := httptest.NewRequest(http.MethodGet, "/v1/infer", nil)
		gw.ServeHTTP(w, req)
		if w.Code != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/infer = %d, want 405", w.Code)
		}
	}
}

func TestGatewayBackendErrorMapping(t *testing.T) {
	tests := []struct {
		err  error
		want int
	}{
		{service.ErrOverloaded, 503},
		{service.ErrShuttingDown, 503},
		{fmt.Errorf("wrap: %w", service.ErrDeadlineExceeded), 504},
		{fmt.Errorf("wrap: %w", service.ErrTransport), 502},
		{fmt.Errorf("some other failure"), 500},
	}
	for _, tc := range tests {
		gw, err := New(Config{Backend: errBackend{tc.err}})
		if err != nil {
			t.Fatal(err)
		}
		w := postJSON(gw, "/v1/infer", `{"app":"pos","text":"x","no_cache":true}`, nil)
		if w.Code != tc.want {
			t.Errorf("%v → status %d, want %d", tc.err, w.Code, tc.want)
		}
		if tc.want == 503 && w.Header().Get("Retry-After") == "" {
			t.Errorf("%v → 503 without Retry-After", tc.err)
		}
	}
}

func TestGatewayRateLimit(t *testing.T) {
	gw := newNLPGateway(t, Config{Limit: LimitConfig{Rate: 1, Burst: 2}})
	body := `{"app":"pos","text":"the quick brown fox"}`
	hdr := map[string]string{"X-API-Key": "tenant-a"}
	for i := 0; i < 2; i++ {
		if w := postJSON(gw, "/v1/infer", body, hdr); w.Code != 200 {
			t.Fatalf("request %d within burst: status %d (%s)", i, w.Code, w.Body.String())
		}
	}
	w := postJSON(gw, "/v1/infer", body, hdr)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-burst request: status %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	// A different tenant is unaffected.
	if w := postJSON(gw, "/v1/infer", body, map[string]string{"X-API-Key": "tenant-b"}); w.Code != 200 {
		t.Errorf("other tenant: status %d, want 200", w.Code)
	}
}

func TestGatewayCacheHitHasDistinctCacheSpan(t *testing.T) {
	gw := newNLPGateway(t, Config{})
	body := `{"app":"pos","text":"the quick brown fox jumps"}`

	first := postJSON(gw, "/v1/infer", body, nil)
	if first.Code != 200 {
		t.Fatalf("first request: status %d (%s)", first.Code, first.Body.String())
	}
	var r1, r2 struct {
		Cached  bool            `json:"cached"`
		TraceID string          `json:"trace_id"`
		Result  json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(first.Body.Bytes(), &r1); err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first request must miss the cache")
	}

	second := postJSON(gw, "/v1/infer", body, nil)
	if err := json.Unmarshal(second.Body.Bytes(), &r2); err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("identical second request must be served from cache")
	}
	if !bytes.Equal(r1.Result, r2.Result) {
		t.Error("cached response body differs from the original")
	}

	tr, ok := gw.Traces().Get(r2.TraceID)
	if !ok {
		t.Fatalf("no trace recorded for cached request %s", r2.TraceID)
	}
	var sawCache bool
	for _, sp := range tr.Spans {
		switch sp.Name {
		case "cache":
			sawCache = true
			if !strings.Contains(sp.Note, "hit") {
				t.Errorf("cache span note %q should mark the hit", sp.Note)
			}
		case "forward", "cache_fill":
			t.Errorf("cache-hit trace must not contain a synthetic %s span", sp.Name)
		}
	}
	if !sawCache {
		t.Errorf("cache-hit trace missing the distinct cache span: %+v", tr.Spans)
	}

	// no_cache bypasses the hit path entirely.
	var r3 struct {
		Cached bool `json:"cached"`
	}
	third := postJSON(gw, "/v1/infer", `{"app":"pos","text":"the quick brown fox jumps","no_cache":true}`, nil)
	if err := json.Unmarshal(third.Body.Bytes(), &r3); err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Error("no_cache request reported cached=true")
	}
}

func TestGatewayCacheToggleEndpoint(t *testing.T) {
	gw := newNLPGateway(t, Config{})
	if w := postJSON(gw, "/v1/cache", `{"app":"pos","enabled":false}`, nil); w.Code != 200 {
		t.Fatalf("toggle off: status %d (%s)", w.Code, w.Body.String())
	}
	body := `{"app":"pos","text":"toggle test sentence"}`
	postJSON(gw, "/v1/infer", body, nil)
	w := postJSON(gw, "/v1/infer", body, nil)
	var r struct {
		Cached bool `json:"cached"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if r.Cached {
		t.Error("cache disabled for pos but repeat request was served cached")
	}
	if w := postJSON(gw, "/v1/cache", `{"app":"nope","enabled":true}`, nil); w.Code != 404 {
		t.Errorf("toggling unknown app: status %d, want 404", w.Code)
	}
}

func TestGatewayAudioRoundTrip(t *testing.T) {
	signal := []float64{0, 0.5, -0.5, 1, -1, 0.25}
	raw := EncodePCM16(signal)
	back, err := DecodePCM16(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(signal) {
		t.Fatalf("round trip length %d, want %d", len(back), len(signal))
	}
	for i := range back {
		if diff := back[i] - signal[i]; diff > 1e-3 || diff < -1e-3 {
			t.Errorf("sample %d: %f vs %f", i, back[i], signal[i])
		}
	}
	if _, err := DecodePCM16([]byte{1, 2, 3}); err == nil {
		t.Error("odd-length PCM must error")
	}
	_ = base64.StdEncoding // keep import symmetry with the wire format
}

func TestGatewayPipelineEndpoint(t *testing.T) {
	gw := newNLPGateway(t, Config{})
	body := `{"stages":[{"name":"tag","app":"pos"},{"name":"rec","app":"ner","after":["tag"]}],"text":"barack obama visited paris"}`
	w := postJSON(gw, "/v1/pipeline", body, nil)
	if w.Code != 200 {
		t.Fatalf("pipeline: status %d (%s)", w.Code, w.Body.String())
	}
	var r struct {
		TraceID string `json:"trace_id"`
		Stages  []struct {
			Name string `json:"name"`
			App  string `json:"app"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if len(r.Stages) != 2 {
		t.Fatalf("want 2 stage results, got %d", len(r.Stages))
	}
	tr, ok := gw.Traces().Get(r.TraceID)
	if !ok {
		t.Fatalf("no trace for pipeline %s", r.TraceID)
	}
	var stageSpans int
	for _, sp := range tr.Spans {
		if strings.HasPrefix(sp.Name, "stage:") {
			stageSpans++
		}
	}
	if stageSpans != 2 {
		t.Errorf("want 2 stage spans in the gateway trace, got %d: %+v", stageSpans, tr.Spans)
	}
}
