package gateway

import (
	"net/http"
	"testing"
	"time"
)

func TestLimiterTokenBucket(t *testing.T) {
	tests := []struct {
		name string
		cfg  LimitConfig
		run  func(t *testing.T, l *Limiter, clock *fakeClock)
	}{
		{
			name: "burst then deny",
			cfg:  LimitConfig{Rate: 10, Burst: 3},
			run: func(t *testing.T, l *Limiter, clock *fakeClock) {
				for i := 0; i < 3; i++ {
					if ok, _ := l.Allow("a"); !ok {
						t.Fatalf("request %d within burst denied", i)
					}
				}
				if ok, first := l.Allow("a"); ok || !first {
					t.Errorf("4th request: got (ok=%v, first=%v), want denied with first-denial edge", ok, first)
				}
				if _, first := l.Allow("a"); first {
					t.Error("5th request should not re-report the denial edge")
				}
			},
		},
		{
			name: "refill at the configured rate",
			cfg:  LimitConfig{Rate: 10, Burst: 2},
			run: func(t *testing.T, l *Limiter, clock *fakeClock) {
				l.Allow("a")
				l.Allow("a")
				if ok, _ := l.Allow("a"); ok {
					t.Fatal("bucket should be empty")
				}
				clock.Advance(100 * time.Millisecond) // one token at 10/s
				if ok, _ := l.Allow("a"); !ok {
					t.Error("one token should have refilled after 100ms")
				}
				if ok, _ := l.Allow("a"); ok {
					t.Error("only one token should have refilled")
				}
			},
		},
		{
			name: "refill caps at burst",
			cfg:  LimitConfig{Rate: 10, Burst: 2},
			run: func(t *testing.T, l *Limiter, clock *fakeClock) {
				l.Allow("a")
				clock.Advance(time.Hour)
				for i := 0; i < 2; i++ {
					if ok, _ := l.Allow("a"); !ok {
						t.Fatalf("request %d within burst denied after long idle", i)
					}
				}
				if ok, _ := l.Allow("a"); ok {
					t.Error("idle refill must cap at burst, not accumulate for an hour")
				}
			},
		},
		{
			name: "per-tenant isolation",
			cfg:  LimitConfig{Rate: 10, Burst: 1},
			run: func(t *testing.T, l *Limiter, clock *fakeClock) {
				if ok, _ := l.Allow("a"); !ok {
					t.Fatal("tenant a's first request denied")
				}
				if ok, _ := l.Allow("a"); ok {
					t.Fatal("tenant a should be out of tokens")
				}
				if ok, _ := l.Allow("b"); !ok {
					t.Error("tenant b must have its own bucket")
				}
			},
		},
		{
			name: "burst defaults to rate",
			cfg:  LimitConfig{Rate: 5},
			run: func(t *testing.T, l *Limiter, clock *fakeClock) {
				for i := 0; i < 5; i++ {
					if ok, _ := l.Allow("a"); !ok {
						t.Fatalf("request %d within default burst denied", i)
					}
				}
				if ok, _ := l.Allow("a"); ok {
					t.Error("6th request should exceed the default burst")
				}
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			clock := newFakeClock()
			cfg := tc.cfg
			cfg.Now = clock.Now
			tc.run(t, NewLimiter(cfg), clock)
		})
	}
}

func TestLimiterDisabled(t *testing.T) {
	l := NewLimiter(LimitConfig{Rate: 0})
	if l != nil {
		t.Fatal("zero rate should disable the limiter")
	}
	for i := 0; i < 1000; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatal("nil limiter must allow everything")
		}
	}
}

func TestLimiterStats(t *testing.T) {
	clock := newFakeClock()
	l := NewLimiter(LimitConfig{Rate: 10, Burst: 1, Now: clock.Now})
	l.Allow("a")
	l.Allow("a")
	l.Allow("b")
	st := l.Stats()
	if st.Tenants != 2 || st.Allowed != 2 || st.Denied != 1 {
		t.Errorf("stats = %+v, want 2 tenants / 2 allowed / 1 denied", st)
	}
}

func TestTenantHeaderPrecedence(t *testing.T) {
	tests := []struct {
		name   string
		apiKey string
		auth   string
		want   string
	}{
		{"x-api-key wins", "key-1", "Bearer tok-1", "key-1"},
		{"bearer token as fallback", "", "Bearer tok-1", "tok-1"},
		{"non-bearer auth ignored", "", "Basic dXNlcg==", "anonymous"},
		{"no credentials", "", "", "anonymous"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			r, _ := http.NewRequest(http.MethodPost, "/v1/infer", nil)
			if tc.apiKey != "" {
				r.Header.Set("X-API-Key", tc.apiKey)
			}
			if tc.auth != "" {
				r.Header.Set("Authorization", tc.auth)
			}
			if got := Tenant(r); got != tc.want {
				t.Errorf("Tenant() = %q, want %q", got, tc.want)
			}
		})
	}
}
