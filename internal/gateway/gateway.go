// Package gateway is the HTTP/JSON front door to a DjiNN fleet. The
// paper's service speaks a custom binary socket protocol; real
// warehouse-scale serving fronts that with a multi-tenant tier that
// terminates commodity HTTP, translates JSON payloads into engine
// queries, absorbs repeated work in a content-addressed response
// cache, and applies per-tenant admission before a request ever
// reaches the scheduler. The gateway sits in front of anything that
// implements service.ContextBackend — normally the router fleet, so
// retries, placement, and canary splits all apply beneath it.
//
// Endpoints: POST /v1/infer (single app), POST /v1/pipeline (a DAG of
// apps, see internal/pipeline), GET /v1/apps, GET/POST /v1/cache
// (stats / per-app toggle + flush), GET /healthz.
//
// Status mapping mirrors the wire protocol's shed semantics:
// 400 malformed, 404 unknown app, 413 oversized body, 429 tenant
// rate-limited, 502 transport, 503 shed (ErrOverloaded/ErrShuttingDown),
// 504 deadline exceeded.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"djinn/internal/events"
	"djinn/internal/metrics"
	"djinn/internal/pipeline"
	"djinn/internal/service"
	"djinn/internal/trace"
)

// Kind classifies an app's payload encoding.
type Kind string

const (
	KindText   Kind = "text"
	KindAudio  Kind = "audio"
	KindImage  Kind = "image"
	KindDigits Kind = "digits"
)

// AppSpec declares one servable app at the gateway.
type AppSpec struct {
	// Kind selects the JSON payload field and pre-processing.
	Kind Kind `json:"kind"`
	// Cache enables the response cache for this app. NLP queries
	// repeat (the same sentences come back); camera frames do not —
	// so text/audio default on, image/digits default off.
	Cache bool `json:"cache"`
}

// DefaultApps maps the seven Tonic applications.
func DefaultApps() map[string]AppSpec {
	return map[string]AppSpec{
		"pos":  {Kind: KindText, Cache: true},
		"chk":  {Kind: KindText, Cache: true},
		"ner":  {Kind: KindText, Cache: true},
		"asr":  {Kind: KindAudio, Cache: true},
		"imc":  {Kind: KindImage, Cache: false},
		"face": {Kind: KindImage, Cache: false},
		"dig":  {Kind: KindDigits, Cache: false},
	}
}

// DefaultBodyLimit caps request bodies when the config leaves it
// zero: 8 MB fits any Tonic payload (a 227×227 PNG or ~4 min of
// PCM16 speech) with room to spare.
const DefaultBodyLimit = 8 << 20

// Config assembles a Gateway.
type Config struct {
	// Backend serves the queries — normally a *router.Router over
	// the replica fleet.
	Backend service.ContextBackend
	// Apps declares the servable set; nil means DefaultApps().
	Apps map[string]AppSpec
	// Cache sizes the response cache (CacheConfig.Budget < 0
	// disables it).
	Cache CacheConfig
	// Limit shapes per-tenant token buckets (Rate <= 0 disables).
	Limit LimitConfig
	// BodyLimit caps request-body bytes; 0 means DefaultBodyLimit.
	// Oversized bodies return 413 without buffering the excess.
	BodyLimit int64
	// Deadline is the default per-request serving budget when the
	// body carries no deadline_ms; 0 means no deadline.
	Deadline time.Duration
	// Version tags an app for cache keying; a model promote that
	// changes the version invalidates the app's entries implicitly.
	// nil means the app name alone.
	Version func(app string) string
	// Traces collects gateway-tier spans; nil means a private store.
	Traces *trace.Store
	// Journal receives cache/ratelimit events; may be nil.
	Journal *events.Journal
}

// Gateway is the HTTP front-end. Create with New; safe for concurrent
// use.
type Gateway struct {
	backend   service.ContextBackend
	apps      map[string]AppSpec
	cache     *Cache
	limiter   *Limiter
	runner    *pipeline.Runner
	traces    *trace.Store
	journal   *events.Journal
	version   func(string) string
	bodyLimit int64
	deadline  time.Duration
	mux       *http.ServeMux

	mu          sync.Mutex
	cacheable   map[string]bool // runtime per-app cache toggle
	byStatus    map[int]int64
	inferCount  int64
	pipeCount   int64
	parseErrors int64

	e2e *metrics.Histogram
}

// New builds a gateway over cfg.Backend.
func New(cfg Config) (*Gateway, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("gateway: nil backend")
	}
	apps := cfg.Apps
	if apps == nil {
		apps = DefaultApps()
	}
	if cfg.BodyLimit == 0 {
		cfg.BodyLimit = DefaultBodyLimit
	}
	if cfg.Version == nil {
		cfg.Version = func(app string) string { return app }
	}
	traces := cfg.Traces
	if traces == nil {
		traces = trace.NewStore("gateway", trace.DefaultStoreSize)
	}
	g := &Gateway{
		backend:   cfg.Backend,
		apps:      apps,
		cache:     NewCache(cfg.Cache),
		limiter:   NewLimiter(cfg.Limit),
		runner:    pipeline.NewRunner(cfg.Backend, traces),
		traces:    traces,
		journal:   cfg.Journal,
		version:   cfg.Version,
		bodyLimit: cfg.BodyLimit,
		deadline:  cfg.Deadline,
		cacheable: make(map[string]bool, len(apps)),
		byStatus:  make(map[int]int64),
		e2e:       metrics.NewHistogram(nil),
	}
	for name, spec := range apps {
		g.cacheable[name] = spec.Cache
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", g.handleInfer)
	mux.HandleFunc("/v1/pipeline", g.handlePipeline)
	mux.HandleFunc("/v1/apps", g.handleApps)
	mux.HandleFunc("/v1/cache", g.handleCache)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	g.mux = mux
	return g, nil
}

// Traces exposes the gateway-tier span store for cross-tier merges.
func (g *Gateway) Traces() *trace.Store { return g.traces }

// Pipelines exposes the pipeline runner (for stats rendering).
func (g *Gateway) Pipelines() *pipeline.Runner { return g.runner }

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// SetCache toggles the response cache for one app at runtime;
// unknown apps are an error.
func (g *Gateway) SetCache(app string, on bool) error {
	if _, ok := g.apps[app]; !ok {
		return fmt.Errorf("unknown app %q", app)
	}
	g.mu.Lock()
	prev := g.cacheable[app]
	g.cacheable[app] = on
	g.mu.Unlock()
	if prev != on {
		g.journal.Appendf(events.KindCache, "gateway", "cache %s app=%s", onOff(on), app)
	}
	return nil
}

func onOff(on bool) string {
	if on {
		return "enabled"
	}
	return "disabled"
}

func (g *Gateway) cacheEnabled(app string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cacheable[app]
}

// status-tracking response writer

func (g *Gateway) count(code int, kind string) {
	g.mu.Lock()
	g.byStatus[code]++
	switch kind {
	case "infer":
		g.inferCount++
	case "pipeline":
		g.pipeCount++
	}
	g.mu.Unlock()
}

func (g *Gateway) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (g *Gateway) fail(w http.ResponseWriter, kind string, code int, format string, args ...any) {
	g.count(code, kind)
	if code == http.StatusBadRequest {
		g.mu.Lock()
		g.parseErrors++
		g.mu.Unlock()
	}
	if code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	g.writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// statusForErr maps backend errors onto the HTTP surface, mirroring
// the wire protocol's status semantics.
func statusForErr(err error) int {
	switch {
	case errors.Is(err, service.ErrOverloaded), errors.Is(err, service.ErrShuttingDown):
		return http.StatusServiceUnavailable // 503: shed, retryable
	case errors.Is(err, service.ErrDeadlineExceeded), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout // 504
	case errors.Is(err, service.ErrTransport):
		return http.StatusBadGateway // 502
	}
	return http.StatusInternalServerError
}

// admit runs the shared front-of-handler checks: method, tenant rate
// limit, bounded body read. ok=false means the response was written.
func (g *Gateway) admit(w http.ResponseWriter, r *http.Request, kind string) (body []byte, ok bool) {
	if r.Method != http.MethodPost {
		g.fail(w, kind, http.StatusMethodNotAllowed, "POST only")
		return nil, false
	}
	if allowed, first := g.limiter.Allow(Tenant(r)); !allowed {
		if first {
			g.journal.Appendf(events.KindRateLimit, "gateway", "tenant %s rate limited", Tenant(r))
		}
		g.fail(w, kind, http.StatusTooManyRequests, "rate limit exceeded")
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.bodyLimit))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			g.fail(w, kind, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
		} else {
			g.fail(w, kind, http.StatusBadRequest, "reading body: %v", err)
		}
		return nil, false
	}
	return body, true
}

// requestContext derives the traced, deadline-bounded context.
func (g *Gateway) requestContext(r *http.Request, deadlineMS int) (context.Context, context.CancelFunc, string) {
	id := trace.NewID()
	ctx := trace.WithID(r.Context(), id)
	d := g.deadline
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	if d > 0 {
		ctx, cancel := context.WithTimeout(ctx, d)
		return ctx, cancel, id
	}
	ctx, cancel := context.WithCancel(ctx)
	return ctx, cancel, id
}

// inferResponse is the /v1/infer reply envelope.
type inferResponse struct {
	App     string          `json:"app"`
	Cached  bool            `json:"cached"`
	TraceID string          `json:"trace_id"`
	Result  json.RawMessage `json:"result"`
}

func (g *Gateway) handleInfer(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body, ok := g.admit(w, r, "infer")
	if !ok {
		return
	}
	req, err := parseInferRequest(body)
	if err != nil {
		g.fail(w, "infer", http.StatusBadRequest, "bad request: %v", err)
		return
	}
	spec, known := g.apps[req.App]
	if !known {
		g.fail(w, "infer", http.StatusNotFound, "unknown app %q", req.App)
		return
	}
	in, canon, err := decodePayload(spec.Kind, &req)
	if err != nil {
		g.fail(w, "infer", http.StatusBadRequest, "bad request: %v", err)
		return
	}
	ctx, cancel, id := g.requestContext(r, req.DeadlineMS)
	defer cancel()

	useCache := g.cache != nil && !req.NoCache && g.cacheEnabled(req.App)
	var (
		resultBytes []byte
		cached      bool
	)
	if useCache {
		key := CacheKey(req.App+"@"+g.version(req.App), canon)
		if hit, ok := g.cache.Get(key); ok {
			// Distinct span so timelines attribute served-from-cache
			// latency to the cache, not a synthetic engine forward.
			g.traces.Add(id, trace.Span{
				Name: "cache", Note: fmt.Sprintf("hit app=%s bytes=%d", req.App, len(hit)),
				Start: start, Dur: time.Since(start),
			})
			resultBytes, cached = hit, true
		} else {
			t0 := time.Now()
			val, shared, err := g.cache.Do(key, func() ([]byte, error) {
				out, err := pipeline.RunApp(ctx, g.backend, req.App, in)
				if err != nil {
					return nil, err
				}
				return json.Marshal(out)
			})
			if err != nil {
				g.finishError(w, "infer", id, err)
				return
			}
			note := fmt.Sprintf("fill app=%s bytes=%d", req.App, len(val))
			if shared {
				note = fmt.Sprintf("fill-wait app=%s bytes=%d", req.App, len(val))
			}
			g.traces.Add(id, trace.Span{
				Name: "cache_fill", Note: note, Start: t0, Dur: time.Since(t0),
			})
			resultBytes, cached = val, shared
		}
	} else {
		out, err := pipeline.RunApp(ctx, g.backend, req.App, in)
		if err != nil {
			g.finishError(w, "infer", id, err)
			return
		}
		resultBytes, err = json.Marshal(out)
		if err != nil {
			g.finishError(w, "infer", id, err)
			return
		}
	}
	g.traces.Add(id, trace.Span{
		Name: "gateway", Note: fmt.Sprintf("app=%s cached=%v", req.App, cached),
		Start: start, Dur: time.Since(start),
	})
	g.e2e.RecordEx(time.Since(start), id)
	g.count(http.StatusOK, "infer")
	g.writeJSON(w, http.StatusOK, inferResponse{
		App: req.App, Cached: cached, TraceID: id, Result: resultBytes,
	})
}

func (g *Gateway) finishError(w http.ResponseWriter, kind, id string, err error) {
	code := statusForErr(err)
	g.count(code, kind)
	if code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	g.writeJSON(w, code, struct {
		Error   string `json:"error"`
		TraceID string `json:"trace_id"`
	}{Error: err.Error(), TraceID: id})
}

func (g *Gateway) handlePipeline(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body, ok := g.admit(w, r, "pipeline")
	if !ok {
		return
	}
	req, err := parsePipelineRequest(body)
	if err != nil {
		g.fail(w, "pipeline", http.StatusBadRequest, "bad request: %v", err)
		return
	}
	var spec pipeline.Spec
	if req.Pipeline != "" {
		var found bool
		if spec, found = pipeline.Preset(req.Pipeline); !found {
			g.fail(w, "pipeline", http.StatusNotFound, "unknown pipeline %q", req.Pipeline)
			return
		}
	} else {
		spec = pipeline.Spec{Name: "inline", Stages: req.Stages}
	}
	if spec, err = spec.Normalize(); err != nil {
		g.fail(w, "pipeline", http.StatusBadRequest, "bad request: %v", err)
		return
	}
	in, err := g.pipelineInput(&req)
	if err != nil {
		g.fail(w, "pipeline", http.StatusBadRequest, "bad request: %v", err)
		return
	}
	ctx, cancel, id := g.requestContext(r, req.DeadlineMS)
	defer cancel()
	res, err := g.runner.Run(ctx, spec, in)
	if err != nil {
		g.finishError(w, "pipeline", id, err)
		return
	}
	g.traces.Add(id, trace.Span{
		Name: "gateway", Note: fmt.Sprintf("pipeline=%s stages=%d", spec.Name, len(spec.Stages)),
		Start: start, Dur: time.Since(start),
	})
	g.e2e.RecordEx(time.Since(start), id)
	g.count(http.StatusOK, "pipeline")
	g.writeJSON(w, http.StatusOK, res)
}

// pipelineInput decodes the request-level payloads a pipeline's
// stages draw from.
func (g *Gateway) pipelineInput(req *pipelineRequest) (pipeline.Input, error) {
	var in pipeline.Input
	in.Text = req.Text
	if req.Audio != "" {
		tmp := inferRequest{App: "asr", Audio: req.Audio}
		dec, _, err := decodePayload(KindAudio, &tmp)
		if err != nil {
			return in, err
		}
		in.Audio = dec.Audio
	}
	if req.Image != "" {
		tmp := inferRequest{App: "imc", Image: req.Image}
		dec, _, err := decodePayload(KindImage, &tmp)
		if err != nil {
			return in, err
		}
		in.Image = dec.Image
	}
	if len(req.Digits) > 0 {
		tmp := inferRequest{App: "dig", Digits: req.Digits}
		dec, _, err := decodePayload(KindDigits, &tmp)
		if err != nil {
			return in, err
		}
		in.Digits = dec.Digits
	}
	return in, nil
}

// handleApps lists the servable set.
func (g *Gateway) handleApps(w http.ResponseWriter, r *http.Request) {
	type appInfo struct {
		Name  string `json:"name"`
		Kind  Kind   `json:"kind"`
		Cache bool   `json:"cache"`
	}
	names := make([]string, 0, len(g.apps))
	for name := range g.apps {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]appInfo, 0, len(names))
	for _, name := range names {
		out = append(out, appInfo{Name: name, Kind: g.apps[name].Kind, Cache: g.cacheEnabled(name)})
	}
	g.writeJSON(w, http.StatusOK, out)
}

// handleCache serves cache stats (GET) and per-app toggles / flush
// (POST {"app":..., "enabled":...} or {"flush": true}).
func (g *Gateway) handleCache(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		g.mu.Lock()
		apps := make(map[string]bool, len(g.cacheable))
		for k, v := range g.cacheable {
			apps[k] = v
		}
		g.mu.Unlock()
		g.writeJSON(w, http.StatusOK, struct {
			Cache CacheStats      `json:"cache"`
			Apps  map[string]bool `json:"apps"`
		}{Cache: g.cache.Stats(), Apps: apps})
	case http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4096))
		if err != nil {
			g.fail(w, "cache", http.StatusBadRequest, "reading body: %v", err)
			return
		}
		var req struct {
			App     string `json:"app,omitempty"`
			Enabled *bool  `json:"enabled,omitempty"`
			Flush   bool   `json:"flush,omitempty"`
		}
		if err := decodeStrict(body, &req); err != nil {
			g.fail(w, "cache", http.StatusBadRequest, "bad request: %v", err)
			return
		}
		if req.Flush {
			g.cache.Invalidate()
			g.journal.Appendf(events.KindCache, "gateway", "cache flushed")
		}
		if req.App != "" {
			if req.Enabled == nil {
				g.fail(w, "cache", http.StatusBadRequest, "app toggle needs %q", "enabled")
				return
			}
			if err := g.SetCache(req.App, *req.Enabled); err != nil {
				g.fail(w, "cache", http.StatusNotFound, "%v", err)
				return
			}
		} else if !req.Flush {
			g.fail(w, "cache", http.StatusBadRequest, "need %q or %q", "app", "flush")
			return
		}
		g.writeJSON(w, http.StatusOK, struct {
			OK bool `json:"ok"`
		}{OK: true})
	default:
		g.fail(w, "cache", http.StatusMethodNotAllowed, "GET or POST")
	}
}

// Stats is a point-in-time gateway counters snapshot.
type Stats struct {
	Infer       int64          `json:"infer"`
	Pipelines   int64          `json:"pipelines"`
	ParseErrors int64          `json:"parse_errors"`
	ByStatus    map[int]int64  `json:"by_status"`
	Cache       CacheStats     `json:"cache"`
	Limit       LimiterStats   `json:"ratelimit"`
	Pipeline    pipeline.Stats `json:"pipeline"`
	E2E         metrics.HistogramSnapshot
}

// Stats snapshots the gateway counters for /metrics and tooling.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	st := Stats{
		Infer:       g.inferCount,
		Pipelines:   g.pipeCount,
		ParseErrors: g.parseErrors,
		ByStatus:    make(map[int]int64, len(g.byStatus)),
	}
	for k, v := range g.byStatus {
		st.ByStatus[k] = v
	}
	g.mu.Unlock()
	st.Cache = g.cache.Stats()
	st.Limit = g.limiter.Stats()
	st.Pipeline = g.runner.Stats()
	st.E2E = g.e2e.Snapshot()
	return st
}
