package gateway

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable clock for cache and limiter tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestCacheKeyDistinguishesAppAndInput(t *testing.T) {
	base := CacheKey("pos@v1", []byte("the quick fox"))
	for name, other := range map[string]string{
		"different app":     CacheKey("ner@v1", []byte("the quick fox")),
		"different version": CacheKey("pos@v2", []byte("the quick fox")),
		"different input":   CacheKey("pos@v1", []byte("the slow fox")),
	} {
		if other == base {
			t.Errorf("%s produced the same key %s", name, base)
		}
	}
	if again := CacheKey("pos@v1", []byte("the quick fox")); again != base {
		t.Errorf("key not deterministic: %s vs %s", again, base)
	}
}

func TestCacheLRUEvictionUnderByteBudget(t *testing.T) {
	clock := newFakeClock()
	// Room for exactly 3 ten-byte entries.
	c := NewCache(CacheConfig{Budget: 30, Now: clock.Now})
	val := []byte("0123456789")
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), val)
	}
	if st := c.Stats(); st.Entries != 3 || st.Bytes != 30 {
		t.Fatalf("want 3 entries / 30 bytes, got %+v", st)
	}
	// Touch k0 so k1 becomes least-recently-used, then overflow.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.Put("k3", val)
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 should have been evicted as LRU")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should have survived eviction", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("want 1 eviction, got %d", st.Evictions)
	}
	if st.Bytes > 30 {
		t.Errorf("bytes %d exceed budget 30", st.Bytes)
	}
}

func TestCacheOversizedEntryNotCached(t *testing.T) {
	c := NewCache(CacheConfig{Budget: 8, Now: newFakeClock().Now})
	c.Put("big", []byte("this value exceeds the whole budget"))
	if _, ok := c.Get("big"); ok {
		t.Error("entry larger than the whole budget must not be cached")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("want empty cache, got %+v", st)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	clock := newFakeClock()
	c := NewCache(CacheConfig{Budget: 1 << 10, TTL: time.Minute, Now: clock.Now})
	c.Put("k", []byte("v"))
	clock.Advance(59 * time.Second)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry expired before its TTL")
	}
	clock.Advance(2 * time.Second)
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry survived past its TTL")
	}
	if st := c.Stats(); st.Expired != 1 || st.Entries != 0 {
		t.Errorf("want 1 expired / 0 entries, got %+v", st)
	}
}

func TestCacheNegativeTTLNeverExpires(t *testing.T) {
	clock := newFakeClock()
	c := NewCache(CacheConfig{Budget: 1 << 10, TTL: -1, Now: clock.Now})
	c.Put("k", []byte("v"))
	clock.Advance(1000 * time.Hour)
	if _, ok := c.Get("k"); !ok {
		t.Error("negative TTL means entries never expire")
	}
}

func TestCacheDisabledIsNilSafe(t *testing.T) {
	c := NewCache(CacheConfig{Budget: -1})
	if c != nil {
		t.Fatal("negative budget should disable the cache entirely")
	}
	c.Put("k", []byte("v")) // must not panic
	if _, ok := c.Get("k"); ok {
		t.Error("nil cache returned a hit")
	}
	val, cached, err := c.Do("k", func() ([]byte, error) { return []byte("x"), nil })
	if err != nil || cached || string(val) != "x" {
		t.Errorf("nil cache Do = (%q, %v, %v), want passthrough", val, cached, err)
	}
}

func TestCacheSingleflightDedup(t *testing.T) {
	clock := newFakeClock()
	c := NewCache(CacheConfig{Budget: 1 << 10, Now: clock.Now})
	const waiters = 8
	fills := 0
	gate := make(chan struct{})
	var mu sync.Mutex
	var wg sync.WaitGroup
	results := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, cached, err := c.Do("k", func() ([]byte, error) {
				mu.Lock()
				fills++
				mu.Unlock()
				<-gate // hold the fill open so the others pile up
				return []byte("v"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = cached
		}(i)
	}
	// Let the waiters reach Do before releasing the fill.
	for c.Stats().Dedup < waiters-1 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if fills != 1 {
		t.Errorf("want exactly 1 fill, got %d", fills)
	}
	shared := 0
	for _, cached := range results {
		if cached {
			shared++
		}
	}
	if shared != waiters-1 {
		t.Errorf("want %d deduplicated waiters, got %d", waiters-1, shared)
	}
}

func TestCacheFailedFillNotCached(t *testing.T) {
	c := NewCache(CacheConfig{Budget: 1 << 10, Now: newFakeClock().Now})
	boom := errors.New("backend down")
	if _, _, err := c.Do("k", func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("want fill error back, got %v", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Error("failed fill must not populate the cache")
	}
	called := false
	if _, _, err := c.Do("k", func() ([]byte, error) { called = true; return []byte("v"), nil }); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("second Do should retry the fill after a failure")
	}
	if st := c.Stats(); st.FillErrs != 1 {
		t.Errorf("want 1 fill error, got %+v", st)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(CacheConfig{Budget: 1 << 10, Now: newFakeClock().Now})
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Invalidate()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("want empty after Invalidate, got %+v", st)
	}
}
