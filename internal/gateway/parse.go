package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"djinn/internal/pipeline"
	"djinn/internal/service"
)

// Strict JSON request parsing. The stock decoder happily accepts
// duplicate keys (last one wins) and trailing garbage; a front door
// shared by many tenants should not — a proxy and the gateway
// disagreeing on which "app" field counts is a classic smuggling
// vector. So every request body goes through a token-level walk that
// rejects duplicate keys at any depth, then a DisallowUnknownFields
// decode, then a trailing-content check.

// inferRequest is the /v1/infer body.
type inferRequest struct {
	// App is the Tonic service name (asr, pos, chk, ner, imc, face, dig).
	App string `json:"app"`
	// Exactly one payload field per the app's kind:
	Text   string      `json:"text,omitempty"`
	Audio  string      `json:"audio,omitempty"`  // base64 PCM16 @ 16 kHz mono
	Image  string      `json:"image,omitempty"`  // base64 PNG
	Digits [][]float32 `json:"digits,omitempty"` // rows of 28×28
	// DeadlineMS bounds end-to-end serving time; 0 means the
	// gateway default.
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// NoCache bypasses the response cache for this request.
	NoCache bool `json:"no_cache,omitempty"`
}

// pipelineRequest is the /v1/pipeline body: either a named preset or
// an inline stage DAG, plus the request-level payloads stages draw on.
type pipelineRequest struct {
	Pipeline   string               `json:"pipeline,omitempty"`
	Stages     []pipeline.StageSpec `json:"stages,omitempty"`
	Text       string               `json:"text,omitempty"`
	Audio      string               `json:"audio,omitempty"`
	Image      string               `json:"image,omitempty"`
	Digits     [][]float32          `json:"digits,omitempty"`
	DeadlineMS int                  `json:"deadline_ms,omitempty"`
}

// rejectDuplicateKeys walks the JSON token stream and fails on a
// repeated key inside any single object, at any nesting depth.
func rejectDuplicateKeys(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	return dupCheckValue(dec, 0)
}

// maxParseDepth bounds recursion so deeply nested arrays cannot blow
// the goroutine stack before the decoder's own limits kick in.
const maxParseDepth = 64

func dupCheckValue(dec *json.Decoder, depth int) error {
	if depth > maxParseDepth {
		return fmt.Errorf("json nested deeper than %d", maxParseDepth)
	}
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	delim, ok := tok.(json.Delim)
	if !ok {
		return nil // scalar
	}
	switch delim {
	case '{':
		seen := make(map[string]bool)
		for dec.More() {
			keyTok, err := dec.Token()
			if err != nil {
				return err
			}
			key, _ := keyTok.(string)
			if seen[key] {
				return fmt.Errorf("duplicate field %q", key)
			}
			seen[key] = true
			if err := dupCheckValue(dec, depth+1); err != nil {
				return err
			}
		}
		_, err = dec.Token() // consume '}'
		return err
	case '[':
		for dec.More() {
			if err := dupCheckValue(dec, depth+1); err != nil {
				return err
			}
		}
		_, err = dec.Token() // consume ']'
		return err
	}
	return nil
}

// decodeStrict unmarshals data into v with duplicate-key, unknown-
// field, and trailing-garbage rejection.
func decodeStrict(data []byte, v any) error {
	if err := rejectDuplicateKeys(data); err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing content after JSON body")
	}
	return nil
}

// parseInferRequest parses and sanity-checks a /v1/infer body. It
// validates shape only — app existence is the handler's 404, payload
// decoding is decodePayload's 400.
func parseInferRequest(data []byte) (inferRequest, error) {
	var req inferRequest
	if err := decodeStrict(data, &req); err != nil {
		return req, err
	}
	req.App = strings.ToLower(strings.TrimSpace(req.App))
	if req.App == "" {
		return req, fmt.Errorf("missing %q field", "app")
	}
	if len(req.App) > service.MaxAppNameLen {
		return req, fmt.Errorf("app name longer than %d", service.MaxAppNameLen)
	}
	if req.DeadlineMS < 0 {
		return req, fmt.Errorf("negative deadline_ms")
	}
	n := 0
	if req.Text != "" {
		n++
	}
	if req.Audio != "" {
		n++
	}
	if req.Image != "" {
		n++
	}
	if len(req.Digits) > 0 {
		n++
	}
	if n > 1 {
		return req, fmt.Errorf("more than one payload field set")
	}
	return req, nil
}

// parsePipelineRequest parses and sanity-checks a /v1/pipeline body.
func parsePipelineRequest(data []byte) (pipelineRequest, error) {
	var req pipelineRequest
	if err := decodeStrict(data, &req); err != nil {
		return req, err
	}
	if req.Pipeline == "" && len(req.Stages) == 0 {
		return req, fmt.Errorf("need %q or %q", "pipeline", "stages")
	}
	if req.Pipeline != "" && len(req.Stages) > 0 {
		return req, fmt.Errorf("%q and %q are mutually exclusive", "pipeline", "stages")
	}
	if req.DeadlineMS < 0 {
		return req, fmt.Errorf("negative deadline_ms")
	}
	return req, nil
}
