package gateway

import (
	"net/http"
	"strings"
	"sync"
	"time"
)

// LimitConfig shapes the per-tenant token buckets.
type LimitConfig struct {
	// Rate is tokens (requests) replenished per second per tenant.
	// Zero or negative disables rate limiting entirely.
	Rate float64
	// Burst is the bucket capacity — how far a tenant may run ahead
	// of the steady rate. Zero means max(1, Rate).
	Burst float64
	// Now is the clock; nil means time.Now. Tests inject a fake.
	Now func() time.Time
}

// maxTenants bounds the bucket map so a key-spraying client cannot
// grow gateway memory without bound; full idle buckets are pruned
// once the map passes this size.
const maxTenants = 16384

type bucket struct {
	tokens float64
	last   time.Time
	denied bool // in a denial streak (for edge-triggered events)
}

// Limiter applies a token bucket per tenant key. The zero value is
// not usable; use NewLimiter. A nil *Limiter allows everything.
type Limiter struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket

	allowed int64
	denied  int64
}

// NewLimiter builds a limiter; returns nil (allow-all) when the rate
// is zero or negative.
func NewLimiter(cfg LimitConfig) *Limiter {
	if cfg.Rate <= 0 {
		return nil
	}
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.Rate
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Limiter{
		rate:    cfg.Rate,
		burst:   cfg.Burst,
		now:     cfg.Now,
		buckets: make(map[string]*bucket),
	}
}

// Allow spends one token from tenant's bucket. The second return is
// true exactly when this denial starts a new denial streak — the
// edge the gateway journals, so a sustained limit storm is one event,
// not thousands.
func (l *Limiter) Allow(tenant string) (ok, firstDenial bool) {
	if l == nil {
		return true, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[tenant]
	if b == nil {
		if len(l.buckets) >= maxTenants {
			l.pruneLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens += elapsed * l.rate
			if b.tokens > l.burst {
				b.tokens = l.burst
			}
			b.last = now
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		b.denied = false
		l.allowed++
		return true, false
	}
	first := !b.denied
	b.denied = true
	l.denied++
	return false, first
}

// pruneLocked drops buckets that have fully refilled — tenants idle
// long enough that forgetting them is indistinguishable from keeping
// them.
func (l *Limiter) pruneLocked(now time.Time) {
	for k, b := range l.buckets {
		idle := now.Sub(b.last).Seconds()
		if b.tokens+idle*l.rate >= l.burst {
			delete(l.buckets, k)
		}
	}
}

// LimiterStats is a point-in-time limiter counters snapshot.
type LimiterStats struct {
	Tenants int   `json:"tenants"`
	Allowed int64 `json:"allowed"`
	Denied  int64 `json:"denied"`
}

// Stats snapshots the counters.
func (l *Limiter) Stats() LimiterStats {
	if l == nil {
		return LimiterStats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return LimiterStats{Tenants: len(l.buckets), Allowed: l.allowed, Denied: l.denied}
}

// Tenant extracts the rate-limit key from a request: X-API-Key wins,
// then an Authorization bearer token, then the anonymous bucket.
// Anonymous callers share one bucket by design — unauthenticated
// traffic is capped in aggregate, not per source.
func Tenant(r *http.Request) string {
	if k := strings.TrimSpace(r.Header.Get("X-API-Key")); k != "" {
		return k
	}
	auth := r.Header.Get("Authorization")
	if tok, ok := strings.CutPrefix(auth, "Bearer "); ok {
		if tok = strings.TrimSpace(tok); tok != "" {
			return tok
		}
	}
	return "anonymous"
}
