package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"djinn/internal/models"
	"djinn/internal/router"
	"djinn/internal/service"
	"djinn/internal/testutil"
	"djinn/internal/tonic"
)

// TestGatewayKillReplicaMidRunZeroLost drives concurrent HTTP clients
// through the full gateway → router → replica stack — cacheable
// queries, cache-bypassing queries, pipelines, and a rate-limited
// tenant — while one replica dies mid-run. Every accepted request
// must resolve to a definite HTTP status: 200, or an accounted
// shed/limit status (429/503/504). Nothing may be lost and no
// goroutines may leak.
func TestGatewayKillReplicaMidRunZeroLost(t *testing.T) {
	testutil.NoLeaks(t)
	rt := router.New(router.Config{
		Policy: router.LeastOutstanding,
		Health: router.HealthConfig{FailureThreshold: 2, ProbeInterval: 100 * time.Millisecond},
	})
	defer rt.Close()
	var victim *service.Server
	for i := 0; i < 3; i++ {
		srv := service.NewServer()
		srv.SetLogger(func(string, ...any) {})
		for _, a := range []models.App{models.POS, models.NER} {
			if err := tonic.Register(srv, a); err != nil {
				t.Fatal(err)
			}
		}
		if err := rt.AddBackend(fmt.Sprintf("replica-%d", i), srv); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			victim = srv
		} else {
			defer srv.Close()
		}
	}
	gw, err := New(Config{
		Backend: rt,
		Limit:   LimitConfig{Rate: 50, Burst: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(gw)
	defer hs.Close()

	var issued, ok, accounted atomic.Int64
	var unexplainedMu sync.Mutex
	var firstUnexplained error
	noteUnexplained := func(err error) {
		unexplainedMu.Lock()
		if firstUnexplained == nil {
			firstUnexplained = err
		}
		unexplainedMu.Unlock()
	}
	post := func(client *http.Client, path string, body []byte, tenant string) {
		issued.Add(1)
		req, err := http.NewRequest(http.MethodPost, hs.URL+path, bytes.NewReader(body))
		if err != nil {
			noteUnexplained(err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-API-Key", tenant)
		resp, err := client.Do(req)
		if err != nil {
			// A transport-level failure is a lost request: the gateway
			// must answer even when replicas die under it.
			noteUnexplained(fmt.Errorf("transport: %w", err))
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			ok.Add(1)
		case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			accounted.Add(1)
		case http.StatusInternalServerError:
			// The engine may surface a non-lifecycle failure while its
			// server tears down mid-batch; the request still resolved.
			accounted.Add(1)
		default:
			accounted.Add(1)
			noteUnexplained(fmt.Errorf("unexpected status %d", resp.StatusCode))
		}
	}

	const clients = 6
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			defer client.CloseIdleConnections()
			tenant := fmt.Sprintf("tenant-%d", c%3) // shared tenants → some 429s
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				switch n % 3 {
				case 0: // cacheable: repeats drive fills, dedup, and hits
					body, _ := json.Marshal(map[string]any{
						"app": "pos", "text": fmt.Sprintf("repeated sentence number %d", n%4),
					})
					post(client, "/v1/infer", body, tenant)
				case 1: // unique + no_cache: always reaches the fleet
					body, _ := json.Marshal(map[string]any{
						"app": "ner", "no_cache": true,
						"text": fmt.Sprintf("client %d fresh sentence %d from paris", c, n),
					})
					post(client, "/v1/infer", body, tenant)
				default: // pipeline: multi-stage requests cross the kill
					body, _ := json.Marshal(map[string]any{
						"stages": []map[string]any{
							{"name": "tag", "app": "pos"},
							{"name": "rec", "app": "ner", "after": []string{"tag"}},
						},
						"text": fmt.Sprintf("pipeline input %d for client %d", n, c),
					})
					post(client, "/v1/pipeline", body, tenant)
				}
			}
		}(c)
	}
	time.Sleep(150 * time.Millisecond)
	victim.Close() // kill one replica mid-run
	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()

	if firstUnexplained != nil {
		t.Fatalf("unexplained failure: %v", firstUnexplained)
	}
	if got := ok.Load() + accounted.Load(); got != issued.Load() {
		t.Fatalf("lost requests: issued %d, resolved %d", issued.Load(), got)
	}
	if ok.Load() == 0 {
		t.Fatal("no request succeeded")
	}
	st := gw.Stats()
	if st.Cache.Fills == 0 || st.Cache.Hits == 0 {
		t.Errorf("cache not exercised under load: %+v", st.Cache)
	}
	t.Logf("issued=%d ok=%d accounted=%d cache=%+v", issued.Load(), ok.Load(), accounted.Load(), st.Cache)
}
