package gateway

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"image/png"
	"math"
	"strings"

	"djinn/internal/lang"
	"djinn/internal/pipeline"
)

// The gateway's JSON payload encodings. Audio travels as base64 of
// 16-bit little-endian PCM at 16 kHz mono; images as base64 PNG bytes;
// text as plain JSON strings; digits as nested float arrays. The
// decoded, normalised form doubles as the cache's canonical input so
// two base64 spellings of the same payload share an entry.

// EncodePCM16 packs [-1,1] float samples as little-endian int16 PCM —
// the inverse of the gateway's audio decode, for clients and tests.
func EncodePCM16(signal []float64) []byte {
	out := make([]byte, 2*len(signal))
	for i, s := range signal {
		if s > 1 {
			s = 1
		} else if s < -1 {
			s = -1
		}
		v := int16(math.Round(s * 32767))
		binary.LittleEndian.PutUint16(out[2*i:], uint16(v))
	}
	return out
}

// DecodePCM16 unpacks little-endian int16 PCM into [-1,1] floats.
func DecodePCM16(raw []byte) ([]float64, error) {
	if len(raw)%2 != 0 {
		return nil, fmt.Errorf("pcm16 payload has odd length %d", len(raw))
	}
	out := make([]float64, len(raw)/2)
	for i := range out {
		out[i] = float64(int16(binary.LittleEndian.Uint16(raw[2*i:]))) / 32767
	}
	return out, nil
}

// canonicalText normalises a sentence the way the NLP pre-processing
// does — whitespace-insensitive token stream — so "Hello,  world" and
// "hello , world\n" share a cache entry exactly when they share a
// token sequence.
func canonicalText(text string) []byte {
	return []byte(strings.Join(lang.Tokenize(text), " "))
}

// decodePayload turns the JSON request payload fields into a pipeline
// Input plus the canonical bytes the cache keys on, according to the
// app's declared kind. Errors are client errors (400).
func decodePayload(kind Kind, req *inferRequest) (pipeline.Input, []byte, error) {
	var in pipeline.Input
	switch kind {
	case KindText:
		if req.Text == "" {
			return in, nil, fmt.Errorf("app %q takes a %q field", req.App, "text")
		}
		in.Text = req.Text
		canon := canonicalText(req.Text)
		if len(canon) == 0 {
			return in, nil, fmt.Errorf("text has no tokens")
		}
		return in, canon, nil
	case KindAudio:
		if req.Audio == "" {
			return in, nil, fmt.Errorf("app %q takes an %q field (base64 PCM16 @ 16 kHz)", req.App, "audio")
		}
		raw, err := base64.StdEncoding.DecodeString(req.Audio)
		if err != nil {
			return in, nil, fmt.Errorf("audio: bad base64: %v", err)
		}
		sig, err := DecodePCM16(raw)
		if err != nil {
			return in, nil, fmt.Errorf("audio: %v", err)
		}
		if len(sig) == 0 {
			return in, nil, fmt.Errorf("audio: empty signal")
		}
		in.Audio = sig
		return in, raw, nil
	case KindImage:
		if req.Image == "" {
			return in, nil, fmt.Errorf("app %q takes an %q field (base64 PNG)", req.App, "image")
		}
		raw, err := base64.StdEncoding.DecodeString(req.Image)
		if err != nil {
			return in, nil, fmt.Errorf("image: bad base64: %v", err)
		}
		img, err := png.Decode(bytes.NewReader(raw))
		if err != nil {
			return in, nil, fmt.Errorf("image: bad png: %v", err)
		}
		in.Image = img
		return in, raw, nil
	case KindDigits:
		if len(req.Digits) == 0 {
			return in, nil, fmt.Errorf("app %q takes a %q field (rows of 784 floats)", req.App, "digits")
		}
		canon := make([]byte, 0, 4*784*len(req.Digits))
		var scratch [4]byte
		for i, row := range req.Digits {
			if len(row) != 28*28 {
				return in, nil, fmt.Errorf("digits[%d]: %d values, want %d", i, len(row), 28*28)
			}
			for _, v := range row {
				binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(v))
				canon = append(canon, scratch[:]...)
			}
		}
		in.Digits = req.Digits
		return in, canon, nil
	}
	return in, nil, fmt.Errorf("app %q has unknown payload kind %q", req.App, kind)
}
