// Package sim is a minimal discrete-event simulation engine: a virtual
// clock, an event heap, and FIFO/processor-sharing resource helpers.
// The GPU server experiments (Figures 8, 9, 11, 12) run on it, which
// makes every published curve deterministic and reproducible in
// milliseconds of wall-clock time.
package sim

import (
	"container/heap"
	"fmt"
)

// Engine owns the virtual clock and pending events. All times are in
// seconds of simulated time.
type Engine struct {
	now  float64
	seq  int64
	evts eventHeap
}

// New creates an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn to run at absolute time t (panics if t is in the
// past). Events at equal times run in scheduling order.
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.evts, ev)
	return ev
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for len(e.evts) > 0 {
		e.step()
	}
}

// RunUntil executes events with timestamps ≤ t, then sets the clock to
// t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t float64) {
	for len(e.evts) > 0 && e.evts[0].at <= t {
		e.step()
	}
	if t > e.now {
		e.now = t
	}
}

func (e *Engine) step() {
	ev := heap.Pop(&e.evts).(*Event)
	if ev.cancelled {
		return
	}
	e.now = ev.at
	ev.fn()
}

// Pending returns the number of scheduled (non-cancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.evts {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// Event is a scheduled callback; it can be cancelled before it fires.
type Event struct {
	at        float64
	seq       int64
	fn        func()
	cancelled bool
	index     int
}

// Cancel prevents the event from firing. Safe to call more than once.
func (ev *Event) Cancel() { ev.cancelled = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// FIFO is a single-server queue: work items are served one at a time in
// arrival order. It models serialised shared links such as a PCIe root
// complex or a bonded NIC team.
type FIFO struct {
	eng       *Engine
	busyUntil float64
	// BusySeconds accumulates total service time, for utilisation
	// accounting.
	BusySeconds float64
}

// NewFIFO creates a FIFO resource on the engine.
func NewFIFO(eng *Engine) *FIFO { return &FIFO{eng: eng} }

// Acquire enqueues a service demand of d seconds and calls done when it
// completes.
func (f *FIFO) Acquire(d float64, done func()) {
	start := f.busyUntil
	if start < f.eng.now {
		start = f.eng.now
	}
	f.busyUntil = start + d
	f.BusySeconds += d
	f.eng.At(f.busyUntil, done)
}

// Utilization returns the fraction of [0, now] the resource was busy.
func (f *FIFO) Utilization() float64 {
	if f.eng.now == 0 {
		return 0
	}
	u := f.BusySeconds / f.eng.now
	if u > 1 {
		u = 1
	}
	return u
}
