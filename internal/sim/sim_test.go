package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("clock %v, want 3", e.Now())
	}
}

func TestEqualTimesFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-time events out of scheduling order: %v", order)
	}
}

func TestAfterAndNesting(t *testing.T) {
	e := New()
	var hits []float64
	e.After(1, func() {
		hits = append(hits, e.Now())
		e.After(2, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Fatalf("hits %v", hits)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.At(1, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func() { count++ })
	}
	e.RunUntil(5.5)
	if count != 5 {
		t.Fatalf("ran %d events, want 5", count)
	}
	if e.Now() != 5.5 {
		t.Fatalf("clock %v, want 5.5", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("pending %d, want 5", e.Pending())
	}
	e.Run()
	if count != 10 {
		t.Fatalf("ran %d events total, want 10", count)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(1, func() {})
}

func TestFIFOSerialises(t *testing.T) {
	e := New()
	f := NewFIFO(e)
	var ends []float64
	f.Acquire(2, func() { ends = append(ends, e.Now()) })
	f.Acquire(3, func() { ends = append(ends, e.Now()) })
	e.After(1, func() {
		f.Acquire(1, func() { ends = append(ends, e.Now()) })
	})
	e.Run()
	want := []float64{2, 5, 6}
	if len(ends) != 3 {
		t.Fatalf("ends %v", ends)
	}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends %v, want %v", ends, want)
		}
	}
	if u := f.Utilization(); u != 1 {
		t.Fatalf("utilization %v, want 1", u)
	}
}

func TestFIFOIdleGap(t *testing.T) {
	e := New()
	f := NewFIFO(e)
	f.Acquire(1, func() {})
	e.At(5, func() { f.Acquire(1, func() {}) })
	e.Run()
	if e.Now() != 6 {
		t.Fatalf("clock %v, want 6", e.Now())
	}
	if u := f.Utilization(); u < 0.32 || u > 0.34 {
		t.Fatalf("utilization %v, want 2/6", u)
	}
}

// Property: N sequential FIFO acquisitions finish at the prefix sums of
// their durations, regardless of how they are interleaved in scheduling.
func TestFIFOPrefixSumProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 20 {
			return true
		}
		e := New()
		fifo := NewFIFO(e)
		var ends []float64
		var sum float64
		var want []float64
		for _, r := range raw {
			d := float64(r%10) + 1
			sum += d
			want = append(want, sum)
			fifo.Acquire(d, func() { ends = append(ends, e.Now()) })
		}
		e.Run()
		if len(ends) != len(want) {
			return false
		}
		for i := range want {
			if ends[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestClockMonotonic(t *testing.T) {
	e := New()
	last := -1.0
	for i := 0; i < 100; i++ {
		d := float64((i*37)%13) + 0.5
		e.After(d, func() {
			if e.Now() < last {
				t.Error("clock went backwards")
			}
			last = e.Now()
		})
	}
	e.Run()
}
