// Package cluster simulates Figure 14's warehouse-scale query path
// end to end: queries arrive at a front-end load balancer, are
// preprocessed on a CPU-server tier, traverse the datacenter fabric
// (Disaggregated design) or the local PCIe bus (Integrated design) to
// a GPU tier running the DjiNN service with batching and MPS, and
// return. Where internal/wsc provisions the designs analytically for
// TCO, this package measures the latency composition of a query
// through each design — the red and blue arrows of Figure 14 as a
// discrete-event simulation.
package cluster

import (
	"fmt"
	"sort"

	"djinn/internal/gpusim"
	"djinn/internal/router"
	"djinn/internal/sim"
	"djinn/internal/tensor"
)

// Design selects the query path topology.
type Design int

// The two GPU-accelerated designs of Figure 14 (the CPU-only design has
// no tiering to simulate).
const (
	Integrated Design = iota
	Disaggregated
)

// String names the design.
func (d Design) String() string {
	if d == Integrated {
		return "Integrated"
	}
	return "Disaggregated"
}

// Config describes one cluster simulation.
type Config struct {
	Design Design
	// CPUServers is the preprocessing tier size; each server offers
	// CPUCores cores and preprocessing takes PreSeconds of one core.
	CPUServers int
	CPUCores   int
	PreSeconds float64
	// PostSeconds is the postprocessing time back on the CPU tier.
	PostSeconds float64
	// GPUServers is the GPU tier size; each runs the DjiNN service.
	GPUServers  int
	GPUsPerSrv  int
	ProcsPerGPU int
	Device      gpusim.DeviceSpec
	// BatchQueries/BatchWindow is the per-GPU-server aggregation policy.
	BatchQueries int
	BatchWindow  float64
	// BatchKernels lowers an n-query batch.
	BatchKernels func(n int) []gpusim.KernelWork
	// WireBytes is the per-query payload between tiers.
	WireBytes float64
	// NetBW is the per-GPU-server NIC-team goodput (Disaggregated);
	// LinkBW is the per-server PCIe complex bandwidth (both designs).
	NetBW  float64
	LinkBW float64
	// ArrivalRate is the Poisson query arrival rate at the front end.
	ArrivalRate float64
	Seed        uint64
	// Policy selects the GPU server for each query, mirroring the live
	// router's dispatch policies (router.RoundRobin is the zero value)
	// so measured and simulated routing can be compared directly.
	Policy router.Policy
	// Deadline is the per-query latency budget in seconds (0 = none).
	// Mirroring the DjiNN service's request lifecycle, a query whose
	// age exceeds the deadline when its batch is assembled is dropped
	// there instead of occupying GPU capacity.
	Deadline float64
}

// Result is the measured latency composition.
type Result struct {
	Completed int
	Expired   int // dropped at batch assembly past their deadline
	QPS       float64
	MeanLat   float64
	P95Lat    float64
	MeanPre   float64 // queueing + service on the CPU tier
	MeanNet   float64 // fabric transfer (Disaggregated only)
	MeanDNN   float64 // batching wait + PCIe + GPU execution
	MeanWait  float64 // batch-assembly wait inside MeanDNN
	MeanExec  float64 // PCIe + GPU execution inside MeanDNN
	MeanPost  float64
}

// queryState tracks one query's stage timestamps.
type queryState struct {
	arrive  float64
	preDone float64
	netDone float64
	flushed float64
	dnnDone float64
}

// Simulate runs the cluster for the given simulated duration.
func Simulate(cfg Config, duration float64) Result {
	if cfg.ArrivalRate <= 0 || cfg.CPUServers <= 0 || cfg.GPUServers <= 0 {
		panic("cluster: config needs arrivals and both tiers")
	}
	eng := sim.New()
	rng := tensor.NewRNG(cfg.Seed + 99)
	warmup := duration * 0.1

	// CPU tier: each server is CPUCores parallel FIFO cores; queries
	// pick the least-loaded server (the front-end load balancer).
	type cpuServer struct{ cores []*sim.FIFO }
	cpuTier := make([]*cpuServer, cfg.CPUServers)
	for i := range cpuTier {
		s := &cpuServer{}
		for c := 0; c < cfg.CPUCores; c++ {
			s.cores = append(s.cores, sim.NewFIFO(eng))
		}
		cpuTier[i] = s
	}
	cpuRR := 0
	runCPU := func(seconds float64, done func()) {
		// Round-robin across servers, then the least-busy core.
		srv := cpuTier[cpuRR%len(cpuTier)]
		cpuRR++
		best := srv.cores[0]
		for _, c := range srv.cores[1:] {
			if c.BusySeconds < best.BusySeconds {
				best = c
			}
		}
		best.Acquire(seconds, done)
	}

	// GPU tier: per-server batching aggregator + MPS GPUs + links.
	type gpuServer struct {
		sched   []*mpsWrap
		nic     *sim.FIFO
		pcie    *sim.FIFO
		pending []*queryState
		window  *sim.Event
		next    int // round-robin GPU within the server
		// outstanding counts queries routed here that have not left the
		// DNN stage — the signal the load-aware dispatch policies read,
		// mirroring the live router's per-replica outstanding counter.
		outstanding int
	}
	gpuTier := make([]*gpuServer, cfg.GPUServers)
	for i := range gpuTier {
		g := &gpuServer{pcie: sim.NewFIFO(eng)}
		if cfg.Design == Disaggregated {
			g.nic = sim.NewFIFO(eng)
		}
		for j := 0; j < cfg.GPUsPerSrv; j++ {
			g.sched = append(g.sched, newMPSWrap(eng, cfg.Device))
		}
		gpuTier[i] = g
	}

	var latencies, pres, nets, dnns, waits, execs, posts []float64
	completed, expired := 0, 0

	finishQuery := func(q *queryState) {
		postStart := eng.Now()
		runCPU(cfg.PostSeconds, func() {
			if q.arrive < warmup {
				return
			}
			completed++
			latencies = append(latencies, eng.Now()-q.arrive)
			pres = append(pres, q.preDone-q.arrive)
			nets = append(nets, q.netDone-q.preDone)
			dnns = append(dnns, q.dnnDone-q.netDone)
			waits = append(waits, q.flushed-q.netDone)
			execs = append(execs, q.dnnDone-q.flushed)
			posts = append(posts, eng.Now()-postStart)
		})
	}

	// flushBatch executes one aggregated batch on a server's next GPU.
	// Queries already past their deadline are dropped here, at batch
	// assembly — the same lifecycle point the DjiNN service sheds them —
	// so a dead query never occupies GPU capacity.
	flushBatch := func(g *gpuServer, batch []*queryState) {
		if cfg.Deadline > 0 {
			live := batch[:0]
			for _, q := range batch {
				if eng.Now()-q.arrive > cfg.Deadline {
					if q.arrive >= warmup {
						expired++
					}
					g.outstanding--
					continue
				}
				live = append(live, q)
			}
			batch = live
			if len(batch) == 0 {
				return
			}
		}
		for _, q := range batch {
			q.flushed = eng.Now()
		}
		ks := cfg.BatchKernels(len(batch))
		gpu := g.sched[g.next%len(g.sched)]
		g.next++
		bytes := cfg.WireBytes * float64(len(batch))
		afterPCIe := func() {
			var runKernel func(i int)
			runKernel = func(i int) {
				if i >= len(ks) {
					for _, q := range batch {
						q.dnnDone = eng.Now()
						g.outstanding--
						finishQuery(q)
					}
					return
				}
				eng.After(cfg.Device.LaunchOverhead, func() {
					gpu.submit(ks[i], func() { runKernel(i + 1) })
				})
			}
			runKernel(0)
		}
		g.pcie.Acquire(bytes/cfg.LinkBW, afterPCIe)
	}

	enqueueAtGPU := func(g *gpuServer, q *queryState) {
		q.netDone = eng.Now()
		g.pending = append(g.pending, q)
		flush := func() {
			if len(g.pending) == 0 {
				return
			}
			batch := g.pending
			g.pending = nil
			if g.window != nil {
				g.window.Cancel()
				g.window = nil
			}
			flushBatch(g, batch)
		}
		if len(g.pending) >= cfg.BatchQueries {
			flush()
		} else if g.window == nil {
			g.window = eng.After(cfg.BatchWindow, func() {
				g.window = nil
				flush()
			})
		}
	}

	// The front-end dispatch tier: the same three policies the live
	// router implements, applied to GPU servers.
	gpuRR := 0
	pickGPU := func() *gpuServer {
		switch cfg.Policy {
		case router.LeastOutstanding:
			best := gpuTier[0]
			for _, g := range gpuTier[1:] {
				if g.outstanding < best.outstanding {
					best = g
				}
			}
			return best
		case router.PowerOfTwo:
			a := gpuTier[rng.Intn(len(gpuTier))]
			b := gpuTier[rng.Intn(len(gpuTier))]
			if b.outstanding < a.outstanding {
				return b
			}
			return a
		default: // router.RoundRobin
			g := gpuTier[gpuRR%len(gpuTier)]
			gpuRR++
			return g
		}
	}
	routeToGPU := func(q *queryState) {
		g := pickGPU()
		g.outstanding++
		if cfg.Design == Disaggregated {
			g.nic.Acquire(cfg.WireBytes/cfg.NetBW, func() { enqueueAtGPU(g, q) })
		} else {
			enqueueAtGPU(g, q)
		}
	}

	var arrive func()
	arrive = func() {
		q := &queryState{arrive: eng.Now()}
		runCPU(cfg.PreSeconds, func() {
			q.preDone = eng.Now()
			routeToGPU(q)
		})
		next := rng.ExpFloat64() / cfg.ArrivalRate
		if eng.Now()+next < duration {
			eng.After(next, arrive)
		}
	}
	eng.After(rng.ExpFloat64()/cfg.ArrivalRate, arrive)
	eng.Run()

	mean := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	res := Result{
		Completed: completed,
		Expired:   expired,
		QPS:       float64(completed) / (duration - warmup),
		MeanLat:   mean(latencies),
		MeanPre:   mean(pres),
		MeanNet:   mean(nets),
		MeanDNN:   mean(dnns),
		MeanWait:  mean(waits),
		MeanExec:  mean(execs),
		MeanPost:  mean(posts),
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		res.P95Lat = latencies[int(0.95*float64(len(latencies)))]
	}
	return res
}

// String renders the latency composition, splitting the DNN stage into
// batch-assembly wait and execution, plus deadline drops when present.
func (r Result) String() string {
	s := fmt.Sprintf("qps=%.1f lat=%.2fms (pre %.2f | net %.2f | dnn %.2f [wait %.2f exec %.2f] | post %.2f) p95=%.2fms",
		r.QPS, r.MeanLat*1e3, r.MeanPre*1e3, r.MeanNet*1e3, r.MeanDNN*1e3,
		r.MeanWait*1e3, r.MeanExec*1e3, r.MeanPost*1e3, r.P95Lat*1e3)
	if r.Expired > 0 {
		s += fmt.Sprintf(" expired=%d", r.Expired)
	}
	return s
}

// mpsWrap exposes the gpusim MPS scheduler for cluster use.
type mpsWrap struct {
	submit func(gpusim.KernelWork, func())
}

func newMPSWrap(eng *sim.Engine, d gpusim.DeviceSpec) *mpsWrap {
	s := gpusim.NewMPSScheduler(eng, d)
	return &mpsWrap{submit: func(w gpusim.KernelWork, done func()) { s.Submit(0, w, done) }}
}
