package cluster

import (
	"testing"

	"djinn/internal/gpusim"
	"djinn/internal/router"
)

func testConfig(d Design, rate float64) Config {
	dev := gpusim.K40()
	return Config{
		Design:       d,
		CPUServers:   4,
		CPUCores:     12,
		PreSeconds:   200e-6,
		PostSeconds:  150e-6,
		GPUServers:   2,
		GPUsPerSrv:   4,
		ProcsPerGPU:  4,
		Device:       dev,
		BatchQueries: 16,
		BatchWindow:  2e-3,
		BatchKernels: func(n int) []gpusim.KernelWork {
			return []gpusim.KernelWork{dev.Work(2e8*float64(n)/16, 1e6, 1<<20)}
		},
		WireBytes:   40e3,
		NetBW:       16e9,
		LinkBW:      15.75e9,
		ArrivalRate: rate,
		Seed:        3,
	}
}

func TestClusterThroughputTracksArrivals(t *testing.T) {
	res := Simulate(testConfig(Disaggregated, 20000), 2.0)
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if res.QPS < 16000 || res.QPS > 24000 {
		t.Fatalf("QPS %.0f, want ≈20000", res.QPS)
	}
}

func TestClusterLatencyComposition(t *testing.T) {
	res := Simulate(testConfig(Disaggregated, 20000), 2.0)
	// All stages contribute, and their means roughly sum to the total.
	sum := res.MeanPre + res.MeanNet + res.MeanDNN + res.MeanPost
	if res.MeanLat <= 0 || sum <= 0 {
		t.Fatalf("empty composition: %+v", res)
	}
	if diff := res.MeanLat - sum; diff > res.MeanLat*0.05 || diff < -res.MeanLat*0.05 {
		t.Fatalf("stages (%.5f) do not compose to the total (%.5f)", sum, res.MeanLat)
	}
	if res.MeanPre < 200e-6*0.9 {
		t.Fatalf("preprocessing %.6f below its service time", res.MeanPre)
	}
	if res.MeanNet <= 0 {
		t.Fatal("disaggregated design must show fabric time")
	}
	if res.P95Lat < res.MeanLat {
		t.Fatal("p95 below the mean")
	}
}

func TestIntegratedSkipsTheFabric(t *testing.T) {
	res := Simulate(testConfig(Integrated, 20000), 2.0)
	if res.MeanNet != 0 {
		t.Fatalf("integrated design shows %.6f of fabric time", res.MeanNet)
	}
	dis := Simulate(testConfig(Disaggregated, 20000), 2.0)
	// The disaggregated query pays the network hop; below both designs'
	// saturation points the difference is roughly that hop.
	if dis.MeanLat <= res.MeanLat {
		t.Fatalf("disaggregated latency %.6f should exceed integrated %.6f at low load", dis.MeanLat, res.MeanLat)
	}
}

func TestClusterDeterministic(t *testing.T) {
	a := Simulate(testConfig(Disaggregated, 10000), 1.0)
	b := Simulate(testConfig(Disaggregated, 10000), 1.0)
	if a.Completed != b.Completed || a.MeanLat != b.MeanLat {
		t.Fatal("cluster simulation not deterministic")
	}
}

func TestClusterCPUBoundWhenPreHeavy(t *testing.T) {
	// With expensive preprocessing and a tiny CPU tier, pre dominates.
	cfg := testConfig(Disaggregated, 5000)
	cfg.CPUServers = 1
	cfg.CPUCores = 2
	cfg.PreSeconds = 2e-3
	res := Simulate(cfg, 2.0)
	if res.MeanPre < res.MeanDNN {
		t.Fatalf("expected CPU-bound composition, got pre %.4f vs dnn %.4f", res.MeanPre, res.MeanDNN)
	}
}

func TestClusterWaitExecDecomposeDNN(t *testing.T) {
	res := Simulate(testConfig(Disaggregated, 20000), 2.0)
	if res.MeanWait <= 0 || res.MeanExec <= 0 {
		t.Fatalf("wait/exec split empty: %+v", res)
	}
	sum := res.MeanWait + res.MeanExec
	if diff := res.MeanDNN - sum; diff > res.MeanDNN*0.05 || diff < -res.MeanDNN*0.05 {
		t.Fatalf("wait %.6f + exec %.6f does not compose to dnn %.6f", res.MeanWait, res.MeanExec, res.MeanDNN)
	}
}

func TestClusterDeadlineDropsAtAssembly(t *testing.T) {
	// An overloaded cluster (one slow CPU tier feeding the GPUs) with a
	// tight deadline must drop queries at batch assembly rather than
	// running them; the ones that do complete met the budget.
	cfg := testConfig(Disaggregated, 20000)
	cfg.BatchQueries = 64
	cfg.BatchWindow = 20e-3 // window exceeds the deadline: lone queries expire
	cfg.Deadline = 5e-3
	res := Simulate(cfg, 2.0)
	if res.Expired == 0 {
		t.Fatalf("no queries expired under a %.0fms deadline with a %.0fms batch window: %+v",
			cfg.Deadline*1e3, cfg.BatchWindow*1e3, res)
	}
	// Without a deadline nothing expires.
	cfg.Deadline = 0
	if res := Simulate(cfg, 2.0); res.Expired != 0 {
		t.Fatalf("expired %d queries with no deadline configured", res.Expired)
	}
}

func TestClusterRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Simulate(Config{}, 1)
}

func TestResultString(t *testing.T) {
	res := Simulate(testConfig(Integrated, 5000), 0.5)
	if s := res.String(); len(s) < 20 {
		t.Fatalf("short render %q", s)
	}
}

func TestClusterRoutingPoliciesMirrorTheRouter(t *testing.T) {
	// The sim accepts the live router's three dispatch policies. Each
	// must serve the full arrival stream (no policy loses queries), stay
	// deterministic, and the load-aware policies must not do worse than
	// round-robin on batch-assembly wait across a homogeneous tier.
	rr := Simulate(testConfig(Disaggregated, 20000), 2.0)
	for _, pol := range []router.Policy{router.LeastOutstanding, router.PowerOfTwo} {
		cfg := testConfig(Disaggregated, 20000)
		cfg.Policy = pol
		res := Simulate(cfg, 2.0)
		if res.Completed == 0 {
			t.Fatalf("%v: nothing completed", pol)
		}
		if res.QPS < rr.QPS*0.9 || res.QPS > rr.QPS*1.1 {
			t.Fatalf("%v: QPS %.0f diverges from round-robin's %.0f", pol, res.QPS, rr.QPS)
		}
		if res.MeanWait > rr.MeanWait*2 {
			t.Fatalf("%v: assembly wait %.6f far exceeds round-robin's %.6f", pol, res.MeanWait, rr.MeanWait)
		}
		again := Simulate(cfg, 2.0)
		if again.Completed != res.Completed || again.MeanLat != res.MeanLat {
			t.Fatalf("%v: simulation not deterministic", pol)
		}
	}
}
