package service

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"djinn/internal/events"
	"djinn/internal/metrics"
	"djinn/internal/modelstore"
	"djinn/internal/nn"
	"djinn/internal/sched"
	"djinn/internal/trace"
)

// AppConfig controls batching and worker-pool parameters for one
// registered application.
type AppConfig struct {
	// BatchInstances is the number of DNN input instances aggregated
	// into one forward pass (queries × instances-per-query at the
	// Table 3 operating point). Zero means 64.
	BatchInstances int
	// MinBatchInstances floors the adaptive batch controller: under an
	// SLO the effective batch floats within [MinBatchInstances,
	// BatchInstances]. Setting it equal to BatchInstances pins the
	// batch size — useful when the backend's per-batch cost is fixed
	// and shrinking the batch only sheds capacity. Zero means 1.
	MinBatchInstances int
	// BatchWindow is how long the aggregator waits for a batch to fill
	// before flushing a partial one. Zero means 2ms.
	BatchWindow time.Duration
	// Workers is the number of concurrent inference workers (the
	// paper's concurrent DNN service instances; 4 is the paper's
	// chosen MPS operating point). Zero means 4.
	Workers int
	// IntraOpWorkers is the intra-op parallelism of each forward pass:
	// GEMM-backed layers split their output rows across this many
	// goroutines (CPU-only deployments use cores inside a batch as well
	// as across batches). Row blocks are disjoint, so results stay
	// bit-identical to serial execution. Zero or 1 runs serial kernels.
	IntraOpWorkers int
	// MaxPending bounds the queries waiting in the app's aggregation
	// queue; beyond it the service sheds load with an error instead of
	// letting latency grow without bound. Zero means 1024.
	MaxPending int
	// SLO declares a target p99 latency for the app. A non-zero SLO
	// enables the scheduler: admission control rejects queries that
	// cannot meet their deadline before they enter the queue, and an
	// adaptive controller resizes the effective batch size and flush
	// window within [1, BatchInstances] to hold p99 at the SLO. Zero
	// keeps the paper's static batching.
	SLO time.Duration
	// Priority is the app's tenant class at the cross-app execution
	// gate (see Server.SetSchedSlots). Zero is sched.Throughput.
	Priority sched.Priority
	// Precision selects the kernel backend the app's execution plans
	// compile against: nn.Float32 (the zero value) is the reference
	// path, nn.Float32Packed the panel-packing float32 kernels
	// (bit-identical outputs), nn.Int8 the quantized path (int8
	// weights and activations, int32 accumulation, ~99%+ top-1
	// agreement). The app's whole plan pool is compiled at this
	// precision, so pools are keyed by (app, version, precision) —
	// serving one model at two precisions means registering it twice
	// (e.g. "imc" and "imc@v2" with different configs).
	Precision nn.Precision
}

func (c AppConfig) withDefaults() AppConfig {
	if c.BatchInstances <= 0 {
		c.BatchInstances = 64
	}
	if c.MinBatchInstances > c.BatchInstances {
		c.MinBatchInstances = c.BatchInstances
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.IntraOpWorkers <= 0 {
		c.IntraOpWorkers = 1
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 1024
	}
	return c
}

// Stats is a snapshot of one application's service counters.
type Stats struct {
	Queries   int64 // requests served
	Instances int64 // DNN input instances processed
	Batches   int64 // forward passes executed
	Errors    int64 // malformed payloads and worker failures
	// ShedAdmission counts queries rejected before they entered the
	// queue — the pending queue was full, or the admission controller
	// estimated they could not meet their deadline.
	ShedAdmission int64
	// ShedExpired counts queries that were admitted but died in the
	// queue: their deadline passed before batch assembly reached them.
	// A scheduler doing its job converts these into ShedAdmission.
	ShedExpired int64
	// Expired counts caller-side expiries: queries that arrived already
	// dead, or whose caller abandoned the wait for a response.
	Expired int64
}

// Shed is the total load shed before execution, both flavours.
func (s Stats) Shed() int64 { return s.ShedAdmission + s.ShedExpired }

// AvgBatch returns the mean instances per forward pass.
func (s Stats) AvgBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Instances) / float64(s.Batches)
}

type app struct {
	name          string
	net           *nn.Net
	cfg           AppConfig
	sampleIn      int // floats per input instance
	sampleOut     int
	reqCh         chan *request
	stages        *metrics.StageBreakdown
	e2e           *metrics.Histogram           // end-to-end served latency (enqueue → respond), fleet-mergeable
	traces        *atomic.Pointer[trace.Store] // the server's store, shared
	tput          *metrics.Throughput          // the server's completion rate, shared
	ctrl          *sched.Controller            // nil unless cfg.SLO > 0
	gate          *sched.Gate                  // the server's execution gate (nil = unlimited)
	batchSeq      atomic.Int64                 // batch ids for trace annotation
	queries       atomic.Int64
	instances     atomic.Int64
	batches       atomic.Int64
	errors        atomic.Int64
	shedAdmission atomic.Int64
	shedExpired   atomic.Int64
	expired       atomic.Int64
	timerWakeups  atomic.Int64  // aggregator flush-timer fires (lazy timer)
	plans         chan *nn.Plan // compiled execution-plan pool, one checkout per batch

	// gateMu serialises enqueues against shutdown: dispatch holds the
	// read side across its (non-blocking) send, stop takes the write
	// side to flip closed. After that handover no new request can enter
	// reqCh, so the aggregator's final drain is exhaustive.
	gateMu sync.RWMutex
	closed bool

	// Per-app lifecycle: each app owns its aggregator and workers, so
	// one app can be drained and unregistered (a model eviction) while
	// its siblings keep serving. closing stops the aggregator; wg
	// tracks the aggregator and every worker.
	closing  chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once
}

// stop drains the app: close the admission gate (new enqueues fail
// with ErrShuttingDown), stop the aggregator (the batch under assembly
// still runs; queued stragglers fail), and wait for the aggregator and
// every worker to exit. Idempotent and safe to call concurrently.
func (a *app) stop() {
	a.gateMu.Lock()
	a.closed = true
	a.gateMu.Unlock()
	a.stopOnce.Do(func() { close(a.closing) })
	a.wg.Wait()
}

// enqueue admits a request to the app's aggregation queue, shedding
// load when the queue is full and rejecting once the server drains.
func (a *app) enqueue(req *request) error {
	a.gateMu.RLock()
	defer a.gateMu.RUnlock()
	if a.closed {
		return fmt.Errorf("%w: %s rejected during drain", ErrShuttingDown, a.name)
	}
	select {
	case a.reqCh <- req:
		return nil
	default:
		// Aggregation queue full: shed load rather than queue unboundedly.
		a.shedAdmission.Add(1)
		return fmt.Errorf("%w: %s (%d queries pending)", ErrOverloaded, a.name, cap(a.reqCh))
	}
}

// Server is the DjiNN service: a model registry plus a TCP front-end.
type Server struct {
	mu       sync.Mutex
	apps     map[string]*app
	listener net.Listener
	conns    map[net.Conn]struct{}
	closing  chan struct{} // closed first: stop admitting, start drain
	done     chan struct{} // closed last: drain finished
	wg       sync.WaitGroup
	logf     func(format string, args ...any)
	traces   atomic.Pointer[trace.Store]
	tput     *metrics.Throughput
	gate     *sched.Gate // cross-app execution gate; nil = unlimited slots

	// Model store (see models.go): when attached, queries for names
	// that are not registered apps fault their model in from disk.
	store    *modelstore.Registry
	storeCfg AppConfig // batching config for store-backed apps

	// Fleet observability (optional): the shared event journal this
	// server appends model-lifecycle transitions to, and the injected
	// handler behind the "alerts" control verb (the burn-rate engine
	// lives above the service layer; a plain func avoids the upward
	// dependency).
	journal   atomic.Pointer[journalRef]
	alertsCtl atomic.Pointer[func(args []string) (string, error)]
}

// journalRef pairs the shared journal with this server's source label
// ("replica-2"), so one atomic pointer swaps both.
type journalRef struct {
	j      *events.Journal
	source string
}

// NewServer creates an empty DjiNN server. Register applications before
// serving.
func NewServer() *Server {
	s := &Server{
		apps:    map[string]*app{},
		conns:   map[net.Conn]struct{}{},
		closing: make(chan struct{}),
		done:    make(chan struct{}),
		logf:    log.Printf,
		tput:    metrics.NewThroughput(),
	}
	s.traces.Store(trace.NewStore("server", trace.DefaultStoreSize))
	return s
}

// SetLogger replaces the server's log function (tests use a silent one).
func (s *Server) SetLogger(logf func(string, ...any)) { s.logf = logf }

// TraceStore returns the server's bounded span store: every query that
// arrives with a trace ID leaves its lifecycle spans here.
func (s *Server) TraceStore() *trace.Store { return s.traces.Load() }

// SetTraceStore replaces the server's span store (a multi-replica
// process gives each replica a store labelled with its name). Call
// before serving; in-flight queries may still annotate the old store.
func (s *Server) SetTraceStore(st *trace.Store) {
	if st != nil {
		s.traces.Store(st)
	}
}

// Throughput returns the server's completion counter: one Add per
// successfully answered query, across all apps. Its RecentRate is the
// "current load" a metrics scrape reports.
func (s *Server) Throughput() *metrics.Throughput { return s.tput }

// SetJournal attaches the shared fleet event journal; source labels
// this server's entries (e.g. "replica-2"). Model registrations,
// fault-ins and eviction drains append here, and the "events" control
// verb reads from it.
func (s *Server) SetJournal(j *events.Journal, source string) {
	if source == "" {
		source = "server"
	}
	s.journal.Store(&journalRef{j: j, source: source})
}

// Journal returns the attached event journal (nil when none).
func (s *Server) Journal() *events.Journal {
	if ref := s.journal.Load(); ref != nil {
		return ref.j
	}
	return nil
}

// journalf appends one formatted event to the attached journal; a
// no-op when none is attached.
func (s *Server) journalf(kind events.Kind, format string, args ...any) {
	if ref := s.journal.Load(); ref != nil {
		ref.j.Appendf(kind, ref.source, format, args...)
	}
}

// SetAlertsControl injects the handler behind the "alerts" control
// verb (the admin wiring points it at the burn-rate engine).
func (s *Server) SetAlertsControl(fn func(args []string) (string, error)) {
	if fn == nil {
		s.alertsCtl.Store(nil)
		return
	}
	s.alertsCtl.Store(&fn)
}

// RequestHistogram returns one application's end-to-end served-latency
// histogram (enqueue → response). Fixed buckets make per-replica
// snapshots mergeable, which is what lets the fleet collector compute
// a true fleet p99 instead of averaging per-replica quantiles.
func (s *Server) RequestHistogram(name string) (metrics.HistogramSnapshot, bool) {
	a, ok := s.app(name)
	if !ok {
		return metrics.HistogramSnapshot{}, false
	}
	return a.e2e.Snapshot(), true
}

// SetSchedSlots bounds how many batch executions may run concurrently
// across all applications; when slots are contended, pending batches
// are granted by weighted round-robin over the apps' priority classes,
// so a latency-critical tenant's batch preempts queued throughput
// work. Zero or negative means unlimited (the default). Call before
// Register — apps capture the gate at registration time.
func (s *Server) SetSchedSlots(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gate = sched.NewGate(n)
}

// Register adds an application backed by a network whose weights are
// shared read-only across the app's workers. It returns an error if the
// name is taken.
func (s *Server) Register(name string, netw *nn.Net, cfg AppConfig) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.closing:
		return fmt.Errorf("%w: cannot register %q", ErrShuttingDown, name)
	default:
	}
	if _, ok := s.apps[name]; ok {
		return fmt.Errorf("service: app %q already registered", name)
	}
	cfg = cfg.withDefaults()
	if err := netw.CheckPrecision(cfg.Precision); err != nil {
		return fmt.Errorf("service: cannot register %q at %s: %w", name, cfg.Precision, err)
	}
	a := &app{
		name: name, net: netw, cfg: cfg,
		sampleIn:  elems(netw.InShape()),
		sampleOut: elems(netw.OutShape()),
		reqCh:     make(chan *request, cfg.MaxPending),
		stages:    metrics.NewStageBreakdown(),
		e2e:       metrics.NewHistogram(nil),
		traces:    &s.traces,
		tput:      s.tput,
		gate:      s.gate,
		closing:   make(chan struct{}),
	}
	if cfg.SLO > 0 {
		a.ctrl = sched.NewController(sched.Config{
			SLO:      cfg.SLO,
			Priority: cfg.Priority,
			MaxBatch: cfg.BatchInstances,
			Workers:  cfg.Workers,
			AIMD:     sched.AIMDConfig{Min: cfg.MinBatchInstances},
		})
	}
	s.apps[name] = a
	if a.ctrl != nil {
		s.logf("service: registered %s (%d params, %.1f MB, %s, adaptive batch ≤%d instances, slo %v, priority %v, %d workers)",
			name, netw.ParamCount(), float64(netw.WeightBytes())/(1<<20), cfg.Precision, cfg.BatchInstances, cfg.SLO, cfg.Priority, cfg.Workers)
	} else {
		s.logf("service: registered %s (%d params, %.1f MB, %s, batch %d instances, %d workers)",
			name, netw.ParamCount(), float64(netw.WeightBytes())/(1<<20), cfg.Precision, cfg.BatchInstances, cfg.Workers)
	}
	s.journalf(events.KindModel, "loaded %s (%.1f MB, %d workers)", name, float64(netw.WeightBytes())/(1<<20), cfg.Workers)
	batchCh := make(chan []*request, cfg.Workers)
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		a.aggregate(batchCh, a.closing)
	}()
	// Compile the app's execution plans once at registration — DjiNN's
	// load-once model extended to the forward path itself: weights are
	// shared read-only, and each plan carries the precomputed activation
	// views, arenas and scratch a batch needs, so the steady-state
	// forward path allocates nothing. Workers check a plan out of the
	// pool per batch and return it when done.
	a.plans = make(chan *nn.Plan, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		a.plans <- netw.CompileOpts(cfg.BatchInstances, nn.CompileOpts{Workers: cfg.IntraOpWorkers, Precision: cfg.Precision})
	}
	for w := 0; w < cfg.Workers; w++ {
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.work(batchCh)
		}()
	}
	return nil
}

// Unregister drains and removes one application at runtime: the
// admission gate closes (new queries fail with ErrShuttingDown), the
// batch under assembly runs to completion, queued stragglers fail, and
// Unregister returns only after the aggregator and every worker have
// exited — after which nothing in the server can touch the app's
// network, so a memory-mapped model's pages are safe to unmap. This is
// the teardown half of the model lifecycle; the model store's eviction
// hook is its main caller.
func (s *Server) Unregister(name string) error {
	s.mu.Lock()
	a, ok := s.apps[name]
	if ok {
		delete(s.apps, name)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("service: unknown application %q", name)
	}
	a.stop()
	s.logf("service: unregistered %s", name)
	s.journalf(events.KindModel, "evicted %s (drained, %d queries served)", name, a.queries.Load())
	return nil
}

func elems(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// Apps returns the registered application names.
func (s *Server) Apps() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.apps))
	for n := range s.apps {
		names = append(names, n)
	}
	return names
}

func (s *Server) app(name string) (*app, bool) {
	s.mu.Lock()
	a, ok := s.apps[name]
	s.mu.Unlock()
	return a, ok
}

// StatsFor returns the counters of one application. The three
// batch-path counters are loaded in the inverse of runBatch's increment
// order (batches per chunk, then instances, then queries per response):
// each counter is read before any counter that is bumped earlier, so a
// snapshot taken concurrently with a completing batch can never tear
// into an impossible state — Queries ≤ Instances always holds, and
// Instances > 0 implies Batches > 0.
func (s *Server) StatsFor(name string) (Stats, bool) {
	a, ok := s.app(name)
	if !ok {
		return Stats{}, false
	}
	queries := a.queries.Load()
	instances := a.instances.Load()
	batches := a.batches.Load()
	return Stats{
		Queries:       queries,
		Instances:     instances,
		Batches:       batches,
		Errors:        a.errors.Load(),
		ShedAdmission: a.shedAdmission.Load(),
		ShedExpired:   a.shedExpired.Load(),
		Expired:       a.expired.Load(),
	}, true
}

// PrecisionFor returns the kernel precision one application's plan pool
// was compiled at.
func (s *Server) PrecisionFor(name string) (nn.Precision, bool) {
	a, ok := s.app(name)
	if !ok {
		return nn.Float32, false
	}
	return a.cfg.Precision, true
}

// SchedFor returns the live scheduler snapshot of one application, or
// false if the app is unknown or registered without an SLO.
func (s *Server) SchedFor(name string) (sched.Info, bool) {
	a, ok := s.app(name)
	if !ok || a.ctrl == nil {
		return sched.Info{}, false
	}
	return a.ctrl.Snapshot(), true
}

// LatencyFor returns the per-stage lifecycle breakdown of one
// application: queue wait, batch assembly, forward pass, response
// delivery.
func (s *Server) LatencyFor(name string) (metrics.StageSummary, bool) {
	a, ok := s.app(name)
	if !ok {
		return metrics.StageSummary{}, false
	}
	return a.stages.Summarize(), true
}

// StageHistogram returns one application's fixed-bucket latency
// histogram for one lifecycle stage — the aggregatable counterpart of
// LatencyFor's reservoir summaries, exported by the admin /metrics
// endpoint in Prometheus form.
func (s *Server) StageHistogram(name string, stage metrics.Stage) (metrics.HistogramSnapshot, bool) {
	a, ok := s.app(name)
	if !ok {
		return metrics.HistogramSnapshot{}, false
	}
	return a.stages.HistogramFor(stage), true
}

// batchTarget is the instance count that triggers a flush: the
// adaptive controller's live batch size when scheduling is enabled,
// the static BatchInstances otherwise.
func (a *app) batchTarget() int {
	if a.ctrl != nil {
		return a.ctrl.BatchSize()
	}
	return a.cfg.BatchInstances
}

// flushWindow is how long a partial batch may wait to fill.
func (a *app) flushWindow() time.Duration {
	if a.ctrl != nil {
		return a.ctrl.Window()
	}
	return a.cfg.BatchWindow
}

// aggregate collects requests into batches: it flushes when the pending
// instance count reaches the batch target or when the flush window has
// elapsed since the first pending request — the cross-request batching
// that Section 5.1 shows is key to GPU throughput. Queries whose
// deadline has already expired are failed here, at batch-assembly time,
// so a dead query never occupies forward-pass capacity.
//
// The flush timer is lazy: one timer for the aggregator's lifetime,
// armed only while a partial batch is pending. An idle app therefore
// performs no timer wakeups at all (timerWakeups counts the fires).
func (a *app) aggregate(batchCh chan<- []*request, closing <-chan struct{}) {
	defer close(batchCh)
	var (
		pending   []*request
		instances int
		armed     bool
	)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	disarm := func() {
		if !armed {
			return
		}
		armed = false
		if !timer.Stop() {
			// The timer fired while we were flushing on the size
			// threshold; drain the stale tick so the next arm's fire is
			// the only value ever in the channel.
			select {
			case <-timer.C:
			default:
			}
		}
	}
	flush := func() {
		if len(pending) == 0 {
			return
		}
		now := time.Now()
		for _, req := range pending {
			req.flushed = now
		}
		batchCh <- pending
		pending, instances = nil, 0
		disarm()
	}
	admit := func(req *request) {
		req.dequeued = time.Now()
		if req.expired() {
			// Balance the admission account before the respond race:
			// the request leaves the pipeline here whether or not its
			// caller already abandoned the wait (in which case respond
			// loses the CAS), and an un-Dropped admit would leak queued
			// instances into every future delay estimate.
			if a.ctrl != nil {
				a.ctrl.Dropped(req.instances)
			}
			if req.respond(result{err: fmt.Errorf("%w: expired after %v in queue", ErrDeadlineExceeded, req.dequeued.Sub(req.enqueued).Round(time.Microsecond))}) {
				a.shedExpired.Add(1)
				a.traceSpans(req, trace.Span{
					Name: "queue_wait", Start: req.enqueued,
					Dur: req.dequeued.Sub(req.enqueued), Note: "expired in queue",
				})
			}
			return
		}
		if len(pending) == 0 {
			timer.Reset(a.flushWindow())
			armed = true
		}
		pending = append(pending, req)
		instances += req.instances
		if instances >= a.batchTarget() {
			flush()
		}
	}
	for {
		select {
		case <-closing:
			// Graceful drain: the batch under assembly still runs, but
			// stragglers waiting in the queue fail immediately. The
			// enqueue gate is already closed, so this drain sees every
			// request that will ever be on reqCh.
			flush()
			for {
				select {
				case req := <-a.reqCh:
					// Dropped regardless of the respond race: an
					// abandoned caller has claimed the response slot
					// already, but the admitted instances still leave
					// the pipeline here.
					if a.ctrl != nil {
						a.ctrl.Dropped(req.instances)
					}
					req.respond(result{err: fmt.Errorf("%w: %s drained before execution", ErrShuttingDown, a.name)})
				default:
					return
				}
			}
		case req := <-a.reqCh:
			admit(req)
		case <-timer.C:
			a.timerWakeups.Add(1)
			armed = false
			flush()
		}
	}
}

// traceSpans annotates a traced request's lifecycle spans into the
// server's span store. It is a no-op for untraced requests, so the
// only cost tracing adds to an untraced query is this nil check.
func (a *app) traceSpans(req *request, spans ...trace.Span) {
	if req.traceID == "" {
		return
	}
	if st := a.traces.Load(); st != nil {
		st.Add(req.traceID, spans...)
	}
}

// work executes batches on plans checked out of the app's pool. A batch
// may exceed a plan's capacity when a single query carries many
// instances (an ASR query is 548 frames); the worker then chunks the
// forward passes.
func (a *app) work(batchCh <-chan []*request) {
	for batch := range batchCh {
		plan := <-a.plans
		a.runBatch(plan, batch)
		a.plans <- plan
	}
}

// runBatch runs one aggregated batch, records per-stage timings, and
// guarantees every request in the batch receives exactly one response:
// a panic anywhere in the forward path fails the batch's requests with
// an error instead of deadlocking their callers.
func (a *app) runBatch(plan *nn.Plan, batch []*request) {
	// Gather all instances across the batch's requests.
	total := 0
	for _, r := range batch {
		total += r.instances
	}
	accounted := false
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("service: %s worker panic: %v", a.name, r)
			for _, req := range batch {
				if req.respond(result{err: err}) {
					a.errors.Add(1)
				}
			}
			if a.ctrl != nil && !accounted {
				a.ctrl.Dropped(total)
			}
		}
	}()
	// Contend for an execution slot: when the server's gate is
	// configured, pending batches across apps are granted by tenant
	// priority, so this wait is where a latency-critical app's batch
	// overtakes queued throughput work.
	a.gate.Acquire(context.Background(), a.cfg.Priority)
	defer a.gate.Release()
	forwardStart := time.Now()
	batchID := a.batchSeq.Add(1)
	maxB := plan.MaxBatch()
	// One output array per batch; per-request responses are capped
	// subslices of it, so the scatter below allocates nothing further
	// and copies nothing. (Callers own their response slice forever,
	// which is why this array cannot be pooled.)
	out := make([]float32, total*a.sampleOut)
	// Gather request payloads directly into each chunk's plan input
	// arena — no intermediate flat buffer, no per-chunk input tensor. A
	// request's instances may straddle chunk boundaries (ASR: 548
	// instances vs. a 64-instance plan), so a cursor tracks the partial
	// request across chunks.
	ri, ro := 0, 0 // request cursor: batch index, float offset within its payload
	for off := 0; off < total; off += maxB {
		n := total - off
		if n > maxB {
			n = maxB
		}
		dst := plan.In(n).Data()
		for filled, need := 0, n*a.sampleIn; filled < need; {
			c := copy(dst[filled:need], batch[ri].in[ro:])
			filled += c
			ro += c
			if ro == len(batch[ri].in) {
				ri++
				ro = 0
			}
		}
		res := plan.Run(n)
		copy(out[off*a.sampleOut:(off+n)*a.sampleOut], res.Data()[:n*a.sampleOut])
		a.batches.Add(1)
	}
	a.instances.Add(int64(total))
	forwardDone := time.Now()
	forward := forwardDone.Sub(forwardStart)
	if a.ctrl != nil {
		a.ctrl.ObserveBatch(forward, total)
		a.ctrl.Executed(total)
		accounted = true
	}
	// Scatter results back to requests.
	off := 0
	for _, r := range batch {
		n := r.instances * a.sampleOut
		resp := out[off : off+n : off+n]
		off += n
		if r.respond(result{out: resp}) {
			a.queries.Add(1)
			a.tput.Add(1)
			e2e := time.Since(r.enqueued)
			a.e2e.RecordEx(e2e, r.traceID)
			if a.ctrl != nil {
				a.ctrl.Complete(e2e)
			}
		}
		a.stages.RecordEx(metrics.StageQueueWait, r.dequeued.Sub(r.enqueued), r.traceID)
		a.stages.RecordEx(metrics.StageBatchAssembly, r.flushed.Sub(r.dequeued), r.traceID)
		a.stages.RecordEx(metrics.StageForward, forward, r.traceID)
		respond := time.Since(forwardDone)
		a.stages.RecordEx(metrics.StageRespond, respond, r.traceID)
		a.traceSpans(r,
			trace.Span{Name: "queue_wait", Start: r.enqueued, Dur: r.dequeued.Sub(r.enqueued)},
			trace.Span{Name: "batch_assembly", Start: r.dequeued, Dur: r.flushed.Sub(r.dequeued),
				Note: fmt.Sprintf("batch=%d size=%d instances=%d", batchID, len(batch), total)},
			trace.Span{Name: "forward", Start: forwardStart, Dur: forward},
			trace.Span{Name: "respond", Start: forwardDone, Dur: respond})
	}
}

// Serve accepts connections on l until Close is called.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closing:
				// Graceful shutdown: don't return until the drain has
				// finished, so callers of ListenAndServe can exit as
				// soon as it does.
				<-s.done
				return nil
			default:
				return err
			}
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Addr returns the listening address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// handle runs one connection: a loop of request → batched inference →
// response. Multiple requests from one connection are processed in
// order. Control frames (apps/stats/latency introspection) interleave
// freely with inference requests.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		magic, err := readUint32(conn)
		if err != nil {
			return // EOF: connection closed
		}
		switch magic {
		case reqMagic, reqTraceMagic:
			var traceID string
			if magic == reqTraceMagic {
				var terr error
				if traceID, terr = readTraceHeader(conn); terr != nil {
					return // oversized or truncated trace header: drop the connection
				}
			}
			appName, budget, in, err := readRequestBody(conn)
			if err != nil {
				return
			}
			ctx := context.Background()
			if traceID != "" {
				ctx = trace.WithID(ctx, traceID)
			}
			var cancel context.CancelFunc
			if budget > 0 {
				ctx, cancel = context.WithTimeout(ctx, budget)
			}
			out, err := s.dispatch(ctx, appName, in)
			if cancel != nil {
				cancel()
			}
			if err != nil {
				if werr := writeResponse(conn, statusFor(err), err.Error(), nil); werr != nil {
					return
				}
				continue
			}
			if err := writeResponse(conn, StatusOK, "", out); err != nil {
				return
			}
		case ctrlMagic:
			cmd, err := readControlBody(conn)
			if err != nil {
				return
			}
			answer, err := s.control(cmd)
			status := byte(StatusOK)
			if err != nil {
				status, answer = StatusError, err.Error()
			}
			if err := writeResponse(conn, status, answer, nil); err != nil {
				return
			}
		default:
			return // protocol violation: drop the connection
		}
	}
}

// control answers a control command: "apps" lists registered
// applications; "stats <app>" reports an application's counters;
// "latency <app>" reports its per-stage lifecycle breakdown;
// "sched <app>" reports the live scheduler state (batch size, flush
// window, admission counters) or "disabled" for a static app;
// "precision [app]" reports the kernel precision an app's plan pool was
// compiled at (all apps when the name is omitted);
// "trace <id>" renders the spans recorded for one traced query and
// "trace slowest [n]" lists the worst retained traces;
// "model list|stats|register|load|evict" drives the model store's
// registry and lifecycle (see controlModel in models.go);
// "events [n] | events since <seq> | events kind <kind> [n]" reads the
// attached fleet event journal; "alerts" reaches the injected
// burn-rate alert engine.
func (s *Server) control(cmd string) (string, error) {
	fields := strings.Fields(cmd)
	if len(fields) == 0 {
		return "", errors.New("service: empty control command")
	}
	switch fields[0] {
	case "trace":
		return s.controlTrace(fields[1:])
	case "model":
		return s.controlModel(fields[1:])
	case "events":
		return s.Journal().Control(fields[1:])
	case "alerts":
		if fn := s.alertsCtl.Load(); fn != nil {
			return (*fn)(fields[1:])
		}
		return "", errors.New("service: no alert engine attached")
	case "apps":
		names := s.Apps()
		sort.Strings(names)
		return strings.Join(names, " "), nil
	case "stats":
		if len(fields) != 2 {
			return "", errors.New("service: usage: stats <app>")
		}
		st, ok := s.StatsFor(fields[1])
		if !ok {
			return "", fmt.Errorf("service: unknown application %q", fields[1])
		}
		return fmt.Sprintf("queries=%d instances=%d batches=%d errors=%d shed_admission=%d shed_expired=%d expired=%d avg_batch=%.2f",
			st.Queries, st.Instances, st.Batches, st.Errors, st.ShedAdmission, st.ShedExpired, st.Expired, st.AvgBatch()), nil
	case "sched":
		if len(fields) != 2 {
			return "", errors.New("service: usage: sched <app>")
		}
		if _, ok := s.app(fields[1]); !ok {
			return "", fmt.Errorf("service: unknown application %q", fields[1])
		}
		info, ok := s.SchedFor(fields[1])
		if !ok {
			return "disabled", nil
		}
		return info.String(), nil
	case "precision":
		if len(fields) > 2 {
			return "", errors.New("service: usage: precision [app]")
		}
		if len(fields) == 2 {
			prec, ok := s.PrecisionFor(fields[1])
			if !ok {
				return "", fmt.Errorf("service: unknown application %q", fields[1])
			}
			return prec.String(), nil
		}
		names := s.Apps()
		sort.Strings(names)
		var sb strings.Builder
		for i, name := range names {
			if i > 0 {
				sb.WriteByte('\n')
			}
			prec, _ := s.PrecisionFor(name)
			fmt.Fprintf(&sb, "%s %s", name, prec)
		}
		if sb.Len() == 0 {
			return "no applications registered", nil
		}
		return sb.String(), nil
	case "latency":
		if len(fields) != 2 {
			return "", errors.New("service: usage: latency <app>")
		}
		sum, ok := s.LatencyFor(fields[1])
		if !ok {
			return "", fmt.Errorf("service: unknown application %q", fields[1])
		}
		return sum.String(), nil
	default:
		return "", fmt.Errorf("service: unknown control command %q", fields[0])
	}
}

// controlTrace answers the "trace" control verb: "trace <id>" renders
// one trace's span timeline, "trace slowest [n]" lists the n worst
// retained traces as "id total spans" lines (default 5).
func (s *Server) controlTrace(args []string) (string, error) {
	st := s.traces.Load()
	if st == nil || len(args) == 0 {
		return "", errors.New("service: usage: trace <id> | trace slowest [n]")
	}
	if args[0] != "slowest" {
		if len(args) != 1 {
			return "", errors.New("service: usage: trace <id> | trace slowest [n]")
		}
		tr, ok := st.Get(args[0])
		if !ok {
			return "", fmt.Errorf("service: no trace %q retained (store keeps the last %d traced queries)", args[0], st.Len())
		}
		return tr.Format(), nil
	}
	n := 5
	if len(args) > 1 {
		v, err := strconv.Atoi(args[1])
		if err != nil || v <= 0 {
			return "", errors.New("service: usage: trace slowest [n]")
		}
		n = v
	}
	slowest := st.Slowest(n)
	if len(slowest) == 0 {
		return "no traces retained (send queries with a trace ID)", nil
	}
	var sb strings.Builder
	for i, tr := range slowest {
		if i > 0 {
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "%s total=%v spans=%d", tr.ID, tr.Duration().Round(time.Microsecond), len(tr.Spans))
	}
	return sb.String(), nil
}

// dispatch routes one query payload to its application and waits for
// the batched result. It is also the in-process entry point used by
// tests and by Tonic running in embedded mode. The context bounds the
// whole lifecycle: an already-expired context is rejected before the
// query ever occupies a batch slot, and a deadline that fires while the
// query is queued abandons the wait instead of blocking forever.
func (s *Server) dispatch(ctx context.Context, appName string, in []float32) ([]float32, error) {
	a, ok := s.app(appName)
	if !ok {
		// Not a registered app: fault the model in from the store, if
		// one is attached (see models.go).
		return s.dispatchStored(ctx, appName, in)
	}
	return s.dispatchApp(ctx, a, in)
}

// dispatchApp runs one query against a resolved application.
func (s *Server) dispatchApp(ctx context.Context, a *app, in []float32) ([]float32, error) {
	appName := a.name
	if len(in) == 0 || len(in)%a.sampleIn != 0 {
		a.errors.Add(1)
		return nil, fmt.Errorf("service: %s payload of %d floats is not a multiple of the %d-float input", appName, len(in), a.sampleIn)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		a.expired.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrDeadlineExceeded, err)
	}
	req := &request{
		ctx:       ctx,
		in:        in,
		instances: len(in) / a.sampleIn,
		traceID:   trace.IDFrom(ctx),
		enqueued:  time.Now(),
		resp:      make(chan result, 1),
	}
	if a.ctrl != nil {
		// Admission control: reject now if the live delay estimate says
		// this query cannot meet its budget, instead of letting it rot
		// in the queue until batch assembly notices the corpse. The
		// budget is the caller's remaining deadline, capped by the SLO
		// the app promises.
		budget := a.ctrl.SLO()
		if dl, ok := ctx.Deadline(); ok {
			if rem := time.Until(dl); rem < budget {
				budget = rem
			}
		}
		est, ok := a.ctrl.Admit(budget, req.instances)
		if !ok {
			a.shedAdmission.Add(1)
			a.traceSpans(req, trace.Span{Name: "admission", Start: req.enqueued,
				Dur: time.Since(req.enqueued), Note: fmt.Sprintf("rejected: est %v > budget %v", est, budget)})
			return nil, fmt.Errorf("%w: %s admission rejected (est %v exceeds budget %v)",
				ErrOverloaded, appName, est.Round(time.Microsecond), budget.Round(time.Microsecond))
		}
	}
	if err := a.enqueue(req); err != nil {
		if a.ctrl != nil {
			a.ctrl.Dropped(req.instances)
		}
		a.traceSpans(req, trace.Span{Name: "enqueue", Start: req.enqueued,
			Dur: time.Since(req.enqueued), Note: "rejected: " + err.Error()})
		return nil, err
	}
	// Every enqueued request is guaranteed exactly one response (worker
	// result, worker-panic error, expiry at batch assembly, or drain
	// error), so waiting on resp alone cannot hang; ctx lets the caller
	// abandon the wait early.
	select {
	case res := <-req.resp:
		return res.out, res.err
	case <-ctx.Done():
		// Claim the response slot so the late worker result (if any) is
		// discarded and counted as expired exactly once.
		if req.respond(result{}) {
			a.expired.Add(1)
			a.traceSpans(req, trace.Span{Name: "abandoned", Start: req.enqueued,
				Dur: time.Since(req.enqueued), Note: "caller deadline expired during wait"})
		}
		return nil, fmt.Errorf("%w: %v", ErrDeadlineExceeded, ctx.Err())
	}
}

// InferCtx runs one query in-process under a context, bypassing TCP but
// using the same batching and worker machinery.
func (s *Server) InferCtx(ctx context.Context, appName string, in []float32) ([]float32, error) {
	return s.dispatch(ctx, appName, in)
}

// Infer runs one query in-process without a deadline. Useful for
// embedded deployments and tests.
func (s *Server) Infer(appName string, in []float32) ([]float32, error) {
	return s.dispatch(context.Background(), appName, in)
}

// Close stops the server gracefully: it stops accepting new queries and
// connections, lets batches already under assembly run to completion,
// fails queued stragglers with ErrShuttingDown, and waits for every
// worker to exit. Outstanding Infer calls are always unblocked — with a
// result if their batch was in flight, with an error otherwise.
func (s *Server) Close() {
	s.mu.Lock()
	select {
	case <-s.closing:
		s.mu.Unlock()
		<-s.done
		return
	default:
	}
	// Close the admission gates first: once every in-flight enqueue has
	// drained past its RLock, no new request can appear on any reqCh.
	// Holding s.mu keeps this atomic with respect to Register, so no
	// app can slip in between the gate sweep and the closing signal.
	apps := make([]*app, 0, len(s.apps))
	for _, a := range s.apps {
		a.gateMu.Lock()
		a.closed = true
		a.gateMu.Unlock()
		a.stopOnce.Do(func() { close(a.closing) })
		apps = append(apps, a)
	}
	close(s.closing)
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	for _, a := range apps {
		a.wg.Wait()
	}
	close(s.done)
}
