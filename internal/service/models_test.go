package service

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"djinn/internal/modelstore"
	"djinn/internal/tensor"
	"djinn/internal/testutil"
)

// storeCfg is a small batching config for store-backed test apps.
var storeCfg = AppConfig{BatchInstances: 4, BatchWindow: 200 * time.Microsecond, Workers: 1}

// exportModels writes n versions of testNet-shaped models named
// "m000".."m(n-1)" (each a distinct seed) into a temp dir and returns
// their paths.
func exportModels(t *testing.T, n int) []string {
	t.Helper()
	dir := t.TempDir()
	paths := make([]string, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("m%03d", i)
		paths[i] = filepath.Join(dir, name+".djw")
		if err := modelstore.WriteFile(paths[i], name, 1, testNet(uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

func TestUnregisterDrainsOneApp(t *testing.T) {
	testutil.NoLeaks(t)
	s := NewServer()
	s.SetLogger(silence)
	defer s.Close()
	cfg := AppConfig{BatchInstances: 2, BatchWindow: time.Millisecond, Workers: 1}
	if err := s.Register("a", testNet(1), cfg); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("b", testNet(2), cfg); err != nil {
		t.Fatal(err)
	}
	in := make([]float32, 8)
	if _, err := s.Infer("a", in); err != nil {
		t.Fatal(err)
	}
	if err := s.Unregister("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Unregister("a"); err == nil {
		t.Fatal("double Unregister should fail")
	}
	if _, err := s.Infer("a", in); err == nil {
		t.Fatal("query for unregistered app should fail")
	}
	// Sibling app is unaffected, and the name can be reused.
	if _, err := s.Infer("b", in); err != nil {
		t.Fatalf("sibling app broken by Unregister: %v", err)
	}
	if err := s.Register("a", testNet(3), cfg); err != nil {
		t.Fatalf("re-register after Unregister: %v", err)
	}
	if _, err := s.Infer("a", in); err != nil {
		t.Fatal(err)
	}
}

// TestModelStoreLifecycle is the service-tier acceptance test for the
// store: models fault in on first query (by bare name or versioned
// ID), serve bit-identical results from mapped pages, and evict under
// budget pressure without ever failing a query.
func TestModelStoreLifecycle(t *testing.T) {
	testutil.NoLeaks(t)
	const nModels = 6
	paths := exportModels(t, nModels)
	// Budget ≈ 3 model files: plenty of churn across 6 models.
	reg := modelstore.NewRegistry(modelstore.Config{BudgetBytes: 4 * 1024})
	s := NewServer()
	s.SetLogger(silence)
	s.AttachModelStore(reg, storeCfg)
	for _, p := range paths {
		if _, err := reg.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		s.Close()
		if err := reg.Close(); err != nil {
			t.Error(err)
		}
	}()

	in := make([]float32, 8)
	tensor.NewRNG(5).FillUniform(in, -1, 1)
	for round := 0; round < 3; round++ {
		for i := 0; i < nModels; i++ {
			name := fmt.Sprintf("m%03d", i)
			if round == 1 {
				name += "@v1" // versioned and bare names hit the same app
			}
			out, err := s.Infer(name, in)
			if err != nil {
				t.Fatalf("round %d %s: %v", round, name, err)
			}
			plan := testNet(uint64(i + 1)).Compile(1)
			copy(plan.In(1).Data(), in)
			want := plan.Run(1).Data()
			for j := range want {
				if out[j] != want[j] {
					t.Fatalf("%s output %d: %g != %g", name, j, out[j], want[j])
				}
			}
		}
	}
	st := reg.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a %d-byte budget: %+v", st.BudgetBytes, st)
	}
	if st.PeakBytes > st.BudgetBytes {
		t.Fatalf("peak resident %d exceeded budget %d", st.PeakBytes, st.BudgetBytes)
	}
	if st.Faults < nModels {
		t.Fatalf("faults %d < %d first-touch loads", st.Faults, nModels)
	}
	// The server's app table only holds resident models.
	if apps := s.Apps(); len(apps) > st.Resident {
		t.Fatalf("%d apps registered for %d resident models: %v", len(apps), st.Resident, apps)
	}
	if _, err := s.Infer("ghost", in); err == nil || !strings.Contains(err.Error(), "unknown application") {
		t.Fatalf("unknown model error = %v", err)
	}
}

// TestModelStoreConcurrentFaultIn hammers one cold model from many
// goroutines: single-flight loading, one app registration, every query
// answered.
func TestModelStoreConcurrentFaultIn(t *testing.T) {
	testutil.NoLeaks(t)
	paths := exportModels(t, 1)
	reg := modelstore.NewRegistry(modelstore.Config{})
	s := NewServer()
	s.SetLogger(silence)
	s.AttachModelStore(reg, storeCfg)
	if _, err := reg.Register(paths[0]); err != nil {
		t.Fatal(err)
	}
	defer func() {
		s.Close()
		if err := reg.Close(); err != nil {
			t.Error(err)
		}
	}()
	const goroutines = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			in := make([]float32, 8)
			tensor.NewRNG(uint64(g+1)).FillUniform(in, -1, 1)
			if _, err := s.Infer("m000", in); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := reg.Stats()
	if st.Loads != 1 {
		t.Fatalf("%d loads under concurrent fault-in, want 1", st.Loads)
	}
}

func TestModelControlVerbs(t *testing.T) {
	testutil.NoLeaks(t)
	paths := exportModels(t, 2)
	reg := modelstore.NewRegistry(modelstore.Config{Warm: true})
	s := NewServer()
	s.SetLogger(silence)
	s.AttachModelStore(reg, storeCfg)
	l, err := listen(t)
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() {
		s.Close()
		if err := reg.Close(); err != nil {
			t.Error(err)
		}
	})
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if msg, err := c.Models(); err != nil || msg != "no models registered" {
		t.Fatalf("Models() on empty store = %q, %v", msg, err)
	}
	for _, p := range paths {
		msg, err := c.ModelRegister(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(msg, "registered m") {
			t.Fatalf("ModelRegister = %q", msg)
		}
	}
	if msg, err := c.ModelLoad("m001"); err != nil || msg != "loaded m001@v1" {
		t.Fatalf("ModelLoad = %q, %v", msg, err)
	}
	list, err := c.Models()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(list, "\n")
	if len(lines) != 2 || !strings.Contains(lines[1], "m001@v1 resident=true") {
		t.Fatalf("Models() = %q", list)
	}
	stats, err := c.ModelStats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, "registered=2") || !strings.Contains(stats, "loads=1") {
		t.Fatalf("ModelStats = %q", stats)
	}
	// Serve one query through the TCP path, then evict.
	in := make([]float32, 8)
	if _, err := c.Infer("m001", in); err != nil {
		t.Fatal(err)
	}
	if msg, err := c.ModelEvict("m001@v1"); err != nil || msg != "evicted m001@v1" {
		t.Fatalf("ModelEvict = %q, %v", msg, err)
	}
	if _, err := c.ModelEvict("m001"); err == nil {
		t.Fatal("evicting a non-resident model should fail")
	}
	if _, err := c.ModelLoad("ghost"); err == nil {
		t.Fatal("loading an unknown model should fail")
	}
	// A fresh query faults the evicted model back in.
	if _, err := c.Infer("m001", in); err != nil {
		t.Fatal(err)
	}
}

func TestModelVerbsWithoutStore(t *testing.T) {
	testutil.NoLeaks(t)
	s := NewServer()
	s.SetLogger(silence)
	defer s.Close()
	if _, err := s.control("model list"); err == nil || !strings.Contains(err.Error(), "no model store") {
		t.Fatalf("model verb without store = %v", err)
	}
	if _, err := s.Infer("anything", []float32{1}); err == nil {
		t.Fatal("query without store or app should fail")
	}
}

func TestModelEvictPinnedRefused(t *testing.T) {
	testutil.NoLeaks(t)
	paths := exportModels(t, 1)
	reg := modelstore.NewRegistry(modelstore.Config{})
	s := NewServer()
	s.SetLogger(silence)
	s.AttachModelStore(reg, storeCfg)
	if _, err := reg.Register(paths[0]); err != nil {
		t.Fatal(err)
	}
	defer func() {
		s.Close()
		if err := reg.Close(); err != nil {
			t.Error(err)
		}
	}()
	id := modelstore.ID{Name: "m000", Version: 1}
	if _, err := reg.Acquire(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.control("model evict m000"); err == nil || !errors.Is(errors.Unwrap(err), modelstore.ErrPinned) && !strings.Contains(err.Error(), "pinned") {
		t.Fatalf("evict pinned = %v", err)
	}
	reg.Release(id)
	if _, err := s.control("model evict m000"); err != nil {
		t.Fatal(err)
	}
}
