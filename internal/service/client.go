package service

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Client is a DjiNN service client speaking the framed TCP protocol.
// It is safe for concurrent use; requests on one connection are
// serialised (open several clients for pipelining, as the Tonic load
// drivers do).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	rw   *bufio.ReadWriter
}

// Dial connects to a DjiNN server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		rw:   bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn)),
	}
}

// Infer sends one query payload for app and returns the probability
// vectors the service computed.
func (c *Client) Infer(app string, in []float32) ([]float32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeRequest(c.rw, app, in); err != nil {
		return nil, fmt.Errorf("service: sending request: %w", err)
	}
	if err := c.rw.Flush(); err != nil {
		return nil, fmt.Errorf("service: flushing request: %w", err)
	}
	status, msg, out, err := readResponse(c.rw)
	if err != nil {
		return nil, fmt.Errorf("service: reading response: %w", err)
	}
	if status != StatusOK {
		return nil, fmt.Errorf("service: server error: %s", msg)
	}
	return out, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Backend abstracts "something that can answer DjiNN queries": a TCP
// Client or an in-process Server. Tonic applications program against
// it.
type Backend interface {
	Infer(app string, in []float32) ([]float32, error)
}

var (
	_ Backend = (*Client)(nil)
	_ Backend = (*Server)(nil)
)

// Control sends a control command ("apps", "stats <app>") and returns
// the server's textual answer.
func (c *Client) Control(cmd string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeControl(c.rw, cmd); err != nil {
		return "", fmt.Errorf("service: sending control: %w", err)
	}
	if err := c.rw.Flush(); err != nil {
		return "", err
	}
	status, msg, _, err := readResponse(c.rw)
	if err != nil {
		return "", fmt.Errorf("service: reading control response: %w", err)
	}
	if status != StatusOK {
		return "", fmt.Errorf("service: %s", msg)
	}
	return msg, nil
}

// Apps lists the applications registered on the server.
func (c *Client) Apps() ([]string, error) {
	answer, err := c.Control("apps")
	if err != nil {
		return nil, err
	}
	return strings.Fields(answer), nil
}

// ServerStats returns the textual counters of one application.
func (c *Client) ServerStats(app string) (string, error) {
	return c.Control("stats " + app)
}
