package service

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"djinn/internal/trace"
)

// deadlineGrace is added to the connection I/O deadline beyond the
// context deadline: the server is authoritative for expiring a query
// (it answers StatusDeadline at the budget boundary), so the transport
// only times out when the server itself is wedged past the grace.
const deadlineGrace = time.Second

// Client is a DjiNN service client speaking the framed TCP protocol.
// It is safe for concurrent use; requests on one connection are
// serialised (open several clients for pipelining, as the Tonic load
// drivers do).
type Client struct {
	mu    sync.Mutex
	conn  net.Conn
	rw    *bufio.ReadWriter
	stale bool // a transport timeout desynced the stream
}

// DialFunc opens the transport to a DjiNN server. The router's
// connection pools inject custom dialers through it (short timeouts,
// test fakes, in-process pipes).
type DialFunc func(addr string) (net.Conn, error)

// DefaultDial is the DialFunc Dial uses: TCP with a 10s timeout.
func DefaultDial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 10*time.Second)
}

// Dial connects to a DjiNN server.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, DefaultDial)
}

// DialWith connects using a custom dialer. Dial failures are wrapped in
// ErrTransport so routing layers can classify them as retryable on
// another replica.
func DialWith(addr string, dial DialFunc) (*Client, error) {
	if dial == nil {
		dial = DefaultDial
	}
	conn, err := dial(addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dialing %s: %w", ErrTransport, addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		rw:   bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn)),
	}
}

// Infer sends one query payload for app and returns the probability
// vectors the service computed.
func (c *Client) Infer(app string, in []float32) ([]float32, error) {
	return c.InferCtx(context.Background(), app, in)
}

// InferCtx sends one query bounded by ctx. The remaining budget rides
// the request frame, so the server expires the query at whichever
// lifecycle stage the deadline passes (queue, batch assembly, or the
// response wait) and answers with a distinct status the caller can
// test with errors.Is(err, ErrDeadlineExceeded). A trace ID attached
// to ctx (trace.WithID) rides the frame's optional trace header, so
// the server annotates its lifecycle spans under the caller's ID.
func (c *Client) InferCtx(ctx context.Context, app string, in []float32) ([]float32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.usable(ctx); err != nil {
		return nil, err
	}
	var budget time.Duration
	if dl, ok := ctx.Deadline(); ok {
		budget = time.Until(dl)
		if budget <= 0 {
			return nil, fmt.Errorf("%w: %v", ErrDeadlineExceeded, ctx.Err())
		}
		// The transport deadline backstops a wedged server; the grace
		// lets the server's own StatusDeadline answer arrive first.
		c.conn.SetDeadline(dl.Add(deadlineGrace))
		defer c.conn.SetDeadline(time.Time{})
	}
	var werr error
	if id := trace.IDFrom(ctx); id != "" && len(id) <= trace.MaxIDLen {
		werr = writeTracedRequest(c.rw, id, app, budget, in)
	} else {
		werr = writeRequest(c.rw, app, budget, in)
	}
	if werr != nil {
		return nil, c.fail(fmt.Errorf("service: sending request: %w", werr))
	}
	if err := c.rw.Flush(); err != nil {
		return nil, c.fail(fmt.Errorf("service: flushing request: %w", err))
	}
	status, msg, out, err := c.readReply()
	if err != nil {
		return nil, err
	}
	if status != StatusOK {
		return nil, errorFor(status, msg)
	}
	return out, nil
}

// usable rejects calls on a context that is already dead or a stream
// that a previous transport timeout left mid-frame.
func (c *Client) usable(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrDeadlineExceeded, err)
	}
	if c.stale {
		return fmt.Errorf("%w: connection desynced by an earlier timeout; dial a fresh client", ErrTransport)
	}
	return nil
}

// Stale reports whether an earlier transport failure desynced this
// client's stream. A stale client answers every call with ErrTransport;
// connection pools use this to discard it instead of recycling it.
func (c *Client) Stale() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stale
}

// readReply reads one response frame, poisoning the stream on
// transport errors (a timeout mid-frame leaves unread bytes that would
// corrupt every later exchange).
func (c *Client) readReply() (byte, string, []float32, error) {
	status, msg, out, err := readResponse(c.rw)
	if err != nil {
		return 0, "", nil, c.fail(fmt.Errorf("service: reading response: %w", err))
	}
	return status, msg, out, nil
}

// fail marks the stream unusable and wraps the error in ErrTransport:
// the failure is a property of this connection, not of the query, so
// callers holding other replicas may retry there.
func (c *Client) fail(err error) error {
	c.stale = true
	return fmt.Errorf("%w: %w", ErrTransport, err)
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Backend abstracts "something that can answer DjiNN queries": a TCP
// Client or an in-process Server. Tonic applications program against
// it.
type Backend interface {
	Infer(app string, in []float32) ([]float32, error)
}

// ContextBackend is a Backend that also accepts per-query contexts, the
// request-lifecycle entry point: deadlines propagate through enqueue,
// batch assembly, and the response wait. Both *Client and *Server
// implement it.
type ContextBackend interface {
	Backend
	InferCtx(ctx context.Context, app string, in []float32) ([]float32, error)
}

var (
	_ ContextBackend = (*Client)(nil)
	_ ContextBackend = (*Server)(nil)
)

// Control sends a control command ("apps", "stats <app>",
// "latency <app>") and returns the server's textual answer.
func (c *Client) Control(cmd string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stale {
		return "", fmt.Errorf("%w: connection desynced by an earlier timeout; dial a fresh client", ErrTransport)
	}
	if err := writeControl(c.rw, cmd); err != nil {
		return "", c.fail(fmt.Errorf("service: sending control: %w", err))
	}
	if err := c.rw.Flush(); err != nil {
		return "", c.fail(err)
	}
	status, msg, _, err := c.readReply()
	if err != nil {
		return "", err
	}
	if status != StatusOK {
		return "", fmt.Errorf("service: %s", msg)
	}
	return msg, nil
}

// Apps lists the applications registered on the server.
func (c *Client) Apps() ([]string, error) {
	answer, err := c.Control("apps")
	if err != nil {
		return nil, err
	}
	return strings.Fields(answer), nil
}

// ServerStats returns the textual counters of one application.
func (c *Client) ServerStats(app string) (string, error) {
	return c.Control("stats " + app)
}

// ServerLatency returns the textual per-stage lifecycle breakdown
// (queue wait / batch assembly / forward / respond) of one application.
func (c *Client) ServerLatency(app string) (string, error) {
	return c.Control("latency " + app)
}

// ServerSched returns one application's live scheduler state (batch
// size, flush window, admission counters) as rendered by the "sched"
// control verb — "disabled" for an app registered without an SLO.
// sched.ParseInfo inverts the enabled form.
func (c *Client) ServerSched(app string) (string, error) {
	return c.Control("sched " + app)
}

// ServerPrecision returns the kernel precision one application's plan
// pool was compiled at ("float32", "float32-packed" or "int8"), as
// rendered by the "precision" control verb.
func (c *Client) ServerPrecision(app string) (string, error) {
	return c.Control("precision " + app)
}

// ServerTrace returns the server's rendered span timeline for one
// trace ID — what the server recorded for a query sent with
// trace.WithID.
func (c *Client) ServerTrace(id string) (string, error) {
	return c.Control("trace " + id)
}

// ServerSlowestTraces returns the server's N worst recent traces as
// "id total spans" lines, slowest first.
func (c *Client) ServerSlowestTraces(n int) (string, error) {
	return c.Control("trace slowest " + strconv.Itoa(n))
}

// Models lists the server's registered model-store entries, one
// "id resident= pins= bytes= params=" line per model (or a "no models
// registered" sentinel).
func (c *Client) Models() (string, error) {
	return c.Control("model list")
}

// ModelStats returns the server's model-store counters — the textual
// form of the djinn_model_* gauges (resident count, bytes mapped,
// loads/faults/evictions).
func (c *Client) ModelStats() (string, error) {
	return c.Control("model stats")
}

// ModelRegister registers a weight file by path on the server's
// filesystem and returns the server's confirmation ("registered
// name@vN (...)").
func (c *Client) ModelRegister(path string) (string, error) {
	return c.Control("model register " + path)
}

// ModelLoad faults a model in ahead of traffic. The argument is a
// model name ("imc", newest version) or versioned ID ("imc@v2").
func (c *Client) ModelLoad(id string) (string, error) {
	return c.Control("model load " + id)
}

// ModelEvict unloads a model; the server refuses while queries are in
// flight.
func (c *Client) ModelEvict(id string) (string, error) {
	return c.Control("model evict " + id)
}
