package service

import (
	"strings"
	"testing"

	"djinn/internal/nn"
	"djinn/internal/tensor"
	"djinn/internal/testutil"
)

// TestRegisterPrecisionServes: an app registered at each non-reference
// precision answers queries through the full batching path, the packed
// float32 pool bit-identically to the reference, and the control verb
// reports the compiled precision.
func TestRegisterPrecisionServes(t *testing.T) {
	testutil.NoLeaks(t)
	s := NewServer()
	s.SetLogger(silence)
	cfg := AppConfig{BatchInstances: 4, Workers: 1}
	if err := s.Register("f32", testNet(3), cfg); err != nil {
		t.Fatal(err)
	}
	for _, prec := range []nn.Precision{nn.Float32Packed, nn.Int8} {
		cfg.Precision = prec
		if err := s.Register(prec.String(), testNet(3), cfg); err != nil {
			t.Fatal(err)
		}
	}
	defer s.Close()

	in := make([]float32, 8)
	tensor.NewRNG(9).FillUniform(in, -1, 1)
	ref, err := s.Infer("f32", in)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := s.Infer(nn.Float32Packed.String(), in)
	if err != nil {
		t.Fatal(err)
	}
	// FC layers run Gemv on the reference path (4-wide unrolled sums) and
	// the ascending-k panel kernel on the packed path, so agreement is to
	// rounding, not bitwise (conv nets are bitwise — see nn's tests).
	for i := range ref {
		if d := float64(packed[i] - ref[i]); d > 1e-5 || d < -1e-5 {
			t.Fatalf("packed out[%d]=%v, float32 %v", i, packed[i], ref[i])
		}
	}
	quant, err := s.Infer(nn.Int8.String(), in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if d := float64(quant[i] - ref[i]); d > 0.05 || d < -0.05 {
			t.Fatalf("int8 out[%d]=%v vs float32 %v: quantization error too large", i, quant[i], ref[i])
		}
	}

	if out, err := s.control("precision int8"); err != nil || out != "int8" {
		t.Fatalf("precision int8 = %q, %v", out, err)
	}
	out, err := s.control("precision")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"f32 float32", "float32-packed float32-packed", "int8 int8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("precision listing missing %q:\n%s", want, out)
		}
	}
	if _, err := s.control("precision nosuch"); err == nil {
		t.Fatal("precision verb accepted unknown app")
	}
}

// TestRegisterPrecisionRejectsOversizedReduction: a net whose FC fan-in
// exceeds the int8 kernel's accumulator bound must fail Register with an
// error, not panic the server at compile time.
func TestRegisterPrecisionRejectsOversizedReduction(t *testing.T) {
	wide := tensor.MaxQuantK + 1
	n := nn.NewNet("wide", nn.KindDNN, wide)
	n.Add(nn.NewFC("fc", tensor.NewRNG(1), wide, 2)).Add(nn.NewSoftmax("prob"))
	s := NewServer()
	s.SetLogger(silence)
	defer s.Close()
	err := s.Register("wide", n, AppConfig{Precision: nn.Int8, Workers: 1})
	if err == nil || !strings.Contains(err.Error(), "int8 kernel bound") {
		t.Fatalf("Register accepted oversized int8 reduction (err=%v)", err)
	}
	if err := s.Register("wide", n, AppConfig{Workers: 1, BatchInstances: 1}); err != nil {
		t.Fatalf("float32 registration of the same net should work: %v", err)
	}
}
