package service

import (
	"context"
	"fmt"
	"log"
	"net"
	"strings"
	"sync"

	"djinn/internal/trace"
)

// Proxy serves the DjiNN wire protocol on behalf of any ContextBackend
// — typically a router fronting a fleet of replicas. Clients keep
// speaking the ordinary framed protocol to one stable address while the
// control plane moves applications between replicas behind it; a
// ControlFunc hook lets the owner answer control verbs the backend has
// no connection for (placement, autoscale, scale) and fall through to
// fleet-level introspection for the rest.
type Proxy struct {
	backend ContextBackend
	control ControlFunc

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closing  chan struct{}
	closed   bool
	wg       sync.WaitGroup
	logf     func(format string, args ...any)
}

// ControlFunc answers one control command ("placement", "autoscale",
// …). Returning an error sends a StatusError reply; the connection
// stays usable.
type ControlFunc func(cmd string) (string, error)

// NewProxy wraps a backend in a wire-protocol front end. control may be
// nil, in which case every control frame is answered with an error.
func NewProxy(backend ContextBackend, control ControlFunc) *Proxy {
	return &Proxy{
		backend: backend,
		control: control,
		conns:   map[net.Conn]struct{}{},
		closing: make(chan struct{}),
		logf:    log.Printf,
	}
}

// SetLogger replaces the proxy's log function (tests use a silent one).
func (p *Proxy) SetLogger(logf func(string, ...any)) { p.logf = logf }

// Serve accepts connections on l until Close.
func (p *Proxy) Serve(l net.Listener) error {
	p.mu.Lock()
	p.listener = l
	p.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-p.closing:
				return nil
			default:
				return err
			}
		}
		p.mu.Lock()
		p.conns[conn] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (p *Proxy) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return p.Serve(l)
}

// Addr returns the listening address, or nil before Serve.
func (p *Proxy) Addr() net.Addr {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.listener == nil {
		return nil
	}
	return p.listener.Addr()
}

// Close stops accepting, closes every client connection, and waits for
// the handlers to exit. In-flight queries already dispatched to the
// backend fail when their connections close; the backend itself is not
// closed — it belongs to the caller.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.closing)
	l := p.listener
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
}

// handle runs one client connection: the same frame loop as
// Server.handle, with dispatch delegated to the wrapped backend.
func (p *Proxy) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		p.mu.Lock()
		delete(p.conns, conn)
		p.mu.Unlock()
	}()
	for {
		magic, err := readUint32(conn)
		if err != nil {
			return
		}
		switch magic {
		case reqMagic, reqTraceMagic:
			var traceID string
			if magic == reqTraceMagic {
				var terr error
				if traceID, terr = readTraceHeader(conn); terr != nil {
					return
				}
			}
			appName, budget, in, err := readRequestBody(conn)
			if err != nil {
				return
			}
			ctx := context.Background()
			if traceID != "" {
				ctx = trace.WithID(ctx, traceID)
			}
			var cancel context.CancelFunc
			if budget > 0 {
				ctx, cancel = context.WithTimeout(ctx, budget)
			}
			out, err := p.backend.InferCtx(ctx, appName, in)
			if cancel != nil {
				cancel()
			}
			if err != nil {
				if werr := writeResponse(conn, statusFor(err), err.Error(), nil); werr != nil {
					return
				}
				continue
			}
			if err := writeResponse(conn, StatusOK, "", out); err != nil {
				return
			}
		case ctrlMagic:
			cmd, err := readControlBody(conn)
			if err != nil {
				return
			}
			answer, cerr := p.dispatchControl(cmd)
			status := byte(StatusOK)
			if cerr != nil {
				status, answer = StatusError, cerr.Error()
			}
			if err := writeResponse(conn, status, answer, nil); err != nil {
				return
			}
		default:
			return // protocol violation: drop the connection
		}
	}
}

func (p *Proxy) dispatchControl(cmd string) (string, error) {
	if strings.TrimSpace(cmd) == "" {
		return "", fmt.Errorf("service: empty control command")
	}
	if p.control == nil {
		return "", fmt.Errorf("service: proxy has no control handler for %q", cmd)
	}
	return p.control(cmd)
}
