package service

import (
	"bytes"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"djinn/internal/nn"
	"djinn/internal/tensor"
	"djinn/internal/testutil"
)

func silence(string, ...any) {}

func testNet(seed uint64) *nn.Net {
	rng := tensor.NewRNG(seed)
	n := nn.NewNet("tiny", nn.KindDNN, 8)
	n.Add(nn.NewFC("fc1", rng, 8, 16)).
		Add(nn.NewReLU("relu")).
		Add(nn.NewFC("fc2", rng, 16, 4)).
		Add(nn.NewSoftmax("prob"))
	return n
}

func startServer(t *testing.T, cfg AppConfig) (*Server, string) {
	t.Helper()
	// Registered before the Close cleanup below, so it checks after the
	// server has fully drained: no worker, aggregator, or connection
	// goroutine may outlive its server.
	testutil.NoLeaks(t)
	s := NewServer()
	s.SetLogger(silence)
	if err := s.Register("tiny", testNet(1), cfg); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(s.Close)
	return s, l.Addr().String()
}

func refOutput(t *testing.T, in []float32) []float32 {
	t.Helper()
	netw := testNet(1)
	r := netw.NewRunner(1)
	out := r.Forward(tensor.FromSlice(in, 1, 8))
	return append([]float32(nil), out.Data()...)
}

func TestProtocolRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := []float32{1, 2, 3, -4.5}
	if err := writeRequest(&buf, "asr", 250*time.Millisecond, in); err != nil {
		t.Fatal(err)
	}
	app, deadline, got, err := readRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if app != "asr" || len(got) != 4 || got[3] != -4.5 {
		t.Fatalf("round trip wrong: %q %v", app, got)
	}
	if deadline != 250*time.Millisecond {
		t.Fatalf("deadline budget %v did not survive the wire", deadline)
	}
	buf.Reset()
	if err := writeResponse(&buf, StatusError, "boom", []float32{7}); err != nil {
		t.Fatal(err)
	}
	st, msg, out, err := readResponse(&buf)
	if err != nil || st != StatusError || msg != "boom" || out[0] != 7 {
		t.Fatalf("response round trip wrong: %v %q %v %v", st, msg, out, err)
	}
}

func TestProtocolRoundTripProperty(t *testing.T) {
	f := func(name string, vals []float32) bool {
		if len(name) == 0 || len(name) > MaxAppNameLen || strings.ContainsRune(name, 0) {
			return true
		}
		var buf bytes.Buffer
		if err := writeRequest(&buf, name, 0, vals); err != nil {
			return false
		}
		app, deadline, got, err := readRequest(&buf)
		if err != nil || app != name || deadline != 0 || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			// NaN payloads must survive bit-exactly too.
			if math.Float32bits(got[i]) != math.Float32bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolRejectsGarbage(t *testing.T) {
	if _, _, _, err := readRequest(bytes.NewReader([]byte{9, 9, 9, 9, 0, 0})); err == nil {
		t.Fatal("expected bad-magic error")
	}
	var buf bytes.Buffer
	writeRequest(&buf, "x", 0, []float32{1, 2})
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, _, _, err := readRequest(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestEndToEndInference(t *testing.T) {
	_, addr := startServer(t, AppConfig{BatchInstances: 4, BatchWindow: time.Millisecond})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	in := []float32{1, 0, -1, 2, 0.5, 0, 0, 1}
	out, err := c.Infer("tiny", in)
	if err != nil {
		t.Fatal(err)
	}
	want := refOutput(t, in)
	if len(out) != 4 {
		t.Fatalf("got %d outputs, want 4", len(out))
	}
	for i := range want {
		if math.Abs(float64(out[i]-want[i])) > 1e-6 {
			t.Fatalf("out[%d]=%v want %v", i, out[i], want[i])
		}
	}
}

func TestMultiInstanceQuery(t *testing.T) {
	// One query carrying 3 instances (like ASR's 548 frames) must
	// return 3 stacked probability vectors.
	_, addr := startServer(t, AppConfig{BatchInstances: 8})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	in := make([]float32, 3*8)
	for i := range in {
		in[i] = float32(i%7) - 3
	}
	out, err := c.Infer("tiny", in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3*4 {
		t.Fatalf("got %d outputs, want 12", len(out))
	}
	for k := 0; k < 3; k++ {
		want := refOutput(t, in[k*8:(k+1)*8])
		for i := range want {
			if math.Abs(float64(out[k*4+i]-want[i])) > 1e-6 {
				t.Fatalf("instance %d out[%d]=%v want %v", k, i, out[k*4+i], want[i])
			}
		}
	}
}

func TestQueryLargerThanRunnerBatchIsChunked(t *testing.T) {
	// 10 instances with a runner capacity of 4 → the worker must chunk.
	_, addr := startServer(t, AppConfig{BatchInstances: 4})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 10
	in := make([]float32, n*8)
	tensor.NewRNG(3).FillNorm(in, 0, 1)
	out, err := c.Infer("tiny", in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n*4 {
		t.Fatalf("got %d outputs, want %d", len(out), n*4)
	}
	for k := 0; k < n; k++ {
		want := refOutput(t, in[k*8:(k+1)*8])
		for i := range want {
			if math.Abs(float64(out[k*4+i]-want[i])) > 1e-6 {
				t.Fatalf("instance %d mismatch", k)
			}
		}
	}
}

func TestCrossRequestBatching(t *testing.T) {
	// Many concurrent single-instance queries should be aggregated into
	// far fewer forward passes (the Section 5.1 optimisation).
	s, addr := startServer(t, AppConfig{BatchInstances: 16, BatchWindow: 5 * time.Millisecond, Workers: 1})
	const clients = 8
	const perClient = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			in := make([]float32, 8)
			tensor.NewRNG(seed).FillNorm(in, 0, 1)
			for j := 0; j < perClient; j++ {
				out, err := c.Infer("tiny", in)
				if err != nil {
					t.Error(err)
					return
				}
				want := refOutput(t, in)
				for k := range want {
					if math.Abs(float64(out[k]-want[k])) > 1e-6 {
						t.Error("wrong result under concurrency")
						return
					}
				}
			}
		}(uint64(i + 10))
	}
	wg.Wait()
	st, ok := s.StatsFor("tiny")
	if !ok {
		t.Fatal("missing stats")
	}
	if st.Queries != clients*perClient {
		t.Fatalf("served %d queries, want %d", st.Queries, clients*perClient)
	}
	if st.AvgBatch() < 1.5 {
		t.Fatalf("average batch %.2f — cross-request batching is not happening", st.AvgBatch())
	}
}

func TestUnknownAppError(t *testing.T) {
	_, addr := startServer(t, AppConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Infer("nope", []float32{1}); err == nil {
		t.Fatal("expected unknown-app error")
	}
	// The connection must survive an application error.
	if _, err := c.Infer("tiny", make([]float32, 8)); err != nil {
		t.Fatalf("connection should survive app error: %v", err)
	}
}

func TestBadPayloadSizeError(t *testing.T) {
	_, addr := startServer(t, AppConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Infer("tiny", []float32{1, 2, 3}); err == nil {
		t.Fatal("expected payload-size error")
	}
}

func TestRegisterDuplicate(t *testing.T) {
	s := NewServer()
	s.SetLogger(silence)
	defer s.Close()
	if err := s.Register("a", testNet(1), AppConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("a", testNet(2), AppConfig{}); err == nil {
		t.Fatal("expected duplicate-registration error")
	}
}

func TestInProcessInfer(t *testing.T) {
	s := NewServer()
	s.SetLogger(silence)
	defer s.Close()
	if err := s.Register("tiny", testNet(1), AppConfig{BatchWindow: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	in := make([]float32, 8)
	in[0] = 1
	out, err := s.Infer("tiny", in)
	if err != nil {
		t.Fatal(err)
	}
	want := refOutput(t, in)
	for i := range want {
		if out[i] != want[i] {
			t.Fatal("in-process inference differs")
		}
	}
}

func TestBatchWindowFlushesPartialBatches(t *testing.T) {
	// A single query with a huge batch threshold must still complete
	// within roughly the batch window, not hang.
	s := NewServer()
	s.SetLogger(silence)
	defer s.Close()
	if err := s.Register("tiny", testNet(1), AppConfig{BatchInstances: 1 << 20, BatchWindow: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := s.Infer("tiny", make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("partial batch took %v; window flush broken", d)
	}
}

func TestCloseUnblocksClients(t *testing.T) {
	s, addr := startServer(t, AppConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan struct{})
	go func() {
		// This may error or succeed depending on timing; it must not hang.
		c.Infer("tiny", make([]float32, 8))
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("client hung after server close")
	}
}

func TestControlCommands(t *testing.T) {
	_, addr := startServer(t, AppConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	apps, err := c.Apps()
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 || apps[0] != "tiny" {
		t.Fatalf("apps = %v", apps)
	}
	// Stats before and after a query.
	if _, err := c.Infer("tiny", make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
	stats, err := c.ServerStats("tiny")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, "queries=1") {
		t.Fatalf("stats = %q", stats)
	}
	// Errors for unknown apps and commands.
	if _, err := c.ServerStats("nope"); err == nil {
		t.Fatal("expected error for unknown app")
	}
	if _, err := c.Control("selfdestruct"); err == nil {
		t.Fatal("expected error for unknown command")
	}
	// Inference still works on the same connection after control traffic.
	if _, err := c.Infer("tiny", make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
}

func TestBackpressureShedsLoad(t *testing.T) {
	// With a tiny pending queue and slow drain, excess queries must be
	// rejected rather than queued without bound.
	s := NewServer()
	s.SetLogger(silence)
	defer s.Close()
	if err := s.Register("tiny", testNet(1), AppConfig{
		BatchInstances: 1,
		BatchWindow:    time.Millisecond,
		Workers:        1,
		MaxPending:     2,
	}); err != nil {
		t.Fatal(err)
	}
	var rejected int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Infer("tiny", make([]float32, 8)); err != nil {
				mu.Lock()
				rejected++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	st, _ := s.StatsFor("tiny")
	if rejected == 0 {
		t.Log("no rejections observed (drain kept up); acceptable but unusual")
	}
	// Shed load is accounted separately from malformed payloads and
	// worker failures.
	if st.ShedAdmission != rejected {
		t.Fatalf("shed counter %d != rejections %d", st.ShedAdmission, rejected)
	}
	if st.Errors != 0 {
		t.Fatalf("shed queries leaked into the error counter (%d)", st.Errors)
	}
}

func TestIntraOpWorkersMatchSerial(t *testing.T) {
	serial := NewServer()
	serial.SetLogger(silence)
	defer serial.Close()
	par := NewServer()
	par.SetLogger(silence)
	defer par.Close()
	if err := serial.Register("tiny", testNet(1), AppConfig{BatchInstances: 8}); err != nil {
		t.Fatal(err)
	}
	if err := par.Register("tiny", testNet(1), AppConfig{BatchInstances: 8, IntraOpWorkers: 4}); err != nil {
		t.Fatal(err)
	}
	in := make([]float32, 6*8)
	tensor.NewRNG(77).FillNorm(in, 0, 1)
	a, err := serial.Infer("tiny", in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Infer("tiny", in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > 1e-6 {
			t.Fatalf("intra-op result differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
