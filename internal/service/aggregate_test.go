package service

import (
	"sync"
	"testing"
	"time"

	"djinn/internal/testutil"
)

// inproc registers the tiny test net on an in-process server with the
// given aggregation config; no TCP involved, so these tests exercise
// the aggregator and worker paths directly.
func inproc(t *testing.T, cfg AppConfig) *Server {
	t.Helper()
	testutil.NoLeaks(t)
	s := NewServer()
	s.SetLogger(silence)
	if err := s.Register("tiny", testNet(1), cfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// inferN issues n concurrent single-instance queries and blocks until
// every one has a response, failing the test on any error.
func inferN(t *testing.T, s *Server, n int) {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := make([]float32, 8)
			in[0] = float32(i)
			out, err := s.Infer("tiny", in)
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			if len(out) != 4 {
				t.Errorf("query %d: %d outputs, want 4", i, len(out))
			}
		}(i)
	}
	wg.Wait()
}

// TestAggregatorFlushPaths pins down the three ways a batch leaves the
// aggregator: the pending instance count reaching BatchInstances, the
// batch window expiring under a partial batch, and the drain on Close
// running the batch still under assembly. Each case makes the other
// two paths unreachable (a far-off window, an unreachable threshold)
// so a pass proves the intended path fired.
func TestAggregatorFlushPaths(t *testing.T) {
	cases := []struct {
		name string
		cfg  AppConfig
		run  func(t *testing.T, s *Server)
		// counter expectations; max values of 0 mean "equal to min"
		minBatches, maxBatches int64
		queries                int64
	}{
		{
			// Four single-instance queries exactly fill BatchInstances;
			// the window is a minute away, so the only way these queries
			// can complete promptly is the batch-full flush.
			name: "batch-full",
			cfg:  AppConfig{BatchInstances: 4, BatchWindow: time.Minute, Workers: 1},
			run: func(t *testing.T, s *Server) {
				start := time.Now()
				inferN(t, s, 4)
				if d := time.Since(start); d > 30*time.Second {
					t.Fatalf("batch-full flush took %v; window flush suspected", d)
				}
			},
			minBatches: 1, maxBatches: 1, queries: 4,
		},
		{
			// Two queries can never reach a 1000-instance threshold; only
			// the window timer can release them.
			name: "window-timeout",
			cfg:  AppConfig{BatchInstances: 1000, BatchWindow: 25 * time.Millisecond, Workers: 1},
			run: func(t *testing.T, s *Server) {
				start := time.Now()
				inferN(t, s, 2)
				if d := time.Since(start); d < 20*time.Millisecond {
					t.Fatalf("responses after %v, before the 25ms window could expire", d)
				}
			},
			// The two arrivals may straddle a window boundary.
			minBatches: 1, maxBatches: 2, queries: 2,
		},
		{
			// Neither threshold (1000) nor window (a minute) can fire;
			// Close's drain must flush the batch under assembly, and the
			// paper-faithful guarantee is that those queries still run to
			// completion rather than failing.
			name: "drain-on-close",
			cfg:  AppConfig{BatchInstances: 1000, BatchWindow: time.Minute, Workers: 1},
			run: func(t *testing.T, s *Server) {
				done := make(chan struct{})
				go func() { defer close(done); inferN(t, s, 3) }()
				// Give the queries time to pool inside the aggregator.
				time.Sleep(50 * time.Millisecond)
				s.Close()
				select {
				case <-done:
				case <-time.After(10 * time.Second):
					t.Fatal("drain did not release pooled queries")
				}
			},
			minBatches: 1, maxBatches: 1, queries: 3,
		},
		{
			// Partial batches under load: 16 workers race the aggregator,
			// so flushes interleave threshold hits with window expiries of
			// whatever is pending. The exact batch count is timing-
			// dependent; the invariants are not.
			name: "partial-batch-under-load",
			cfg:  AppConfig{BatchInstances: 4, BatchWindow: 5 * time.Millisecond, Workers: 2},
			run: func(t *testing.T, s *Server) {
				inferN(t, s, 16)
			},
			minBatches: 4, maxBatches: 16, queries: 16,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := inproc(t, tc.cfg)
			tc.run(t, s)
			st, ok := s.StatsFor("tiny")
			if !ok {
				t.Fatal("no stats for tiny")
			}
			if st.Queries != tc.queries {
				t.Errorf("Queries = %d, want %d", st.Queries, tc.queries)
			}
			if st.Instances != tc.queries { // single-instance queries
				t.Errorf("Instances = %d, want %d", st.Instances, tc.queries)
			}
			if st.Batches < tc.minBatches || st.Batches > tc.maxBatches {
				t.Errorf("Batches = %d, want in [%d, %d]", st.Batches, tc.minBatches, tc.maxBatches)
			}
			if st.Errors != 0 || st.Shed() != 0 || st.Expired != 0 {
				t.Errorf("unexpected failures: %+v", st)
			}
			if avg := st.AvgBatch(); avg < 1 {
				t.Errorf("AvgBatch = %.2f, want >= 1", avg)
			}
		})
	}
}

// TestStatsSnapshotNeverTears hammers StatsFor while queries complete
// and checks every snapshot is internally consistent. runBatch bumps
// batches, then instances, then queries; StatsFor loads them in the
// reverse order, so no interleaving can produce Queries > Instances or
// a processed instance with no batch. Before the ordered loads this
// could tear: a snapshot could read instances just before a batch's
// increment and queries just after it.
func TestStatsSnapshotNeverTears(t *testing.T) {
	s := inproc(t, AppConfig{BatchInstances: 3, BatchWindow: time.Millisecond, Workers: 2})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Vary instances per query (1..3) so multi-instance batches
			// widen the window between the instance and query increments.
			in := make([]float32, 8*(w%3+1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Infer("tiny", in); err != nil {
					t.Errorf("infer: %v", err)
					return
				}
			}
		}(w)
	}

	deadline := time.Now().Add(200 * time.Millisecond)
	snapshots := 0
	for time.Now().Before(deadline) {
		st, ok := s.StatsFor("tiny")
		if !ok {
			t.Fatal("no stats for tiny")
		}
		if st.Queries > st.Instances {
			t.Fatalf("torn snapshot: Queries=%d > Instances=%d", st.Queries, st.Instances)
		}
		if st.Instances > 0 && st.Batches == 0 {
			t.Fatalf("torn snapshot: Instances=%d with Batches=0", st.Instances)
		}
		snapshots++
	}
	close(stop)
	wg.Wait()
	if snapshots == 0 {
		t.Fatal("no snapshots taken")
	}
	if st, _ := s.StatsFor("tiny"); st.Queries == 0 {
		t.Fatal("no queries completed during the run")
	}
}
