package service

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"djinn/internal/nn"
	"djinn/internal/tensor"
)

func listen(t *testing.T) (net.Listener, error) {
	t.Helper()
	return net.Listen("tcp", "127.0.0.1:0")
}

// slowLayer is an identity layer whose forward pass sleeps — the
// injected "slow worker" the lifecycle tests observe queue-wait against.
type slowLayer struct{ delay time.Duration }

func (l *slowLayer) Name() string                     { return "slow" }
func (l *slowLayer) Kind() string                     { return "slow" }
func (l *slowLayer) OutShape(in []int) ([]int, error) { return in, nil }
func (l *slowLayer) Forward(ctx *nn.Ctx, in, out *tensor.Tensor) {
	time.Sleep(l.delay)
	copy(out.Data(), in.Data())
}
func (l *slowLayer) Params() []*nn.Param                                     { return nil }
func (l *slowLayer) Kernels(in []int, batch int, ks []nn.Kernel) []nn.Kernel { return ks }

// panicLayer fails every forward pass, standing in for a wedged or
// buggy model implementation.
type panicLayer struct{ slowLayer }

func (l *panicLayer) Forward(ctx *nn.Ctx, in, out *tensor.Tensor) {
	panic("injected model fault")
}

func slowNet(delay time.Duration) *nn.Net {
	return nn.NewNet("slow", nn.KindDNN, 8).Add(&slowLayer{delay: delay})
}

func TestExpiredContextRejectedBeforeForward(t *testing.T) {
	s := NewServer()
	s.SetLogger(silence)
	defer s.Close()
	if err := s.Register("slow", slowNet(5*time.Millisecond), AppConfig{
		BatchInstances: 1, BatchWindow: time.Millisecond, Workers: 1,
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.InferCtx(ctx, "slow", make([]float32, 8))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired context returned %v, want ErrDeadlineExceeded", err)
	}
	st, _ := s.StatsFor("slow")
	if st.Expired != 1 {
		t.Fatalf("expired counter %d, want 1", st.Expired)
	}
	if st.Batches != 0 {
		t.Fatalf("expired query occupied %d forward passes", st.Batches)
	}
	if st.Errors != 0 || st.Shed() != 0 {
		t.Fatalf("expiry leaked into errors=%d shed=%d", st.Errors, st.Shed())
	}
}

func TestDeadlineExpiresInQueueWithoutOccupyingBatch(t *testing.T) {
	const forward = 60 * time.Millisecond
	s := NewServer()
	s.SetLogger(silence)
	defer s.Close()
	if err := s.Register("slow", slowNet(forward), AppConfig{
		BatchInstances: 1, BatchWindow: time.Millisecond, Workers: 1,
	}); err != nil {
		t.Fatal(err)
	}
	// Saturate the single worker and the batch channel so a later query
	// sits in the app queue past its deadline.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Infer("slow", make([]float32, 8)); err != nil {
				t.Errorf("background query failed: %v", err)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the backlog form
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.InferCtx(ctx, "slow", make([]float32, 8))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("queued query returned %v, want ErrDeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > forward {
		t.Fatalf("deadline return took %v, longer than a forward pass — caller was not unblocked at its deadline", waited)
	}
	wg.Wait()
	st, _ := s.StatsFor("slow")
	if st.Expired != 1 {
		t.Fatalf("expired counter %d, want 1", st.Expired)
	}
	if st.Queries != 3 || st.Batches != 3 {
		t.Fatalf("expired query occupied capacity: queries=%d batches=%d, want 3/3", st.Queries, st.Batches)
	}
}

func TestQueueWaitDominatesForwardUnderSlowWorker(t *testing.T) {
	const forward = 15 * time.Millisecond
	s := NewServer()
	s.SetLogger(silence)
	l, err := listen(t)
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(s.Close)
	if err := s.Register("slow", slowNet(forward), AppConfig{
		BatchInstances: 1, BatchWindow: time.Millisecond, Workers: 1,
	}); err != nil {
		t.Fatal(err)
	}
	const queries = 16
	var wg sync.WaitGroup
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Infer("slow", make([]float32, 8)); err != nil {
				t.Errorf("query failed: %v", err)
			}
		}()
	}
	wg.Wait()
	sum, ok := s.LatencyFor("slow")
	if !ok {
		t.Fatal("missing latency breakdown")
	}
	if sum.Forward.Count != queries || sum.QueueWait.Count != queries {
		t.Fatalf("stage sample counts %d/%d, want %d", sum.QueueWait.Count, sum.Forward.Count, queries)
	}
	// With one slow worker and a concurrent burst, queue wait dominates
	// the forward pass — exactly what the breakdown exists to expose.
	if sum.QueueWait.Mean < 2*sum.Forward.Mean {
		t.Fatalf("queue wait %v not ≫ forward %v under a saturated slow worker", sum.QueueWait.Mean, sum.Forward.Mean)
	}
	// The same breakdown is visible over the wire through the new
	// control verb, and stats reports the lifecycle counters.
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	lat, err := c.ServerLatency("slow")
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"queue_wait", "batch_assembly", "forward", "respond"} {
		if !strings.Contains(lat, stage) {
			t.Fatalf("latency verb output missing %q:\n%s", stage, lat)
		}
	}
	stats, err := c.ServerStats("slow")
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"shed_admission=", "shed_expired=", "expired=", "queries="} {
		if !strings.Contains(stats, field) {
			t.Fatalf("stats output missing %q: %s", field, stats)
		}
	}
}

func TestWorkerPanicFailsRequestNotCaller(t *testing.T) {
	s := NewServer()
	s.SetLogger(silence)
	defer s.Close()
	netw := nn.NewNet("bad", nn.KindDNN, 8).Add(&panicLayer{})
	if err := s.Register("bad", netw, AppConfig{
		BatchInstances: 1, BatchWindow: time.Millisecond, Workers: 1,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		done := make(chan error, 1)
		go func() {
			_, err := s.Infer("bad", make([]float32, 8))
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil || !strings.Contains(err.Error(), "panic") {
				t.Fatalf("want panic-derived error, got %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("caller deadlocked on a panicking worker")
		}
	}
	st, _ := s.StatsFor("bad")
	if st.Errors != 3 {
		t.Fatalf("errors counter %d, want 3", st.Errors)
	}
}

func TestCloseDrainsGracefullyUnderLoad(t *testing.T) {
	const forward = 20 * time.Millisecond
	const window = 2 * time.Millisecond
	s := NewServer()
	s.SetLogger(silence)
	if err := s.Register("slow", slowNet(forward), AppConfig{
		BatchInstances: 16, BatchWindow: window, Workers: 2, MaxPending: 64,
	}); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	_ = before // goroutine accounting happens against the post-close count below
	const queries = 32
	var wg sync.WaitGroup
	results := make(chan error, queries)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Infer("slow", make([]float32, 8))
			results <- err
		}()
	}
	time.Sleep(5 * time.Millisecond) // let load build
	start := time.Now()
	s.Close()
	closeTook := time.Since(start)
	// Acceptance bound: 2× the batch window plus the forward passes
	// already committed (two workers can each be mid-forward with one
	// more batch buffered), with scheduling slack.
	if limit := 2*window + 6*forward + 500*time.Millisecond; closeTook > limit {
		t.Fatalf("Close took %v, want < %v", closeTook, limit)
	}
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("Infer calls still blocked after Close")
	}
	close(results)
	var ok, drained int
	for err := range results {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrShuttingDown):
			drained++
		default:
			t.Fatalf("unexpected drain error: %v", err)
		}
	}
	if ok+drained != queries {
		t.Fatalf("accounted for %d of %d queries", ok+drained, queries)
	}
	// All service goroutines must have exited: the worker pool and the
	// aggregator are gone once Close returns.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines leaked after Close: %d running, baseline %d", n, before)
	}
	// And the drained server refuses new work with the distinct error.
	if _, err := s.Infer("slow", make([]float32, 8)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-close Infer returned %v, want ErrShuttingDown", err)
	}
}

func TestInferCtxDeadlineOverTCP(t *testing.T) {
	const forward = 60 * time.Millisecond
	s := NewServer()
	s.SetLogger(silence)
	l, err := listen(t)
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(s.Close)
	if err := s.Register("slow", slowNet(forward), AppConfig{
		BatchInstances: 1, BatchWindow: time.Millisecond, Workers: 1,
	}); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Park a query on the worker so the deadline-bearing one queues.
	bg, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer bg.Close()
	bgDone := make(chan struct{})
	go func() {
		bg.Infer("slow", make([]float32, 8))
		close(bgDone)
	}()
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	_, err = c.InferCtx(ctx, "slow", make([]float32, 8))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("wire deadline returned %v, want ErrDeadlineExceeded", err)
	}
	<-bgDone
	// The server answered with a status frame, not a dropped
	// connection: the same client keeps working.
	if _, err := c.Infer("slow", make([]float32, 8)); err != nil {
		t.Fatalf("connection unusable after a deadline miss: %v", err)
	}
	st, _ := s.StatsFor("slow")
	if st.Expired == 0 {
		t.Fatal("server did not account the wire-deadline expiry")
	}
}

// TestLifecycleConcurrentMix hammers one server with deadline queries,
// plain queries, and a mid-run drain — the scenario `go test -race`
// checks for lifecycle data races.
func TestLifecycleConcurrentMix(t *testing.T) {
	s := NewServer()
	s.SetLogger(silence)
	if err := s.Register("slow", slowNet(2*time.Millisecond), AppConfig{
		BatchInstances: 4, BatchWindow: time.Millisecond, Workers: 2, MaxPending: 8,
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				if i%2 == 0 {
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+j)*time.Millisecond)
					s.InferCtx(ctx, "slow", make([]float32, 8))
					cancel()
				} else {
					s.Infer("slow", make([]float32, 8))
				}
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(20 * time.Millisecond)
	s.Close()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("workers hung across drain")
	}
	st, _ := s.StatsFor("slow")
	total := st.Queries + st.Expired + st.Shed()
	if total == 0 {
		t.Fatal("no queries accounted")
	}
}
