package service

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"djinn/internal/trace"
)

func TestTracedRequestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := []float32{1, 2, 3}
	if err := writeTracedRequest(&buf, "abc123", "asr", 250*time.Millisecond, in); err != nil {
		t.Fatal(err)
	}
	magic, err := readUint32(&buf)
	if err != nil || magic != reqTraceMagic {
		t.Fatalf("magic %#x err %v", magic, err)
	}
	id, err := readTraceHeader(&buf)
	if err != nil || id != "abc123" {
		t.Fatalf("trace header %q err %v", id, err)
	}
	app, deadline, got, err := readRequestBody(&buf)
	if err != nil || app != "asr" || deadline != 250*time.Millisecond || len(got) != 3 {
		t.Fatalf("body round trip wrong: %q %v %v %v", app, deadline, got, err)
	}
}

func TestTraceHeaderBounds(t *testing.T) {
	// Oversized on the write side.
	var buf bytes.Buffer
	if err := writeTracedRequest(&buf, strings.Repeat("x", trace.MaxIDLen+1), "asr", 0, nil); err == nil {
		t.Fatal("oversized trace id accepted by writer")
	}
	// Oversized on the read side: a hostile length byte.
	if _, err := readTraceHeader(bytes.NewReader([]byte{200, 'a', 'b'})); err == nil {
		t.Fatal("oversized trace header accepted by reader")
	}
	// Truncated: length promises more bytes than follow.
	if _, err := readTraceHeader(bytes.NewReader([]byte{8, 'a', 'b'})); err == nil {
		t.Fatal("truncated trace header accepted")
	}
	// Absent (zero-length) id is legal and means untraced.
	id, err := readTraceHeader(bytes.NewReader([]byte{0}))
	if err != nil || id != "" {
		t.Fatalf("zero-length header: id=%q err=%v", id, err)
	}
}

// TestEndToEndTraceOverTCP sends a traced query through the real wire
// protocol and checks the server's store holds the full lifecycle and
// that the "trace" control verb renders it.
func TestEndToEndTraceOverTCP(t *testing.T) {
	srv, addr := startServer(t, AppConfig{BatchInstances: 1, Workers: 1})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	id := trace.NewID()
	in := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	ctx, cancel := context.WithTimeout(trace.WithID(context.Background(), id), 5*time.Second)
	defer cancel()
	out, err := c.InferCtx(ctx, "tiny", in)
	if err != nil || len(out) != 4 {
		t.Fatalf("traced infer: %v out=%v", err, out)
	}

	tr, ok := srv.TraceStore().Get(id)
	if !ok {
		t.Fatalf("server retained no trace for %s", id)
	}
	names := map[string]bool{}
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"queue_wait", "batch_assembly", "forward", "respond"} {
		if !names[want] {
			t.Fatalf("trace missing %s span: %+v", want, tr.Spans)
		}
	}
	// The span durations must be consistent with the latency breakdown
	// the server already exports: both views of the same query.
	sum, _ := srv.LatencyFor("tiny")
	for _, sp := range tr.Spans {
		if sp.Name == "forward" && sum.Forward.Count > 0 {
			if sp.Dur <= 0 || sp.Dur < sum.Forward.P50/10 || sp.Dur > 10*sum.Forward.P50+time.Second {
				t.Fatalf("forward span %v inconsistent with breakdown p50 %v", sp.Dur, sum.Forward.P50)
			}
		}
	}

	// The control verb renders the same trace over the wire.
	text, err := c.ServerTrace(id)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{id, "batch_assembly", "batch="} {
		if !strings.Contains(text, want) {
			t.Fatalf("trace verb output missing %q:\n%s", want, text)
		}
	}
	slow, err := c.ServerSlowestTraces(3)
	if err != nil || !strings.Contains(slow, id) {
		t.Fatalf("slowest verb: %v\n%s", err, slow)
	}
}

// TestUntracedRequestLeavesNoSpans: the plain frame must not populate
// the store — tracing is strictly opt-in per query.
func TestUntracedRequestLeavesNoSpans(t *testing.T) {
	srv, addr := startServer(t, AppConfig{BatchInstances: 1, Workers: 1})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Infer("tiny", []float32{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	if n := srv.TraceStore().Len(); n != 0 {
		t.Fatalf("untraced query left %d trace(s)", n)
	}
}

// TestTraceRecordsQueueExpiry: a query that dies in the queue leaves an
// explanatory span instead of a complete lifecycle.
func TestTraceRecordsQueueExpiry(t *testing.T) {
	srv := NewServer()
	srv.SetLogger(silence)
	t.Cleanup(srv.Close)
	// One worker, huge batch window: the first query occupies the
	// worker while the second expires waiting.
	if err := srv.Register("tiny", testNet(1), AppConfig{BatchInstances: 1, Workers: 1, BatchWindow: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	id := trace.NewID()
	ctx, cancel := context.WithTimeout(trace.WithID(context.Background(), id), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // let the context expire
	if _, err := srv.InferCtx(ctx, "tiny", []float32{1, 2, 3, 4, 5, 6, 7, 8}); err == nil {
		t.Fatal("expired query succeeded")
	}
	// The pre-enqueue expiry path rejects before the request exists;
	// drive the in-queue path too: enqueue with a short deadline under
	// a stalled aggregator is racy to stage reliably, so assert only
	// the invariant this test owns — an expired query never leaves a
	// complete lifecycle trace.
	if tr, ok := srv.TraceStore().Get(id); ok {
		for _, sp := range tr.Spans {
			if sp.Name == "forward" {
				t.Fatalf("expired query recorded a forward span: %+v", tr.Spans)
			}
		}
	}
}

func TestControlTraceErrors(t *testing.T) {
	srv := NewServer()
	srv.SetLogger(silence)
	t.Cleanup(srv.Close)
	if _, err := srv.control("trace"); err == nil {
		t.Fatal("bare trace verb accepted")
	}
	if _, err := srv.control("trace nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	if _, err := srv.control("trace slowest bogus"); err == nil {
		t.Fatal("non-numeric slowest accepted")
	}
	if out, err := srv.control("trace slowest 3"); err != nil || !strings.Contains(out, "no traces") {
		t.Fatalf("empty slowest: %q err=%v", out, err)
	}
}
