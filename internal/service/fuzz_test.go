package service

import (
	"bytes"
	"testing"
)

// FuzzReadRequest: arbitrary bytes must never panic the request parser
// (a network-facing server survives hostile frames).
func FuzzReadRequest(f *testing.F) {
	var seed bytes.Buffer
	writeRequest(&seed, "asr", 0, []float32{1, 2, 3})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x51, 0x52, 0x4a, 0x44})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		app, _, in, err := readRequest(bytes.NewReader(data))
		if err == nil {
			// A parse that succeeds must produce sane fields.
			if len(app) == 0 || len(app) > MaxAppNameLen {
				t.Fatalf("accepted bad app name %q", app)
			}
			if len(in) > MaxPayloadFloats {
				t.Fatalf("accepted oversized payload %d", len(in))
			}
		}
	})
}

// FuzzReadResponse: same guarantee for the client-side parser.
func FuzzReadResponse(f *testing.F) {
	var seed bytes.Buffer
	writeResponse(&seed, StatusOK, "ok", []float32{4, 5})
	f.Add(seed.Bytes())
	f.Add([]byte{0x53, 0x52, 0x4a, 0x44, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		readResponse(bytes.NewReader(data))
	})
}

// FuzzControlRoundTrip: valid control commands round-trip; arbitrary
// bytes never panic the control parser.
func FuzzControlRoundTrip(f *testing.F) {
	f.Add("apps")
	f.Add("stats tiny")
	f.Fuzz(func(t *testing.T, cmd string) {
		if len(cmd) == 0 || len(cmd) > 1024 {
			return
		}
		var buf bytes.Buffer
		if err := writeControl(&buf, cmd); err != nil {
			t.Fatalf("writing %q: %v", cmd, err)
		}
		var magic [4]byte
		copy(magic[:], buf.Bytes()[:4])
		got, err := readControlBody(bytes.NewReader(buf.Bytes()[4:]))
		if err != nil {
			t.Fatalf("reading back %q: %v", cmd, err)
		}
		if got != cmd {
			t.Fatalf("round trip %q -> %q", cmd, got)
		}
	})
}
