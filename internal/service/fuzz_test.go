package service

import (
	"bytes"
	"testing"
	"time"

	"djinn/internal/trace"
)

// FuzzReadRequest: arbitrary bytes must never panic the request parser
// (a network-facing server survives hostile frames). The parser runs
// in a loop over the input, the shape a server connection sees when a
// router's retry lands a duplicate frame right behind the original.
func FuzzReadRequest(f *testing.F) {
	var seed bytes.Buffer
	writeRequest(&seed, "asr", 0, []float32{1, 2, 3})
	f.Add(seed.Bytes())
	// A request carrying a deadline, the lifecycle extension's field.
	var deadlined bytes.Buffer
	writeRequest(&deadlined, "dig", 250*time.Millisecond, []float32{4, 5, 6, 7})
	f.Add(deadlined.Bytes())
	// Two identical frames back to back: what a retried query looks
	// like on the wire when the first attempt's connection survived.
	f.Add(append(append([]byte{}, seed.Bytes()...), seed.Bytes()...))
	// A valid frame with trailing garbage that must not poison it.
	f.Add(append(append([]byte{}, deadlined.Bytes()...), 0xde, 0xad))
	f.Add([]byte{})
	f.Add([]byte{0x51, 0x52, 0x4a, 0x44})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 16; i++ {
			app, deadline, in, err := readRequest(r)
			if err != nil {
				break
			}
			// A parse that succeeds must produce sane fields.
			if len(app) == 0 || len(app) > MaxAppNameLen {
				t.Fatalf("accepted bad app name %q", app)
			}
			if len(in) > MaxPayloadFloats {
				t.Fatalf("accepted oversized payload %d", len(in))
			}
			if deadline < 0 {
				t.Fatalf("accepted negative deadline %v", deadline)
			}
		}
	})
}

// FuzzReadTracedRequest: the traced-frame path ('DJRT' magic + trace-ID
// header) must never panic and never accept an oversized ID. The loop
// dispatches on the magic exactly like the server's connection handler,
// so plain and traced frames can interleave on one stream.
func FuzzReadTracedRequest(f *testing.F) {
	// A well-formed traced frame.
	var traced bytes.Buffer
	writeTracedRequest(&traced, "abcdef0123456789", "asr", 100*time.Millisecond, []float32{1, 2})
	f.Add(traced.Bytes())
	// Absent ID: idLen 0 is legal and means "untraced".
	var untraced bytes.Buffer
	writeTracedRequest(&untraced, "", "dig", 0, []float32{3})
	f.Add(untraced.Bytes())
	// Truncated: the header promises 16 ID bytes, the stream ends early.
	f.Add(append(trMagicBytes(), 16, 'a', 'b'))
	// Oversized: idLen 200 > trace.MaxIDLen is a protocol violation.
	frame := append(trMagicBytes(), 200)
	frame = append(frame, bytes.Repeat([]byte{'x'}, 200)...)
	f.Add(frame)
	// Duplicated back to back: a router retry landing behind the
	// original on a surviving connection.
	f.Add(append(append([]byte{}, traced.Bytes()...), traced.Bytes()...))
	// A traced frame followed by a plain one on the same stream.
	var mixed bytes.Buffer
	mixed.Write(traced.Bytes())
	writeRequest(&mixed, "pos", 0, []float32{4})
	f.Add(mixed.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 16; i++ {
			magic, err := readUint32(r)
			if err != nil {
				break
			}
			if magic == reqTraceMagic {
				id, err := readTraceHeader(r)
				if err != nil {
					break
				}
				if len(id) > trace.MaxIDLen {
					t.Fatalf("accepted %d-byte trace id", len(id))
				}
			} else if magic != reqMagic {
				break
			}
			app, deadline, in, err := readRequestBody(r)
			if err != nil {
				break
			}
			if len(app) == 0 || len(app) > MaxAppNameLen ||
				len(in) > MaxPayloadFloats || deadline < 0 {
				t.Fatalf("accepted bad body: app=%q deadline=%v floats=%d", app, deadline, len(in))
			}
		}
	})
}

// trMagicBytes is the little-endian 'DJRT' magic, for hand-built seeds.
func trMagicBytes() []byte {
	return []byte{0x54, 0x52, 0x4a, 0x44}
}

// FuzzReadResponse: same guarantee for the client-side parser, looping
// like a pooled router connection that reads consecutive responses.
func FuzzReadResponse(f *testing.F) {
	var seed bytes.Buffer
	writeResponse(&seed, StatusOK, "ok", []float32{4, 5})
	f.Add(seed.Bytes())
	// One seed per lifecycle status the server can answer with: the
	// client maps these to ErrDeadlineExceeded / ErrShuttingDown /
	// ErrOverloaded, so their frames must parse cleanly.
	for _, st := range []byte{StatusDeadline, StatusShutdown, StatusOverload} {
		var b bytes.Buffer
		writeResponse(&b, st, "tiny rejected", nil)
		f.Add(b.Bytes())
	}
	// A retried exchange: error response followed by a success.
	var retried bytes.Buffer
	writeResponse(&retried, StatusOverload, "busy", nil)
	writeResponse(&retried, StatusOK, "ok", []float32{1})
	f.Add(retried.Bytes())
	f.Add([]byte{0x53, 0x52, 0x4a, 0x44, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 16; i++ {
			if _, _, _, err := readResponse(r); err != nil {
				break
			}
		}
	})
}

// FuzzControlRoundTrip: valid control commands round-trip; arbitrary
// bytes never panic the control parser.
func FuzzControlRoundTrip(f *testing.F) {
	f.Add("apps")
	f.Add("stats tiny")
	f.Add("sched tiny")
	f.Add("model list")
	f.Add("model stats")
	f.Add("model register /models/imc@v1.djw")
	f.Add("model load imc@v2")
	f.Add("model evict imc")
	f.Add("model evict imc@v1")
	f.Add("placement")
	f.Add("placement imc")
	f.Add("members")
	f.Add("autoscale asr")
	f.Add("scale imc 3")
	f.Add("rebalance")
	f.Add("events")
	f.Add("events 20")
	f.Add("events since 42")
	f.Add("events kind markdown 5")
	f.Add("alerts")
	f.Add("alerts imc")
	f.Fuzz(func(t *testing.T, cmd string) {
		if len(cmd) == 0 || len(cmd) > 1024 {
			return
		}
		var buf bytes.Buffer
		if err := writeControl(&buf, cmd); err != nil {
			t.Fatalf("writing %q: %v", cmd, err)
		}
		var magic [4]byte
		copy(magic[:], buf.Bytes()[:4])
		got, err := readControlBody(bytes.NewReader(buf.Bytes()[4:]))
		if err != nil {
			t.Fatalf("reading back %q: %v", cmd, err)
		}
		if got != cmd {
			t.Fatalf("round trip %q -> %q", cmd, got)
		}
	})
}
