package service

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"djinn/internal/modelstore"
)

// AttachModelStore connects a model-store registry to the server: a
// query whose application name is not a registered app is resolved
// against the store ("imc" → newest version, "imc@v2" → exactly v2),
// the model is faulted in (mmap + plan compilation) under the store's
// memory budget, and an application is registered for it on the fly
// with cfg's batching parameters. When the store evicts a model, the
// server drains and unregisters its application before the mapping is
// unmapped.
//
// Attach before serving. The registry must not be shared with another
// server: eviction drains are wired to this one.
func (s *Server) AttachModelStore(reg *modelstore.Registry, cfg AppConfig) {
	s.mu.Lock()
	s.store = reg
	s.storeCfg = cfg.withDefaults()
	s.mu.Unlock()
	reg.SetOnEvict(func(id modelstore.ID) {
		// Unknown is fine: the model may have been loaded (e.g. by an
		// explicit `model load`) without ever serving a query.
		if err := s.Unregister(id.String()); err == nil {
			s.logf("service: drained %s for eviction", id)
		}
	})
}

// ModelRegistry returns the attached model store, or nil.
func (s *Server) ModelRegistry() *modelstore.Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store
}

// ModelStats returns the attached store's counters; ok is false when
// no store is attached.
func (s *Server) ModelStats() (modelstore.Stats, bool) {
	reg := s.ModelRegistry()
	if reg == nil {
		return modelstore.Stats{}, false
	}
	return reg.Stats(), true
}

// dispatchStored serves a query for a name with no registered app by
// faulting the model in from the store. The model is pinned for the
// query's whole lifetime — Acquire before enqueue, Release after the
// response — so eviction can never unmap pages a forward pass is
// reading. The app registered for a stored model is named by the full
// versioned ID, so two versions of one model serve side by side.
func (s *Server) dispatchStored(ctx context.Context, appName string, in []float32) ([]float32, error) {
	reg := s.ModelRegistry()
	if reg == nil {
		return nil, fmt.Errorf("service: unknown application %q", appName)
	}
	id, ok := reg.Resolve(appName)
	if !ok {
		return nil, fmt.Errorf("service: unknown application %q", appName)
	}
	// An eviction or server drain can close the app between our pin
	// and the enqueue only in narrow races (the pin blocks the normal
	// eviction path); retry a bounded number of times rather than
	// failing a query that could be served by faulting the model back
	// in.
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		m, err := reg.Acquire(id)
		if err != nil {
			return nil, fmt.Errorf("service: loading model %s: %w", id, err)
		}
		a, err := s.ensureStoreApp(id, m)
		if err != nil {
			reg.Release(id)
			return nil, err
		}
		out, err := s.dispatchApp(ctx, a, in)
		reg.Release(id)
		if err != nil && errors.Is(err, ErrShuttingDown) && !s.isClosing() {
			lastErr = err
			continue
		}
		return out, err
	}
	return nil, lastErr
}

func (s *Server) isClosing() bool {
	select {
	case <-s.closing:
		return true
	default:
		return false
	}
}

// ensureStoreApp returns the application serving a pinned model,
// registering it on first use. Two queries can race the first fault-in;
// the loser of the Register race adopts the winner's app.
func (s *Server) ensureStoreApp(id modelstore.ID, m *modelstore.Model) (*app, error) {
	name := id.String()
	if a, ok := s.app(name); ok {
		return a, nil
	}
	if err := s.Register(name, m.Net(), s.storeCfg); err != nil {
		if a, ok := s.app(name); ok {
			return a, nil
		}
		return nil, err
	}
	a, _ := s.app(name)
	return a, nil
}

// Activate warms one application for serving on this replica — the
// control plane's placement hook. A name that is already a registered
// app is a no-op; otherwise the name is resolved against the attached
// model store, the model is faulted in under the store's budget (mmap +
// plan compilation), and its application is registered ahead of any
// traffic, so the first placed query pays no cold-start.
func (s *Server) Activate(name string) error {
	if _, ok := s.app(name); ok {
		return nil
	}
	reg := s.ModelRegistry()
	if reg == nil {
		return fmt.Errorf("service: cannot activate %q: no model store attached", name)
	}
	id, ok := reg.Resolve(name)
	if !ok {
		return fmt.Errorf("service: cannot activate unknown application %q", name)
	}
	if a, ok := s.app(id.String()); ok && a != nil {
		return nil
	}
	m, err := reg.Acquire(id)
	if err != nil {
		return fmt.Errorf("service: activating %s: %w", id, err)
	}
	defer reg.Release(id)
	_, err = s.ensureStoreApp(id, m)
	return err
}

// Deactivate drains one application off this replica — the inverse
// placement hook, run after the control plane has moved the app's
// traffic elsewhere. It reuses the Unregister drain (gate close, batch
// under assembly completes, workers exit) and then, when the app was
// store-backed, evicts the model to return its budget. Eviction is best
// effort: a pin held by an in-flight straggler keeps the mapping until
// the store's next eviction pass. Deactivating an app that was never
// active on this replica is a no-op.
func (s *Server) Deactivate(name string) error {
	target := name
	reg := s.ModelRegistry()
	var id modelstore.ID
	resolved := false
	if reg != nil {
		if rid, ok := reg.Resolve(name); ok {
			id, resolved = rid, true
			target = rid.String()
		}
	}
	err := s.Unregister(target)
	if err != nil && target != name {
		if e2 := s.Unregister(name); e2 == nil {
			err = nil
		}
	}
	if resolved {
		_ = reg.Evict(id)
		return nil
	}
	return err
}

// controlModel answers the "model" control verb family:
//
//	model list                 one line per registered model
//	model stats                registry counters (the djinn_model_* gauges)
//	model register <path>      register a weight file on the server's disk
//	model load <name|id>       fault a model in ahead of traffic
//	model evict <name|id>      unload a model (fails if queries are in flight)
func (s *Server) controlModel(args []string) (string, error) {
	reg := s.ModelRegistry()
	if reg == nil {
		return "", errors.New("service: no model store attached")
	}
	if len(args) == 0 {
		return "", errors.New("service: usage: model list|stats|register <path>|load <id>|evict <id>")
	}
	resolve := func(arg string) (modelstore.ID, error) {
		id, ok := reg.Resolve(arg)
		if !ok {
			return modelstore.ID{}, fmt.Errorf("service: unknown model %q", arg)
		}
		return id, nil
	}
	switch args[0] {
	case "list":
		infos := reg.List()
		if len(infos) == 0 {
			return "no models registered", nil
		}
		var sb strings.Builder
		for i, info := range infos {
			if i > 0 {
				sb.WriteByte('\n')
			}
			fmt.Fprintf(&sb, "%s resident=%v pins=%d bytes=%d params=%d",
				info.ID, info.Resident, info.Pins, info.Bytes, info.Params)
		}
		return sb.String(), nil
	case "stats":
		st := reg.Stats()
		return fmt.Sprintf("registered=%d resident=%d resident_bytes=%d peak_bytes=%d budget_bytes=%d loads=%d faults=%d evictions=%d load_errors=%d",
			st.Registered, st.Resident, st.ResidentBytes, st.PeakBytes, st.BudgetBytes,
			st.Loads, st.Faults, st.Evictions, st.LoadErrors), nil
	case "register":
		if len(args) != 2 {
			return "", errors.New("service: usage: model register <path>")
		}
		meta, err := reg.Register(args[1])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("registered %s (%d bytes, %d params)", meta.ID(), meta.FileSize, len(meta.Params)), nil
	case "load":
		if len(args) != 2 {
			return "", errors.New("service: usage: model load <name|name@vN>")
		}
		id, err := resolve(args[1])
		if err != nil {
			return "", err
		}
		if err := reg.Load(id); err != nil {
			return "", err
		}
		return "loaded " + id.String(), nil
	case "evict":
		if len(args) != 2 {
			return "", errors.New("service: usage: model evict <name|name@vN>")
		}
		id, err := resolve(args[1])
		if err != nil {
			return "", err
		}
		if err := reg.Evict(id); err != nil {
			return "", err
		}
		return "evicted " + id.String(), nil
	default:
		return "", fmt.Errorf("service: unknown model command %q", args[0])
	}
}
