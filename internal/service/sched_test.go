package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"djinn/internal/sched"
	"djinn/internal/testutil"
)

// TestAggregatorIdleNoTimerWakeups: the flush timer is lazy — an app
// that receives no traffic must perform zero timer wakeups, and an app
// whose batches all fill on the size threshold must not pay window
// fires either.
func TestAggregatorIdleNoTimerWakeups(t *testing.T) {
	s := inproc(t, AppConfig{BatchInstances: 1, BatchWindow: 100 * time.Microsecond, Workers: 1})
	a, _ := s.app("tiny")

	// Idle: far longer than the window; the timer must never fire.
	time.Sleep(20 * time.Millisecond)
	if n := a.timerWakeups.Load(); n != 0 {
		t.Fatalf("idle app performed %d timer wakeups", n)
	}

	// Threshold flushes (batch target 1): still no window fires.
	inferN(t, s, 8)
	time.Sleep(5 * time.Millisecond)
	if n := a.timerWakeups.Load(); n != 0 {
		t.Fatalf("threshold-flushed batches paid %d timer wakeups", n)
	}
}

// TestAggregatorWindowWakeupCounted: a partial batch that waits out
// the window fires the lazy timer exactly as often as batches flush on
// timeout — not continuously.
func TestAggregatorWindowWakeupCounted(t *testing.T) {
	s := inproc(t, AppConfig{BatchInstances: 64, BatchWindow: time.Millisecond, Workers: 1})
	a, _ := s.app("tiny")
	if _, err := s.Infer("tiny", make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
	if n := a.timerWakeups.Load(); n != 1 {
		t.Fatalf("one window-flushed batch, %d timer wakeups", n)
	}
	// Back to idle: no further fires.
	time.Sleep(10 * time.Millisecond)
	if n := a.timerWakeups.Load(); n != 1 {
		t.Fatalf("idle after flush, wakeups grew to %d", n)
	}
}

// TestAdmissionShedsBeforeQueue: once the service-time estimate is
// warm, queries that cannot meet the SLO are rejected with
// ErrOverloaded at dispatch — before they occupy queue capacity — and
// land in ShedAdmission, not ShedExpired.
func TestAdmissionShedsBeforeQueue(t *testing.T) {
	testutil.NoLeaks(t)
	s := NewServer()
	s.SetLogger(silence)
	defer s.Close()
	const forward = 10 * time.Millisecond
	if err := s.Register("slow", slowNet(forward), AppConfig{
		BatchInstances: 1, BatchWindow: time.Millisecond, Workers: 1,
		MaxPending: 1024, SLO: 20 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}

	// First wave admits cold (no service-time observation yet) and
	// builds a deep backlog behind the single 10ms-per-batch worker.
	const wave = 30
	var wg sync.WaitGroup
	var served, overloaded atomic.Int64
	issue := func() {
		defer wg.Done()
		_, err := s.Infer("slow", make([]float32, 8))
		switch {
		case err == nil:
			served.Add(1)
		case errors.Is(err, ErrOverloaded):
			overloaded.Add(1)
		default:
			t.Errorf("unexpected error: %v", err)
		}
	}
	wg.Add(wave)
	for i := 0; i < wave; i++ {
		go issue()
	}
	// Wait for the estimate to warm up (≥2 completed batches) while
	// most of the wave still queues.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := s.StatsFor("slow")
		if st.Queries >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first wave never completed a batch")
		}
		time.Sleep(time.Millisecond)
	}

	// Second wave: the backlog alone is worth hundreds of ms against a
	// 20ms SLO, so admission must reject it.
	wg.Add(wave)
	for i := 0; i < wave; i++ {
		go issue()
	}
	wg.Wait()

	st, _ := s.StatsFor("slow")
	if overloaded.Load() == 0 || st.ShedAdmission == 0 {
		t.Fatalf("admission never engaged: overloaded=%d stats=%+v", overloaded.Load(), st)
	}
	if st.ShedExpired != 0 {
		t.Fatalf("admitted queries rotted in the queue: %+v", st)
	}
	if served.Load() == 0 {
		t.Fatal("admission rejected everything, including feasible work")
	}
	info, ok := s.SchedFor("slow")
	if !ok {
		t.Fatal("SchedFor returned no info for an SLO app")
	}
	if info.Rejected == 0 || info.Admitted == 0 {
		t.Fatalf("scheduler counters empty: %+v", info)
	}
	if r := info.AdmissionRate(); r <= 0 || r >= 1 {
		t.Fatalf("admission rate %v, want in (0,1)", r)
	}
	// The queued-instance account must balance: everything admitted was
	// either executed or dropped by the time all callers returned.
	if info.Queued != 0 {
		t.Fatalf("queued account leaked: %+v", info)
	}
}

// TestAdaptiveBatchGrowsUnderHealthyLoad: with a generous SLO and
// steady concurrent traffic, the adaptive controller must grow the
// effective batch past the initial size of 1.
func TestAdaptiveBatchGrowsUnderHealthyLoad(t *testing.T) {
	testutil.NoLeaks(t)
	s := NewServer()
	s.SetLogger(silence)
	defer s.Close()
	if err := s.Register("tiny", testNet(1), AppConfig{
		BatchInstances: 32, BatchWindow: time.Millisecond, Workers: 2,
		SLO: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := s.Infer("tiny", make([]float32, 8)); err != nil {
					t.Errorf("query failed: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	info, ok := s.SchedFor("tiny")
	if !ok {
		t.Fatal("SchedFor returned no info")
	}
	if info.Batch <= 1 {
		t.Fatalf("adaptive batch never grew: %+v", info)
	}
	if info.Batch > 32 {
		t.Fatalf("adaptive batch exceeded MaxBatch: %+v", info)
	}
	if info.Admitted != 400 || info.Rejected != 0 {
		t.Fatalf("counters: %+v, want 400 admitted / 0 rejected", info)
	}
	if info.Window <= 0 {
		t.Fatalf("flush window %v, want > 0", info.Window)
	}
}

// TestSchedControlVerb: the "sched" verb renders a parseable snapshot
// for SLO apps, "disabled" for static apps, and an error for unknown
// ones.
func TestSchedControlVerb(t *testing.T) {
	testutil.NoLeaks(t)
	s := NewServer()
	s.SetLogger(silence)
	defer s.Close()
	if err := s.Register("tiny", testNet(1), AppConfig{
		BatchInstances: 8, Workers: 1, SLO: 100 * time.Millisecond,
		Priority: sched.LatencyCritical,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("bulk", testNet(2), AppConfig{BatchInstances: 8, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	inferN(t, s, 4)

	out, err := s.control("sched tiny")
	if err != nil {
		t.Fatal(err)
	}
	info, err := sched.ParseInfo(out)
	if err != nil {
		t.Fatalf("sched verb output unparseable: %q: %v", out, err)
	}
	if info.SLO != 100*time.Millisecond || info.Priority != sched.LatencyCritical {
		t.Fatalf("sched verb reported %+v", info)
	}
	if info.Admitted != 4 {
		t.Fatalf("admitted = %d, want 4 (%q)", info.Admitted, out)
	}

	if out, err := s.control("sched bulk"); err != nil || out != "disabled" {
		t.Fatalf("static app sched verb = %q, %v; want \"disabled\"", out, err)
	}
	if _, err := s.control("sched nosuch"); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := s.control("sched"); err == nil {
		t.Fatal("missing app name accepted")
	}
	if !strings.Contains(out, "slo=") {
		t.Fatalf("sched output missing slo field: %q", out)
	}
}

// TestAbandonedThenExpiredQueryBalancesAdmission: a query whose caller
// abandons the wait (claiming the respond slot) and which then expires
// at batch assembly must still be Dropped from the admission account —
// gating Dropped on winning the respond race leaks queued instances
// into every future delay estimate, ratcheting admission toward
// rejecting everything.
func TestAbandonedThenExpiredQueryBalancesAdmission(t *testing.T) {
	testutil.NoLeaks(t)
	s := NewServer()
	s.SetLogger(silence)
	defer s.Close()
	const forward = 100 * time.Millisecond
	if err := s.Register("slow", slowNet(forward), AppConfig{
		BatchInstances: 1, BatchWindow: time.Millisecond, Workers: 1,
		SLO: time.Second,
	}); err != nil {
		t.Fatal(err)
	}

	// Stall the pipeline: q1 occupies the worker for 100ms, q2 parks in
	// the batch channel, q3's flush blocks the aggregator on the full
	// channel. All are admitted cold (no service-time estimate yet).
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Infer("slow", make([]float32, 8)); err != nil {
				t.Errorf("stall query failed: %v", err)
			}
		}()
		time.Sleep(10 * time.Millisecond)
	}

	// Victims: admitted cold, waiting in the request queue behind the
	// blocked aggregator. Their 20ms deadlines fire long before the
	// aggregator unblocks (~100ms), so each caller abandons the wait
	// and wins the respond race; assembly later sees the corpses.
	const victims = 4
	wg.Add(victims)
	for i := 0; i < victims; i++ {
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			if _, err := s.InferCtx(ctx, "slow", make([]float32, 8)); !errors.Is(err, ErrDeadlineExceeded) {
				t.Errorf("victim got %v, want ErrDeadlineExceeded", err)
			}
		}()
	}
	wg.Wait()

	// All three stall batches completed; victims died at assembly with
	// the respond slot already claimed by their callers.
	st, _ := s.StatsFor("slow")
	if st.Queries != 3 {
		t.Fatalf("stall queries served = %d, want 3 (%+v)", st.Queries, st)
	}
	if st.Expired != victims {
		t.Fatalf("caller-side expired = %d, want %d (%+v)", st.Expired, victims, st)
	}
	if st.ShedExpired != 0 {
		t.Fatalf("ShedExpired = %d, want 0 — respond was already claimed (%+v)", st.ShedExpired, st)
	}
	info, ok := s.SchedFor("slow")
	if !ok {
		t.Fatal("SchedFor returned no info")
	}
	if info.Queued != 0 {
		t.Fatalf("admission account leaked %d instances: %+v", info.Queued, info)
	}
}

// TestSchedStatsDrainClean: an SLO app closed mid-traffic must not
// wedge — the drain balances the admission account via Dropped.
func TestSchedStatsDrainClean(t *testing.T) {
	testutil.NoLeaks(t)
	s := NewServer()
	s.SetLogger(silence)
	if err := s.Register("slow", slowNet(5*time.Millisecond), AppConfig{
		BatchInstances: 1, BatchWindow: time.Millisecond, Workers: 1,
		SLO: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Infer("slow", make([]float32, 8)) // some fail with ErrShuttingDown
		}()
	}
	time.Sleep(10 * time.Millisecond)
	s.Close()
	wg.Wait()
	info, ok := s.SchedFor("slow")
	if !ok {
		t.Fatal("SchedFor after close")
	}
	if info.Queued != 0 {
		t.Fatalf("drain leaked %d queued instances", info.Queued)
	}
}
