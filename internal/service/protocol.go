// Package service implements DjiNN itself (Section 3.1): a standalone
// DNN-inference service accepting requests over a custom socket
// protocol on TCP/IP. Pre-trained models are loaded once at start-up
// and shared read-only across all workers; incoming requests are
// batched across connections (Section 5.1's throughput optimisation)
// and executed by a pool of workers, each owning its private activation
// buffers.
package service

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"djinn/internal/trace"
)

// Wire protocol: little-endian framed messages.
//
//	request:  magic 'DJRQ' u32 | appLen u16 | app bytes | deadlineMicros u32 | nFloats u32 | floats
//	traced:   magic 'DJRT' u32 | idLen u8 | id bytes | <request body as above, minus magic>
//	response: magic 'DJRS' u32 | status u8  | msgLen u16 | msg bytes  | nFloats u32 | floats
//
// The traced frame is the optional trace-ID header: a client (or
// router) that minted a request ID sends 'DJRT' so every hop can
// annotate spans under that ID; untraced clients keep sending 'DJRQ'
// and old servers simply never see the new magic. idLen is bounded by
// trace.MaxIDLen; a zero idLen is legal and means "untraced" (the
// frame degrades to a plain request).
//
// The request payload is the preprocessed input for one query: a batch
// of DNN input instances laid out contiguously (e.g. 548 spliced
// feature vectors for ASR, 28 word windows for POS). The response is
// the corresponding probability vectors.
//
// deadlineMicros is the client's remaining latency budget in
// microseconds (0 = unbounded). It is a relative duration, not a wall
// clock, so client/server clock skew cannot expire a query spuriously;
// the server arms a context deadline from it and sheds the query at
// whichever lifecycle stage the budget runs out.
const (
	reqMagic      = 0x444a5251 // "DJRQ"
	reqTraceMagic = 0x444a5254 // "DJRT" — request carrying a trace-ID header
	respMagic     = 0x444a5253 // "DJRS"
	ctrlMagic     = 0x444a4343 // "DJCC" — control commands (apps, stats)

	// StatusOK indicates a successful inference.
	StatusOK = 0
	// StatusError indicates a failed request; the message explains why.
	StatusError = 1
	// StatusDeadline indicates the query's deadline expired before a
	// result was produced (maps to ErrDeadlineExceeded client-side).
	StatusDeadline = 2
	// StatusShutdown indicates the server is draining and rejected the
	// query (maps to ErrShuttingDown client-side).
	StatusShutdown = 3
	// StatusOverload indicates the query was shed because the app's
	// pending queue was full (maps to ErrOverloaded client-side).
	StatusOverload = 4

	// MaxAppNameLen bounds the application-name field.
	MaxAppNameLen = 128
	// MaxPayloadFloats bounds a request or response payload (64M
	// floats = 256 MB), a sanity limit against corrupt frames.
	MaxPayloadFloats = 64 << 20
)

func writeUint32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readUint32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func writeFloats(w io.Writer, data []float32) error {
	if err := writeUint32(w, uint32(len(data))); err != nil {
		return err
	}
	buf := make([]byte, 4*4096)
	for off := 0; off < len(data); off += 4096 {
		end := off + 4096
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]
		for i, v := range chunk {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
		}
		if _, err := w.Write(buf[:len(chunk)*4]); err != nil {
			return err
		}
	}
	return nil
}

func readFloats(r io.Reader) ([]float32, error) {
	n, err := readUint32(r)
	if err != nil {
		return nil, err
	}
	if n > MaxPayloadFloats {
		return nil, fmt.Errorf("service: payload of %d floats exceeds limit", n)
	}
	data := make([]float32, n)
	buf := make([]byte, 4*4096)
	for off := 0; off < int(n); off += 4096 {
		end := off + 4096
		if end > int(n) {
			end = int(n)
		}
		chunk := buf[:(end-off)*4]
		if _, err := io.ReadFull(r, chunk); err != nil {
			return nil, err
		}
		for i := off; i < end; i++ {
			data[i] = math.Float32frombits(binary.LittleEndian.Uint32(chunk[(i-off)*4:]))
		}
	}
	return data, nil
}

// maxWireDeadline is the largest budget the u32 microsecond field can
// carry (~71 minutes); longer deadlines are clamped — any real query
// SLA is orders of magnitude shorter.
const maxWireDeadline = time.Duration(math.MaxUint32) * time.Microsecond

// writeRequest frames one inference request. deadline is the remaining
// latency budget (0 = none).
func writeRequest(w io.Writer, app string, deadline time.Duration, in []float32) error {
	if err := writeUint32(w, reqMagic); err != nil {
		return err
	}
	return writeRequestFields(w, app, deadline, in)
}

// writeTracedRequest frames one inference request carrying a trace-ID
// header ('DJRT').
func writeTracedRequest(w io.Writer, id, app string, deadline time.Duration, in []float32) error {
	if len(id) > trace.MaxIDLen {
		return fmt.Errorf("service: trace id of %d bytes exceeds %d", len(id), trace.MaxIDLen)
	}
	if err := writeUint32(w, reqTraceMagic); err != nil {
		return err
	}
	if _, err := w.Write([]byte{byte(len(id))}); err != nil {
		return err
	}
	if _, err := io.WriteString(w, id); err != nil {
		return err
	}
	return writeRequestFields(w, app, deadline, in)
}

// writeRequestFields writes the request body shared by the plain and
// traced frames (everything after the magic and optional trace header).
func writeRequestFields(w io.Writer, app string, deadline time.Duration, in []float32) error {
	if len(app) == 0 || len(app) > MaxAppNameLen {
		return fmt.Errorf("service: bad app name length %d", len(app))
	}
	var nl [2]byte
	binary.LittleEndian.PutUint16(nl[:], uint16(len(app)))
	if _, err := w.Write(nl[:]); err != nil {
		return err
	}
	if _, err := io.WriteString(w, app); err != nil {
		return err
	}
	if deadline < 0 || deadline > maxWireDeadline {
		deadline = maxWireDeadline
	}
	if err := writeUint32(w, uint32(deadline/time.Microsecond)); err != nil {
		return err
	}
	return writeFloats(w, in)
}

// readTraceHeader parses the trace-ID header of a 'DJRT' frame after
// its magic has been consumed. A zero-length ID is legal (untraced);
// an oversized one is a protocol violation.
func readTraceHeader(r io.Reader) (string, error) {
	var lb [1]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return "", err
	}
	n := int(lb[0])
	if n == 0 {
		return "", nil
	}
	if n > trace.MaxIDLen {
		return "", fmt.Errorf("service: trace id of %d bytes exceeds %d", n, trace.MaxIDLen)
	}
	id := make([]byte, n)
	if _, err := io.ReadFull(r, id); err != nil {
		return "", err
	}
	return string(id), nil
}

// readRequest parses one inference request (including its magic).
func readRequest(r io.Reader) (app string, deadline time.Duration, in []float32, err error) {
	magic, err := readUint32(r)
	if err != nil {
		return "", 0, nil, err
	}
	if magic != reqMagic {
		return "", 0, nil, fmt.Errorf("service: bad request magic %#x", magic)
	}
	return readRequestBody(r)
}

// readRequestBody parses an inference request after its magic has been
// consumed (the server dispatches on the magic).
func readRequestBody(r io.Reader) (app string, deadline time.Duration, in []float32, err error) {
	var nl [2]byte
	if _, err := io.ReadFull(r, nl[:]); err != nil {
		return "", 0, nil, err
	}
	nameLen := binary.LittleEndian.Uint16(nl[:])
	if nameLen == 0 || nameLen > MaxAppNameLen {
		return "", 0, nil, fmt.Errorf("service: bad app name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return "", 0, nil, err
	}
	micros, err := readUint32(r)
	if err != nil {
		return "", 0, nil, err
	}
	in, err = readFloats(r)
	if err != nil {
		return "", 0, nil, err
	}
	return string(name), time.Duration(micros) * time.Microsecond, in, nil
}

// writeResponse frames one inference response.
func writeResponse(w io.Writer, status byte, msg string, out []float32) error {
	if err := writeUint32(w, respMagic); err != nil {
		return err
	}
	if _, err := w.Write([]byte{status}); err != nil {
		return err
	}
	if len(msg) > 1<<16-1 {
		msg = msg[:1<<16-1]
	}
	var ml [2]byte
	binary.LittleEndian.PutUint16(ml[:], uint16(len(msg)))
	if _, err := w.Write(ml[:]); err != nil {
		return err
	}
	if _, err := io.WriteString(w, msg); err != nil {
		return err
	}
	return writeFloats(w, out)
}

// readResponse parses one inference response.
func readResponse(r io.Reader) (status byte, msg string, out []float32, err error) {
	magic, err := readUint32(r)
	if err != nil {
		return 0, "", nil, err
	}
	if magic != respMagic {
		return 0, "", nil, fmt.Errorf("service: bad response magic %#x", magic)
	}
	var sb [1]byte
	if _, err := io.ReadFull(r, sb[:]); err != nil {
		return 0, "", nil, err
	}
	var ml [2]byte
	if _, err := io.ReadFull(r, ml[:]); err != nil {
		return 0, "", nil, err
	}
	msgBytes := make([]byte, binary.LittleEndian.Uint16(ml[:]))
	if _, err := io.ReadFull(r, msgBytes); err != nil {
		return 0, "", nil, err
	}
	out, err = readFloats(r)
	if err != nil {
		return 0, "", nil, err
	}
	return sb[0], string(msgBytes), out, nil
}

// writeControl frames one control command (a short text command such as
// "apps" or "stats <app>"). The response reuses the standard response
// frame with the answer in its message field.
func writeControl(w io.Writer, cmd string) error {
	if len(cmd) == 0 || len(cmd) > 1024 {
		return fmt.Errorf("service: bad control command length %d", len(cmd))
	}
	if err := writeUint32(w, ctrlMagic); err != nil {
		return err
	}
	var nl [2]byte
	binary.LittleEndian.PutUint16(nl[:], uint16(len(cmd)))
	if _, err := w.Write(nl[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, cmd)
	return err
}

// readControlBody parses a control command after its magic.
func readControlBody(r io.Reader) (string, error) {
	var nl [2]byte
	if _, err := io.ReadFull(r, nl[:]); err != nil {
		return "", err
	}
	n := binary.LittleEndian.Uint16(nl[:])
	if n == 0 || n > 1024 {
		return "", fmt.Errorf("service: bad control command length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
