package service

import (
	"sync"
	"testing"
	"time"
)

// TestAblationFlushPolicy: the batching aggregator's size+timeout flush
// (DESIGN.md §5). With a size-only policy (simulated by an effectively
// infinite window), a lone query would wait forever; the timeout bounds
// its latency. Conversely, under a concurrent burst the window should
// not prevent full batches from forming.
func TestAblationFlushPolicy(t *testing.T) {
	const window = 5 * time.Millisecond

	// A lone query completes in roughly one window, not one eternity.
	s := NewServer()
	s.SetLogger(silence)
	defer s.Close()
	if err := s.Register("tiny", testNet(1), AppConfig{
		BatchInstances: 1 << 20, // size threshold never reached
		BatchWindow:    window,
		Workers:        1,
	}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := s.Infer("tiny", make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
	lone := time.Since(start)
	if lone > 50*window {
		t.Fatalf("lone query took %v; timeout flush is not bounding latency", lone)
	}

	// A burst of queries still fills batches rather than flushing each
	// query alone.
	s2 := NewServer()
	s2.SetLogger(silence)
	defer s2.Close()
	if err := s2.Register("tiny", testNet(1), AppConfig{
		BatchInstances: 8,
		BatchWindow:    window,
		Workers:        1,
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s2.Infer("tiny", make([]float32, 8))
		}()
	}
	wg.Wait()
	st, _ := s2.StatsFor("tiny")
	if st.AvgBatch() < 2 {
		t.Fatalf("burst average batch %.1f; aggregation is not happening", st.AvgBatch())
	}
}

// BenchmarkFlushWindow measures single-query service latency across
// batch-window settings — the latency cost of waiting for batches that
// never fill.
func BenchmarkFlushWindow(b *testing.B) {
	for _, window := range []time.Duration{time.Millisecond, 4 * time.Millisecond} {
		b.Run(window.String(), func(b *testing.B) {
			s := NewServer()
			s.SetLogger(silence)
			defer s.Close()
			if err := s.Register("tiny", testNet(1), AppConfig{
				BatchInstances: 1 << 20,
				BatchWindow:    window,
				Workers:        1,
			}); err != nil {
				b.Fatal(err)
			}
			payload := make([]float32, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Infer("tiny", payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
