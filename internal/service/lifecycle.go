package service

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Sentinel errors for the request lifecycle. Both the in-process path
// and the TCP client surface these (the wire carries them as dedicated
// status codes), so callers can distinguish an expired deadline, a
// draining server, and shed load from genuine failures with errors.Is.
var (
	// ErrDeadlineExceeded reports that a query's context expired before
	// the service produced its result.
	ErrDeadlineExceeded = errors.New("service: deadline exceeded")
	// ErrShuttingDown reports that the server is draining and no longer
	// accepts queries.
	ErrShuttingDown = errors.New("service: server shutting down")
	// ErrOverloaded reports that the query was shed because the
	// application's pending queue was full.
	ErrOverloaded = errors.New("service: overloaded")
	// ErrTransport reports that the connection to the server failed
	// (dial error, broken or desynced stream) rather than the server
	// answering an error status. The query may never have reached the
	// server, or its answer may have been lost in flight.
	ErrTransport = errors.New("service: transport failure")
)

// Retryable reports whether a failed query may safely be reissued on
// another replica: the backend shed it (ErrOverloaded), is draining
// (ErrShuttingDown), or the transport broke (ErrTransport). Inference
// is idempotent, so retrying a query whose answer was lost in flight
// is safe. Deadline expiry is terminal — the budget belongs to the
// query, not the backend — and server-answered application errors
// (unknown app, malformed payload) are deterministic, so retrying
// them elsewhere would only repeat the failure.
func Retryable(err error) bool {
	return errors.Is(err, ErrOverloaded) ||
		errors.Is(err, ErrShuttingDown) ||
		errors.Is(err, ErrTransport)
}

// statusFor maps a dispatch error onto its wire status code.
func statusFor(err error) byte {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, ErrDeadlineExceeded):
		return StatusDeadline
	case errors.Is(err, ErrShuttingDown):
		return StatusShutdown
	case errors.Is(err, ErrOverloaded):
		return StatusOverload
	}
	return StatusError
}

// errorFor reconstructs the sentinel-wrapped error for a non-OK wire
// status on the client side.
func errorFor(status byte, msg string) error {
	switch status {
	case StatusDeadline:
		return fmt.Errorf("%w: %s", ErrDeadlineExceeded, msg)
	case StatusShutdown:
		return fmt.Errorf("%w: %s", ErrShuttingDown, msg)
	case StatusOverload:
		return fmt.Errorf("%w: %s", ErrOverloaded, msg)
	}
	return fmt.Errorf("service: server error: %s", msg)
}

// request is the first-class request object threaded through the whole
// serving path: the caller's context, the query payload, and the
// timestamps that delimit each lifecycle stage (enqueue → dequeue by
// the aggregator → batch flush → forward pass → response).
type request struct {
	ctx       context.Context
	in        []float32
	instances int
	traceID   string // non-empty when the query carries a trace ID

	enqueued time.Time // dispatch put it on the app queue
	dequeued time.Time // aggregator picked it up
	flushed  time.Time // its batch was handed to a worker

	resp      chan result
	responded atomic.Bool
}

type result struct {
	out []float32
	err error
}

// respond delivers the request's single response. Exactly one delivery
// wins: the worker's result, the aggregator's expiry/drain error, or
// the dispatcher abandoning the wait — every other caller sees false
// and must not touch the request further. This is the invariant that
// makes dispatch hang-proof.
func (r *request) respond(res result) bool {
	if !r.responded.CompareAndSwap(false, true) {
		return false
	}
	r.resp <- res
	return true
}

// expired reports whether the request's context has been cancelled.
func (r *request) expired() bool {
	return r.ctx != nil && r.ctx.Err() != nil
}
