// Package testutil holds shared test helpers for the serving-path
// packages. It must only be imported from _test files.
package testutil

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// NoLeaks snapshots the goroutines alive when called and registers a
// cleanup that fails the test if new goroutines are still running at
// test end. Server Close/drain regressions — an aggregator that never
// exits, a worker stuck on a batch channel, a pool connection left
// reading — fail loudly instead of silently accumulating across the
// test binary.
//
// Call it first in the test, before starting servers or routers:
//
//	func TestX(t *testing.T) {
//		testutil.NoLeaks(t)
//		...
//	}
//
// The check retries for up to two seconds, because goroutines finish
// asynchronously after Close returns (connection handlers observing
// EOF, timers firing); only goroutines that persist past the grace
// window are leaks.
func NoLeaks(t testing.TB) {
	t.Helper()
	before := goroutineStacks()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d goroutine(s) outlived the test:\n%s",
			len(leaked), strings.Join(leaked, "\n"))
	})
}

// goroutineStacks returns the stack dump of every live goroutine,
// keyed by goroutine ID.
func goroutineStacks() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	stacks := map[string]string{}
	for _, g := range strings.Split(string(buf), "\n\n") {
		if id := goroutineID(g); id != "" {
			stacks[id] = g
		}
	}
	return stacks
}

// goroutineID extracts the "goroutine N" key from one stack block.
func goroutineID(stack string) string {
	var id int
	var state string
	if _, err := fmt.Sscanf(stack, "goroutine %d [%s", &id, &state); err != nil {
		return ""
	}
	return fmt.Sprintf("goroutine %d", id)
}

// leakedSince diffs the current goroutine set against a snapshot,
// ignoring goroutines that belong to the test harness itself.
func leakedSince(before map[string]string) []string {
	var leaked []string
	for id, stack := range goroutineStacks() {
		if _, ok := before[id]; ok {
			continue
		}
		if isHarness(stack) {
			continue
		}
		leaked = append(leaked, stack)
	}
	return leaked
}

// isHarness reports whether a goroutine belongs to the testing
// machinery rather than the code under test: the testing package's own
// runners and timers, and this package's cleanup goroutine.
func isHarness(stack string) bool {
	for _, marker := range []string{
		"testing.tRunner",
		"testing.(*T).Run",
		"testing.(*M).",
		"testing.runTests",
		"testing.runFuzzing",
		"runtime/pprof.",
		"djinn/internal/testutil.",
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}
