package lang

import (
	"math"
	"strings"

	"djinn/internal/models"
	"djinn/internal/tensor"
)

// POSTags is the 45-tag Penn Treebank set used by the POS application.
var POSTags = []string{
	"CC", "CD", "DT", "EX", "FW", "IN", "JJ", "JJR", "JJS", "LS",
	"MD", "NN", "NNS", "NNP", "NNPS", "PDT", "POS", "PRP", "PRP$",
	"RB", "RBR", "RBS", "RP", "SYM", "TO", "UH", "VB", "VBD", "VBG",
	"VBN", "VBP", "VBZ", "WDT", "WP", "WP$", "WRB", "#", "$", ".",
	",", ":", "(", ")", "``", "''",
}

// CHKTags is the 23-tag IOB2 chunk set used by the CHK application.
var CHKTags = []string{
	"O",
	"B-NP", "I-NP", "B-VP", "I-VP", "B-PP", "I-PP",
	"B-ADVP", "I-ADVP", "B-ADJP", "I-ADJP", "B-SBAR", "I-SBAR",
	"B-PRT", "I-PRT", "B-CONJP", "I-CONJP", "B-INTJ", "I-INTJ",
	"B-LST", "I-LST", "B-UCP", "I-UCP",
}

// NERTags is the 9-tag IOB2 named-entity set used by the NER
// application.
var NERTags = []string{
	"O",
	"B-PER", "I-PER", "B-LOC", "I-LOC", "B-ORG", "I-ORG",
	"B-MISC", "I-MISC",
}

// TagSet returns the tag list for an NLP application.
func TagSet(app models.App) []string {
	switch app {
	case models.POS:
		return POSTags
	case models.CHK:
		return CHKTags
	case models.NER:
		return NERTags
	}
	panic("lang: not an NLP application")
}

// Transitions returns the log-transition matrix [from+1][to] used by
// sentence-level Viterbi decoding; row 0 is the start state. For IOB
// tag sets, invalid transitions (I-X not preceded by B-X or I-X) get
// -Inf, which is a hard structural constraint SENNA also enforces; the
// remaining scores substitute the trained transition parameters with a
// deterministic prior.
func Transitions(tags []string) [][]float32 {
	n := len(tags)
	rng := tensor.NewRNG(hashString("trans:" + strings.Join(tags, ",")))
	m := make([][]float32, n+1)
	for from := 0; from <= n; from++ {
		row := make([]float32, n)
		for to := 0; to < n; to++ {
			row[to] = rng.Float32() * 0.1
			toTag := tags[to]
			if strings.HasPrefix(toTag, "I-") {
				kind := toTag[2:]
				ok := false
				if from > 0 {
					fromTag := tags[from-1]
					ok = fromTag == "B-"+kind || fromTag == "I-"+kind
				}
				if !ok {
					row[to] = float32(math.Inf(-1))
				}
			}
		}
		m[from] = row
	}
	return m
}

// Viterbi returns the most likely tag sequence given per-word
// log-posteriors emit[word][tag] and the transition matrix from
// Transitions (trans[0] holds start scores).
func Viterbi(emit [][]float32, trans [][]float32) []int {
	n := len(emit)
	if n == 0 {
		return nil
	}
	k := len(emit[0])
	negInf := float32(math.Inf(-1))
	score := make([]float32, k)
	back := make([][]int, n)
	for t := 0; t < k; t++ {
		score[t] = trans[0][t] + emit[0][t]
	}
	for i := 1; i < n; i++ {
		back[i] = make([]int, k)
		next := make([]float32, k)
		for t := 0; t < k; t++ {
			best, bi := negInf, 0
			for pt := 0; pt < k; pt++ {
				s := score[pt] + trans[pt+1][t]
				if s > best {
					best, bi = s, pt
				}
			}
			next[t] = best + emit[i][t]
			back[i][t] = bi
		}
		score = next
	}
	best, bi := negInf, 0
	for t := 0; t < k; t++ {
		if score[t] > best {
			best, bi = score[t], t
		}
	}
	path := make([]int, n)
	path[n-1] = bi
	for i := n - 1; i > 0; i-- {
		path[i-1] = back[i][path[i]]
	}
	return path
}

// ViterbiBruteForce exhaustively searches all tag sequences; usable
// only for tiny inputs, it is the reference for property tests.
func ViterbiBruteForce(emit [][]float32, trans [][]float32) []int {
	n := len(emit)
	if n == 0 {
		return nil
	}
	k := len(emit[0])
	best := float32(math.Inf(-1))
	var bestPath []int
	path := make([]int, n)
	var rec func(i int, score float32)
	rec = func(i int, score float32) {
		if i == n {
			if score > best {
				best = score
				bestPath = append([]int(nil), path...)
			}
			return
		}
		for t := 0; t < k; t++ {
			prev := 0
			if i > 0 {
				prev = path[i-1] + 1
			}
			s := score + trans[prev][t] + emit[i][t]
			if math.IsInf(float64(s), -1) {
				continue
			}
			path[i] = t
			rec(i+1, s)
		}
	}
	rec(0, 0)
	return bestPath
}

// gazetteer is a small built-in name list standing in for SENNA's
// gazetteer files: person, location, organisation, misc.
var gazetteer = map[string]int{
	"john": 0, "mary": 0, "barack": 0, "obama": 0, "einstein": 0,
	"alice": 0, "bob": 0,
	"paris": 1, "london": 1, "michigan": 1, "portland": 1, "america": 1,
	"france": 1, "berlin": 1, "detroit": 1,
	"google": 2, "apple": 2, "microsoft": 2, "facebook": 2, "amazon": 2,
	"nvidia": 2, "intel": 2, "nec": 2,
	"siri": 3, "android": 3, "imagenet": 3, "wikipedia": 3,
}

// GazetteerFeatures returns the 4 per-word gazetteer membership flags
// (person/location/organisation/misc) NER consumes.
func GazetteerFeatures(words []string) [][]float32 {
	out := make([][]float32, len(words))
	for i, w := range words {
		f := make([]float32, models.SennaNERExtra)
		if class, ok := gazetteer[strings.ToLower(w)]; ok {
			f[class] = 1
		}
		out[i] = f
	}
	return out
}

// POSTagFeatures returns a 5-d embedding of each word's POS tag, the
// extra input feature CHK consumes after its internal POS request.
func POSTagFeatures(tagIdx []int) [][]float32 {
	out := make([][]float32, len(tagIdx))
	for i, t := range tagIdx {
		f := make([]float32, models.SennaCHKExtra)
		rng := tensor.NewRNG(hashString("postag:" + POSTags[t]))
		for j := range f {
			f[j] = rng.Float32()*2 - 1
		}
		out[i] = f
	}
	return out
}
