package lang

import (
	"math"
	"testing"
	"testing/quick"

	"djinn/internal/models"
	"djinn/internal/nn"
	"djinn/internal/tensor"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, world!", []string{"Hello", ",", "world", "!"}},
		{"the   quick brown fox", []string{"the", "quick", "brown", "fox"}},
		{"(well)", []string{"(", "well", ")"}},
		{"", nil},
		{"...", []string{".", ".", "."}},
		{"state-of-the-art systems", []string{"state-of-the-art", "systems"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestEmbedDeterministicAndCaseAware(t *testing.T) {
	a := make([]float32, WordDim)
	b := make([]float32, WordDim)
	Embed("Michigan", a)
	Embed("Michigan", b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding not deterministic")
		}
	}
	// Same word, different case: same 50-d embedding, different caps flags.
	c := make([]float32, WordDim)
	Embed("michigan", c)
	for i := 0; i < EmbedDim; i++ {
		if a[i] != c[i] {
			t.Fatal("embedding should be case-insensitive")
		}
	}
	if a[EmbedDim+1] != 1 || c[EmbedDim+1] != 0 {
		t.Fatal("first-upper caps flag wrong")
	}
	d := make([]float32, WordDim)
	Embed("IBM", d)
	if d[EmbedDim+2] != 1 {
		t.Fatal("all-upper flag wrong")
	}
	e := make([]float32, WordDim)
	Embed("B2B", e)
	if e[EmbedDim+3] != 1 {
		t.Fatal("digit flag wrong")
	}
}

func TestEmbedDistinctWordsDiffer(t *testing.T) {
	a := make([]float32, WordDim)
	b := make([]float32, WordDim)
	Embed("cat", a)
	Embed("dog", b)
	same := true
	for i := 0; i < EmbedDim; i++ {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different words should embed differently")
	}
}

func TestWordDimMatchesModels(t *testing.T) {
	if WordDim != models.SennaWordDim {
		t.Fatalf("WordDim %d != models.SennaWordDim %d", WordDim, models.SennaWordDim)
	}
}

func TestWindowsShapeAndPadding(t *testing.T) {
	words := []string{"the", "cat", "sat"}
	out := Windows(words, nil)
	per := WordDim
	win := models.SennaWindow
	if len(out) != 3*win*per {
		t.Fatalf("output %d floats, want %d", len(out), 3*win*per)
	}
	// First word's window: positions -2,-1 are zero padding.
	for i := 0; i < 2*per; i++ {
		if out[i] != 0 {
			t.Fatal("left padding not zero")
		}
	}
	// Centre of word 0 is "the"; left neighbour of word 1 is also "the".
	theFeat := make([]float32, per)
	Embed("the", theFeat)
	w0centre := out[2*per : 3*per]
	w1left := out[win*per+1*per : win*per+2*per]
	for i := range theFeat {
		if w0centre[i] != theFeat[i] || w1left[i] != theFeat[i] {
			t.Fatal("window assembly misplaced features")
		}
	}
}

func TestWindowsWithExtraFeatures(t *testing.T) {
	words := []string{"a", "b"}
	extra := [][]float32{{1, 2, 3, 4}, {5, 6, 7, 8}}
	out := Windows(words, extra)
	per := WordDim + 4
	if len(out) != 2*models.SennaWindow*per {
		t.Fatalf("unexpected length %d", len(out))
	}
	// Word 0's centre slot carries extra {1,2,3,4}.
	centre := out[2*per+WordDim : 3*per]
	if centre[0] != 1 || centre[3] != 4 {
		t.Fatalf("extra features misplaced: %v", centre)
	}
}

func TestTagSetSizesMatchModels(t *testing.T) {
	if len(POSTags) != models.POSTags {
		t.Fatalf("%d POS tags, want %d", len(POSTags), models.POSTags)
	}
	if len(CHKTags) != models.CHKTags {
		t.Fatalf("%d CHK tags, want %d", len(CHKTags), models.CHKTags)
	}
	if len(NERTags) != models.NERTags {
		t.Fatalf("%d NER tags, want %d", len(NERTags), models.NERTags)
	}
}

func TestTransitionsForbidIllegalIOB(t *testing.T) {
	trans := Transitions(NERTags)
	idx := func(tag string) int {
		for i, s := range NERTags {
			if s == tag {
				return i
			}
		}
		t.Fatalf("missing tag %s", tag)
		return -1
	}
	// start → I-PER is illegal.
	if !math.IsInf(float64(trans[0][idx("I-PER")]), -1) {
		t.Fatal("start→I-PER should be forbidden")
	}
	// O → I-LOC illegal; B-LOC → I-LOC legal; I-LOC → I-LOC legal.
	if !math.IsInf(float64(trans[idx("O")+1][idx("I-LOC")]), -1) {
		t.Fatal("O→I-LOC should be forbidden")
	}
	if math.IsInf(float64(trans[idx("B-LOC")+1][idx("I-LOC")]), -1) {
		t.Fatal("B-LOC→I-LOC should be allowed")
	}
	if math.IsInf(float64(trans[idx("I-LOC")+1][idx("I-LOC")]), -1) {
		t.Fatal("I-LOC→I-LOC should be allowed")
	}
	// B-PER → I-LOC illegal (kind mismatch).
	if !math.IsInf(float64(trans[idx("B-PER")+1][idx("I-LOC")]), -1) {
		t.Fatal("B-PER→I-LOC should be forbidden")
	}
}

func TestViterbiMatchesBruteForce(t *testing.T) {
	rng := tensor.NewRNG(7)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%5) + 1
		k := int(kRaw%4) + 2
		emit := make([][]float32, n)
		for i := range emit {
			emit[i] = make([]float32, k)
			rng.FillUniform(emit[i], -2, 0)
		}
		trans := make([][]float32, k+1)
		for i := range trans {
			trans[i] = make([]float32, k)
			rng.FillUniform(trans[i], -1, 0)
		}
		got := Viterbi(emit, trans)
		want := ViterbiBruteForce(emit, trans)
		if len(got) != len(want) {
			return false
		}
		// Scores must match (paths can tie).
		score := func(path []int) float32 {
			var s float32
			prev := 0
			for i, t := range path {
				s += trans[prev][t] + emit[i][t]
				prev = t + 1
			}
			return s
		}
		return math.Abs(float64(score(got)-score(want))) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestViterbiRespectsConstraints(t *testing.T) {
	// Even when emissions scream I-PER at position 0, the decoder must
	// not start a sequence with I-PER.
	trans := Transitions(NERTags)
	emit := make([][]float32, 2)
	for i := range emit {
		emit[i] = make([]float32, len(NERTags))
		for j := range emit[i] {
			emit[i][j] = -10
		}
		emit[i][2] = 0 // I-PER
	}
	path := Viterbi(emit, trans)
	if NERTags[path[0]] == "I-PER" {
		t.Fatal("decoder produced an illegal IOB start")
	}
	// But B-PER followed by I-PER is reachable and should win here.
	emit[0][1] = -0.5 // B-PER
	path = Viterbi(emit, trans)
	if NERTags[path[0]] != "B-PER" || NERTags[path[1]] != "I-PER" {
		t.Fatalf("expected B-PER I-PER, got %s %s", NERTags[path[0]], NERTags[path[1]])
	}
}

func TestGazetteerFeatures(t *testing.T) {
	f := GazetteerFeatures([]string{"Obama", "visited", "Paris", "with", "Google"})
	if f[0][0] != 1 || f[2][1] != 1 || f[4][2] != 1 {
		t.Fatalf("gazetteer flags wrong: %v", f)
	}
	if f[1][0] != 0 && f[1][1] != 0 && f[1][2] != 0 && f[1][3] != 0 {
		t.Fatal("non-entity word flagged")
	}
	if len(f[0]) != models.SennaNERExtra {
		t.Fatalf("gazetteer width %d, want %d", len(f[0]), models.SennaNERExtra)
	}
}

func TestPOSTagFeatures(t *testing.T) {
	f := POSTagFeatures([]int{0, 1, 0})
	if len(f) != 3 || len(f[0]) != models.SennaCHKExtra {
		t.Fatalf("bad shape")
	}
	for i := range f[0] {
		if f[0][i] != f[2][i] {
			t.Fatal("same tag must produce same features")
		}
	}
	same := true
	for i := range f[0] {
		if f[0][i] != f[1][i] {
			same = false
		}
	}
	if same {
		t.Fatal("different tags must produce different features")
	}
}

// TestTrainablePOSPipeline trains the SENNA POS network on a synthetic
// rule-based corpus (each vocabulary word has a fixed tag) through the
// real feature pipeline and checks it learns — the NLP counterpart of
// the digit-training example.
func TestTrainablePOSPipeline(t *testing.T) {
	vocab := map[string]int{} // word → tag index
	words := []string{"dog", "cat", "house", "river", "run", "jump", "see", "hold",
		"red", "small", "quick", "cold", "the", "a", "this", "that"}
	for i, w := range words {
		vocab[w] = i / 4 // four tag classes: noun, verb, adjective, determiner
	}
	const tags = 4
	rng := tensor.NewRNG(123)
	net := nn.NewNet("pos-mini", nn.KindDNN, models.SennaWindow*WordDim)
	net.Add(nn.NewFC("l1", rng, models.SennaWindow*WordDim, 64)).
		Add(nn.NewHardTanh("ht")).
		Add(nn.NewFC("l2", rng, 64, tags)).
		Add(nn.NewSoftmax("prob"))

	gen := func(n int) ([]string, []int) {
		sentence := make([]string, n)
		labels := make([]int, n)
		for i := range sentence {
			w := words[rng.Intn(len(words))]
			sentence[i] = w
			labels[i] = vocab[w]
		}
		return sentence, labels
	}

	runner := net.NewRunner(16)
	opt := nn.NewSGD(0.05, 0.9, 1e-4)
	for step := 0; step < 250; step++ {
		sentence, labels := gen(16)
		in := tensor.FromSlice(Windows(sentence, nil), 16, models.SennaWindow*WordDim)
		nn.TrainBatch(runner, opt, in, labels)
	}
	sentence, labels := gen(16)
	in := tensor.FromSlice(Windows(sentence, nil), 16, models.SennaWindow*WordDim)
	probs := runner.Forward(in)
	if acc := nn.Accuracy(probs, labels); acc < 0.85 {
		t.Fatalf("trained tag accuracy %.2f, want ≥ 0.85", acc)
	}
}
