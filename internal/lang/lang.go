// Package lang is the natural-language substrate behind the POS, CHK
// and NER applications (Section 3.2.3): tokenisation, SENNA-style
// per-word feature vectors (hashed 50-d embeddings plus capitalisation
// and suffix features), context-window assembly, the three tag sets,
// gazetteer features for NER, and sentence-level Viterbi decoding of
// the most likely tag sequence from the DNN's per-word posteriors.
package lang

import (
	"strings"
	"unicode"

	"djinn/internal/models"
	"djinn/internal/tensor"
)

// Feature layout per word: 50 embedding dims + 5 capitalisation flags
// + 5 suffix-hash dims = 60 = models.SennaWordDim.
const (
	EmbedDim  = 50
	CapsDim   = 5
	SuffixDim = 5
	WordDim   = EmbedDim + CapsDim + SuffixDim
)

// Tokenize splits text into words, separating trailing/leading
// punctuation into its own tokens (SENNA's tokenisation granularity).
func Tokenize(text string) []string {
	var out []string
	for _, field := range strings.Fields(text) {
		out = append(out, splitToken(field)...)
	}
	return out
}

func splitToken(tok string) []string {
	runes := []rune(tok)
	start, end := 0, len(runes)
	var lead, trail []string
	for start < end && isPunct(runes[start]) {
		lead = append(lead, string(runes[start]))
		start++
	}
	for end > start && isPunct(runes[end-1]) {
		trail = append([]string{string(runes[end-1])}, trail...)
		end--
	}
	var out []string
	out = append(out, lead...)
	if start < end {
		out = append(out, string(runes[start:end]))
	}
	out = append(out, trail...)
	return out
}

func isPunct(r rune) bool {
	return unicode.IsPunct(r) || unicode.IsSymbol(r)
}

// Embed writes the 60-d feature vector of one word into dst. The 50-d
// embedding is a deterministic hash projection (the pre-trained SENNA
// lookup table substituted per DESIGN.md); capitalisation and suffix
// features are computed exactly as SENNA does.
func Embed(word string, dst []float32) {
	if len(dst) < WordDim {
		panic("lang: Embed destination too small")
	}
	lower := strings.ToLower(word)
	rng := tensor.NewRNG(hashString(lower))
	for i := 0; i < EmbedDim; i++ {
		dst[i] = rng.Float32()*2 - 1
	}
	// Capitalisation features: all-lower, first-upper, all-upper,
	// contains-digit, contains-hyphen.
	caps := dst[EmbedDim : EmbedDim+CapsDim]
	for i := range caps {
		caps[i] = 0
	}
	if lower == word {
		caps[0] = 1
	}
	r := []rune(word)
	if len(r) > 0 && unicode.IsUpper(r[0]) {
		caps[1] = 1
	}
	if word != "" && strings.ToUpper(word) == word && strings.ContainsFunc(word, unicode.IsLetter) {
		caps[2] = 1
	}
	if strings.ContainsFunc(word, unicode.IsDigit) {
		caps[3] = 1
	}
	if strings.Contains(word, "-") {
		caps[4] = 1
	}
	// Suffix features: hash projection of the final 3 characters.
	suffix := lower
	if len(suffix) > 3 {
		suffix = suffix[len(suffix)-3:]
	}
	srng := tensor.NewRNG(hashString("sfx:" + suffix))
	for i := 0; i < SuffixDim; i++ {
		dst[EmbedDim+CapsDim+i] = srng.Float32()*2 - 1
	}
}

func hashString(s string) uint64 {
	// FNV-1a.
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// Windows assembles the SENNA window-approach input: for each word, the
// concatenated features of the surrounding window (±2), with zero
// padding beyond sentence boundaries. extraPerWord, when non-nil,
// supplies additional per-word features (POS-tag embeddings for CHK,
// gazetteer flags for NER) appended to each word's 60 dims.
func Windows(words []string, extraPerWord [][]float32) []float32 {
	extra := 0
	if len(extraPerWord) > 0 {
		extra = len(extraPerWord[0])
	}
	per := WordDim + extra
	window := models.SennaWindow
	half := window / 2
	n := len(words)
	// Precompute per-word features.
	feats := make([][]float32, n)
	for i, w := range words {
		f := make([]float32, per)
		Embed(w, f)
		if extra > 0 {
			copy(f[WordDim:], extraPerWord[i])
		}
		feats[i] = f
	}
	out := make([]float32, n*window*per)
	for i := 0; i < n; i++ {
		row := out[i*window*per : (i+1)*window*per]
		for c := -half; c <= half; c++ {
			j := i + c
			dst := row[(c+half)*per : (c+half+1)*per]
			if j >= 0 && j < n {
				copy(dst, feats[j])
			}
		}
	}
	return out
}
