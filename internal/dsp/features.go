package dsp

import "math"

// Feature-extraction configuration for the Kaldi-style front end.
const (
	// SampleRate is the audio sample rate the pipeline expects.
	SampleRate = 16000
	// FrameLength and FrameShift are the standard 25 ms / 10 ms frames.
	FrameLength = 400 // samples
	FrameShift  = 160 // samples
	// NFFT is the FFT size for the power spectrum.
	NFFT = 512
	// NumMel is the mel filterbank size.
	NumMel = 40
	// BaseDim is mel energies + log-energy + pitch.
	BaseDim = NumMel + 2 // 42
	// DeltaDim is statics + Δ + ΔΔ.
	DeltaDim = BaseDim * 3 // 126
	// ContextFrames is the ±8 frame splicing window.
	ContextFrames = 17
	// UtteranceStats is the per-utterance normalisation scalar count
	// appended to every frame.
	UtteranceStats = 4
	// FeatureDim is the final spliced dimension: 126·17 + 4 = 2146,
	// matching Table 3's 4594 KB for 548 frames.
	FeatureDim = DeltaDim*ContextFrames + UtteranceStats
)

func hzToMel(hz float64) float64  { return 1127 * math.Log(1+hz/700) }
func melToHz(mel float64) float64 { return 700 * (math.Exp(mel/1127) - 1) }

// MelFilterbank returns NumMel triangular filters over nfft/2+1 power
// spectrum bins for the given sample rate.
func MelFilterbank(nfft int, sampleRate float64) [][]float64 {
	bins := nfft/2 + 1
	lowMel := hzToMel(20)
	highMel := hzToMel(sampleRate / 2)
	centers := make([]float64, NumMel+2)
	for i := range centers {
		mel := lowMel + (highMel-lowMel)*float64(i)/float64(NumMel+1)
		centers[i] = melToHz(mel) / sampleRate * float64(nfft)
	}
	filters := make([][]float64, NumMel)
	for m := 0; m < NumMel; m++ {
		f := make([]float64, bins)
		lo, mid, hi := centers[m], centers[m+1], centers[m+2]
		for b := 0; b < bins; b++ {
			x := float64(b)
			switch {
			case x > lo && x <= mid:
				f[b] = (x - lo) / (mid - lo)
			case x > mid && x < hi:
				f[b] = (hi - x) / (hi - mid)
			}
		}
		filters[m] = f
	}
	return filters
}

// Frames splits a signal into overlapping frames; the last partial
// frame is dropped, as in Kaldi.
func Frames(x []float64) [][]float64 {
	if len(x) < FrameLength {
		return nil
	}
	n := 1 + (len(x)-FrameLength)/FrameShift
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		f := make([]float64, FrameLength)
		copy(f, x[i*FrameShift:i*FrameShift+FrameLength])
		out[i] = f
	}
	return out
}

// estimatePitch returns a normalised autocorrelation-peak pitch proxy
// for one frame: the lag in [50, 400] samples (40-320 Hz) with the
// highest normalised autocorrelation.
func estimatePitch(frame []float64) float64 {
	var energy float64
	for _, v := range frame {
		energy += v * v
	}
	if energy == 0 {
		return 0
	}
	bestLag, bestCorr := 0, 0.0
	for lag := 50; lag <= 400 && lag < len(frame); lag += 2 {
		var c float64
		for i := lag; i < len(frame); i++ {
			c += frame[i] * frame[i-lag]
		}
		c /= energy
		if c > bestCorr {
			bestCorr, bestLag = c, lag
		}
	}
	if bestLag == 0 {
		return 0
	}
	return SampleRate / float64(bestLag) / 320.0 // normalised to ~[0,1]
}

// Extractor computes spliced acoustic features; construct once and
// reuse (it holds the filterbank and window).
type Extractor struct {
	window  []float64
	filters [][]float64
}

// NewExtractor builds the front end.
func NewExtractor() *Extractor {
	return &Extractor{
		window:  Hamming(FrameLength),
		filters: MelFilterbank(NFFT, SampleRate),
	}
}

// baseFeatures computes the 42-dim static features for every frame.
func (e *Extractor) baseFeatures(signal []float64) [][]float64 {
	sig := make([]float64, len(signal))
	copy(sig, signal)
	PreEmphasis(sig, 0.97)
	frames := Frames(sig)
	out := make([][]float64, len(frames))
	for i, frame := range frames {
		var energy float64
		for j := range frame {
			energy += frame[j] * frame[j]
			frame[j] *= e.window[j]
		}
		spec := PowerSpectrum(frame, NFFT)
		feat := make([]float64, BaseDim)
		for m, filt := range e.filters {
			var s float64
			for b, w := range filt {
				if w != 0 {
					s += w * spec[b]
				}
			}
			feat[m] = math.Log(s + 1e-10)
		}
		feat[NumMel] = math.Log(energy + 1e-10)
		feat[NumMel+1] = estimatePitch(frame)
		out[i] = feat
	}
	return out
}

// addDeltas appends Δ and ΔΔ (2-frame regression) to each frame.
func addDeltas(feats [][]float64) [][]float64 {
	n := len(feats)
	dim := len(feats[0])
	at := func(i int) []float64 {
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return feats[i]
	}
	deltas := make([][]float64, n)
	for i := 0; i < n; i++ {
		d := make([]float64, dim)
		for j := 0; j < dim; j++ {
			d[j] = (at(i + 1)[j] - at(i - 1)[j] + 2*(at(i + 2)[j]-at(i - 2)[j])) / 10
		}
		deltas[i] = d
	}
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, 0, dim*3)
		row = append(row, feats[i]...)
		row = append(row, deltas[i]...)
		// ΔΔ from the deltas, same regression.
		dd := make([]float64, dim)
		atD := func(k int) []float64 {
			if k < 0 {
				k = 0
			}
			if k >= n {
				k = n - 1
			}
			return deltas[k]
		}
		for j := 0; j < dim; j++ {
			dd[j] = (atD(i + 1)[j] - atD(i - 1)[j] + 2*(atD(i + 2)[j]-atD(i - 2)[j])) / 10
		}
		row = append(row, dd...)
		out[i] = row
	}
	return out
}

// Features computes the full spliced feature matrix for a 16 kHz
// signal: one FeatureDim (2146) float32 vector per 10 ms frame, exactly
// what the DjiNN ASR service consumes.
func (e *Extractor) Features(signal []float64) [][]float32 {
	base := e.baseFeatures(signal)
	if len(base) == 0 {
		return nil
	}
	full := addDeltas(base)
	n := len(full)
	// Utterance-level stats: mean/std of log-energy and mean/std of
	// pitch, appended to every frame.
	var meanE, meanP, sqE, sqP float64
	for _, f := range base {
		meanE += f[NumMel]
		meanP += f[NumMel+1]
		sqE += f[NumMel] * f[NumMel]
		sqP += f[NumMel+1] * f[NumMel+1]
	}
	meanE /= float64(n)
	meanP /= float64(n)
	stdE := math.Sqrt(math.Max(0, sqE/float64(n)-meanE*meanE))
	stdP := math.Sqrt(math.Max(0, sqP/float64(n)-meanP*meanP))

	half := ContextFrames / 2
	out := make([][]float32, n)
	for i := 0; i < n; i++ {
		row := make([]float32, 0, FeatureDim)
		for c := -half; c <= half; c++ {
			j := i + c
			if j < 0 {
				j = 0
			}
			if j >= n {
				j = n - 1
			}
			for _, v := range full[j] {
				row = append(row, float32(v))
			}
		}
		row = append(row, float32(meanE), float32(stdE), float32(meanP), float32(stdP))
		out[i] = row
	}
	return out
}
