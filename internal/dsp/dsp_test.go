package dsp

import (
	"math"
	"testing"
	"testing/quick"

	"djinn/internal/models"
	"djinn/internal/tensor"
)

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := tensor.NewRNG(1)
	for _, n := range []int{2, 4, 8, 32, 128} {
		re := make([]float64, n)
		im := make([]float64, n)
		for i := range re {
			re[i] = rng.Float64()*2 - 1
			im[i] = rng.Float64()*2 - 1
		}
		wantRe, wantIm := DFTNaive(re, im)
		FFT(re, im)
		for i := range re {
			if math.Abs(re[i]-wantRe[i]) > 1e-8 || math.Abs(im[i]-wantIm[i]) > 1e-8 {
				t.Fatalf("n=%d bin %d: (%v,%v) want (%v,%v)", n, i, re[i], im[i], wantRe[i], wantIm[i])
			}
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(2)
	f := func(seed uint8) bool {
		n := 64
		re := make([]float64, n)
		im := make([]float64, n)
		orig := make([]float64, n)
		for i := range re {
			re[i] = rng.Float64()*2 - 1
			orig[i] = re[i]
		}
		FFT(re, im)
		IFFT(re, im)
		for i := range re {
			if math.Abs(re[i]-orig[i]) > 1e-9 || math.Abs(im[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	// Parseval: Σ|x|² = (1/N)Σ|X|².
	rng := tensor.NewRNG(3)
	n := 256
	re := make([]float64, n)
	im := make([]float64, n)
	var timeEnergy float64
	for i := range re {
		re[i] = rng.Float64()*2 - 1
		timeEnergy += re[i] * re[i]
	}
	FFT(re, im)
	var freqEnergy float64
	for i := range re {
		freqEnergy += re[i]*re[i] + im[i]*im[i]
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy) > 1e-6*timeEnergy {
		t.Fatalf("Parseval violated: %v vs %v", timeEnergy, freqEnergy)
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FFT(make([]float64, 12), make([]float64, 12))
}

func TestPowerSpectrumPureTone(t *testing.T) {
	// A pure sinusoid at bin k must concentrate power at bin k.
	n := 512
	k := 32
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(k) * float64(i) / float64(n))
	}
	spec := PowerSpectrum(x, n)
	best := 0
	for i := range spec {
		if spec[i] > spec[best] {
			best = i
		}
	}
	if best != k {
		t.Fatalf("peak at bin %d, want %d", best, k)
	}
}

func TestHammingWindowShape(t *testing.T) {
	w := Hamming(FrameLength)
	if len(w) != FrameLength {
		t.Fatal("wrong length")
	}
	mid := w[FrameLength/2]
	if mid < 0.99 || mid > 1.01 {
		t.Fatalf("centre %v, want ≈1", mid)
	}
	if w[0] < 0.07 || w[0] > 0.09 {
		t.Fatalf("edge %v, want ≈0.08", w[0])
	}
	// Symmetry.
	for i := 0; i < FrameLength/2; i++ {
		if math.Abs(w[i]-w[FrameLength-1-i]) > 1e-12 {
			t.Fatal("window not symmetric")
		}
	}
}

func TestMelFilterbankCoversSpectrum(t *testing.T) {
	filters := MelFilterbank(NFFT, SampleRate)
	if len(filters) != NumMel {
		t.Fatalf("%d filters, want %d", len(filters), NumMel)
	}
	// Every filter has positive mass; adjacent filters overlap.
	for m, f := range filters {
		var mass float64
		for _, v := range f {
			if v < 0 || v > 1 {
				t.Fatalf("filter %d has weight %v outside [0,1]", m, v)
			}
			mass += v
		}
		if mass <= 0 {
			t.Fatalf("filter %d is empty", m)
		}
	}
}

func TestFramesCountAndOverlap(t *testing.T) {
	sig := make([]float64, FrameLength+3*FrameShift)
	for i := range sig {
		sig[i] = float64(i)
	}
	frames := Frames(sig)
	if len(frames) != 4 {
		t.Fatalf("%d frames, want 4", len(frames))
	}
	if frames[1][0] != float64(FrameShift) {
		t.Fatalf("frame 1 starts at %v, want %v", frames[1][0], FrameShift)
	}
	if Frames(make([]float64, FrameLength-1)) != nil {
		t.Fatal("short signal should produce no frames")
	}
}

func TestFeatureDimMatchesModelAndTable3(t *testing.T) {
	if FeatureDim != models.ASRFeatureDim {
		t.Fatalf("FeatureDim %d != models.ASRFeatureDim %d", FeatureDim, models.ASRFeatureDim)
	}
	// 548 frames at 4 bytes per float must equal Table 3's 4594 KB.
	kb := float64(548*FeatureDim*4) / 1024
	if math.Abs(kb-4594) > 1 {
		t.Fatalf("548 frames = %.1f KB, Table 3 says 4594", kb)
	}
}

func TestFeaturesShapeAndFiniteness(t *testing.T) {
	ex := NewExtractor()
	// 1 second of synthetic speech-ish signal.
	sig := make([]float64, SampleRate)
	for i := range sig {
		ti := float64(i) / SampleRate
		sig[i] = 0.5*math.Sin(2*math.Pi*140*ti) + 0.2*math.Sin(2*math.Pi*2400*ti)
	}
	feats := ex.Features(sig)
	wantFrames := 1 + (SampleRate-FrameLength)/FrameShift
	if len(feats) != wantFrames {
		t.Fatalf("%d frames, want %d", len(feats), wantFrames)
	}
	for i, f := range feats {
		if len(f) != FeatureDim {
			t.Fatalf("frame %d has %d dims, want %d", i, len(f), FeatureDim)
		}
		for j, v := range f {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("frame %d dim %d is %v", i, j, v)
			}
		}
	}
}

func TestFeaturesDistinguishSilenceFromTone(t *testing.T) {
	ex := NewExtractor()
	silence := make([]float64, SampleRate/2)
	tone := make([]float64, SampleRate/2)
	for i := range tone {
		tone[i] = math.Sin(2 * math.Pi * 300 * float64(i) / SampleRate)
	}
	fs := ex.Features(silence)
	ft := ex.Features(tone)
	// Log-energy (dim NumMel within the centre context frame) must be
	// much higher for the tone.
	centre := (ContextFrames / 2) * DeltaDim
	if ft[5][centre+NumMel] <= fs[5][centre+NumMel]+1 {
		t.Fatalf("tone log-energy %v not above silence %v", ft[5][centre+NumMel], fs[5][centre+NumMel])
	}
}

func TestPitchDetectsF0(t *testing.T) {
	frame := make([]float64, FrameLength)
	for i := range frame {
		frame[i] = math.Sin(2 * math.Pi * 160 * float64(i) / SampleRate)
	}
	p := estimatePitch(frame)
	// 160 Hz normalised by 320 → 0.5, tolerating lag quantisation.
	if p < 0.4 || p > 0.6 {
		t.Fatalf("pitch proxy %v, want ≈0.5", p)
	}
	if estimatePitch(make([]float64, FrameLength)) != 0 {
		t.Fatal("silence should have zero pitch")
	}
}

func BenchmarkFeatureExtraction1s(b *testing.B) {
	ex := NewExtractor()
	sig := make([]float64, SampleRate)
	for i := range sig {
		sig[i] = math.Sin(2 * math.Pi * 200 * float64(i) / SampleRate)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Features(sig)
	}
}
