// Package dsp is the signal-processing substrate behind the ASR
// application's preprocessing (Section 3.2.2): framing, pre-emphasis,
// windowing, a radix-2 FFT, mel filterbank energies, pitch estimation,
// delta features and context splicing — producing exactly the
// 2146-dimensional per-frame feature vectors whose size Table 3
// reports (548 vectors, 4594 KB).
package dsp

import (
	"fmt"
	"math"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of the complex signal (re, im). Lengths must be equal and a
// power of two.
func FFT(re, im []float64) {
	n := len(re)
	if n != len(im) {
		panic("dsp: FFT length mismatch")
	}
	if n&(n-1) != 0 || n == 0 {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	// Butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wRe, wIm := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += length {
			curRe, curIm := 1.0, 0.0
			half := length / 2
			for k := 0; k < half; k++ {
				i, j := start+k, start+k+half
				tRe := re[j]*curRe - im[j]*curIm
				tIm := re[j]*curIm + im[j]*curRe
				re[j], im[j] = re[i]-tRe, im[i]-tIm
				re[i], im[i] = re[i]+tRe, im[i]+tIm
				curRe, curIm = curRe*wRe-curIm*wIm, curRe*wIm+curIm*wRe
			}
		}
	}
}

// IFFT computes the inverse FFT in place.
func IFFT(re, im []float64) {
	for i := range im {
		im[i] = -im[i]
	}
	FFT(re, im)
	n := float64(len(re))
	for i := range re {
		re[i] /= n
		im[i] /= -n
	}
}

// DFTNaive is the O(n²) reference used by property tests.
func DFTNaive(re, im []float64) ([]float64, []float64) {
	n := len(re)
	outRe := make([]float64, n)
	outIm := make([]float64, n)
	for k := 0; k < n; k++ {
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			c, s := math.Cos(ang), math.Sin(ang)
			outRe[k] += re[t]*c - im[t]*s
			outIm[k] += re[t]*s + im[t]*c
		}
	}
	return outRe, outIm
}

// PowerSpectrum returns |FFT(x)|² of a real signal zero-padded to
// nfft, keeping the nfft/2+1 non-redundant bins.
func PowerSpectrum(x []float64, nfft int) []float64 {
	re := make([]float64, nfft)
	im := make([]float64, nfft)
	copy(re, x)
	FFT(re, im)
	out := make([]float64, nfft/2+1)
	for i := range out {
		out[i] = re[i]*re[i] + im[i]*im[i]
	}
	return out
}

// Hamming returns an n-point Hamming window.
func Hamming(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// PreEmphasis applies y[t] = x[t] - alpha*x[t-1] in place (alpha is
// typically 0.97), boosting high frequencies before spectral analysis.
func PreEmphasis(x []float64, alpha float64) {
	for i := len(x) - 1; i > 0; i-- {
		x[i] -= alpha * x[i-1]
	}
}
