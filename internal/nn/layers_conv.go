package nn

import (
	"fmt"

	"djinn/internal/tensor"
)

// Conv is a 2-D convolution layer over NCHW inputs, implemented as
// im2col followed by GEMM per image, exactly the lowering Caffe uses on
// both CPU (ATLAS) and GPU (cuBLAS). Groups splits input and output
// channels into independent convolution groups (AlexNet uses groups=2
// for its conv2/4/5 layers).
type Conv struct {
	name             string
	InC, OutC        int
	KernelH, KernelW int
	StrideH, StrideW int
	PadH, PadW       int
	Groups           int
	Weight           *Param // [OutC, InC/Groups, KH, KW]
	Bias             *Param // [OutC]

	kern convKernelCache // lazily built quantized weight form
}

// ConvOpt configures optional convolution geometry.
type ConvOpt struct {
	Stride, Pad, Groups int
}

// NewConv creates a convolution layer with Xavier-initialised weights.
func NewConv(name string, rng *tensor.RNG, inC, outC, kernel int, opt ConvOpt) *Conv {
	if opt.Stride == 0 {
		opt.Stride = 1
	}
	if opt.Groups == 0 {
		opt.Groups = 1
	}
	if inC%opt.Groups != 0 || outC%opt.Groups != 0 {
		panic(fmt.Sprintf("nn: conv %s: channels (%d→%d) not divisible by groups %d", name, inC, outC, opt.Groups))
	}
	c := &Conv{
		name: name, InC: inC, OutC: outC,
		KernelH: kernel, KernelW: kernel,
		StrideH: opt.Stride, StrideW: opt.Stride,
		PadH: opt.Pad, PadW: opt.Pad,
		Groups: opt.Groups,
	}
	w := tensor.New(outC, inC/opt.Groups, kernel, kernel)
	fanIn := (inC / opt.Groups) * kernel * kernel
	fanOut := (outC / opt.Groups) * kernel * kernel
	rng.XavierFill(w.Data(), fanIn, fanOut)
	c.Weight = &Param{Name: name + ".weight", W: w}
	c.Bias = &Param{Name: name + ".bias", W: tensor.New(outC)}
	return c
}

// Name implements Layer.
func (c *Conv) Name() string { return c.name }

// Kind implements Layer.
func (c *Conv) Kind() string { return "conv" }

// Params implements Layer.
func (c *Conv) Params() []*Param { return []*Param{c.Weight, c.Bias} }

func (c *Conv) geom(in []int) tensor.ConvGeom {
	return tensor.ConvGeom{
		Channels: in[0], Height: in[1], Width: in[2],
		KernelH: c.KernelH, KernelW: c.KernelW,
		StrideH: c.StrideH, StrideW: c.StrideW,
		PadH: c.PadH, PadW: c.PadW,
	}
}

// OutShape implements Layer.
func (c *Conv) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, shapeErr(c.Kind(), c.name, in, "want [C,H,W]")
	}
	if in[0] != c.InC {
		return nil, shapeErr(c.Kind(), c.name, in, fmt.Sprintf("want %d input channels", c.InC))
	}
	g := c.geom(in)
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return nil, shapeErr(c.Kind(), c.name, in, "kernel larger than padded input")
	}
	return []int{c.OutC, g.OutH(), g.OutW()}, nil
}

// Forward implements Layer.
func (c *Conv) Forward(ctx *Ctx, in, out *tensor.Tensor) {
	c.forward(ctx, in, out, false)
}

// forwardReLU implements fusedBiasReLU: the same convolution with the
// following ReLU folded into the bias epilogue.
func (c *Conv) forwardReLU(ctx *Ctx, in, out *tensor.Tensor) {
	c.forward(ctx, in, out, true)
}

func (c *Conv) forward(ctx *Ctx, in, out *tensor.Tensor, fuseReLU bool) {
	batch := in.Dim(0)
	inShape := in.Shape()[1:]
	g := c.geom(inShape)
	outH, outW := g.OutH(), g.OutW()
	outSpatial := outH * outW
	gInC := c.InC / c.Groups
	gOutC := c.OutC / c.Groups
	kTaps := gInC * c.KernelH * c.KernelW
	groupGeom := g
	groupGeom.Channels = gInC
	col := ctx.scratch(kTaps * outSpatial)
	w := c.Weight.W.Data()
	inData, outData := in.Data(), out.Data()
	inPer, outPer := sampleElems(inShape), c.OutC*outSpatial
	for b := 0; b < batch; b++ {
		img := inData[b*inPer : (b+1)*inPer]
		dst := outData[b*outPer : (b+1)*outPer]
		for grp := 0; grp < c.Groups; grp++ {
			tensor.Im2col(groupGeom, img[grp*gInC*g.Height*g.Width:(grp+1)*gInC*g.Height*g.Width], col)
			// Filter matrix [gOutC, kTaps] × col [kTaps, outSpatial].
			tensor.GemmParallel(ctx.workers(), gOutC, outSpatial, kTaps, 1,
				w[grp*gOutC*kTaps:(grp+1)*gOutC*kTaps], col,
				0, dst[grp*gOutC*outSpatial:(grp+1)*gOutC*outSpatial])
		}
		if fuseReLU {
			tensor.AddBiasRowsReLU(c.OutC, outSpatial, dst, c.Bias.W.Data())
		} else {
			tensor.AddBiasRows(c.OutC, outSpatial, dst, c.Bias.W.Data())
		}
	}
}

// Backward implements BackLayer.
func (c *Conv) Backward(ctx *Ctx, in, out, dout, din *tensor.Tensor) {
	batch := in.Dim(0)
	inShape := in.Shape()[1:]
	g := c.geom(inShape)
	outH, outW := g.OutH(), g.OutW()
	outSpatial := outH * outW
	gInC := c.InC / c.Groups
	gOutC := c.OutC / c.Groups
	kTaps := gInC * c.KernelH * c.KernelW
	groupGeom := g
	groupGeom.Channels = gInC
	w := c.Weight.W.Data()
	gw := c.Weight.EnsureGrad().Data()
	gb := c.Bias.EnsureGrad().Data()
	inPer, outPer := sampleElems(inShape), c.OutC*outSpatial
	col := ctx.scratch(2 * kTaps * outSpatial)
	colFwd := col[:kTaps*outSpatial]
	colBack := col[kTaps*outSpatial:]
	din.Zero()
	for b := 0; b < batch; b++ {
		img := in.Data()[b*inPer : (b+1)*inPer]
		dImg := din.Data()[b*inPer : (b+1)*inPer]
		dOut := dout.Data()[b*outPer : (b+1)*outPer]
		// Bias gradient: sum over spatial positions per channel.
		for oc := 0; oc < c.OutC; oc++ {
			gb[oc] += tensor.Sum(dOut[oc*outSpatial : (oc+1)*outSpatial])
		}
		for grp := 0; grp < c.Groups; grp++ {
			imgG := img[grp*gInC*g.Height*g.Width : (grp+1)*gInC*g.Height*g.Width]
			dImgG := dImg[grp*gInC*g.Height*g.Width : (grp+1)*gInC*g.Height*g.Width]
			dOutG := dOut[grp*gOutC*outSpatial : (grp+1)*gOutC*outSpatial]
			wG := w[grp*gOutC*kTaps : (grp+1)*gOutC*kTaps]
			gwG := gw[grp*gOutC*kTaps : (grp+1)*gOutC*kTaps]
			// dW += dOut × col(x)^T  → use GemmNaive-style via transposed args:
			// dW [gOutC, kTaps] = dOutG [gOutC, outSpatial] × colFwd^T [outSpatial, kTaps].
			tensor.Im2col(groupGeom, imgG, colFwd)
			gemmABt(gOutC, kTaps, outSpatial, dOutG, colFwd, gwG)
			// dcol = W^T × dOut → [kTaps, outSpatial].
			gemmAtB(kTaps, outSpatial, gOutC, wG, dOutG, colBack)
			tensor.Col2im(groupGeom, colBack, dImgG)
		}
	}
}

// gemmABt computes C += A(m×k) * B(n×k)^T, i.e. C is m×n.
func gemmABt(m, n, k int, a, b, c []float32) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			crow[j] += tensor.Dot(arow, b[j*k:(j+1)*k])
		}
	}
}

// gemmAtB computes C = A(k×m)^T * B(k×n), i.e. C is m×n (overwrites C).
func gemmAtB(m, n, k int, a, b, c []float32) {
	for i := range c[:m*n] {
		c[i] = 0
	}
	for kk := 0; kk < k; kk++ {
		arow := a[kk*m : (kk+1)*m]
		brow := b[kk*n : (kk+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			crow := c[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
}

// Kernels implements Layer. The Caffe lowering launches an im2col
// kernel, a GEMM and a bias kernel per layer (batched across images).
func (c *Conv) Kernels(in []int, batch int, ks []Kernel) []Kernel {
	g := c.geom(in)
	outSpatial := g.OutH() * g.OutW()
	gInC := c.InC / c.Groups
	kTaps := gInC * c.KernelH * c.KernelW
	inBytes := float64(4 * sampleElems(in) * batch)
	colBytes := float64(4*kTaps*outSpatial*batch) * float64(c.Groups)
	outElems := c.OutC * outSpatial * batch
	weightBytes := float64(4 * c.Weight.W.Len())
	ks = append(ks, Kernel{
		Name:     c.name + ".im2col",
		FLOPs:    0,
		BytesIn:  inBytes,
		BytesOut: colBytes,
		Threads:  kTaps * outSpatial * batch * c.Groups,
		Calls:    batch * c.Groups,
	})
	gOutC := c.OutC / c.Groups
	ks = append(ks, Kernel{
		Name:      c.name + ".gemm",
		FLOPs:     2 * float64(kTaps) * float64(outSpatial) * float64(c.OutC) * float64(batch),
		BytesIn:   weightBytes + colBytes,
		BytesOut:  float64(4 * outElems),
		Threads:   c.Groups * GemmThreads(gOutC, outSpatial*batch),
		Calls:     batch * c.Groups,
		GemmM:     gOutC,
		GemmN:     outSpatial * batch,
		GemmCount: c.Groups,
	})
	ks = append(ks, Kernel{
		Name:     c.name + ".bias",
		FLOPs:    float64(outElems),
		BytesIn:  float64(4*outElems) + float64(4*c.OutC),
		BytesOut: float64(4 * outElems),
		Threads:  outElems,
	})
	return ks
}
