package nn

import (
	"math"

	"djinn/internal/tensor"
)

// Activation is an element-wise non-linearity layer. All Tonic networks
// use one of ReLU (AlexNet, LeNet, DeepFace), Sigmoid (the Kaldi
// acoustic model) or HardTanh (SENNA).
type Activation struct {
	name string
	kind string
	fn   func([]float32)
	// grad computes dx given the layer's input x, output y and dy.
	grad func(x, y, dy, dx []float32)
}

// NewReLU returns a rectified-linear activation layer.
func NewReLU(name string) *Activation {
	return &Activation{
		name: name, kind: "relu", fn: tensor.ReLU,
		grad: func(x, y, dy, dx []float32) { tensor.ReLUGrad(x, dy, dx) },
	}
}

// NewSigmoid returns a logistic activation layer.
func NewSigmoid(name string) *Activation {
	return &Activation{
		name: name, kind: "sigmoid", fn: tensor.Sigmoid,
		grad: func(x, y, dy, dx []float32) {
			for i := range y {
				dx[i] = dy[i] * y[i] * (1 - y[i])
			}
		},
	}
}

// NewTanh returns a tanh activation layer.
func NewTanh(name string) *Activation {
	return &Activation{
		name: name, kind: "tanh", fn: tensor.Tanh,
		grad: func(x, y, dy, dx []float32) {
			for i := range y {
				dx[i] = dy[i] * (1 - y[i]*y[i])
			}
		},
	}
}

// NewHardTanh returns SENNA's clamped-linear activation layer.
func NewHardTanh(name string) *Activation {
	return &Activation{
		name: name, kind: "hardtanh", fn: tensor.HardTanh,
		grad: func(x, y, dy, dx []float32) {
			for i := range x {
				if x[i] > -1 && x[i] < 1 {
					dx[i] = dy[i]
				} else {
					dx[i] = 0
				}
			}
		},
	}
}

// Name implements Layer.
func (a *Activation) Name() string { return a.name }

// Kind implements Layer.
func (a *Activation) Kind() string { return a.kind }

// Params implements Layer.
func (a *Activation) Params() []*Param { return nil }

// OutShape implements Layer.
func (a *Activation) OutShape(in []int) ([]int, error) { return in, nil }

// Forward implements Layer.
func (a *Activation) Forward(ctx *Ctx, in, out *tensor.Tensor) {
	copy(out.Data(), in.Data())
	a.fn(out.Data())
}

// Backward implements BackLayer.
func (a *Activation) Backward(ctx *Ctx, in, out, dout, din *tensor.Tensor) {
	a.grad(in.Data(), out.Data(), dout.Data(), din.Data())
}

// Kernels implements Layer: one memory-bound element-wise kernel.
func (a *Activation) Kernels(in []int, batch int, ks []Kernel) []Kernel {
	n := sampleElems(in) * batch
	return append(ks, Kernel{
		Name:     a.name,
		FLOPs:    float64(n),
		BytesIn:  float64(4 * n),
		BytesOut: float64(4 * n),
		Threads:  n,
	})
}

// Dropout zeroes activations with probability P during training and
// scales the survivors by 1/(1-P) (inverted dropout, as Caffe does), so
// inference is the identity. AlexNet's fc6/fc7 use P=0.5.
type Dropout struct {
	name string
	P    float32
}

// NewDropout creates a dropout layer with drop probability p.
func NewDropout(name string, p float32) *Dropout { return &Dropout{name: name, P: p} }

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// Kind implements Layer.
func (d *Dropout) Kind() string { return "dropout" }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// OutShape implements Layer.
func (d *Dropout) OutShape(in []int) ([]int, error) { return in, nil }

// Forward implements Layer.
func (d *Dropout) Forward(ctx *Ctx, in, out *tensor.Tensor) {
	if !ctx.Train || d.P <= 0 {
		copy(out.Data(), in.Data())
		return
	}
	scale := 1 / (1 - d.P)
	src, dst := in.Data(), out.Data()
	for i := range src {
		if ctx.rng.Float32() < d.P {
			dst[i] = 0
		} else {
			dst[i] = src[i] * scale
		}
	}
}

// Backward implements BackLayer. The mask is recovered from the forward
// output (zero ⇒ dropped), which is exact because survivors are scaled
// by a non-zero factor; the rare organically-zero activation routes no
// gradient, which is harmless.
func (d *Dropout) Backward(ctx *Ctx, in, out, dout, din *tensor.Tensor) {
	if !ctx.Train || d.P <= 0 {
		copy(din.Data(), dout.Data())
		return
	}
	scale := 1 / (1 - d.P)
	o, dy, dx := out.Data(), dout.Data(), din.Data()
	for i := range o {
		if o[i] == 0 {
			dx[i] = 0
		} else {
			dx[i] = dy[i] * scale
		}
	}
}

// Kernels implements Layer. Inference-time dropout is free (Caffe skips
// the kernel), so it contributes nothing to the cost model.
func (d *Dropout) Kernels(in []int, batch int, ks []Kernel) []Kernel { return ks }

// LRN is AlexNet's across-channel local response normalisation:
// out = in / (k + alpha/n · Σ in²)^beta over a window of n channels.
type LRN struct {
	name        string
	N           int
	Alpha, Beta float32
	K           float32
}

// NewLRN creates a local response normalisation layer with AlexNet's
// standard parameters when alpha/beta are zero.
func NewLRN(name string, n int, alpha, beta, k float32) *LRN {
	if n == 0 {
		n = 5
	}
	if alpha == 0 {
		alpha = 1e-4
	}
	if beta == 0 {
		beta = 0.75
	}
	if k == 0 {
		k = 1
	}
	return &LRN{name: name, N: n, Alpha: alpha, Beta: beta, K: k}
}

// Name implements Layer.
func (l *LRN) Name() string { return l.name }

// Kind implements Layer.
func (l *LRN) Kind() string { return "lrn" }

// Params implements Layer.
func (l *LRN) Params() []*Param { return nil }

// OutShape implements Layer.
func (l *LRN) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, shapeErr(l.Kind(), l.name, in, "want [C,H,W]")
	}
	return in, nil
}

// Forward implements Layer.
func (l *LRN) Forward(ctx *Ctx, in, out *tensor.Tensor) {
	batch := in.Dim(0)
	c, h, w := in.Dim(1), in.Dim(2), in.Dim(3)
	spatial := h * w
	per := c * spatial
	half := l.N / 2
	for b := 0; b < batch; b++ {
		src := in.Data()[b*per : (b+1)*per]
		dst := out.Data()[b*per : (b+1)*per]
		for pos := 0; pos < spatial; pos++ {
			for ch := 0; ch < c; ch++ {
				lo := ch - half
				if lo < 0 {
					lo = 0
				}
				hi := ch + half
				if hi >= c {
					hi = c - 1
				}
				var sum float32
				for j := lo; j <= hi; j++ {
					v := src[j*spatial+pos]
					sum += v * v
				}
				scale := l.K + l.Alpha/float32(l.N)*sum
				dst[ch*spatial+pos] = src[ch*spatial+pos] / float32(math.Pow(float64(scale), float64(l.Beta)))
			}
		}
	}
}

// Backward implements BackLayer. With s_c = k + (α/n)·Σ_{j∈win(c)} x_j²
// and y_c = x_c · s_c^{-β}:
//
//	∂y_c/∂x_i = s_c^{-β}·[c=i] − 2βα/n · x_c · x_i · s_c^{-β-1}  (i ∈ win(c))
func (l *LRN) Backward(ctx *Ctx, in, out, dout, din *tensor.Tensor) {
	batch := in.Dim(0)
	c, h, w := in.Dim(1), in.Dim(2), in.Dim(3)
	spatial := h * w
	per := c * spatial
	half := l.N / 2
	coef := 2 * l.Beta * l.Alpha / float32(l.N)
	for b := 0; b < batch; b++ {
		x := in.Data()[b*per : (b+1)*per]
		dy := dout.Data()[b*per : (b+1)*per]
		dx := din.Data()[b*per : (b+1)*per]
		for pos := 0; pos < spatial; pos++ {
			// Recompute the per-channel scales at this position.
			scale := make([]float32, c)
			for ch := 0; ch < c; ch++ {
				lo, hi := maxInt(0, ch-half), minInt(c-1, ch+half)
				var sum float32
				for j := lo; j <= hi; j++ {
					v := x[j*spatial+pos]
					sum += v * v
				}
				scale[ch] = l.K + l.Alpha/float32(l.N)*sum
			}
			for i := 0; i < c; i++ {
				xi := x[i*spatial+pos]
				var g float32
				// Channels whose window contains i.
				lo, hi := maxInt(0, i-half), minInt(c-1, i+half)
				for ch := lo; ch <= hi; ch++ {
					sPow := float32(math.Pow(float64(scale[ch]), float64(-l.Beta)))
					grad := dy[ch*spatial+pos]
					if ch == i {
						g += grad * sPow
					}
					g -= grad * coef * x[ch*spatial+pos] * xi * sPow / scale[ch]
				}
				dx[i*spatial+pos] = g
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Kernels implements Layer: memory-bound with a small per-element
// compute term for the window sum and power.
func (l *LRN) Kernels(in []int, batch int, ks []Kernel) []Kernel {
	n := sampleElems(in) * batch
	return append(ks, Kernel{
		Name:     l.name,
		FLOPs:    float64(n) * float64(2*l.N+10),
		BytesIn:  float64(4*n) * 2,
		BytesOut: float64(4 * n),
		Threads:  n,
	})
}

// Softmax normalises the per-sample vector into a probability
// distribution; it is the terminal layer of every Tonic network.
type Softmax struct{ name string }

// NewSoftmax creates a softmax layer.
func NewSoftmax(name string) *Softmax { return &Softmax{name: name} }

// Name implements Layer.
func (s *Softmax) Name() string { return s.name }

// Kind implements Layer.
func (s *Softmax) Kind() string { return "softmax" }

// Params implements Layer.
func (s *Softmax) Params() []*Param { return nil }

// OutShape implements Layer.
func (s *Softmax) OutShape(in []int) ([]int, error) {
	if len(in) != 1 {
		return nil, shapeErr(s.Kind(), s.name, in, "want a flat vector")
	}
	return in, nil
}

// Forward implements Layer.
func (s *Softmax) Forward(ctx *Ctx, in, out *tensor.Tensor) {
	copy(out.Data(), in.Data())
	tensor.Softmax(in.Dim(0), in.Dim(1), out.Data())
}

// Backward implements BackLayer using the softmax Jacobian:
// dx_i = y_i (dy_i − Σ_j dy_j y_j).
func (s *Softmax) Backward(ctx *Ctx, in, out, dout, din *tensor.Tensor) {
	batch, n := in.Dim(0), in.Dim(1)
	for b := 0; b < batch; b++ {
		y := out.Data()[b*n : (b+1)*n]
		dy := dout.Data()[b*n : (b+1)*n]
		dx := din.Data()[b*n : (b+1)*n]
		dot := tensor.Dot(dy, y)
		for i := range y {
			dx[i] = y[i] * (dy[i] - dot)
		}
	}
}

// Kernels implements Layer.
func (s *Softmax) Kernels(in []int, batch int, ks []Kernel) []Kernel {
	n := sampleElems(in) * batch
	return append(ks, Kernel{
		Name:     s.name,
		FLOPs:    float64(4 * n),
		BytesIn:  float64(4 * n),
		BytesOut: float64(4 * n),
		Threads:  n,
	})
}
