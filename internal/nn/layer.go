// Package nn implements the neural-network engine underlying the DjiNN
// service: a layer zoo covering every layer type used by the Tonic Suite
// networks (convolution with groups, pooling, local response
// normalisation, fully-connected, locally-connected, the usual
// activations, dropout and softmax), a sequential Net with forward and
// backward passes, SGD training, model serialisation, and — crucially
// for the paper's performance study — per-layer kernel cost descriptors
// (FLOPs, DRAM bytes, launched threads) consumed by the CPU and GPU
// performance models.
package nn

import (
	"fmt"

	"djinn/internal/tensor"
)

// Param is a learnable parameter tensor together with its gradient
// accumulator (allocated lazily by the trainer).
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
	// Q, when non-nil, is the pre-quantized form of W loaded from a model
	// file's quantized-weights section. Int8 plans use it directly
	// instead of re-quantizing W at Compile time; because exporters
	// produce it with the same tensor.QuantizeSymmetric the compiler
	// would run, the two paths are bit-identical.
	Q *QuantizedParam
}

// QuantizedParam is the int8 image of a parameter tensor under symmetric
// per-tensor quantization: W ≈ Scale · Data, zero point 0. Data is laid
// out exactly like W.Data() (and may alias a memory-mapped model file).
type QuantizedParam struct {
	Scale float32
	Data  []int8
}

// EnsureGrad allocates the gradient tensor if it does not exist yet.
func (p *Param) EnsureGrad() *tensor.Tensor {
	if p.Grad == nil {
		p.Grad = tensor.New(p.W.Shape()...)
	}
	return p.Grad
}

// Kernel describes one GPU kernel launch (or one CPU loop nest) worth of
// work in a layer's forward pass. The performance models consume these:
// FLOPs and DRAM bytes feed the roofline, Threads feeds the occupancy
// model, and the count of kernels feeds the launch-overhead model.
type Kernel struct {
	Name     string
	FLOPs    float64 // floating point operations
	BytesIn  float64 // DRAM bytes read (weights + activations)
	BytesOut float64 // DRAM bytes written
	Threads  int     // independent work items (one CUDA thread each)
	// GPUReplay is the DRAM transaction replay factor on GPUs for
	// kernels whose access pattern cannot coalesce (locally-connected
	// layers fetch a different filter per output location). Zero means
	// 1 (fully coalesced). CPU cores prefetch these same streams
	// sequentially, so the CPU model ignores it.
	GPUReplay float64
	// Calls is the number of library invocations the kernel's work is
	// split into on the CPU path: Caffe's CPU convolution loops
	// im2col+SGEMM per image (and per group), so ATLAS sees one
	// small-matrix call per sample while cuDNN sees one batched launch.
	// Zero means 1. The CPU model applies its efficiency curve and
	// per-call overhead at this granularity.
	Calls int
	// GemmM/GemmN describe the output matrix of a GEMM kernel, and
	// GemmCount the number of independent same-shape GEMMs batched into
	// the launch (grouped convolutions). The GPU model derives the
	// kernel's parallelism from cuBLAS-style output tiling over these
	// (choosing between a large-tile and a small-tile kernel); when
	// they are zero the kernel is element-wise and Threads is used
	// directly.
	GemmM, GemmN, GemmCount int
}

// CallCount returns the CPU invocation count (at least 1).
func (k Kernel) CallCount() int {
	if k.Calls < 1 {
		return 1
	}
	return k.Calls
}

// GemmThreads is a coarse single-number parallelism estimate for an
// m×n-output SGEMM (256-thread blocks over 128×64 or 32×32 output
// tiles, whichever launches more work). The GPU model refines this with
// a two-candidate tile choice from GemmM/GemmN; this helper serves
// call sites that only need a Threads figure. Tile quantisation is why
// a batch-1 AlexNet convolution (96 output channels → one tile row)
// leaves most of the GPU idle and why batching raises occupancy
// (Figure 7b).
func GemmThreads(m, n int) int {
	large := ((m + 127) / 128) * ((n + 63) / 64) * 256
	small := ((m + 31) / 32) * ((n + 31) / 32) * 256
	if small > large {
		return small
	}
	return large
}

// Replay returns the effective GPU replay factor (at least 1).
func (k Kernel) Replay() float64 {
	if k.GPUReplay < 1 {
		return 1
	}
	return k.GPUReplay
}

// Bytes returns the total DRAM traffic of the kernel.
func (k Kernel) Bytes() float64 { return k.BytesIn + k.BytesOut }

// Ctx carries per-runner scratch state so that a single Net (with its
// read-only weights) can be executed concurrently from many workers,
// mirroring DjiNN's shared in-memory model design.
type Ctx struct {
	col   []float32   // im2col scratch
	rng   *tensor.RNG // dropout masks during training
	Train bool        // enables dropout
	// Workers is the intra-op parallelism knob: GEMM-backed layers
	// (conv, FC) split their output rows across this many goroutines,
	// each owning a disjoint row block so results stay bit-identical to
	// the serial kernels. Zero or 1 runs serial.
	Workers int
}

// NewCtx creates an execution context. seed controls dropout mask
// generation during training and has no effect on inference.
func NewCtx(seed uint64) *Ctx {
	return &Ctx{rng: tensor.NewRNG(seed)}
}

func (c *Ctx) scratch(n int) []float32 {
	if cap(c.col) < n {
		c.col = make([]float32, n)
	}
	return c.col[:n]
}

// workers returns the effective intra-op worker count (at least 1).
func (c *Ctx) workers() int {
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

// Layer is one stage of a sequential network. Implementations must be
// safe for concurrent Forward calls as long as each call uses its own
// Ctx and in/out tensors; weights are only read.
type Layer interface {
	// Name returns the layer's unique name within its Net.
	Name() string
	// Kind returns the layer type ("conv", "fc", "relu", ...).
	Kind() string
	// OutShape returns the per-sample output shape for a per-sample
	// input shape, or an error if the input shape is incompatible.
	OutShape(in []int) ([]int, error)
	// Forward computes out from in; the leading dimension of both is
	// the batch.
	Forward(ctx *Ctx, in, out *tensor.Tensor)
	// Params returns the learnable parameters, or nil.
	Params() []*Param
	// Kernels appends this layer's forward-pass kernel descriptors for
	// the given per-sample input shape and batch size.
	Kernels(in []int, batch int, ks []Kernel) []Kernel
}

// fusedBiasReLU is implemented by layers (conv, FC) whose forward pass
// can fold an immediately-following ReLU into their bias epilogue: one
// pass over the output instead of bias-add plus a separate
// copy-and-clamp. Execution plans use it; results are bit-identical to
// Forward followed by the ReLU layer.
type fusedBiasReLU interface {
	Layer
	forwardReLU(ctx *Ctx, in, out *tensor.Tensor)
}

// BackLayer is implemented by layers that support backpropagation.
// Backward consumes the layer's forward input and output plus the
// gradient w.r.t. the output, writes the gradient w.r.t. the input into
// din, and accumulates parameter gradients.
type BackLayer interface {
	Layer
	Backward(ctx *Ctx, in, out, dout, din *tensor.Tensor)
}

func sampleElems(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func shapeErr(kind, name string, in []int, why string) error {
	return fmt.Errorf("nn: layer %s (%s): input shape %v: %s", name, kind, in, why)
}
