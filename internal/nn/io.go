package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"djinn/internal/tensor"
)

// Model serialisation: DjiNN loads pre-trained models at start-up and
// keeps them resident. The format stores each parameter tensor by name:
//
//	magic   uint32 'DJNM'
//	nparams uint32
//	repeat: nameLen uint16, name bytes, tensor (tensor binary format)
//
// Loading matches parameters by name against an already-built Net, so
// the architecture itself is code (internal/models), as with Caffe's
// prototxt + caffemodel split.
const modelMagic = 0x444a4e4d // "DJNM"

// SaveWeights writes every parameter of the net to w.
func (n *Net) SaveWeights(w io.Writer) error {
	bw := bufio.NewWriter(w)
	params := n.Params()
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], modelMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(params)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for _, p := range params {
		if len(p.Name) > 1<<16-1 {
			return fmt.Errorf("nn: parameter name too long: %q", p.Name)
		}
		var nl [2]byte
		binary.LittleEndian.PutUint16(nl[:], uint16(len(p.Name)))
		if _, err := bw.Write(nl[:]); err != nil {
			return err
		}
		if _, err := bw.WriteString(p.Name); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if _, err := p.W.WriteTo(w); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadWeights reads a stream written by SaveWeights into the net's
// parameters. Every stored parameter must exist in the net with a
// matching shape, and every net parameter must be provided.
func (n *Net) LoadWeights(r io.Reader) error {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != modelMagic {
		return fmt.Errorf("nn: bad model magic")
	}
	count := int(binary.LittleEndian.Uint32(hdr[4:]))
	byName := map[string]*Param{}
	for _, p := range n.Params() {
		byName[p.Name] = p
	}
	if count != len(byName) {
		return fmt.Errorf("nn: model has %d parameters, net %s expects %d", count, n.name, len(byName))
	}
	seen := map[string]bool{}
	for i := 0; i < count; i++ {
		var nl [2]byte
		if _, err := io.ReadFull(br, nl[:]); err != nil {
			return err
		}
		nameBytes := make([]byte, binary.LittleEndian.Uint16(nl[:]))
		if _, err := io.ReadFull(br, nameBytes); err != nil {
			return err
		}
		name := string(nameBytes)
		t, err := tensor.ReadFrom(br)
		if err != nil {
			return fmt.Errorf("nn: reading parameter %q: %w", name, err)
		}
		p, ok := byName[name]
		if !ok {
			return fmt.Errorf("nn: model parameter %q not in net %s", name, n.name)
		}
		if seen[name] {
			return fmt.Errorf("nn: duplicate parameter %q", name)
		}
		if !p.W.SameShape(t) {
			return fmt.Errorf("nn: parameter %q shape %v, net expects %v", name, t.Shape(), p.W.Shape())
		}
		p.W.CopyFrom(t)
		seen[name] = true
	}
	return nil
}
