package nn

import (
	"math"
	"testing"
	"time"

	"djinn/internal/tensor"
)

func TestParallelRunnerMatchesSerial(t *testing.T) {
	net := smallCNN(50)
	rng := tensor.NewRNG(51)
	const batch = 13
	in := tensor.New(batch, 1, 8, 8)
	rng.FillNorm(in.Data(), 0, 1)
	serial := net.NewRunner(batch).Forward(in).Clone()
	for _, workers := range []int{1, 2, 4, 7, 13, 20} {
		p := net.NewParallelRunner(batch, workers)
		got := p.Forward(in)
		if got.Dim(0) != batch {
			t.Fatalf("workers=%d: batch %d", workers, got.Dim(0))
		}
		for i := range serial.Data() {
			if math.Abs(float64(got.Data()[i]-serial.Data()[i])) > 1e-6 {
				t.Fatalf("workers=%d: output %d differs: %v vs %v", workers, i, got.Data()[i], serial.Data()[i])
			}
		}
	}
}

func TestParallelRunnerPartialBatch(t *testing.T) {
	net := smallCNN(52)
	p := net.NewParallelRunner(16, 4)
	rng := tensor.NewRNG(53)
	// A batch smaller than one chunk and one that spans some workers.
	for _, b := range []int{1, 3, 9, 16} {
		in := tensor.New(b, 1, 8, 8)
		rng.FillNorm(in.Data(), 0, 1)
		out := p.Forward(in)
		if out.Dim(0) != b || out.Dim(1) != 10 {
			t.Fatalf("batch %d: shape %v", b, out.Shape())
		}
		for j := 0; j < b; j++ {
			var s float64
			for k := 0; k < 10; k++ {
				s += float64(out.At(j, k))
			}
			if math.Abs(s-1) > 1e-4 {
				t.Fatalf("batch %d row %d sums to %v", b, j, s)
			}
		}
	}
}

func TestParallelRunnerRejectsBadWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	smallCNN(54).NewParallelRunner(8, 0)
}

func TestParallelRunnerSpeedsUpLargeBatches(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	rng := tensor.NewRNG(55)
	net := NewNet("wide", KindDNN, 512)
	net.Add(NewFC("fc1", rng, 512, 1024)).
		Add(NewReLU("r")).
		Add(NewFC("fc2", rng, 1024, 512)).
		Add(NewSoftmax("p"))
	const batch = 64
	in := tensor.New(batch, 512)
	rng.FillNorm(in.Data(), 0, 1)
	serial := net.NewRunner(batch)
	par := net.NewParallelRunner(batch, 4)
	// Warm up, then time a few iterations of each.
	serial.Forward(in)
	par.Forward(in)
	t0 := time.Now()
	for i := 0; i < 10; i++ {
		serial.Forward(in)
	}
	ts := time.Since(t0)
	t0 = time.Now()
	for i := 0; i < 10; i++ {
		par.Forward(in)
	}
	tp := time.Since(t0)
	t.Logf("serial %v, parallel(4) %v (%.2fx)", ts, tp, float64(ts)/float64(tp))
	if tp > ts*2 {
		t.Fatalf("parallel runner pathologically slow: %v vs %v", tp, ts)
	}
}
