package nn

import (
	"sync"

	"djinn/internal/tensor"
)

// ParallelRunner executes one network's forward pass with intra-batch
// parallelism: the batch is split into contiguous chunks processed
// concurrently by private inference plans over the shared read-only
// weights. This is how a CPU-only DjiNN deployment uses its cores
// within a single large batch (complementing the across-batch worker
// pool and the intra-op GEMM parallelism of CompileOpts.Workers).
type ParallelRunner struct {
	net      *Net
	plans    []*Plan
	maxBatch int
	inPer    int
	outPer   int
	out      []float32
	outViews []*tensor.Tensor // outViews[b-1]: [b, outShape...] over out
}

// NewParallelRunner creates a runner with the given worker count, each
// able to process up to maxBatch/workers (rounded up) samples.
func (n *Net) NewParallelRunner(maxBatch, workers int) *ParallelRunner {
	if workers <= 0 {
		panic("nn: NewParallelRunner: workers must be positive")
	}
	if maxBatch <= 0 {
		panic("nn: NewParallelRunner: maxBatch must be positive")
	}
	if workers > maxBatch {
		workers = maxBatch
	}
	per := (maxBatch + workers - 1) / workers
	p := &ParallelRunner{
		net:      n,
		maxBatch: per * workers,
		inPer:    sampleElems(n.InShape()),
		outPer:   sampleElems(n.OutShape()),
	}
	for i := 0; i < workers; i++ {
		p.plans = append(p.plans, n.Compile(per))
	}
	p.out = make([]float32, p.maxBatch*p.outPer)
	p.outViews = make([]*tensor.Tensor, p.maxBatch)
	for b := 1; b <= p.maxBatch; b++ {
		p.outViews[b-1] = tensor.FromSlice(p.out[:b*p.outPer], append([]int{b}, n.OutShape()...)...)
	}
	return p
}

// MaxBatch returns the total batch capacity.
func (p *ParallelRunner) MaxBatch() int { return p.maxBatch }

// Forward runs the batch across the workers and returns the stacked
// output, owned by the ParallelRunner until the next call. Each chunk
// is gathered straight into its plan's input arena, so the only copies
// are input-in and output-out.
func (p *ParallelRunner) Forward(input *tensor.Tensor) *tensor.Tensor {
	batch := input.Dim(0)
	per := p.plans[0].MaxBatch()
	var wg sync.WaitGroup
	for w := 0; w*per < batch; w++ {
		lo := w * per
		hi := lo + per
		if hi > batch {
			hi = batch
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			pl := p.plans[w]
			n := hi - lo
			copy(pl.In(n).Data(), input.Data()[lo*p.inPer:hi*p.inPer])
			res := pl.Run(n)
			copy(p.out[lo*p.outPer:hi*p.outPer], res.Data()[:n*p.outPer])
		}(w, lo, hi)
	}
	wg.Wait()
	return p.outViews[batch-1]
}
