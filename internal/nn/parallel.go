package nn

import (
	"sync"

	"djinn/internal/tensor"
)

// ParallelRunner executes one network's forward pass with intra-batch
// parallelism: the batch is split into contiguous chunks processed
// concurrently by private Runners over the shared read-only weights.
// This is how a CPU-only DjiNN deployment uses its cores within a
// single large batch (complementing the across-batch worker pool).
type ParallelRunner struct {
	net     *Net
	runners []*Runner
	out     *tensor.Tensor
}

// NewParallelRunner creates a runner with the given worker count, each
// able to process up to maxBatch/workers (rounded up) samples.
func (n *Net) NewParallelRunner(maxBatch, workers int) *ParallelRunner {
	if workers <= 0 {
		panic("nn: NewParallelRunner: workers must be positive")
	}
	if workers > maxBatch {
		workers = maxBatch
	}
	per := (maxBatch + workers - 1) / workers
	p := &ParallelRunner{net: n}
	for i := 0; i < workers; i++ {
		p.runners = append(p.runners, n.NewRunner(per))
	}
	p.out = tensor.New(append([]int{maxBatch}, n.OutShape()...)...)
	return p
}

// MaxBatch returns the total batch capacity.
func (p *ParallelRunner) MaxBatch() int {
	per := p.runners[0].MaxBatch()
	return per * len(p.runners)
}

// Forward runs the batch across the workers and returns the stacked
// output, owned by the ParallelRunner until the next call.
func (p *ParallelRunner) Forward(input *tensor.Tensor) *tensor.Tensor {
	batch := input.Dim(0)
	inPer := input.Len() / batch
	outShape := p.net.OutShape()
	outPer := 1
	for _, d := range outShape {
		outPer *= d
	}
	per := p.runners[0].MaxBatch()
	var wg sync.WaitGroup
	for w := 0; w*per < batch; w++ {
		lo := w * per
		hi := lo + per
		if hi > batch {
			hi = batch
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			chunk := tensor.FromSlice(
				input.Data()[lo*inPer:hi*inPer],
				append([]int{hi - lo}, p.net.InShape()...)...)
			res := p.runners[w].Forward(chunk)
			copy(p.out.Data()[lo*outPer:hi*outPer], res.Data()[:(hi-lo)*outPer])
		}(w, lo, hi)
	}
	wg.Wait()
	return tensor.FromSlice(p.out.Data()[:batch*outPer], append([]int{batch}, outShape...)...)
}
