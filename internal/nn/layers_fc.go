package nn

import (
	"fmt"

	"djinn/internal/tensor"
)

// FC is a fully-connected (Caffe "InnerProduct") layer. It flattens any
// per-sample input shape to a vector. At batch 1 the forward pass is a
// GEMV — which on a GPU is memory-bound on the weight matrix, the very
// effect the paper's batching optimisation (Section 5.1) exploits.
type FC struct {
	name    string
	In, Out int
	Weight  *Param // [Out, In]
	Bias    *Param // [Out]

	kern fcKernelCache // lazily built packed/quantized weight forms
}

// NewFC creates a fully-connected layer with Xavier-initialised weights.
func NewFC(name string, rng *tensor.RNG, in, out int) *FC {
	w := tensor.New(out, in)
	rng.XavierFill(w.Data(), in, out)
	return &FC{
		name: name, In: in, Out: out,
		Weight: &Param{Name: name + ".weight", W: w},
		Bias:   &Param{Name: name + ".bias", W: tensor.New(out)},
	}
}

// Name implements Layer.
func (f *FC) Name() string { return f.name }

// Kind implements Layer.
func (f *FC) Kind() string { return "fc" }

// Params implements Layer.
func (f *FC) Params() []*Param { return []*Param{f.Weight, f.Bias} }

// OutShape implements Layer.
func (f *FC) OutShape(in []int) ([]int, error) {
	if sampleElems(in) != f.In {
		return nil, shapeErr(f.Kind(), f.name, in, fmt.Sprintf("want %d elements", f.In))
	}
	return []int{f.Out}, nil
}

// Forward implements Layer. Computes out[b] = W·in[b] + bias as one GEMM
// over the whole batch: out [B,Out] = in [B,In] × W^T [In,Out].
func (f *FC) Forward(ctx *Ctx, in, out *tensor.Tensor) {
	f.forward(ctx, in, out, false)
}

// forwardReLU implements fusedBiasReLU: the same affine transform with
// the following ReLU folded into the bias epilogue.
func (f *FC) forwardReLU(ctx *Ctx, in, out *tensor.Tensor) {
	f.forward(ctx, in, out, true)
}

func (f *FC) forward(ctx *Ctx, in, out *tensor.Tensor, fuseReLU bool) {
	batch := in.Dim(0)
	w := f.Weight.W.Data()
	// out[b,o] = sum_i in[b,i] * w[o,i]; loop as GEMM with B transposed.
	// Intra-op workers own disjoint output rows (samples at batch > 1,
	// weight rows at batch 1), so the per-element accumulation order —
	// and hence the result — matches the serial path bit for bit.
	inD, outD := in.Data(), out.Data()
	switch workers := ctx.workers(); {
	case workers <= 1:
		// Serial fast path: no closure, no goroutines, zero allocations.
		for b := 0; b < batch; b++ {
			tensor.Gemv(f.Out, f.In, 1, w, inD[b*f.In:(b+1)*f.In], 0, outD[b*f.Out:(b+1)*f.Out])
		}
	case batch == 1:
		tensor.ParallelRows(workers, f.Out, func(lo, hi int) {
			tensor.Gemv(hi-lo, f.In, 1, w[lo*f.In:hi*f.In], inD[:f.In], 0, outD[lo:hi])
		})
	default:
		tensor.ParallelRows(workers, batch, func(lo, hi int) {
			for b := lo; b < hi; b++ {
				tensor.Gemv(f.Out, f.In, 1, w, inD[b*f.In:(b+1)*f.In], 0, outD[b*f.Out:(b+1)*f.Out])
			}
		})
	}
	if fuseReLU {
		tensor.AddBiasReLU(batch, f.Out, outD, f.Bias.W.Data())
	} else {
		tensor.AddBias(batch, f.Out, outD, f.Bias.W.Data())
	}
}

// Backward implements BackLayer.
func (f *FC) Backward(ctx *Ctx, in, out, dout, din *tensor.Tensor) {
	batch := in.Dim(0)
	w := f.Weight.W.Data()
	gw := f.Weight.EnsureGrad().Data()
	gb := f.Bias.EnsureGrad().Data()
	inD, dinD, doutD := in.Data(), din.Data(), dout.Data()
	for b := 0; b < batch; b++ {
		x := inD[b*f.In : (b+1)*f.In]
		dy := doutD[b*f.Out : (b+1)*f.Out]
		dx := dinD[b*f.In : (b+1)*f.In]
		// dW[o,i] += dy[o] * x[i]; db[o] += dy[o]; dx[i] = sum_o dy[o]*W[o,i].
		for i := range dx {
			dx[i] = 0
		}
		for o := 0; o < f.Out; o++ {
			g := dy[o]
			gb[o] += g
			if g == 0 {
				continue
			}
			wrow := w[o*f.In : (o+1)*f.In]
			gwrow := gw[o*f.In : (o+1)*f.In]
			for i := 0; i < f.In; i++ {
				gwrow[i] += g * x[i]
				dx[i] += g * wrow[i]
			}
		}
	}
}

// Kernels implements Layer. The weight matrix is re-read from DRAM once
// per batch (not per sample) — this is what makes batching pay off.
func (f *FC) Kernels(in []int, batch int, ks []Kernel) []Kernel {
	weightBytes := float64(4 * f.In * f.Out)
	actIn := float64(4 * f.In * batch)
	actOut := float64(4 * f.Out * batch)
	outElems := f.Out * batch
	ks = append(ks, Kernel{
		Name:     f.name + ".gemm",
		FLOPs:    2 * float64(f.In) * float64(f.Out) * float64(batch),
		BytesIn:  weightBytes + actIn,
		BytesOut: actOut,
		Threads:  GemmThreads(f.Out, batch),
		GemmM:    f.Out,
		GemmN:    batch,
	})
	ks = append(ks, Kernel{
		Name:     f.name + ".bias",
		FLOPs:    float64(outElems),
		BytesIn:  actOut + float64(4*f.Out),
		BytesOut: actOut,
		Threads:  outElems,
	})
	return ks
}

// Local is a locally-connected layer (DeepFace's L4–L6): like a
// convolution but with untied weights — every output location has its
// own filter bank. Parameter count is therefore enormous (DeepFace's
// 120M parameters live almost entirely here) and the forward pass is
// memory-bound on weights, which is why FACE gains far less from the
// GPU than the other image services (Figure 10's 40× vs >100×).
type Local struct {
	name       string
	InC, OutC  int
	Kernel     int
	Stride     int
	outH, outW int
	inH, inW   int
	Weight     *Param // [outH*outW, OutC, InC*K*K]
	Bias       *Param // [OutC, outH, outW]
}

// NewLocal creates a locally-connected layer for a fixed input geometry
// (locally-connected layers cannot be geometry-agnostic because the
// weight count depends on the output size).
func NewLocal(name string, rng *tensor.RNG, inC, inH, inW, outC, kernel, stride int) *Local {
	if stride == 0 {
		stride = 1
	}
	outH := (inH-kernel)/stride + 1
	outW := (inW-kernel)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("nn: local %s: kernel %d too large for %dx%d input", name, kernel, inH, inW))
	}
	l := &Local{
		name: name, InC: inC, OutC: outC, Kernel: kernel, Stride: stride,
		outH: outH, outW: outW, inH: inH, inW: inW,
	}
	taps := inC * kernel * kernel
	w := tensor.New(outH*outW, outC, taps)
	rng.XavierFill(w.Data(), taps, taps)
	l.Weight = &Param{Name: name + ".weight", W: w}
	l.Bias = &Param{Name: name + ".bias", W: tensor.New(outC, outH, outW)}
	return l
}

// Name implements Layer.
func (l *Local) Name() string { return l.name }

// Kind implements Layer.
func (l *Local) Kind() string { return "local" }

// Params implements Layer.
func (l *Local) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// OutShape implements Layer.
func (l *Local) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != l.InC || in[1] != l.inH || in[2] != l.inW {
		return nil, shapeErr(l.Kind(), l.name, in, fmt.Sprintf("want [%d,%d,%d]", l.InC, l.inH, l.inW))
	}
	return []int{l.OutC, l.outH, l.outW}, nil
}

// Forward implements Layer.
func (l *Local) Forward(ctx *Ctx, in, out *tensor.Tensor) {
	batch := in.Dim(0)
	taps := l.InC * l.Kernel * l.Kernel
	inPer := l.InC * l.inH * l.inW
	outPer := l.OutC * l.outH * l.outW
	w := l.Weight.W.Data()
	bias := l.Bias.W.Data()
	patch := ctx.scratch(taps)
	for b := 0; b < batch; b++ {
		img := in.Data()[b*inPer : (b+1)*inPer]
		dst := out.Data()[b*outPer : (b+1)*outPer]
		for oh := 0; oh < l.outH; oh++ {
			for ow := 0; ow < l.outW; ow++ {
				l.gather(img, patch, oh, ow)
				loc := oh*l.outW + ow
				wLoc := w[loc*l.OutC*taps : (loc+1)*l.OutC*taps]
				for oc := 0; oc < l.OutC; oc++ {
					dst[oc*l.outH*l.outW+loc] = tensor.Dot(wLoc[oc*taps:(oc+1)*taps], patch) + bias[oc*l.outH*l.outW+loc]
				}
			}
		}
	}
}

func (l *Local) gather(img, patch []float32, oh, ow int) {
	idx := 0
	h0 := oh * l.Stride
	w0 := ow * l.Stride
	for c := 0; c < l.InC; c++ {
		base := c * l.inH * l.inW
		for kh := 0; kh < l.Kernel; kh++ {
			row := base + (h0+kh)*l.inW + w0
			copy(patch[idx:idx+l.Kernel], img[row:row+l.Kernel])
			idx += l.Kernel
		}
	}
}

// Backward implements BackLayer: the untied-weight analogue of the
// convolution backward pass, per output location.
func (l *Local) Backward(ctx *Ctx, in, out, dout, din *tensor.Tensor) {
	batch := in.Dim(0)
	taps := l.InC * l.Kernel * l.Kernel
	inPer := l.InC * l.inH * l.inW
	outPer := l.OutC * l.outH * l.outW
	w := l.Weight.W.Data()
	gw := l.Weight.EnsureGrad().Data()
	gb := l.Bias.EnsureGrad().Data()
	patch := ctx.scratch(2 * taps)
	fwd := patch[:taps]
	acc := patch[taps:]
	din.Zero()
	for b := 0; b < batch; b++ {
		img := in.Data()[b*inPer : (b+1)*inPer]
		dImg := din.Data()[b*inPer : (b+1)*inPer]
		dOut := dout.Data()[b*outPer : (b+1)*outPer]
		for oh := 0; oh < l.outH; oh++ {
			for ow := 0; ow < l.outW; ow++ {
				loc := oh*l.outW + ow
				l.gather(img, fwd, oh, ow)
				wLoc := w[loc*l.OutC*taps : (loc+1)*l.OutC*taps]
				gwLoc := gw[loc*l.OutC*taps : (loc+1)*l.OutC*taps]
				for i := range acc {
					acc[i] = 0
				}
				for oc := 0; oc < l.OutC; oc++ {
					g := dOut[oc*l.outH*l.outW+loc]
					gb[oc*l.outH*l.outW+loc] += g
					if g == 0 {
						continue
					}
					wRow := wLoc[oc*taps : (oc+1)*taps]
					gwRow := gwLoc[oc*taps : (oc+1)*taps]
					for i := 0; i < taps; i++ {
						gwRow[i] += g * fwd[i]
						acc[i] += g * wRow[i]
					}
				}
				l.scatter(dImg, acc, oh, ow)
			}
		}
	}
}

// scatter accumulates a patch gradient back into the image gradient
// (the adjoint of gather).
func (l *Local) scatter(dImg, patch []float32, oh, ow int) {
	idx := 0
	h0 := oh * l.Stride
	w0 := ow * l.Stride
	for c := 0; c < l.InC; c++ {
		base := c * l.inH * l.inW
		for kh := 0; kh < l.Kernel; kh++ {
			row := base + (h0+kh)*l.inW + w0
			for kw := 0; kw < l.Kernel; kw++ {
				dImg[row+kw] += patch[idx]
				idx++
			}
		}
	}
}

// Kernels implements Layer. Every weight is used exactly once per
// sample, so DRAM weight traffic dominates: the layer sits far left on
// the roofline and batching only amortises it while the batch's
// activations fit on chip.
func (l *Local) Kernels(in []int, batch int, ks []Kernel) []Kernel {
	taps := l.InC * l.Kernel * l.Kernel
	outElems := l.OutC * l.outH * l.outW * batch
	weightBytes := float64(4 * l.Weight.W.Len())
	ks = append(ks, Kernel{
		Name:      l.name + ".local",
		FLOPs:     2 * float64(taps) * float64(outElems),
		BytesIn:   weightBytes + float64(4*sampleElems(in)*batch),
		BytesOut:  float64(4 * outElems),
		Threads:   outElems,
		GPUReplay: 3,
		Calls:     batch,
	})
	return ks
}
