package nn

import (
	"fmt"
	"sync"
	"testing"

	"djinn/internal/tensor"
)

// zooNet exercises every in-place class the planner distinguishes:
// fusable conv+relu and fc+relu pairs, LRN (not in-place), pooling
// (shape change), grouped conv, sigmoid/hardtanh (in-place, unfused),
// dropout and softmax.
func zooNet(seed uint64) *Net {
	rng := tensor.NewRNG(seed)
	n := NewNet("zoo", KindCNN, 2, 8, 8)
	n.Add(NewConv("conv1", rng, 2, 4, 3, ConvOpt{Pad: 1})).
		Add(NewReLU("relu1")).
		Add(NewLRN("lrn1", 3, 0, 0, 0)).
		Add(NewPool("pool1", MaxPool, 2, 2, 0)).
		Add(NewConv("conv2", rng, 4, 6, 3, ConvOpt{Pad: 1, Groups: 2})).
		Add(NewSigmoid("sig1")).
		Add(NewPool("pool2", AvgPool, 2, 2, 0)).
		Add(NewFC("fc1", rng, 6*2*2, 16)).
		Add(NewReLU("relu2")).
		Add(NewDropout("drop1", 0.5)).
		Add(NewFC("fc2", rng, 16, 12)).
		Add(NewHardTanh("ht1")).
		Add(NewFC("fc3", rng, 12, 10)).
		Add(NewSoftmax("prob"))
	return n
}

func randInput(n *Net, batch int, seed uint64) *tensor.Tensor {
	in := tensor.New(append([]int{batch}, n.InShape()...)...)
	tensor.NewRNG(seed).FillNorm(in.Data(), 0, 1)
	return in
}

func TestPlanMatchesRunnerBitIdentical(t *testing.T) {
	for _, build := range []func(uint64) *Net{smallCNN, zooNet} {
		n := build(3)
		const maxBatch = 5
		runner := n.NewRunner(maxBatch)
		for _, workers := range []int{1, 2, 4} {
			plan := n.CompileOpts(maxBatch, CompileOpts{Workers: workers})
			for batch := 1; batch <= maxBatch; batch++ {
				in := randInput(n, batch, uint64(batch))
				want := runner.Forward(in)
				got := plan.Forward(in)
				if !shapeEq(got.Shape(), want.Shape()) {
					t.Fatalf("%s: plan shape %v, runner %v", n.Name(), got.Shape(), want.Shape())
				}
				for i := range got.Data() {
					if got.Data()[i] != want.Data()[i] {
						t.Fatalf("%s workers=%d batch=%d: out[%d]=%v, runner %v (must be bit-identical)",
							n.Name(), workers, batch, i, got.Data()[i], want.Data()[i])
					}
				}
			}
		}
	}
}

func TestPlanFusesAndAliases(t *testing.T) {
	n := zooNet(4)
	plan := n.Compile(2)
	fused, skipped, inplace := 0, 0, 0
	for i, st := range plan.steps {
		if st.fuse != nil {
			fused++
		}
		if st.skip {
			skipped++
		}
		if !st.skip && plan.slots[i+1] == plan.slots[i] {
			inplace++
		}
	}
	// conv1+relu1 and fc1+relu2 fuse; sig1, drop1, ht1, prob run in place.
	if fused != 2 || skipped != 2 {
		t.Fatalf("fused=%d skipped=%d, want 2 and 2", fused, skipped)
	}
	if inplace != 4 {
		t.Fatalf("in-place steps = %d, want 4 (sigmoid, dropout, hardtanh, softmax)", inplace)
	}
	// Retain mode disables all of it and gives every activation its own slot.
	retain := n.CompileOpts(2, CompileOpts{Retain: true})
	for i, st := range retain.steps {
		if st.fuse != nil || st.skip {
			t.Fatalf("retain plan step %d still fused/skipped", i)
		}
		if retain.slots[i+1] != i+1 {
			t.Fatalf("retain plan slot[%d]=%d, want %d", i+1, retain.slots[i+1], i+1)
		}
	}
}

func TestPlanActivationMemoryShrinks(t *testing.T) {
	n := zooNet(5)
	const maxBatch = 8
	plan := n.Compile(maxBatch)
	seed := n.ActivationBytes(maxBatch)
	got := plan.ActivationBytes()
	if got >= seed {
		t.Fatalf("plan activation bytes %d, seed layout %d: ping-pong aliasing saved nothing", got, seed)
	}
	if ratio := float64(seed) / float64(got); ratio < 1.5 {
		t.Fatalf("activation memory ratio %.2f, want ≥ 1.5 for a relu-heavy net", ratio)
	}
	// Retain-mode plans keep the full seed layout.
	if rb := n.CompileOpts(maxBatch, CompileOpts{Retain: true}).ActivationBytes(); rb != seed {
		t.Fatalf("retain plan activation bytes %d, want seed layout %d", rb, seed)
	}
}

func TestPlanZeroAllocSteadyState(t *testing.T) {
	for _, build := range []func(uint64) *Net{smallCNN, zooNet} {
		n := build(6)
		plan := n.Compile(4)
		in := randInput(n, 4, 1)
		plan.Forward(in) // warm up (nothing should grow, but be fair)
		if allocs := testing.AllocsPerRun(20, func() { plan.Forward(in) }); allocs != 0 {
			t.Fatalf("%s: %.1f allocs per forward on the serial plan path, want 0", n.Name(), allocs)
		}
	}
}

func TestPlanInRunZeroCopyEntry(t *testing.T) {
	n := smallCNN(7)
	plan := n.Compile(3)
	runner := n.NewRunner(3)
	in := randInput(n, 2, 9)
	want := runner.Forward(in)
	// Gather straight into the plan's input arena, then Run.
	copy(plan.In(2).Data(), in.Data())
	got := plan.Run(2)
	for i := range got.Data() {
		if got.Data()[i] != want.Data()[i] {
			t.Fatalf("In+Run out[%d]=%v, runner %v", i, got.Data()[i], want.Data()[i])
		}
	}
	// Forward with the input view itself must detect aliasing, skip the
	// overlapping copy, and still produce the same result. (smallCNN's
	// plan never writes the input arena, so the gather above is intact.)
	got = plan.Forward(plan.In(2))
	for i := range got.Data() {
		if got.Data()[i] != want.Data()[i] {
			t.Fatalf("aliased Forward out[%d]=%v, runner %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestPlanConcurrentCheckoutsOverSharedNet(t *testing.T) {
	// Race-stress (run under -race in CI): many plans over one shared
	// Net forwarding concurrently, with intra-op workers enabled, must
	// neither race on the weights nor corrupt each other's results.
	n := zooNet(8)
	const maxBatch = 3
	ref := n.NewRunner(maxBatch)
	inputs := make([]*tensor.Tensor, maxBatch)
	wants := make([][]float32, maxBatch)
	for b := 1; b <= maxBatch; b++ {
		inputs[b-1] = randInput(n, b, uint64(100+b))
		wants[b-1] = append([]float32(nil), ref.Forward(inputs[b-1]).Data()...)
	}
	const goroutines = 8
	pool := make(chan *Plan, goroutines)
	for i := 0; i < goroutines; i++ {
		pool <- n.CompileOpts(maxBatch, CompileOpts{Workers: 2})
	}
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 30; it++ {
				b := (g+it)%maxBatch + 1
				plan := <-pool
				out := plan.Forward(inputs[b-1])
				for i, v := range out.Data() {
					if v != wants[b-1][i] {
						pool <- plan
						errCh <- fmt.Errorf("goroutine %d iter %d batch %d: out[%d]=%v want %v", g, it, b, i, v, wants[b-1][i])
						return
					}
				}
				pool <- plan
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

func TestPlanBatchValidation(t *testing.T) {
	n := smallCNN(9)
	plan := n.Compile(2)
	for _, fn := range []func(){
		func() { plan.In(0) },
		func() { plan.In(3) },
		func() { plan.Run(3) },
		func() { plan.Forward(randInput(n, 3, 1)) },
		func() { n.Compile(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
	// Wrong per-sample shape with a legal batch.
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape-mismatch panic")
		}
	}()
	plan.Forward(tensor.New(2, 3))
}

// planOnlyLayer is a Layer outside the standard zoo: the planner must
// fall back to its defaults (no fusion, no in-place, lazily grown
// scratch) and still execute it correctly.
type planOnlyLayer struct{ dim int }

func (p *planOnlyLayer) Name() string                                  { return "custom" }
func (p *planOnlyLayer) Kind() string                                  { return "custom" }
func (p *planOnlyLayer) Params() []*Param                              { return nil }
func (p *planOnlyLayer) OutShape(in []int) ([]int, error)              { return in, nil }
func (p *planOnlyLayer) Kernels(in []int, b int, ks []Kernel) []Kernel { return ks }
func (p *planOnlyLayer) Forward(ctx *Ctx, in, out *tensor.Tensor) {
	s := ctx.scratch(p.dim) // grows lazily: planner knows nothing about it
	for i, v := range in.Data() {
		s[i%p.dim] = v
		out.Data()[i] = 2 * v
	}
}

func TestPlanHandlesUnknownLayerKinds(t *testing.T) {
	rng := tensor.NewRNG(10)
	n := NewNet("custom-net", KindDNN, 6)
	n.Add(NewFC("fc1", rng, 6, 6)).
		Add(&planOnlyLayer{dim: 6}).
		Add(NewReLU("relu1")). // relu after a non-fusable layer stays a real step
		Add(NewSoftmax("prob"))
	runner := n.NewRunner(2)
	plan := n.Compile(2)
	in := randInput(n, 2, 11)
	want := runner.Forward(in)
	got := plan.Forward(in)
	for i := range got.Data() {
		if got.Data()[i] != want.Data()[i] {
			t.Fatalf("custom layer out[%d]=%v, runner %v", i, got.Data()[i], want.Data()[i])
		}
	}
}
