package nn

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"djinn/internal/tensor"
)

// Network definition files give DjiNN the property the paper claims
// for it: "supporting more applications simply requires providing
// DjiNN a pretrained neural network model". The format is a simplified
// Caffe-prototxt:
//
//	name: "alexnet"
//	type: CNN
//	input: 3 227 227
//
//	layer conv1 conv { out: 96  kernel: 11  stride: 4 }
//	layer relu1 relu { }
//	layer pool1 maxpool { kernel: 3  stride: 2 }
//	layer fc8   fc   { out: 1000 }
//	layer prob  softmax { }
//
// Comments run from '#' to end of line. Layer kinds and attributes:
//
//	conv     out, kernel, stride (1), pad (0), groups (1)
//	local    out, kernel, stride (1)
//	fc       out
//	maxpool  kernel, stride (kernel), pad (0)
//	avgpool  kernel, stride (kernel), pad (0)
//	lrn      local_size (5), alpha (1e-4), beta (0.75), k (1)
//	dropout  ratio (0.5)
//	relu, sigmoid, tanh, hardtanh, softmax   (no attributes)
//
// ParseNetDef builds the network with deterministic synthetic weights
// from seed; load trained weights afterwards with Net.LoadWeights.

// ParseNetDef reads a network definition and constructs the network.
func ParseNetDef(r io.Reader, seed uint64) (*Net, error) {
	return parseNetDef(r, tensor.NewRNG(seed))
}

// ParseNetDefNoInit reads a network definition and constructs the
// network without synthesising weights: parameter tensors are allocated
// but left zero. Loaders that immediately rebind or overwrite every
// parameter (the model store's mmap path) use this to avoid touching —
// and therefore faulting in — pages that will never be read.
func ParseNetDefNoInit(r io.Reader) (*Net, error) {
	return parseNetDef(r, tensor.NewNoInitRNG(1))
}

func parseNetDef(r io.Reader, rng *tensor.RNG) (*Net, error) {
	sc := bufio.NewScanner(r)
	var (
		name    string
		kind    = KindDNN
		inShape []int
		net     *Net
		lineNo  int
	)
	fail := func(format string, args ...any) (*Net, error) {
		return nil, fmt.Errorf("netdef line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "name:"):
			name = strings.Trim(strings.TrimSpace(strings.TrimPrefix(line, "name:")), `"`)
		case strings.HasPrefix(line, "type:"):
			switch v := strings.TrimSpace(strings.TrimPrefix(line, "type:")); v {
			case "CNN":
				kind = KindCNN
			case "DNN":
				kind = KindDNN
			default:
				return fail("unknown network type %q (want CNN or DNN)", v)
			}
		case strings.HasPrefix(line, "input:"):
			fields := strings.Fields(strings.TrimPrefix(line, "input:"))
			if len(fields) == 0 {
				return fail("input needs at least one dimension")
			}
			inShape = inShape[:0]
			for _, f := range fields {
				d, err := strconv.Atoi(f)
				if err != nil || d <= 0 {
					return fail("bad input dimension %q", f)
				}
				inShape = append(inShape, d)
			}
		case strings.HasPrefix(line, "layer "):
			if net == nil {
				if name == "" || len(inShape) == 0 {
					return fail("layer before name:/input: header")
				}
				net = NewNet(name, kind, inShape...)
			}
			layer, err := parseLayerLine(line, net, rng)
			if err != nil {
				return fail("%v", err)
			}
			if err := addChecked(net, layer); err != nil {
				return fail("%v", err)
			}
		default:
			return fail("unrecognised directive %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if net == nil || len(net.Layers()) == 0 {
		return nil, fmt.Errorf("netdef: no layers defined")
	}
	return net, nil
}

// addChecked converts Net.Add's shape panics into errors for the parser.
func addChecked(net *Net, l Layer) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	net.Add(l)
	return nil
}

type attrs struct {
	m    map[string]string
	used map[string]bool
}

func (a attrs) str(key string) (string, bool) {
	v, ok := a.m[key]
	a.used[key] = true
	return v, ok
}

func (a attrs) intOr(key string, def int) (int, error) {
	v, ok := a.str(key)
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("attribute %s: %v", key, err)
	}
	return n, nil
}

func (a attrs) floatOr(key string, def float64) (float64, error) {
	v, ok := a.str(key)
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("attribute %s: %v", key, err)
	}
	return f, nil
}

func (a attrs) mustInt(key string) (int, error) {
	if _, ok := a.m[key]; !ok {
		return 0, fmt.Errorf("missing required attribute %q", key)
	}
	return a.intOr(key, 0)
}

func (a attrs) unused() []string {
	var out []string
	for k := range a.m {
		if !a.used[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// parseLayerLine parses `layer <name> <kind> { k: v  k: v }`.
func parseLayerLine(line string, net *Net, rng *tensor.RNG) (Layer, error) {
	open := strings.IndexByte(line, '{')
	closeIdx := strings.LastIndexByte(line, '}')
	if open < 0 || closeIdx < open {
		return nil, fmt.Errorf("layer needs a { ... } attribute block")
	}
	head := strings.Fields(line[:open])
	if len(head) != 3 {
		return nil, fmt.Errorf("layer header %q: want `layer <name> <kind>`", strings.TrimSpace(line[:open]))
	}
	name, kind := head[1], head[2]
	a := attrs{m: map[string]string{}, used: map[string]bool{}}
	body := strings.TrimSpace(line[open+1 : closeIdx])
	if body != "" {
		// Attributes are `key: value` pairs; normalise "key:value" so
		// the colon is its own token, then consume triples.
		fields := strings.Fields(strings.ReplaceAll(body, ":", " : "))
		for i := 0; i < len(fields); i += 3 {
			if i+1 >= len(fields) || fields[i+1] != ":" {
				return nil, fmt.Errorf("bad attribute syntax near %q", fields[i])
			}
			if i+2 >= len(fields) {
				return nil, fmt.Errorf("attribute %q missing value", fields[i])
			}
			a.m[fields[i]] = fields[i+2]
		}
	}
	cur := net.OutShape()
	var layer Layer
	var err error
	// Attribute validation shared by the weighted/pooling layers: the
	// constructors panic on non-positive geometry, so the parser must
	// reject it first (found by FuzzParseNetDef).
	positive := func(name string, vals ...int) error {
		for _, v := range vals {
			if v <= 0 {
				return fmt.Errorf("layer %s: attribute values must be positive", name)
			}
		}
		return nil
	}
	switch kind {
	case "conv":
		var out, kernel, stride, pad, groups int
		if out, err = a.mustInt("out"); err == nil {
			if kernel, err = a.mustInt("kernel"); err == nil {
				if stride, err = a.intOr("stride", 1); err == nil {
					if pad, err = a.intOr("pad", 0); err == nil {
						groups, err = a.intOr("groups", 1)
					}
				}
			}
		}
		if err != nil {
			return nil, err
		}
		if err := positive(name, out, kernel, stride, groups, pad+1); err != nil {
			return nil, err
		}
		if len(cur) != 3 {
			return nil, fmt.Errorf("conv layer %s needs a [C,H,W] input, have %v", name, cur)
		}
		if cur[0]%groups != 0 || out%groups != 0 {
			return nil, fmt.Errorf("conv layer %s: channels (%d→%d) not divisible by groups %d", name, cur[0], out, groups)
		}
		layer = NewConv(name, rng, cur[0], out, kernel, ConvOpt{Stride: stride, Pad: pad, Groups: groups})
	case "local":
		var out, kernel, stride int
		if out, err = a.mustInt("out"); err == nil {
			if kernel, err = a.mustInt("kernel"); err == nil {
				stride, err = a.intOr("stride", 1)
			}
		}
		if err != nil {
			return nil, err
		}
		if err := positive(name, out, kernel, stride); err != nil {
			return nil, err
		}
		if len(cur) != 3 {
			return nil, fmt.Errorf("local layer %s needs a [C,H,W] input, have %v", name, cur)
		}
		if kernel > cur[1] || kernel > cur[2] {
			return nil, fmt.Errorf("local layer %s: kernel %d exceeds input %dx%d", name, kernel, cur[1], cur[2])
		}
		layer = NewLocal(name, rng, cur[0], cur[1], cur[2], out, kernel, stride)
	case "fc":
		out, err := a.mustInt("out")
		if err != nil {
			return nil, err
		}
		if err := positive(name, out); err != nil {
			return nil, err
		}
		in := 1
		for _, d := range cur {
			in *= d
		}
		layer = NewFC(name, rng, in, out)
	case "maxpool", "avgpool":
		kernel, err := a.mustInt("kernel")
		if err != nil {
			return nil, err
		}
		stride, err := a.intOr("stride", 0)
		if err != nil {
			return nil, err
		}
		pad, err := a.intOr("pad", 0)
		if err != nil {
			return nil, err
		}
		if err := positive(name, kernel, stride+1, pad+1); err != nil {
			return nil, err
		}
		op := MaxPool
		if kind == "avgpool" {
			op = AvgPool
		}
		layer = NewPool(name, op, kernel, stride, pad)
	case "lrn":
		size, err := a.intOr("local_size", 5)
		if err != nil {
			return nil, err
		}
		alpha, err := a.floatOr("alpha", 1e-4)
		if err != nil {
			return nil, err
		}
		beta, err := a.floatOr("beta", 0.75)
		if err != nil {
			return nil, err
		}
		k, err := a.floatOr("k", 1)
		if err != nil {
			return nil, err
		}
		layer = NewLRN(name, size, float32(alpha), float32(beta), float32(k))
	case "dropout":
		ratio, err := a.floatOr("ratio", 0.5)
		if err != nil {
			return nil, err
		}
		if ratio < 0 || ratio >= 1 {
			return nil, fmt.Errorf("layer %s: dropout ratio %g outside [0,1)", name, ratio)
		}
		layer = NewDropout(name, float32(ratio))
	case "relu":
		layer = NewReLU(name)
	case "sigmoid":
		layer = NewSigmoid(name)
	case "tanh":
		layer = NewTanh(name)
	case "hardtanh":
		layer = NewHardTanh(name)
	case "softmax":
		layer = NewSoftmax(name)
	default:
		return nil, fmt.Errorf("unknown layer kind %q", kind)
	}
	if extra := a.unused(); len(extra) > 0 {
		return nil, fmt.Errorf("layer %s: unknown attributes %v", name, extra)
	}
	return layer, nil
}

// WriteDef exports the network as a definition file that ParseNetDef
// round-trips (weights are not included; use SaveWeights).
func (n *Net) WriteDef(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "name: %q\n", n.name)
	fmt.Fprintf(bw, "type: %s\n", n.kind)
	fmt.Fprintf(bw, "input:")
	for _, d := range n.inShape {
		fmt.Fprintf(bw, " %d", d)
	}
	fmt.Fprintln(bw)
	fmt.Fprintln(bw)
	for _, l := range n.layers {
		switch v := l.(type) {
		case *Conv:
			fmt.Fprintf(bw, "layer %s conv { out: %d  kernel: %d  stride: %d  pad: %d  groups: %d }\n",
				v.Name(), v.OutC, v.KernelH, v.StrideH, v.PadH, v.Groups)
		case *Local:
			fmt.Fprintf(bw, "layer %s local { out: %d  kernel: %d  stride: %d }\n",
				v.Name(), v.OutC, v.Kernel, v.Stride)
		case *FC:
			fmt.Fprintf(bw, "layer %s fc { out: %d }\n", v.Name(), v.Out)
		case *Pool:
			fmt.Fprintf(bw, "layer %s %s { kernel: %d  stride: %d  pad: %d }\n",
				v.Name(), v.Kind(), v.Kernel, v.Stride, v.Pad)
		case *LRN:
			fmt.Fprintf(bw, "layer %s lrn { local_size: %d  alpha: %g  beta: %g  k: %g }\n",
				v.Name(), v.N, v.Alpha, v.Beta, v.K)
		case *Dropout:
			fmt.Fprintf(bw, "layer %s dropout { ratio: %g }\n", v.Name(), v.P)
		case *Activation, *Softmax:
			fmt.Fprintf(bw, "layer %s %s { }\n", l.Name(), l.Kind())
		default:
			return fmt.Errorf("netdef: cannot export layer kind %T", l)
		}
	}
	return bw.Flush()
}
