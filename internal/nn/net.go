package nn

import (
	"fmt"

	"djinn/internal/tensor"
)

// NetKind mirrors Table 1's "Network Type" column.
type NetKind string

// Network types from Table 1.
const (
	KindCNN NetKind = "CNN"
	KindDNN NetKind = "DNN"
)

// Net is a sequential neural network: an input shape and an ordered list
// of layers whose shapes have been validated against each other. Weights
// are read-only after construction/loading, so a single Net may be
// shared by many concurrent Runners — the mechanism behind DjiNN's
// "load the model once, share it read-only across workers" design.
type Net struct {
	name    string
	kind    NetKind
	inShape []int // per-sample
	layers  []Layer
	shapes  [][]int // per-sample shape after each layer
}

// NewNet starts a network with a per-sample input shape, e.g. [3,227,227]
// for AlexNet or [440] for the Kaldi acoustic model.
func NewNet(name string, kind NetKind, inShape ...int) *Net {
	return &Net{
		name:    name,
		kind:    kind,
		inShape: append([]int(nil), inShape...),
	}
}

// Add appends a layer, validating that it accepts the current output
// shape. It returns n to allow chaining.
func (n *Net) Add(l Layer) *Net {
	cur := n.outShape()
	// FC and Softmax want flattened inputs; flatten implicitly, like
	// Caffe's InnerProduct does.
	next, err := l.OutShape(cur)
	if err != nil {
		if flat := []int{sampleElems(cur)}; len(cur) > 1 {
			if next2, err2 := l.OutShape(flat); err2 == nil {
				n.layers = append(n.layers, l)
				n.shapes = append(n.shapes, next2)
				return n
			}
		}
		panic(err)
	}
	n.layers = append(n.layers, l)
	n.shapes = append(n.shapes, next)
	return n
}

func (n *Net) outShape() []int {
	if len(n.shapes) == 0 {
		return n.inShape
	}
	return n.shapes[len(n.shapes)-1]
}

// Name returns the network's name (e.g. "alexnet").
func (n *Net) Name() string { return n.name }

// Kind returns CNN or DNN, per Table 1.
func (n *Net) Kind() NetKind { return n.kind }

// InShape returns the per-sample input shape.
func (n *Net) InShape() []int { return n.inShape }

// OutShape returns the per-sample output shape.
func (n *Net) OutShape() []int { return n.outShape() }

// Layers returns the layer list (read-only).
func (n *Net) Layers() []Layer { return n.layers }

// Shapes returns a copy of the per-sample output shape after each layer
// (the shapes validated by Add, with any implicit flattening applied).
func (n *Net) Shapes() [][]int {
	out := make([][]int, len(n.shapes))
	for i, s := range n.shapes {
		out[i] = append([]int(nil), s...)
	}
	return out
}

// LayerCount returns the number of compute layers the paper's Table 1
// counts: everything except the terminal softmax (Caffe's "prob" layer,
// which the paper's layer counts exclude).
func (n *Net) LayerCount() int {
	cnt := len(n.layers)
	if cnt > 0 && n.layers[cnt-1].Kind() == "softmax" {
		cnt--
	}
	return cnt
}

// Params returns all learnable parameters in layer order.
func (n *Net) Params() []*Param {
	var ps []*Param
	for _, l := range n.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ParamCount returns the total number of learnable scalar parameters
// (Table 1's "Parameters" column).
func (n *Net) ParamCount() int {
	total := 0
	for _, p := range n.Params() {
		total += p.W.Len()
	}
	return total
}

// WeightBytes returns the in-memory model size in bytes — what DjiNN
// keeps resident per application, and what must fit in the K40's 12 GB.
func (n *Net) WeightBytes() int64 { return int64(4 * n.ParamCount()) }

// Kernels returns the forward-pass kernel descriptors for the whole
// network at the given batch size.
func (n *Net) Kernels(batch int) []Kernel {
	var ks []Kernel
	cur := n.inShape
	for i, l := range n.layers {
		ks = l.Kernels(cur, batch, ks)
		cur = n.shapes[i]
	}
	return ks
}

// FLOPs returns the total forward-pass floating point operations at the
// given batch size.
func (n *Net) FLOPs(batch int) float64 {
	var total float64
	for _, k := range n.Kernels(batch) {
		total += k.FLOPs
	}
	return total
}

// Runner executes forward (and optionally backward) passes over one Net
// with privately-owned activation buffers. One Runner per worker thread;
// the Net's weights are shared. It is a thin wrapper over a Retain-mode
// execution plan (see Plan): every layer keeps its own activation buffer
// so Backward can consume them, and all batch-limited views are
// precomputed at construction instead of allocated per Forward call.
type Runner struct {
	plan  *Plan
	grads []*tensor.Tensor // allocated on demand for training
}

// NewRunner creates an execution context for net able to process up to
// maxBatch samples per call.
func (n *Net) NewRunner(maxBatch int) *Runner {
	if maxBatch <= 0 {
		panic("nn: NewRunner: maxBatch must be positive")
	}
	return &Runner{plan: n.CompileOpts(maxBatch, CompileOpts{Retain: true})}
}

// Net returns the network this runner executes.
func (r *Runner) Net() *Net { return r.plan.net }

// MaxBatch returns the batch capacity.
func (r *Runner) MaxBatch() int { return r.plan.maxBatch }

// SetTrain toggles training mode (dropout active).
func (r *Runner) SetTrain(train bool) { r.plan.ctx.Train = train }

// Forward runs the network on input, whose leading dimension is the
// batch (1 ≤ batch ≤ maxBatch), and returns the output tensor
// [batch, outShape...]. The returned tensor is owned by the runner and
// valid until the next Forward call.
func (r *Runner) Forward(input *tensor.Tensor) *tensor.Tensor {
	return r.plan.Forward(input)
}

// view returns a batch-limited window over a max-batch activation buffer.
func view(t *tensor.Tensor, batch int) *tensor.Tensor {
	shape := t.Shape()
	per := 1
	for _, d := range shape[1:] {
		per *= d
	}
	newShape := append([]int{batch}, shape[1:]...)
	return tensor.FromSlice(t.Data()[:batch*per], newShape...)
}

// Backward backpropagates dOut (gradient w.r.t. the network output for
// the batch of the last Forward call) through every layer, accumulating
// parameter gradients. It panics if any layer does not support
// backpropagation.
func (r *Runner) Backward(dOut *tensor.Tensor) {
	net := r.plan.net
	batch := dOut.Dim(0)
	if r.grads == nil {
		r.grads = make([]*tensor.Tensor, len(net.layers)+1)
		r.grads[0] = tensor.New(append([]int{r.plan.maxBatch}, net.inShape...)...)
		for i := range net.layers {
			r.grads[i+1] = tensor.New(append([]int{r.plan.maxBatch}, net.shapes[i]...)...)
		}
	}
	cur := view(r.grads[len(net.layers)], batch)
	copy(cur.Data(), dOut.Data())
	acts := r.plan.views[batch-1] // retain mode: one buffer per activation
	for i := len(net.layers) - 1; i >= 0; i-- {
		bl, ok := net.layers[i].(BackLayer)
		if !ok {
			panic(fmt.Sprintf("nn: layer %s (%s) does not support backward", net.layers[i].Name(), net.layers[i].Kind()))
		}
		din := view(r.grads[i], batch)
		bl.Backward(r.plan.ctx, acts[i], acts[i+1], cur, din)
		cur = din
	}
}

// InputGrad returns the gradient w.r.t. the input from the last
// Backward call (used by tests).
func (r *Runner) InputGrad() *tensor.Tensor { return r.grads[0] }

// Summary renders a one-line-per-layer description of the network.
func (n *Net) Summary() string {
	s := fmt.Sprintf("%s (%s): input %v, %d layers, %d params (%.1f MB)\n",
		n.name, n.kind, n.inShape, n.LayerCount(), n.ParamCount(), float64(n.WeightBytes())/(1<<20))
	cur := n.inShape
	for i, l := range n.layers {
		np := 0
		for _, p := range l.Params() {
			np += p.W.Len()
		}
		s += fmt.Sprintf("  %-14s %-9s %v -> %v", l.Name(), l.Kind(), cur, n.shapes[i])
		if np > 0 {
			s += fmt.Sprintf("  (%d params)", np)
		}
		s += "\n"
		cur = n.shapes[i]
	}
	return s
}
