package nn

import (
	"fmt"
	"math"

	"djinn/internal/tensor"
)

// SGD is a plain stochastic-gradient-descent optimiser with momentum
// and L2 weight decay — the optimiser Caffe uses for the Tonic networks.
// Training is not on the paper's serving critical path, but having it
// lets tests and examples demonstrate the engine end-to-end (e.g.
// learning the digit-recognition task from scratch).
type SGD struct {
	LR       float32
	Momentum float32
	Decay    float32
	velocity map[*Param][]float32
}

// NewSGD creates an optimiser.
func NewSGD(lr, momentum, decay float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, Decay: decay, velocity: map[*Param][]float32{}}
}

// Step applies accumulated gradients to the parameters and zeroes them.
// scale is typically 1/batchSize.
func (s *SGD) Step(params []*Param, scale float32) {
	for _, p := range params {
		if p.Grad == nil {
			continue
		}
		g := p.Grad.Data()
		w := p.W.Data()
		v := s.velocity[p]
		if v == nil {
			v = make([]float32, len(w))
			s.velocity[p] = v
		}
		for i := range w {
			grad := g[i]*scale + s.Decay*w[i]
			v[i] = s.Momentum*v[i] - s.LR*grad
			w[i] += v[i]
			g[i] = 0
		}
	}
}

// NLLLoss computes the mean negative-log-likelihood of the labels under
// the network's probability outputs (the softmax layer must be the final
// layer) and writes the gradient w.r.t. those probabilities into dProbs.
func NLLLoss(probs *tensor.Tensor, labels []int, dProbs *tensor.Tensor) float64 {
	batch, n := probs.Dim(0), probs.Dim(1)
	if len(labels) != batch {
		panic(fmt.Sprintf("nn: NLLLoss: %d labels for batch %d", len(labels), batch))
	}
	dProbs.Zero()
	var loss float64
	const eps = 1e-10
	for b, lab := range labels {
		if lab < 0 || lab >= n {
			panic(fmt.Sprintf("nn: NLLLoss: label %d out of range [0,%d)", lab, n))
		}
		p := probs.Data()[b*n+lab]
		loss += -math.Log(float64(p) + eps)
		dProbs.Data()[b*n+lab] = -1 / (p + eps) / float32(batch)
	}
	return loss / float64(batch)
}

// Accuracy returns the fraction of rows whose argmax equals the label.
func Accuracy(probs *tensor.Tensor, labels []int) float64 {
	batch, n := probs.Dim(0), probs.Dim(1)
	correct := 0
	for b, lab := range labels {
		if tensor.Argmax(probs.Data()[b*n:(b+1)*n]) == lab {
			correct++
		}
	}
	return float64(correct) / float64(batch)
}

// TrainBatch runs one forward/backward/update step on a labelled batch
// and returns the batch loss. The runner must wrap a network whose final
// layer is softmax.
func TrainBatch(r *Runner, opt *SGD, input *tensor.Tensor, labels []int) float64 {
	r.SetTrain(true)
	defer r.SetTrain(false)
	probs := r.Forward(input)
	dProbs := tensor.New(probs.Shape()...)
	loss := NLLLoss(probs, labels, dProbs)
	r.Backward(dProbs)
	opt.Step(r.Net().Params(), 1)
	return loss
}
