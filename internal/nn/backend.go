package nn

import (
	"fmt"
	"sync"

	"djinn/internal/tensor"
)

// This file is the precision seam between the layer zoo and the kernel
// backends in internal/tensor. A plan compiled at a non-reference
// Precision installs an exec closure on each conv/FC step; Run routes
// through it instead of the layer's Forward. Everything a closure needs
// beyond its inputs — packed weight panels, quantized weights with their
// zero-point sums, per-call packing scratch — is either cached on the
// layer (weight-derived, shared by every plan over the Net) or owned by
// the plan (activation-derived, private per plan), so the steady-state
// forward pass stays allocation-free.

// fcKernelCache holds the weight-derived operands of the FC backends.
// They depend only on the layer's (frozen, inference-time) weights, so
// they are built once under sync.Once and shared by all plans — the same
// load-once economics as the weights themselves.
type fcKernelCache struct {
	packedOnce sync.Once
	packed     []float32 // W^T in K×NR panels (PackBT), k=In, n=Out

	int8Once sync.Once
	int8BP   []uint8 // quantized W^T panels, offset encoding
	int8Col  []int32 // per-output-column signed weight sums
	int8W    float32 // weight scale
}

// convKernelCache holds the quantized weight form of a convolution: the
// per-group filter matrices packed as int8 lane-pair A operands. The
// float32-packed backend needs no weight cache — GemmPacked reads A
// unpacked and tiles it on the fly.
type convKernelCache struct {
	int8Once sync.Once
	int8PA   []uint64 // Groups × paStride lane-pair words
	int8Row  []int32  // per-output-channel signed weight sums (len OutC)
	int8W    float32  // weight scale
	paStride int      // PackedAInt8Len(gOutC, kTaps)
}

// packedWeights returns the layer's FC weight matrix packed for the
// float32 panel kernel, building it on first use.
func (f *FC) packedWeights() []float32 {
	f.kern.packedOnce.Do(func() {
		bp := make([]float32, tensor.PackedBLen(f.In, f.Out))
		tensor.PackBT(f.In, f.Out, f.Weight.W.Data(), bp)
		f.kern.packed = bp
	})
	return f.kern.packed
}

// quantWeight quantizes a weight parameter, honouring a pre-quantized
// form loaded from a model file when present. Both paths run the same
// QuantizeSymmetric, so stored and on-the-fly weights are bit-identical.
func quantWeight(p *Param) ([]int8, float32) {
	if q := p.Q; q != nil {
		return q.Data, q.Scale
	}
	qw := make([]int8, p.W.Len())
	return qw, tensor.QuantizeSymmetric(p.W.Data(), qw)
}

// int8Weights returns the FC weight matrix quantized and packed for the
// int8 kernel, building it on first use.
func (f *FC) int8Weights() *fcKernelCache {
	f.kern.int8Once.Do(func() {
		qt, scale := quantWeight(f.Weight)
		bp := make([]uint8, tensor.PackedBInt8Len(f.In, f.Out))
		colSum := make([]int32, f.Out)
		tensor.PackBTInt8(f.In, f.Out, qt, bp, colSum)
		f.kern.int8BP, f.kern.int8Col, f.kern.int8W = bp, colSum, scale
	})
	return &f.kern
}

// int8Weights returns the convolution's filter groups quantized and
// packed for the int8 kernel, building them on first use.
func (c *Conv) int8Weights() *convKernelCache {
	c.kern.int8Once.Do(func() {
		gOutC := c.OutC / c.Groups
		kTaps := (c.InC / c.Groups) * c.KernelH * c.KernelW
		qw, scale := quantWeight(c.Weight)
		stride := tensor.PackedAInt8Len(gOutC, kTaps)
		pa := make([]uint64, c.Groups*stride)
		rowSum := make([]int32, c.OutC)
		for grp := 0; grp < c.Groups; grp++ {
			tensor.PackAInt8(gOutC, kTaps, qw[grp*gOutC*kTaps:(grp+1)*gOutC*kTaps],
				pa[grp*stride:(grp+1)*stride], rowSum[grp*gOutC:(grp+1)*gOutC])
		}
		c.kern.int8PA, c.kern.int8Row, c.kern.int8W, c.kern.paStride = pa, rowSum, scale, stride
	})
	return &c.kern
}

// GemmWeightNames returns the names of the parameters an Int8 plan
// quantizes: the weight matrices of conv and FC layers. Model exporters
// use it to decide which sections get a quantized twin on disk; biases
// and every other layer kind stay float32.
func (n *Net) GemmWeightNames() map[string]bool {
	names := make(map[string]bool)
	for _, l := range n.layers {
		switch t := l.(type) {
		case *Conv:
			names[t.Weight.Name] = true
		case *FC:
			names[t.Weight.Name] = true
		}
	}
	return names
}

// CheckPrecision reports whether the net can compile at prec. The only
// backend with a structural bound is Int8: its dual-lane kernel requires
// every GEMM reduction (conv filter taps, FC fan-in) to stay under
// tensor.MaxQuantK so the 32-bit accumulator lanes cannot overflow.
// Callers that accept a precision from configuration (the service's
// AppConfig) should check here and return the error instead of letting
// Compile panic.
func (n *Net) CheckPrecision(prec Precision) error {
	if prec != Int8 {
		return nil
	}
	for _, l := range n.layers {
		switch t := l.(type) {
		case *Conv:
			kTaps := (t.InC / t.Groups) * t.KernelH * t.KernelW
			if kTaps > tensor.MaxQuantK {
				return fmt.Errorf("nn: conv %s reduction %d exceeds int8 kernel bound %d", t.name, kTaps, tensor.MaxQuantK)
			}
		case *FC:
			if t.In > tensor.MaxQuantK {
				return fmt.Errorf("nn: fc %s reduction %d exceeds int8 kernel bound %d", t.name, t.In, tensor.MaxQuantK)
			}
		}
	}
	return nil
}

// buildBackend sizes the plan's packing scratch and installs exec
// closures on every conv/FC step for a non-reference precision. Weight
// caches are resolved here, at Compile time, so the first Run pays
// nothing extra.
func (p *Plan) buildBackend(prec Precision) {
	if err := p.net.CheckPrecision(prec); err != nil {
		panic("nn: Compile: " + err.Error())
	}
	// Activation-derived scratch, sized over all routed layers up front.
	var packedB, int8B, int8BCols, int8A, int8ARows int
	for i, l := range p.net.layers {
		switch t := l.(type) {
		case *Conv:
			kTaps := (t.InC / t.Groups) * t.KernelH * t.KernelW
			outSpatial := p.net.shapes[i][1] * p.net.shapes[i][2]
			packedB = maxInt(packedB, tensor.PackedBLen(kTaps, outSpatial))
			int8B = maxInt(int8B, tensor.PackedBInt8Len(kTaps, outSpatial))
			int8BCols = maxInt(int8BCols, outSpatial)
		case *FC:
			int8A = maxInt(int8A, tensor.PackedAInt8Len(p.maxBatch, t.In))
			int8ARows = maxInt(int8ARows, p.maxBatch)
		}
	}
	switch prec {
	case Float32Packed:
		p.packB = make([]float32, packedB)
	case Int8:
		p.qB = make([]uint8, int8B)
		p.qBSum = make([]int32, int8BCols)
		p.qA = make([]uint64, int8A)
		p.qASum = make([]int32, int8ARows)
	}

	for i := range p.steps {
		st := &p.steps[i]
		if st.skip {
			continue
		}
		fuse := st.fuse != nil
		switch l := st.layer.(type) {
		case *FC:
			if prec == Int8 {
				st.exec = l.int8Exec(p, fuse)
			} else {
				st.exec = l.packedExec(p, fuse)
			}
		case *Conv:
			if prec == Int8 {
				st.exec = l.int8Exec(p, fuse)
			} else {
				st.exec = l.packedExec(p, fuse)
			}
		}
	}
}

// packedExec builds the float32 panel-kernel step for an FC layer:
// out [B,Out] = in [B,In] × packed(W^T), bias (and the fused ReLU) in
// the store epilogue. The weight panels are packed once per layer.
func (f *FC) packedExec(p *Plan, fuse bool) func(in, out *tensor.Tensor) {
	bp := f.packedWeights()
	ep := tensor.EpBiasCol
	if fuse {
		ep = tensor.EpBiasColReLU
	}
	return func(in, out *tensor.Tensor) {
		batch := in.Dim(0)
		tensor.GemmPackedParallel(p.ctx.workers(), batch, f.Out, f.In,
			in.Data()[:batch*f.In], bp, out.Data()[:batch*f.Out], ep, f.Bias.W.Data())
	}
}

// int8Exec builds the quantized step for an FC layer: the activation
// batch is quantized with a per-call dynamic scale and packed into the
// plan's lane-pair scratch, then multiplied against the layer's cached
// quantized weight panels; dequantize+bias(+ReLU) fuse into the store.
func (f *FC) int8Exec(p *Plan, fuse bool) func(in, out *tensor.Tensor) {
	kc := f.int8Weights()
	ep := tensor.EpBiasCol
	if fuse {
		ep = tensor.EpBiasColReLU
	}
	return func(in, out *tensor.Tensor) {
		batch := in.Dim(0)
		inD := in.Data()[:batch*f.In]
		scaleA := tensor.QuantScale(tensor.MaxAbs(inD))
		pa := p.qA[:tensor.PackedAInt8Len(batch, f.In)]
		rowSum := p.qASum[:batch]
		tensor.QuantizePackAInt8(batch, f.In, inD, scaleA, pa, rowSum)
		tensor.GemmPackedInt8Parallel(p.ctx.workers(), batch, f.Out, f.In,
			pa, rowSum, kc.int8BP, kc.int8Col, out.Data()[:batch*f.Out],
			scaleA*kc.int8W, ep, f.Bias.W.Data())
	}
}

// packedExec builds the float32 panel-kernel step for a convolution:
// per sample and group, im2col into the shared column scratch, pack the
// columns into the plan's panel scratch, and run the packed kernel with
// the group's bias rows (and fused ReLU) in the epilogue. Outputs are
// bit-identical to the reference path — the packed kernel accumulates in
// the same ascending-k order as the blocked GEMM.
func (c *Conv) packedExec(p *Plan, fuse bool) func(in, out *tensor.Tensor) {
	ep := tensor.EpBiasRow
	if fuse {
		ep = tensor.EpBiasRowReLU
	}
	return func(in, out *tensor.Tensor) {
		batch := in.Dim(0)
		inShape := in.Shape()[1:]
		g := c.geom(inShape)
		outSpatial := g.OutH() * g.OutW()
		gInC := c.InC / c.Groups
		gOutC := c.OutC / c.Groups
		kTaps := gInC * c.KernelH * c.KernelW
		groupGeom := g
		groupGeom.Channels = gInC
		col := p.ctx.scratch(kTaps * outSpatial)
		bp := p.packB[:tensor.PackedBLen(kTaps, outSpatial)]
		w := c.Weight.W.Data()
		bias := c.Bias.W.Data()
		inData, outData := in.Data(), out.Data()
		inPer, outPer := sampleElems(inShape), c.OutC*outSpatial
		workers := p.ctx.workers()
		for b := 0; b < batch; b++ {
			img := inData[b*inPer : (b+1)*inPer]
			dst := outData[b*outPer : (b+1)*outPer]
			for grp := 0; grp < c.Groups; grp++ {
				tensor.Im2col(groupGeom, img[grp*gInC*g.Height*g.Width:(grp+1)*gInC*g.Height*g.Width], col)
				tensor.PackB(kTaps, outSpatial, col, bp)
				tensor.GemmPackedParallel(workers, gOutC, outSpatial, kTaps,
					w[grp*gOutC*kTaps:(grp+1)*gOutC*kTaps], bp,
					dst[grp*gOutC*outSpatial:(grp+1)*gOutC*outSpatial],
					ep, bias[grp*gOutC:(grp+1)*gOutC])
			}
		}
	}
}

// int8Exec builds the quantized step for a convolution: the im2col
// column matrix is quantized per call (dynamic activation scale from the
// group's input image — every column element is an image element or a
// padding zero, so the image max-abs covers it) and packed into the
// plan's offset-panel scratch, then multiplied against the group's
// cached quantized filters.
func (c *Conv) int8Exec(p *Plan, fuse bool) func(in, out *tensor.Tensor) {
	kc := c.int8Weights()
	ep := tensor.EpBiasRow
	if fuse {
		ep = tensor.EpBiasRowReLU
	}
	return func(in, out *tensor.Tensor) {
		batch := in.Dim(0)
		inShape := in.Shape()[1:]
		g := c.geom(inShape)
		outSpatial := g.OutH() * g.OutW()
		gInC := c.InC / c.Groups
		gOutC := c.OutC / c.Groups
		kTaps := gInC * c.KernelH * c.KernelW
		groupGeom := g
		groupGeom.Channels = gInC
		col := p.ctx.scratch(kTaps * outSpatial)
		bp := p.qB[:tensor.PackedBInt8Len(kTaps, outSpatial)]
		colSum := p.qBSum[:outSpatial]
		bias := c.Bias.W.Data()
		inData, outData := in.Data(), out.Data()
		inPer, outPer := sampleElems(inShape), c.OutC*outSpatial
		workers := p.ctx.workers()
		for b := 0; b < batch; b++ {
			img := inData[b*inPer : (b+1)*inPer]
			dst := outData[b*outPer : (b+1)*outPer]
			for grp := 0; grp < c.Groups; grp++ {
				imgG := img[grp*gInC*g.Height*g.Width : (grp+1)*gInC*g.Height*g.Width]
				scaleA := tensor.QuantScale(tensor.MaxAbs(imgG))
				tensor.Im2col(groupGeom, imgG, col)
				tensor.QuantizePackBInt8(kTaps, outSpatial, col, scaleA, bp, colSum)
				tensor.GemmPackedInt8Parallel(workers, gOutC, outSpatial, kTaps,
					kc.int8PA[grp*kc.paStride:(grp+1)*kc.paStride], kc.int8Row[grp*gOutC:(grp+1)*gOutC],
					bp, colSum, dst[grp*gOutC*outSpatial:(grp+1)*gOutC*outSpatial],
					scaleA*kc.int8W, ep, bias[grp*gOutC:(grp+1)*gOutC])
			}
		}
	}
}
