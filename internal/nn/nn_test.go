package nn

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"djinn/internal/tensor"
)

func smallCNN(seed uint64) *Net {
	rng := tensor.NewRNG(seed)
	n := NewNet("small-cnn", KindCNN, 1, 8, 8)
	n.Add(NewConv("conv1", rng, 1, 4, 3, ConvOpt{Pad: 1})).
		Add(NewReLU("relu1")).
		Add(NewPool("pool1", MaxPool, 2, 2, 0)).
		Add(NewFC("fc1", rng, 4*4*4, 10)).
		Add(NewSoftmax("prob"))
	return n
}

func TestNetShapePropagation(t *testing.T) {
	n := smallCNN(1)
	want := [][]int{{4, 8, 8}, {4, 8, 8}, {4, 4, 4}, {10}, {10}}
	for i, s := range n.shapes {
		if !shapeEq(s, want[i]) {
			t.Fatalf("layer %d shape %v, want %v", i, s, want[i])
		}
	}
	if n.LayerCount() != 4 {
		t.Fatalf("LayerCount=%d, want 4 (softmax excluded)", n.LayerCount())
	}
}

func TestNetAddRejectsBadShapes(t *testing.T) {
	rng := tensor.NewRNG(1)
	n := NewNet("bad", KindCNN, 1, 8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on channel mismatch")
		}
	}()
	n.Add(NewConv("conv1", rng, 3, 4, 3, ConvOpt{}))
}

func TestForwardOutputIsDistribution(t *testing.T) {
	n := smallCNN(2)
	r := n.NewRunner(4)
	rng := tensor.NewRNG(3)
	in := tensor.New(3, 1, 8, 8)
	rng.FillNorm(in.Data(), 0, 1)
	out := r.Forward(in)
	if out.Dim(0) != 3 || out.Dim(1) != 10 {
		t.Fatalf("output shape %v", out.Shape())
	}
	for b := 0; b < 3; b++ {
		var s float64
		for j := 0; j < 10; j++ {
			s += float64(out.At(b, j))
		}
		if math.Abs(s-1) > 1e-4 {
			t.Fatalf("row %d sums to %v", b, s)
		}
	}
}

func TestForwardDeterministicAndBatchInvariant(t *testing.T) {
	// Property: processing samples in a batch must produce the same
	// outputs as processing them one at a time — the correctness
	// precondition for DjiNN's query batching (Section 5.1).
	n := smallCNN(4)
	rng := tensor.NewRNG(5)
	batch := 5
	in := tensor.New(batch, 1, 8, 8)
	rng.FillNorm(in.Data(), 0, 1)
	rBatch := n.NewRunner(batch)
	outBatch := rBatch.Forward(in).Clone()
	rOne := n.NewRunner(1)
	for b := 0; b < batch; b++ {
		single := tensor.FromSlice(in.Data()[b*64:(b+1)*64], 1, 1, 8, 8)
		out := rOne.Forward(single)
		for j := 0; j < 10; j++ {
			got := out.At(0, j)
			want := outBatch.At(b, j)
			if math.Abs(float64(got-want)) > 1e-5 {
				t.Fatalf("sample %d class %d: batched %v vs single %v", b, j, want, got)
			}
		}
	}
}

func TestRunnerConcurrentForward(t *testing.T) {
	// Many runners over one shared net must not race (DjiNN's worker
	// model). Run with -race to exercise this.
	n := smallCNN(6)
	rng := tensor.NewRNG(7)
	in := tensor.New(1, 1, 8, 8)
	rng.FillNorm(in.Data(), 0, 1)
	ref := n.NewRunner(1).Forward(in).Clone()
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := n.NewRunner(1)
			for i := 0; i < 20; i++ {
				out := r.Forward(in)
				for j := 0; j < 10; j++ {
					if out.At(0, j) != ref.At(0, j) {
						errs <- "concurrent forward diverged"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestConvGroups(t *testing.T) {
	// With groups=2, the first half of output channels must not depend
	// on the second half of input channels.
	rng := tensor.NewRNG(8)
	conv := NewConv("g", rng, 4, 4, 3, ConvOpt{Pad: 1, Groups: 2})
	ctx := NewCtx(0)
	in := tensor.New(1, 4, 5, 5)
	rng.FillNorm(in.Data(), 0, 1)
	out1 := tensor.New(1, 4, 5, 5)
	conv.Forward(ctx, in, out1)
	// Perturb the second input group; first output group must not change.
	in2 := in.Clone()
	for i := 2 * 25; i < 4*25; i++ {
		in2.Data()[i] += 10
	}
	out2 := tensor.New(1, 4, 5, 5)
	conv.Forward(ctx, in2, out2)
	for i := 0; i < 2*25; i++ {
		if out1.Data()[i] != out2.Data()[i] {
			t.Fatal("group 1 output depends on group 2 input")
		}
	}
	changed := false
	for i := 2 * 25; i < 4*25; i++ {
		if out1.Data()[i] != out2.Data()[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("group 2 output ignored its input")
	}
}

func TestConvKnownValues(t *testing.T) {
	// 1x1 input channel, 2x2 image, identity-ish kernel.
	rng := tensor.NewRNG(9)
	conv := NewConv("k", rng, 1, 1, 2, ConvOpt{})
	copy(conv.Weight.W.Data(), []float32{1, 2, 3, 4})
	conv.Bias.W.Data()[0] = 0.5
	ctx := NewCtx(0)
	in := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	out := tensor.New(1, 1, 1, 1)
	conv.Forward(ctx, in, out)
	// 1*1+2*2+3*3+4*4 + 0.5 = 30.5
	if got := out.At(0, 0, 0, 0); got != 30.5 {
		t.Fatalf("conv output %v, want 30.5", got)
	}
}

func TestMaxPoolKnownValues(t *testing.T) {
	p := NewPool("p", MaxPool, 2, 2, 0)
	ctx := NewCtx(0)
	in := tensor.FromSlice([]float32{
		1, 5, 2, 0,
		3, 4, 1, 1,
		0, 0, 9, 8,
		0, 0, 7, 6,
	}, 1, 1, 4, 4)
	out := tensor.New(1, 1, 2, 2)
	p.Forward(ctx, in, out)
	want := []float32{5, 2, 0, 9}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("pool out %v, want %v", out.Data(), want)
		}
	}
}

func TestAvgPool(t *testing.T) {
	p := NewPool("p", AvgPool, 2, 2, 0)
	ctx := NewCtx(0)
	in := tensor.FromSlice([]float32{1, 3, 5, 7}, 1, 1, 2, 2)
	out := tensor.New(1, 1, 1, 1)
	p.Forward(ctx, in, out)
	if out.Data()[0] != 4 {
		t.Fatalf("avg pool %v, want 4", out.Data()[0])
	}
}

func TestLRNNormalises(t *testing.T) {
	l := NewLRN("n", 5, 1, 0.75, 1) // big alpha to make the effect visible
	ctx := NewCtx(0)
	in := tensor.New(1, 5, 1, 1)
	in.Fill(2)
	out := tensor.New(1, 5, 1, 1)
	l.Forward(ctx, in, out)
	// Middle channel window covers all 5 channels: scale = 1 + (1/5)*20 = 5.
	want := 2 / float32(math.Pow(5, 0.75))
	if math.Abs(float64(out.At(0, 2, 0, 0)-want)) > 1e-5 {
		t.Fatalf("lrn %v, want %v", out.At(0, 2, 0, 0), want)
	}
	// Edge channels see fewer neighbours, so are normalised less.
	if out.At(0, 0, 0, 0) <= out.At(0, 2, 0, 0) {
		t.Fatal("edge channel should be normalised less than centre")
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	d := NewDropout("d", 0.5)
	in := tensor.New(1, 1000)
	in.Fill(1)
	out := tensor.New(1, 1000)
	evalCtx := NewCtx(1)
	d.Forward(evalCtx, in, out)
	for _, v := range out.Data() {
		if v != 1 {
			t.Fatal("dropout must be identity at inference")
		}
	}
	trainCtx := NewCtx(1)
	trainCtx.Train = true
	d.Forward(trainCtx, in, out)
	zeros := 0
	for _, v := range out.Data() {
		switch v {
		case 0:
			zeros++
		case 2:
		default:
			t.Fatalf("train-mode dropout produced %v, want 0 or 2", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropped %d of 1000 at p=0.5", zeros)
	}
}

func TestLocalLayerUntiedWeights(t *testing.T) {
	rng := tensor.NewRNG(10)
	l := NewLocal("loc", rng, 1, 4, 4, 2, 3, 1)
	if got, want := l.Weight.W.Len(), 2*2*2*9; got != want {
		t.Fatalf("local weights %d, want %d", got, want)
	}
	// Same input patch at different locations must (generically) give
	// different outputs because the weights are untied.
	ctx := NewCtx(0)
	in := tensor.New(1, 1, 4, 4)
	in.Fill(1)
	out := tensor.New(1, 2, 2, 2)
	l.Forward(ctx, in, out)
	if out.At(0, 0, 0, 0) == out.At(0, 0, 0, 1) {
		t.Fatal("untied weights should give different outputs at different locations")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	n1 := smallCNN(11)
	var buf bytes.Buffer
	if err := n1.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	n2 := smallCNN(999) // different init
	if err := n2.LoadWeights(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(12)
	in := tensor.New(1, 1, 8, 8)
	rng.FillNorm(in.Data(), 0, 1)
	o1 := n1.NewRunner(1).Forward(in).Clone()
	o2 := n2.NewRunner(1).Forward(in)
	for i := range o1.Data() {
		if o1.Data()[i] != o2.Data()[i] {
			t.Fatal("loaded net differs from saved net")
		}
	}
}

func TestLoadWeightsRejectsWrongNet(t *testing.T) {
	n1 := smallCNN(13)
	var buf bytes.Buffer
	if err := n1.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(14)
	other := NewNet("other", KindDNN, 64)
	other.Add(NewFC("fc1", rng, 64, 10)).Add(NewSoftmax("prob"))
	if err := other.LoadWeights(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected error loading mismatched model")
	}
}

func TestKernelAccounting(t *testing.T) {
	rng := tensor.NewRNG(15)
	n := NewNet("acct", KindDNN, 100)
	n.Add(NewFC("fc1", rng, 100, 50)).Add(NewSoftmax("prob"))
	ks := n.Kernels(4)
	// fc gemm + fc bias + softmax = 3 kernels.
	if len(ks) != 3 {
		t.Fatalf("%d kernels, want 3", len(ks))
	}
	gemm := ks[0]
	if gemm.FLOPs != 2*100*50*4 {
		t.Fatalf("gemm flops %v", gemm.FLOPs)
	}
	if gemm.Threads != GemmThreads(50, 4) {
		t.Fatalf("gemm threads %v, want %v", gemm.Threads, GemmThreads(50, 4))
	}
	// Weight bytes appear once regardless of batch.
	ks1 := n.Kernels(1)
	w1 := ks1[0].BytesIn - 4*100 // subtract activations
	w4 := gemm.BytesIn - 4*100*4
	if w1 != w4 || w1 != 4*100*50 {
		t.Fatalf("weight bytes w1=%v w4=%v", w1, w4)
	}
}

func TestParamCountAndWeightBytes(t *testing.T) {
	n := smallCNN(16)
	// conv1: 4*1*3*3 + 4 = 40; fc1: 64*10 + 10 = 650.
	if got := n.ParamCount(); got != 690 {
		t.Fatalf("ParamCount=%d, want 690", got)
	}
	if n.WeightBytes() != 4*690 {
		t.Fatalf("WeightBytes=%d", n.WeightBytes())
	}
}

func TestFLOPsScaleWithBatch(t *testing.T) {
	n := smallCNN(17)
	f1 := n.FLOPs(1)
	f8 := n.FLOPs(8)
	if math.Abs(f8/f1-8) > 0.01 {
		t.Fatalf("FLOPs should scale linearly with batch: %v vs %v", f1, f8)
	}
}

func TestSummaryMentionsEveryLayer(t *testing.T) {
	n := smallCNN(18)
	s := n.Summary()
	for _, name := range []string{"conv1", "relu1", "pool1", "fc1", "prob"} {
		if !bytes.Contains([]byte(s), []byte(name)) {
			t.Fatalf("summary missing %s:\n%s", name, s)
		}
	}
}
