package nn

import (
	"fmt"

	"djinn/internal/tensor"
)

// Plan is a compile-once execution plan for one Net: everything the
// per-call forward path used to compute or allocate — batch-limited
// activation views, im2col scratch, buffer wiring — is precomputed at
// Compile time, so the steady-state forward pass performs zero heap
// allocations. The plan also rewires execution for inference:
//
//   - Elementwise layers (ReLU, sigmoid, tanh, hardtanh, dropout,
//     softmax) run in place over their input buffer, and the remaining
//     layers ping-pong between two shared arenas, so a plan holds two
//     working activation buffers instead of one per layer.
//   - A conv or FC layer immediately followed by ReLU runs with the
//     activation fused into its bias epilogue, eliminating the ReLU
//     layer's full pass over the output.
//   - GEMM-backed layers split their output rows across Workers
//     goroutines (see Ctx.Workers).
//
// All three transformations preserve the serial per-element operation
// order, so plan outputs are bit-identical to the seed Runner path.
//
// A Plan owns private buffers and is NOT safe for concurrent use; the
// underlying Net's weights are shared read-only, so any number of plans
// may execute concurrently over one Net (DjiNN's load-once model). Use
// one plan per worker, or a checkout pool.
type Plan struct {
	net       *Net
	ctx       *Ctx
	maxBatch  int
	retain    bool
	precision Precision
	steps     []planStep
	arenas    [][]float32        // slot 0 is the input arena
	slots     []int              // arena slot per activation (len(steps)+1)
	views     [][]*tensor.Tensor // views[b-1][i]: activation i as a [b,...] tensor

	// Packing scratch owned by the plan, sized at Compile by
	// buildBackend; nil at the reference precision. Weight-derived packed
	// operands live on the layers instead (see backend.go).
	packB []float32 // Float32Packed: im2col columns in K×NR panels
	qB    []uint8   // Int8: quantized im2col columns, offset panels
	qBSum []int32   // Int8: per-column signed sums for the B scratch
	qA    []uint64  // Int8: quantized FC activations, lane pairs
	qASum []int32   // Int8: per-row signed sums for the A scratch
}

type planStep struct {
	layer Layer
	fuse  fusedBiasReLU // non-nil: forward runs with the next ReLU fused in
	skip  bool          // output already produced by a fused predecessor
	// exec, when non-nil, runs the step through a precision backend
	// (packed float32 or int8 kernels) instead of layer.Forward; it
	// already honours fuse. Installed by buildBackend.
	exec func(in, out *tensor.Tensor)
}

// CompileOpts tunes plan compilation.
type CompileOpts struct {
	// Workers is the intra-op GEMM parallelism (Ctx.Workers). Zero or 1
	// runs the serial kernels.
	Workers int
	// Retain keeps every layer's activations in a private buffer and
	// disables in-place execution and ReLU fusion, exactly the seed
	// memory layout. Required for Backward; Runner compiles with it.
	Retain bool
	// Precision selects the kernel backend for conv and FC layers. The
	// zero value (Float32) is the reference path, bit-identical to the
	// seed. Retain-mode plans always compile at Float32 — Backward reads
	// float32 weights and the training path never routes through the
	// packed kernels.
	Precision Precision
}

// Compile builds an inference execution plan able to process up to
// maxBatch samples per call.
func (n *Net) Compile(maxBatch int) *Plan {
	return n.CompileOpts(maxBatch, CompileOpts{})
}

// CompileOpts builds an execution plan with explicit options.
func (n *Net) CompileOpts(maxBatch int, o CompileOpts) *Plan {
	if maxBatch <= 0 {
		panic("nn: Compile: maxBatch must be positive")
	}
	p := &Plan{
		net:      n,
		ctx:      NewCtx(uint64(0x5eed) + uint64(len(n.layers))),
		maxBatch: maxBatch,
		retain:   o.Retain,
		steps:    make([]planStep, len(n.layers)),
		slots:    make([]int, len(n.layers)+1),
	}
	p.ctx.Workers = o.Workers

	// Per-sample shape and element count of every activation, input first.
	actShapes := make([][]int, len(n.layers)+1)
	actShapes[0] = n.inShape
	copy(actShapes[1:], n.shapes)
	elems := make([]int, len(actShapes))
	for i, s := range actShapes {
		elems[i] = sampleElems(s)
	}

	// Step marking: fused conv/FC+ReLU pairs and in-place elementwise
	// layers (inference only — Retain keeps the seed wiring for
	// Backward, which needs distinct in/out per layer).
	for i, l := range n.layers {
		p.steps[i].layer = l
		if o.Retain || p.steps[i].skip {
			continue
		}
		if fl, ok := l.(fusedBiasReLU); ok && i+1 < len(n.layers) {
			if act, ok := n.layers[i+1].(*Activation); ok && act.Kind() == "relu" {
				p.steps[i].fuse = fl
				p.steps[i+1].skip = true
			}
		}
	}

	// Arena slot assignment: the input lives in slot 0; non-in-place
	// layer outputs ping-pong between slots 1 and 2; in-place layers
	// (and fused-away ReLUs) stay on their input's slot. Retain mode
	// gives every activation its own slot.
	cur := 0
	for i := range n.layers {
		switch {
		case o.Retain:
			cur = i + 1
		case p.steps[i].skip || p.inPlace(i):
			// keep cur
		default:
			if cur == 1 {
				cur = 2
			} else {
				cur = 1
			}
		}
		p.slots[i+1] = cur
	}

	// One arena per slot, sized to the largest activation assigned to it.
	nSlots := 0
	for _, s := range p.slots {
		if s+1 > nSlots {
			nSlots = s + 1
		}
	}
	sizes := make([]int, nSlots)
	for i, s := range p.slots {
		if need := maxBatch * elems[i]; need > sizes[s] {
			sizes[s] = need
		}
	}
	p.arenas = make([][]float32, nSlots)
	for s, size := range sizes {
		p.arenas[s] = make([]float32, size)
	}

	// Precompute every batch-limited activation view, killing the
	// per-call view()/FromSlice allocations of the seed path.
	p.views = make([][]*tensor.Tensor, maxBatch)
	for b := 1; b <= maxBatch; b++ {
		v := make([]*tensor.Tensor, len(p.slots))
		for i, s := range p.slots {
			v[i] = tensor.FromSlice(p.arenas[s][:b*elems[i]], append([]int{b}, actShapes[i]...)...)
		}
		p.views[b-1] = v
	}

	// Size the shared im2col/patch scratch up front so no layer grows it
	// at run time. Custom layers outside the zoo still grow it lazily.
	scratch := 0
	for i, l := range n.layers {
		switch t := l.(type) {
		case *Conv:
			kTaps := (t.InC / t.Groups) * t.KernelH * t.KernelW
			outSpatial := actShapes[i+1][1] * actShapes[i+1][2]
			if need := kTaps * outSpatial; need > scratch {
				scratch = need
			}
		case *Local:
			if need := t.InC * t.Kernel * t.Kernel; need > scratch {
				scratch = need
			}
		}
	}
	if scratch > 0 {
		p.ctx.scratch(scratch)
	}

	// Route conv/FC steps through the selected kernel backend. Retain
	// compiles at the reference precision: training reads float32
	// weights and the seed memory layout.
	if o.Precision != Float32 && !o.Retain {
		p.precision = o.Precision
		p.buildBackend(o.Precision)
	}
	return p
}

// inPlace reports whether layer i may write its output over its input
// buffer: elementwise layers whose Forward never reads an element after
// writing it. LRN is excluded (each output reads a window of inputs
// across channels); pooling and the weighted layers change shape or
// need their full input.
func (p *Plan) inPlace(i int) bool {
	switch p.net.layers[i].(type) {
	case *Activation, *Dropout, *Softmax:
		return true
	}
	return false
}

// Net returns the network this plan executes.
func (p *Plan) Net() *Net { return p.net }

// MaxBatch returns the batch capacity.
func (p *Plan) MaxBatch() int { return p.maxBatch }

// Workers returns the intra-op worker count the plan was compiled with.
func (p *Plan) Workers() int { return p.ctx.workers() }

// Precision returns the kernel backend the plan was compiled with.
func (p *Plan) Precision() Precision { return p.precision }

// ActivationBytes returns the plan's resident activation memory: the
// sum of its arenas. With ping-pong aliasing this is roughly two large
// activations instead of the seed layout's one per layer (see
// Net.ActivationBytes for the latter).
func (p *Plan) ActivationBytes() int64 {
	var total int64
	for _, a := range p.arenas {
		total += int64(4 * len(a))
	}
	return total
}

// In returns the plan's input buffer as a [batch, inShape...] view.
// Callers gather payloads directly into its Data() and then call Run —
// the zero-copy entry the service's batch path uses.
func (p *Plan) In(batch int) *tensor.Tensor {
	p.checkBatch(batch)
	return p.views[batch-1][0]
}

// Out returns the output view of the last Run at the given batch.
func (p *Plan) Out(batch int) *tensor.Tensor {
	p.checkBatch(batch)
	return p.views[batch-1][len(p.slots)-1]
}

func (p *Plan) checkBatch(batch int) {
	if batch < 1 || batch > p.maxBatch {
		panic(fmt.Sprintf("nn: Forward: batch %d out of range [1,%d]", batch, p.maxBatch))
	}
}

// Run executes the forward pass over the first batch samples already
// gathered into In(batch), returning the output [batch, outShape...]
// tensor. The result is owned by the plan and valid until the next Run.
func (p *Plan) Run(batch int) *tensor.Tensor {
	p.checkBatch(batch)
	v := p.views[batch-1]
	cur := v[0]
	for i := range p.steps {
		st := &p.steps[i]
		out := v[i+1]
		if st.skip {
			cur = out // aliases the fused predecessor's output
			continue
		}
		switch {
		case st.exec != nil:
			st.exec(cur, out)
		case st.fuse != nil:
			st.fuse.forwardReLU(p.ctx, cur, out)
		default:
			st.layer.Forward(p.ctx, cur, out)
		}
		cur = out
	}
	return cur
}

// Forward copies input into the plan's input buffer and runs the
// network, mirroring Runner.Forward. The copy is skipped when input
// already aliases In(batch) (a caller that gathered in place).
func (p *Plan) Forward(input *tensor.Tensor) *tensor.Tensor {
	batch := input.Dim(0)
	p.checkBatch(batch)
	if wantPer := sampleElems(p.net.inShape); input.Len() != batch*wantPer {
		panic(fmt.Sprintf("nn: Forward: input %v does not match net input shape %v", input.Shape(), p.net.inShape))
	}
	dst := p.views[batch-1][0]
	src, d := input.Data(), dst.Data()
	if len(src) == 0 || len(d) == 0 || &src[0] != &d[0] {
		copy(d, src)
	}
	return p.Run(batch)
}

// ActivationBytes returns the activation memory of the seed layout at
// the given batch: one buffer per layer output plus the input, what a
// Retain-mode plan (and the original Runner) allocates. The ratio to
// Plan.ActivationBytes is the ping-pong saving.
func (n *Net) ActivationBytes(maxBatch int) int64 {
	total := int64(sampleElems(n.inShape))
	for _, s := range n.shapes {
		total += int64(sampleElems(s))
	}
	return 4 * int64(maxBatch) * total
}
