package nn

import "fmt"

// Precision selects the kernel backend an execution plan routes its
// GEMM-backed layers (conv, FC) through. All other layers — pooling,
// LRN, locally-connected, activations, softmax — always run the float32
// reference kernels regardless of the plan's precision.
//
// The zero value is Float32, the reference backend, so existing callers
// of Compile/CompileOpts are unchanged.
type Precision uint8

const (
	// Float32 is the reference backend: the blocked float32 GEMM and
	// per-sample GEMV the repo has shipped since the plan layer landed.
	// Results are bit-identical to the seed Runner path for any worker
	// count — the compatibility gate every other backend is measured
	// against.
	Float32 Precision = iota

	// Float32Packed routes conv and FC through the panel-packed float32
	// GEMM: B packed into K×NR panels (convolution columns per call into
	// plan scratch, FC weights once per layer), A tiles packed into an
	// L1-resident microkernel. Convolution outputs are bit-identical to
	// Float32; FC outputs differ in float rounding only, because the
	// reference FC is a per-sample GEMV with a 4-wide unrolled sum (a
	// different association order).
	Float32Packed

	// Int8 routes conv and FC through the quantized backend: weights are
	// quantized once per layer at Compile time (symmetric per-tensor
	// scale, zero point 0), activations are quantized per call with a
	// dynamic scale, accumulation is exact 32-bit integer, and
	// dequantize+bias+ReLU fuse into one store. Integer accumulation is
	// associative, so int8 results are bit-identical across worker
	// counts by construction.
	Int8
)

// String implements fmt.Stringer with the names ParsePrecision accepts.
func (p Precision) String() string {
	switch p {
	case Float32:
		return "float32"
	case Float32Packed:
		return "float32-packed"
	case Int8:
		return "int8"
	}
	return fmt.Sprintf("precision(%d)", uint8(p))
}

// ParsePrecision parses a precision name as surfaced on config files and
// command-line flags. The empty string parses as Float32 so that absent
// config fields keep the reference behaviour.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "float32", "fp32", "f32":
		return Float32, nil
	case "float32-packed", "packed":
		return Float32Packed, nil
	case "int8", "quant":
		return Int8, nil
	}
	return Float32, fmt.Errorf("nn: unknown precision %q (want float32, float32-packed or int8)", s)
}

// Precisions lists every backend in display order, for experiment sweeps
// and CLI help text.
func Precisions() []Precision {
	return []Precision{Float32, Float32Packed, Int8}
}
