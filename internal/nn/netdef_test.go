package nn

import (
	"bytes"
	"strings"
	"testing"

	"djinn/internal/tensor"
)

const sampleDef = `
# A small CNN for tests.
name: "sample"
type: CNN
input: 1 8 8

layer conv1 conv { out: 4  kernel: 3  pad: 1 }
layer relu1 relu { }
layer pool1 maxpool { kernel: 2 }
layer fc1   fc   { out: 10 }
layer prob  softmax { }
`

func TestParseNetDef(t *testing.T) {
	net, err := ParseNetDef(strings.NewReader(sampleDef), 1)
	if err != nil {
		t.Fatal(err)
	}
	if net.Name() != "sample" || net.Kind() != KindCNN {
		t.Fatalf("header parsed wrong: %s %s", net.Name(), net.Kind())
	}
	if len(net.Layers()) != 5 {
		t.Fatalf("%d layers", len(net.Layers()))
	}
	if !shapeEq(net.OutShape(), []int{10}) {
		t.Fatalf("out shape %v", net.OutShape())
	}
	// The parsed network must run.
	r := net.NewRunner(2)
	in := tensor.New(2, 1, 8, 8)
	tensor.NewRNG(2).FillNorm(in.Data(), 0, 1)
	out := r.Forward(in)
	if out.Dim(1) != 10 {
		t.Fatalf("forward shape %v", out.Shape())
	}
}

func TestParseNetDefDeterministicSeed(t *testing.T) {
	a, _ := ParseNetDef(strings.NewReader(sampleDef), 7)
	b, _ := ParseNetDef(strings.NewReader(sampleDef), 7)
	c, _ := ParseNetDef(strings.NewReader(sampleDef), 8)
	pa, pb, pc := a.Params()[0].W.Data(), b.Params()[0].W.Data(), c.Params()[0].W.Data()
	same := true
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed differs")
		}
		if pa[i] != pc[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestParseNetDefErrors(t *testing.T) {
	cases := []struct {
		name string
		def  string
	}{
		{"no layers", "name: \"x\"\ninput: 4\n"},
		{"layer before header", "layer a relu { }\n"},
		{"bad kind", "name: \"x\"\ninput: 4\nlayer a wat { }\n"},
		{"bad type", "name: \"x\"\ntype: RNN\ninput: 4\nlayer a relu { }\n"},
		{"bad dim", "name: \"x\"\ninput: zero\nlayer a relu { }\n"},
		{"missing attr", "name: \"x\"\ninput: 4\nlayer a fc { }\n"},
		{"unknown attr", "name: \"x\"\ninput: 4\nlayer a fc { out: 2  wat: 3 }\n"},
		{"bad attr value", "name: \"x\"\ninput: 4\nlayer a fc { out: two }\n"},
		{"missing value", "name: \"x\"\ninput: 4\nlayer a fc { out: }\n"},
		{"no block", "name: \"x\"\ninput: 4\nlayer a relu\n"},
		{"conv on vector", "name: \"x\"\ninput: 4\nlayer a conv { out: 2 kernel: 3 }\n"},
		{"shape mismatch", "name: \"x\"\ninput: 1 4 4\nlayer a conv { out: 2 kernel: 9 }\n"},
		{"garbage directive", "name: \"x\"\ninput: 4\nwhatever\n"},
	}
	for _, c := range cases {
		if _, err := ParseNetDef(strings.NewReader(c.def), 1); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestNetDefRoundTrip(t *testing.T) {
	// Export a hand-built network with every exportable layer kind and
	// re-parse it: structure, parameter counts and shapes must match.
	rng := tensor.NewRNG(3)
	orig := NewNet("round", KindCNN, 3, 16, 16)
	orig.Add(NewConv("c1", rng, 3, 8, 3, ConvOpt{Pad: 1, Groups: 1})).
		Add(NewReLU("r1")).
		Add(NewLRN("n1", 5, 1e-4, 0.75, 1)).
		Add(NewPool("p1", MaxPool, 2, 2, 0)).
		Add(NewConv("c2", rng, 8, 8, 3, ConvOpt{Pad: 1, Groups: 2})).
		Add(NewTanh("t1")).
		Add(NewLocal("l1", rng, 8, 8, 8, 4, 3, 1)).
		Add(NewSigmoid("s1")).
		Add(NewPool("p2", AvgPool, 2, 2, 0)).
		Add(NewFC("f1", rng, 4*3*3, 20)).
		Add(NewHardTanh("h1")).
		Add(NewDropout("d1", 0.4)).
		Add(NewFC("f2", rng, 20, 5)).
		Add(NewSoftmax("prob"))

	var buf bytes.Buffer
	if err := orig.WriteDef(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseNetDef(bytes.NewReader(buf.Bytes()), 9)
	if err != nil {
		t.Fatalf("re-parsing exported def: %v\n%s", err, buf.String())
	}
	if parsed.ParamCount() != orig.ParamCount() {
		t.Fatalf("param count %d != %d", parsed.ParamCount(), orig.ParamCount())
	}
	if len(parsed.Layers()) != len(orig.Layers()) {
		t.Fatalf("layer count %d != %d", len(parsed.Layers()), len(orig.Layers()))
	}
	for i, l := range parsed.Layers() {
		if l.Kind() != orig.Layers()[i].Kind() || l.Name() != orig.Layers()[i].Name() {
			t.Fatalf("layer %d: %s/%s != %s/%s", i, l.Name(), l.Kind(), orig.Layers()[i].Name(), orig.Layers()[i].Kind())
		}
	}
	if !shapeEq(parsed.OutShape(), orig.OutShape()) {
		t.Fatalf("out shape %v != %v", parsed.OutShape(), orig.OutShape())
	}
}

func TestNetDefWeightsTransplant(t *testing.T) {
	// The deployment flow: export def + weights, rebuild elsewhere,
	// load weights, get identical outputs.
	orig, err := ParseNetDef(strings.NewReader(sampleDef), 4)
	if err != nil {
		t.Fatal(err)
	}
	var def, weights bytes.Buffer
	if err := orig.WriteDef(&def); err != nil {
		t.Fatal(err)
	}
	if err := orig.SaveWeights(&weights); err != nil {
		t.Fatal(err)
	}
	clone, err := ParseNetDef(bytes.NewReader(def.Bytes()), 999)
	if err != nil {
		t.Fatal(err)
	}
	if err := clone.LoadWeights(bytes.NewReader(weights.Bytes())); err != nil {
		t.Fatal(err)
	}
	in := tensor.New(1, 1, 8, 8)
	tensor.NewRNG(5).FillNorm(in.Data(), 0, 1)
	a := orig.NewRunner(1).Forward(in).Clone()
	b := clone.NewRunner(1).Forward(in)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("transplanted network diverges")
		}
	}
}
