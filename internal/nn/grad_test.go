package nn

import (
	"math"
	"testing"

	"djinn/internal/tensor"
)

// numericalGradCheck compares the analytic parameter and input gradients
// of a single-layer net against central finite differences of a scalar
// loss L = Σ w_i · out_i with fixed random weights w.
func numericalGradCheck(t *testing.T, net *Net, inShape []int, batch int, tol float64) {
	t.Helper()
	rng := tensor.NewRNG(77)
	r := net.NewRunner(batch)
	in := tensor.New(append([]int{batch}, inShape...)...)
	rng.FillNorm(in.Data(), 0, 1)

	out := r.Forward(in)
	lossW := make([]float32, out.Len())
	rng.FillNorm(lossW, 0, 1)
	loss := func() float64 {
		o := r.Forward(in)
		var s float64
		for i, v := range o.Data() {
			s += float64(v) * float64(lossW[i])
		}
		return s
	}

	// Analytic gradients.
	for _, p := range net.Params() {
		p.EnsureGrad().Zero()
	}
	r.Forward(in)
	dOut := tensor.FromSlice(append([]float32(nil), lossW...), out.Shape()...)
	r.Backward(dOut)

	const h = 1e-2
	check := func(label string, data []float32, analytic []float32, idx int) {
		orig := data[idx]
		data[idx] = orig + h
		lp := loss()
		data[idx] = orig - h
		lm := loss()
		data[idx] = orig
		numeric := (lp - lm) / (2 * h)
		got := float64(analytic[idx])
		if math.Abs(got-numeric) > tol*(1+math.Abs(numeric)) {
			t.Errorf("%s[%d]: analytic %v vs numeric %v", label, idx, got, numeric)
		}
	}

	for _, p := range net.Params() {
		n := p.W.Len()
		stride := n/7 + 1
		for i := 0; i < n; i += stride {
			check(p.Name, p.W.Data(), p.Grad.Data(), i)
		}
	}
	ig := r.InputGrad()
	stride := in.Len()/7 + 1
	for i := 0; i < in.Len(); i += stride {
		check("input", in.Data(), ig.Data()[:in.Len()], i)
	}
}

func TestGradFC(t *testing.T) {
	rng := tensor.NewRNG(1)
	n := NewNet("g-fc", KindDNN, 6)
	n.Add(NewFC("fc", rng, 6, 4))
	numericalGradCheck(t, n, []int{6}, 3, 1e-2)
}

func TestGradConv(t *testing.T) {
	rng := tensor.NewRNG(2)
	n := NewNet("g-conv", KindCNN, 2, 5, 5)
	n.Add(NewConv("conv", rng, 2, 3, 3, ConvOpt{Pad: 1, Stride: 2}))
	numericalGradCheck(t, n, []int{2, 5, 5}, 2, 1e-2)
}

func TestGradConvGroups(t *testing.T) {
	rng := tensor.NewRNG(3)
	n := NewNet("g-convg", KindCNN, 4, 4, 4)
	n.Add(NewConv("conv", rng, 4, 4, 3, ConvOpt{Pad: 1, Groups: 2}))
	numericalGradCheck(t, n, []int{4, 4, 4}, 1, 1e-2)
}

func TestGradMaxPool(t *testing.T) {
	n := NewNet("g-pool", KindCNN, 2, 4, 4)
	n.Add(NewPool("pool", MaxPool, 2, 2, 0))
	numericalGradCheck(t, n, []int{2, 4, 4}, 2, 1e-2)
}

func TestGradAvgPool(t *testing.T) {
	n := NewNet("g-apool", KindCNN, 2, 4, 4)
	n.Add(NewPool("pool", AvgPool, 2, 2, 0))
	numericalGradCheck(t, n, []int{2, 4, 4}, 2, 1e-2)
}

func TestGradActivations(t *testing.T) {
	for _, mk := range []func(string) *Activation{NewReLU, NewSigmoid, NewTanh, NewHardTanh} {
		l := mk("act")
		n := NewNet("g-"+l.Kind(), KindDNN, 8)
		n.Add(l)
		numericalGradCheck(t, n, []int{8}, 2, 2e-2)
	}
}

func TestGradSoftmax(t *testing.T) {
	n := NewNet("g-sm", KindDNN, 5)
	n.Add(NewSoftmax("prob"))
	numericalGradCheck(t, n, []int{5}, 2, 1e-2)
}

func TestGradStack(t *testing.T) {
	// Full small CNN: conv → relu → pool → fc → softmax.
	n := smallCNN(42)
	numericalGradCheck(t, n, []int{1, 8, 8}, 2, 3e-2)
}

func TestTrainingLearnsSyntheticTask(t *testing.T) {
	// The engine must be able to learn a separable task: classify which
	// quadrant of the image contains the bright blob. Exercises the
	// whole train loop (forward, NLL, backward, SGD).
	rng := tensor.NewRNG(99)
	n := smallCNN(100)
	r := n.NewRunner(16)
	opt := NewSGD(0.05, 0.9, 1e-4)

	gen := func(batch int) (*tensor.Tensor, []int) {
		in := tensor.New(batch, 1, 8, 8)
		labels := make([]int, batch)
		for b := 0; b < batch; b++ {
			q := rng.Intn(4)
			labels[b] = q
			oh, ow := (q/2)*4, (q%2)*4
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					in.Set(1+0.1*rng.Norm(), b, 0, oh+i, ow+j)
				}
			}
		}
		return in, labels
	}

	for step := 0; step < 150; step++ {
		in, labels := gen(16)
		TrainBatch(r, opt, in, labels)
	}
	in, labels := gen(16)
	probs := r.Forward(in)
	if acc := Accuracy(probs, labels); acc < 0.9 {
		t.Fatalf("trained accuracy %.2f, want >= 0.9", acc)
	}
}

func TestSGDStepZeroesGrads(t *testing.T) {
	rng := tensor.NewRNG(5)
	fc := NewFC("fc", rng, 3, 2)
	g := fc.Weight.EnsureGrad()
	g.Fill(1)
	opt := NewSGD(0.1, 0, 0)
	before := fc.Weight.W.Data()[0]
	opt.Step([]*Param{fc.Weight}, 1)
	if fc.Weight.W.Data()[0] != before-0.1 {
		t.Fatalf("sgd step wrong: %v -> %v", before, fc.Weight.W.Data()[0])
	}
	for _, v := range g.Data() {
		if v != 0 {
			t.Fatal("gradients not zeroed after step")
		}
	}
}

func TestNLLLossKnownValue(t *testing.T) {
	probs := tensor.FromSlice([]float32{0.5, 0.25, 0.25}, 1, 3)
	d := tensor.New(1, 3)
	loss := NLLLoss(probs, []int{0}, d)
	if math.Abs(loss-math.Log(2)) > 1e-5 {
		t.Fatalf("loss %v, want ln 2", loss)
	}
	if math.Abs(float64(d.At(0, 0))+2) > 1e-4 {
		t.Fatalf("grad %v, want -2", d.At(0, 0))
	}
	if d.At(0, 1) != 0 {
		t.Fatal("non-label grad should be 0")
	}
}

func TestGradLRN(t *testing.T) {
	n := NewNet("g-lrn", KindCNN, 4, 2, 2)
	n.Add(NewLRN("lrn", 3, 0.5, 0.75, 1)) // large alpha so the term matters
	numericalGradCheck(t, n, []int{4, 2, 2}, 2, 2e-2)
}

func TestGradAlexNetStyleStack(t *testing.T) {
	// conv → relu → lrn → pool → fc → softmax: the full AlexNet layer
	// mix is differentiable end to end.
	rng := tensor.NewRNG(60)
	n := NewNet("g-alex", KindCNN, 2, 8, 8)
	n.Add(NewConv("conv", rng, 2, 4, 3, ConvOpt{Pad: 1})).
		Add(NewReLU("relu")).
		Add(NewLRN("lrn", 3, 0.3, 0.75, 1)).
		Add(NewPool("pool", MaxPool, 2, 2, 0)).
		Add(NewFC("fc", rng, 4*4*4, 6)).
		Add(NewSoftmax("prob"))
	numericalGradCheck(t, n, []int{2, 8, 8}, 2, 4e-2)
}

func TestGradLocal(t *testing.T) {
	rng := tensor.NewRNG(61)
	n := NewNet("g-local", KindCNN, 2, 5, 5)
	n.Add(NewLocal("loc", rng, 2, 5, 5, 3, 3, 2))
	numericalGradCheck(t, n, []int{2, 5, 5}, 2, 2e-2)
}

func TestEveryWeightedLayerIsTrainable(t *testing.T) {
	// Completeness: every layer kind with parameters implements
	// BackLayer, so every Table 1 network is trainable end to end.
	rng := tensor.NewRNG(62)
	layers := []Layer{
		NewConv("c", rng, 2, 2, 3, ConvOpt{}),
		NewFC("f", rng, 4, 4),
		NewLocal("l", rng, 2, 4, 4, 2, 3, 1),
	}
	for _, l := range layers {
		if _, ok := l.(BackLayer); !ok {
			t.Errorf("layer kind %s has parameters but no backward pass", l.Kind())
		}
	}
}
