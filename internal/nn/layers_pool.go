package nn

import (
	"math"

	"djinn/internal/tensor"
)

// PoolKind selects the pooling operation.
type PoolKind int

// Pooling operations.
const (
	MaxPool PoolKind = iota
	AvgPool
)

// Pool is a 2-D spatial pooling layer over NCHW inputs.
type Pool struct {
	name           string
	Op             PoolKind
	Kernel, Stride int
	Pad            int
}

// NewPool creates a pooling layer. stride 0 means stride = kernel.
func NewPool(name string, op PoolKind, kernel, stride, pad int) *Pool {
	if stride == 0 {
		stride = kernel
	}
	return &Pool{name: name, Op: op, Kernel: kernel, Stride: stride, Pad: pad}
}

// Name implements Layer.
func (p *Pool) Name() string { return p.name }

// Kind implements Layer.
func (p *Pool) Kind() string {
	if p.Op == MaxPool {
		return "maxpool"
	}
	return "avgpool"
}

// Params implements Layer.
func (p *Pool) Params() []*Param { return nil }

func (p *Pool) geom(in []int) tensor.ConvGeom {
	return tensor.ConvGeom{
		Channels: in[0], Height: in[1], Width: in[2],
		KernelH: p.Kernel, KernelW: p.Kernel,
		StrideH: p.Stride, StrideW: p.Stride,
		PadH: p.Pad, PadW: p.Pad,
	}
}

// OutShape implements Layer.
func (p *Pool) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, shapeErr(p.Kind(), p.name, in, "want [C,H,W]")
	}
	g := p.geom(in)
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return nil, shapeErr(p.Kind(), p.name, in, "kernel larger than padded input")
	}
	return []int{in[0], g.OutH(), g.OutW()}, nil
}

// Forward implements Layer.
func (p *Pool) Forward(ctx *Ctx, in, out *tensor.Tensor) {
	batch := in.Dim(0)
	inShape := in.Shape()[1:]
	g := p.geom(inShape)
	c, h, w := inShape[0], inShape[1], inShape[2]
	outH, outW := g.OutH(), g.OutW()
	inPer, outPer := c*h*w, c*outH*outW
	for b := 0; b < batch; b++ {
		src := in.Data()[b*inPer : (b+1)*inPer]
		dst := out.Data()[b*outPer : (b+1)*outPer]
		for ch := 0; ch < c; ch++ {
			plane := src[ch*h*w : (ch+1)*h*w]
			outPlane := dst[ch*outH*outW : (ch+1)*outH*outW]
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					outPlane[oh*outW+ow] = p.poolWindow(plane, h, w, oh, ow)
				}
			}
		}
	}
}

func (p *Pool) poolWindow(plane []float32, h, w, oh, ow int) float32 {
	h0 := oh*p.Stride - p.Pad
	w0 := ow*p.Stride - p.Pad
	if p.Op == MaxPool {
		best := float32(math.Inf(-1))
		for kh := 0; kh < p.Kernel; kh++ {
			ih := h0 + kh
			if ih < 0 || ih >= h {
				continue
			}
			for kw := 0; kw < p.Kernel; kw++ {
				iw := w0 + kw
				if iw < 0 || iw >= w {
					continue
				}
				if v := plane[ih*w+iw]; v > best {
					best = v
				}
			}
		}
		if math.IsInf(float64(best), -1) {
			return 0
		}
		return best
	}
	var sum float32
	count := 0
	for kh := 0; kh < p.Kernel; kh++ {
		ih := h0 + kh
		if ih < 0 || ih >= h {
			continue
		}
		for kw := 0; kw < p.Kernel; kw++ {
			iw := w0 + kw
			if iw < 0 || iw >= w {
				continue
			}
			sum += plane[ih*w+iw]
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float32(count)
}

// Backward implements BackLayer. Max pooling routes the gradient to the
// argmax tap (recomputed here); average pooling spreads it uniformly.
func (p *Pool) Backward(ctx *Ctx, in, out, dout, din *tensor.Tensor) {
	batch := in.Dim(0)
	inShape := in.Shape()[1:]
	g := p.geom(inShape)
	c, h, w := inShape[0], inShape[1], inShape[2]
	outH, outW := g.OutH(), g.OutW()
	inPer, outPer := c*h*w, c*outH*outW
	din.Zero()
	for b := 0; b < batch; b++ {
		src := in.Data()[b*inPer : (b+1)*inPer]
		dSrc := din.Data()[b*inPer : (b+1)*inPer]
		dOut := dout.Data()[b*outPer : (b+1)*outPer]
		for ch := 0; ch < c; ch++ {
			plane := src[ch*h*w : (ch+1)*h*w]
			dPlane := dSrc[ch*h*w : (ch+1)*h*w]
			dOutPlane := dOut[ch*outH*outW : (ch+1)*outH*outW]
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					gr := dOutPlane[oh*outW+ow]
					if gr == 0 {
						continue
					}
					p.spreadWindow(plane, dPlane, h, w, oh, ow, gr)
				}
			}
		}
	}
}

func (p *Pool) spreadWindow(plane, dPlane []float32, h, w, oh, ow int, grad float32) {
	h0 := oh*p.Stride - p.Pad
	w0 := ow*p.Stride - p.Pad
	if p.Op == MaxPool {
		best := float32(math.Inf(-1))
		bi := -1
		for kh := 0; kh < p.Kernel; kh++ {
			ih := h0 + kh
			if ih < 0 || ih >= h {
				continue
			}
			for kw := 0; kw < p.Kernel; kw++ {
				iw := w0 + kw
				if iw < 0 || iw >= w {
					continue
				}
				if v := plane[ih*w+iw]; v > best {
					best, bi = v, ih*w+iw
				}
			}
		}
		if bi >= 0 {
			dPlane[bi] += grad
		}
		return
	}
	count := 0
	for kh := 0; kh < p.Kernel; kh++ {
		if ih := h0 + kh; ih >= 0 && ih < h {
			for kw := 0; kw < p.Kernel; kw++ {
				if iw := w0 + kw; iw >= 0 && iw < w {
					count++
				}
			}
		}
	}
	if count == 0 {
		return
	}
	share := grad / float32(count)
	for kh := 0; kh < p.Kernel; kh++ {
		ih := h0 + kh
		if ih < 0 || ih >= h {
			continue
		}
		for kw := 0; kw < p.Kernel; kw++ {
			iw := w0 + kw
			if iw < 0 || iw >= w {
				continue
			}
			dPlane[ih*w+iw] += share
		}
	}
}

// Kernels implements Layer. Pooling is memory-bound: each output reads
// kernel² inputs.
func (p *Pool) Kernels(in []int, batch int, ks []Kernel) []Kernel {
	g := p.geom(in)
	outElems := in[0] * g.OutH() * g.OutW() * batch
	reads := float64(outElems) * float64(p.Kernel*p.Kernel) * 4
	return append(ks, Kernel{
		Name:     p.name,
		FLOPs:    float64(outElems) * float64(p.Kernel*p.Kernel),
		BytesIn:  reads,
		BytesOut: float64(4 * outElems),
		Threads:  outElems,
	})
}
