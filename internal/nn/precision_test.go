package nn

import (
	"math"
	"testing"

	"djinn/internal/tensor"
)

// convNet has no FC layers, so every GEMM-backed step routes through the
// packed kernel, whose convolution outputs are bit-identical to the
// blocked reference.
func convNet(seed uint64) *Net {
	rng := tensor.NewRNG(seed)
	n := NewNet("convnet", KindCNN, 3, 12, 12)
	n.Add(NewConv("conv1", rng, 3, 8, 3, ConvOpt{Pad: 1})).
		Add(NewReLU("relu1")).
		Add(NewPool("pool1", MaxPool, 2, 2, 0)).
		Add(NewConv("conv2", rng, 8, 6, 3, ConvOpt{Pad: 1, Groups: 2})).
		Add(NewLRN("lrn1", 3, 0, 0, 0)).
		Add(NewSoftmax("prob"))
	return n
}

func TestParsePrecisionRoundTrip(t *testing.T) {
	for _, p := range Precisions() {
		got, err := ParsePrecision(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePrecision(%q) = %v, %v", p.String(), got, err)
		}
	}
	if p, err := ParsePrecision(""); err != nil || p != Float32 {
		t.Fatalf("empty precision = %v, %v, want Float32", p, err)
	}
	if _, err := ParsePrecision("float16"); err == nil {
		t.Fatal("ParsePrecision(float16) should fail")
	}
}

// TestPackedPlanConvBitIdentical pins the packed backend's compatibility
// gate on convolutions: identical bytes to the reference plan, for every
// batch and worker count, because the panel kernel accumulates each
// output element in the same ascending-k order as the blocked GEMM.
func TestPackedPlanConvBitIdentical(t *testing.T) {
	n := convNet(11)
	const maxBatch = 3
	ref := n.Compile(maxBatch)
	for _, workers := range []int{1, 2, 4} {
		plan := n.CompileOpts(maxBatch, CompileOpts{Workers: workers, Precision: Float32Packed})
		if plan.Precision() != Float32Packed {
			t.Fatalf("plan precision = %v", plan.Precision())
		}
		for batch := 1; batch <= maxBatch; batch++ {
			in := randInput(n, batch, uint64(20+batch))
			want := ref.Forward(in)
			got := plan.Forward(in)
			for i := range got.Data() {
				if got.Data()[i] != want.Data()[i] {
					t.Fatalf("workers=%d batch=%d: out[%d]=%v, reference %v (must be bit-identical)",
						workers, batch, i, got.Data()[i], want.Data()[i])
				}
			}
		}
	}
}

// TestPackedPlanCloseToFloat32 covers the FC case, where the packed
// kernel's accumulation order differs from the reference GEMV's 4-wide
// unrolled sum: results agree to float rounding, not bit-identically.
func TestPackedPlanCloseToFloat32(t *testing.T) {
	n := zooNet(12)
	const maxBatch = 4
	ref := n.Compile(maxBatch)
	plan := n.CompileOpts(maxBatch, CompileOpts{Precision: Float32Packed})
	for batch := 1; batch <= maxBatch; batch++ {
		in := randInput(n, batch, uint64(30+batch))
		want := ref.Forward(in).Data()
		got := plan.Forward(in).Data()
		for i := range got {
			if math.Abs(float64(got[i]-want[i])) > 1e-5 {
				t.Fatalf("batch=%d: out[%d]=%v, reference %v", batch, i, got[i], want[i])
			}
		}
	}
}

// TestInt8PlanCloseAndMostlyAgrees checks the quantized plan end to end
// on the zoo net: softmax outputs stay close to the float32 plan's and
// the argmax agrees on the overwhelming majority of random inputs. (The
// seven-net ≥99% top-1 gate lives in internal/models' golden harness.)
func TestInt8PlanCloseAndMostlyAgrees(t *testing.T) {
	n := zooNet(13)
	const maxBatch = 4
	ref := n.Compile(maxBatch)
	plan := n.CompileOpts(maxBatch, CompileOpts{Precision: Int8})
	if plan.Precision() != Int8 {
		t.Fatalf("plan precision = %v", plan.Precision())
	}
	samples, agree := 0, 0
	for trial := 0; trial < 25; trial++ {
		batch := trial%maxBatch + 1
		in := randInput(n, batch, uint64(40+trial))
		want := ref.Forward(in)
		got := plan.Forward(in)
		classes := want.Dim(1)
		for i := range got.Data() {
			if math.Abs(float64(got.Data()[i]-want.Data()[i])) > 0.05 {
				t.Fatalf("trial=%d: prob[%d]=%v, float32 %v: quantization error too large", trial, i, got.Data()[i], want.Data()[i])
			}
		}
		for b := 0; b < batch; b++ {
			samples++
			if tensor.Argmax(got.Data()[b*classes:(b+1)*classes]) == tensor.Argmax(want.Data()[b*classes:(b+1)*classes]) {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(samples); frac < 0.9 {
		t.Fatalf("int8 top-1 agreement %.2f (%d/%d), want ≥ 0.90", frac, agree, samples)
	}
}

// TestInt8PlanWorkersBitIdentical: integer accumulation is associative,
// so the quantized plan is bit-identical across worker counts by
// construction — a stronger guarantee than the float path needs careful
// row-splitting for.
func TestInt8PlanWorkersBitIdentical(t *testing.T) {
	n := zooNet(14)
	const maxBatch = 3
	serial := n.CompileOpts(maxBatch, CompileOpts{Precision: Int8})
	for _, workers := range []int{2, 3, 5} {
		plan := n.CompileOpts(maxBatch, CompileOpts{Workers: workers, Precision: Int8})
		for batch := 1; batch <= maxBatch; batch++ {
			in := randInput(n, batch, uint64(50+batch))
			want := serial.Forward(in)
			got := plan.Forward(in)
			for i := range got.Data() {
				if got.Data()[i] != want.Data()[i] {
					t.Fatalf("workers=%d batch=%d: out[%d]=%v, serial %v (must be bit-identical)",
						workers, batch, i, got.Data()[i], want.Data()[i])
				}
			}
		}
	}
}

func TestPrecisionPlansZeroAllocSteadyState(t *testing.T) {
	n := zooNet(15)
	for _, prec := range []Precision{Float32Packed, Int8} {
		plan := n.CompileOpts(4, CompileOpts{Precision: prec})
		in := randInput(n, 4, 16)
		plan.Forward(in)
		if allocs := testing.AllocsPerRun(20, func() { plan.Forward(in) }); allocs != 0 {
			t.Fatalf("%v: %.1f allocs per forward, want 0", prec, allocs)
		}
	}
}

// TestRetainForcesFloat32: training plans never route through precision
// backends — Backward reads float32 weights.
func TestRetainForcesFloat32(t *testing.T) {
	n := zooNet(17)
	plan := n.CompileOpts(2, CompileOpts{Retain: true, Precision: Int8})
	if plan.Precision() != Float32 {
		t.Fatalf("retain plan precision = %v, want Float32", plan.Precision())
	}
	for i, st := range plan.steps {
		if st.exec != nil {
			t.Fatalf("retain plan step %d has a backend exec installed", i)
		}
	}
}

// TestPreQuantizedParamBitIdentical: a Param.Q loaded from a model file
// (produced by the same QuantizeSymmetric the compiler runs) yields a
// bit-identical int8 plan to on-the-fly quantization.
func TestPreQuantizedParamBitIdentical(t *testing.T) {
	const seed = 18
	onTheFly := zooNet(seed).CompileOpts(2, CompileOpts{Precision: Int8})

	n := zooNet(seed)
	for _, l := range n.Layers() {
		switch l.Kind() {
		case "conv", "fc":
			w := l.Params()[0]
			q := make([]int8, w.W.Len())
			scale := tensor.QuantizeSymmetric(w.W.Data(), q)
			w.Q = &QuantizedParam{Scale: scale, Data: q}
		}
	}
	stored := n.CompileOpts(2, CompileOpts{Precision: Int8})

	in := randInput(n, 2, 19)
	want := onTheFly.Forward(in)
	got := stored.Forward(in)
	for i := range got.Data() {
		if got.Data()[i] != want.Data()[i] {
			t.Fatalf("out[%d]=%v, on-the-fly %v (must be bit-identical)", i, got.Data()[i], want.Data()[i])
		}
	}
}
