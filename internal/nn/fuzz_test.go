package nn

import (
	"strings"
	"testing"
)

// FuzzParseNetDef: arbitrary definition text must never panic the
// parser — it either builds a network or returns an error.
func FuzzParseNetDef(f *testing.F) {
	f.Add(sampleDef)
	f.Add("name: \"x\"\ninput: 4\nlayer a fc { out: 2 }\n")
	f.Add("layer broken")
	f.Add("input: -1")
	f.Add("name: \"y\"\ninput: 1 4 4\nlayer c conv { out: 2 kernel: 99 }\n")
	f.Fuzz(func(t *testing.T, def string) {
		net, err := ParseNetDef(strings.NewReader(def), 1)
		if err == nil && net != nil {
			// Anything that parses must be executable metadata-wise.
			if net.ParamCount() < 0 {
				t.Fatal("negative parameter count")
			}
			_ = net.Kernels(1)
		}
	})
}
