package router

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"djinn/internal/events"
)

// Traffic splitting is the router half of the model-store lifecycle:
// the service tier serves any registered model version side by side
// (apps named "imc@v1", "imc@v2"), and the router decides what
// fraction of the *base* application's traffic each version sees. A
// canary rollout is a split {v1: 95, v2: 5}; promotion collapses it to
// {v2: 100}; rollback restores the previous split atomically, so a
// misbehaving canary is out of the serving path within one query.
//
// The split rewrites only the application name a query carries to the
// backend. Routing policy, health state, and retries stay keyed by the
// base name, and one query keeps its rewritten target across retries —
// a canary query that fails on a down replica retries the same model
// version elsewhere rather than silently falling back to stable.

// SplitTarget is one arm of a traffic split: Weight parts of the
// split's total go to Target (a backend application name, typically a
// versioned model ID like "imc@v2").
type SplitTarget struct {
	Target string
	Weight uint32
}

// SplitStatus is one arm of a split plus its routed-query counter, as
// reported by Splits.
type SplitStatus struct {
	Target string
	Weight uint32
	Routed uint64
}

// split is the resolved form of one app's traffic split. Selection is
// a deterministic weighted counter: query c (a global atomic per
// split) lands in the cumulative-weight bucket of c mod total, so a
// {90, 10} split routes exactly 10 of every 100 queries to the canary
// — no sampling noise in small experiments.
type split struct {
	targets []SplitTarget
	cum     []uint64 // cumulative weights, cum[len-1] == total
	total   uint64
	counter atomic.Uint64
	routed  []atomic.Uint64 // per-target queries sent, parallel to targets

	// One-deep history for Rollback: the split (or nil for "no split")
	// that was live when this one was installed.
	prev      *split
	prevKnown bool
}

// pick returns the target for the next query and bumps its counter.
func (sp *split) pick() string {
	c := sp.counter.Add(1) - 1
	r := c % sp.total
	for i, cw := range sp.cum {
		if r < cw {
			sp.routed[i].Add(1)
			return sp.targets[i].Target
		}
	}
	// Unreachable: r < total == cum[len-1].
	sp.routed[len(sp.routed)-1].Add(1)
	return sp.targets[len(sp.targets)-1].Target
}

// newSplit validates and compiles a target list.
func newSplit(targets []SplitTarget) (*split, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("router: split needs at least one target")
	}
	sp := &split{
		targets: append([]SplitTarget(nil), targets...),
		cum:     make([]uint64, len(targets)),
		routed:  make([]atomic.Uint64, len(targets)),
	}
	seen := make(map[string]bool, len(targets))
	for i, tg := range targets {
		if tg.Target == "" {
			return nil, fmt.Errorf("router: split target %d has an empty name", i)
		}
		if seen[tg.Target] {
			return nil, fmt.Errorf("router: duplicate split target %q", tg.Target)
		}
		seen[tg.Target] = true
		if tg.Weight == 0 {
			return nil, fmt.Errorf("router: split target %q has zero weight", tg.Target)
		}
		sp.total += uint64(tg.Weight)
		sp.cum[i] = sp.total
	}
	return sp, nil
}

// SetSplit installs (or replaces) the traffic split for one base
// application name. Each target gets Weight parts of the total; the
// previous split (or its absence) is kept as one-deep history for
// Rollback. Queries already dispatched keep the target they were
// assigned.
func (rt *Router) SetSplit(app string, targets ...SplitTarget) error {
	return rt.setSplit(app, "split", targets)
}

func (rt *Router) setSplit(app, action string, targets []SplitTarget) error {
	sp, err := newSplit(targets)
	if err != nil {
		return err
	}
	rt.mu.Lock()
	if rt.splits == nil {
		rt.splits = make(map[string]*split)
	}
	sp.prev, sp.prevKnown = rt.splits[app], true
	rt.splits[app] = sp
	rt.mu.Unlock()
	rt.journalf(events.KindCanary, "%s %s → %s", app, action, formatTargets(sp))
	return nil
}

// formatTargets renders a split's arms as "v1:90% v2:10%".
func formatTargets(sp *split) string {
	parts := make([]string, len(sp.targets))
	for i, tg := range sp.targets {
		parts[i] = fmt.Sprintf("%s:%.0f%%", tg.Target, 100*float64(tg.Weight)/float64(sp.total))
	}
	return strings.Join(parts, " ")
}

// Promote collapses app's split to 100% of the named target — the
// canary graduates. The displaced split is kept for Rollback, so an
// over-eager promotion is still one call from recovery.
func (rt *Router) Promote(app, target string) error {
	return rt.setSplit(app, "promoted", []SplitTarget{{Target: target, Weight: 1}})
}

// Rollback atomically restores app's previous split state (including
// "no split at all"). Queries routed under the rolled-back split are
// unaffected; every query after Rollback returns sees the restored
// state. It fails if app has no split or no recorded history.
func (rt *Router) Rollback(app string) error {
	rt.mu.Lock()
	sp := rt.splits[app]
	if sp == nil {
		rt.mu.Unlock()
		return fmt.Errorf("router: no split for %q", app)
	}
	if !sp.prevKnown {
		rt.mu.Unlock()
		return fmt.Errorf("router: no split history for %q", app)
	}
	restored := "(no split)"
	if sp.prev == nil {
		delete(rt.splits, app)
	} else {
		// One-deep history: the restored split must not chain further back.
		sp.prev.prev, sp.prev.prevKnown = nil, false
		rt.splits[app] = sp.prev
		restored = formatTargets(sp.prev)
	}
	rt.mu.Unlock()
	rt.journalf(events.KindCanary, "%s rolled back → %s", app, restored)
	return nil
}

// ClearSplit removes app's split (history included); its traffic flows
// to the base name again.
func (rt *Router) ClearSplit(app string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.splits, app)
}

// Splits snapshots every live split: base app name → per-target weight
// and routed-query count, targets in installation order, apps sorted.
func (rt *Router) Splits() map[string][]SplitStatus {
	rt.mu.Lock()
	live := make(map[string]*split, len(rt.splits))
	for app, sp := range rt.splits {
		live[app] = sp
	}
	rt.mu.Unlock()
	out := make(map[string][]SplitStatus, len(live))
	for app, sp := range live {
		sts := make([]SplitStatus, len(sp.targets))
		for i, tg := range sp.targets {
			sts[i] = SplitStatus{Target: tg.Target, Weight: tg.Weight, Routed: sp.routed[i].Load()}
		}
		out[app] = sts
	}
	return out
}

// SplitApps returns the base names with a live split, sorted (for
// rendering).
func (rt *Router) SplitApps() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	apps := make([]string, 0, len(rt.splits))
	for app := range rt.splits {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	return apps
}

// splitTarget resolves the backend application name for one query:
// the split's pick when app has one, otherwise app itself.
func (rt *Router) splitTarget(app string) string {
	rt.mu.Lock()
	sp := rt.splits[app]
	rt.mu.Unlock()
	if sp == nil {
		return app
	}
	return sp.pick()
}
