package router

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"djinn/internal/events"
	"djinn/internal/nn"
	"djinn/internal/service"
	"djinn/internal/tensor"
	"djinn/internal/testutil"
)

func silence(string, ...any) {}

// tinyNet mirrors the service package's test network: 8 inputs, 4
// softmax outputs, deterministic weights per seed.
func tinyNet(seed uint64) *nn.Net {
	rng := tensor.NewRNG(seed)
	n := nn.NewNet("tiny", nn.KindDNN, 8)
	n.Add(nn.NewFC("fc1", rng, 8, 16)).
		Add(nn.NewReLU("relu")).
		Add(nn.NewFC("fc2", rng, 16, 4)).
		Add(nn.NewSoftmax("prob"))
	return n
}

// startReplica boots one TCP service replica with the tiny model and
// identical weights across replicas, so any replica answers any query
// identically — the property routing relies on.
func startReplica(t *testing.T, cfg service.AppConfig) (*service.Server, string) {
	t.Helper()
	s := service.NewServer()
	s.SetLogger(silence)
	if err := s.Register("tiny", tinyNet(1), cfg); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(s.Close)
	return s, l.Addr().String()
}

func refOutput(t *testing.T, in []float32) []float32 {
	t.Helper()
	r := tinyNet(1).NewRunner(1)
	out := r.Forward(tensor.FromSlice(in, 1, 8))
	return append([]float32(nil), out.Data()...)
}

// fakeBackend is a scriptable replica for deterministic policy and
// health tests.
type fakeBackend struct {
	calls atomic.Int64
	mu    sync.Mutex
	err   error         // returned instead of a result when non-nil
	delay time.Duration // simulated service time
	gate  chan struct{} // when non-nil, calls block until it closes
}

func (f *fakeBackend) setErr(err error) {
	f.mu.Lock()
	f.err = err
	f.mu.Unlock()
}

func (f *fakeBackend) Infer(app string, in []float32) ([]float32, error) {
	return f.InferCtx(context.Background(), app, in)
}

func (f *fakeBackend) InferCtx(ctx context.Context, app string, in []float32) ([]float32, error) {
	f.calls.Add(1)
	f.mu.Lock()
	err, delay, gate := f.err, f.delay, f.gate
	f.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: %v", service.ErrDeadlineExceeded, ctx.Err())
		}
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if err != nil {
		return nil, err
	}
	return []float32{1}, nil
}

func TestRouterAnswersMatchSingleServer(t *testing.T) {
	testutil.NoLeaks(t)
	rt := New(Config{Policy: RoundRobin})
	defer rt.Close()
	for i := 0; i < 3; i++ {
		_, addr := startReplica(t, service.AppConfig{BatchInstances: 4, BatchWindow: time.Millisecond})
		if err := rt.AddAddr(fmt.Sprintf("r%d", i), addr, nil); err != nil {
			t.Fatal(err)
		}
	}
	in := []float32{1, 0, -1, 2, 0.5, 0, 0, 1}
	want := refOutput(t, in)
	// Every replica must produce the identical answer as routing cycles.
	for i := 0; i < 9; i++ {
		out, err := rt.Infer("tiny", in)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if math.Abs(float64(out[j]-want[j])) > 1e-6 {
				t.Fatalf("query %d: out[%d]=%v want %v", i, j, out[j], want[j])
			}
		}
	}
	for _, snap := range rt.Stats() {
		if snap.Stats.Sent != 3 || snap.Stats.OK != 3 {
			t.Fatalf("round-robin skew: %s got %s, want sent=3 ok=3", snap.ID, snap.Stats)
		}
	}
	if lat := rt.RouteLatency(); lat.Count != 9 {
		t.Fatalf("route stage recorded %d samples, want 9", lat.Count)
	}
}

// loadReplica pins synthetic outstanding load on one registered
// replica (tests run in-package, so they reach the counter the
// load-aware policies read).
func loadReplica(rt *Router, id string, n int64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, r := range rt.replicas {
		if r.id == id {
			r.outstanding.Add(n)
			return
		}
	}
	panic("unknown replica " + id)
}

func TestRouterPerAppPolicies(t *testing.T) {
	a, b := &fakeBackend{}, &fakeBackend{}
	rt := New(Config{
		Policy:    RoundRobin,
		AppPolicy: map[string]Policy{"busy": LeastOutstanding},
	})
	defer rt.Close()
	rt.AddBackend("a", a)
	rt.AddBackend("b", b)
	// Pin load on a: the "busy" app's least-outstanding policy must
	// always pick the idle b, while the default round-robin app keeps
	// alternating regardless of load.
	loadReplica(rt, "a", 5)
	for i := 0; i < 8; i++ {
		if _, err := rt.Infer("busy", nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.calls.Load(); got != 8 {
		t.Fatalf("least-outstanding sent %d of 8 queries to the idle replica", got)
	}
	aBase := a.calls.Load()
	for i := 0; i < 8; i++ {
		if _, err := rt.Infer("other", nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.calls.Load() - aBase; got != 4 {
		t.Fatalf("round-robin app sent %d of 8 queries to the loaded replica, want 4", got)
	}
}

func TestRouterPowerOfTwoPrefersIdleReplica(t *testing.T) {
	busy, idle := &fakeBackend{}, &fakeBackend{}
	rt := New(Config{Policy: PowerOfTwo})
	defer rt.Close()
	rt.AddBackend("busy", busy)
	rt.AddBackend("idle", idle)
	loadReplica(rt, "busy", 5)
	const queries = 32
	for i := 0; i < queries; i++ {
		if _, err := rt.Infer("tiny", nil); err != nil {
			t.Fatal(err)
		}
	}
	// p2c compares the two sampled replicas' outstanding counts; with
	// one replica pinned busy, every sample that sees both replicas
	// picks the idle one, so the idle replica must take the clear
	// majority (sampling the busy replica twice is the only leak).
	if got := idle.calls.Load(); got < queries*3/4 {
		t.Fatalf("power-of-two sent only %d of %d queries to the idle replica", got, queries)
	}
	if busy.calls.Load()+idle.calls.Load() != queries {
		t.Fatal("lost attempts")
	}
}

func TestRouterRetriesRetryableAndSucceeds(t *testing.T) {
	bad, good := &fakeBackend{}, &fakeBackend{}
	bad.setErr(fmt.Errorf("%w: replica draining", service.ErrShuttingDown))
	rt := New(Config{Policy: RoundRobin})
	defer rt.Close()
	rt.AddBackend("bad", bad)
	rt.AddBackend("good", good)
	for i := 0; i < 6; i++ {
		if _, err := rt.Infer("tiny", nil); err != nil {
			t.Fatalf("query %d failed despite a healthy replica: %v", i, err)
		}
	}
	stats := rt.Stats()
	if stats[1].Stats.OK != 6 {
		t.Fatalf("healthy replica answered %d of 6", stats[1].Stats.OK)
	}
	if stats[0].Stats.Failures == 0 {
		t.Fatal("draining replica's failures were not recorded")
	}
}

func TestRouterMarksDownAfterConsecutiveFailures(t *testing.T) {
	bad, good := &fakeBackend{}, &fakeBackend{}
	bad.setErr(fmt.Errorf("%w: boom", service.ErrTransport))
	rt := New(Config{
		Policy: RoundRobin,
		Health: HealthConfig{FailureThreshold: 3, ProbeInterval: time.Hour},
	})
	defer rt.Close()
	rt.AddBackend("bad", bad)
	rt.AddBackend("good", good)
	for i := 0; i < 12; i++ {
		if _, err := rt.Infer("tiny", nil); err != nil {
			t.Fatal(err)
		}
	}
	stats := rt.Stats()
	if stats[0].Healthy {
		t.Fatal("failing replica still marked healthy after threshold")
	}
	if stats[0].Stats.MarkDowns != 1 {
		t.Fatalf("markdowns = %d, want 1", stats[0].Stats.MarkDowns)
	}
	// Once down (probe interval: 1h), the bad replica receives nothing.
	badCalls := bad.calls.Load()
	for i := 0; i < 8; i++ {
		if _, err := rt.Infer("tiny", nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := bad.calls.Load(); got != badCalls {
		t.Fatalf("marked-down replica still received %d queries", got-badCalls)
	}
}

func TestRouterProbeRecoveryWithExponentialBackoff(t *testing.T) {
	flaky, good := &fakeBackend{}, &fakeBackend{}
	flaky.setErr(fmt.Errorf("%w: down", service.ErrTransport))
	const probe = 20 * time.Millisecond
	rt := New(Config{
		Policy: RoundRobin,
		Health: HealthConfig{FailureThreshold: 1, ProbeInterval: probe, MaxProbeInterval: time.Second},
	})
	defer rt.Close()
	rt.AddBackend("flaky", flaky)
	rt.AddBackend("good", good)
	// One failure marks it down (threshold 1).
	for i := 0; i < 2; i++ {
		if _, err := rt.Infer("tiny", nil); err != nil {
			t.Fatal(err)
		}
	}
	if rt.Stats()[0].Healthy {
		t.Fatal("replica not marked down")
	}
	// After the first interval a single probe goes through, fails, and
	// doubles the back-off.
	time.Sleep(probe + 10*time.Millisecond)
	for i := 0; i < 4; i++ {
		rt.Infer("tiny", nil)
	}
	s := rt.Stats()[0].Stats
	if s.Probes != 1 {
		t.Fatalf("probes = %d, want exactly 1 per expired interval", s.Probes)
	}
	if s.MarkDowns != 2 {
		t.Fatalf("markdowns = %d, want 2 (initial + failed probe)", s.MarkDowns)
	}
	// Heal the replica; after the doubled interval the next probe
	// succeeds and traffic returns.
	flaky.setErr(nil)
	time.Sleep(2*probe + 10*time.Millisecond)
	for i := 0; i < 6; i++ {
		if _, err := rt.Infer("tiny", nil); err != nil {
			t.Fatal(err)
		}
	}
	if !rt.Stats()[0].Healthy {
		t.Fatal("replica did not recover after a successful probe")
	}
	if ok := rt.Stats()[0].Stats.OK; ok == 0 {
		t.Fatal("recovered replica received no traffic")
	}
}

// TestRouterProbeReleasedOnTerminalError guards the probe slot against
// leaking: a recovery probe that ends in a NON-retryable error must
// still release the replica's single probe slot. A server-answered
// application error proves the replica alive and recovers it; a
// deadline is inconclusive and re-marks it down with back-off — but
// either way a later probe must remain possible, or one unlucky probe
// permanently ejects the replica from the fleet.
func TestRouterProbeReleasedOnTerminalError(t *testing.T) {
	const probe = 20 * time.Millisecond
	newFleet := func(t *testing.T) (*fakeBackend, *Router) {
		t.Helper()
		bad, good := &fakeBackend{}, &fakeBackend{}
		bad.setErr(fmt.Errorf("%w: down", service.ErrTransport))
		rt := New(Config{
			Policy: RoundRobin,
			Health: HealthConfig{FailureThreshold: 1, ProbeInterval: probe, MaxProbeInterval: time.Second},
		})
		t.Cleanup(rt.Close)
		rt.AddBackend("bad", bad)
		rt.AddBackend("good", good)
		for i := 0; i < 2; i++ {
			if _, err := rt.Infer("tiny", nil); err != nil {
				t.Fatal(err)
			}
		}
		if rt.Stats()[0].Healthy {
			t.Fatal("replica not marked down")
		}
		return bad, rt
	}

	t.Run("server-answered error recovers the replica", func(t *testing.T) {
		bad, rt := newFleet(t)
		// The probe lands while the replica answers a deterministic
		// application error: the error surfaces to its unlucky caller,
		// but the answer itself proves the replica alive.
		bad.setErr(errors.New("service: server error: bad payload"))
		time.Sleep(probe + 10*time.Millisecond)
		var sawAppErr bool
		for i := 0; i < 4; i++ {
			if _, err := rt.Infer("tiny", nil); err != nil {
				sawAppErr = true
			}
		}
		if !sawAppErr {
			t.Fatal("probe never reached the erroring replica")
		}
		if !rt.Stats()[0].Healthy {
			t.Fatal("server-answered probe left the replica down (probe slot leaked)")
		}
	})

	t.Run("deadline re-marks down and allows a re-probe", func(t *testing.T) {
		bad, rt := newFleet(t)
		// The probe times out: inconclusive liveness evidence, so the
		// replica goes back down with doubled back-off — not wedged
		// with its probe slot held forever.
		bad.setErr(fmt.Errorf("%w: no result before deadline", service.ErrDeadlineExceeded))
		time.Sleep(probe + 10*time.Millisecond)
		for i := 0; i < 4; i++ {
			rt.Infer("tiny", nil)
		}
		s := rt.Stats()[0]
		if s.Healthy {
			t.Fatal("inconclusive probe marked the replica healthy")
		}
		if s.Stats.Probes != 1 {
			t.Fatalf("probes = %d, want 1", s.Stats.Probes)
		}
		if s.Stats.MarkDowns != 2 {
			t.Fatalf("markdowns = %d, want 2 (initial + inconclusive probe)", s.Stats.MarkDowns)
		}
		// After the doubled interval the slot must be claimable again;
		// a healed replica then recovers via its second probe.
		bad.setErr(nil)
		time.Sleep(2*probe + 10*time.Millisecond)
		for i := 0; i < 6; i++ {
			if _, err := rt.Infer("tiny", nil); err != nil {
				t.Fatal(err)
			}
		}
		s = rt.Stats()[0]
		if s.Stats.Probes != 2 {
			t.Fatalf("probes = %d, want 2 (slot released for re-probe)", s.Stats.Probes)
		}
		if !s.Healthy {
			t.Fatal("replica never recovered after a terminal-error probe")
		}
	})
}

func TestRouterSlowResponsesTripMarkDown(t *testing.T) {
	slow := &fakeBackend{}
	slow.mu.Lock()
	slow.delay = 30 * time.Millisecond
	slow.mu.Unlock()
	fast := &fakeBackend{}
	rt := New(Config{
		Policy: RoundRobin,
		Health: HealthConfig{
			FailureThreshold: 2,
			SlowThreshold:    5 * time.Millisecond,
			ProbeInterval:    time.Hour,
		},
	})
	defer rt.Close()
	rt.AddBackend("slow", slow)
	rt.AddBackend("fast", fast)
	for i := 0; i < 8; i++ {
		if _, err := rt.Infer("tiny", nil); err != nil {
			t.Fatal(err)
		}
	}
	snap := rt.Stats()[0]
	if snap.Healthy {
		t.Fatal("persistently slow replica was never marked down")
	}
	if snap.Stats.Slow < 2 {
		t.Fatalf("slow signals = %d, want ≥ threshold", snap.Stats.Slow)
	}
}

func TestRouterDeadlineIsTerminal(t *testing.T) {
	a, b := &fakeBackend{}, &fakeBackend{}
	gate := make(chan struct{})
	defer close(gate)
	a.mu.Lock()
	a.gate = gate
	a.mu.Unlock()
	b.mu.Lock()
	b.gate = gate
	b.mu.Unlock()
	rt := New(Config{Policy: RoundRobin})
	defer rt.Close()
	rt.AddBackend("a", a)
	rt.AddBackend("b", b)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := rt.InferCtx(ctx, "tiny", nil)
	if !errors.Is(err, service.ErrDeadlineExceeded) {
		t.Fatalf("got %v, want ErrDeadlineExceeded", err)
	}
	// The deadline belongs to the query: exactly one attempt, no retry
	// burning the other replica.
	if total := a.calls.Load() + b.calls.Load(); total != 1 {
		t.Fatalf("deadline expiry was retried: %d attempts", total)
	}
}

func TestRouterApplicationErrorIsTerminal(t *testing.T) {
	a, b := &fakeBackend{}, &fakeBackend{}
	a.setErr(errors.New("service: unknown application \"nope\""))
	b.setErr(errors.New("service: unknown application \"nope\""))
	rt := New(Config{Policy: RoundRobin})
	defer rt.Close()
	rt.AddBackend("a", a)
	rt.AddBackend("b", b)
	if _, err := rt.Infer("nope", nil); err == nil {
		t.Fatal("expected the application error through")
	}
	if total := a.calls.Load() + b.calls.Load(); total != 1 {
		t.Fatalf("deterministic app error was retried: %d attempts", total)
	}
	// App errors are not health signals: both replicas stay routable.
	for _, snap := range rt.Stats() {
		if !snap.Healthy {
			t.Fatalf("app error marked %s down", snap.ID)
		}
	}
}

func TestRouterAllReplicasDownSurfacesLastError(t *testing.T) {
	a, b := &fakeBackend{}, &fakeBackend{}
	a.setErr(fmt.Errorf("%w: a", service.ErrOverloaded))
	b.setErr(fmt.Errorf("%w: b", service.ErrOverloaded))
	rt := New(Config{Policy: RoundRobin, MaxAttempts: 4})
	defer rt.Close()
	rt.AddBackend("a", a)
	rt.AddBackend("b", b)
	_, err := rt.Infer("tiny", nil)
	if err == nil {
		t.Fatal("expected failure with every replica overloaded")
	}
	if !errors.Is(err, service.ErrOverloaded) {
		t.Fatalf("exhaustion error %v does not wrap the last cause", err)
	}
	if total := a.calls.Load() + b.calls.Load(); total != 4 {
		t.Fatalf("attempts = %d, want MaxAttempts=4", total)
	}
}

func TestRouterNoBackends(t *testing.T) {
	rt := New(Config{})
	defer rt.Close()
	if _, err := rt.Infer("tiny", nil); err == nil {
		t.Fatal("expected an error with no backends")
	}
}

func TestRouterDuplicateBackendID(t *testing.T) {
	rt := New(Config{})
	defer rt.Close()
	if err := rt.AddBackend("a", &fakeBackend{}); err != nil {
		t.Fatal(err)
	}
	if err := rt.AddBackend("a", &fakeBackend{}); err == nil {
		t.Fatal("expected duplicate-ID error")
	}
}

func TestRouterClosedRefusesQueries(t *testing.T) {
	rt := New(Config{})
	rt.AddBackend("a", &fakeBackend{})
	rt.Close()
	if _, err := rt.Infer("tiny", nil); !errors.Is(err, service.ErrShuttingDown) {
		t.Fatalf("post-close Infer returned %v, want ErrShuttingDown", err)
	}
	if err := rt.AddBackend("b", &fakeBackend{}); !errors.Is(err, service.ErrShuttingDown) {
		t.Fatalf("post-close AddBackend returned %v, want ErrShuttingDown", err)
	}
	rt.Close() // idempotent
}

// TestRouterKillReplicaMidRunZeroLostQueries is the acceptance test:
// concurrent clients drive a three-replica TCP fleet while one replica
// is killed mid-run. Zero queries may be lost — every one either
// succeeds (directly or via retry on a surviving replica) or fails
// with a terminal lifecycle error it can account for.
func TestRouterKillReplicaMidRunZeroLostQueries(t *testing.T) {
	testutil.NoLeaks(t)
	rt := New(Config{
		Policy: RoundRobin,
		Health: HealthConfig{FailureThreshold: 2, ProbeInterval: 200 * time.Millisecond},
	})
	defer rt.Close()
	var victim *service.Server
	for i := 0; i < 3; i++ {
		s, addr := startReplica(t, service.AppConfig{
			BatchInstances: 4, BatchWindow: time.Millisecond, Workers: 2,
		})
		if i == 0 {
			victim = s
		}
		if err := rt.AddAddr(fmt.Sprintf("r%d", i), addr, nil); err != nil {
			t.Fatal(err)
		}
	}
	in := []float32{1, 0, -1, 2, 0.5, 0, 0, 1}
	want := refOutput(t, in)

	const clients = 8
	var issued, ok, terminal atomic.Int64
	var unexplainedMu sync.Mutex
	var firstUnexplained error
	noteUnexplained := func(err error) {
		unexplainedMu.Lock()
		if firstUnexplained == nil {
			firstUnexplained = err
		}
		unexplainedMu.Unlock()
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				issued.Add(1)
				out, err := rt.Infer("tiny", in)
				switch {
				case err == nil:
					for j := range want {
						if math.Abs(float64(out[j]-want[j])) > 1e-6 {
							noteUnexplained(fmt.Errorf("wrong answer after failover"))
						}
					}
					ok.Add(1)
				case errors.Is(err, service.ErrDeadlineExceeded),
					errors.Is(err, service.ErrShuttingDown),
					errors.Is(err, service.ErrOverloaded),
					errors.Is(err, service.ErrTransport):
					// Terminal lifecycle outcome: accounted, not lost.
					terminal.Add(1)
				default:
					terminal.Add(1)
					noteUnexplained(err)
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	victim.Close() // kill one replica mid-run
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	if firstUnexplained != nil {
		t.Fatalf("unexplained failure: %v", firstUnexplained)
	}
	if got := ok.Load() + terminal.Load(); got != issued.Load() {
		t.Fatalf("lost queries: issued %d, accounted %d", issued.Load(), got)
	}
	if ok.Load() == 0 {
		t.Fatal("no query succeeded")
	}
	// The fleet kept answering after the kill: with two survivors and
	// retry, failures should be rare — and the victim must be marked
	// down by run end.
	stats := rt.Stats()
	if stats[0].Healthy {
		t.Fatal("killed replica still marked healthy")
	}
	if stats[1].Stats.OK == 0 || stats[2].Stats.OK == 0 {
		t.Fatalf("survivors did not absorb the load: %v / %v", stats[1].Stats, stats[2].Stats)
	}
	t.Logf("issued=%d ok=%d terminal=%d", issued.Load(), ok.Load(), terminal.Load())
}

// TestRouterOverloadIsBackpressureNotMarkdown: an overload answer is
// proof of life, not a failure — even with FailureThreshold 1 the
// shedding replica stays healthy, accrues backpressure instead of
// mark-downs, and load-based policies steer new work to its peers.
func TestRouterOverloadIsBackpressureNotMarkdown(t *testing.T) {
	testutil.NoLeaks(t)
	shedding := &fakeBackend{}
	shedding.setErr(fmt.Errorf("%w: admission rejected", service.ErrOverloaded))
	healthy := &fakeBackend{}
	rt := New(Config{Policy: LeastOutstanding, Health: HealthConfig{FailureThreshold: 1}})
	defer rt.Close()
	if err := rt.AddBackend("shedding", shedding); err != nil {
		t.Fatal(err)
	}
	if err := rt.AddBackend("healthy", healthy); err != nil {
		t.Fatal(err)
	}

	const queries = 5
	for i := 0; i < queries; i++ {
		if _, err := rt.Infer("tiny", make([]float32, 8)); err != nil {
			t.Fatalf("query %d failed despite a healthy peer: %v", i, err)
		}
	}

	stats := rt.Stats()
	shed := stats[0]
	if !shed.Healthy {
		t.Fatal("overload answers marked the replica down")
	}
	if shed.Stats.MarkDowns != 0 || shed.Stats.Failures != 0 {
		t.Fatalf("overload leaked into failure machinery: %+v", shed.Stats)
	}
	if shed.Stats.Backpressure == 0 || shed.Pressure == 0 {
		t.Fatalf("backpressure not recorded: %+v", shed)
	}
	// The first query tried the shedding replica (equal loads, first in
	// registration order) and retried; the pressure penalty then steered
	// every later query straight to the healthy peer.
	if got := shedding.calls.Load(); got != 1 {
		t.Fatalf("shedding replica saw %d calls, want exactly 1", got)
	}
	if got := healthy.calls.Load(); got != queries {
		t.Fatalf("healthy replica served %d, want %d", got, queries)
	}
}

// TestRouterOverloadRecoversProbingReplica: a recovery probe answered
// with overload proves the replica is alive — the probe slot must be
// released and the replica recovered, not re-marked down.
func TestRouterOverloadRecoversProbingReplica(t *testing.T) {
	testutil.NoLeaks(t)
	flaky := &fakeBackend{}
	flaky.setErr(fmt.Errorf("%w: conn reset", service.ErrTransport))
	rt := New(Config{
		MaxAttempts: 1,
		Health:      HealthConfig{FailureThreshold: 1, ProbeInterval: 5 * time.Millisecond},
	})
	defer rt.Close()
	if err := rt.AddBackend("flaky", flaky); err != nil {
		t.Fatal(err)
	}

	// Transport failure marks it down.
	if _, err := rt.Infer("tiny", make([]float32, 8)); err == nil {
		t.Fatal("transport error did not surface")
	}
	if rt.Stats()[0].Healthy {
		t.Fatal("replica not marked down after transport failure")
	}

	// After the probe interval the next query is the recovery probe; it
	// answers with overload → alive → healthy again.
	flaky.setErr(fmt.Errorf("%w: queue full", service.ErrOverloaded))
	time.Sleep(10 * time.Millisecond)
	if _, err := rt.Infer("tiny", make([]float32, 8)); !errors.Is(err, service.ErrOverloaded) {
		t.Fatalf("probe returned %v, want ErrOverloaded", err)
	}
	if !rt.Stats()[0].Healthy {
		t.Fatal("overload-answered probe left the replica down")
	}

	// And the replica serves again once it stops shedding.
	flaky.setErr(nil)
	if _, err := rt.Infer("tiny", make([]float32, 8)); err != nil {
		t.Fatalf("recovered replica failed: %v", err)
	}
}

// TestReplicaPressureDecays: each fast success halves the accumulated
// penalty back to zero.
func TestReplicaPressureDecays(t *testing.T) {
	cfg := HealthConfig{}.withDefaults()
	r := &replica{id: "x"}
	for i := 0; i < 4; i++ {
		r.onBackpressure(cfg, "")
	}
	if p := r.pressure.Load(); p != 4*pressureStep {
		t.Fatalf("pressure = %d after 4 overloads, want %d", p, 4*pressureStep)
	}
	for i := 0; i < 10 && r.pressure.Load() > 0; i++ {
		r.onSuccess(cfg, false, "")
	}
	if p := r.pressure.Load(); p != 0 {
		t.Fatalf("pressure = %d after successes, want 0", p)
	}
	if r.load() != 0 {
		t.Fatalf("load = %d on an idle replica", r.load())
	}
}

// TestRouterJournalsHealthAndCanaryTransitions: mark-down (with its
// cause), probe recovery, and split changes each land in the attached
// event journal.
func TestRouterJournalsHealthAndCanaryTransitions(t *testing.T) {
	flaky, good := &fakeBackend{}, &fakeBackend{}
	flaky.setErr(fmt.Errorf("%w: conn reset", service.ErrTransport))
	const probe = 20 * time.Millisecond
	rt := New(Config{
		Policy: RoundRobin,
		Health: HealthConfig{FailureThreshold: 1, ProbeInterval: probe, MaxProbeInterval: time.Second},
	})
	defer rt.Close()
	j := events.New(64)
	rt.SetJournal(j)
	rt.AddBackend("flaky", flaky)
	rt.AddBackend("good", good)

	for i := 0; i < 2; i++ {
		rt.Infer("tiny", nil)
	}
	downs := j.Filter(events.KindMarkDown, 0)
	if len(downs) != 1 {
		t.Fatalf("markdown events = %d, want 1", len(downs))
	}
	if !strings.Contains(downs[0].Msg, "flaky") || !strings.Contains(downs[0].Msg, "transport failure") {
		t.Errorf("markdown msg = %q, want replica id and cause", downs[0].Msg)
	}

	flaky.setErr(nil)
	time.Sleep(probe + 10*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for len(j.Filter(events.KindRecover, 0)) == 0 && time.Now().Before(deadline) {
		rt.Infer("tiny", nil)
		time.Sleep(time.Millisecond)
	}
	recs := j.Filter(events.KindRecover, 0)
	if len(recs) == 0 {
		t.Fatal("no recovery event journaled")
	}
	if !strings.Contains(recs[0].Msg, "flaky recovered") {
		t.Errorf("recovery msg = %q", recs[0].Msg)
	}

	// Canary lifecycle: set, promote, roll back — three journal entries.
	if err := rt.SetSplit("tiny", SplitTarget{Target: "tiny@v1", Weight: 9}, SplitTarget{Target: "tiny@v2", Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Promote("tiny", "tiny@v2"); err != nil {
		t.Fatal(err)
	}
	if err := rt.Rollback("tiny"); err != nil {
		t.Fatal(err)
	}
	cs := j.Filter(events.KindCanary, 0)
	if len(cs) != 3 {
		t.Fatalf("canary events = %d, want 3", len(cs))
	}
	if !strings.Contains(cs[0].Msg, "tiny@v2:10%") ||
		!strings.Contains(cs[1].Msg, "promoted") ||
		!strings.Contains(cs[2].Msg, "rolled back → tiny@v1:90% tiny@v2:10%") {
		t.Errorf("canary timeline = %q, %q, %q", cs[0].Msg, cs[1].Msg, cs[2].Msg)
	}
}
