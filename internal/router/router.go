// Package router is the dispatch tier the paper's WSC study assumes in
// front of a fleet of DjiNN instances (§6): a client-side front end
// that fans queries across N service replicas. It owns the replica
// set — per-backend connection pools, health state driven by
// consecutive-failure and slow-response signals with exponential
// probe-based recovery — plus per-app routing policies (round-robin,
// least-outstanding, power-of-two-choices) and deadline-aware retry:
// a query that fails on a marked-down or erroring backend is reissued
// on another replica within its remaining context budget.
//
// The router implements service.ContextBackend, so everything that
// drives a single server (the Tonic applications, the workload
// drivers) drives a fleet unchanged.
package router

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"djinn/internal/events"
	"djinn/internal/metrics"
	"djinn/internal/service"
	"djinn/internal/trace"
)

// HealthConfig tunes the per-replica health state machine.
type HealthConfig struct {
	// FailureThreshold is how many consecutive failure signals
	// (retryable errors or slow responses) mark a replica down.
	// Zero means 3.
	FailureThreshold int
	// SlowThreshold classifies a successful answer as a slow-response
	// signal when it takes longer than this. Zero disables the signal.
	SlowThreshold time.Duration
	// ProbeInterval is how long a replica stays down after its first
	// mark-down; each failed recovery probe doubles it up to
	// MaxProbeInterval. Zero means 100ms.
	ProbeInterval time.Duration
	// MaxProbeInterval caps the exponential back-off. Zero means 5s.
	MaxProbeInterval time.Duration
}

func (h HealthConfig) withDefaults() HealthConfig {
	if h.FailureThreshold <= 0 {
		h.FailureThreshold = 3
	}
	if h.ProbeInterval <= 0 {
		h.ProbeInterval = 100 * time.Millisecond
	}
	if h.MaxProbeInterval <= 0 {
		h.MaxProbeInterval = 5 * time.Second
	}
	return h
}

// Config describes one router.
type Config struct {
	// Policy is the default routing policy.
	Policy Policy
	// AppPolicy overrides the policy for specific applications (the
	// paper's apps have very different query costs: a 548-frame ASR
	// query is worth spreading by load, a 38KB POS query is not).
	AppPolicy map[string]Policy
	// MaxAttempts bounds how many replicas one query may try before
	// its failure is surfaced. Zero means one attempt per replica,
	// with a floor of two so a lone replica still absorbs one
	// transient transport error.
	MaxAttempts int
	// Health tunes mark-down and recovery.
	Health HealthConfig
	// PoolSize is how many idle connections each TCP backend added
	// with AddAddr keeps for reuse. It does not cap concurrency:
	// exchanges beyond it dial fresh connections that are closed
	// instead of recycled when they finish. Zero means 4.
	PoolSize int
}

// healthState is one replica's availability.
type healthState int

const (
	healthy healthState = iota
	down
)

// replica is one backend plus its routing state.
type replica struct {
	id string
	be service.ContextBackend

	outstanding atomic.Int64
	// pressure is a decaying backpressure penalty: each overload answer
	// (the replica's admission controller or pending queue shed the
	// query) bumps it, each fast success halves it. It is added to
	// outstanding when load-based policies compare replicas, steering
	// new work away from backends that are refusing it without the
	// blunt instrument of a mark-down — an overload answer proves the
	// replica is alive.
	pressure atomic.Int64
	counters metrics.BackendCounters

	ownedPool *clientPool                     // non-nil when the router dialled this backend
	jrn       *atomic.Pointer[events.Journal] // the router's journal slot, shared

	mu            sync.Mutex
	state         healthState
	consecFails   int
	downUntil     time.Time
	probeInterval time.Duration // next mark-down duration (doubles per failed probe)
	probing       bool          // one recovery probe in flight
}

// available reports whether the replica may receive a regular query.
// A down replica whose mark-down expired is NOT available here; pick
// claims it explicitly as a probe so exactly one query tests it.
func (r *replica) available() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state == healthy
}

// claimProbe atomically claims the single recovery-probe slot of a
// down replica whose mark-down has expired.
func (r *replica) claimProbe(now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != down || r.probing || now.Before(r.downUntil) {
		return false
	}
	r.probing = true
	r.counters.Probe()
	return true
}

// journalf appends one router event carrying the trace ID in scope
// when the transition happened; a no-op until SetJournal.
func (r *replica) journalf(kind events.Kind, traceID, format string, args ...any) {
	if r.jrn == nil {
		return
	}
	r.jrn.Load().AppendTraced(kind, "router", traceID, fmt.Sprintf(format, args...))
}

// onSuccess records a successful exchange; slow marks it as a
// slow-response health signal (the answer still goes to the caller).
func (r *replica) onSuccess(init HealthConfig, slow bool, traceID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if slow {
		r.counters.Slow()
		r.failLocked(init, time.Now(), traceID, "slow response")
		return
	}
	r.consecFails = 0
	r.probing = false
	if r.state == down {
		// Recovery: the probe answered fast. Reset the back-off so the
		// next incident starts from the initial interval.
		r.state = healthy
		r.probeInterval = init.ProbeInterval
		r.journalf(events.KindRecover, traceID, "%s recovered: probe answered fast", r.id)
	}
	// A fast answer is evidence the backend is absorbing load again:
	// decay the backpressure penalty geometrically.
	if p := r.pressure.Load(); p > 0 {
		r.pressure.Store(p / 2)
	}
}

// onTerminal resolves an attempt that ended in a non-retryable error.
// For a healthy replica this is not a health signal (application
// errors are deterministic, deadline budgets belong to the query) —
// but a probe must never keep its slot past its attempt, or the
// replica is ejected from the fleet forever. A server-answered error
// proves the replica is alive, so the probe recovers it; a client-side
// deadline or cancellation is inconclusive, so the replica is
// re-marked down with the usual exponential back-off and re-probed
// later.
func (r *replica) onTerminal(init HealthConfig, answered bool, traceID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.probing {
		return
	}
	r.probing = false
	if answered {
		r.consecFails = 0
		r.state = healthy
		r.probeInterval = init.ProbeInterval
		r.journalf(events.KindRecover, traceID, "%s recovered: probe drew a server answer", r.id)
		return
	}
	r.markDownLocked(init, time.Now(), traceID, "recovery probe inconclusive (caller deadline/cancel)")
}

// onFailure records a retryable failure signal.
func (r *replica) onFailure(init HealthConfig, traceID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters.Failure()
	r.failLocked(init, time.Now(), traceID, "transport failure")
}

// onBackpressure records an overload answer. Unlike onFailure this is
// NOT a mark-down signal: the replica answered, which proves it is
// alive and draining — marking it down would amplify the overload by
// concentrating load on the remaining replicas and then blinding the
// router to this one's recovery. Instead the pressure penalty steers
// load-based policies away while the query retries elsewhere, and a
// probing replica recovers (the probe got an answer).
func (r *replica) onBackpressure(init HealthConfig, traceID string) {
	r.pressure.Add(pressureStep)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters.Backpressure()
	r.consecFails = 0
	r.probing = false
	if r.state == down {
		r.state = healthy
		r.probeInterval = init.ProbeInterval
		r.journalf(events.KindRecover, traceID, "%s recovered: probe answered with backpressure", r.id)
	}
}

// pressureStep is how much one overload answer weighs against
// outstanding queries when load-based policies compare replicas.
const pressureStep = 2

// load is the replica's comparison key for LeastOutstanding and
// PowerOfTwo: queries in flight plus the decaying overload penalty.
func (r *replica) load() int64 {
	return r.outstanding.Load() + r.pressure.Load()
}

// failLocked advances the health machine on one failure signal: a
// failed recovery probe re-marks the replica down with a doubled
// interval; FailureThreshold consecutive signals mark a healthy one
// down.
func (r *replica) failLocked(init HealthConfig, now time.Time, traceID, signal string) {
	r.consecFails++
	if r.state == down {
		if r.probing {
			// The recovery probe failed: back off exponentially.
			r.probing = false
			r.markDownLocked(init, now, traceID, "recovery probe failed ("+signal+")")
		}
		return
	}
	if r.consecFails >= init.FailureThreshold {
		r.markDownLocked(init, now, traceID,
			fmt.Sprintf("%d consecutive failure signals (last: %s)", r.consecFails, signal))
	}
}

func (r *replica) markDownLocked(init HealthConfig, now time.Time, traceID, cause string) {
	if r.probeInterval <= 0 {
		r.probeInterval = init.ProbeInterval
	}
	r.state = down
	r.downUntil = now.Add(r.probeInterval)
	r.journalf(events.KindMarkDown, traceID, "%s marked down for %v: %s", r.id, r.probeInterval, cause)
	r.probeInterval *= 2
	if r.probeInterval > init.MaxProbeInterval {
		r.probeInterval = init.MaxProbeInterval
	}
	r.counters.MarkDown()
}

// Healthy reports the replica's current availability (for snapshots).
func (r *replica) healthy() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state == healthy
}

// Router fans queries across a set of service replicas.
type Router struct {
	cfg Config

	mu         sync.Mutex
	replicas   []*replica
	splits     map[string]*split     // base app name → live traffic split
	placements map[string]*placement // base app name → shard-map entry
	rr         atomic.Uint64
	rng        uint64
	closed     bool

	route   *metrics.StageBreakdown
	traces  atomic.Pointer[trace.Store]
	journal atomic.Pointer[events.Journal]
}

// New creates a router with no backends; add them with AddBackend or
// AddAddr before serving queries.
func New(cfg Config) *Router {
	cfg.Health = cfg.Health.withDefaults()
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 4
	}
	rt := &Router{cfg: cfg, rng: 0x6a09e667f3bcc909, route: metrics.NewStageBreakdown()}
	rt.traces.Store(trace.NewStore("router", trace.DefaultStoreSize))
	return rt
}

// TraceStore returns the router's bounded span store: every traced
// query (a context carrying trace.WithID) leaves one route_attempt
// span per attempt here — including the retry/markdown cause of each
// failed attempt — plus a closing route span.
func (rt *Router) TraceStore() *trace.Store { return rt.traces.Load() }

// SetTraceStore replaces the router's span store.
func (rt *Router) SetTraceStore(st *trace.Store) {
	if st != nil {
		rt.traces.Store(st)
	}
}

// SetJournal attaches the fleet event journal: every mark-down (with
// its cause), recovery, and canary split change appends one entry,
// carrying the trace ID of the query whose exchange drove the
// transition. Nil detaches.
func (rt *Router) SetJournal(j *events.Journal) {
	rt.journal.Store(j)
}

// journalf appends one router-sourced event; a no-op when no journal
// is attached.
func (rt *Router) journalf(kind events.Kind, format string, args ...any) {
	rt.journal.Load().Appendf(kind, "router", format, args...)
}

// AddBackend registers a replica the caller owns (an in-process
// *service.Server, a hand-dialled *service.Client, or a test fake).
// The router will route to it but not close it.
func (rt *Router) AddBackend(id string, be service.ContextBackend) error {
	return rt.add(&replica{id: id, be: be, probeInterval: rt.cfg.Health.ProbeInterval})
}

// AddAddr registers a TCP replica by address. The router owns the
// connection pool it creates: connections are dialled lazily (through
// dial, or the default dialer when nil), pipelined up to PoolSize, and
// closed by Close.
func (rt *Router) AddAddr(id, addr string, dial service.DialFunc) error {
	pool := newClientPool(addr, dial, rt.cfg.PoolSize)
	return rt.add(&replica{
		id: id, be: &pooledBackend{pool: pool},
		ownedPool: pool, probeInterval: rt.cfg.Health.ProbeInterval,
	})
}

func (rt *Router) add(r *replica) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return fmt.Errorf("%w: router is closed", service.ErrShuttingDown)
	}
	for _, existing := range rt.replicas {
		if existing.id == r.id {
			return fmt.Errorf("router: backend %q already registered", r.id)
		}
	}
	r.jrn = &rt.journal
	rt.replicas = append(rt.replicas, r)
	return nil
}

// Backends returns the registered replica IDs, in registration order.
func (rt *Router) Backends() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ids := make([]string, len(rt.replicas))
	for i, r := range rt.replicas {
		ids[i] = r.id
	}
	return ids
}

// snapshotReplicas copies the replica slice so routing never holds the
// router lock across a backend exchange.
func (rt *Router) snapshotReplicas() []*replica {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]*replica(nil), rt.replicas...)
}

// rand steps the router's xorshift state (p2c sampling).
func (rt *Router) rand() uint64 {
	rt.mu.Lock()
	x := rt.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	rt.rng = x
	rt.mu.Unlock()
	return x
}

// policyFor resolves the routing policy for one application.
func (rt *Router) policyFor(app string) Policy {
	if p, ok := rt.cfg.AppPolicy[app]; ok {
		return p
	}
	return rt.cfg.Policy
}

// pick selects the replica for one attempt. When the app has a
// shard-map entry (SetPlacement) only its placed replicas are ever
// considered — for regular attempts, for the widened fallback, and for
// recovery probes, so a query can neither leak onto a replica that no
// longer serves its app nor resurrect a stale assignment by probing it.
// Priority order within the placed set: a down replica whose mark-down
// expired claims this query as its single recovery probe; otherwise the
// app's policy chooses among healthy replicas not yet tried by this
// query; if that set is empty the policy chooses among all untried
// placed replicas (better to fail fast against a down backend — which
// also probes it — than to fail without attempting). Returns nil only
// when every eligible replica has been tried.
func (rt *Router) pick(app string, tried map[*replica]bool) *replica {
	replicas := rt.snapshotReplicas()
	pl := rt.placementFor(app)
	now := time.Now()
	var candidates []*replica
	for _, r := range replicas {
		if tried[r] || pl.weightOf(r.id) == 0 {
			continue
		}
		if r.claimProbe(now) {
			return r
		}
		if r.available() {
			candidates = append(candidates, r)
		}
	}
	if len(candidates) == 0 {
		for _, r := range replicas {
			if !tried[r] && pl.weightOf(r.id) != 0 {
				candidates = append(candidates, r)
			}
		}
	}
	switch len(candidates) {
	case 0:
		return nil
	case 1:
		return candidates[0]
	}
	switch rt.policyFor(app) {
	case LeastOutstanding:
		best := candidates[0]
		for _, r := range candidates[1:] {
			if pl.lessLoaded(r, best) {
				best = r
			}
		}
		return best
	case PowerOfTwo:
		x := rt.rand()
		a := candidates[x%uint64(len(candidates))]
		b := candidates[(x>>32)%uint64(len(candidates))]
		if pl.lessLoaded(b, a) {
			return b
		}
		return a
	default: // RoundRobin
		if pl != nil {
			return pl.pickWeighted(candidates)
		}
		return candidates[rt.rr.Add(1)%uint64(len(candidates))]
	}
}

// maxAttempts resolves the per-query attempt bound.
func (rt *Router) maxAttempts(nReplicas int) int {
	if rt.cfg.MaxAttempts > 0 {
		return rt.cfg.MaxAttempts
	}
	if nReplicas < 2 {
		return 2
	}
	return nReplicas
}

// Infer routes one query without a deadline.
func (rt *Router) Infer(app string, in []float32) ([]float32, error) {
	return rt.InferCtx(context.Background(), app, in)
}

// InferCtx routes one query across the fleet within its context
// budget. Retryable failures (a shed query, a draining replica, a
// broken transport) move the query to another replica and feed the
// failed replica's health state; deadline expiry is terminal, and so
// are server-answered application errors. Every attempt re-checks the
// remaining budget first, so a retry storm can never outlive the
// query's own deadline.
func (rt *Router) InferCtx(ctx context.Context, app string, in []float32) ([]float32, error) {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil, fmt.Errorf("%w: router is closed", service.ErrShuttingDown)
	}
	n := len(rt.replicas)
	rt.mu.Unlock()
	if n == 0 {
		return nil, fmt.Errorf("router: no backends registered")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	// Resolve the traffic split once per query: the rewritten target
	// (e.g. "imc@v2" for a canary arm of "imc") sticks across retries,
	// while routing policy and health stay keyed by the base name.
	target := rt.splitTarget(app)
	traceID, traceStore := trace.IDFrom(ctx), rt.traces.Load()
	attempts := rt.maxAttempts(rt.eligibleCount(app, n))
	tried := make(map[*replica]bool, attempts)
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("%w: budget exhausted after %d attempts (last: %v)", service.ErrDeadlineExceeded, attempt, lastErr)
			}
			return nil, fmt.Errorf("%w: %v", service.ErrDeadlineExceeded, err)
		}
		rep := rt.pick(app, tried)
		if rep == nil {
			// Every replica tried: widen to the full set for the
			// remaining attempts rather than give up early.
			tried = make(map[*replica]bool, attempts)
			if rep = rt.pick(app, tried); rep == nil {
				break
			}
		}
		t0 := time.Now()
		out, err := rt.attempt(ctx, rep, target, in)
		if traceID != "" && traceStore != nil {
			traceStore.Add(traceID, trace.Span{
				Name: "route_attempt", Start: t0, Dur: time.Since(t0),
				Note: attemptNote(rep, attempt, err),
			})
		}
		if err == nil {
			rt.route.Record(metrics.StageRoute, time.Since(start))
			if traceID != "" && traceStore != nil {
				note := fmt.Sprintf("app=%s attempts=%d", app, attempt+1)
				if target != app {
					note += " target=" + target
				}
				traceStore.Add(traceID, trace.Span{
					Name: "route", Start: start, Dur: time.Since(start),
					Note: note,
				})
			}
			return out, nil
		}
		if !service.Retryable(err) {
			return nil, err
		}
		lastErr = err
		tried[rep] = true
	}
	if lastErr == nil {
		return nil, fmt.Errorf("router: no replica placed for %s", app)
	}
	return nil, fmt.Errorf("router: %s failed on %d attempt(s): %w", app, attempts, lastErr)
}

// eligibleCount is how many registered replicas may serve app: the size
// of its placed-and-registered subset, or the whole fleet when the app
// has no shard-map entry (or its entry matches nothing yet).
func (rt *Router) eligibleCount(app string, n int) int {
	pl := rt.placementFor(app)
	if pl == nil {
		return n
	}
	count := 0
	for _, r := range rt.snapshotReplicas() {
		if pl.weightOf(r.id) != 0 {
			count++
		}
	}
	if count == 0 {
		return n
	}
	return count
}

// attemptNote summarises one routing attempt for its trace span: which
// backend, which retry, and — on failure — the cause plus whether the
// failure marked the replica down (the "2 retries after a markdown"
// explanation a tail-latency trace needs).
func attemptNote(rep *replica, attempt int, err error) string {
	note := fmt.Sprintf("backend=%s attempt=%d", rep.id, attempt+1)
	if err == nil {
		return note + " ok"
	}
	msg := err.Error()
	if len(msg) > 120 {
		msg = msg[:120] + "..."
	}
	note += " err=" + msg
	if !rep.healthy() {
		note += " [backend marked down]"
	}
	return note
}

// attempt runs one exchange against one replica, maintaining its
// outstanding count, counters, and health signals.
func (rt *Router) attempt(ctx context.Context, rep *replica, app string, in []float32) ([]float32, error) {
	rep.counters.Sent()
	rep.outstanding.Add(1)
	traceID := trace.IDFrom(ctx)
	t0 := time.Now()
	out, err := rep.be.InferCtx(ctx, app, in)
	elapsed := time.Since(t0)
	rep.outstanding.Add(-1)
	if err == nil {
		rep.counters.OK()
		slow := rt.cfg.Health.SlowThreshold > 0 && elapsed > rt.cfg.Health.SlowThreshold
		rep.onSuccess(rt.cfg.Health, slow, traceID)
		return out, nil
	}
	if service.Retryable(err) {
		if errors.Is(err, service.ErrOverloaded) {
			// The backend answered "no": its admission controller or
			// pending queue shed the query. Backpressure, not failure —
			// the retry goes elsewhere while load-based policies steer
			// around this replica until it answers fast again.
			rep.onBackpressure(rt.cfg.Health, traceID)
		} else {
			rep.onFailure(rt.cfg.Health, traceID)
		}
		return nil, err
	}
	// Non-retryable outcome. An error answered while the caller's
	// budget is intact can only be a server-produced status, which is
	// liveness evidence; a deadline or cancellation says nothing about
	// the replica. Either way the probe slot is released.
	answered := ctx.Err() == nil && !errors.Is(err, service.ErrDeadlineExceeded)
	rep.onTerminal(rt.cfg.Health, answered, traceID)
	return nil, err
}

// BackendSnapshot is one replica's routing state at a point in time.
type BackendSnapshot struct {
	ID          string
	Healthy     bool
	Outstanding int64
	Pressure    int64 // decaying overload penalty (see replica.pressure)
	Stats       metrics.BackendStats
}

// Stats snapshots every replica, in registration order.
func (rt *Router) Stats() []BackendSnapshot {
	replicas := rt.snapshotReplicas()
	out := make([]BackendSnapshot, len(replicas))
	for i, r := range replicas {
		out[i] = BackendSnapshot{
			ID:          r.id,
			Healthy:     r.healthy(),
			Outstanding: r.outstanding.Load(),
			Pressure:    r.pressure.Load(),
			Stats:       r.counters.Snapshot(),
		}
	}
	return out
}

// RouteLatency summarises the route stage: the whole fleet-side
// lifecycle of successful queries, replica selection and retries
// included.
func (rt *Router) RouteLatency() metrics.Summary {
	return rt.route.Summarize().Route
}

// Close releases every router-owned connection pool and refuses
// further queries. Backends registered with AddBackend are the
// caller's to close.
func (rt *Router) Close() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	replicas := append([]*replica(nil), rt.replicas...)
	rt.mu.Unlock()
	for _, r := range replicas {
		if r.ownedPool != nil {
			r.ownedPool.close()
		}
	}
}

var _ service.ContextBackend = (*Router)(nil)
