package router

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"djinn/internal/service"
)

func transportErr() error {
	return fmt.Errorf("%w: connection reset", service.ErrTransport)
}

// TestPlacementValidation: a shard-map entry must name at least one
// replica, with non-zero weights and no duplicates.
func TestPlacementValidation(t *testing.T) {
	rt := New(Config{})
	defer rt.Close()
	cases := []struct {
		name string
		pl   []Placement
	}{
		{"empty", nil},
		{"zero weight", []Placement{{Replica: "r0", Weight: 0}}},
		{"empty id", []Placement{{Replica: "", Weight: 1}}},
		{"duplicate", []Placement{{Replica: "r0", Weight: 1}, {Replica: "r0", Weight: 2}}},
	}
	for _, tc := range cases {
		if err := rt.SetPlacement("app", tc.pl...); err == nil {
			t.Errorf("%s: SetPlacement accepted invalid placement %v", tc.name, tc.pl)
		}
	}
	if err := rt.SetPlacement("app", Placement{Replica: "r0", Weight: 1}); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}
	if apps := rt.PlacementApps(); len(apps) != 1 || apps[0] != "app" {
		t.Fatalf("PlacementApps = %v, want [app]", apps)
	}
}

// TestPlacementRestrictsRouting: with a shard-map entry installed,
// queries flow only to the placed replicas, in exact weight proportion
// under the default policy's deterministic weighted counter.
func TestPlacementRestrictsRouting(t *testing.T) {
	rt := New(Config{})
	defer rt.Close()
	fakes := make([]*fakeBackend, 3)
	for i := range fakes {
		fakes[i] = &fakeBackend{}
		if err := rt.AddBackend(fmt.Sprintf("r%d", i), fakes[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.SetPlacement("tiny",
		Placement{Replica: "r0", Weight: 3},
		Placement{Replica: "r1", Weight: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := rt.Infer("tiny", []float32{1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := fakes[2].calls.Load(); got != 0 {
		t.Fatalf("unplaced replica r2 served %d queries", got)
	}
	if c0, c1 := fakes[0].calls.Load(), fakes[1].calls.Load(); c0 != 75 || c1 != 25 {
		t.Fatalf("weighted split = %d/%d, want exactly 75/25", c0, c1)
	}

	// Clearing the entry re-opens the whole fleet.
	rt.ClearPlacement("tiny")
	for i := 0; i < 30; i++ {
		if _, err := rt.Infer("tiny", []float32{1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := fakes[2].calls.Load(); got == 0 {
		t.Fatal("r2 still excluded after ClearPlacement")
	}
}

// TestPlacementRetriesStayInside: when a placed replica fails, the
// retry goes to another placed replica — never to a replica outside the
// app's shard-map entry, even though the fleet has spare capacity.
func TestPlacementRetriesStayInside(t *testing.T) {
	rt := New(Config{})
	defer rt.Close()
	fakes := make([]*fakeBackend, 3)
	for i := range fakes {
		fakes[i] = &fakeBackend{}
		if err := rt.AddBackend(fmt.Sprintf("r%d", i), fakes[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.SetPlacement("tiny",
		Placement{Replica: "r0", Weight: 1},
		Placement{Replica: "r1", Weight: 1}); err != nil {
		t.Fatal(err)
	}
	fakes[0].setErr(transportErr())
	for i := 0; i < 20; i++ {
		if _, err := rt.Infer("tiny", []float32{1}); err != nil {
			t.Fatalf("query %d: %v (retry should land on r1)", i, err)
		}
	}
	if got := fakes[2].calls.Load(); got != 0 {
		t.Fatalf("retries leaked onto unplaced replica r2 (%d calls)", got)
	}

	// Both placed replicas dead: the query fails rather than leaking.
	fakes[1].setErr(transportErr())
	if _, err := rt.Infer("tiny", []float32{1}); err == nil {
		t.Fatal("query succeeded with every placed replica failing")
	}
	if got := fakes[2].calls.Load(); got != 0 {
		t.Fatalf("exhausted retries leaked onto unplaced replica r2 (%d calls)", got)
	}
}

// TestProbeConsultsShardMap is the regression test for stale-assignment
// resurrection: a recovery probe for an app is only placed on replicas
// that still serve that app. Before the fix, any query could claim any
// down replica's probe slot — so traffic for an app long since moved
// off a replica kept re-testing (and resurrecting) the stale
// assignment.
func TestProbeConsultsShardMap(t *testing.T) {
	rt := New(Config{Health: HealthConfig{
		FailureThreshold: 1,
		ProbeInterval:    2 * time.Millisecond,
		MaxProbeInterval: 2 * time.Millisecond,
	}})
	defer rt.Close()
	r0, r1 := &fakeBackend{}, &fakeBackend{}
	if err := rt.AddBackend("r0", r0); err != nil {
		t.Fatal(err)
	}
	if err := rt.AddBackend("r1", r1); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetPlacement("tiny",
		Placement{Replica: "r0", Weight: 1},
		Placement{Replica: "r1", Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetPlacement("other", Placement{Replica: "r1", Weight: 1}); err != nil {
		t.Fatal(err)
	}

	// Fail r1 until it is marked down (threshold 1: one failed attempt).
	r1.setErr(transportErr())
	for i := 0; i < 4; i++ {
		if _, err := rt.Infer("tiny", []float32{1}); err != nil {
			t.Fatal(err)
		}
	}
	for _, snap := range rt.Stats() {
		if snap.ID == "r1" && snap.Healthy {
			t.Fatal("r1 not marked down by scripted failures")
		}
	}

	// The control plane moves the app off r1; the replica itself heals.
	if err := rt.SetPlacement("tiny", Placement{Replica: "r0", Weight: 1}); err != nil {
		t.Fatal(err)
	}
	r1.setErr(nil)
	time.Sleep(5 * time.Millisecond) // mark-down expires: r1 is probe-eligible
	base := r1.calls.Load()
	for i := 0; i < 50; i++ {
		if _, err := rt.Infer("tiny", []float32{1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := r1.calls.Load(); got != base {
		t.Fatalf("queries for a moved-off app probed the stale replica (%d extra calls)", got-base)
	}

	// An app still placed on r1 probes and recovers it.
	if _, err := rt.Infer("other", []float32{1}); err != nil {
		t.Fatalf("probe query for still-placed app failed: %v", err)
	}
	for _, snap := range rt.Stats() {
		if snap.ID == "r1" && !snap.Healthy {
			t.Fatal("r1 not recovered by the still-placed app's probe")
		}
	}
}

// TestPlacementUnknownReplica: an entry that matches no registered
// backend fails cleanly instead of hanging or leaking onto the fleet.
func TestPlacementUnknownReplica(t *testing.T) {
	rt := New(Config{})
	defer rt.Close()
	f := &fakeBackend{}
	if err := rt.AddBackend("r0", f); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetPlacement("tiny", Placement{Replica: "ghost", Weight: 1}); err != nil {
		t.Fatal(err)
	}
	_, err := rt.Infer("tiny", []float32{1})
	if err == nil || !strings.Contains(err.Error(), "no replica placed") {
		t.Fatalf("err = %v, want no-replica-placed", err)
	}
	if got := f.calls.Load(); got != 0 {
		t.Fatalf("query leaked onto unplaced replica (%d calls)", got)
	}
}

// TestPlacementLeastLoadedWeights: load-based policies compare load per
// unit of weight, so a half-weight replica is chosen only when it has
// less than half the load of a full-weight one.
func TestPlacementLeastLoadedWeights(t *testing.T) {
	rt := New(Config{Policy: LeastOutstanding})
	defer rt.Close()
	a, b := &fakeBackend{}, &fakeBackend{}
	if err := rt.AddBackend("a", a); err != nil {
		t.Fatal(err)
	}
	if err := rt.AddBackend("b", b); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetPlacement("tiny",
		Placement{Replica: "a", Weight: 4},
		Placement{Replica: "b", Weight: 1}); err != nil {
		t.Fatal(err)
	}
	// a carries 2 in-flight queries, b carries 1: raw load favours b,
	// but per-weight load (2/4 < 1/1) favours a.
	loadReplica(rt, "a", 2)
	loadReplica(rt, "b", 1)
	if _, err := rt.Infer("tiny", []float32{1}); err != nil {
		t.Fatal(err)
	}
	if a.calls.Load() != 1 || b.calls.Load() != 0 {
		t.Fatalf("least-loaded ignored weights: a=%d b=%d calls, want 1/0",
			a.calls.Load(), b.calls.Load())
	}
}
