package router

import (
	"context"
	"fmt"
	"sync"

	"djinn/internal/service"
)

// clientPool recycles framed-protocol connections to one replica
// address. A service.Client serialises requests on its connection, so
// pooling is what gives one backend pipelining: each in-flight
// exchange borrows its own connection. size bounds only how many idle
// connections are kept for reuse — it does NOT cap concurrency: when
// the idle list is empty get dials a fresh connection, and put closes
// returned connections beyond the idle bound.
type clientPool struct {
	addr string
	dial service.DialFunc

	mu     sync.Mutex
	idle   []*service.Client
	size   int
	closed bool
}

func newClientPool(addr string, dial service.DialFunc, size int) *clientPool {
	if size <= 0 {
		size = 4
	}
	return &clientPool{addr: addr, dial: dial, size: size}
}

// get returns an idle connection or dials a fresh one.
func (p *clientPool) get() (*service.Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: pool for %s is closed", service.ErrShuttingDown, p.addr)
	}
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	return service.DialWith(p.addr, p.dial)
}

// put recycles a connection, discarding it if its stream desynced or
// the pool is already holding its bound.
func (p *clientPool) put(c *service.Client) {
	if c.Stale() {
		c.Close()
		return
	}
	p.mu.Lock()
	if p.closed || len(p.idle) >= p.size {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// close discards every idle connection and refuses further gets.
func (p *clientPool) close() {
	p.mu.Lock()
	idle := p.idle
	p.idle, p.closed = nil, true
	p.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}

// pooledBackend adapts a clientPool to the ContextBackend interface the
// router routes over: each query borrows one pooled connection for the
// length of the exchange.
type pooledBackend struct{ pool *clientPool }

func (b *pooledBackend) Infer(app string, in []float32) ([]float32, error) {
	return b.InferCtx(context.Background(), app, in)
}

func (b *pooledBackend) InferCtx(ctx context.Context, app string, in []float32) ([]float32, error) {
	c, err := b.pool.get()
	if err != nil {
		return nil, err
	}
	out, err := c.InferCtx(ctx, app, in)
	b.pool.put(c)
	return out, err
}

var _ service.ContextBackend = (*pooledBackend)(nil)
