package router

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"djinn/internal/service"
	"djinn/internal/testutil"
)

// TestRouterStressClientsCloseMarkdown is the race-focused stress run:
// many clients fan queries through the router while one replica is
// killed mid-run (driving the transport-failure → mark-down → probe
// machinery), stats readers poll concurrently, and finally the router
// itself is closed under the remaining clients. Under -race this
// exercises every lock-order pairing the router has; the functional
// assertion is that every outcome is one of the classified sentinels —
// nothing panics, nothing hangs, nothing surfaces an unclassified
// error.
func TestRouterStressClientsCloseMarkdown(t *testing.T) {
	testutil.NoLeaks(t)
	cfg := service.AppConfig{BatchInstances: 8, BatchWindow: time.Millisecond, Workers: 1}
	victim, victimAddr := startReplica(t, cfg)
	_, addrB := startReplica(t, cfg)
	_, addrC := startReplica(t, cfg)

	rt := New(Config{
		Policy:      LeastOutstanding,
		MaxAttempts: 3,
		Health:      HealthConfig{FailureThreshold: 2, ProbeInterval: 5 * time.Millisecond},
	})
	for id, addr := range map[string]string{"a": victimAddr, "b": addrB, "c": addrC} {
		if err := rt.AddAddr(id, addr, service.DefaultDial); err != nil {
			t.Fatal(err)
		}
	}

	var (
		ok           atomic.Int64
		classified   atomic.Int64
		unclassified atomic.Int64
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			in := make([]float32, 8)
			in[0] = float32(w)
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
				_, err := rt.InferCtx(ctx, "tiny", in)
				cancel()
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, service.ErrDeadlineExceeded),
					errors.Is(err, service.ErrShuttingDown),
					errors.Is(err, service.ErrOverloaded),
					errors.Is(err, service.ErrTransport):
					classified.Add(1)
				default:
					unclassified.Add(1)
					t.Errorf("unclassified error: %v", err)
				}
			}
		}(w)
	}
	// Concurrent stats readers: snapshots must be safe mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, b := range rt.Stats() {
				_ = b.Stats.String()
			}
			_ = rt.RouteLatency()
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(60 * time.Millisecond)
	victim.Close() // mark-down path under live load
	time.Sleep(120 * time.Millisecond)
	rt.Close() // router shutdown under live load
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()

	if ok.Load() == 0 {
		t.Fatal("no queries succeeded before the shutdowns")
	}
	if unclassified.Load() != 0 {
		t.Fatalf("%d unclassified errors", unclassified.Load())
	}
}

// serialBackend models one single-worker replica: a mutex serialises
// queries and each holds the worker for a fixed service time. Sleeping
// rather than computing makes each replica a genuine unit of capacity
// on any host, so fleet throughput must scale with replica count.
type serialBackend struct {
	mu      sync.Mutex
	service time.Duration
}

func (s *serialBackend) Infer(app string, in []float32) ([]float32, error) {
	return s.InferCtx(context.Background(), app, in)
}

func (s *serialBackend) InferCtx(ctx context.Context, app string, in []float32) ([]float32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(s.service)
	return make([]float32, 4), nil
}

// TestRouterThroughputScalesWithReplicas is the scaling proof: with
// replicas serialised at a fixed service time, a fleet of n serves ~n
// times the queries of a fleet of one in the same wall-clock window.
func TestRouterThroughputScalesWithReplicas(t *testing.T) {
	testutil.NoLeaks(t)
	const serviceTime = 5 * time.Millisecond
	run := func(replicas int) int64 {
		rt := New(Config{Policy: LeastOutstanding})
		defer rt.Close()
		for i := 0; i < replicas; i++ {
			if err := rt.AddBackend(string(rune('a'+i)), &serialBackend{service: serviceTime}); err != nil {
				t.Fatal(err)
			}
		}
		var done atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				in := make([]float32, 8)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := rt.Infer("tiny", in); err != nil {
						t.Errorf("infer: %v", err)
						return
					}
					done.Add(1)
				}
			}()
		}
		time.Sleep(200 * time.Millisecond)
		close(stop)
		wg.Wait()
		return done.Load()
	}

	one := run(1)
	two := run(2)
	four := run(4)
	t.Logf("completed in 200ms: 1 replica %d, 2 replicas %d, 4 replicas %d", one, two, four)
	if one == 0 {
		t.Fatal("single replica served nothing")
	}
	// Ideal ratios are 2.0 each step; 1.5 leaves headroom for scheduler
	// jitter while still rejecting a flat curve.
	if float64(two) < 1.5*float64(one) {
		t.Errorf("2 replicas served %d, want >= 1.5x the single replica's %d", two, one)
	}
	if float64(four) < 1.5*float64(two) {
		t.Errorf("4 replicas served %d, want >= 1.5x the pair's %d", four, two)
	}
}
