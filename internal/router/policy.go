package router

import (
	"fmt"
	"strings"
)

// Policy selects which available replica serves the next query. The
// same three policies drive both the live router and the cluster
// simulation's GPU-tier dispatch, so measured and simulated routing
// can be compared directly.
type Policy int

const (
	// RoundRobin cycles through the available replicas in order:
	// oblivious to load, cheapest to compute, and the baseline the
	// paper's front-end load balancer implies.
	RoundRobin Policy = iota
	// LeastOutstanding routes to the replica with the fewest in-flight
	// queries — a global view that tracks heterogeneous replica speed
	// but costs a scan per query.
	LeastOutstanding
	// PowerOfTwo samples two random replicas and routes to the less
	// loaded: near-least-outstanding tail behaviour at O(1) cost
	// (Mitzenmacher's "power of two choices").
	PowerOfTwo
)

// Policies lists every routing policy, in definition order.
var Policies = []Policy{RoundRobin, LeastOutstanding, PowerOfTwo}

// String names the policy.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastOutstanding:
		return "least-outstanding"
	case PowerOfTwo:
		return "power-of-two"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy converts a policy name (as printed by String, or the
// short forms "rr", "least", "p2c") to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "round-robin", "roundrobin", "rr":
		return RoundRobin, nil
	case "least-outstanding", "least", "lo":
		return LeastOutstanding, nil
	case "power-of-two", "p2c", "two":
		return PowerOfTwo, nil
	}
	return 0, fmt.Errorf("router: unknown policy %q", s)
}
