package router

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Placement support is the router half of the cluster control plane:
// instead of fanning every application across every replica, a shard
// map restricts each app to a weighted subset of the fleet. The control
// plane (internal/controlplane) computes assignments and installs them
// here; the router enforces them on every pick — regular attempts,
// retries, and recovery probes alike.
//
// Weights bias selection inside an app's replica set: a replica with
// weight 25 against a replica with weight 100 receives one fifth of the
// traffic under the default policy (a deterministic weighted counter)
// and is compared at 4× its raw load by the load-based policies — the
// mechanism the control plane uses to warm a canary assignment before
// promoting it to a full share.

// Placement is one arm of an application's shard-map entry: the replica
// (by router backend ID) and its traffic weight. Weight zero is
// invalid; relative weights set the traffic proportions.
type Placement struct {
	Replica string
	Weight  uint32
}

// placement is the compiled replica subset for one application.
type placement struct {
	order   []Placement       // installation order, for snapshots
	weights map[string]uint32 // replica id → weight
	rr      atomic.Uint64     // weighted round-robin counter
}

// compilePlacement validates and indexes a placement list.
func compilePlacement(placements []Placement) (*placement, error) {
	if len(placements) == 0 {
		return nil, fmt.Errorf("router: placement needs at least one replica")
	}
	p := &placement{
		order:   append([]Placement(nil), placements...),
		weights: make(map[string]uint32, len(placements)),
	}
	for i, pl := range placements {
		if pl.Replica == "" {
			return nil, fmt.Errorf("router: placement %d has an empty replica id", i)
		}
		if pl.Weight == 0 {
			return nil, fmt.Errorf("router: placement for %q has zero weight", pl.Replica)
		}
		if _, dup := p.weights[pl.Replica]; dup {
			return nil, fmt.Errorf("router: duplicate placement for %q", pl.Replica)
		}
		p.weights[pl.Replica] = pl.Weight
	}
	return p, nil
}

// weightOf returns the replica's traffic weight under this placement
// (0 = not placed). A nil placement places every replica at weight 1.
func (p *placement) weightOf(id string) uint32 {
	if p == nil {
		return 1
	}
	return p.weights[id]
}

// SetPlacement installs (or replaces) the shard-map entry for one
// application: queries for app are routed only to the listed replicas,
// in proportion to their weights. Replicas need not be registered yet —
// an unknown ID simply matches nothing until its backend joins. Queries
// already dispatched are unaffected.
func (rt *Router) SetPlacement(app string, placements ...Placement) error {
	p, err := compilePlacement(placements)
	if err != nil {
		return err
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.placements == nil {
		rt.placements = make(map[string]*placement)
	}
	rt.placements[app] = p
	return nil
}

// ClearPlacement removes app's shard-map entry; its queries fan across
// the whole fleet again.
func (rt *Router) ClearPlacement(app string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.placements, app)
}

// Placements snapshots every installed shard-map entry: app →
// placements in installation order, apps iterable in sorted order via
// PlacementApps.
func (rt *Router) Placements() map[string][]Placement {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make(map[string][]Placement, len(rt.placements))
	for app, p := range rt.placements {
		out[app] = append([]Placement(nil), p.order...)
	}
	return out
}

// PlacementApps returns the app names with a shard-map entry, sorted.
func (rt *Router) PlacementApps() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	apps := make([]string, 0, len(rt.placements))
	for app := range rt.placements {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	return apps
}

// placementFor resolves the live placement of one application (nil =
// unrestricted).
func (rt *Router) placementFor(app string) *placement {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.placements[app]
}

// pickWeighted selects among candidates by their placement weights with
// a deterministic weighted counter (like the canary split's): pick c
// lands in the cumulative-weight bucket of c mod total, so proportions
// are exact over any window, with no sampling noise.
func (p *placement) pickWeighted(candidates []*replica) *replica {
	var total uint64
	for _, r := range candidates {
		total += uint64(p.weightOf(r.id))
	}
	if total == 0 {
		return candidates[0]
	}
	x := (p.rr.Add(1) - 1) % total
	var cum uint64
	for _, r := range candidates {
		cum += uint64(p.weightOf(r.id))
		if x < cum {
			return r
		}
	}
	return candidates[len(candidates)-1]
}

// lessLoaded compares two replicas' weighted load under a placement:
// the winner has the lower load per unit of weight (cross-multiplied to
// stay in integers). With a nil placement both weights are 1 and the
// comparison degrades to the raw load order.
func (p *placement) lessLoaded(a, b *replica) bool {
	wa, wb := p.weightOf(a.id), p.weightOf(b.id)
	return a.load()*int64(wb) < b.load()*int64(wa)
}
