package router

import (
	"context"
	"math"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"djinn/internal/modelstore"
	"djinn/internal/service"
	"djinn/internal/tensor"
	"djinn/internal/testutil"
)

// appRecorder is a backend that counts queries per application name —
// exactly what a split test needs to observe the rewrite.
type appRecorder struct {
	mu   sync.Mutex
	apps map[string]int
}

func (r *appRecorder) Infer(app string, in []float32) ([]float32, error) {
	return r.InferCtx(context.Background(), app, in)
}

func (r *appRecorder) InferCtx(_ context.Context, app string, _ []float32) ([]float32, error) {
	r.mu.Lock()
	if r.apps == nil {
		r.apps = make(map[string]int)
	}
	r.apps[app]++
	r.mu.Unlock()
	return []float32{1}, nil
}

func (r *appRecorder) count(app string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.apps[app]
}

func TestSplitDeterministicFraction(t *testing.T) {
	testutil.NoLeaks(t)
	rec := &appRecorder{}
	rt := New(Config{Policy: RoundRobin})
	defer rt.Close()
	if err := rt.AddBackend("r0", rec); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetSplit("imc", SplitTarget{"imc@v1", 9}, SplitTarget{"imc@v2", 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := rt.Infer("imc", nil); err != nil {
			t.Fatal(err)
		}
	}
	// The weighted counter is deterministic: exactly 10 of 100 queries
	// land on the canary, no sampling noise.
	if got := rec.count("imc@v2"); got != 10 {
		t.Fatalf("canary saw %d/100 queries, want exactly 10", got)
	}
	if got := rec.count("imc@v1"); got != 90 {
		t.Fatalf("stable saw %d/100 queries, want exactly 90", got)
	}
	if got := rec.count("imc"); got != 0 {
		t.Fatalf("%d queries escaped the split to the base name", got)
	}
	// Other apps are untouched by imc's split.
	if _, err := rt.Infer("asr", nil); err != nil {
		t.Fatal(err)
	}
	if got := rec.count("asr"); got != 1 {
		t.Fatalf("unsplit app rewritten: %v", rec.apps)
	}
	sts := rt.Splits()["imc"]
	if len(sts) != 2 || sts[0].Routed != 90 || sts[1].Routed != 10 {
		t.Fatalf("Splits() = %+v", sts)
	}
	if apps := rt.SplitApps(); len(apps) != 1 || apps[0] != "imc" {
		t.Fatalf("SplitApps() = %v", apps)
	}
}

func TestSplitPromoteRollback(t *testing.T) {
	testutil.NoLeaks(t)
	rec := &appRecorder{}
	rt := New(Config{Policy: RoundRobin})
	defer rt.Close()
	if err := rt.AddBackend("r0", rec); err != nil {
		t.Fatal(err)
	}
	send := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := rt.Infer("imc", nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Stable pin, then canary, then promote.
	if err := rt.SetSplit("imc", SplitTarget{"imc@v1", 1}); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetSplit("imc", SplitTarget{"imc@v1", 4}, SplitTarget{"imc@v2", 1}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Promote("imc", "imc@v2"); err != nil {
		t.Fatal(err)
	}
	send(10)
	if got := rec.count("imc@v2"); got != 10 {
		t.Fatalf("after Promote, canary saw %d/10", got)
	}
	// Rollback restores the canary split the promotion displaced.
	if err := rt.Rollback("imc"); err != nil {
		t.Fatal(err)
	}
	sts := rt.Splits()["imc"]
	if len(sts) != 2 || sts[0].Target != "imc@v1" || sts[0].Weight != 4 {
		t.Fatalf("after Rollback, Splits() = %+v", sts)
	}
	// History is one-deep: a second rollback has nothing to restore.
	if err := rt.Rollback("imc"); err == nil {
		t.Fatal("second Rollback should fail (one-deep history)")
	}
	rt.ClearSplit("imc")
	send(3)
	if got := rec.count("imc"); got != 3 {
		t.Fatalf("after ClearSplit, base name saw %d/3", got)
	}
	if err := rt.Rollback("imc"); err == nil {
		t.Fatal("Rollback without a split should fail")
	}
	// Rolling back a first-ever split restores "no split".
	if err := rt.SetSplit("imc", SplitTarget{"imc@v9", 1}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Rollback("imc"); err != nil {
		t.Fatal(err)
	}
	if len(rt.Splits()) != 0 {
		t.Fatalf("Splits() after rollback-to-nothing = %v", rt.Splits())
	}
}

func TestSplitValidation(t *testing.T) {
	testutil.NoLeaks(t)
	rt := New(Config{})
	defer rt.Close()
	if err := rt.SetSplit("a"); err == nil {
		t.Fatal("empty split accepted")
	}
	if err := rt.SetSplit("a", SplitTarget{"", 1}); err == nil {
		t.Fatal("empty target accepted")
	}
	if err := rt.SetSplit("a", SplitTarget{"x", 0}); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := rt.SetSplit("a", SplitTarget{"x", 1}, SplitTarget{"x", 2}); err == nil {
		t.Fatal("duplicate target accepted")
	}
}

// TestCanaryRollbackZeroLostQueries is the end-to-end acceptance test
// for versioned rollout: two versions of one model served from the
// store side by side, a canary split steering a deterministic fraction
// to v2, and a mid-traffic rollback that restores v1 without failing a
// single query.
func TestCanaryRollbackZeroLostQueries(t *testing.T) {
	testutil.NoLeaks(t)
	dir := t.TempDir()
	v1, v2 := filepath.Join(dir, "m@v1.djw"), filepath.Join(dir, "m@v2.djw")
	if err := modelstore.WriteFile(v1, "m", 1, tinyNet(1)); err != nil {
		t.Fatal(err)
	}
	if err := modelstore.WriteFile(v2, "m", 2, tinyNet(2)); err != nil {
		t.Fatal(err)
	}
	reg := modelstore.NewRegistry(modelstore.Config{})
	s := service.NewServer()
	s.SetLogger(silence)
	s.AttachModelStore(reg, service.AppConfig{BatchInstances: 4, BatchWindow: 200 * time.Microsecond, Workers: 1})
	for _, p := range []string{v1, v2} {
		if _, err := reg.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		s.Close()
		if err := reg.Close(); err != nil {
			t.Error(err)
		}
	}()
	rt := New(Config{Policy: RoundRobin})
	defer rt.Close()
	if err := rt.AddBackend("s0", s); err != nil {
		t.Fatal(err)
	}

	in := []float32{1, 0, -1, 2, 0.5, 0, 0, 1}
	ref := func(seed uint64) []float32 {
		r := tinyNet(seed).NewRunner(1)
		return append([]float32(nil), r.Forward(tensor.FromSlice(in, 1, 8)).Data()...)
	}
	ref1, ref2 := ref(1), ref(2)
	classify := func(out []float32) string {
		t.Helper()
		match := func(want []float32) bool {
			for j := range want {
				if math.Abs(float64(out[j]-want[j])) > 1e-5 {
					return false
				}
			}
			return true
		}
		switch {
		case match(ref1):
			return "v1"
		case match(ref2):
			return "v2"
		}
		t.Fatalf("answer matches neither version: %v", out)
		return ""
	}

	// Stable: pin all traffic to v1 (a bare "m" would resolve to the
	// newest version, v2 — the split is what keeps v1 serving).
	if err := rt.SetSplit("m", SplitTarget{"m@v1", 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		out, err := rt.Infer("m", in)
		if err != nil {
			t.Fatal(err)
		}
		if v := classify(out); v != "v1" {
			t.Fatalf("stable query %d answered by %s", i, v)
		}
	}
	// Canary: exactly 10% of traffic to v2.
	if err := rt.SetSplit("m", SplitTarget{"m@v1", 9}, SplitTarget{"m@v2", 1}); err != nil {
		t.Fatal(err)
	}
	versions := map[string]int{}
	for i := 0; i < 100; i++ {
		out, err := rt.Infer("m", in)
		if err != nil {
			t.Fatal(err)
		}
		versions[classify(out)]++
	}
	if versions["v2"] != 10 || versions["v1"] != 90 {
		t.Fatalf("canary fraction = %v, want 90/10", versions)
	}

	// Rollback under fire: concurrent clients keep querying while the
	// canary is yanked. Every query must be answered by v1 or v2 —
	// zero lost.
	const clients, perClient = 4, 60
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	rolled := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				out, err := rt.Infer("m", in)
				if err != nil {
					errs <- err
					return
				}
				classify(out)
				if i == perClient/2 {
					select {
					case <-rolled:
					default:
					}
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	if err := rt.Rollback("m"); err != nil {
		t.Fatal(err)
	}
	close(rolled)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("query lost during rollback: %v", err)
	}
	// Rollback restored the 100%-v1 split.
	sts := rt.Splits()["m"]
	if len(sts) != 1 || sts[0].Target != "m@v1" {
		t.Fatalf("post-rollback split = %+v", sts)
	}
	for i := 0; i < 20; i++ {
		out, err := rt.Infer("m", in)
		if err != nil {
			t.Fatal(err)
		}
		if v := classify(out); v != "v1" {
			t.Fatalf("post-rollback query %d answered by %s", i, v)
		}
	}
}
