// Package tonic implements the Tonic Suite (Section 3.2): seven
// end-to-end applications — IMC, DIG, FACE, ASR, POS, CHK, NER — each
// with its real pre-processing (image scaling, MFCC-style feature
// extraction, tokenisation and embedding) and post-processing (argmax
// classification, Viterbi decoding, tag-sequence search), with the DNN
// inference delegated to a DjiNN service backend (remote over TCP or
// in-process).
package tonic

import (
	"fmt"
	"sort"
	"time"

	"djinn/internal/models"
	"djinn/internal/nn"
	"djinn/internal/service"
	"djinn/internal/workload"
)

// ServiceName returns the DjiNN registry name for an application.
func ServiceName(a models.App) string {
	switch a {
	case models.IMC:
		return "imc"
	case models.DIG:
		return "dig"
	case models.FACE:
		return "face"
	case models.ASR:
		return "asr"
	case models.POS:
		return "pos"
	case models.CHK:
		return "chk"
	case models.NER:
		return "ner"
	}
	panic("tonic: unknown app")
}

// Register adds one application's network to a DjiNN server with the
// Table 3 batch size (in DNN input instances).
func Register(s *service.Server, a models.App) error {
	return RegisterPrecision(s, a, nn.Float32)
}

// RegisterPrecision is Register with an explicit kernel precision: the
// app's whole plan pool compiles against the selected backend
// (reference float32, packed float32, or quantized int8).
func RegisterPrecision(s *service.Server, a models.App, prec nn.Precision) error {
	spec := workload.Get(a)
	return s.Register(ServiceName(a), models.BuildCached(a), service.AppConfig{
		BatchInstances: spec.BatchSize * spec.Instances,
		BatchWindow:    2 * time.Millisecond,
		Workers:        4,
		Precision:      prec,
	})
}

// RegisterAll registers every Tonic application. The full model set is
// ~850 MB of weights (Table 1), matching DjiNN's resident-model design.
func RegisterAll(s *service.Server) error {
	return RegisterAllPrecision(s, nn.Float32)
}

// RegisterAllPrecision registers every Tonic application at one kernel
// precision.
func RegisterAllPrecision(s *service.Server, prec nn.Precision) error {
	for _, a := range models.Apps {
		if err := RegisterPrecision(s, a, prec); err != nil {
			return err
		}
	}
	return nil
}

// Prediction is a classification result.
type Prediction struct {
	Class int
	Label string
	Prob  float32
}

// String renders the prediction.
func (p Prediction) String() string {
	return fmt.Sprintf("%s (%.1f%%)", p.Label, p.Prob*100)
}

// argmaxPrediction extracts the top class of one probability vector.
func argmaxPrediction(probs []float32, label func(int) string) Prediction {
	best := 0
	for i, v := range probs {
		if v > probs[best] {
			best = i
		}
	}
	return Prediction{Class: best, Label: label(best), Prob: probs[best]}
}

// topK returns the k most probable classes, descending.
func topK(probs []float32, k int, label func(int) string) []Prediction {
	if k > len(probs) {
		k = len(probs)
	}
	idx := make([]int, len(probs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return probs[idx[a]] > probs[idx[b]] })
	out := make([]Prediction, k)
	for i := 0; i < k; i++ {
		c := idx[i]
		out[i] = Prediction{Class: c, Label: label(c), Prob: probs[c]}
	}
	return out
}

// ImageNetLabel returns the class label for the IMC application. The
// original service maps to the 1000 ImageNet synsets; without the
// synset list this reproduction uses stable synthetic names.
func ImageNetLabel(class int) string { return fmt.Sprintf("synset-%04d", class) }

// FaceLabel returns the identity label for the FACE application's 83
// PubFig83+LFW celebrity classes.
func FaceLabel(class int) string { return fmt.Sprintf("celebrity-%02d", class) }
