package tonic

import (
	"fmt"
	"math"

	"djinn/internal/lang"
	"djinn/internal/models"
	"djinn/internal/service"
)

// TaggedWord is one word with its predicted tag.
type TaggedWord struct {
	Word string
	Tag  string
}

// String renders "word/TAG".
func (t TaggedWord) String() string { return t.Word + "/" + t.Tag }

// nlpQuery runs the common SENNA pipeline: window features → DjiNN →
// sentence-level Viterbi over the task's tag set.
func nlpQuery(b service.Backend, app models.App, words []string, extra [][]float32) ([]int, error) {
	if len(words) == 0 {
		return nil, nil
	}
	in := lang.Windows(words, extra)
	out, err := b.Infer(ServiceName(app), in)
	if err != nil {
		return nil, err
	}
	tags := lang.TagSet(app)
	k := len(tags)
	if len(out) != len(words)*k {
		return nil, fmt.Errorf("tonic: %s returned %d floats for %d words × %d tags", app, len(out), len(words), k)
	}
	// Posteriors → log-emissions for the sequence search.
	emit := make([][]float32, len(words))
	for i := range emit {
		row := make([]float32, k)
		for j := 0; j < k; j++ {
			row[j] = float32(math.Log(float64(out[i*k+j]) + 1e-10))
		}
		emit[i] = row
	}
	return lang.Viterbi(emit, lang.Transitions(tags)), nil
}

func zipTags(words []string, idx []int, tags []string) []TaggedWord {
	out := make([]TaggedWord, len(words))
	for i, w := range words {
		out[i] = TaggedWord{Word: w, Tag: tags[idx[i]]}
	}
	return out
}

// POS is the part-of-speech tagging application.
type POS struct{ backend service.Backend }

// NewPOS creates the application over a DjiNN backend.
func NewPOS(b service.Backend) *POS { return &POS{backend: b} }

// Tag tokenises a sentence and tags each word with its part of speech.
func (a *POS) Tag(sentence string) ([]TaggedWord, error) {
	words := lang.Tokenize(sentence)
	idx, err := a.TagIndices(words)
	if err != nil {
		return nil, err
	}
	return zipTags(words, idx, lang.POSTags), nil
}

// TagIndices tags pre-tokenised words, returning tag indices (used
// internally by CHK).
func (a *POS) TagIndices(words []string) ([]int, error) {
	return nlpQuery(a.backend, models.POS, words, nil)
}

// CHK is the word-chunking application. As in the paper, it "internally
// makes a POS service request, updates the tags for its input, and then
// makes its own DNN service request".
type CHK struct {
	backend service.Backend
	pos     *POS
}

// NewCHK creates the application over a DjiNN backend.
func NewCHK(b service.Backend) *CHK { return &CHK{backend: b, pos: NewPOS(b)} }

// Chunk tags each word with its IOB2 chunk label.
func (a *CHK) Chunk(sentence string) ([]TaggedWord, error) {
	words := lang.Tokenize(sentence)
	if len(words) == 0 {
		return nil, nil
	}
	posIdx, err := a.pos.TagIndices(words)
	if err != nil {
		return nil, fmt.Errorf("tonic: internal POS request: %w", err)
	}
	idx, err := nlpQuery(a.backend, models.CHK, words, lang.POSTagFeatures(posIdx))
	if err != nil {
		return nil, err
	}
	return zipTags(words, idx, lang.CHKTags), nil
}

// NER is the named-entity recognition application.
type NER struct{ backend service.Backend }

// NewNER creates the application over a DjiNN backend.
func NewNER(b service.Backend) *NER { return &NER{backend: b} }

// Recognize tags each word with its IOB2 entity label, using gazetteer
// membership flags as extra input features.
func (a *NER) Recognize(sentence string) ([]TaggedWord, error) {
	words := lang.Tokenize(sentence)
	if len(words) == 0 {
		return nil, nil
	}
	idx, err := nlpQuery(a.backend, models.NER, words, lang.GazetteerFeatures(words))
	if err != nil {
		return nil, err
	}
	return zipTags(words, idx, lang.NERTags), nil
}
