package tonic

import (
	"testing"

	"djinn/internal/models"
	"djinn/internal/modelstore"
)

// The model store exports Tonic nets under modelstore.ExportName; the
// serving tier registers them under ServiceName. They must agree, or
// exported models would be served under different names than the
// built-in apps (modelstore cannot import this package, so the
// contract is pinned here).
func TestExportNameMatchesServiceName(t *testing.T) {
	for _, a := range models.Apps {
		if got, want := modelstore.ExportName(a), ServiceName(a); got != want {
			t.Fatalf("%s: ExportName %q != ServiceName %q", a, got, want)
		}
	}
}
