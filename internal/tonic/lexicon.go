package tonic

import (
	"math"
	"sort"
	"strings"
)

// Lexicon maps words to phone-sequence pronunciations and decodes word
// sequences from frame-level phone posteriors by token passing over a
// pronunciation prefix trie — the decoding-graph search Kaldi performs
// after the DNN scores each frame (Section 3.2.2's postprocessing).
type Lexicon struct {
	root     *trieNode
	phoneIdx map[string]int
}

type trieNode struct {
	id       int               // stable identity for beam deduplication
	children map[int]*trieNode // phone index → next node
	word     string            // non-empty when a word ends here
}

// NewLexicon builds a lexicon from word → space-separated phone
// pronunciations. Unknown phones are rejected.
func NewLexicon(entries map[string]string) (*Lexicon, error) {
	nodes := 0
	mk := func() *trieNode {
		nodes++
		return &trieNode{id: nodes, children: map[int]*trieNode{}}
	}
	l := &Lexicon{root: mk(), phoneIdx: map[string]int{}}
	for i, p := range Phones {
		l.phoneIdx[p] = i
	}
	// Deterministic insertion order.
	words := make([]string, 0, len(entries))
	for w := range entries {
		words = append(words, w)
	}
	sort.Strings(words)
	for _, w := range words {
		node := l.root
		for _, p := range strings.Fields(entries[w]) {
			idx, ok := l.phoneIdx[p]
			if !ok {
				return nil, &unknownPhoneError{word: w, phone: p}
			}
			next := node.children[idx]
			if next == nil {
				next = mk()
				node.children[idx] = next
			}
			node = next
		}
		node.word = w
	}
	return l, nil
}

type unknownPhoneError struct{ word, phone string }

func (e *unknownPhoneError) Error() string {
	return "tonic: lexicon entry " + e.word + " uses unknown phone " + e.phone
}

// DefaultLexicon is a small demonstration vocabulary over the decoder's
// phone set, standing in for Kaldi's pronunciation dictionary.
func DefaultLexicon() *Lexicon {
	l, err := NewLexicon(map[string]string{
		"a":       "ah",
		"the":     "dh ah",
		"to":      "t uw",
		"and":     "ae n d",
		"of":      "ah v",
		"in":      "ih n",
		"is":      "ih z",
		"it":      "ih t",
		"you":     "y uw",
		"we":      "w iy",
		"go":      "g ow",
		"no":      "n ow",
		"yes":     "y eh s",
		"hello":   "hh eh l ow",
		"world":   "w er l d",
		"ok":      "ow k ey",
		"call":    "k ao l",
		"play":    "p l ey",
		"stop":    "s t aa p",
		"time":    "t ay m",
		"day":     "d ey",
		"new":     "n uw",
		"york":    "y ao r k",
		"weather": "w eh dh er",
		"music":   "m y uw z ih k",
		"search":  "s er ch",
		"find":    "f ay n d",
		"home":    "hh ow m",
		"send":    "s eh n d",
		"message": "m eh s ih jh",
	})
	if err != nil {
		panic(err)
	}
	return l
}

// token is one decoding hypothesis: a trie position plus history.
type token struct {
	node    *trieNode
	score   float32
	lastPh  int
	history []string
}

// Decode runs token passing over per-frame phone log-likelihoods
// (frames × NumPhones): tokens advance through pronunciations, loop on
// the current phone, and restart at the trie root when a word completes
// (paying wordPenalty). The best-scoring token's word history wins.
// beam bounds the live tokens per frame.
func (l *Lexicon) Decode(phoneLL [][]float32, beam int) []string {
	if len(phoneLL) == 0 {
		return nil
	}
	if beam <= 0 {
		beam = 16
	}
	const (
		selfLoop    = float32(-0.2)
		advance     = float32(-0.5)
		wordPenalty = float32(-2.0)
	)
	sil := l.phoneIdx["sil"]
	live := []token{{node: l.root, lastPh: -1}}
	for _, frame := range phoneLL {
		var next []token
		emit := func(t token, ph int, bonus float32) {
			next = append(next, token{
				node:   t.node,
				score:  t.score + frame[ph] + bonus,
				lastPh: ph, history: t.history,
			})
		}
		for _, t := range live {
			// Stay in the current phone (phones span many frames).
			if t.lastPh >= 0 {
				emit(t, t.lastPh, selfLoop)
			} else {
				// At a word boundary, silence may absorb frames.
				emit(t, sil, selfLoop)
			}
			// Advance to each next phone of the pronunciation.
			for ph, child := range t.node.children {
				nt := token{node: child, score: t.score + frame[ph] + advance, lastPh: ph, history: t.history}
				if child.word != "" {
					// Word completes: record it and restart at the root.
					hist := append(append([]string(nil), nt.history...), child.word)
					next = append(next, token{
						node: l.root, score: nt.score + wordPenalty,
						lastPh: ph, history: hist,
					})
				}
				if len(child.children) > 0 {
					next = append(next, nt)
				}
			}
		}
		// Beam prune: keep the best hypotheses, dropping state-duplicates.
		// Ties break on trie position so decoding is deterministic
		// despite map-ordered expansion.
		sort.Slice(next, func(i, j int) bool {
			if next[i].score != next[j].score {
				return next[i].score > next[j].score
			}
			if next[i].node.id != next[j].node.id {
				return next[i].node.id < next[j].node.id
			}
			return next[i].lastPh < next[j].lastPh
		})
		seen := map[[2]int]bool{}
		live = live[:0]
		for _, t := range next {
			key := [2]int{t.node.id, t.lastPh}
			if seen[key] {
				continue
			}
			seen[key] = true
			live = append(live, t)
			if len(live) >= beam {
				break
			}
		}
		if len(live) == 0 {
			live = []token{{node: l.root, lastPh: -1, score: float32(math.Inf(-1)) / 2}}
		}
	}
	best := live[0]
	for _, t := range live[1:] {
		// Prefer tokens with completed histories on ties.
		if t.score > best.score || (t.score == best.score && len(t.history) > len(best.history)) {
			best = t
		}
	}
	return best.history
}
