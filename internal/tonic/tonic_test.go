package tonic

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"djinn/internal/dsp"
	"djinn/internal/lang"
	"djinn/internal/models"
	"djinn/internal/service"
	"djinn/internal/tensor"
	"djinn/internal/workload"
)

var (
	srvOnce sync.Once
	srv     *service.Server
)

// lightServer hosts the cheap apps (NLP + DIG) in-process; the heavy
// CNN/DNN apps get their own tests guarded by -short.
func lightServer(t *testing.T) *service.Server {
	t.Helper()
	srvOnce.Do(func() {
		srv = service.NewServer()
		srv.SetLogger(func(string, ...any) {})
		for _, a := range []models.App{models.DIG, models.POS, models.CHK, models.NER} {
			if err := Register(srv, a); err != nil {
				panic(err)
			}
		}
	})
	return srv
}

func TestServiceNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range models.Apps {
		n := ServiceName(a)
		if seen[n] {
			t.Fatalf("duplicate service name %q", n)
		}
		seen[n] = true
	}
}

func TestDIGEndToEnd(t *testing.T) {
	s := lightServer(t)
	app := NewDIG(s)
	rng := tensor.NewRNG(1)
	imgs, _ := workload.Digits(rng, 10)
	preds, err := app.Recognize(imgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 10 {
		t.Fatalf("%d predictions, want 10", len(preds))
	}
	for i, p := range preds {
		if p.Class < 0 || p.Class > 9 || p.Prob <= 0 || p.Prob > 1 {
			t.Fatalf("prediction %d malformed: %+v", i, p)
		}
	}
}

func TestDIGRejectsWrongSize(t *testing.T) {
	app := NewDIG(lightServer(t))
	if _, err := app.Recognize([][]float32{make([]float32, 10)}); err == nil {
		t.Fatal("expected error for wrong pixel count")
	}
}

func TestDIGDeterministic(t *testing.T) {
	app := NewDIG(lightServer(t))
	img := workload.Digit(tensor.NewRNG(2), 5)
	a, err := app.Recognize([][]float32{img})
	if err != nil {
		t.Fatal(err)
	}
	b, err := app.Recognize([][]float32{img})
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Class != b[0].Class || a[0].Prob != b[0].Prob {
		t.Fatal("same input produced different predictions")
	}
}

func TestPOSEndToEnd(t *testing.T) {
	app := NewPOS(lightServer(t))
	tagged, err := app.Tag("The quick brown fox jumps over the lazy dog .")
	if err != nil {
		t.Fatal(err)
	}
	if len(tagged) != 10 {
		t.Fatalf("%d tagged words, want 10", len(tagged))
	}
	valid := map[string]bool{}
	for _, tg := range lang.POSTags {
		valid[tg] = true
	}
	for _, tw := range tagged {
		if !valid[tw.Tag] {
			t.Fatalf("invalid tag %q", tw.Tag)
		}
	}
}

func TestCHKUsesInternalPOSAndIsIOBConsistent(t *testing.T) {
	s := lightServer(t)
	app := NewCHK(s)
	before, _ := s.StatsFor(ServiceName(models.POS))
	tagged, err := app.Chunk("Google builds a new system in Michigan")
	if err != nil {
		t.Fatal(err)
	}
	after, _ := s.StatsFor(ServiceName(models.POS))
	if after.Queries <= before.Queries {
		t.Fatal("CHK did not issue an internal POS request")
	}
	// IOB2 validity: I-X must follow B-X or I-X of the same kind.
	prev := "O"
	for _, tw := range tagged {
		if strings.HasPrefix(tw.Tag, "I-") {
			kind := tw.Tag[2:]
			if prev != "B-"+kind && prev != "I-"+kind {
				t.Fatalf("illegal chunk sequence %s -> %s", prev, tw.Tag)
			}
		}
		prev = tw.Tag
	}
}

func TestNEREndToEndIOBConsistent(t *testing.T) {
	app := NewNER(lightServer(t))
	tagged, err := app.Recognize("Obama met Einstein in Paris near the Google office")
	if err != nil {
		t.Fatal(err)
	}
	prev := "O"
	for _, tw := range tagged {
		if strings.HasPrefix(tw.Tag, "I-") {
			kind := tw.Tag[2:]
			if prev != "B-"+kind && prev != "I-"+kind {
				t.Fatalf("illegal entity sequence %s -> %s", prev, tw.Tag)
			}
		}
		prev = tw.Tag
	}
}

func TestNLPEmptySentence(t *testing.T) {
	app := NewPOS(lightServer(t))
	tagged, err := app.Tag("")
	if err != nil || len(tagged) != 0 {
		t.Fatalf("empty sentence should be a no-op, got %v, %v", tagged, err)
	}
}

func TestToTensorShapeAndRange(t *testing.T) {
	rng := tensor.NewRNG(3)
	img := workload.Image(rng, 640, 480)
	out := ToTensor(img, 227, 227, imageMean)
	if len(out) != 3*227*227 {
		t.Fatalf("len %d", len(out))
	}
	for _, v := range out {
		if v < -1.01 || v > 1.01 || math.IsNaN(float64(v)) {
			t.Fatalf("pixel value %v out of range", v)
		}
	}
}

func TestToTensorUniformImage(t *testing.T) {
	img := image.NewRGBA(image.Rect(0, 0, 64, 64))
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			img.Set(x, y, color.RGBA{R: 128, G: 128, B: 128, A: 255})
		}
	}
	out := ToTensor(img, 8, 8, [3]float32{0, 0, 0})
	for _, v := range out {
		if math.Abs(float64(v)-128.0/255) > 0.01 {
			t.Fatalf("uniform image resampled to %v", v)
		}
	}
}

func TestCenterSquare(t *testing.T) {
	img := image.NewRGBA(image.Rect(0, 0, 100, 60))
	sq := centerSquare(img)
	b := sq.Bounds()
	if b.Dx() != 60 || b.Dy() != 60 || b.Min.X != 20 {
		t.Fatalf("bad crop %v", b)
	}
}

func TestDecodePhonesCollapsesRuns(t *testing.T) {
	// Build posteriors strongly favouring phone 5 for 10 frames then
	// phone 7 for 10 frames: decode must yield exactly those two.
	frames, senones := 20, models.ASRSenones
	post := make([]float32, frames*senones)
	for t2 := 0; t2 < frames; t2++ {
		phone := 5
		if t2 >= 10 {
			phone = 7
		}
		for s := 0; s < senones; s++ {
			if s%NumPhones == phone {
				post[t2*senones+s] = 1.0 / float32(senones/NumPhones)
			} else {
				post[t2*senones+s] = 1e-6
			}
		}
	}
	phones := decodePhones(post, frames, senones)
	if len(phones) != 2 || phones[0] != Phones[5] || phones[1] != Phones[7] {
		t.Fatalf("decoded %v, want [%s %s]", phones, Phones[5], Phones[7])
	}
}

func TestDecodePhonesDropsSilence(t *testing.T) {
	frames, senones := 6, models.ASRSenones
	post := make([]float32, frames*senones)
	sil := len(Phones) - 1
	for t2 := 0; t2 < frames; t2++ {
		for s := 0; s < senones; s++ {
			if s%NumPhones == sil {
				post[t2*senones+s] = 0.1
			}
		}
	}
	if got := decodePhones(post, frames, senones); len(got) != 0 {
		t.Fatalf("silence decoded as %v", got)
	}
}

func TestPhonesToText(t *testing.T) {
	got := phonesToText([]string{"hh", "eh", "l", "ow", "w"})
	if got != "hhehl oww" {
		t.Fatalf("got %q", got)
	}
	if phonesToText(nil) != "" {
		t.Fatal("empty phones should give empty text")
	}
}

func TestASREndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("31M-parameter acoustic model in -short mode")
	}
	s := service.NewServer()
	s.SetLogger(func(string, ...any) {})
	defer s.Close()
	if err := Register(s, models.ASR); err != nil {
		t.Fatal(err)
	}
	app := NewASR(s)
	rng := tensor.NewRNG(4)
	// Half a second of audio keeps the pure-Go forward pass quick.
	signal := workload.Utterance(rng, 0.5)
	tr, err := app.Transcribe(signal)
	if err != nil {
		t.Fatal(err)
	}
	wantFrames := 1 + (len(signal)-dsp.FrameLength)/dsp.FrameShift
	if tr.Frames != wantFrames {
		t.Fatalf("decoded %d frames, want %d", tr.Frames, wantFrames)
	}
	if tr.Text == "" || len(tr.Phones) == 0 {
		t.Fatalf("empty transcription: %+v", tr)
	}
}

func TestIMCAndFACEEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("AlexNet/DeepFace forward passes in -short mode")
	}
	s := service.NewServer()
	s.SetLogger(func(string, ...any) {})
	defer s.Close()
	for _, a := range []models.App{models.IMC, models.FACE} {
		if err := Register(s, a); err != nil {
			t.Fatal(err)
		}
	}
	rng := tensor.NewRNG(5)
	img := workload.Image(rng, 480, 360)

	imc := NewIMC(s)
	p, err := imc.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	if p.Class < 0 || p.Class >= 1000 || p.Prob <= 0 {
		t.Fatalf("IMC prediction malformed: %+v", p)
	}
	if !strings.HasPrefix(p.Label, "synset-") {
		t.Fatalf("IMC label %q", p.Label)
	}

	face := NewFACE(s)
	fp, err := face.Identify(img)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Class < 0 || fp.Class >= models.FaceClasses {
		t.Fatalf("FACE class %d outside the 83 identities", fp.Class)
	}
}

func TestOverTCPMatchesInProcess(t *testing.T) {
	s := lightServer(t)
	// Serve the shared server over a real socket.
	ln, err := newLocalListener()
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	time.Sleep(10 * time.Millisecond)
	c, err := service.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sentence := workload.Sentence(tensor.NewRNG(6), workload.SentenceWords)
	local, err := NewPOS(s).Tag(sentence)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := NewPOS(c).Tag(sentence)
	if err != nil {
		t.Fatal(err)
	}
	if len(local) != len(remote) {
		t.Fatal("length mismatch")
	}
	for i := range local {
		if local[i] != remote[i] {
			t.Fatalf("word %d: %v over TCP vs %v in-process", i, remote[i], local[i])
		}
	}
}

func TestTopK(t *testing.T) {
	probs := []float32{0.1, 0.5, 0.2, 0.15, 0.05}
	preds := topK(probs, 3, func(c int) string { return fmt.Sprintf("c%d", c) })
	if len(preds) != 3 {
		t.Fatalf("%d predictions", len(preds))
	}
	if preds[0].Class != 1 || preds[1].Class != 2 || preds[2].Class != 3 {
		t.Fatalf("order wrong: %v", preds)
	}
	if preds[0].Prob < preds[1].Prob || preds[1].Prob < preds[2].Prob {
		t.Fatal("probabilities not descending")
	}
	// k larger than the class count clamps.
	if got := topK(probs, 99, func(int) string { return "" }); len(got) != 5 {
		t.Fatalf("clamped top-k returned %d", len(got))
	}
}

func TestClassifyPNGRejectsGarbage(t *testing.T) {
	app := NewIMC(lightServer(t))
	if _, err := app.ClassifyPNG(strings.NewReader("not a png")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestClassifyPNGAndTopK(t *testing.T) {
	if testing.Short() {
		t.Skip("AlexNet forward passes in -short mode")
	}
	s := service.NewServer()
	s.SetLogger(func(string, ...any) {})
	defer s.Close()
	if err := Register(s, models.IMC); err != nil {
		t.Fatal(err)
	}
	app := NewIMC(s)
	var buf bytes.Buffer
	if err := png.Encode(&buf, workload.Image(tensor.NewRNG(9), 64, 64)); err != nil {
		t.Fatal(err)
	}
	pred, err := app.ClassifyPNG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	top, err := app.ClassifyTopK(workload.Image(tensor.NewRNG(9), 64, 64), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("%d top-k predictions", len(top))
	}
	if top[0].Class != pred.Class {
		t.Fatalf("top-1 of top-k (%d) disagrees with Classify (%d)", top[0].Class, pred.Class)
	}
	for i := 1; i < len(top); i++ {
		if top[i].Prob > top[i-1].Prob {
			t.Fatal("top-k not sorted")
		}
	}
}

func TestTranscriptionUsesLexicon(t *testing.T) {
	// Feed the decoder posteriors that spell "yes" through the senone
	// collapse and check the words come out of the lexicon path.
	a := &ASR{lexicon: DefaultLexicon(), beam: 24}
	idx := map[string]int{}
	for i, p := range Phones {
		idx[p] = i
	}
	frames := 0
	senones := models.ASRSenones
	var post []float32
	for _, ph := range []string{"y", "eh", "s"} {
		for f := 0; f < 5; f++ {
			frame := make([]float32, senones)
			for s := 0; s < senones; s++ {
				if s%NumPhones == idx[ph] {
					frame[s] = 1.0 / float32(senones/NumPhones)
				} else {
					frame[s] = 1e-6
				}
			}
			post = append(post, frame...)
			frames++
		}
	}
	ll := phoneLogLikelihoods(post, frames, senones)
	words := a.lexicon.Decode(ll, a.beam)
	if len(words) != 1 || words[0] != "yes" {
		t.Fatalf("decoded %v, want [yes]", words)
	}
}
