package tonic

import (
	"math"
	"strings"

	"djinn/internal/dsp"
	"djinn/internal/models"
	"djinn/internal/service"
)

// The decoder's phone inventory: the acoustic model's 3000 senones are
// tied states of these phones (senone s belongs to phone s % NumPhones,
// a uniform tying standing in for the Kaldi decision tree).
const NumPhones = 40

// Phones is the phone inventory used to spell decoded words.
var Phones = []string{
	"aa", "ae", "ah", "ao", "aw", "ay", "eh", "er", "ey", "ih",
	"iy", "ow", "oy", "uh", "uw", "b", "ch", "d", "dh", "f",
	"g", "hh", "jh", "k", "l", "m", "n", "ng", "p", "r",
	"s", "sh", "t", "th", "v", "w", "y", "z", "zh", "sil",
}

// ASR is the speech-recognition application: MFCC-style feature
// extraction (internal/dsp), DNN senone posteriors from DjiNN, and a
// Viterbi phone decoder with a bigram phone model — the Kaldi decode
// pipeline with a synthetic lexicon (DESIGN.md §2).
type ASR struct {
	backend   service.Backend
	extractor *dsp.Extractor
	lexicon   *Lexicon
	beam      int
}

// NewASR creates the application over a DjiNN backend with the default
// lexicon and beam width.
func NewASR(b service.Backend) *ASR {
	return &ASR{backend: b, extractor: dsp.NewExtractor(), lexicon: DefaultLexicon(), beam: 24}
}

// SetLexicon replaces the pronunciation lexicon used for word decoding.
func (a *ASR) SetLexicon(l *Lexicon, beam int) {
	a.lexicon = l
	if beam > 0 {
		a.beam = beam
	}
}

// Transcription is the decoded result for one utterance.
type Transcription struct {
	Text   string
	Words  []string // lexicon token-passing decode
	Phones []string // best phone path (collapsed)
	Frames int
}

// Transcribe decodes a 16 kHz audio signal: preprocessing produces one
// 2146-d feature vector per 10 ms frame, the service returns per-frame
// senone posteriors, and postprocessing Viterbi-decodes the most likely
// phone sequence and spells it into text.
func (a *ASR) Transcribe(signal []float64) (Transcription, error) {
	feats := a.extractor.Features(signal)
	if len(feats) == 0 {
		return Transcription{}, nil
	}
	in := make([]float32, 0, len(feats)*dsp.FeatureDim)
	for _, f := range feats {
		in = append(in, f...)
	}
	out, err := a.backend.Infer(ServiceName(models.ASR), in)
	if err != nil {
		return Transcription{}, err
	}
	senones := models.ASRSenones
	n := len(out) / senones
	ll := phoneLogLikelihoods(out, n, senones)
	phones := decodePhonePath(ll)
	words := a.lexicon.Decode(ll, a.beam)
	text := strings.Join(words, " ")
	if text == "" {
		// No lexicon path scored: fall back to spelling the phone path.
		text = phonesToText(phones)
	}
	return Transcription{
		Text:   text,
		Words:  words,
		Phones: phones,
		Frames: n,
	}, nil
}

// phoneLogLikelihoods collapses senone posteriors to per-frame phone
// log-evidence (senone s belongs to phone s % NumPhones).
func phoneLogLikelihoods(post []float32, frames, senones int) [][]float32 {
	out := make([][]float32, frames)
	for t := 0; t < frames; t++ {
		row := make([]float32, NumPhones)
		frame := post[t*senones : (t+1)*senones]
		for s, p := range frame {
			row[s%NumPhones] += p
		}
		for i, v := range row {
			row[i] = float32(math.Log(float64(v) + 1e-8))
		}
		out[t] = row
	}
	return out
}

// decodePhones collapses senone posteriors to phone log-likelihoods and
// Viterbi-decodes the best phone path (used by tests and the fallback
// spelling).
func decodePhones(post []float32, frames, senones int) []string {
	return decodePhonePath(phoneLogLikelihoods(post, frames, senones))
}

// decodePhonePath runs Viterbi over per-frame phone log-likelihoods
// with self-loop-favouring transitions (frames are 10 ms; phones last
// several frames), then collapses runs and drops silence.
func decodePhonePath(emit [][]float32) []string {
	frames := len(emit)
	if frames == 0 {
		return nil
	}
	const (
		selfLoop = float32(-0.1) // log-prob of staying in a phone
		switchTo = float32(-3.0) // log-prob of moving to a new phone
	)
	// Viterbi over phones.
	score := make([]float32, NumPhones)
	copy(score, emit[0])
	back := make([][]int, frames)
	for t := 1; t < frames; t++ {
		back[t] = make([]int, NumPhones)
		next := make([]float32, NumPhones)
		// Best predecessor overall (for switch transitions).
		bestPrev, bestIdx := float32(math.Inf(-1)), 0
		for p, s := range score {
			if s > bestPrev {
				bestPrev, bestIdx = s, p
			}
		}
		for p := 0; p < NumPhones; p++ {
			stay := score[p] + selfLoop
			move := bestPrev + switchTo
			if stay >= move || bestIdx == p {
				next[p] = stay + emit[t][p]
				back[t][p] = p
			} else {
				next[p] = move + emit[t][p]
				back[t][p] = bestIdx
			}
		}
		score = next
	}
	best, bi := float32(math.Inf(-1)), 0
	for p, s := range score {
		if s > best {
			best, bi = s, p
		}
	}
	path := make([]int, frames)
	path[frames-1] = bi
	for t := frames - 1; t > 0; t-- {
		path[t-1] = back[t][path[t]]
	}
	// Collapse runs and drop silence.
	var phones []string
	prev := -1
	for _, p := range path {
		if p != prev && Phones[p] != "sil" {
			phones = append(phones, Phones[p])
		}
		prev = p
	}
	return phones
}

// phonesToText spells phone sequences into words: a word boundary every
// three phones (the synthetic lexicon substituting Kaldi's
// pronunciation dictionary; DESIGN.md §2).
func phonesToText(phones []string) string {
	var words []string
	for i := 0; i < len(phones); i += 3 {
		end := i + 3
		if end > len(phones) {
			end = len(phones)
		}
		words = append(words, strings.Join(phones[i:end], ""))
	}
	return strings.Join(words, " ")
}
